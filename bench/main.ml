(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §4 for the experiment index).

   Usage:
     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- table3 fig9  -- run selected experiments
     dune exec bench/main.exe -- --scale 0.3 fig9
     dune exec bench/main.exe -- --json BENCH_tsrjoin.json fig9 fig10
     dune exec bench/main.exe -- bechamel     -- Bechamel kernel suite

   Absolute numbers differ from the paper (laptop-scale synthetic data,
   OCaml engine); the reproduction target is the shape: method ranking,
   rough factors, crossovers. EXPERIMENTS.md records paper-vs-measured. *)

open Semantics
module Engine = Workload.Engine
module Runner = Workload.Runner
module Query_gen = Workload.Query_gen

let scale = ref 1.0
let n_queries = ref 6
let domains_max = ref 8
let csv_path : string option ref = ref None
let csv_rows : string list ref = ref []
let json_path : string option ref = ref None
let json_rows : string list ref = ref []
let fmt = Format.std_formatter

let csv_record ~tag meas =
  if !csv_path <> None then
    csv_rows := Workload.Runner.to_csv_row ~tag meas :: !csv_rows

let csv_flush () =
  match !csv_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc ("experiment,dataset,pattern," ^ Workload.Runner.csv_header ^ "\n");
      List.iter (fun row -> output_string oc (row ^ "\n")) (List.rev !csv_rows);
      close_out oc;
      Format.fprintf fmt "wrote %d CSV rows to %s@." (List.length !csv_rows) path

(* --json OUT: one measurement record per (experiment, dataset, pattern,
   method); schema "tcsq-bench/v1", documented in EXPERIMENTS.md. When a
   sink was active for the measurement its per-phase totals ride along
   as a "phases" object. *)
let json_record ?obs ?raw ~experiment ~dataset ~pattern meas =
  if !json_path <> None then
    json_rows :=
      Workload.Runner.measurement_to_json ?obs ?raw
        ~extra:
          [
            ("experiment", experiment); ("dataset", dataset);
            ("pattern", pattern);
          ]
        meas
      :: !json_rows

(* per-phase attribution costs a clock read per span, so only trace the
   measurement when the record actually lands in a --json file *)
let bench_sink () =
  if !json_path <> None then Obs.Sink.create ~clock:Unix.gettimeofday ()
  else Obs.Sink.null

let json_flush () =
  match !json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Printf.sprintf
           "{\"schema\": \"tcsq-bench/v1\", \"scale\": %g, \"n_queries\": %d, \
            \"measurements\": [" !scale !n_queries);
      output_string oc (String.concat ", " (List.rev !json_rows));
      output_string oc "]}\n";
      close_out oc;
      Format.fprintf fmt "wrote %d JSON measurements to %s@."
        (List.length !json_rows) path

let section title =
  Format.fprintf fmt "@.=== %s ===@." title

let budget =
  {
    Runner.max_results_per_query = 100_000;
    Runner.max_intermediate_per_query = 1_000_000;
  }

let engines : (Tgraph.Dataset.name, Engine.t) Hashtbl.t = Hashtbl.create 8

let engine_of name =
  match Hashtbl.find_opt engines name with
  | Some e -> e
  | None ->
      let e = Engine.prepare (Tgraph.Dataset.graph ~scale:!scale name) in
      Hashtbl.add engines name e;
      e

let shapes_fig9 =
  [ Pattern.Star 3; Pattern.Star 4; Pattern.Chain 3; Pattern.Chain 4;
    Pattern.Cycle 3; Pattern.Cycle 4 ]

let workload_for engine ~shape ~window_frac ~max_results ~seed =
  let cfg =
    {
      Query_gen.n_queries = !n_queries;
      window_frac;
      shape;
      max_results;
      seed;
      max_attempts = 60 * !n_queries;
    }
  in
  List.map (fun i -> i.Query_gen.query) (Query_gen.generate engine cfg)

(* ---------- Tables I & II: LFTO traces on the paper's running example ---------- *)

let paper_tsrs () =
  let mk triples =
    let edges =
      Array.of_list
        (List.map
           (fun (id, ts, te) ->
             Tgraph.Edge.make ~id ~src:0 ~dst:id ~lbl:0
               (Temporal.Interval.make ts te))
           triples)
    in
    Array.sort Tgraph.Edge.compare_by_start edges;
    let coverage =
      Temporal.Coverage.build (Array.map Tgraph.Edge.to_span edges)
    in
    Tcsq_core.Tsr.make ~coverage (Triejoin.Slice.full edges)
  in
  [|
    mk [ (1, 0, 5); (2, 6, 9); (3, 11, 12); (4, 13, 15); (5, 18, 19) ];
    mk [ (6, 2, 4); (7, 7, 10); (8, 13, 15); (9, 17, 18); (10, 19, 20) ];
    mk [ (11, 3, 6); (12, 15, 16) ];
  |]

let print_trace_event ev =
  let open Tcsq_core.Lfto in
  match ev with
  | Scanned (i, e) ->
      Format.fprintf fmt "  scan   R%d: e%d %s@." (i + 1) (Tgraph.Edge.id e)
        (Temporal.Interval.to_string (Tgraph.Edge.ivl e))
  | Window_filtered (_, e) ->
      Format.fprintf fmt "  drop   e%d (outside valid window)@." (Tgraph.Edge.id e)
  | Expired es ->
      Format.fprintf fmt "  expire {%s}@."
        (String.concat ", "
           (List.map (fun e -> Printf.sprintf "e%d" (Tgraph.Edge.id e)) es))
  | Enumerated (members, life) ->
      Format.fprintf fmt "  MATCH  (%s, %s)@."
        (String.concat ", "
           (Array.to_list
              (Array.map (fun e -> Printf.sprintf "e%d" (Tgraph.Edge.id e)) members)))
        (Temporal.Interval.to_string life)
  | Inserted (i, e) ->
      Format.fprintf fmt "  insert e%d -> Active[%d]@." (Tgraph.Edge.id e) (i + 1)
  | Scanner_closed i -> Format.fprintf fmt "  close  R%d@." (i + 1)
  | Sweep_aborted -> Format.fprintf fmt "  ABORT  (delSkip: forward edges cut)@."

let run_table1 () =
  section "Table I: basic LFTO trace (G1, q1, window [10,20])";
  let stats = Run_stats.create () in
  Tcsq_core.Lfto.run ~stats ~trace:print_trace_event ~tsrs:(paper_tsrs ())
    ~ws:10 ~we:20
    ~emit:(fun _ _ -> ())
    ();
  Format.fprintf fmt "edges scanned: %d@." stats.Run_stats.scanned

let run_table2 () =
  section "Table II: optimized LFTO trace (ECI skip + delSkip + lazy)";
  let stats = Run_stats.create () in
  Tcsq_core.Lfto_opt.run ~stats ~trace:print_trace_event
    ~config:Tcsq_core.Lfto_opt.all_on ~tsrs:(paper_tsrs ()) ~ws:10 ~we:20
    ~emit:(fun _ _ -> ())
    ();
  Format.fprintf fmt
    "edges scanned: %d (12 in the basic sweep: backward edges skipped by \
     Algorithm 2, forward edges cut by Algorithm 3)@."
    stats.Run_stats.scanned

(* ---------- Table III: datasets ---------- *)

let run_table3 () =
  section
    (Printf.sprintf "Table III: dataset overview (scale %.2f)" !scale);
  Format.fprintf fmt "%a@." Tgraph.Stats.pp_table_header ();
  Array.iter
    (fun name ->
      let stats = Tgraph.Stats.compute (Tgraph.Dataset.graph ~scale:!scale name) in
      Format.fprintf fmt "%a@."
        (Tgraph.Stats.pp_table_row ~name:(Tgraph.Dataset.to_string name))
        stats)
    Tgraph.Dataset.all

(* ---------- Fig 9: processing cost vs pattern ---------- *)

let run_fig9 () =
  section "Fig 9: mean processing cost (ms/query) by pattern and network";
  Array.iter
    (fun ds ->
      Format.fprintf fmt "@.[%s]@." (Tgraph.Dataset.to_string ds);
      let engine = engine_of ds in
      Format.fprintf fmt "%-10s" "pattern";
      Array.iter
        (fun m -> Format.fprintf fmt " %12s" (Engine.method_name m))
        Engine.all_methods;
      Format.fprintf fmt " %8s@." "queries";
      List.iter
        (fun shape ->
          let queries =
            workload_for engine ~shape ~window_frac:0.1 ~max_results:100_000
              ~seed:(31 + Pattern.n_edges shape)
          in
          Format.fprintf fmt "%-10s" (Pattern.to_string shape);
          Array.iter
            (fun m ->
              let obs = bench_sink () in
              let meas = Runner.run_method ~budget ~obs engine m queries in
              csv_record
                ~tag:
                  (Printf.sprintf "fig9,%s,%s" (Tgraph.Dataset.to_string ds)
                     (Pattern.to_string shape))
                meas;
              json_record ~obs ~experiment:"fig9"
                ~dataset:(Tgraph.Dataset.to_string ds)
                ~pattern:(Pattern.to_string shape) meas;
              Format.fprintf fmt " %10.2f%s"
                (meas.Runner.mean_seconds *. 1000.0)
                (if meas.Runner.n_truncated > 0 then "*" else " "))
            Engine.all_methods;
          Format.fprintf fmt " %8d@." (List.length queries))
        shapes_fig9)
    Tgraph.Dataset.all;
  Format.fprintf fmt
    "@.(* = some queries hit the work budget, as the paper's timeouts)@."

(* ---------- Fig 10: intermediate cardinality ---------- *)

let run_fig10 () =
  section "Fig 10: total intermediate cardinality (Yellow, output size 1000)";
  let engine = engine_of Tgraph.Dataset.Yellow in
  Format.fprintf fmt "%-10s" "pattern";
  Array.iter (fun m -> Format.fprintf fmt " %14s" (Engine.method_name m)) Engine.all_methods;
  Format.fprintf fmt "@.";
  List.iter
    (fun shape ->
      let queries =
        workload_for engine ~shape ~window_frac:0.1 ~max_results:1_000 ~seed:59
      in
      Format.fprintf fmt "%-10s" (Pattern.to_string shape);
      Array.iter
        (fun m ->
          let obs = bench_sink () in
          let meas = Runner.run_method ~budget ~obs engine m queries in
          json_record ~obs ~experiment:"fig10" ~dataset:"yellow"
            ~pattern:(Pattern.to_string shape) meas;
          Format.fprintf fmt " %13d%s" meas.Runner.total_intermediate
            (if meas.Runner.n_truncated > 0 then "*" else " "))
        Engine.all_methods;
      Format.fprintf fmt "@.")
    shapes_fig9

(* ---------- Fig 11: selectivity sweep ---------- *)

let run_fig11 () =
  section "Fig 11: processing cost vs query selectivity M (transportation)";
  let ms = [ 100; 1_000; 10_000; 100_000 ] in
  List.iter
    (fun ds ->
      Format.fprintf fmt "@.[%s]@." (Tgraph.Dataset.to_string ds);
      let engine = engine_of ds in
      List.iter
        (fun shape ->
          Format.fprintf fmt "%s:@." (Pattern.to_string shape);
          Format.fprintf fmt "  %-8s" "M";
          Array.iter
            (fun m -> Format.fprintf fmt " %12s" (Engine.method_name m))
            Engine.all_methods;
          Format.fprintf fmt "@.";
          List.iter
            (fun max_results ->
              let queries =
                workload_for engine ~shape ~window_frac:0.1 ~max_results
                  ~seed:(71 + max_results)
              in
              Format.fprintf fmt "  %-8d" max_results;
              Array.iter
                (fun m ->
                  let meas = Runner.run_method ~budget engine m queries in
                  Format.fprintf fmt " %10.2f%s"
                    (meas.Runner.mean_seconds *. 1000.0)
                    (if meas.Runner.n_truncated > 0 then "*" else " "))
                Engine.all_methods;
              Format.fprintf fmt "@.")
            ms)
        Pattern.selectivity_set)
    [ Tgraph.Dataset.Yellow; Tgraph.Dataset.Bike ]

(* ---------- Fig 12 a-c: window-length sweep ---------- *)

let run_fig12_window () =
  section "Fig 12(a-c): processing cost vs query window fraction (Bike)";
  let engine = engine_of Tgraph.Dataset.Bike in
  let fracs = [ 0.0001; 0.001; 0.01; 0.1; 0.2 ] in
  List.iter
    (fun shape ->
      Format.fprintf fmt "%s:@." (Pattern.to_string shape);
      Format.fprintf fmt "  %-8s" "l";
      Array.iter
        (fun m -> Format.fprintf fmt " %12s" (Engine.method_name m))
        Engine.all_methods;
      Format.fprintf fmt "@.";
      List.iter
        (fun frac ->
          let queries =
            workload_for engine ~shape ~window_frac:frac ~max_results:100_000
              ~seed:83
          in
          Format.fprintf fmt "  %-8.4f" frac;
          if queries = [] then
            Format.fprintf fmt "  (no queries at this selectivity)"
          else
            Array.iter
              (fun m ->
                let meas = Runner.run_method ~budget engine m queries in
                Format.fprintf fmt " %10.2f%s"
                  (meas.Runner.mean_seconds *. 1000.0)
                  (if meas.Runner.n_truncated > 0 then "*" else " "))
              Engine.all_methods;
          Format.fprintf fmt "@.")
        fracs)
    Pattern.selectivity_set

(* ---------- Fig 12 d-e: network-size sweep ---------- *)

let run_fig12_size () =
  section "Fig 12(d-e): processing cost vs network size (Bike prefixes)";
  let base = Tgraph.Dataset.graph ~scale:!scale Tgraph.Dataset.Bike in
  let fractions = [ 0.2; 0.4; 0.6; 0.8; 1.0 ] in
  List.iter
    (fun shape ->
      Format.fprintf fmt "%s:@." (Pattern.to_string shape);
      Format.fprintf fmt "  %-10s" "|E|";
      Array.iter
        (fun m -> Format.fprintf fmt " %12s" (Engine.method_name m))
        Engine.all_methods;
      Format.fprintf fmt "@.";
      List.iter
        (fun f ->
          let n = int_of_float (float_of_int (Tgraph.Graph.n_edges base) *. f) in
          let engine = Engine.prepare (Tgraph.Graph.prefix base n) in
          let queries =
            workload_for engine ~shape ~window_frac:0.1 ~max_results:100_000
              ~seed:91
          in
          Format.fprintf fmt "  %-10d" n;
          Array.iter
            (fun m ->
              let meas = Runner.run_method ~budget engine m queries in
              Format.fprintf fmt " %10.2f%s"
                (meas.Runner.mean_seconds *. 1000.0)
                (if meas.Runner.n_truncated > 0 then "*" else " "))
            Engine.all_methods;
          Format.fprintf fmt "@.")
        fractions)
    [ Pattern.Star 4; Pattern.Cycle 4 ]

(* ---------- Tables IV & V: index storage and construction ---------- *)

let run_table4 () =
  section "Table IV: index storage cost (MB)";
  Format.fprintf fmt "%-10s" "network";
  Array.iter (fun m -> Format.fprintf fmt " %10s" (Engine.method_name m)) Engine.all_methods;
  Format.fprintf fmt "@.";
  Array.iter
    (fun ds ->
      let engine = engine_of ds in
      Format.fprintf fmt "%-10s" (Tgraph.Dataset.to_string ds);
      Array.iter
        (fun m ->
          let words = Engine.index_size_words engine m in
          Format.fprintf fmt " %10.2f"
            (float_of_int (words * 8) /. 1024.0 /. 1024.0))
        Engine.all_methods;
      Format.fprintf fmt "@.")
    Tgraph.Dataset.all

let run_table5 () =
  section "Table V: index construction time (s)";
  Format.fprintf fmt "%-10s" "network";
  Array.iter (fun m -> Format.fprintf fmt " %10s" (Engine.method_name m)) Engine.all_methods;
  Format.fprintf fmt "@.";
  Array.iter
    (fun ds ->
      let g = Tgraph.Dataset.graph ~scale:!scale ds in
      Format.fprintf fmt "%-10s" (Tgraph.Dataset.to_string ds);
      Array.iter
        (fun m -> Format.fprintf fmt " %10.3f" (Engine.index_build_seconds g m))
        Engine.all_methods;
      Format.fprintf fmt "@.")
    Tgraph.Dataset.all

(* ---------- Ablation: TSRJoin optimization flags ---------- *)

let run_ablation () =
  section "Ablation: TSRJoin LFTO optimizations (Yellow + Bike, 4-star)";
  let configs =
    [
      ("basic-alg1", Tcsq_core.Tsrjoin.basic_config);
      ( "opt-none",
        { Tcsq_core.Tsrjoin.default_config with mode = Optimized Tcsq_core.Lfto_opt.all_off } );
      ( "eci-only",
        {
          Tcsq_core.Tsrjoin.default_config with
          mode =
            Optimized
              { Tcsq_core.Lfto_opt.use_eci = true; use_del_skip = false; use_lazy = false };
        } );
      ( "delskip",
        {
          Tcsq_core.Tsrjoin.default_config with
          mode =
            Optimized
              { Tcsq_core.Lfto_opt.use_eci = false; use_del_skip = true; use_lazy = false };
        } );
      ( "lazy",
        {
          Tcsq_core.Tsrjoin.default_config with
          mode =
            Optimized
              { Tcsq_core.Lfto_opt.use_eci = false; use_del_skip = false; use_lazy = true };
        } );
      ("all-on", Tcsq_core.Tsrjoin.default_config);
    ]
  in
  List.iter
    (fun ds ->
      let engine = engine_of ds in
      let queries =
        workload_for engine ~shape:(Pattern.Star 4) ~window_frac:0.1
          ~max_results:100_000 ~seed:101
      in
      Format.fprintf fmt "@.[%s] %d queries@." (Tgraph.Dataset.to_string ds)
        (List.length queries);
      Format.fprintf fmt "%-12s %12s %14s@." "config" "mean-ms" "scanned";
      List.iter
        (fun (name, config) ->
          let meas =
            Runner.run_method ~budget ~tsrjoin_config:config engine
              Engine.Tsrjoin queries
          in
          Format.fprintf fmt "%-12s %12.3f %14d@." name
            (meas.Runner.mean_seconds *. 1000.0)
            meas.Runner.total_scanned)
        configs)
    [ Tgraph.Dataset.Yellow; Tgraph.Dataset.Bike ]

(* ---------- Ablation: adaptive (deferring) plans on chains ---------- *)

let run_ablation_plan () =
  section
    "Ablation: greedy vs adaptive TSRJoin plans (the Fig 11 chain weakness)";
  List.iter
    (fun ds ->
      let engine = engine_of ds in
      let tai = Engine.tai engine in
      let cost = Tcsq_core.Plan.cost_model tai in
      Format.fprintf fmt "@.[%s]@." (Tgraph.Dataset.to_string ds);
      Format.fprintf fmt "%-10s %14s %14s@." "pattern" "greedy-ms" "adaptive-ms";
      List.iter
        (fun shape ->
          let queries =
            workload_for engine ~shape ~window_frac:0.1 ~max_results:100_000
              ~seed:113
          in
          let time_with plan_of =
            let t0 = Unix.gettimeofday () in
            List.iter
              (fun q ->
                let stats =
                  Run_stats.create
                    ~limits:
                      {
                        Run_stats.max_results = budget.Runner.max_results_per_query;
                        max_intermediate = budget.Runner.max_intermediate_per_query;
                      }
                    ()
                in
                try
                  Tcsq_core.Tsrjoin.run ~stats ~plan:(plan_of q) tai q
                    ~emit:(fun _ -> ())
                with Run_stats.Limit_exceeded _ -> ())
              queries;
            (Unix.gettimeofday () -. t0)
            /. float_of_int (max 1 (List.length queries))
            *. 1000.0
          in
          let greedy = time_with (fun q -> Tcsq_core.Plan.build ~cost tai q) in
          let adaptive =
            time_with (fun q -> Tcsq_core.Plan.build_adaptive ~cost tai q)
          in
          Format.fprintf fmt "%-10s %14.2f %14.2f@." (Pattern.to_string shape)
            greedy adaptive)
        [ Pattern.Chain 3; Pattern.Chain 4; Pattern.Chain 5 ])
    [ Tgraph.Dataset.Yellow; Tgraph.Dataset.Stack ]

(* ---------- Incremental maintenance: merge vs rebuild ---------- *)

let run_dynamic () =
  section "Incremental maintenance: Tai.merge vs full rebuild (Yellow)";
  let base = Tgraph.Dataset.graph ~scale:!scale Tgraph.Dataset.Yellow in
  let n_labels = Tgraph.Graph.n_labels base in
  let domain = Temporal.Interval.length (Tgraph.Graph.time_domain base) in
  let rng = Random.State.make [| 131 |] in
  let batch size =
    List.init size (fun _ ->
        let ts = Random.State.int rng domain in
        ( Random.State.int rng (Tgraph.Graph.n_vertices base),
          Random.State.int rng (Tgraph.Graph.n_vertices base),
          Random.State.int rng n_labels,
          ts,
          min (domain - 1) (ts + Random.State.int rng 2000) ))
  in
  Format.fprintf fmt "%-12s %14s %14s %10s@." "batch-size" "merge-ms"
    "rebuild-ms" "speedup";
  List.iter
    (fun size ->
      let tai = Tcsq_core.Tai.build base in
      let g' = Tgraph.Graph.append base (batch size) in
      let t0 = Unix.gettimeofday () in
      let merged = Tcsq_core.Tai.merge tai g' in
      let merge_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let t0 = Unix.gettimeofday () in
      let rebuilt = Tcsq_core.Tai.build g' in
      let rebuild_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      ignore merged;
      ignore rebuilt;
      Format.fprintf fmt "%-12d %14.2f %14.2f %9.1fx@." size merge_ms
        rebuild_ms
        (rebuild_ms /. max merge_ms 0.001))
    [ 16; 128; 1024; 8192 ];
  (* end-to-end serving path: per-batch latency of the streaming ingest
     pipeline (Incremental buffers + prepare_with_tai engine swap, what
     the server runs since the subscribe/ingest rework) vs the old
     rebuild-per-batch (Graph.append + eager Engine.prepare), with a
     result-equality check against a fixed probe query after every
     batch. `--json BENCH_ingest.json` commits the comparison. *)
  section
    "Streaming ingest: Incremental + prepare_with_tai vs rebuild-per-batch \
     (Yellow)";
  let n_batches = 24 in
  let probe =
    Pattern.instantiate (Pattern.Star 3)
      ~labels:(Array.init 3 (fun i -> i mod n_labels))
      ~window:(Tgraph.Graph.window_of_fraction base ~frac:0.2 ~at:0.5)
  in
  let meas_of times total_results =
    let n = List.length times in
    let arr = Array.of_list (List.sort compare times) in
    let pct p = arr.(min (n - 1) (int_of_float (p *. float_of_int n))) in
    let total = List.fold_left ( +. ) 0.0 times in
    {
      Runner.method_ = Engine.Tsrjoin; n_queries = n; n_truncated = 0;
      total_seconds = total; mean_seconds = total /. float_of_int n;
      p50_seconds = pct 0.5; p95_seconds = pct 0.95; total_results;
      total_intermediate = 0; total_scanned = 0; total_seeks = 0;
      total_est_intermediate = 0; total_levels = [||];
      total_est_levels = [||];
    }
  in
  let bench_variant ~batches step =
    (* step : batch -> engine, timed; the probe count is outside the
       timed region for both variants *)
    let times = ref [] and counts = ref [] in
    List.iter
      (fun b ->
        let t0 = Unix.gettimeofday () in
        let engine = step b in
        times := (Unix.gettimeofday () -. t0) :: !times;
        counts := Engine.count engine Engine.Tsrjoin probe :: !counts)
      batches;
    (List.rev !times, List.rev !counts)
  in
  List.iter
    (fun size ->
      let batches = List.init n_batches (fun _ -> batch size) in
      let inc =
        Tcsq_core.Incremental.of_tai ~merge_threshold:4096 base
          (Tcsq_core.Tai.build base)
      in
      let inc_times, inc_counts =
        bench_variant ~batches (fun b ->
            List.iter
              (fun (src, dst, lbl, ts, te) ->
                ignore (Tcsq_core.Incremental.add_edge inc ~src ~dst ~lbl ~ts ~te))
              b;
            Engine.prepare_with_tai
              (Tcsq_core.Incremental.graph inc)
              (Tcsq_core.Incremental.tai inc))
      in
      let cur = ref base in
      let reb_times, reb_counts =
        bench_variant ~batches (fun b ->
            cur := Tgraph.Graph.append !cur b;
            Engine.prepare !cur)
      in
      if inc_counts <> reb_counts then
        failwith
          "ingest pipeline disagreement: streaming and rebuilt engines \
           returned different probe counts";
      let results = List.fold_left ( + ) 0 inc_counts in
      let inc_meas = meas_of inc_times results in
      let reb_meas = meas_of reb_times results in
      Format.fprintf fmt
        "batch %-6d incremental %8.2f ms/batch (p95 %8.2f)   rebuild %8.2f \
         ms/batch (p95 %8.2f)   %5.1fx@."
        size
        (inc_meas.Runner.mean_seconds *. 1000.0)
        (inc_meas.Runner.p95_seconds *. 1000.0)
        (reb_meas.Runner.mean_seconds *. 1000.0)
        (reb_meas.Runner.p95_seconds *. 1000.0)
        (reb_meas.Runner.mean_seconds /. max inc_meas.Runner.mean_seconds 1e-6);
      List.iter
        (fun (variant, meas) ->
          json_record ~experiment:"ingest" ~dataset:"yellow"
            ~pattern:"3-star"
            ~raw:
              [
                ("variant", Printf.sprintf "\"%s\"" variant);
                ("batch_size", string_of_int size);
                ("n_batches", string_of_int n_batches);
              ]
            meas)
        [ ("incremental", inc_meas); ("rebuild", reb_meas) ])
    [ 128; 1024 ]

(* ---------- Multi-window sharing ---------- *)

let run_multiwindow () =
  section
    "Multi-window evaluation: shared hull pass vs independent queries (Bike)";
  let engine = engine_of Tgraph.Dataset.Bike in
  let tai = Engine.tai engine in
  let cost = Tcsq_core.Plan.cost_model tai in
  let g = Engine.graph engine in
  let domain = Tgraph.Graph.time_domain g in
  let q_base =
    match
      workload_for engine ~shape:(Pattern.Star 3) ~window_frac:0.1
        ~max_results:100_000 ~seed:151
    with
    | q :: _ -> q
    | [] -> failwith "no workload query for the multi-window bench"
  in
  Format.fprintf fmt "%-10s %12s %14s %10s@." "windows" "shared-ms"
    "separate-ms" "speedup";
  List.iter
    (fun n_windows ->
      (* overlapping sliding windows over the middle half of the domain *)
      let span = Temporal.Interval.length domain / 2 in
      let start = Temporal.Interval.ts domain + (span / 2) in
      let width = span / 4 in
      let stride = max 1 (span / (2 * n_windows)) in
      let windows =
        List.init n_windows (fun i ->
            Temporal.Interval.make
              (start + (i * stride))
              (start + (i * stride) + width - 1))
      in
      let t0 = Unix.gettimeofday () in
      let shared = Tcsq_core.Multi_window.evaluate ~cost tai q_base ~windows in
      let shared_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let t0 = Unix.gettimeofday () in
      let separate =
        List.map
          (fun w ->
            Tcsq_core.Tsrjoin.evaluate ~cost tai (Query.with_window q_base w))
          windows
      in
      let separate_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      (* sanity: identical result counts *)
      List.iteri
        (fun i ms ->
          if List.length ms <> List.length shared.(i) then
            failwith "multi-window disagreement")
        separate;
      Format.fprintf fmt "%-10d %12.2f %14.2f %9.1fx@." n_windows shared_ms
        separate_ms
        (separate_ms /. max shared_ms 0.001))
    [ 2; 8; 32 ]

(* ---------- Parallel scaling ---------- *)

(* Domain-scaling bench: the full engine path (Runner -> Engine ->
   Exec.Parallel) at 1/2/4/... domains, per workload; every sweep point
   lands in the --json output tagged experiment="parallel" with raw
   numeric domains/speedup_vs_1 fields, so future PRs can regress-check
   parallel efficiency, not just latency. *)
let run_parallel_bench () =
  section
    (Printf.sprintf
       "Parallel TSRJoin: domain scaling (Yellow, %d core(s) available)"
       (Domain.recommended_domain_count ()));
  let engine = engine_of Tgraph.Dataset.Yellow in
  let sweep =
    (* powers of two up to --domains (default 8) *)
    let rec up d acc = if d > !domains_max then List.rev acc else up (2 * d) (d :: acc) in
    up 1 []
  in
  List.iter
    (fun (shape, window_frac, seed) ->
      let queries =
        workload_for engine ~shape ~window_frac ~max_results:100_000 ~seed
      in
      Format.fprintf fmt "@.[%s] %d queries@." (Pattern.to_string shape)
        (List.length queries);
      Format.fprintf fmt "%-8s %12s %10s@." "domains" "total-ms" "speedup";
      let baseline = ref 0.0 in
      List.iter
        (fun domains ->
          let obs = bench_sink () in
          let meas =
            Runner.run_method ~budget ~obs ~domains engine Engine.Tsrjoin
              queries
          in
          let ms = meas.Runner.total_seconds *. 1000.0 in
          if domains = 1 then baseline := ms;
          let speedup = !baseline /. max ms 1e-9 in
          json_record ~obs ~experiment:"parallel" ~dataset:"yellow"
            ~pattern:(Pattern.to_string shape)
            ~raw:
              [
                ("domains", string_of_int domains);
                ("speedup_vs_1", Printf.sprintf "%.3f" speedup);
              ]
            meas;
          Format.fprintf fmt "%-8d %12.2f %9.2fx@." domains ms speedup)
        sweep)
    [ (Pattern.Star 4, 0.2, 171); (Pattern.Chain 4, 0.2, 171) ];
  if Domain.recommended_domain_count () <= 1 then
    Format.fprintf fmt
      "@.(single-core host: the sweep measures scheduling overhead only — \
       no real speedup is physically possible here; on multi-core \
       machines expect near-linear scaling on skewed workloads)@."

(* ---------- Interval-join algorithm comparison (related work §III-B) ---------- *)

let run_interval_joins () =
  section
    "Interval joins: EBI sweep vs gFS vs LEBI vs bgFS (long vs short \
     intervals)";
  let mk_relation ~n ~domain ~mean_len ~seed =
    let rng = Random.State.make [| seed |] in
    let items =
      Array.init n (fun i ->
          let ts = Random.State.int rng domain in
          let len = 1 + Random.State.int rng (2 * mean_len) in
          Temporal.Span_item.make i
            (Temporal.Interval.make ts (min (domain - 1) (ts + len - 1))))
    in
    Temporal.Span_item.sort_by_start items;
    Temporal.Relation.of_sorted items
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let pairs = f () in
    ((Unix.gettimeofday () -. t0) *. 1000.0, pairs)
  in
  Format.fprintf fmt "%-24s %10s %10s %10s %10s %12s@." "profile" "ebi-ms"
    "gfs-ms" "lebi-ms" "bgfs-ms" "pairs";
  List.iter
    (fun (name, mean_len) ->
      let l = mk_relation ~n:20_000 ~domain:100_000 ~mean_len ~seed:191 in
      let r = mk_relation ~n:20_000 ~domain:100_000 ~mean_len ~seed:192 in
      let ebi_ms, pairs = time (fun () -> Temporal.Sweep_join.count l r) in
      let gfs_ms, p2 = time (fun () -> Temporal.Forward_scan.count l r) in
      let lebi_ms, p3 = time (fun () -> Temporal.Lebi.count l r) in
      let bgfs_ms, p4 = time (fun () -> Temporal.Bgfs.count l r) in
      if not (pairs = p2 && p2 = p3 && p3 = p4) then
        failwith "interval-join disagreement";
      Format.fprintf fmt "%-24s %10.2f %10.2f %10.2f %10.2f %12d@." name
        ebi_ms gfs_ms lebi_ms bgfs_ms pairs)
    [
      ("short (bike-like)", 40);
      ("medium (stack-like)", 400);
      ("long (caida-like)", 4_000);
    ]

(* ---------- Durable queries: push-down vs post-filter ---------- *)

let run_durable () =
  section "Durable queries: duration-floor push-down vs post-filter (Caida)";
  let engine = engine_of Tgraph.Dataset.Caida in
  let tai = Engine.tai engine in
  let cost = Tcsq_core.Plan.cost_model tai in
  let queries =
    workload_for engine ~shape:(Pattern.Star 3) ~window_frac:0.2
      ~max_results:100_000 ~seed:211
  in
  Format.fprintf fmt "%-10s %14s %14s %12s %12s@." "floor" "pushdown-ms"
    "postfilter-ms" "matches" "partials";
  List.iter
    (fun floor ->
      (* push-down: the engine prunes partials below the floor *)
      let stats = Run_stats.create () in
      let t0 = Unix.gettimeofday () in
      let pushed =
        List.fold_left
          (fun acc q ->
            acc
            + Tcsq_core.Tsrjoin.count ~stats ~cost tai
                (Query.with_min_duration q floor))
          0 queries
      in
      let push_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      (* post-filter: evaluate unconstrained, filter at the end *)
      let t0 = Unix.gettimeofday () in
      let filtered =
        List.fold_left
          (fun acc q ->
            let all = Tcsq_core.Tsrjoin.evaluate ~cost tai q in
            acc
            + List.length
                (List.filter
                   (fun m ->
                     Temporal.Interval.length m.Match_result.life >= floor)
                   all))
          0 queries
      in
      let filter_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      if pushed <> filtered then failwith "durable-query disagreement";
      Format.fprintf fmt "%-10d %14.2f %14.2f %12d %12d@." floor push_ms
        filter_ms pushed stats.Run_stats.intermediate)
    [ 1; 100; 1_000; 10_000 ]

(* ---------- Plan cache: cold vs warm planning path ---------- *)

let run_plancache () =
  section
    "Plan cache: cold (plan every query) vs warm (shared cache) on a \
     repeated workload (Yellow)";
  let engine = engine_of Tgraph.Dataset.Yellow in
  (* a server-shaped workload: a handful of hot shapes, each asked many
     times — the regime the cache is built for *)
  let distinct =
    List.concat_map
      (fun (shape, seed) ->
        workload_for engine ~shape ~window_frac:0.2 ~max_results:100_000 ~seed)
      [ (Pattern.Star 3, 331); (Pattern.Chain 3, 332); (Pattern.Cycle 3, 333) ]
  in
  let repetitions = 16 in
  let queries = List.concat (List.init repetitions (fun _ -> distinct)) in
  let measure ?plan_cache () =
    let obs = bench_sink () in
    (obs, Runner.run_method ~budget ~obs ?plan_cache engine Engine.Tsrjoin queries)
  in
  let obs_cold, cold = measure () in
  let cache = Workload.Plan_cache.create () in
  let obs_warm, warm = measure ~plan_cache:cache () in
  let cs = Workload.Plan_cache.counters cache in
  let lookups =
    cs.Workload.Plan_cache.hits + cs.Workload.Plan_cache.misses
    + cs.Workload.Plan_cache.replans
  in
  let hit_ratio =
    if lookups = 0 then 0.0
    else float_of_int cs.Workload.Plan_cache.hits /. float_of_int lookups
  in
  if cold.Runner.total_results <> warm.Runner.total_results then
    failwith "plan-cache disagreement: cached plans changed the result count";
  Format.fprintf fmt "%-8s %12s %12s %10s@." "variant" "total-ms" "mean-ms"
    "results";
  List.iter
    (fun (name, m) ->
      Format.fprintf fmt "%-8s %12.2f %12.4f %10d@." name
        (m.Runner.total_seconds *. 1000.0)
        (m.Runner.mean_seconds *. 1000.0)
        m.Runner.total_results)
    [ ("cold", cold); ("warm", warm) ];
  Format.fprintf fmt
    "cache: %d distinct shapes x%d, hit ratio %.3f (%d hits, %d misses, \
     %d replans, %d evictions)@."
    (List.length distinct) repetitions hit_ratio cs.Workload.Plan_cache.hits
    cs.Workload.Plan_cache.misses cs.Workload.Plan_cache.replans
    cs.Workload.Plan_cache.evictions;
  let record ~variant ~obs meas =
    json_record ~obs ~experiment:"plancache" ~dataset:"yellow"
      ~pattern:"hot-shapes"
      ~raw:
        ([ ("variant", Printf.sprintf "\"%s\"" variant) ]
        @
        if variant = "cold" then []
        else
          [
            ("hit_ratio", Printf.sprintf "%.4f" hit_ratio);
            ("hits", string_of_int cs.Workload.Plan_cache.hits);
            ("misses", string_of_int cs.Workload.Plan_cache.misses);
            ("replans", string_of_int cs.Workload.Plan_cache.replans);
            ("evictions", string_of_int cs.Workload.Plan_cache.evictions);
          ])
      meas
  in
  record ~variant:"cold" ~obs:obs_cold cold;
  record ~variant:"warm" ~obs:obs_warm warm

(* ---------- Bechamel kernel suite ---------- *)

let run_bechamel () =
  section "Bechamel kernel suite";
  let open Bechamel in
  let tsrs = paper_tsrs () in
  let engine = engine_of Tgraph.Dataset.Green in
  let q =
    Pattern.instantiate (Pattern.Star 3) ~labels:[| 0; 1; 2 |]
      ~window:
        (Tgraph.Graph.window_of_fraction (Engine.graph engine) ~frac:0.1 ~at:0.4)
  in
  let coverage_items =
    Array.init 4096 (fun i ->
        Temporal.Span_item.make i (Temporal.Interval.make (i / 2) ((i / 2) + 64)))
  in
  let keys_a = Array.init 4096 (fun i -> 3 * i) in
  let keys_b = Array.init 4096 (fun i -> 2 * i) in
  let tests =
    [
      Test.make ~name:"lfto-basic(tableI)"
        (Staged.stage (fun () ->
             Tcsq_core.Lfto.run ~tsrs ~ws:10 ~we:20 ~emit:(fun _ _ -> ()) ()));
      Test.make ~name:"lfto-optimized(tableII)"
        (Staged.stage (fun () ->
             Tcsq_core.Lfto_opt.run ~config:Tcsq_core.Lfto_opt.all_on ~tsrs
               ~ws:10 ~we:20 ~emit:(fun _ _ -> ()) ()));
      Test.make ~name:"coverage-build(eci)"
        (Staged.stage (fun () -> ignore (Temporal.Coverage.build coverage_items)));
      Test.make ~name:"leapfrog-intersect"
        (Staged.stage (fun () ->
             ignore (Triejoin.Leapfrog.intersect_arrays [ keys_a; keys_b ])));
      Test.make ~name:"tsrjoin-3star(fig9)"
        (Staged.stage (fun () -> ignore (Engine.count engine Engine.Tsrjoin q)));
      Test.make ~name:"time-3star(fig9)"
        (Staged.stage (fun () -> ignore (Engine.count engine Engine.Time q)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg [ instance ] test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Format.fprintf fmt "%-28s %14.1f ns/run@." name est
          | Some _ | None -> Format.fprintf fmt "%-28s (no estimate)@." name)
        results)
    tests

(* ---------- driver ---------- *)

let experiments =
  [
    ("table1", run_table1);
    ("table2", run_table2);
    ("table3", run_table3);
    ("fig9", run_fig9);
    ("fig10", run_fig10);
    ("fig11", run_fig11);
    ("fig12_window", run_fig12_window);
    ("fig12_size", run_fig12_size);
    ("table4", run_table4);
    ("table5", run_table5);
    ("ablation", run_ablation);
    ("ablation_plan", run_ablation_plan);
    ("dynamic", run_dynamic);
    ("multiwindow", run_multiwindow);
    ("parallel", run_parallel_bench);
    ("plancache", run_plancache);
    ("interval_joins", run_interval_joins);
    ("durable", run_durable);
    ("bechamel", run_bechamel);
  ]

let () =
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--queries" :: v :: rest ->
        n_queries := int_of_string v;
        parse rest
    | "--domains" :: v :: rest ->
        domains_max := int_of_string v;
        parse rest
    | "--csv" :: v :: rest ->
        csv_path := Some v;
        parse rest
    | "--json" :: v :: rest ->
        json_path := Some v;
        parse rest
    | name :: rest ->
        selected := name :: !selected;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let selected = List.rev !selected in
  let to_run =
    if selected = [] || selected = [ "all" ] then experiments
    else
      List.map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> (name, f)
          | None ->
              Format.eprintf "unknown experiment %S; known: %s@." name
                (String.concat ", " (List.map fst experiments));
              exit 2)
        selected
  in
  Format.fprintf fmt
    "TSRJoin reproduction bench (scale %.2f, %d queries/workload)@." !scale
    !n_queries;
  List.iter (fun (_, f) -> f ()) to_run;
  csv_flush ();
  json_flush ();
  Format.fprintf fmt "@.done.@."
