#!/bin/sh
# Performance-regression tripwire: run the fig10 bench workload exactly
# as BENCH_seed.json was produced (--scale 0.1 --queries 3 --json) and
# compare per-(experiment, dataset, pattern, method) mean_s against the
# committed seed.  Anything more than 25% slower prints a WARNING —
# laptop-scale microsecond timings are noisy, so this never fails the
# build (always exits 0); it exists to make a real regression visible
# in the check.sh log, not to gate on one.
set -u

HERE=$(cd "$(dirname "$0")" && pwd)
if [ -z "${BENCH:-}" ]; then
    if [ -x "$HERE/../bench/main.exe" ]; then
        BENCH=$HERE/../bench/main.exe
    else
        BENCH=$HERE/../_build/default/bench/main.exe
    fi
fi
SEED=${SEED:-$HERE/../BENCH_seed.json}

[ -x "$BENCH" ] || { echo "bench_compare: no bench binary at $BENCH (dune build first)" >&2; exit 0; }
[ -f "$SEED" ] || { echo "bench_compare: no committed seed at $SEED" >&2; exit 0; }

TMP=$(mktemp -d "${TMPDIR:-/tmp}/tcsq-bench-compare-XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

"$BENCH" --scale 0.1 --queries 3 --json "$TMP/fresh.json" fig10 >/dev/null 2>&1 \
    || { echo "bench_compare: WARNING: fresh bench run failed; skipping comparison" >&2; exit 0; }

# flatten a tcsq-bench/v1 file into "experiment/dataset/pattern/method mean_s"
# lines; POSIX awk only (no gawk record separators)
extract() {
    sed 's/{"experiment"/\
{"experiment"/g' "$1" | awk '
        /"experiment"/ {
            n = split($0, f, "\"")
            ex = ""; ds = ""; pat = ""; m = ""
            for (i = 2; i < n; i++) {
                if (f[i] == "experiment") ex = f[i + 2]
                else if (f[i] == "dataset") ds = f[i + 2]
                else if (f[i] == "pattern") pat = f[i + 2]
                else if (f[i] == "method") m = f[i + 2]
            }
            if (ex != "" && match($0, /"mean_s": [0-9.eE+-]+/))
                print ex "/" ds "/" pat "/" m, substr($0, RSTART + 10, RLENGTH - 10)
        }'
}

extract "$SEED" | sort >"$TMP/seed.tsv"
extract "$TMP/fresh.json" | sort >"$TMP/fresh.tsv"

[ -s "$TMP/seed.tsv" ] || { echo "bench_compare: WARNING: could not parse $SEED" >&2; exit 0; }
[ -s "$TMP/fresh.tsv" ] || { echo "bench_compare: WARNING: could not parse fresh bench output" >&2; exit 0; }

join "$TMP/seed.tsv" "$TMP/fresh.tsv" | awk '
    {
        key = $1; seed = $2 + 0; fresh = $3 + 0
        total++
        if (seed > 0 && fresh > seed * 1.25) {
            slower++
            printf "bench_compare: WARNING: %s is %.0f%% slower than the seed (%.6fs vs %.6fs)\n", \
                key, (fresh / seed - 1) * 100, fresh, seed
        }
    }
    END {
        printf "bench_compare: %d measurement keys compared, %d above the 25%% warning threshold\n", \
            total, slower + 0
    }'

missing=$(join -v 1 "$TMP/seed.tsv" "$TMP/fresh.tsv" | wc -l)
[ "$missing" -eq 0 ] \
    || echo "bench_compare: WARNING: $missing seed measurement key(s) absent from the fresh run" >&2

exit 0
