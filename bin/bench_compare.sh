#!/bin/sh
# Performance-regression gate: run the fig10 bench workload exactly as
# BENCH_seed.json was produced (--scale 0.1 --queries 16 --json) and
# compare per-(experiment, dataset, pattern, method) p50_s against the
# committed seed.  A persistent targeted regression FAILS the build
# (exit 1).
#
# Laptop-scale microsecond timings are noisy, so the gate layers four
# defenses, each aimed at a measured noise mode of virtualized runners:
#
#   1. p50 over 16 fixed-seed queries (not the mean): one scheduling
#      hiccup or GC major slice inside a ~100us query throws a
#      mean-of-few by several x; the median shrugs it off.
#   2. Drift normalization: the WHOLE machine drifts 1.3-2x slower for
#      minutes at a time (CPU frequency / host contention), scaling
#      every key by the same factor.  A code regression is targeted,
#      not uniform, so each attempt divides by the run's median
#      fresh/seed ratio (floored at 1 — a faster-than-seed machine
#      never tightens the gate).
#   3. Threshold x1.6 after drift (plus a >25%-over-seed floor): the
#      worst per-key bimodality observed on an idle runner peaks around
#      x1.7 once per ~300 samples, while a regression worth failing the
#      build on (>=2x on some key) clears x1.6 on every attempt.
#   4. Persistence: the SAME key must stay over threshold across three
#      fresh re-runs before the gate fails — residual spikes land on a
#      different random key each run, a real code change doesn't.
#
# Set TCSQ_BENCH_ALLOW_REGRESSION=1 to demote failures to warnings
# (e.g. on busy CI machines).
#
# Updating the baseline after an intentional perf change:
#   dune build
#   ./_build/default/bench/main.exe --scale 0.1 --queries 16 \
#       --json BENCH_seed.json fig10
#   git add BENCH_seed.json   # commit alongside the change that moved it
set -u

HERE=$(cd "$(dirname "$0")" && pwd)
if [ -z "${BENCH:-}" ]; then
    if [ -x "$HERE/../bench/main.exe" ]; then
        BENCH=$HERE/../bench/main.exe
    else
        BENCH=$HERE/../_build/default/bench/main.exe
    fi
fi
SEED=${SEED:-$HERE/../BENCH_seed.json}

[ -x "$BENCH" ] || { echo "bench_compare: no bench binary at $BENCH (dune build first)" >&2; exit 0; }
[ -f "$SEED" ] || { echo "bench_compare: no committed seed at $SEED" >&2; exit 0; }

TMP=$(mktemp -d "${TMPDIR:-/tmp}/tcsq-bench-compare-XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

# flatten a tcsq-bench/v1 file into "experiment/dataset/pattern/method p50_s"
# lines; POSIX awk only (no gawk record separators)
extract() {
    sed 's/{"experiment"/\
{"experiment"/g' "$1" | awk '
        /"experiment"/ {
            n = split($0, f, "\"")
            ex = ""; ds = ""; pat = ""; m = ""
            for (i = 2; i < n; i++) {
                if (f[i] == "experiment") ex = f[i + 2]
                else if (f[i] == "dataset") ds = f[i + 2]
                else if (f[i] == "pattern") pat = f[i + 2]
                else if (f[i] == "method") m = f[i + 2]
            }
            if (ex != "" && match($0, /"p50_s": [0-9.eE+-]+/))
                print ex "/" ds "/" pat "/" m, substr($0, RSTART + 9, RLENGTH - 9)
        }'
}

extract "$SEED" | sort >"$TMP/seed.tsv"
[ -s "$TMP/seed.tsv" ] || { echo "bench_compare: WARNING: could not parse $SEED" >&2; exit 0; }

# one fresh run -> regressed keys land in $TMP/slow.<attempt>; returns
# nonzero if any key clears the drift-normalized threshold
run_and_count() {
    attempt=$1
    "$BENCH" --scale 0.1 --queries 16 --json "$TMP/fresh.json" fig10 >/dev/null 2>&1 \
        || { echo "bench_compare: FAIL: fresh bench run failed (attempt $attempt)" >&2; return 2; }
    extract "$TMP/fresh.json" | sort >"$TMP/fresh.tsv"
    [ -s "$TMP/fresh.tsv" ] \
        || { echo "bench_compare: FAIL: could not parse fresh bench output" >&2; return 2; }
    join "$TMP/seed.tsv" "$TMP/fresh.tsv" | awk -v attempt="$attempt" \
        -v slowfile="$TMP/slow.$attempt" '
        {
            key = $1; seed = $2 + 0; fresh = $3 + 0
            if (seed > 0) {
                total++
                keys[total] = key; seeds[total] = seed
                freshs[total] = fresh; ratio[total] = fresh / seed
            }
        }
        END {
            # run-wide drift: median fresh/seed ratio (insertion sort,
            # ~24 keys), floored at 1 so a fast machine never tightens
            for (i = 1; i <= total; i++) sorted[i] = ratio[i]
            for (i = 2; i <= total; i++) {
                v = sorted[i]
                for (j = i - 1; j >= 1 && sorted[j] > v; j--)
                    sorted[j + 1] = sorted[j]
                sorted[j + 1] = v
            }
            mid = int((total + 1) / 2)
            drift = (total % 2) ? sorted[mid] \
                                : (sorted[mid] + sorted[mid + 1]) / 2
            if (drift < 1) drift = 1
            if (drift > 1.05)
                printf "bench_compare: attempt %s: run-wide drift x%.2f vs the seed, normalizing\n", \
                    attempt, drift
            slower = 0
            for (i = 1; i <= total; i++) {
                if (ratio[i] > 1.25 && ratio[i] > drift * 1.6) {
                    slower++
                    print keys[i] >slowfile
                    printf "bench_compare: attempt %s: %s is %.0f%% slower than the seed (%.6fs vs %.6fs, x%.2f after drift)\n", \
                        attempt, keys[i], (ratio[i] - 1) * 100, \
                        freshs[i], seeds[i], ratio[i] / drift
                }
            }
            printf "bench_compare: attempt %s: %d measurement keys compared, %d above threshold\n", \
                attempt, total, slower
            exit (slower > 0 ? 1 : 0)
        }'
}

status=0
: >"$TMP/slow.1"
: >"$TMP/slow.2"
: >"$TMP/slow.3"
if ! run_and_count 1; then
    # timings at this scale are noisy: a real regression reproduces on
    # the SAME key in a clean re-run; a scheduling hiccup lands on a
    # different key (or none) the second time
    echo "bench_compare: regression on attempt 1, re-running to rule out noise"
    run_and_count 2 || true
    persisted=$(comm -12 "$TMP/slow.1" "$TMP/slow.2")
    if [ -n "$persisted" ]; then
        # one more independent confirmation before failing the build:
        # at microsecond scale the same key can repeat by bad luck
        echo "bench_compare: same key regressed twice, confirming with a third run"
        run_and_count 3 || true
        persisted=$(echo "$persisted" | comm -12 - "$TMP/slow.3")
    fi
    if [ -n "$persisted" ]; then
        echo "$persisted" | sed 's/^/bench_compare: persisted on every attempt: /'
        status=1
    else
        echo "bench_compare: no key regressed on every attempt — noise, not a regression"
    fi
fi

missing=$(join -v 1 "$TMP/seed.tsv" "$TMP/fresh.tsv" | wc -l)
[ "$missing" -eq 0 ] \
    || echo "bench_compare: WARNING: $missing seed measurement key(s) absent from the fresh run" >&2

if [ "$status" -ne 0 ]; then
    if [ "${TCSQ_BENCH_ALLOW_REGRESSION:-0}" = "1" ]; then
        echo "bench_compare: WARNING: regression persisted but TCSQ_BENCH_ALLOW_REGRESSION=1, not failing"
        exit 0
    fi
    echo "bench_compare: FAIL: drift-normalized regression on the same key persisted across every attempt." >&2
    echo "bench_compare: if intentional, refresh the baseline (see header) or set TCSQ_BENCH_ALLOW_REGRESSION=1." >&2
    exit 1
fi
exit 0
