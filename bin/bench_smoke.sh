#!/bin/sh
# Smoke test for the bench harness's JSON export: run a tiny fixed-seed
# fig10 workload with --json, then check that the records carry the
# tcsq-bench/v1 schema, the seeks counter, and per-phase attribution.
# Exits nonzero if the harness fails or the schema regresses.
set -eu

# works both from the source tree (bin/bench_smoke.sh, binary under
# _build) and as a dune rule (run from _build/default, where the bench
# binary sits at ../bench/main.exe relative to this script)
HERE=$(cd "$(dirname "$0")" && pwd)
if [ -z "${BENCH:-}" ]; then
    if [ -x "$HERE/../bench/main.exe" ]; then
        BENCH=$HERE/../bench/main.exe
    else
        BENCH=$HERE/../_build/default/bench/main.exe
    fi
fi
OUT=$(mktemp "${TMPDIR:-/tmp}/tcsq-bench-smoke-XXXXXX.json")
trap 'rm -f "$OUT"' EXIT INT TERM

fail() {
    echo "bench_smoke: FAIL: $*" >&2
    echo "--- bench json ---" >&2
    cat "$OUT" >&2 || true
    exit 1
}

"$BENCH" --scale 0.05 --queries 2 --json "$OUT" fig10 >/dev/null \
    || fail "bench run failed"

grep -q '"schema": "tcsq-bench/v1"' "$OUT" || fail "missing tcsq-bench/v1 schema"
grep -q '"method": "tsrjoin"' "$OUT" || fail "no tsrjoin measurement"
grep -q '"seeks":' "$OUT" || fail "records carry no seeks counter"
grep -q '"phases"' "$OUT" || fail "records carry no phase attribution"
grep -q '"leapfrog_seek"' "$OUT" || fail "phase attribution lost leapfrog_seek"

echo "bench_smoke: tcsq-bench/v1 records carry seeks + per-phase totals"
