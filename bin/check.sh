#!/bin/sh
# Full pre-merge check: build everything under the strict dev profile
# (warnings are errors), run the test suite, lint every example
# workload with the static analyzer (`dune build @lint` fails if any
# query in examples/queries/ draws a warning or error), smoke-test the
# query server over a real socket (`dune build @server-smoke`), and
# smoke-test the bench harness's JSON export (`dune build @bench-smoke`).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune build @lint
dune build @server-smoke
dune build @bench-smoke
dune build @parallel-smoke
echo "check.sh: build, tests, lint, server, bench and parallel smoke all clean"
