#!/bin/sh
# Full pre-merge check: build everything under the strict dev profile
# (warnings are errors), run the test suite, and lint every example
# workload with the static analyzer (`dune build @lint` fails if any
# query in examples/queries/ draws a warning or error).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune build @lint
echo "check.sh: build, tests and lint all clean"
