#!/bin/sh
# Full pre-merge check: build everything under the strict dev profile
# (warnings are errors), run the test suite, lint every example
# workload with the static analyzer, run the eight end-to-end smoke
# aliases (query server, bench JSON export, multi-domain execution,
# explain reports, conformance fuzzing, extended relational
# operators, structured query log, plan cache), and compare a fresh bench run
# against the committed BENCH_seed.json (an enforcing gate:
# drift-normalized p50 regressions that persist across three re-runs
# fail the check unless TCSQ_BENCH_ALLOW_REGRESSION=1).
# Fails fast on the first broken step, printing one `ok`/`FAIL`
# summary line per step so the break point is obvious in CI logs.
set -u
cd "$(dirname "$0")/.."

step() {
    name=$1
    shift
    if "$@"; then
        echo "check.sh: ok   $name"
    else
        echo "check.sh: FAIL $name ($*)" >&2
        exit 1
    fi
}

step build          dune build
step tests          dune runtest
step lint           dune build @lint
step server-smoke   dune build @server-smoke
step bench-smoke    dune build @bench-smoke
step parallel-smoke dune build @parallel-smoke
step explain-smoke  dune build @explain-smoke
step fuzz-smoke     dune build @fuzz-smoke
step relops-smoke   dune build @relops-smoke
step qlog-smoke     dune build @qlog-smoke
step plancache-smoke dune build @plancache-smoke
step subscribe-smoke dune build @subscribe-smoke
step bench-compare  bin/bench_compare.sh
echo "check.sh: all steps clean"
