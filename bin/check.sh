#!/bin/sh
# Full pre-merge check: build everything under the strict dev profile
# (warnings are errors), run the test suite, lint every example
# workload with the static analyzer, and run the four end-to-end smoke
# aliases (query server, bench JSON export, multi-domain execution,
# conformance fuzzing). Fails fast on the first broken step, printing
# one `ok`/`FAIL` summary line per step so the break point is obvious
# in CI logs.
set -u
cd "$(dirname "$0")/.."

step() {
    name=$1
    shift
    if "$@"; then
        echo "check.sh: ok   $name"
    else
        echo "check.sh: FAIL $name ($*)" >&2
        exit 1
    fi
}

step build          dune build
step tests          dune runtest
step lint           dune build @lint
step server-smoke   dune build @server-smoke
step bench-smoke    dune build @bench-smoke
step parallel-smoke dune build @parallel-smoke
step fuzz-smoke     dune build @fuzz-smoke
echo "check.sh: all steps clean"
