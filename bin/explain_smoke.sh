#!/bin/sh
# End-to-end smoke test for `tcsq explain`: a golden full report over the
# committed bike example workload (the analyzer output is deterministic —
# synthetic datasets are fixed-seed and the report carries no timings),
# a tcsq-explain/v1 JSON schema check over the yellow workload, a
# dominated-plan (P008) check via an explicit bad pivot order, golden
# `--analyze` output (estimated-vs-actual table, counts come from a real
# execution of the chosen plan, so they are fixed-seed deterministic
# too), a misestimated-level (P009) probe, and malformed-input
# exit-code checks.
set -u

# works both from the source tree (bin/explain_smoke.sh, binary under
# _build) and as a dune rule (sandbox copies tcsq.exe next to the script)
HERE=$(cd "$(dirname "$0")" && pwd)
if [ -z "${TCSQ:-}" ]; then
    if [ -x "$HERE/tcsq.exe" ]; then
        TCSQ=$HERE/tcsq.exe
    else
        TCSQ=$HERE/../_build/default/bin/tcsq.exe
    fi
fi
QUERIES=$HERE/../examples/queries

TMP=$(mktemp -d "${TMPDIR:-/tmp}/tcsq-explain-smoke-XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

fail() {
    echo "explain_smoke: FAIL: $*" >&2
    exit 1
}

# ---- golden report over the bike example workload ----

"$TCSQ" explain --dataset bike --scale 0.02 --queries "$QUERIES/bike.tcsq" \
    >"$TMP/got" 2>"$TMP/stderr" \
    || fail "explain over bike.tcsq exited $? (stderr: $(cat "$TMP/stderr"))"
cat >"$TMP/expected" <<'EOF'
query(2 vars; window [2000, 4000]; 0:l0(x0,x1))
effective window [2000, 4000]
diagnostics: none
edges:
  e0 a(x0,x1): 403 labelled edges, 130 alive in window (fraction 0.323)
plan cost-model (chosen):
  0: pivot x0 (leapfrog, 187 candidates) matches [e0:a(x0,x1)] fanout=130 cumulative=130
  estimated results 130, intermediate tuples 130
plan adaptive:
  0: pivot x0 (leapfrog, 187 candidates) matches [e0:a(x0,x1)] fanout=130 cumulative=130
  estimated results 130, intermediate tuples 130
ranking: cost-model has the lowest estimated intermediate total — the planner's choice stands
query(3 vars; window [1000, 6000]; 0:l1(x0,x1) 1:l2(x1,x2))
effective window [1000, 6000]
diagnostics: none
edges:
  e0 b(x0,x1): 185 labelled edges, 150 alive in window (fraction 0.81)
  e1 c(x1,x2): 155 labelled edges, 133 alive in window (fraction 0.861)
plan cost-model (chosen):
  0: pivot x1 (leapfrog, 59 candidates) matches [e0:b(x0,x1); e1:c(x1,x2)] fanout=1.45 cumulative=1.45
  estimated results 1.45, intermediate tuples 1.45
plan adaptive:
  0: pivot x1 (leapfrog, 59 candidates) matches [e0:b(x0,x1); e1:c(x1,x2)] fanout=1.45 cumulative=1.45
  estimated results 1.45, intermediate tuples 1.45
ranking: cost-model has the lowest estimated intermediate total — the planner's choice stands
query(3 vars; window [3000, 8000]; 0:l0(x0,x1) 1:l3(x0,x2))
effective window [3000, 8000]
diagnostics: none
edges:
  e0 a(x0,x1): 403 labelled edges, 287 alive in window (fraction 0.711)
  e1 d(x0,x2): 94 labelled edges, 60.2 alive in window (fraction 0.64)
plan cost-model (chosen):
  0: pivot x0 (leapfrog, 61 candidates) matches [e0:a(x0,x1); e1:d(x0,x2)] fanout=1.29 cumulative=1.29
  estimated results 1.29, intermediate tuples 1.29
plan adaptive:
  0: pivot x0 (leapfrog, 61 candidates) matches [e0:a(x0,x1); e1:d(x0,x2)] fanout=1.29 cumulative=1.29
  estimated results 1.29, intermediate tuples 1.29
ranking: cost-model has the lowest estimated intermediate total — the planner's choice stands
query(3 vars; window [0, 9999]; 0:*(x0,x1) 1:*(x2,x1))
effective window [25, 9999] (tightened from [0, 9999])
diagnostics:
  hint[Q014] at window: interval-bound propagation tightens the effective window from [0, 9999] to [25, 9999]; every match lies inside it
edges:
  e0 *(x0,x1): 1100 labelled edges, 1.1e+03 alive in window (fraction 1)
  e1 *(x2,x1): 1100 labelled edges, 1.1e+03 alive in window (fraction 1)
plan cost-model (chosen):
  0: pivot x1 (leapfrog, 224 candidates) matches [e0:*(x0,x1); e1:*(x2,x1)] fanout=241 cumulative=241
  estimated results 241, intermediate tuples 241
plan adaptive:
  0: pivot x1 (leapfrog, 224 candidates) matches [e0:*(x0,x1); e1:*(x2,x1)] fanout=241 cumulative=241
  estimated results 241, intermediate tuples 241
ranking: cost-model has the lowest estimated intermediate total — the planner's choice stands
query(2 vars; window [500, 9500]; min duration 10; 0:l4(x0,x1))
effective window [500, 9500]
diagnostics: none
edges:
  e0 e(x0,x1): 73 labelled edges, 73 alive in window (fraction 1)
plan cost-model (chosen):
  0: pivot x0 (leapfrog, 60 candidates) matches [e0:e(x0,x1)] fanout=73 cumulative=73
  estimated results 73, intermediate tuples 73
plan adaptive:
  0: pivot x0 (leapfrog, 60 candidates) matches [e0:e(x0,x1)] fanout=73 cumulative=73
  estimated results 73, intermediate tuples 73
ranking: cost-model has the lowest estimated intermediate total — the planner's choice stands
EOF
sed 's/[[:space:]]*$//' "$TMP/got" >"$TMP/got.norm"
diff -u "$TMP/expected" "$TMP/got.norm" >&2 \
    || fail "bike report differs from golden"
echo "explain_smoke: bike golden clean"

# the workload deliberately contains one window the analyzer can tighten
grep -q 'tightened from' "$TMP/got" \
    || fail "no window-tightening annotation in the bike report"

# ---- JSON mode over the yellow workload: one tcsq-explain/v1 object
#      per statement ----

"$TCSQ" explain --dataset yellow --scale 0.02 \
    --queries "$QUERIES/yellow.tcsq" --json >"$TMP/json" 2>/dev/null \
    || fail "explain --json over yellow.tcsq exited $?"
statements=$(grep -cv '^[[:space:]]*\(#\|$\)' "$QUERIES/yellow.tcsq")
lines=$(wc -l <"$TMP/json")
[ "$lines" -eq "$statements" ] \
    || fail "expected $statements JSON lines, got $lines"
while IFS= read -r line; do
    case $line in
    '{"schema": "tcsq-explain/v1"'*) ;;
    *) fail "JSON line lacks the tcsq-explain/v1 schema tag: $line" ;;
    esac
done <"$TMP/json"
grep -q '"plans": \[{"name": "cost-model", "chosen": true' "$TMP/json" \
    || fail "JSON output lost the chosen cost-model plan"
grep -q '"estimated_intermediate"' "$TMP/json" \
    || fail "JSON output lost the intermediate-tuple estimate"
echo "explain_smoke: yellow JSON schema clean ($statements statements)"

# ---- a deliberately bad pivot order must be flagged P008 ----

"$TCSQ" explain --dataset bike --scale 0.02 \
    --match 'MATCH (s)-[a]->(t), (s)-[d]->(u) IN [3000, 8000]' \
    --pivot-order 1,0,2 >"$TMP/p008" 2>/dev/null \
    || fail "explain --pivot-order exited $?"
grep -q 'warning\[P008\].*pivot-order is dominated' "$TMP/p008" \
    || fail "bad pivot order not flagged P008"
echo "explain_smoke: dominated-plan (P008) clean"

# ---- golden `--analyze`: the report ends with an estimated-vs-actual
#      table fed by a real execution of the chosen plan ----

"$TCSQ" explain --dataset bike --scale 0.02 --analyze \
    --match 'MATCH (x)-[a]->(y) IN [2000, 4000]' \
    >"$TMP/analyze" 2>/dev/null \
    || fail "explain --analyze exited $?"
cat >"$TMP/analyze.expected" <<'EOF'
analyze (cost-model plan executed):
  level  pivot  estimated     actual  factor
  0      x0     130.3         90      x1.4 over
  totals: estimated 130.3 intermediate, measured 90; results 90
  misestimation: all levels within x16
EOF
sed 's/[[:space:]]*$//' "$TMP/analyze" \
    | sed -n '/^analyze (/,$p' >"$TMP/analyze.norm"
diff -u "$TMP/analyze.expected" "$TMP/analyze.norm" >&2 \
    || fail "--analyze section differs from golden"

# same query in JSON mode: the analyze object carries executed plan,
# per-level rows and the real run counters
"$TCSQ" explain --dataset bike --scale 0.02 --analyze --json \
    --match 'MATCH (x)-[a]->(y) IN [2000, 4000]' >"$TMP/analyze.json" \
    2>/dev/null || fail "explain --analyze --json exited $?"
grep -q '"analyze": {"executed": "cost-model", "levels": \[{"level": 0, "pivot": 0, "estimated": [0-9.]*, "actual": 90, "factor": [0-9.]*}\]' \
    "$TMP/analyze.json" || fail "--analyze JSON lost the per-level rows"
grep -q '"stats": {"results": 90, "intermediate": 90' "$TMP/analyze.json" \
    || fail "--analyze JSON lost the execution counters"

# without --analyze the key must stay a literal null (schema stability)
grep -q '"analyze": null' "$TMP/json" \
    || fail "explain without --analyze should emit analyze: null"

# a duration floor the cost model ignores makes the estimate collapse:
# the gap must be flagged P009
"$TCSQ" explain --dataset bike --scale 0.05 --analyze \
    --match 'MATCH (x)-[e]->(y) IN [500, 9500] LASTING 500' \
    >"$TMP/p009" 2>/dev/null \
    || fail "P009 probe exited $?"
grep -q 'warning\[P009\].*cost model off by x[0-9.]* at level 0' "$TMP/p009" \
    || fail "gross misestimation not flagged P009"
# any P009 closes the feedback loop: a calibrated re-plan rides along as P010
grep -q 'hint\[P010\].*re-planned from feedback: calibrated pivot order' \
    "$TMP/p009" || fail "misestimation did not trigger a P010 re-plan"
grep -q 're-plan: calibrated pivot order' "$TMP/p009" \
    || fail "analyze report lost the re-plan line"
"$TCSQ" explain --dataset bike --scale 0.05 --analyze --json \
    --match 'MATCH (x)-[e]->(y) IN [500, 9500] LASTING 500' >"$TMP/p009.json" \
    2>/dev/null || fail "P010 JSON probe exited $?"
grep -q '"replan": {"pivots": \[[0-9]' "$TMP/p009.json" \
    || fail "--analyze JSON lost the replan object"
# no misestimation: the replan key must stay a literal null
grep -q '"replan": null' "$TMP/analyze.json" \
    || fail "clean analyze should emit replan: null"
echo "explain_smoke: analyze golden + P009/P010 clean"

# ---- malformed inputs are usage errors (exit 2), not crashes ----

"$TCSQ" explain --dataset bike --scale 0.02 \
    --match 'MATCH garbage' >/dev/null 2>&1
rc=$?
[ "$rc" -eq 2 ] || fail "malformed --match exited $rc, want 2"

printf 'MATCH (x)-[a->(y) IN [0, 100]\n' >"$TMP/bad.tcsq"
"$TCSQ" explain --dataset bike --scale 0.02 --queries "$TMP/bad.tcsq" \
    >/dev/null 2>&1
rc=$?
[ "$rc" -eq 2 ] || fail "malformed workload statement exited $rc, want 2"
echo "explain_smoke: malformed-input handling clean"

echo "explain_smoke: golden/json/p008/malformed all clean"
