(* Differential fuzzer: random temporal graphs and queries, all four
   engines (and all LFTO optimization configurations, adaptive plans,
   and both IO codecs) cross-checked against the brute-force oracle.
   The static analyzer is cross-checked too: a query it calls clean must
   run without exception, a query it proves empty must have zero naive
   matches, and every planner's plan must pass plan invariant analysis.

   Usage: dune exec bin/fuzz.exe [-- iterations [seed]]

   Exits 0 after the given number of clean iterations (default 200),
   1 with a reproducer description on the first divergence. *)

open Semantics

let iterations =
  if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200

let base_seed =
  if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 20260705

let engine_variants =
  [
    ("tsrjoin-basic", Some Tcsq_core.Tsrjoin.basic_config, Workload.Engine.Tsrjoin);
    ("tsrjoin-opt", None, Workload.Engine.Tsrjoin);
    ("binary", None, Workload.Engine.Binary);
    ("hybrid", None, Workload.Engine.Hybrid);
    ("time", None, Workload.Engine.Time);
  ]

let check_divergence ~iter ~qi ~name expected actual =
  match Match_result.Result_set.diff_summary ~expected ~actual with
  | None -> ()
  | Some diff ->
      Printf.eprintf
        "DIVERGENCE at iteration %d, query %d, engine %s:\n  %s\n  reproduce: dune exec bin/fuzz.exe -- 1 %d\n"
        iter qi name diff (base_seed + iter);
      exit 1

let analyzer_failure ~iter ~qi fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf
        "ANALYZER DIVERGENCE at iteration %d, query %d:\n  %s\n  reproduce: dune exec bin/fuzz.exe -- 1 %d\n"
        iter qi msg (base_seed + iter);
      exit 1)
    fmt

(* The static analyzer's verdicts, cross-checked against ground truth:
   provably-empty queries must have zero naive matches, plans from all
   three planners must pass plan invariant analysis, and analyzer-clean
   queries must execute without raising. *)
let check_analyzer ~iter ~qi env tai cost q ~naive_count =
  let diags = Analysis.Query_check.check ~env q in
  if Analysis.Diagnostic.proves_empty diags && naive_count <> 0 then
    analyzer_failure ~iter ~qi
      "analyzer proved the query empty but naive found %d matches (%s)"
      naive_count
      (String.concat "; "
         (List.map Analysis.Diagnostic.to_string
            (List.filter
               (fun d -> d.Analysis.Diagnostic.proves_empty)
               diags)));
  if Analysis.Diagnostic.has_errors diags then
    analyzer_failure ~iter ~qi
      "analyzer reported an error on a generator-produced query (%s)"
      (String.concat "; " (List.map Analysis.Diagnostic.to_string diags));
  let check_plan name plan =
    match Analysis.Plan_check.check plan with
    | [] -> ()
    | ds ->
        analyzer_failure ~iter ~qi "%s failed plan invariant analysis: %s"
          name
          (String.concat "; " (List.map Analysis.Diagnostic.to_string ds))
  in
  check_plan "Plan.build" (Tcsq_core.Plan.build ~cost tai q);
  check_plan "Plan.build_adaptive"
    (Tcsq_core.Plan.build_adaptive ~cost ~defer_ratio:2.0 tai q);
  check_plan "Plan.of_pivot_order"
    (Tcsq_core.Plan.of_pivot_order q
       (List.init (Query.n_vars q) (fun v -> Query.n_vars q - 1 - v)))

let () =
  Printf.printf "fuzzing %d iterations from seed %d...\n%!" iterations base_seed;
  let t0 = Unix.gettimeofday () in
  for iter = 0 to iterations - 1 do
    let seed = base_seed + iter in
    let rng = Random.State.make [| seed |] in
    let n_vertices = 3 + Random.State.int rng 5 in
    let n_edges = 20 + Random.State.int rng 60 in
    let n_labels = 1 + Random.State.int rng 3 in
    let domain = 10 + Random.State.int rng 40 in
    let max_len = 1 + Random.State.int rng 12 in
    let g =
      Testkit.random_graph ~seed:(seed * 7 + 1) ~n_vertices ~n_edges
        ~n_labels ~domain ~max_len ()
    in
    (* IO round trips must be lossless *)
    let g =
      let bytes = Tgraph.Binary_io.to_bytes g in
      Tgraph.Binary_io.of_bytes bytes
    in
    let engine = Workload.Engine.prepare g in
    let tai = Workload.Engine.tai engine in
    let cost = Tcsq_core.Plan.cost_model tai in
    let qenv = Analysis.Query_check.env_of_graph g in
    let ws = Random.State.int rng domain in
    let we = min (domain - 1) (ws + Random.State.int rng domain) in
    let window = Temporal.Interval.make ws (max ws we) in
    let random_queries =
      List.init 3 (fun j ->
          Testkit.random_query ~seed:(seed * 13 + j) ~n_labels ~max_edges:4
            ~window)
    in
    List.iteri
      (fun qi q ->
        let naive = Naive.evaluate g q in
        let expected = Match_result.Result_set.of_list naive in
        check_analyzer ~iter ~qi qenv tai cost q
          ~naive_count:(List.length naive);
        List.iter
          (fun (name, config, method_) ->
            let actual =
              Match_result.Result_set.of_list
                (match config with
                | Some c ->
                    Tcsq_core.Tsrjoin.evaluate ~config:c ~cost tai q
                | None -> Workload.Engine.evaluate engine method_ q)
            in
            check_divergence ~iter ~qi ~name expected actual)
          engine_variants;
        (* adaptive plans too *)
        let plan = Tcsq_core.Plan.build_adaptive ~cost ~defer_ratio:2.0 tai q in
        check_divergence ~iter ~qi ~name:"tsrjoin-adaptive" expected
          (Match_result.Result_set.of_list
             (Tcsq_core.Tsrjoin.evaluate ~plan tai q)))
      (Testkit.query_pool ~n_labels ~window @ random_queries);
    if (iter + 1) mod 50 = 0 then
      Printf.printf "  %d iterations clean (%.1fs)\n%!" (iter + 1)
        (Unix.gettimeofday () -. t0)
  done;
  Printf.printf "OK: %d iterations, no divergence (%.1fs)\n" iterations
    (Unix.gettimeofday () -. t0)
