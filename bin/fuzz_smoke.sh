#!/bin/sh
# End-to-end smoke test for `tcsq fuzz`: a small clean budget with the
# wire path on (golden stdout, exit 0), an injected-fault run that must
# detect the broken engine, minimize it to a tiny case and write a
# reproducer (golden stdout, exit 1), a replay of that reproducer (must
# still reproduce), a replay of every committed example reproducer
# under examples/repros/ (must be clean), and a malformed-file check.
# stdout of `tcsq fuzz` is deterministic by design (timings go to
# stderr), so the goldens are exact.
set -u

# works both from the source tree (bin/fuzz_smoke.sh, binary under
# _build) and as a dune rule (sandbox copies tcsq.exe next to the script)
HERE=$(cd "$(dirname "$0")" && pwd)
if [ -z "${TCSQ:-}" ]; then
    if [ -x "$HERE/tcsq.exe" ]; then
        TCSQ=$HERE/tcsq.exe
    else
        TCSQ=$HERE/../_build/default/bin/tcsq.exe
    fi
fi
REPROS=$HERE/../examples/repros

TMP=$(mktemp -d "${TMPDIR:-/tmp}/tcsq-fuzz-smoke-XXXXXX")
trap 'rm -rf "$TMP"' EXIT INT TERM

fail() {
    echo "fuzz_smoke: FAIL: $*" >&2
    exit 1
}

check_golden() {
    name=$1
    # trailing whitespace (e.g. after an empty diff-summary list) is not
    # part of the contract the goldens pin down
    sed 's/[[:space:]]*$//' "$TMP/got" >"$TMP/got.norm"
    if ! diff -u "$TMP/expected" "$TMP/got.norm" >&2; then
        fail "$name: stdout differs from golden"
    fi
    echo "fuzz_smoke: $name clean"
}

# ---- clean run, wire path on: golden stdout, exit 0 ----

"$TCSQ" fuzz --iterations 3 --wire >"$TMP/got" 2>"$TMP/stderr" \
    || fail "clean fuzz run exited $? (stderr: $(cat "$TMP/stderr"))"
cat >"$TMP/expected" <<'EOF'
fuzzing 3 iterations from seed 20260705
engines: tsrjoin-basic, tsrjoin-opt, binary, hybrid, time, tsrjoin-adaptive, tsrjoin-cached, tsrjoin-par2, wire
relations: window-containment, translation, time-reversal, edge-deletion, label-renaming, sub-pattern, window-tightening, anti-semi-partition, allen-inverse, semijoin-containment, allen-filter, aggregate-topk, ingest-commutativity
OK: 63 queries clean (567 differential, 6723 relation, 63 parallel, 63 analyzer checks)
EOF
check_golden "clean run (--wire)"

# ---- a different seed changes the corpus but not the verdict ----

"$TCSQ" fuzz --iterations 2 --seed 424242 >"$TMP/got" 2>/dev/null \
    || fail "seed-override run exited $?"
head -1 "$TMP/got" | grep -q '^fuzzing 2 iterations from seed 424242$' \
    || fail "seed override not reflected: $(head -1 "$TMP/got")"
echo "fuzz_smoke: seed override clean"

# ---- injected fault: detect, minimize, write a reproducer, exit 1 ----

"$TCSQ" fuzz --iterations 3 --inject-fault --repro-out "$TMP/fault.repro" \
    >"$TMP/got" 2>/dev/null
rc=$?
[ "$rc" -eq 1 ] || fail "injected-fault run exited $rc, want 1"
cat >"$TMP/expected" <<EOF
fuzzing 3 iterations from seed 20260705
engines: tsrjoin-basic, tsrjoin-opt, binary, hybrid, time, tsrjoin-adaptive, tsrjoin-cached, tsrjoin-par2, broken
relations: window-containment, translation, time-reversal, edge-deletion, label-renaming, sub-pattern, window-tightening, anti-semi-partition, allen-inverse, semijoin-containment, allen-filter, aggregate-topk, ingest-commutativity
FAIL differential engine=broken at iteration 0
  expected 5 matches, got 4. missing (1): (e8, e5, [19, 19]) | extra (0):
found on: 39 graph edges, 7 vertices, 2 pattern edges, window [18, 35]
minimized to: 1 graph edges, 2 vertices, 1 pattern edges, window [20, 20] (35 probes)
reproducer written to $TMP/fault.repro
replay: tcsq fuzz --replay $TMP/fault.repro --inject-fault
EOF
check_golden "injected fault"
[ -f "$TMP/fault.repro" ] || fail "no reproducer file written"
grep -q '^check: differential$' "$TMP/fault.repro" \
    || fail "reproducer lost the check kind"
grep -q '^engine: broken$' "$TMP/fault.repro" \
    || fail "reproducer lost the engine name"

# ---- the written reproducer must still reproduce ----

"$TCSQ" fuzz --replay "$TMP/fault.repro" --inject-fault \
    >"$TMP/got" 2>/dev/null
rc=$?
[ "$rc" -eq 1 ] || fail "replay of a live fault exited $rc, want 1"
grep -q '^reproduces:' "$TMP/got" || fail "replay did not say 'reproduces'"
echo "fuzz_smoke: fault replay clean"

# ---- every committed example reproducer must replay clean ----

found=0
extended=0
for r in "$REPROS"/*.repro; do
    [ -f "$r" ] || continue
    found=$((found + 1))
    if grep -q 'NOT \|EXISTS \|WHERE \| TOP \| COUNT' "$r"; then
        extended=$((extended + 1))
    fi
    "$TCSQ" fuzz --replay "$r" >"$TMP/got" 2>/dev/null \
        || fail "committed reproducer $r no longer replays clean: $(cat "$TMP/got")"
    grep -q '^clean:' "$TMP/got" || fail "replay of $r did not say 'clean'"
done
[ "$found" -ge 1 ] || fail "no committed reproducers under $REPROS"
[ "$extended" -ge 1 ] \
    || fail "no committed reproducer exercises an extended operator"
echo "fuzz_smoke: $found committed reproducer(s) replay clean ($extended extended)"

# ---- malformed input is a usage error (exit 2), not a crash ----

: >"$TMP/empty.repro"
"$TCSQ" fuzz --replay "$TMP/empty.repro" >/dev/null 2>&1
rc=$?
[ "$rc" -eq 2 ] || fail "malformed reproducer exited $rc, want 2"
echo "fuzz_smoke: malformed-input handling clean"

echo "fuzz_smoke: clean-run/seed/fault/minimize/replay/goldens all clean"
