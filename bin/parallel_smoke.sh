#!/bin/sh
# End-to-end smoke test for multi-domain execution: the same query run
# with --domains 1 and --domains 4 must report identical match counts,
# `profile --domains 4 --trace` must still emit a well-formed trace/v1
# Chrome trace, and a tiny --budget must surface as a truncation note
# rather than a crash. Exits nonzero on any mismatch.
set -eu

# works both from the source tree (bin/parallel_smoke.sh, binary under
# _build) and as a dune rule (sandbox copies tcsq.exe next to the script)
HERE=$(cd "$(dirname "$0")" && pwd)
if [ -z "${TCSQ:-}" ]; then
    if [ -x "$HERE/tcsq.exe" ]; then
        TCSQ=$HERE/tcsq.exe
    else
        TCSQ=$HERE/../_build/default/bin/tcsq.exe
    fi
fi
DATASET=yellow
SCALE=0.05
TRACE=$(mktemp "${TMPDIR:-/tmp}/tcsq-parallel-smoke-XXXXXX.json")
trap 'rm -f "$TRACE"' EXIT INT TERM

fail() {
    echo "parallel_smoke: FAIL: $*" >&2
    exit 1
}

count_with_domains() {
    "$TCSQ" query --dataset "$DATASET" --scale "$SCALE" --match "$1" \
        --count --domains "$2" | sed -n 's/^\([0-9][0-9]*\) matches.*/\1/p'
}

# sequential and 4-domain runs of the same queries must agree exactly
for q in 'MATCH (x)-[a]->(y)-[b]->(z) IN [0, 20000]' \
         'MATCH (x)-[*]->(y) IN [10000, 30000]'; do
    seq_count=$(count_with_domains "$q" 1)
    [ -n "$seq_count" ] || fail "no sequential count for: $q"
    par_count=$(count_with_domains "$q" 4)
    [ -n "$par_count" ] || fail "no 4-domain count for: $q"
    [ "$seq_count" = "$par_count" ] \
        || fail "count mismatch for '$q': 1 domain=$seq_count 4 domains=$par_count"
    echo "parallel_smoke: '$q' -> $seq_count matches (1 domain == 4 domains)"
done

# phase-attributed tracing must survive the parallel path: per-domain
# sinks are merged back into one trace/v1 export
"$TCSQ" profile --dataset "$DATASET" --scale "$SCALE" \
    --match 'MATCH (x)-[a]->(y)-[b]->(z) IN [0, 20000]' \
    --domains 4 --trace "$TRACE" >/dev/null \
    || fail "profile --domains 4 failed"
grep -q '"schema": "trace/v1"' "$TRACE" || fail "trace missing trace/v1 schema"
grep -q '"name": "run"' "$TRACE" || fail "trace missing run span"
grep -q '"name": "leapfrog_open"' "$TRACE" \
    || fail "trace missing merged leapfrog_open spans"

# a budget exhausted mid-fan-out must stop every domain and be reported
# as a truncation, not an error exit (the wildcard scan produces enough
# intermediate tuples that every domain is still mid-flight)
out=$("$TCSQ" query --dataset "$DATASET" --scale "$SCALE" \
    --match 'MATCH (x)-[*]->(y) IN [0, 50000]' \
    --count --domains 4 --budget 50) \
    || fail "budgeted parallel query exited nonzero"
case "$out" in
*'truncated: '*) ;;
*) fail "tiny budget did not produce a truncation note: $out" ;;
esac
echo "parallel_smoke: tiny budget truncates cleanly across domains"

echo "parallel_smoke: counts/trace/budget all clean across domains"
