#!/bin/sh
# End-to-end smoke test for the server-side plan cache: start
# `tcsq serve` with --plan-cache-size, fire repeated queries and check
# the hit/miss counters in the metrics JSON and the
# tcsq_plan_cache_*_total Prometheus families, force a deterministic
# feedback re-plan with --replan-threshold 1, and verify that an
# ingest request invalidates every cached plan (generation bump +
# plans_invalidated in the response + a fresh miss afterwards). The
# qlog's plan_source key must track all three plan origins. Exits
# nonzero on any mismatch.
set -eu

HERE=$(cd "$(dirname "$0")" && pwd)
if [ -z "${TCSQ:-}" ]; then
    if [ -x "$HERE/tcsq.exe" ]; then
        TCSQ=$HERE/tcsq.exe
    else
        TCSQ=$HERE/../_build/default/bin/tcsq.exe
    fi
fi
DATASET=yellow
SCALE=0.05
SOCK=$(mktemp -u "${TMPDIR:-/tmp}/tcsq-plancache-XXXXXX.sock")
SRV_LOG=$(mktemp "${TMPDIR:-/tmp}/tcsq-plancache-srvlog-XXXXXX")
QLOG=$(mktemp "${TMPDIR:-/tmp}/tcsq-plancache-XXXXXX.jsonl")
OUT=$(mktemp "${TMPDIR:-/tmp}/tcsq-plancache-out-XXXXXX")
SRV_PID=

cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -f "$SOCK" "$SRV_LOG" "$QLOG" "$OUT"
}
trap cleanup EXIT INT TERM

fail() {
    echo "plancache_smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$SRV_LOG" >&2 || true
    echo "--- query log ---" >&2
    cat "$QLOG" >&2 || true
    exit 1
}

start_server() {
    # $@ = extra serve flags
    : >"$QLOG"
    "$TCSQ" serve --dataset "$DATASET" --scale "$SCALE" --socket "$SOCK" \
        --query-log "$QLOG" --qlog-sample 1.0 "$@" \
        >"$SRV_LOG" 2>&1 &
    SRV_PID=$!
    i=0
    while [ ! -S "$SOCK" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "socket $SOCK never appeared"
        kill -0 "$SRV_PID" 2>/dev/null || fail "server died during startup"
        sleep 0.1
    done
}

stop_server() {
    "$TCSQ" client --socket "$SOCK" --shutdown >/dev/null \
        || fail "shutdown request failed"
    i=0
    while kill -0 "$SRV_PID" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "server still running after shutdown"
        sleep 0.1
    done
    wait "$SRV_PID" 2>/dev/null || fail "server exited with an error"
    SRV_PID=
}

# pull one integer out of the metrics JSON plan_cache object
cache_stat() {
    "$TCSQ" client --socket "$SOCK" --metrics \
        | sed -n 's/.*"plan_cache": {[^}]*"'"$1"'": \([0-9][0-9]*\).*/\1/p'
}

Q1='MATCH (x)-[a]->(y) IN [0, 50000]'
Q2='MATCH (x)-[a]->(y)-[b]->(z) IN [0, 20000]'

# ---- phase 1: hit/miss counters, prometheus families, plan_source ----
start_server --plan-cache-size 64

"$TCSQ" client --socket "$SOCK" --match "$Q1" --count >/dev/null \
    || fail "query 1 failed"
"$TCSQ" client --socket "$SOCK" --match "$Q1" --count >/dev/null \
    || fail "query 2 failed"
"$TCSQ" client --socket "$SOCK" --match "$Q1" --count >/dev/null \
    || fail "query 3 failed"

[ "$(cache_stat hits)" = "2" ] || fail "expected 2 hits, got $(cache_stat hits)"
[ "$(cache_stat misses)" = "1" ] \
    || fail "expected 1 miss, got $(cache_stat misses)"
[ "$(cache_stat size)" = "1" ] || fail "expected 1 entry, got $(cache_stat size)"
[ "$(cache_stat capacity)" = "64" ] \
    || fail "expected capacity 64, got $(cache_stat capacity)"

prom=$("$TCSQ" client --socket "$SOCK" --prom) || fail "prom request failed"
for want in \
    'tcsq_plan_cache_hits_total 2' \
    'tcsq_plan_cache_misses_total 1' \
    'tcsq_plan_cache_evictions_total 0' \
    'tcsq_plan_cache_invalidations_total 0' \
    'tcsq_plan_cache_replans_total 0' \
    'tcsq_plan_cache_entries 1'; do
    case "$prom" in
    *"$want"*) ;;
    *) fail "prometheus exposition missing '$want'" ;;
    esac
done

[ "$(grep -c '"plan_source": "fresh"' "$QLOG")" -eq 1 ] \
    || fail "expected exactly 1 fresh plan_source line"
[ "$(grep -c '"plan_source": "cached"' "$QLOG")" -eq 2 ] \
    || fail "expected exactly 2 cached plan_source lines"

# --top surfaces the per-shape cached/replanned columns
top=$("$TCSQ" client --socket "$SOCK" --top 5) || fail "--top failed"
echo "$top" | grep -q 'cached' || fail "--top header lacks cached column: $top"
echo "$top" | sed -n '2p' | grep -q ' 2$\| 2 ' \
    || true # column layout is informational; presence is the contract

stop_server
echo "plancache_smoke: phase 1 (hit/miss counters, prometheus, plan_source) clean"

# ---- phase 2: misestimation-driven re-plan --------------------------
# threshold 1: any inexact estimate counts as misestimated, so the
# second execution poisons the entry and the third lookup re-plans
start_server --plan-cache-size 64 --replan-threshold 1
for i in 1 2 3 4; do
    "$TCSQ" client --socket "$SOCK" --match "$Q2" --count >/dev/null \
        || fail "replan-phase query $i failed"
done

replans=$(cache_stat replans)
[ "$replans" -ge 1 ] || fail "expected at least 1 replan, got $replans"
grep -q '"plan_source": "replanned"' "$QLOG" \
    || fail "no qlog line with plan_source replanned"
prom=$("$TCSQ" client --socket "$SOCK" --prom) || fail "prom request failed"
case "$prom" in
*'tcsq_plan_cache_replans_total 0'*) fail "prometheus replans stuck at 0" ;;
*tcsq_plan_cache_replans_total*) ;;
*) fail "prometheus exposition missing replans family" ;;
esac

stop_server
echo "plancache_smoke: phase 2 (feedback re-plan, P010 loop) clean"

# ---- phase 3: ingest invalidates every cached plan ------------------
start_server --plan-cache-size 64

"$TCSQ" client --socket "$SOCK" --match "$Q1" --count >/dev/null \
    || fail "pre-ingest query failed"
"$TCSQ" client --socket "$SOCK" --match "$Q1" --count >/dev/null \
    || fail "pre-ingest repeat failed"
[ "$(cache_stat hits)" = "1" ] || fail "pre-ingest hit missing"

printf '%s\n' \
    '{"op": "ingest", "edges": [{"src": 0, "dst": 1, "label": "a", "ts": 100, "te": 200}, {"src": 1, "dst": 2, "label": "b", "ts": 150, "te": 250}]}' \
    | "$TCSQ" client --socket "$SOCK" --stdin >"$OUT" \
    || fail "ingest request failed"
grep -q '"appended": 2' "$OUT" || fail "ingest did not append 2 edges: $(cat "$OUT")"
grep -q '"generation": 1' "$OUT" \
    || fail "ingest did not bump the generation: $(cat "$OUT")"
grep -q '"plans_invalidated": 1' "$OUT" \
    || fail "ingest did not invalidate the cached plan: $(cat "$OUT")"

# the invalidated shape must plan fresh again — and against the new graph
"$TCSQ" client --socket "$SOCK" --match "$Q1" --count >/dev/null \
    || fail "post-ingest query failed"
[ "$(cache_stat misses)" = "2" ] \
    || fail "post-ingest lookup should miss: $(cache_stat misses)"
[ "$(cache_stat invalidations)" = "1" ] \
    || fail "invalidation counter should be 1: $(cache_stat invalidations)"

# a label the dataset has never seen is interned on ingest: the batch
# lands, plans invalidate again, and the new label is queryable
printf '%s\n' \
    '{"op": "ingest", "edges": [{"src": 0, "dst": 1, "label": "freshlabel", "ts": 1, "te": 2}]}' \
    | "$TCSQ" client --socket "$SOCK" --stdin >"$OUT" \
    || fail "new-label ingest failed"
grep -q '"status": "ok"' "$OUT" \
    || fail "new-label ingest was rejected: $(cat "$OUT")"
grep -q '"appended": 1' "$OUT" \
    || fail "new-label ingest did not append: $(cat "$OUT")"
grep -q '"generation": 2' "$OUT" \
    || fail "new-label ingest did not bump the generation: $(cat "$OUT")"
[ "$(cache_stat invalidations)" = "2" ] \
    || fail "new-label ingest must invalidate cached plans"
"$TCSQ" client --socket "$SOCK" \
    --match 'MATCH (x)-[freshlabel]->(y) IN [0, 10]' --count >"$OUT" \
    || fail "query on the interned label failed"
grep -q '"count": 1' "$OUT" \
    || fail "interned label should match its edge: $(cat "$OUT")"

stop_server
echo "plancache_smoke: phase 3 (ingest invalidation) clean"
echo "plancache_smoke: counters, prometheus, re-plan, invalidation all clean"
