#!/bin/sh
# End-to-end smoke test for the structured query log: start `tcsq serve`
# with --query-log / --slow-ms / --qlog-sample, fire fast queries, slow
# queries and a rejected one, then check that every finished request
# produced a schema-valid tcsq-qlog/v1 JSONL line, that the slow flag
# and the tcsq_slow_requests_total Prometheus family track the
# threshold, and that `tcsq client --top` surfaces the hottest
# fingerprint. Exits nonzero on any mismatch.
set -eu

HERE=$(cd "$(dirname "$0")" && pwd)
if [ -z "${TCSQ:-}" ]; then
    if [ -x "$HERE/tcsq.exe" ]; then
        TCSQ=$HERE/tcsq.exe
    else
        TCSQ=$HERE/../_build/default/bin/tcsq.exe
    fi
fi
DATASET=yellow
SCALE=0.05
SOCK=$(mktemp -u "${TMPDIR:-/tmp}/tcsq-qlog-XXXXXX.sock")
SRV_LOG=$(mktemp "${TMPDIR:-/tmp}/tcsq-qlog-srvlog-XXXXXX")
QLOG=$(mktemp "${TMPDIR:-/tmp}/tcsq-qlog-XXXXXX.jsonl")
SRV_PID=

cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -f "$SOCK" "$SRV_LOG" "$QLOG"
}
trap cleanup EXIT INT TERM

fail() {
    echo "qlog_smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$SRV_LOG" >&2 || true
    echo "--- query log ---" >&2
    cat "$QLOG" >&2 || true
    exit 1
}

start_server() {
    # $1 = slow-ms threshold
    : >"$QLOG"
    "$TCSQ" serve --dataset "$DATASET" --scale "$SCALE" --socket "$SOCK" \
        --query-log "$QLOG" --slow-ms "$1" --qlog-sample 1.0 \
        >"$SRV_LOG" 2>&1 &
    SRV_PID=$!
    i=0
    while [ ! -S "$SOCK" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "socket $SOCK never appeared"
        kill -0 "$SRV_PID" 2>/dev/null || fail "server died during startup"
        sleep 0.1
    done
}

stop_server() {
    "$TCSQ" client --socket "$SOCK" --shutdown >/dev/null \
        || fail "shutdown request failed"
    i=0
    while kill -0 "$SRV_PID" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "server still running after shutdown"
        sleep 0.1
    done
    wait "$SRV_PID" 2>/dev/null || fail "server exited with an error"
    SRV_PID=
}

# one JSON line per finished request, every schema key present
validate_lines() {
    expected=$1
    n=$(wc -l <"$QLOG")
    [ "$n" -eq "$expected" ] || fail "expected $expected qlog lines, found $n"
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$QLOG" <<'EOF' || exit 1
import json, sys
required = ["schema", "ts", "id", "fingerprint", "query", "method", "window",
            "outcome", "duration_ms", "slow", "truncated", "deadline",
            "stats", "levels", "misestimation", "plan_source"]
for i, line in enumerate(open(sys.argv[1])):
    try:
        rec = json.loads(line)
    except json.JSONDecodeError as e:
        sys.exit(f"qlog_smoke: FAIL: line {i+1} is not JSON: {e}")
    if rec.get("schema") != "tcsq-qlog/v1":
        sys.exit(f"qlog_smoke: FAIL: line {i+1} schema {rec.get('schema')!r}")
    missing = [k for k in required if k not in rec]
    if missing:
        sys.exit(f"qlog_smoke: FAIL: line {i+1} missing keys {missing}")
    for l in rec["levels"]:
        if sorted(l.keys()) != ["actual", "est", "level"]:
            sys.exit(f"qlog_smoke: FAIL: line {i+1} bad level entry {l}")
EOF
    else
        # no python3: at least check the schema tag on every line
        while IFS= read -r line; do
            case "$line" in
            *'"schema": "tcsq-qlog/v1"'*) ;;
            *) fail "line without tcsq-qlog/v1 schema: $line" ;;
            esac
        done <"$QLOG"
    fi
}

count_outcome() {
    grep -c "\"outcome\": \"$1\"" "$QLOG" || true
}

# ---- phase 1: generous threshold — nothing is slow --------------------
start_server 1000000

Q1='MATCH (x)-[a]->(y) IN [0, 50000]'
Q2='MATCH (x)-[a]->(y)-[b]->(z) IN [0, 20000]'
"$TCSQ" client --socket "$SOCK" --match "$Q1" --count >/dev/null \
    || fail "query 1 failed"
"$TCSQ" client --socket "$SOCK" --match "$Q1" --count >/dev/null \
    || fail "query 2 failed"
"$TCSQ" client --socket "$SOCK" --match "$Q2" --count >/dev/null \
    || fail "query 3 failed"
# a rejected query must be logged too (no fingerprint: it never parsed)
"$TCSQ" client --socket "$SOCK" --match 'MATCH (x)-[nosuchlabel]->(y) IN [0, 10]' \
    --count >/dev/null 2>&1 || true

validate_lines 4
[ "$(count_outcome completed)" -eq 3 ] || fail "expected 3 completed lines"
[ "$(count_outcome rejected_query)" -eq 1 ] \
    || fail "expected 1 rejected_query line"
grep -q '"slow": true' "$QLOG" && fail "nothing should be slow at 1000000ms"
# completed tsrjoin lines must carry per-level est-vs-actual feedback
grep '"outcome": "completed"' "$QLOG" | head -1 \
    | grep -q '"levels": \[{"level": 0, "est": [0-9]*, "actual": [0-9]*' \
    || fail "completed line carries no per-level est/actual"
grep '"outcome": "completed"' "$QLOG" | head -1 \
    | grep -q '"misestimation": [0-9]' \
    || fail "completed line carries no misestimation factor"
# the plan cache is on by default: Q1's first run plans fresh, its
# repeat must be served from the cache — both show up in plan_source
grep -q '"plan_source": "fresh"' "$QLOG" \
    || fail "no qlog line with plan_source fresh"
grep -q '"plan_source": "cached"' "$QLOG" \
    || fail "repeated query was not served from the plan cache"

# the slow counter must exist and stay at zero
prom=$("$TCSQ" client --socket "$SOCK" --prom) || fail "prom request failed"
case "$prom" in
*'tcsq_slow_requests_total{outcome="completed"} 0'*) ;;
*) fail "expected slow completed counter 0: $prom" ;;
esac
case "$prom" in
*'tcsq_misestimation_ratio_bucket'*) ;;
*) fail "prometheus exposition missing misestimation histogram" ;;
esac

# --top: Q1 ran twice, Q2 once — the hottest fingerprint has count 2
top=$("$TCSQ" client --socket "$SOCK" --top 5) || fail "--top failed"
echo "$top" | grep -q 'fingerprint' || fail "--top printed no header: $top"
hottest=$(echo "$top" | sed -n '2p' | awk '{print $2}')
[ "$hottest" = "2" ] || fail "hottest fingerprint should have count 2: $top"

stop_server
echo "qlog_smoke: phase 1 (fast path, rejection logging, --top) clean"

# ---- phase 2: zero threshold — everything is slow ---------------------
start_server 0

"$TCSQ" client --socket "$SOCK" --match "$Q1" --count >/dev/null \
    || fail "slow-phase query 1 failed"
"$TCSQ" client --socket "$SOCK" --match "$Q2" --count >/dev/null \
    || fail "slow-phase query 2 failed"

validate_lines 2
[ "$(grep -c '"slow": true' "$QLOG")" -eq 2 ] \
    || fail "expected both lines flagged slow"

prom=$("$TCSQ" client --socket "$SOCK" --prom) || fail "prom request failed"
case "$prom" in
*'tcsq_slow_requests_total{outcome="completed"} 2'*) ;;
*) fail "expected slow completed counter 2: $prom" ;;
esac

stop_server
echo "qlog_smoke: phase 2 (slow threshold, slow-query counter) clean"
echo "qlog_smoke: query log, slow flagging, prometheus families, --top all clean"
