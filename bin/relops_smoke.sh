#!/bin/sh
# End-to-end smoke test for the extended relational operators on the
# tcsq CLI: golden stdout per operator family (NOT antijoin, EXISTS
# semijoin, WHERE Allen constraints, COUNT, TOP k) over a tiny
# hand-written graph, the --format json variant, the wire variant
# (tcsq serve / tcsq client counts must match the one-shot evaluator),
# and malformed extended syntax exiting 2. Timings are stripped before
# comparison; everything else is deterministic.
set -u

# works both from the source tree (bin/relops_smoke.sh, binary under
# _build) and as a dune rule (sandbox copies tcsq.exe next to the script)
HERE=$(cd "$(dirname "$0")" && pwd)
if [ -z "${TCSQ:-}" ]; then
    if [ -x "$HERE/tcsq.exe" ]; then
        TCSQ=$HERE/tcsq.exe
    else
        TCSQ=$HERE/../_build/default/bin/tcsq.exe
    fi
fi

TMP=$(mktemp -d "${TMPDIR:-/tmp}/tcsq-relops-smoke-XXXXXX")
SRV_PID=
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "relops_smoke: FAIL: $*" >&2
    exit 1
}

# three a-edges with different b-neighbourhoods: one carved by an
# antijoin in the middle, one untouched, one clipped at its end
GRAPH=$TMP/relops.csv
cat >"$GRAPH" <<'EOF'
0,1,a,0,9
1,2,b,3,5
3,4,a,2,7
5,6,a,0,5
6,7,b,5,9
EOF

# the timing/stats tail of the summary line varies run to run
run_query() {
    "$TCSQ" query "$GRAPH" "$@" >"$TMP/raw" 2>&1 \
        || fail "tcsq query $* exited $?: $(cat "$TMP/raw")"
    sed -E 's/ in [0-9.]+ ms \(.*\)$//' "$TMP/raw" >"$TMP/got"
}

check_golden() {
    name=$1
    if ! diff -u "$TMP/expected" "$TMP/got" >&2; then
        fail "$name: output differs from golden"
    fi
    echo "relops_smoke: $name clean"
}

# ---- NOT: matched intervals subtracted from each lifespan ----

run_query --match 'MATCH (x)-[a]->(y) NOT (y)-[b]->() IN [0, 9]'
cat >"$TMP/expected" <<'EOF'
(e0, [0, 2])
(e0, [6, 9])
(e2, [2, 7])
(e3, [0, 4])
4 matches
EOF
check_golden "antijoin"

# ---- EXISTS: lifespans intersected with the witness union ----

run_query --match 'MATCH (x)-[a]->(y) EXISTS (y)-[b]->() IN [0, 9]'
cat >"$TMP/expected" <<'EOF'
(e0, [3, 5])
(e3, [5, 5])
2 matches
EOF
check_golden "semijoin"

# ---- WHERE: a single shared tick is OVERLAPS, never MEETS ----

run_query --match \
    'MATCH (x)-[a0: a]->(y)-[a1: b]->(z) WHERE a0 OVERLAPS a1 IN [0, 9]'
cat >"$TMP/expected" <<'EOF'
(e3, e4, [5, 5])
1 matches
EOF
check_golden "allen overlaps"

run_query --match \
    'MATCH (x)-[a0: a]->(y)-[a1: b]->(z) WHERE a0 MEETS a1 IN [0, 9]'
cat >"$TMP/expected" <<'EOF'
0 matches
EOF
check_golden "allen meets (clique-infeasible)"

# ---- COUNT: the aggregate is --count spelled in the language ----

run_query --match 'MATCH (x)-[a]->(y) IN [0, 9] COUNT'
cat >"$TMP/expected" <<'EOF'
3 matches
EOF
check_golden "count"

# ---- TOP k: deterministic durability selection ----

run_query --match 'MATCH (x)-[a]->(y) IN [0, 9] TOP 1'
cat >"$TMP/expected" <<'EOF'
(e0, [0, 9])
1 matches
EOF
check_golden "top-k"

# ---- the --format json variant is fully deterministic ----

"$TCSQ" query "$GRAPH" --format json \
    --match 'MATCH (x)-[a]->(y) NOT (y)-[b]->() IN [0, 9]' >"$TMP/got" 2>&1 \
    || fail "json query exited $?: $(cat "$TMP/got")"
for piece in '[0, 2]' '[6, 9]' '[2, 7]' '[0, 4]'; do
    ts=${piece#[}; ts=${ts%%,*}
    te=${piece##* }; te=${te%]}
    grep -q "\"ts\": $ts" "$TMP/got" && grep -q "\"te\": $te" "$TMP/got" \
        || fail "json output lost piece $piece: $(cat "$TMP/got")"
done
echo "relops_smoke: json variant clean"

# ---- wire variant: server counts == one-shot counts per family ----

SOCK=$(mktemp -u "${TMPDIR:-/tmp}/tcsq-relops-XXXXXX.sock")
"$TCSQ" serve "$GRAPH" --socket "$SOCK" >"$TMP/server.log" 2>&1 &
SRV_PID=$!
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "server socket never appeared"
    kill -0 "$SRV_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.05
done

check_wire() {
    q=$1
    response=$("$TCSQ" client --socket "$SOCK" --match "$q" --count) \
        || fail "client error for: $q"
    server_count=$(printf '%s\n' "$response" \
        | sed -n 's/.*"count": \([0-9][0-9]*\).*/\1/p')
    [ -n "$server_count" ] || fail "no count in response: $response"
    oneshot_count=$("$TCSQ" query "$GRAPH" --match "$q" --count \
        | sed -n 's/^\([0-9][0-9]*\) matches.*/\1/p')
    [ -n "$oneshot_count" ] || fail "no count from one-shot query: $q"
    if [ "$server_count" != "$oneshot_count" ]; then
        fail "count mismatch for '$q': server=$server_count one-shot=$oneshot_count"
    fi
    echo "relops_smoke: wire '$q' -> $server_count (server == one-shot)"
}

check_wire 'MATCH (x)-[a]->(y) NOT (y)-[b]->() IN [0, 9]'
check_wire 'MATCH (x)-[a]->(y) EXISTS (y)-[b]->() IN [0, 9]'
check_wire 'MATCH (x)-[a0: a]->(y)-[a1: b]->(z) WHERE a0 OVERLAPS a1 IN [0, 9]'
check_wire 'MATCH (x)-[a]->(y) IN [0, 9] TOP 1'

"$TCSQ" client --socket "$SOCK" --shutdown >/dev/null 2>&1 || true
wait "$SRV_PID" 2>/dev/null
SRV_PID=

# ---- malformed extended syntax is a usage error (exit 2) ----

for bad in \
    'MATCH (x)-[a]->(y) WHERE IN [0, 9]' \
    'MATCH (x)-[a]->(y) NOT IN [0, 9]' \
    'MATCH (x)-[a]->(y) IN [0, 9] TOP 0' \
    'MATCH (x)-[a]->(y) WHERE a0 SOMETIME a0 IN [0, 9]'; do
    "$TCSQ" query "$GRAPH" --match "$bad" >/dev/null 2>&1
    rc=$?
    [ "$rc" -eq 2 ] || fail "malformed query '$bad' exited $rc, want 2"
done
echo "relops_smoke: malformed-syntax handling clean"

echo "relops_smoke: antijoin/semijoin/allen/aggregates/json/wire all clean"
