#!/bin/sh
# End-to-end smoke test for `tcsq serve`: start a server on a throwaway
# socket, answer a few queries over the wire, cross-check every count
# against the one-shot `tcsq query` evaluator, verify the metrics
# snapshot and the Prometheus exposition saw the work, check that
# --trace-dir produced per-request Chrome traces, and shut down cleanly
# through the protocol. Exits nonzero on any mismatch, transport error,
# or unclean shutdown.
set -eu

# works both from the source tree (bin/server_smoke.sh, binary under
# _build) and as a dune rule (sandbox copies tcsq.exe next to the script)
HERE=$(cd "$(dirname "$0")" && pwd)
if [ -z "${TCSQ:-}" ]; then
    if [ -x "$HERE/tcsq.exe" ]; then
        TCSQ=$HERE/tcsq.exe
    else
        TCSQ=$HERE/../_build/default/bin/tcsq.exe
    fi
fi
DATASET=yellow
SCALE=0.05
SOCK=$(mktemp -u "${TMPDIR:-/tmp}/tcsq-smoke-XXXXXX.sock")
SRV_LOG=$(mktemp "${TMPDIR:-/tmp}/tcsq-smoke-log-XXXXXX")
TRACE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/tcsq-smoke-traces-XXXXXX")
SRV_PID=

cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -f "$SOCK" "$SRV_LOG"
    rm -rf "$TRACE_DIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "server_smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$SRV_LOG" >&2 || true
    exit 1
}

# --domains 2 lets each query fan out onto idle pool workers; counts
# must still match the sequential one-shot evaluator exactly
"$TCSQ" serve --dataset "$DATASET" --scale "$SCALE" --socket "$SOCK" \
    --domains 2 --trace-dir "$TRACE_DIR" >"$SRV_LOG" 2>&1 &
SRV_PID=$!

# wait for the socket to appear
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "socket $SOCK never appeared"
    kill -0 "$SRV_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
done

# count via the server, count via the one-shot evaluator; both are the
# same engine so the numbers must agree exactly
check_query() {
    q=$1
    response=$("$TCSQ" client --socket "$SOCK" --match "$q" --count) \
        || fail "client error for: $q"
    server_count=$(printf '%s\n' "$response" \
        | sed -n 's/.*"count": \([0-9][0-9]*\).*/\1/p')
    [ -n "$server_count" ] || fail "no count in response: $response"
    oneshot_count=$("$TCSQ" query --dataset "$DATASET" --scale "$SCALE" \
        --match "$q" --count | sed -n 's/^\([0-9][0-9]*\) matches.*/\1/p')
    [ -n "$oneshot_count" ] || fail "no count from one-shot query: $q"
    if [ "$server_count" != "$oneshot_count" ]; then
        fail "count mismatch for '$q': server=$server_count one-shot=$oneshot_count"
    fi
    echo "server_smoke: '$q' -> $server_count matches (server == one-shot)"
}

check_query 'MATCH (x)-[a]->(y) IN [0, 50000]'
check_query 'MATCH (x)-[a]->(y)-[b]->(z) IN [0, 20000]'
check_query 'MATCH (x)-[*]->(y) IN [10000, 30000]'

# the snapshot must have counted exactly those three completed queries
metrics=$("$TCSQ" client --socket "$SOCK" --metrics) \
    || fail "metrics request failed"
case "$metrics" in
*'"completed": 3'*) ;;
*) fail "metrics did not report 3 completed queries: $metrics" ;;
esac

# the Prometheus exposition must carry the same three completed
# requests, plus the engine's run-stat counters
prom=$("$TCSQ" client --socket "$SOCK" --prom) \
    || fail "metrics_prom request failed"
case "$prom" in
*'tcsq_requests_total{outcome="completed"} 3'*) ;;
*) fail "prometheus exposition missing completed=3: $prom" ;;
esac
case "$prom" in
*'tcsq_run_stats_total{counter="seeks"}'*) ;;
*) fail "prometheus exposition missing seeks counter: $prom" ;;
esac
case "$prom" in
*'tcsq_request_duration_seconds_bucket'*) ;;
*) fail "prometheus exposition missing latency histogram: $prom" ;;
esac

# --trace-dir (default sample rate 1) must have written one Chrome
# trace per query request, each carrying the trace/v1 schema
n_traces=$(ls "$TRACE_DIR"/req-*.json 2>/dev/null | wc -l)
[ "$n_traces" -ge 3 ] || fail "expected >=3 trace files, found $n_traces"
for t in "$TRACE_DIR"/req-*.json; do
    grep -q '"schema": "trace/v1"' "$t" || fail "$t missing trace/v1 schema"
    grep -q '"name": "request"' "$t" || fail "$t missing request span"
done

# protocol shutdown; the server process must exit on its own
"$TCSQ" client --socket "$SOCK" --shutdown >/dev/null \
    || fail "shutdown request failed"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "server still running after shutdown"
    sleep 0.1
done
wait "$SRV_PID" 2>/dev/null || fail "server exited with an error"
SRV_PID=
[ -S "$SOCK" ] && fail "socket not removed on shutdown"

echo "server_smoke: serve/query/metrics/prometheus/traces/shutdown all clean"
