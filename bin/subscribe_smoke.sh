#!/bin/sh
# End-to-end smoke test for standing queries: `tcsq client --subscribe`
# registers a query over the wire, ingest batches push framed delta
# notifications (additions on a fixed future window, retraction as a
# sliding window advances past an old match), `--watch` streams them,
# unsubscribe stops the stream, the tcsq_subscriptions_active /
# tcsq_deltas_pushed_total / tcsq_delta_duration_seconds Prometheus
# families and the qlog's delta records track it all, and a malformed
# subscribe query is a usage error (exit 2). Exits nonzero on any
# mismatch.
set -eu

HERE=$(cd "$(dirname "$0")" && pwd)
if [ -z "${TCSQ:-}" ]; then
    if [ -x "$HERE/tcsq.exe" ]; then
        TCSQ=$HERE/tcsq.exe
    else
        TCSQ=$HERE/../_build/default/bin/tcsq.exe
    fi
fi
DATASET=yellow
SCALE=0.05
SOCK=$(mktemp -u "${TMPDIR:-/tmp}/tcsq-subscribe-XXXXXX.sock")
SRV_LOG=$(mktemp "${TMPDIR:-/tmp}/tcsq-subscribe-srvlog-XXXXXX")
QLOG=$(mktemp "${TMPDIR:-/tmp}/tcsq-subscribe-XXXXXX.jsonl")
OUT=$(mktemp "${TMPDIR:-/tmp}/tcsq-subscribe-out-XXXXXX")
WATCH1=$(mktemp "${TMPDIR:-/tmp}/tcsq-subscribe-w1-XXXXXX")
WATCH2=$(mktemp "${TMPDIR:-/tmp}/tcsq-subscribe-w2-XXXXXX")
SRV_PID=
WATCH_PID=

cleanup() {
    [ -n "$WATCH_PID" ] && kill "$WATCH_PID" 2>/dev/null || true
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -f "$SOCK" "$SRV_LOG" "$QLOG" "$OUT" "$WATCH1" "$WATCH2"
}
trap cleanup EXIT INT TERM

fail() {
    echo "subscribe_smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$SRV_LOG" >&2 || true
    echo "--- watcher 1 ---" >&2
    cat "$WATCH1" >&2 || true
    echo "--- watcher 2 ---" >&2
    cat "$WATCH2" >&2 || true
    exit 1
}

"$TCSQ" serve --dataset "$DATASET" --scale "$SCALE" --socket "$SOCK" \
    --query-log "$QLOG" --qlog-sample 1.0 \
    >"$SRV_LOG" 2>&1 &
SRV_PID=$!
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "socket $SOCK never appeared"
    kill -0 "$SRV_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
done

# poll the gauge until the registry reaches the wanted size; this is
# also the sync point that keeps ingests from racing a (dis)connect
wait_active() {
    want=$1
    i=0
    while :; do
        got=$("$TCSQ" client --socket "$SOCK" --prom \
            | sed -n 's/^tcsq_subscriptions_active \([0-9][0-9]*\)$/\1/p')
        [ "$got" = "$want" ] && return 0
        i=$((i + 1))
        [ "$i" -gt 100 ] \
            && fail "subscriptions_active never reached $want (got ${got:-?})"
        sleep 0.1
    done
}

ingest() {
    printf '%s\n' "$1" | "$TCSQ" client --socket "$SOCK" --stdin >"$OUT" \
        || fail "ingest request failed: $(cat "$OUT")"
    grep -q '"status": "ok"' "$OUT" \
        || fail "ingest not acknowledged: $(cat "$OUT")"
}

# the window lives far beyond the dataset's time domain, so the initial
# snapshot is empty and every delta is exactly the edges we ingest
Q='MATCH (x)-[a]->(y) IN [900000000, 900000100]'

# ---- phase 1: subscribe, ingest, watch two pushed deltas ------------
"$TCSQ" client --socket "$SOCK" --subscribe "$Q" --watch 2 >"$WATCH1" 2>&1 &
WATCH_PID=$!
wait_active 1

ingest '{"op": "ingest", "edges": [{"src": 0, "dst": 1, "label": "a", "ts": 900000010, "te": 900000020}]}'
grep -q '"appended": 1' "$OUT" || fail "first ingest appended: $(cat "$OUT")"
ingest '{"op": "ingest", "edges": [{"src": 1, "dst": 2, "label": "a", "ts": 900000030, "te": 900000040}]}'

wait "$WATCH_PID" || fail "watcher 1 exited nonzero"
WATCH_PID=
[ "$(grep -c '"notification": "delta"' "$WATCH1")" -eq 2 ] \
    || fail "expected 2 delta notifications: $(cat "$WATCH1")"
head -n 1 "$WATCH1" | grep -q '"status": "ok"' \
    || fail "subscribe response missing: $(cat "$WATCH1")"
head -n 1 "$WATCH1" | grep -q '"count": 0' \
    || fail "initial snapshot should be empty: $(cat "$WATCH1")"
grep -q '"total": 1' "$WATCH1" || fail "first delta total: $(cat "$WATCH1")"
grep -q '"total": 2' "$WATCH1" || fail "second delta total: $(cat "$WATCH1")"
grep -q '"retracted": \[\]' "$WATCH1" \
    || fail "fixed-window deltas should not retract: $(cat "$WATCH1")"

# the watcher hung up: its subscription must be garbage-collected
wait_active 0
echo "subscribe_smoke: phase 1 (subscribe, pushed deltas, watch) clean"

# ---- phase 2: a sliding window retracts what it leaves behind -------
# stream head is 900000040 now, so width 11 starts at [900000030, ...]
# covering only the second phase-1 edge; the next ingest advances the
# window past it
"$TCSQ" client --socket "$SOCK" --subscribe "$Q" --window-width 11 \
    --watch 1 >"$WATCH2" 2>&1 &
WATCH_PID=$!
wait_active 1
ingest '{"op": "ingest", "edges": [{"src": 2, "dst": 3, "label": "a", "ts": 900000050, "te": 900000060}]}'
wait "$WATCH_PID" || fail "watcher 2 exited nonzero"
WATCH_PID=
head -n 1 "$WATCH2" | grep -q '"count": 1' \
    || fail "sliding snapshot should hold one match: $(cat "$WATCH2")"
delta2=$(grep '"notification": "delta"' "$WATCH2") \
    || fail "no delta on the sliding subscription: $(cat "$WATCH2")"
echo "$delta2" | grep -q '"total": 1' \
    || fail "sliding delta total: $delta2"
echo "$delta2" | grep -q '"retracted": \[{' \
    || fail "advancing window pushed no retraction: $delta2"
wait_active 0
echo "subscribe_smoke: phase 2 (sliding-window retraction) clean"

# ---- phase 3: explicit unsubscribe ----------------------------------
printf '%s\n' '{"op": "subscribe", "query": "'"$Q"'"}' \
    | "$TCSQ" client --socket "$SOCK" --stdin >"$OUT" \
    || fail "stdin subscribe failed"
sub=$(sed -n 's/.*"sub": \([0-9][0-9]*\).*/\1/p' "$OUT")
[ -n "$sub" ] || fail "subscribe response carried no sub id: $(cat "$OUT")"
wait_active 0 # that connection closed, so the registry is empty again

"$TCSQ" client --socket "$SOCK" --subscribe "$Q" --watch 1 >"$WATCH1" 2>&1 &
WATCH_PID=$!
wait_active 1
sub=$(sed -n 's/.*"sub": \([0-9][0-9]*\).*/\1/p' "$WATCH1")
[ -n "$sub" ] || fail "watcher subscribe carried no sub id: $(cat "$WATCH1")"
printf '%s\n' '{"op": "unsubscribe", "sub": '"$sub"'}' \
    | "$TCSQ" client --socket "$SOCK" --stdin >"$OUT" \
    || fail "unsubscribe failed"
grep -q '"removed": true' "$OUT" \
    || fail "unsubscribe did not remove: $(cat "$OUT")"
wait_active 0
# the watcher is still blocked on deltas that will never come; reap it
kill "$WATCH_PID" 2>/dev/null || true
wait "$WATCH_PID" 2>/dev/null || true
WATCH_PID=
echo "subscribe_smoke: phase 3 (unsubscribe) clean"

# ---- phase 4: observability -----------------------------------------
prom=$("$TCSQ" client --socket "$SOCK" --prom) || fail "prom request failed"
for want in \
    'tcsq_subscriptions_active 0' \
    'tcsq_deltas_pushed_total 3' \
    'tcsq_delta_duration_seconds_count 3' \
    'tcsq_delta_duration_seconds_bucket'; do
    case "$prom" in
    *"$want"*) ;;
    *) fail "prometheus exposition missing '$want'" ;;
    esac
done
[ "$(grep -c '"method": "delta"' "$QLOG")" -eq 3 ] \
    || fail "expected 3 qlog delta records, got $(grep -c '"method": "delta"' "$QLOG" || true)"
echo "subscribe_smoke: phase 4 (prometheus families, qlog deltas) clean"

# ---- phase 5: malformed subscribe is a usage error (exit 2) ---------
rc=0
"$TCSQ" client --socket "$SOCK" --subscribe 'MATCH (x)-[a]->' \
    >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "malformed subscribe exited $rc, want 2"
# protocol-level garbage (bad window_width) is a typed server error
printf '%s\n' '{"op": "subscribe", "query": "'"$Q"'", "window_width": 0}' \
    | "$TCSQ" client --socket "$SOCK" --stdin >"$OUT" 2>&1 || true
grep -q '"status": "error"' "$OUT" \
    || fail "window_width 0 not rejected: $(cat "$OUT")"
echo "subscribe_smoke: phase 5 (malformed subscribe) clean"

"$TCSQ" client --socket "$SOCK" --shutdown >/dev/null \
    || fail "shutdown request failed"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "server still running after shutdown"
    sleep 0.1
done
wait "$SRV_PID" 2>/dev/null || fail "server exited with an error"
SRV_PID=

echo "subscribe_smoke: subscribe, deltas, retraction, unsubscribe, metrics all clean"
