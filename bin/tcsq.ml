(* tcsq: command-line front end for temporal-clique subgraph querying.

   Subcommands:
     datasets   list the built-in synthetic datasets
     generate   write a dataset (or custom random graph) as CSV
     stats      describe a graph
     query      evaluate one temporal-clique query
     explain    show the TSRJoin plan for a query
     compare    run one query under all four methods
     serve      resident query server over a Unix-domain socket
     client     talk to a running server
     fuzz       differential + metamorphic conformance fuzzing

   Examples:
     tcsq generate --dataset yellow --scale 0.1 -o yellow.csv
     tcsq stats yellow.csv
     tcsq query yellow.csv --pattern 3-star --labels a,b,c --window 0:10000
     tcsq compare --dataset bike --pattern triangle --labels a,b,c \
         --window-frac 0.1
     tcsq serve --dataset yellow --socket /tmp/tcsq.sock
     tcsq client --socket /tmp/tcsq.sock \
         --match 'MATCH (x)-[a]->(y) IN [0, 10000]' *)

open Cmdliner

(* ---------- shared arguments and loaders ---------- *)

let dataset_arg =
  let doc = "Built-in dataset name (yellow, green, bike, divvy, stack, caida)." in
  Arg.(value & opt (some string) None & info [ "dataset" ] ~docv:"NAME" ~doc)

let scale_arg =
  let doc = "Edge-count scale factor for built-in datasets." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let graph_file_arg =
  let doc =
    "Graph file: CSV (src,dst,label,ts,te per line) or the binary format \
     (.bin extension)."
  in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc)

let load_graph file dataset scale =
  match (file, dataset) with
  | Some path, None -> (
      try
        if Filename.check_suffix path ".bin" then
          Ok (Tgraph.Binary_io.load path)
        else Ok (Tgraph.Io.load path)
      with
      | Tgraph.Io.Malformed msg -> Error msg
      | Sys_error msg -> Error msg)
  | None, Some name -> (
      match Tgraph.Dataset.of_string name with
      | Some ds -> Ok (Tgraph.Dataset.graph ~scale ds)
      | None -> Error (Printf.sprintf "unknown dataset %S" name))
  | Some _, Some _ -> Error "give either a graph file or --dataset, not both"
  | None, None -> Error "need a graph file or --dataset"

let pattern_arg =
  let doc = "Query pattern: 3-star, 4-chain, triangle, 4-circle, tshape4, ..." in
  Arg.(value & opt string "3-star" & info [ "pattern"; "p" ] ~docv:"SHAPE" ~doc)

let labels_arg =
  let doc =
    "Comma-separated edge labels, one per pattern edge ('*' = any label)."
  in
  Arg.(value & opt (some string) None & info [ "labels"; "l" ] ~docv:"L1,L2,..." ~doc)

let window_arg =
  let doc = "Query window as START:END (inclusive)." in
  Arg.(value & opt (some string) None & info [ "window"; "w" ] ~docv:"WS:WE" ~doc)

let window_frac_arg =
  let doc = "Query window as a fraction of the time domain (centered)." in
  Arg.(value & opt (some float) None & info [ "window-frac" ] ~docv:"F" ~doc)

let method_arg =
  let doc = "Processing method: tsrjoin, binary, hybrid, time." in
  Arg.(value & opt string "tsrjoin" & info [ "method"; "m" ] ~docv:"METHOD" ~doc)

let limit_arg =
  let doc = "Stop after printing this many matches." in
  Arg.(value & opt int 20 & info [ "limit"; "n" ] ~docv:"N" ~doc)

let domains_arg =
  let doc =
    "Execute TSRJoin across this many domains (cores). 1 = sequential; \
     higher values fan root bindings out over a shared work-stealing \
     domain pool. Other methods ignore this."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let parse_window g window window_frac =
  match (window, window_frac) with
  | Some s, None -> (
      match String.split_on_char ':' s with
      | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some ws, Some we when ws <= we -> Ok (Temporal.Interval.make ws we)
          | _ -> Error (Printf.sprintf "bad window %S" s))
      | _ -> Error (Printf.sprintf "bad window %S (want WS:WE)" s))
  | None, Some frac ->
      if frac <= 0.0 || frac > 1.0 then Error "window fraction must be in (0,1]"
      else Ok (Tgraph.Graph.window_of_fraction g ~frac ~at:0.5)
  | None, None -> Ok (Tgraph.Graph.time_domain g)
  | Some _, Some _ -> Error "give --window or --window-frac, not both"

let match_arg =
  let doc =
    "Textual query, e.g. 'MATCH (x)-[a]->(y)-[b]->(z) IN [0, 100]'. \
     Overrides --pattern/--labels/--window."
  in
  Arg.(value & opt (some string) None & info [ "match" ] ~docv:"QUERY" ~doc)

let parse_query g pattern labels window window_frac =
  let ( let* ) = Result.bind in
  let* shape =
    match Semantics.Pattern.of_string pattern with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown pattern %S" pattern)
  in
  let k = Semantics.Pattern.n_edges shape in
  let* label_ids =
    match labels with
    | None ->
        (* default: the first k labels of the graph *)
        if Tgraph.Graph.n_labels g < k then
          Error (Printf.sprintf "graph has fewer than %d labels; use --labels" k)
        else Ok (Array.init k Fun.id)
    | Some s ->
        let names = String.split_on_char ',' (String.trim s) in
        if List.length names <> k then
          Error (Printf.sprintf "pattern %s needs %d labels, got %d" pattern k
                   (List.length names))
        else begin
          let table = Tgraph.Graph.labels g in
          let rec resolve acc = function
            | [] -> Ok (Array.of_list (List.rev acc))
            | n :: rest when String.trim n = "*" ->
                resolve (Semantics.Query.any_label :: acc) rest
            | n :: rest -> (
                match Tgraph.Label.find table (String.trim n) with
                | Some id -> resolve (id :: acc) rest
                | None -> Error (Printf.sprintf "unknown label %S" n))
          in
          resolve [] names
        end
  in
  let* window = parse_window g window window_frac in
  Ok (Semantics.Pattern.instantiate shape ~labels:label_ids ~window)

let lasting_arg =
  let doc = "Only return matches whose lifespan lasts at least this long." in
  Arg.(value & opt (some int) None & info [ "lasting" ] ~docv:"D" ~doc)

let apply_lasting lasting q =
  match lasting with
  | Some d -> Semantics.Query.with_min_duration q d
  | None -> q

let apply_lasting_ext lasting eq =
  match lasting with
  | Some d -> Semantics.Equery.with_min_duration eq d
  | None -> eq

(* --match text goes through the full extended surface
   (NOT/EXISTS/WHERE/COUNT/TOP); the --pattern path stays plain *)
let parse_query_or_match g match_ pattern labels window window_frac =
  match match_ with
  | Some text ->
      let default_window =
        match parse_window g window window_frac with
        | Ok w -> Some w
        | Error _ -> None
      in
      Semantics.Qlang.parse_and_compile_ext ?default_window g text
  | None ->
      Result.map Semantics.Equery.plain
        (parse_query g pattern labels window window_frac)

let or_die = function
  | Ok v -> v
  | Error msg ->
      Format.eprintf "tcsq: %s@." msg;
      exit 2

(* ---------- subcommands ---------- *)

let datasets_cmd =
  let run () =
    Array.iter
      (fun ds ->
        let cfg = Tgraph.Dataset.config ds in
        Format.printf "%-8s %7d edges  %s@." (Tgraph.Dataset.to_string ds)
          cfg.Tgraph.Generator.n_edges (Tgraph.Dataset.describe ds))
      Tgraph.Dataset.all
  in
  Cmd.v (Cmd.info "datasets" ~doc:"List the built-in synthetic datasets.")
    Term.(const run $ const ())

let generate_cmd =
  let output =
    Arg.(value & opt string "graph.csv" & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run dataset scale output =
    let g =
      or_die
        (match dataset with
        | Some _ -> load_graph None dataset scale
        | None -> Error "--dataset is required")
    in
    if Filename.check_suffix output ".bin" then Tgraph.Binary_io.save g output
    else Tgraph.Io.save g output;
    Format.printf "wrote %a to %s@." Tgraph.Graph.pp_summary g output
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic dataset as CSV.")
    Term.(const run $ dataset_arg $ scale_arg $ output)

let stats_cmd =
  let run file dataset scale =
    let g = or_die (load_graph file dataset scale) in
    Format.printf "%a@." Tgraph.Stats.pp (Tgraph.Stats.compute g)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Describe a temporal graph.")
    Term.(const run $ graph_file_arg $ dataset_arg $ scale_arg)

let query_cmd =
  let count_only =
    Arg.(value & flag & info [ "count" ] ~doc:"Print only the match count.")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("plain", `Plain); ("json", `Json); ("csv", `Csv) ]) `Plain
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: plain, json or csv.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"TUPLES"
          ~doc:
            "Intermediate-tuple budget; a run that exhausts it stops with \
             a truncation note instead of an error.")
  in
  let run file dataset scale match_ pattern labels window window_frac lasting
      method_ limit domains budget count_only format =
    let g = or_die (load_graph file dataset scale) in
    let q =
      apply_lasting_ext lasting
        (or_die (parse_query_or_match g match_ pattern labels window window_frac))
    in
    (* a COUNT query is --count spelled in the language *)
    let count_only =
      count_only || Semantics.Equery.agg q = Some Semantics.Equery.Count
    in
    let m =
      or_die
        (match Workload.Engine.method_of_string method_ with
        | Some m -> Ok m
        | None -> Error (Printf.sprintf "unknown method %S" method_))
    in
    let engine = Workload.Engine.prepare g in
    let stats =
      match budget with
      | None -> Semantics.Run_stats.create ()
      | Some b ->
          Semantics.Run_stats.create
            ~limits:
              { Semantics.Run_stats.max_results = max_int;
                max_intermediate = b }
            ()
    in
    let shown = ref 0 in
    let total = ref 0 in
    let kept = ref [] in
    let t0 = Unix.gettimeofday () in
    let truncated =
      match
        Workload.Engine.run_ext ~stats ~domains engine m q ~emit:(fun mtch ->
            incr total;
            if (not count_only) && !shown < limit then begin
              incr shown;
              match format with
              | `Plain -> Format.printf "%a@." Semantics.Match_result.pp mtch
              | `Json | `Csv -> kept := mtch :: !kept
            end)
      with
      | () -> None
      | exception Semantics.Run_stats.Limit_exceeded reason -> Some reason
    in
    let dt = Unix.gettimeofday () -. t0 in
    (match format with
    | `Plain ->
        if (not count_only) && !total > !shown then
          Format.printf "... and %d more@." (!total - !shown);
        (match truncated with
        | Some reason -> Format.printf "truncated: %s@." reason
        | None -> ());
        Format.printf "%d matches in %.1f ms (%a)@." !total (dt *. 1000.0)
          Semantics.Run_stats.pp stats
    | `Json ->
        print_endline (Semantics.Json_out.matches_to_json g (List.rev !kept))
    | `Csv ->
        print_endline Semantics.Json_out.csv_header;
        List.iter
          (fun mtch -> print_endline (Semantics.Json_out.match_to_csv mtch))
          (List.rev !kept))
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate a temporal-clique subgraph query.")
    Term.(
      const run $ graph_file_arg $ dataset_arg $ scale_arg $ match_arg
      $ pattern_arg $ labels_arg $ window_arg $ window_frac_arg $ lasting_arg
      $ method_arg $ limit_arg $ domains_arg $ budget_arg $ count_only
      $ format_arg)

let profile_cmd =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the run's spans as Chrome trace-event JSON (schema \
             trace/v1), loadable in chrome://tracing or Perfetto.")
  in
  let run file dataset scale match_ pattern labels window window_frac lasting
      method_ domains trace_out =
    let g = or_die (load_graph file dataset scale) in
    let q =
      apply_lasting_ext lasting
        (or_die (parse_query_or_match g match_ pattern labels window window_frac))
    in
    let m =
      or_die
        (match Workload.Engine.method_of_string method_ with
        | Some m -> Ok m
        | None -> Error (Printf.sprintf "unknown method %S" method_))
    in
    let engine = Workload.Engine.prepare g in
    let stats = Semantics.Run_stats.create () in
    let obs = Obs.Sink.create ~clock:Unix.gettimeofday () in
    let total = ref 0 in
    let t0 = Unix.gettimeofday () in
    Workload.Engine.run_ext ~stats ~obs ~domains engine m q ~emit:(fun _ ->
        incr total);
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "%d matches in %.1f ms (%a)@.@." !total (dt *. 1000.0)
      Semantics.Run_stats.pp stats;
    Format.printf "%a" Obs.Trace.pp_summary obs;
    match trace_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Obs.Trace.to_chrome_json ~process_name:"tcsq" obs);
        close_out oc;
        Format.printf "wrote %d trace events to %s@." (Obs.Sink.n_events obs)
          path
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Evaluate a query with phase-attributed tracing: prints a \
          per-phase time table (count, total, self, share of the run) \
          and optionally exports a Chrome trace.")
    Term.(
      const run $ graph_file_arg $ dataset_arg $ scale_arg $ match_arg
      $ pattern_arg $ labels_arg $ window_arg $ window_frac_arg $ lasting_arg
      $ method_arg $ domains_arg $ trace_arg)

let parse_pivot_order s =
  let parts = String.split_on_char ',' (String.trim s) in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match int_of_string_opt (String.trim p) with
        | Some v -> go (v :: acc) rest
        | None -> Error (Printf.sprintf "bad pivot order %S" s))
  in
  go [] parts

let read_statement_lines path =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let acc = ref [] in
        (try
           while true do
             acc := input_line ic :: !acc
           done
         with End_of_file -> ());
        List.rev !acc)
  in
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then None else Some line)
    lines

let explain_cmd =
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "Also execute the chosen plan and report estimated vs measured \
             intermediate cardinality per TSRJoin level, with a \
             misestimation factor per level (P009 above x16).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit each report as one tcsq-explain/v1 JSON object per line.")
  in
  let queries_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "queries" ] ~docv:"FILE"
          ~doc:
            "Explain every query-language statement in this workload file.")
  in
  let pivot_order_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pivot-order" ] ~docv:"V1,V2,..."
          ~doc:
            "Also estimate the literal plan induced by this pivot-variable \
             order, as a third candidate next to the cost-model and \
             adaptive plans.")
  in
  let run file dataset scale match_ pattern labels window window_frac lasting
      queries_file pivot_order json analyze =
    let g = or_die (load_graph file dataset scale) in
    let order =
      match pivot_order with
      | None -> None
      | Some s -> Some (or_die (parse_pivot_order s))
    in
    let target = Analysis.Lint.target_of_graph g in
    let label_names = Tgraph.Label.names (Tgraph.Graph.labels g) in
    (* explain reports on the core pattern: plan choice and cardinality
       estimation ignore decorations (they post-filter or slice) *)
    let queries =
      List.map Semantics.Equery.core
        (match queries_file with
        | Some path ->
            List.map
              (fun line ->
                match Analysis.Lint.check_text target line with
                | Some q, _ -> q
                | None, ds ->
                    or_die
                      (Error
                         (Format.asprintf "%s:@;%a" line
                            (Format.pp_print_list Analysis.Diagnostic.pp)
                            ds)))
              (read_statement_lines path)
        | None ->
            [
              apply_lasting_ext lasting
                (or_die
                   (parse_query_or_match g match_ pattern labels window
                      window_frac));
            ])
    in
    List.iter
      (fun q ->
        let report = Analysis.Explain.analyze ?pivot_order:order target q in
        let analyzed =
          if analyze then Analysis.Explain.run_analyze target report else None
        in
        if json then
          print_endline
            (Analysis.Explain.to_json ?analyzed ~label_names report)
        else begin
          Format.printf "%a@." (Analysis.Explain.pp ~label_names) report;
          if analyze then
            match analyzed with
            | Some a -> Format.printf "%a@." Analysis.Explain.pp_analyzed a
            | None ->
                Format.printf
                  "analyze: skipped (provably empty effective window)@."
        end)
      queries
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Static cost-annotated report for a query: propagated temporal \
          bounds, the effective window, per-edge and per-TSRJoin-level \
          cardinality estimates, and the planner's ranking rationale.")
    Term.(
      const run $ graph_file_arg $ dataset_arg $ scale_arg $ match_arg
      $ pattern_arg $ labels_arg $ window_arg $ window_frac_arg $ lasting_arg
      $ queries_arg $ pivot_order_arg $ json_arg $ analyze)

let compare_cmd =
  let budget =
    Arg.(
      value
      & opt int 5_000_000
      & info [ "budget" ] ~docv:"TUPLES"
          ~doc:"Per-method intermediate-tuple budget.")
  in
  let run file dataset scale match_ pattern labels window window_frac lasting
      budget =
    let g = or_die (load_graph file dataset scale) in
    let q =
      apply_lasting_ext lasting
        (or_die (parse_query_or_match g match_ pattern labels window window_frac))
    in
    let engine = Workload.Engine.prepare g in
    Format.printf "%-8s %10s %10s %14s %12s@." "method" "matches" "ms"
      "intermediate" "scanned";
    Array.iter
      (fun m ->
        let stats =
          Semantics.Run_stats.create
            ~limits:
              { Semantics.Run_stats.max_results = max_int;
                max_intermediate = budget }
            ()
        in
        let t0 = Unix.gettimeofday () in
        let outcome =
          match Workload.Engine.count_ext ~stats engine m q with
          | n -> string_of_int n
          | exception Semantics.Run_stats.Limit_exceeded _ -> "budget!"
        in
        Format.printf "%-8s %10s %10.1f %14d %12d@."
          (Workload.Engine.method_name m)
          outcome
          ((Unix.gettimeofday () -. t0) *. 1000.0)
          stats.Semantics.Run_stats.intermediate
          stats.Semantics.Run_stats.scanned)
      Workload.Engine.all_methods
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run one query under all four methods.")
    Term.(
      const run $ graph_file_arg $ dataset_arg $ scale_arg $ match_arg
      $ pattern_arg $ labels_arg $ window_arg $ window_frac_arg $ lasting_arg
      $ budget)

let topk_cmd =
  let k_arg =
    Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"How many matches.")
  in
  let run file dataset scale match_ pattern labels window window_frac k =
    let g = or_die (load_graph file dataset scale) in
    let eq =
      or_die (parse_query_or_match g match_ pattern labels window window_frac)
    in
    let q =
      if Semantics.Equery.is_plain eq then Semantics.Equery.core eq
      else
        or_die
          (Error
             "tcsq topk takes a plain query; run an extended query with a \
              'TOP k' aggregate through 'tcsq query' instead")
    in
    let tai = Tcsq_core.Tai.build g in
    let top = Tcsq_core.Durable.top_k tai q ~k in
    List.iter
      (fun m ->
        Format.printf "%4d ticks  %a@."
          (Tcsq_core.Durable.durability m)
          Semantics.Match_result.pp m)
      top;
    Format.printf "(%d most durable matches)@." (List.length top)
  in
  Cmd.v
    (Cmd.info "topk" ~doc:"The k most durable matches of a query.")
    Term.(
      const run $ graph_file_arg $ dataset_arg $ scale_arg $ match_arg
      $ pattern_arg $ labels_arg $ window_arg $ window_frac_arg $ k_arg)

let reach_cmd =
  let src_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "from" ] ~docv:"VERTEX" ~doc:"Source vertex.")
  in
  let show_arg =
    Arg.(value & opt int 10 & info [ "show" ] ~docv:"N"
           ~doc:"Print journeys to the first N reachable vertices.")
  in
  let to_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "to" ] ~docv:"VERTEX"
          ~doc:"Also report the fastest journey duration to this vertex.")
  in
  let run file dataset scale window window_frac src show to_ =
    let g = or_die (load_graph file dataset scale) in
    let window = or_die (parse_window g window window_frac) in
    let r = Tpath.Reachability.earliest_arrival ~window g ~src in
    Format.printf
      "%d of %d vertices reachable from %d within %s (time-respecting)@."
      (Tpath.Reachability.reachable_count r)
      (Tgraph.Graph.n_vertices g) src
      (Temporal.Interval.to_string window);
    let shown = ref 0 in
    let v = ref 0 in
    while !shown < show && !v < Tgraph.Graph.n_vertices g do
      (match Tpath.Reachability.journey_to r !v with
      | Some j ->
          incr shown;
          Format.printf "  to %d: %a@." !v Tpath.Journey.pp j
      | None -> ());
      incr v
    done;
    match to_ with
    | None -> ()
    | Some dst -> (
        match Tpath.Reachability.fastest_duration ~window g ~src ~dst with
        | Some d -> Format.printf "fastest journey %d -> %d: %d ticks@." src dst d
        | None -> Format.printf "no journey %d -> %d inside the window@." src dst)
  in
  Cmd.v
    (Cmd.info "reach"
       ~doc:
         "Time-respecting reachability (earliest arrival) from a vertex — \
          the contrast query class to temporal cliques.")
    Term.(
      const run $ graph_file_arg $ dataset_arg $ scale_arg $ window_arg
      $ window_frac_arg $ src_arg $ show_arg $ to_arg)

let suite_cmd =
  let file_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "queries" ] ~docv:"FILE"
          ~doc:"Workload file: one query-language statement per line.")
  in
  let run file dataset scale queries_file method_ =
    let g = or_die (load_graph file dataset scale) in
    let m =
      or_die
        (match Workload.Engine.method_of_string method_ with
        | Some m -> Ok m
        | None -> Error (Printf.sprintf "unknown method %S" method_))
    in
    let queries =
      or_die
        (match Workload.Suite.load g queries_file with
        | Ok qs -> Ok qs
        | Error e -> Error e)
    in
    let engine = Workload.Engine.prepare g in
    Format.printf "running %d queries with %s@." (List.length queries)
      (Workload.Engine.method_name m);
    let meas = Workload.Runner.run_method engine m queries in
    Format.printf "%a@.%a@." Workload.Runner.pp_header ()
      Workload.Runner.pp_measurement meas
  in
  Cmd.v
    (Cmd.info "run-suite" ~doc:"Execute a saved workload file and report timings.")
    Term.(
      const run $ graph_file_arg $ dataset_arg $ scale_arg $ file_arg
      $ method_arg)

let lint_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit diagnostics as a JSON array of reports.")
  in
  let queries_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "queries" ] ~docv:"FILE"
          ~doc:"Lint every query-language statement in this workload file.")
  in
  let pivot_order_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pivot-order" ] ~docv:"V1,V2,..."
          ~doc:
            "Also lint the literal plan induced by this pivot-variable \
             order (no planner repair): a wrong order surfaces as \
             unbound-pivot / unmatched-edge diagnostics.")
  in
  (* windows are parsed leniently here: an inverted window must reach the
     analyzer as a diagnostic, not die as a CLI usage error *)
  let raw_window_diags window =
    match window with
    | None -> []
    | Some s -> (
        match String.split_on_char ':' s with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some ws, Some we ->
                Analysis.Query_check.check_raw_window ~ws ~we
            | _ -> [])
        | _ -> [])
  in
  let run file dataset scale match_ pattern labels window window_frac lasting
      queries_file pivot_order json =
    let g = or_die (load_graph file dataset scale) in
    let order =
      match pivot_order with
      | None -> None
      | Some s -> Some (or_die (parse_pivot_order s))
    in
    let target = Analysis.Lint.target_of_graph g in
    (* each linted query: its rendered text plus diagnostics *)
    let reports =
      match queries_file with
      | Some path ->
          List.map
            (fun line ->
              let q, ds = Analysis.Lint.check_text target line in
              (line, q, ds))
            (read_statement_lines path)
      | None -> (
          let window_diags = raw_window_diags window in
          if window_diags <> [] then [ ("<window>", None, window_diags) ]
          else
            match match_ with
            | Some text ->
                let default_window =
                  match parse_window g window window_frac with
                  | Ok w -> Some w
                  | Error _ -> None
                in
                let q, ds =
                  Analysis.Lint.check_text ?default_window target text
                in
                [ (text, q, ds) ]
            | None ->
                let q =
                  apply_lasting lasting
                    (or_die (parse_query g pattern labels window window_frac))
                in
                [ (Semantics.Qlang.render g q,
                   Some (Semantics.Equery.plain q),
                   Analysis.Lint.check_query target q) ])
    in
    let reports =
      match order with
      | None -> reports
      | Some order ->
          List.map
            (fun (text, q, ds) ->
              match q with
              | Some q ->
                  (text, Some q,
                   ds
                   @ Analysis.Lint.check_pivot_order target
                       (Semantics.Equery.core q) order)
              | None -> (text, None, ds))
            reports
    in
    let all = List.concat_map (fun (_, _, ds) -> ds) reports in
    if json then
      print_endline
        (Semantics.Json_out.arr
           (List.map
              (fun (text, _, ds) ->
                Semantics.Json_out.obj
                  [
                    ("query", Semantics.Json_out.escape_string text);
                    ("diagnostics", Analysis.Diagnostic.list_to_json ds);
                  ])
              reports))
    else begin
      List.iter
        (fun (text, _, ds) ->
          if ds <> [] then begin
            Format.printf "%s@." text;
            List.iter
              (fun d -> Format.printf "  %a@." Analysis.Diagnostic.pp d)
              ds
          end)
        reports;
      let count sev =
        List.length
          (List.filter (fun d -> d.Analysis.Diagnostic.severity = sev) all)
      in
      Format.printf "%d queries linted: %d errors, %d warnings, %d hints@."
        (List.length reports)
        (count Analysis.Diagnostic.Error)
        (count Analysis.Diagnostic.Warning)
        (count Analysis.Diagnostic.Hint)
    end;
    exit (Analysis.Diagnostic.exit_code all)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze queries (and their plans) without executing \
          them: exit 0 clean, 1 warnings, 2 errors.")
    Term.(
      const run $ graph_file_arg $ dataset_arg $ scale_arg $ match_arg
      $ pattern_arg $ labels_arg $ window_arg $ window_frac_arg $ lasting_arg
      $ queries_arg $ pivot_order_arg $ json_arg)

let socket_arg =
  let doc = "Unix-domain socket path of the query server." in
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains executing queries.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission queue capacity; requests beyond it are answered \
             with a typed 'overloaded' response instead of queuing.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request wall-clock deadline; deadline-capped \
             requests answer with a typed truncation.")
  in
  let serve_limit_arg =
    Arg.(
      value & opt int 100
      & info [ "limit" ] ~docv:"N"
          ~doc:"Default maximum matches echoed back per response.")
  in
  let trace_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:
            "Write one Chrome trace-event JSON file (req-<seq>.json, \
             schema trace/v1) per sampled query request into DIR.")
  in
  let trace_sample_arg =
    Arg.(
      value & opt int 1
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:"With --trace-dir: trace every Nth query request.")
  in
  let query_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "query-log" ] ~docv:"FILE"
          ~doc:
            "Append one structured JSON line (schema tcsq-qlog/v1) per \
             finished request — any outcome, including rejections — with \
             fingerprint, window, duration, full execution counters and \
             per-level estimated-vs-actual cardinalities.")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Requests at or over this wall time are flagged slow: always \
             written to the query log regardless of sampling, and counted \
             in the tcsq_slow_requests_total Prometheus family.")
  in
  let qlog_sample_arg =
    Arg.(
      value & opt float 1.0
      & info [ "qlog-sample" ] ~docv:"RATE"
          ~doc:
            "Keep-rate (0..1) for ordinary query-log lines; slow or \
             non-completed requests are always logged.")
  in
  let plan_cache_size_arg =
    Arg.(
      value & opt int 256
      & info [ "plan-cache-size" ] ~docv:"N"
          ~doc:
            "Capacity of the shared TSRJoin plan cache (LRU entries); 0 \
             disables caching. Entries are invalidated when ingest \
             changes the graph, and re-planned from observed \
             cardinalities after repeated misestimation.")
  in
  let replan_threshold_arg =
    Arg.(
      value & opt float 16.0
      & info [ "replan-threshold" ] ~docv:"FACTOR"
          ~doc:
            "Worst-level misestimation factor beyond which consecutive \
             executions poison a cached plan and trigger an adaptive \
             re-plan (the P009/P010 threshold).")
  in
  let run file dataset scale socket workers queue deadline_ms limit domains
      trace_dir trace_sample query_log slow_ms qlog_sample plan_cache_size
      replan_threshold =
    let g = or_die (load_graph file dataset scale) in
    let engine = Workload.Engine.prepare g in
    let config =
      {
        (Tcsq_server.Server.default_config ~socket_path:socket) with
        Tcsq_server.Server.workers;
        queue_depth = queue;
        default_deadline_ms = deadline_ms;
        default_limit = limit;
        domains;
        trace_dir;
        trace_sample;
        query_log;
        slow_ms;
        qlog_sample;
        plan_cache_size;
        plan_cache_replan_threshold = replan_threshold;
      }
    in
    let srv =
      try Tcsq_server.Server.start config engine
      with Unix.Unix_error (e, _, arg) ->
        or_die
          (Error
             (Printf.sprintf "cannot listen on %s: %s %s" socket
                (Unix.error_message e) arg))
    in
    Format.printf "tcsq: serving %a on %s (workers %d, queue %d)@."
      Tgraph.Graph.pp_summary g socket workers queue;
    Tcsq_server.Server.wait srv;
    Format.printf "tcsq: server stopped@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a resident query server on a Unix-domain socket: the graph \
          and its indexes are built once, then newline-delimited JSON \
          requests are answered until a shutdown request arrives.")
    Term.(
      const run $ graph_file_arg $ dataset_arg $ scale_arg $ socket_arg
      $ workers_arg $ queue_arg $ deadline_arg $ serve_limit_arg $ domains_arg
      $ trace_dir_arg $ trace_sample_arg $ query_log_arg $ slow_ms_arg
      $ qlog_sample_arg $ plan_cache_size_arg $ replan_threshold_arg)

let client_cmd =
  let metrics_flag =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Fetch and print the metrics snapshot.")
  in
  let prom_flag =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:
            "Fetch the metrics in Prometheus text exposition format and \
             print them verbatim (not as a JSON line).")
  in
  let ping_flag =
    Arg.(value & flag & info [ "ping" ] ~doc:"Check server liveness.")
  in
  let shutdown_flag =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the server to shut down (sent last).")
  in
  let stdin_flag =
    Arg.(
      value & flag
      & info [ "stdin" ]
          ~doc:
            "Relay raw JSON request lines from standard input and print \
             one response line each.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request deadline.")
  in
  let count_flag =
    Arg.(
      value & flag
      & info [ "count" ] ~doc:"Do not echo matches, just the count.")
  in
  let top_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "top" ] ~docv:"N"
          ~doc:
            "Print the N hottest query-shape fingerprints from the metrics \
             snapshot (request count, slow count, mean latency), hottest \
             first.")
  in
  let subscribe_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "subscribe" ] ~docv:"QUERY"
          ~doc:
            "Register QUERY as a standing query and print the subscribe \
             response (the initial result snapshot); combine with \
             $(b,--watch) to then stream pushed delta notifications.")
  in
  let window_width_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "window-width" ] ~docv:"W"
          ~doc:
            "Make the subscription's window slide: width-W, ending at the \
             newest edge end, re-derived on every ingest batch. Without \
             this the query's own window is fixed.")
  in
  let watch_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "watch" ] ~docv:"N"
          ~doc:
            "After sending the requests, keep reading frames and print \
             each one, exiting after N pushed delta notifications.")
  in
  let run socket match_ method_ deadline_ms limit count_only metrics prom ping
      shutdown stdin_mode top subscribe window_width watch =
    let m =
      or_die
        (match Workload.Engine.method_of_string method_ with
        | Some m -> Ok m
        | None -> Error (Printf.sprintf "unknown method %S" method_))
    in
    let client =
      try Tcsq_server.Client.connect socket
      with Unix.Unix_error (e, _, _) ->
        or_die
          (Error
             (Printf.sprintf "cannot connect to %s: %s" socket
                (Unix.error_message e)))
    in
    let failures = ref 0 in
    (* print the server's response verbatim; remember failures for the
       exit code *)
    let roundtrip line =
      Tcsq_server.Client.send_raw client line;
      match Tcsq_server.Client.recv_raw client with
      | Error msg -> or_die (Error msg)
      | Ok response -> (
          print_endline response;
          match Tcsq_server.Protocol.parse_response response with
          | Ok r
            when r.Tcsq_server.Protocol.status = "ok"
                 || r.Tcsq_server.Protocol.status = "truncated" ->
              ()
          | Ok _ | Error _ -> incr failures)
    in
    if ping then
      roundtrip (Tcsq_server.Json.to_string (Tcsq_server.Client.op_json "ping"));
    (match match_ with
    | Some text ->
        roundtrip
          (Tcsq_server.Json.to_string
             (Tcsq_server.Client.query_json ~method_:m ?deadline_ms ~limit
                ~count_only text))
    | None -> ());
    (match subscribe with
    | Some text ->
        (* a syntax error is a usage error (exit 2), caught before the
           round-trip; label resolution still happens server-side *)
        (match Semantics.Qlang.parse text with
        | Error e ->
            or_die
              (Error
                 (Printf.sprintf "subscribe query (at offset %d): %s"
                    e.Semantics.Qlang.position e.Semantics.Qlang.message))
        | Ok _ -> ());
        roundtrip
          (Tcsq_server.Json.to_string
             (Tcsq_server.Client.subscribe_json ?window_width text))
    | None -> ());
    if stdin_mode then begin
      try
        while true do
          let line = input_line stdin in
          if String.trim line <> "" then roundtrip line
        done
      with End_of_file -> ()
    end;
    (match watch with
    | None -> ()
    | Some n ->
        (* stream frames as they arrive; only pushed notifications count
           toward N, interleaved plain responses are printed verbatim *)
        let seen = ref 0 in
        while !seen < n do
          match Tcsq_server.Client.recv_raw client with
          | Error msg -> or_die (Error msg)
          | Ok line -> (
              print_endline line;
              flush stdout;
              match Tcsq_server.Protocol.parse_response line with
              | Ok r when Tcsq_server.Protocol.is_notification r -> incr seen
              | Ok _ | Error _ -> ())
        done);
    if metrics then
      roundtrip
        (Tcsq_server.Json.to_string (Tcsq_server.Client.op_json "metrics"));
    if prom then (
      match Tcsq_server.Client.metrics_prom client with
      | Ok text -> print_string text
      | Error msg ->
          Printf.eprintf "tcsq: metrics_prom failed: %s\n%!" msg;
          incr failures);
    (match top with
    | None -> ()
    | Some n -> (
        (* hottest query shapes: the server's snapshot already orders
           its fingerprint list by request count *)
        match Tcsq_server.Client.metrics client with
        | Error msg ->
            Printf.eprintf "tcsq: metrics failed: %s\n%!" msg;
            incr failures
        | Ok snap -> (
            match Tcsq_server.Json.mem_list "fingerprints" snap with
            | None | Some [] -> print_endline "no fingerprints recorded"
            | Some fps ->
                Printf.printf "%-16s  %8s  %6s  %10s  %7s  %8s\n"
                  "fingerprint" "count" "slow" "mean_ms" "cached" "replans";
                List.iteri
                  (fun i fp ->
                    if i < n then
                      let s k =
                        Option.value ~default:"?"
                          (Tcsq_server.Json.mem_string k fp)
                      in
                      let d k =
                        Option.value ~default:0
                          (Tcsq_server.Json.mem_int k fp)
                      in
                      let f k =
                        Option.value ~default:0.0
                          (Tcsq_server.Json.mem_float k fp)
                      in
                      Printf.printf "%-16s  %8d  %6d  %10.3f  %7d  %8d\n"
                        (s "fingerprint") (d "count") (d "slow") (f "mean_ms")
                        (d "cached") (d "replanned"))
                  fps)));
    if shutdown then
      roundtrip
        (Tcsq_server.Json.to_string (Tcsq_server.Client.op_json "shutdown"));
    Tcsq_server.Client.close client;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send requests to a running tcsq server and print each JSON \
          response line; exits nonzero if any response is an error or \
          an overload shed.")
    Term.(
      const run $ socket_arg $ match_arg $ method_arg $ deadline_arg
      $ limit_arg $ count_flag $ metrics_flag $ prom_flag $ ping_flag
      $ shutdown_flag $ stdin_flag $ top_arg $ subscribe_arg
      $ window_width_arg $ watch_arg)

let fuzz_cmd =
  let iterations_arg =
    Arg.(
      value & opt int 200
      & info [ "iterations"; "i" ] ~docv:"N"
          ~doc:
            "Fuzz iterations (one random graph + 21 queries each: the \
             15-shape pool, 3 random plain, 3 random extended).")
  in
  let seed_arg =
    Arg.(
      value & opt int 20260705
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Base seed; iteration $(i)i derives everything from S+$(i)i, \
             exactly like the retired bin/fuzz.exe.")
  in
  let wire_flag =
    Arg.(
      value & flag
      & info [ "wire" ]
          ~doc:
            "Also push checks through the server wire path (an in-process \
             server per graph): the wire joins every differential and \
             every query-only relation; graph-mutating relations rotate \
             through it once per iteration.")
  in
  let inject_fault_flag =
    Arg.(
      value & flag
      & info [ "inject-fault" ]
          ~doc:
            "Register the deliberately broken engine variant (drops one \
             match), to exercise the shrinker and reproducer pipeline.")
  in
  let max_probes_arg =
    Arg.(
      value & opt int 2000
      & info [ "max-probes" ] ~docv:"N" ~doc:"Shrinker probe budget.")
  in
  let repro_out_arg =
    Arg.(
      value
      & opt string "tcsq-fuzz.repro"
      & info [ "repro-out" ] ~docv:"FILE"
          ~doc:"Where to write the minimized reproducer on a failure.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Re-execute the check recorded in a reproducer file instead \
             of fuzzing: exit 0 if it passes (the failure is gone), 1 if \
             it still reproduces.")
  in
  let indent s =
    String.concat "\n  " (String.split_on_char '\n' s)
  in
  let run iterations seed wire inject_fault max_probes repro_out replay =
    match replay with
    | Some path ->
        let r = or_die (Conformance.Repro.load path) in
        Format.printf "replaying %s@.  check: %s@.  case: %s@." path
          (Conformance.Check.describe r.Conformance.Repro.check)
          (Conformance.Case.brief r.Conformance.Repro.case);
        (match Conformance.Harness.replay ~inject_fault r with
        | Ok () ->
            Format.printf "clean: the recorded failure does not reproduce@."
        | Error detail ->
            Format.printf "reproduces: %s@." (indent detail);
            exit 1)
    | None ->
        let t0 = Unix.gettimeofday () in
        (* progress and timing go to stderr: stdout is the deterministic
           record that golden tests pin down *)
        let log msg =
          Printf.eprintf "  %s (%.1fs)\n%!" msg (Unix.gettimeofday () -. t0)
        in
        let config =
          {
            Conformance.Harness.iterations;
            seed;
            wire;
            inject_fault;
            max_probes;
            log;
          }
        in
        Format.printf "fuzzing %d iterations from seed %d@." iterations seed;
        Format.printf "engines: %s@."
          (String.concat ", " (Conformance.Harness.engine_names config));
        Format.printf "relations: %s@."
          (String.concat ", " Conformance.Harness.relation_names);
        let outcome = Conformance.Harness.fuzz config in
        let c = outcome.Conformance.Harness.counts in
        (match outcome.Conformance.Harness.failure with
        | None ->
            Format.printf
              "OK: %d queries clean (%d differential, %d relation, %d \
               parallel, %d analyzer checks)@."
              c.Conformance.Harness.queries c.Conformance.Harness.differential
              c.Conformance.Harness.relation c.Conformance.Harness.parallel
              c.Conformance.Harness.analyzer
        | Some f ->
            Format.printf "FAIL %s at iteration %d@.  %s@."
              (Conformance.Check.describe f.Conformance.Harness.check)
              f.Conformance.Harness.iteration
              (indent f.Conformance.Harness.detail);
            Format.printf "found on: %s@."
              (Conformance.Case.brief f.Conformance.Harness.case);
            Format.printf "minimized to: %s (%d probes)@."
              (Conformance.Case.brief f.Conformance.Harness.minimized)
              f.Conformance.Harness.probes;
            let repro = Conformance.Harness.repro_of_failure config f in
            Conformance.Repro.save repro repro_out;
            Format.printf "reproducer written to %s@." repro_out;
            Format.printf "replay: tcsq fuzz --replay %s%s@." repro_out
              (if inject_fault then " --inject-fault" else "");
            exit 1)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Conformance-fuzz the engines: random graphs and queries checked \
          differentially against the brute-force oracle, through the \
          static analyzer, across a multi-domain run, and under a suite of \
          metamorphic relations — on the first divergence, a delta-debugged \
          minimal reproducer file is written.")
    Term.(
      const run $ iterations_arg $ seed_arg $ wire_flag $ inject_fault_flag
      $ max_probes_arg $ repro_out_arg $ replay_arg)

let main =
  let doc = "temporal-clique subgraph query processing (TSRJoin)" in
  Cmd.group (Cmd.info "tcsq" ~version:"1.0.0" ~doc)
    [
      datasets_cmd; generate_cmd; stats_cmd; query_cmd; profile_cmd;
      explain_cmd; compare_cmd; topk_cmd; reach_cmd; suite_cmd; lint_cmd;
      serve_cmd; client_cmd; fuzz_cmd;
    ]

let () = exit (Cmd.eval main)
