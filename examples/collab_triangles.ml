(* Bibliographic scenario from the paper's introduction: triangles of
   researchers who all collaborated with each other at the same time, at
   some point inside a decade-long window.

   Demonstrates window scaling (decade vs single year) and the effect of
   the LFTO optimizations on a real query, using the ablation knobs of
   the public API.

   Run with:  dune exec examples/collab_triangles.exe *)

let () =
  let cfg : Tgraph.Generator.config =
    {
      topology = Power_law { n_vertices = 600; exponent = 1.0 };
      n_edges = 15_000;
      n_labels = 3 (* collab kinds: coauthor, grant, committee *);
      domain = 40 * 12 (* 40 years in months *);
      mean_duration = 18.0 (* collaborations last ~1.5 years *);
      label_affinity = None;
      seed = 1990;
    }
  in
  let g = Tgraph.Generator.generate cfg in
  let labels = Tgraph.Graph.labels g in
  let coauthor = Option.get (Tgraph.Label.find labels "a") in
  let tai = Tcsq_core.Tai.build g in
  let cost = Tcsq_core.Plan.cost_model tai in

  let triangle window =
    Semantics.Query.make ~n_vars:3
      ~edges:[ (coauthor, 0, 1); (coauthor, 1, 2); (coauthor, 2, 0) ]
      ~window
  in
  (* the 1990s: months 240..359 of a domain starting at 1970 *)
  let nineties = triangle (Temporal.Interval.make 240 359) in
  let y1995 = triangle (Temporal.Interval.make 300 311) in

  let plan = Tcsq_core.Plan.build ~cost tai nineties in
  Format.printf "%a@." Tcsq_core.Plan.pp plan;

  let run name q config =
    let stats = Semantics.Run_stats.create () in
    let t0 = Unix.gettimeofday () in
    let n = Tcsq_core.Tsrjoin.count ~stats ~config ~cost tai q in
    Format.printf
      "  %-28s %5d triangles  %6.2f ms  scanned %6d  enum steps %7d@." name n
      ((Unix.gettimeofday () -. t0) *. 1000.0)
      stats.Semantics.Run_stats.scanned stats.Semantics.Run_stats.enum_steps
  in
  Format.printf "decade window (the 1990s):@.";
  run "basic LFTO (Algorithm 1)" nineties Tcsq_core.Tsrjoin.basic_config;
  run "optimized LFTO (Algorithm 4)" nineties Tcsq_core.Tsrjoin.default_config;
  Format.printf "single-year window (1995):@.";
  run "basic LFTO (Algorithm 1)" y1995 Tcsq_core.Tsrjoin.basic_config;
  run "optimized LFTO (Algorithm 4)" y1995 Tcsq_core.Tsrjoin.default_config;

  (* Top-5 most durable triangles of the decade (streamed through a
     bounded heap; memory stays O(k)). *)
  Format.printf "most durable collaborations:@.";
  List.iter
    (fun m ->
      let people =
        Array.to_list m.Semantics.Match_result.edges
        |> List.concat_map (fun id ->
               let e = Tgraph.Graph.edge g id in
               [ Tgraph.Edge.src e; Tgraph.Edge.dst e ])
        |> List.sort_uniq compare
        |> List.map string_of_int
      in
      Format.printf "  {%s} together during %a (%d months)@."
        (String.concat ", " people)
        Temporal.Interval.pp m.Semantics.Match_result.life
        (Temporal.Interval.length m.Semantics.Match_result.life))
    (Tcsq_core.Durable.top_k ~cost tai nineties ~k:5);

  (* the durable-query variant: triangles lasting at least 2 years *)
  Format.printf "triangles lasting >= 24 months in the decade: %d@."
    (Tcsq_core.Tsrjoin.count ~cost tai
       (Semantics.Query.with_min_duration nineties 24))
