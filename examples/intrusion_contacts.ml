(* The paper's network-security scenario over an imported contact
   sequence: find denial-of-service stars — many sources connected to
   one victim at the same moment — in a SNAP-style "src dst timestamp"
   log, using wildcard labels (connection kinds don't matter) and a
   durability floor (sustained attacks only).

   Run with:  dune exec examples/intrusion_contacts.exe *)

let () =
  (* synthesize a contact log on disk, as if exported from a collector:
     background traffic plus a hot minute against one victim *)
  let path = Filename.temp_file "netflow" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let rng = Random.State.make [| 443 |] in
      output_string oc "# src dst unix_time\n";
      for _ = 1 to 8_000 do
        Printf.fprintf oc "%d %d %d\n" (Random.State.int rng 200)
          (Random.State.int rng 200)
          (Random.State.int rng 3_600)
      done;
      (* the attack: bots 150..169 hammer victim 7 around t = 2000 *)
      for bot = 150 to 169 do
        for burst = 0 to 2 do
          Printf.fprintf oc "%d 7 %d\n" bot (1990 + (burst * 15) + (bot mod 7))
        done
      done;
      close_out oc;

      (* each contact held open for 60 seconds *)
      let g = Tgraph.Io.load_contacts ~duration:60 path in
      Format.printf "loaded %a from the contact log@." Tgraph.Graph.pp_summary g;

      let engine = Workload.Engine.prepare g in
      (* 4 distinct sources on one target, all alive simultaneously for
         at least 30 seconds, somewhere in the night window *)
      let q =
        Result.get_ok
          (Semantics.Qlang.parse_and_compile g
             "MATCH (v)<-[*]-(a), (v)<-[*]-(b), (v)<-[*]-(c), (v)<-[*]-(d) \
              IN [1800, 2400] LASTING 30")
      in
      (* a result budget is the alert threshold: past 100K star
         embeddings something is burning, no need to enumerate the rest
         of a combinatorial explosion *)
      let stats =
        Semantics.Run_stats.create
          ~limits:
            { Semantics.Run_stats.max_results = 100_000;
              max_intermediate = max_int }
          ()
      in
      let t0 = Unix.gettimeofday () in
      let victims = Hashtbl.create 8 in
      let outcome =
        match
          Workload.Engine.run ~stats engine Workload.Engine.Tsrjoin q
            ~emit:(fun m ->
              let e =
                Tgraph.Graph.edge g m.Semantics.Match_result.edges.(0)
              in
              let v = Tgraph.Edge.dst e in
              Hashtbl.replace victims v
                (1 + Option.value ~default:0 (Hashtbl.find_opt victims v)))
        with
        | () -> "complete"
        | exception Semantics.Run_stats.Limit_exceeded _ -> "THRESHOLD HIT"
      in
      Format.printf "%s after %d stars in %.1f ms@." outcome
        stats.Semantics.Run_stats.results
        ((Unix.gettimeofday () -. t0) *. 1000.0);
      Hashtbl.iter
        (fun v count ->
          if count > 10_000 then
            Format.printf "ALERT: >= %d concurrent attack stars on host %d@."
              count v)
        victims;

      (* triage: when was host 7 busiest? *)
      let host7 =
        Result.get_ok
          (Semantics.Qlang.parse_and_compile g
             "MATCH (v)<-[*]-(a) IN [0, 3659]")
      in
      let inbound =
        Workload.Engine.evaluate engine Workload.Engine.Tsrjoin host7
        |> List.filter (fun m ->
               let e = Tgraph.Graph.edge g m.Semantics.Match_result.edges.(0) in
               Tgraph.Edge.dst e = 7)
      in
      match
        Semantics.Analytics.peak ~n_buckets:60
          ~over:(Tgraph.Graph.time_domain g) inbound
      with
      | Some (bucket, n) ->
          Format.printf "host 7 peak: %d concurrent inbound connections near %a@."
            n Temporal.Interval.pp bucket
      | None -> Format.printf "host 7 saw no traffic@.")
