(* Quickstart: build a tiny temporal graph, ask a temporal-clique
   question, read the answers.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A temporal graph: vertices are people, edges are labeled
     relationships valid over closed integer intervals. *)
  let b = Tgraph.Graph.Builder.create () in
  let alice = 0 and bob = 1 and carol = 2 and dave = 3 in
  let edge src dst lbl ts te =
    ignore (Tgraph.Graph.Builder.add_edge_named b ~src ~dst ~lbl ~ts ~te)
  in
  (* Alice follows Bob, Carol and Dave over various periods... *)
  edge alice bob "follows" 1 8;
  edge alice carol "follows" 5 12;
  edge alice dave "follows" 10 20;
  (* ...and so does Bob. *)
  edge bob carol "follows" 6 9;
  edge bob dave "follows" 7 14;
  let g = Tgraph.Graph.Builder.finish b in

  (* The question: who followed two other people AT THE SAME TIME, at
     some moment between t = 5 and t = 15? A "2-star temporal clique". *)
  let follows =
    Option.get (Tgraph.Label.find (Tgraph.Graph.labels g) "follows")
  in
  let query =
    Semantics.Query.make ~n_vars:3
      ~edges:[ (follows, 0, 1); (follows, 0, 2) ]
      ~window:(Temporal.Interval.make 5 15)
  in

  (* Index once, query many times. *)
  let tai = Tcsq_core.Tai.build g in
  let matches = Tcsq_core.Tsrjoin.evaluate tai query in

  Format.printf "%d matches of the 2-star in window [5, 15]:@."
    (List.length matches);
  let name = function
    | 0 -> "alice"
    | 1 -> "bob"
    | 2 -> "carol"
    | 3 -> "dave"
    | v -> string_of_int v
  in
  List.iter
    (fun m ->
      let e0 = Tgraph.Graph.edge g m.Semantics.Match_result.edges.(0) in
      let e1 = Tgraph.Graph.edge g m.Semantics.Match_result.edges.(1) in
      Format.printf "  %s followed %s and %s jointly during %a@."
        (name (Tgraph.Edge.src e0))
        (name (Tgraph.Edge.dst e0))
        (name (Tgraph.Edge.dst e1))
        Temporal.Interval.pp m.Semantics.Match_result.life)
    matches;

  (* Sanity: the slow oracle agrees. *)
  assert (
    List.length matches = Semantics.Naive.count g query);
  Format.printf "(verified against the brute-force oracle)@."
