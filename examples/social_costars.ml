(* Social-network scenario from the paper's introduction: pairs of users
   who simultaneously followed common accounts inside a query week.

   The pattern is a "double 2-star": variables x0 and x1 both point at
   x2 and x3 with 'follows' edges, and all four edges must share a
   common moment inside the window.

   Also demonstrates: loading/saving graphs through the CSV codec, and
   comparing the four engines on the same query.

   Run with:  dune exec examples/social_costars.exe *)

let build_network () =
  let cfg : Tgraph.Generator.config =
    {
      topology = Power_law { n_vertices = 500; exponent = 0.9 };
      n_edges = 5_000;
      n_labels = 1 (* follows *);
      domain = 365 (* one year in days *);
      mean_duration = 30.0 (* followships last ~a month *);
      label_affinity = None;
      seed = 7;
    }
  in
  Tgraph.Generator.generate cfg

let () =
  let g = build_network () in

  (* Round-trip through the CSV codec, as a deployment would. *)
  let path = Filename.temp_file "social" ".csv" in
  Tgraph.Io.save g path;
  let g = Tgraph.Io.load path in
  Sys.remove path;
  Format.printf "loaded %a@." Tgraph.Graph.pp_summary g;

  let follows = Option.get (Tgraph.Label.find (Tgraph.Graph.labels g) "a") in
  (* first week of August: days 213..219 *)
  let window = Temporal.Interval.make 213 219 in
  let q =
    Semantics.Query.make ~n_vars:4
      ~edges:
        [ (follows, 0, 2); (follows, 0, 3); (follows, 1, 2); (follows, 1, 3) ]
      ~window
  in

  let engine = Workload.Engine.prepare g in
  Format.printf "co-follower pairs in the window, by engine:@.";
  Array.iter
    (fun m ->
      (* a work budget keeps the weaker baselines honest but bounded,
         like the paper's timeouts *)
      let stats =
        Semantics.Run_stats.create
          ~limits:
            { Semantics.Run_stats.max_results = 2_000_000;
              max_intermediate = 20_000_000 }
          ()
      in
      let t0 = Unix.gettimeofday () in
      let outcome =
        match Workload.Engine.count ~stats engine m q with
        | n -> Printf.sprintf "%8d matches " n
        | exception Semantics.Run_stats.Limit_exceeded _ -> "  (budget hit) "
      in
      Format.printf "  %-8s %s %8.1f ms  %9d intermediate tuples@."
        (Workload.Engine.method_name m)
        outcome
        ((Unix.gettimeofday () -. t0) *. 1000.0)
        stats.Semantics.Run_stats.intermediate)
    Workload.Engine.all_methods;

  (* Distinct user pairs behind the edge-level matches. *)
  let module P = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let pairs = ref P.empty in
  Workload.Engine.run engine Workload.Engine.Tsrjoin q ~emit:(fun m ->
      let e0 = Tgraph.Graph.edge g m.Semantics.Match_result.edges.(0) in
      let e2 = Tgraph.Graph.edge g m.Semantics.Match_result.edges.(2) in
      let a = Tgraph.Edge.src e0 and b = Tgraph.Edge.src e2 in
      if a <> b then pairs := P.add (min a b, max a b) !pairs);
  Format.printf "distinct user pairs sharing 2 followees simultaneously: %d@."
    (P.cardinal !pairs)
