(* Streaming scenario: a network-monitoring dashboard ingesting
   connection events continuously while answering a standing
   temporal-clique question over the trailing window.

   Demonstrates the incremental index path (Incremental / Tai.merge):
   appended batches fold into the TAI without re-sorting, and queries
   between batches always see the up-to-date graph. The standing
   question is the paper's DDoS example: stars of simultaneous
   connections onto one victim.

   Run with:  dune exec examples/streaming_ingest.exe *)

let () =
  (* start from one hour of history *)
  let base_cfg : Tgraph.Generator.config =
    {
      topology = Power_law { n_vertices = 300; exponent = 1.1 };
      n_edges = 6_000;
      n_labels = 1 (* connects *);
      domain = 3_600 (* one hour in seconds *);
      mean_duration = 30.0;
      label_affinity = None;
      seed = 404;
    }
  in
  let base = Tgraph.Generator.generate base_cfg in
  let connects =
    Option.get (Tgraph.Label.find (Tgraph.Graph.labels base) "a")
  in
  let inc = Tcsq_core.Incremental.create ~merge_threshold:500 base in

  (* the standing question: 3 sources connected to the same target at
     the same moment, within the trailing 5 minutes *)
  let attack_star ~now =
    Semantics.Query.make ~n_vars:4
      ~edges:[ (connects, 1, 0); (connects, 2, 0); (connects, 3, 0) ]
      ~window:(Temporal.Interval.make (max 0 (now - 300)) now)
  in

  let rng = Random.State.make [| 405 |] in
  let now = ref 3_600 in
  Format.printf "tick  ingested  pending  suspicious-stars  ms@.";
  for tick = 1 to 6 do
    (* ten minutes of new traffic per tick, with an injected burst onto
       one victim on tick 4 *)
    let burst = tick = 4 in
    let n_new = 800 in
    for i = 1 to n_new do
      let ts = !now + (i * 600 / n_new) in
      let src, dst =
        if burst && i mod 4 = 0 then (Random.State.int rng 300, 13)
        else (Random.State.int rng 300, Random.State.int rng 300)
      in
      if src <> dst then
        ignore
          (Tcsq_core.Incremental.add_edge inc ~src ~dst ~lbl:connects ~ts
             ~te:(ts + 20 + Random.State.int rng 40))
    done;
    now := !now + 600;
    let t0 = Unix.gettimeofday () in
    let stars =
      Tcsq_core.Incremental.evaluate inc (attack_star ~now:!now)
    in
    Format.printf "%4d  %8d  %7d  %16d  %.1f@." tick
      (Tcsq_core.Incremental.n_edges inc)
      (Tcsq_core.Incremental.pending inc)
      (List.length stars)
      ((Unix.gettimeofday () -. t0) *. 1000.0);
    if burst then begin
      (* who is under attack? count stars per victim *)
      let per_victim = Hashtbl.create 16 in
      List.iter
        (fun m ->
          let e = Tgraph.Graph.edge (Tcsq_core.Incremental.graph inc)
                    m.Semantics.Match_result.edges.(0) in
          let v = Tgraph.Edge.dst e in
          Hashtbl.replace per_victim v
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_victim v)))
        stars;
      Hashtbl.iter
        (fun victim count ->
          if count > 100 then
            Format.printf "  ALERT: vertex %d hit by %d simultaneous-star \
                           matches@." victim count)
        per_victim
    end
  done
