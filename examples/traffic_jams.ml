(* The paper's motivating scenario: traffic jams as temporal cliques.

   Vertices are road intersections, edges are road segments whose label
   is the congestion status and whose interval is the duration of that
   status. A "traffic jam of length k" is a k-chain of roads that were
   all congested at the same time.

   Run with:  dune exec examples/traffic_jams.exe *)

let () =
  (* A synthetic rush-hour city: reuse the Yellow-taxi-shaped generator
     but relabel it as congestion statuses. *)
  let cfg : Tgraph.Generator.config =
    {
      topology = Grid { rows = 12; cols = 12 };
      n_edges = 18_000;
      n_labels = 2 (* congested, fluid *);
      domain = 24 * 60 (* one day in minutes *);
      mean_duration = 25.0;
      label_affinity = None;
      seed = 2026;
    }
  in
  let g = Tgraph.Generator.generate cfg in
  let labels = Tgraph.Graph.labels g in
  (* the generator names labels "a", "b", ...; read label 0 as
     "congested" *)
  let congested = Option.get (Tgraph.Label.find labels "a") in

  let engine = Workload.Engine.prepare g in

  (* All traffic jams involving 3 consecutive roads during the evening
     rush hour, 17:00-19:00. *)
  let rush_hour = Temporal.Interval.make (17 * 60) (19 * 60) in
  let jam_chain k window =
    Semantics.Query.make ~n_vars:(k + 1)
      ~edges:(List.init k (fun i -> (congested, i, i + 1)))
      ~window
  in
  let q = jam_chain 3 rush_hour in
  let stats = Semantics.Run_stats.create () in
  let jams = Workload.Engine.evaluate ~stats engine Workload.Engine.Tsrjoin q in
  Format.printf "rush hour 17:00-19:00: %d three-road jams@." (List.length jams);

  (* Print the three longest-lasting jams. *)
  let by_duration =
    List.sort
      (fun a b ->
        Int.compare
          (Temporal.Interval.length b.Semantics.Match_result.life)
          (Temporal.Interval.length a.Semantics.Match_result.life))
      jams
  in
  List.iteri
    (fun i m ->
      if i < 3 then begin
        let hops =
          Array.to_list m.Semantics.Match_result.edges
          |> List.map (fun id ->
                 let e = Tgraph.Graph.edge g id in
                 Printf.sprintf "%d->%d" (Tgraph.Edge.src e) (Tgraph.Edge.dst e))
        in
        Format.printf "  jam %d: %s jointly congested %a (%d min)@." (i + 1)
          (String.concat " " hops)
          Temporal.Interval.pp m.Semantics.Match_result.life
          (Temporal.Interval.length m.Semantics.Match_result.life)
      end)
    by_duration;

  (* Same pattern at day scale: the window is the whole day. *)
  let whole_day = Temporal.Interval.make 0 ((24 * 60) - 1) in
  let day_count =
    Workload.Engine.count engine Workload.Engine.Tsrjoin (jam_chain 3 whole_day)
  in
  Format.printf "whole day: %d three-road jams@." day_count;

  (* And a harder shape: a congested 4-circle (gridlock around a block). *)
  let gridlock =
    Semantics.Query.make ~n_vars:4
      ~edges:
        [ (congested, 0, 1); (congested, 1, 2); (congested, 2, 3); (congested, 3, 0) ]
      ~window:whole_day
  in
  Format.printf "whole day: %d gridlocked blocks (congested 4-circles)@."
    (Workload.Engine.count engine Workload.Engine.Tsrjoin gridlock);

  (* Jams per hour: one shared evaluation over the whole day, bucketed. *)
  let day_jams =
    Workload.Engine.evaluate engine Workload.Engine.Tsrjoin
      (jam_chain 3 whole_day)
  in
  let hist =
    Semantics.Analytics.lifespan_histogram ~n_buckets:24 ~over:whole_day day_jams
  in
  Format.printf "jams per hour:@.";
  Array.iteri
    (fun h (_, count) ->
      if count > 0 then
        Format.printf "  %02d:00  %s %d@." h
          (String.make (min 60 (count / 120)) '#')
          count)
    hist;
  (match Semantics.Analytics.peak ~n_buckets:24 ~over:whole_day day_jams with
  | Some (bucket, count) ->
      Format.printf "worst hour: starts at minute %d with %d jams active@."
        (Temporal.Interval.ts bucket) count
  | None -> ());

  (* The same question asked per 2-hour sliding slices shares one
     evaluation pass (Multi_window) instead of 12 separate queries. *)
  let tai = Workload.Engine.tai engine in
  let slices =
    Tcsq_core.Multi_window.sliding tai (jam_chain 3 whole_day) ~width:(2 * 60)
      ~stride:(2 * 60) ~over:whole_day
  in
  Format.printf "2h slices (shared evaluation):@.";
  List.iter
    (fun (w, ms) ->
      Format.printf "  %s: %d jams@."
        (Temporal.Interval.to_string w)
        (List.length ms))
    slices;
  Format.printf "engine counters: %a@." Semantics.Run_stats.pp stats
