open Semantics

type edge_bound = { s_lo : int; s_hi : int; e_lo : int; e_hi : int }

type result = {
  bounds : edge_bound array;
  unsat : bool;
  effective : Temporal.Interval.t option;
  dead_edges : int list;
  diagnostics : Diagnostic.t list;
}

let is_empty b = b.s_lo > b.s_hi || b.e_lo > b.e_hi

(* LASTING comes from user input, so additions must saturate instead of
   wrapping *)
let sat_add a b = if a > 0 && b > max_int - a then max_int else a + b
let sat_sub a b = if b > 0 && a < min_int + b then min_int else a - b

(* per-edge label facts; the wildcard behaves like the union of all
   labels *)
let label_facts (env : Query_check.env) lbl =
  if lbl = Query.any_label then (env.Query_check.span, env.Query_check.max_edge_len)
  else if lbl < 0 || lbl >= env.Query_check.n_labels then (None, 0)
  else (env.Query_check.label_spans.(lbl), env.Query_check.label_max_len.(lbl))

let label_name (env : Query_check.env) lbl =
  if lbl = Query.any_label then "*"
  else if lbl >= 0 && lbl < Array.length env.Query_check.label_names then
    env.Query_check.label_names.(lbl)
  else string_of_int lbl

let trivial ~unsat =
  { bounds = [||]; unsat; effective = None; dead_edges = []; diagnostics = [] }

(* Each Allen relation between edge intervals [i] and [j] is a
   conjunction of difference constraints [X <= Y + c] over the four
   endpoint variables (S/E per edge), following classify's closed-
   integer conventions (Before iff E_i + 1 < S_j, Meets iff
   E_i + 1 = S_j, ...). Equalities appear as two opposite
   inequalities. *)
let allen_inequalities (i, rel, j) =
  let s k = (k, `S) and e k = (k, `E) in
  match (rel : Temporal.Allen.relation) with
  | Before -> [ (e i, s j, -2) ]
  | Meets -> [ (e i, s j, -1); (s j, e i, 1) ]
  | Overlaps -> [ (s i, s j, -1); (s j, e i, 0); (e i, e j, -1) ]
  | Starts -> [ (s i, s j, 0); (s j, s i, 0); (e i, e j, -1) ]
  | During -> [ (s j, s i, -1); (e i, e j, -1) ]
  | Finishes -> [ (e i, e j, 0); (e j, e i, 0); (s j, s i, -1) ]
  | Equal -> [ (s i, s j, 0); (s j, s i, 0); (e i, e j, 0); (e j, e i, 0) ]
  | Finished_by -> [ (e i, e j, 0); (e j, e i, 0); (s i, s j, -1) ]
  | Contains -> [ (s i, s j, -1); (e j, e i, -1) ]
  | Started_by -> [ (s i, s j, 0); (s j, s i, 0); (e j, e i, -1) ]
  | Overlapped_by -> [ (s j, s i, -1); (s i, e j, 0); (e j, e i, -1) ]
  | Met_by -> [ (e j, s i, -1); (s i, e j, 1) ]
  | After -> [ (e j, s i, -2) ]

(* For a dead edge, look for a pair whose label spans can never share a
   tick — the most legible cause, phrased through Allen's algebra. *)
let disjoint_witness spans i =
  let n = Array.length spans in
  let rec go j =
    if j >= n then None
    else if j = i then go (j + 1)
    else
      let rel = Temporal.Allen.classify spans.(i) spans.(j) in
      if Temporal.Allen.overlaps_in_time rel then go (j + 1)
      else Some (j, rel)
  in
  go 0

let analyze ?(allen = []) ~env q =
  let n = Query.n_edges q in
  List.iter
    (fun (i, _, j) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Bound.analyze: Allen constraint out of range")
    allen;
  if n = 0 then trivial ~unsat:false
  else if env.Query_check.span = None then trivial ~unsat:true
  else begin
    let w = Query.window q in
    let ws = Temporal.Interval.ts w and we = Temporal.Interval.te w in
    let d = max 1 (Query.min_duration q) in
    let edges = Query.edges q in
    let facts = Array.map (fun (e : Query.edge) -> label_facts env e.Query.lbl) edges in
    if Array.exists (fun (sp, _) -> sp = None) facts then
      (* a label with no graph edges: Q003/Q008 already prove this empty *)
      trivial ~unsat:true
    else begin
      let span_of i = match fst facts.(i) with Some sp -> sp | None -> assert false in
      let maxlen_of i = snd facts.(i) in
      let b =
        Array.init n (fun i ->
            let sp = span_of i in
            {
              s_lo = Temporal.Interval.ts sp;
              s_hi = min we (Temporal.Interval.te sp);
              e_lo = max ws (Temporal.Interval.ts sp);
              e_hi = Temporal.Interval.te sp;
            })
      in
      let any_dead = ref (Array.exists is_empty b) in
      let lo_of (k, w) = match w with `S -> b.(k).s_lo | `E -> b.(k).e_lo in
      let hi_of (k, w) = match w with `S -> b.(k).s_hi | `E -> b.(k).e_hi in
      let set_lo (k, w) v =
        b.(k) <-
          (match w with
          | `S -> { (b.(k)) with s_lo = v }
          | `E -> { (b.(k)) with e_lo = v });
        if is_empty b.(k) then any_dead := true
      in
      let set_hi (k, w) v =
        b.(k) <-
          (match w with
          | `S -> { (b.(k)) with s_hi = v }
          | `E -> { (b.(k)) with e_hi = v });
        if is_empty b.(k) then any_dead := true
      in
      let ineqs = List.concat_map allen_inequalities allen in
      (* Q015 witnesses are judged against the initial label-span boxes
         (before any propagation): an Allen constraint that is already
         infeasible there has the most legible cause — the two labels'
         observed spans simply cannot sit in the required relation. *)
      let allen_dead =
        List.filter
          (fun c ->
            List.exists
              (fun (x, y, off) -> lo_of x > sat_add (hi_of y) off)
              (allen_inequalities c))
          allen
      in
      let q015 =
        List.map
          (fun (i, rel, j) ->
            Diagnostic.make ~proves_empty:true ~code:"Q015" ~severity:Warning
              ~location:(Edge i)
              "Allen constraint 'a%d %s a%d' can never hold: label %S is \
               only alive in %s and label %S in %s (clipped to the window), \
               which rules the relation out before any match is attempted"
              i
              (Temporal.Allen.to_string rel)
              j
              (label_name env edges.(i).Query.lbl)
              (Temporal.Interval.to_string (span_of i))
              (label_name env edges.(j).Query.lbl)
              (Temporal.Interval.to_string (span_of j)))
          allen_dead
      in
      (* integer bounds only tighten inside the label spans, so the loop
         terminates; the cap bounds worst-case one-tick-per-round chains
         (losing only precision, never soundness, when it bites) *)
      let changed = ref true and rounds = ref 0 in
      while !changed && (not !any_dead) && !rounds < 4096 do
        changed := false;
        incr rounds;
        (* the pairwise rule [s_i + d - 1 <= e_j] for all i, j collapses
           into two global aggregates *)
        let min_e_hi = ref max_int and max_s_lo = ref min_int in
        Array.iter
          (fun bi ->
            if bi.e_hi < !min_e_hi then min_e_hi := bi.e_hi;
            if bi.s_lo > !max_s_lo then max_s_lo := bi.s_lo)
          b;
        for i = 0 to n - 1 do
          let bi = b.(i) in
          let s_hi = min bi.s_hi (min bi.e_hi (sat_sub !min_e_hi (d - 1))) in
          let e_lo = max bi.e_lo (max bi.s_lo (sat_add !max_s_lo (d - 1))) in
          let e_hi = min bi.e_hi (sat_add s_hi (maxlen_of i - 1)) in
          let s_lo = max bi.s_lo (sat_sub e_lo (maxlen_of i - 1)) in
          let bi' = { s_lo; s_hi; e_lo; e_hi } in
          if bi' <> bi then begin
            b.(i) <- bi';
            changed := true;
            if is_empty bi' then any_dead := true
          end
        done;
        (* difference-constraint propagation for X <= Y + c: the upper
           bound of X and the lower bound of Y tighten toward each
           other *)
        List.iter
          (fun (x, y, off) ->
            let hx = min (hi_of x) (sat_add (hi_of y) off) in
            if hx < hi_of x then begin
              set_hi x hx;
              changed := true
            end;
            let ly = max (lo_of y) (sat_sub (lo_of x) off) in
            if ly > lo_of y then begin
              set_lo y ly;
              changed := true
            end)
          ineqs
      done;
      let dead_edges =
        List.filter (fun i -> is_empty b.(i)) (List.init n Fun.id)
      in
      let unsat = dead_edges <> [] in
      let spans = Array.init n span_of in
      let diag_dead i =
        let e = edges.(i) in
        let lbl = label_name env e.Query.lbl in
        if d > maxlen_of i && d <= env.Query_check.max_edge_len then
          Diagnostic.make ~proves_empty:true ~code:"Q013" ~severity:Warning
            ~location:(Edge i)
            "LASTING %d exceeds label %S's longest interval (%d ticks); \
             query edge %d can never hold that long"
            d lbl (maxlen_of i) i
        else
          match disjoint_witness spans i with
          | Some (j, rel) ->
              Diagnostic.make ~proves_empty:true ~code:"Q012" ~severity:Warning
                ~location:(Edge i)
                "query edge %d can never match: label %S is only alive in \
                 %s, which is %s label %S's span %s — no instant can lie \
                 in the clique lifespan"
                i lbl
                (Temporal.Interval.to_string spans.(i))
                (Temporal.Allen.to_string rel)
                (label_name env edges.(j).Query.lbl)
                (Temporal.Interval.to_string spans.(j))
          | None ->
              Diagnostic.make ~proves_empty:true ~code:"Q012" ~severity:Warning
                ~location:(Edge i)
                "query edge %d can never match: propagated bounds are empty \
                 (start in [%d, %d], end in [%d, %d], window %s, LASTING %d)"
                i b.(i).s_lo b.(i).s_hi b.(i).e_lo b.(i).e_hi
                (Temporal.Interval.to_string w)
                d
      in
      if unsat then begin
        let diagnostics =
          Diagnostic.make ~proves_empty:true ~code:"Q011" ~severity:Warning
            ~location:Queryloc
            "temporal constraint propagation proves the query empty: %d of \
             %d pattern edges cannot satisfy the joint-overlap and \
             durability constraints"
            (List.length dead_edges) n
          :: (List.map diag_dead dead_edges @ q015)
        in
        let diagnostics =
          List.sort
            (fun (a : Diagnostic.t) (b : Diagnostic.t) -> compare a.code b.code)
            diagnostics
        in
        { bounds = b; unsat; effective = None; dead_edges; diagnostics }
      end
      else begin
        (* at a true fixpoint, no dead edge forces max s_lo <= min e_hi;
           if the round cap fired first the bounds may cross, in which
           case fall back to the original window (sound, imprecise) *)
        let lo = Array.fold_left (fun acc bi -> max acc bi.s_lo) ws b in
        let hi = Array.fold_left (fun acc bi -> min acc bi.e_hi) we b in
        let effective =
          match Temporal.Interval.make_opt lo hi with Some i -> i | None -> w
        in
        let diagnostics =
          if not (Temporal.Interval.equal effective w) then
            [
              Diagnostic.make ~code:"Q014" ~severity:Hint ~location:Window
                "interval-bound propagation tightens the effective window \
                 from %s to %s; every match lies inside it"
                (Temporal.Interval.to_string w)
                (Temporal.Interval.to_string effective);
            ]
          else []
        in
        {
          bounds = b;
          unsat = false;
          effective = Some effective;
          dead_edges = [];
          diagnostics;
        }
      end
    end
  end

let tighten ?allen ~env q =
  match (analyze ?allen ~env q).effective with
  | Some w' when not (Temporal.Interval.equal w' (Query.window q)) ->
      Query.with_window q w'
  | Some _ | None -> q
