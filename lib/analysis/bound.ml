open Semantics

type edge_bound = { s_lo : int; s_hi : int; e_lo : int; e_hi : int }

type result = {
  bounds : edge_bound array;
  unsat : bool;
  effective : Temporal.Interval.t option;
  dead_edges : int list;
  diagnostics : Diagnostic.t list;
}

let is_empty b = b.s_lo > b.s_hi || b.e_lo > b.e_hi

(* LASTING comes from user input, so additions must saturate instead of
   wrapping *)
let sat_add a b = if a > 0 && b > max_int - a then max_int else a + b
let sat_sub a b = if b > 0 && a < min_int + b then min_int else a - b

(* per-edge label facts; the wildcard behaves like the union of all
   labels *)
let label_facts (env : Query_check.env) lbl =
  if lbl = Query.any_label then (env.Query_check.span, env.Query_check.max_edge_len)
  else if lbl < 0 || lbl >= env.Query_check.n_labels then (None, 0)
  else (env.Query_check.label_spans.(lbl), env.Query_check.label_max_len.(lbl))

let label_name (env : Query_check.env) lbl =
  if lbl = Query.any_label then "*"
  else if lbl >= 0 && lbl < Array.length env.Query_check.label_names then
    env.Query_check.label_names.(lbl)
  else string_of_int lbl

let trivial ~unsat =
  { bounds = [||]; unsat; effective = None; dead_edges = []; diagnostics = [] }

(* For a dead edge, look for a pair whose label spans can never share a
   tick — the most legible cause, phrased through Allen's algebra. *)
let disjoint_witness spans i =
  let n = Array.length spans in
  let rec go j =
    if j >= n then None
    else if j = i then go (j + 1)
    else
      let rel = Temporal.Allen.classify spans.(i) spans.(j) in
      if Temporal.Allen.overlaps_in_time rel then go (j + 1)
      else Some (j, rel)
  in
  go 0

let analyze ~env q =
  let n = Query.n_edges q in
  if n = 0 then trivial ~unsat:false
  else if env.Query_check.span = None then trivial ~unsat:true
  else begin
    let w = Query.window q in
    let ws = Temporal.Interval.ts w and we = Temporal.Interval.te w in
    let d = max 1 (Query.min_duration q) in
    let edges = Query.edges q in
    let facts = Array.map (fun (e : Query.edge) -> label_facts env e.Query.lbl) edges in
    if Array.exists (fun (sp, _) -> sp = None) facts then
      (* a label with no graph edges: Q003/Q008 already prove this empty *)
      trivial ~unsat:true
    else begin
      let span_of i = match fst facts.(i) with Some sp -> sp | None -> assert false in
      let maxlen_of i = snd facts.(i) in
      let b =
        Array.init n (fun i ->
            let sp = span_of i in
            {
              s_lo = Temporal.Interval.ts sp;
              s_hi = min we (Temporal.Interval.te sp);
              e_lo = max ws (Temporal.Interval.ts sp);
              e_hi = Temporal.Interval.te sp;
            })
      in
      let any_dead = ref (Array.exists is_empty b) in
      (* integer bounds only tighten inside the label spans, so the loop
         terminates; the cap bounds worst-case one-tick-per-round chains
         (losing only precision, never soundness, when it bites) *)
      let changed = ref true and rounds = ref 0 in
      while !changed && (not !any_dead) && !rounds < 4096 do
        changed := false;
        incr rounds;
        (* the pairwise rule [s_i + d - 1 <= e_j] for all i, j collapses
           into two global aggregates *)
        let min_e_hi = ref max_int and max_s_lo = ref min_int in
        Array.iter
          (fun bi ->
            if bi.e_hi < !min_e_hi then min_e_hi := bi.e_hi;
            if bi.s_lo > !max_s_lo then max_s_lo := bi.s_lo)
          b;
        for i = 0 to n - 1 do
          let bi = b.(i) in
          let s_hi = min bi.s_hi (min bi.e_hi (sat_sub !min_e_hi (d - 1))) in
          let e_lo = max bi.e_lo (max bi.s_lo (sat_add !max_s_lo (d - 1))) in
          let e_hi = min bi.e_hi (sat_add s_hi (maxlen_of i - 1)) in
          let s_lo = max bi.s_lo (sat_sub e_lo (maxlen_of i - 1)) in
          let bi' = { s_lo; s_hi; e_lo; e_hi } in
          if bi' <> bi then begin
            b.(i) <- bi';
            changed := true;
            if is_empty bi' then any_dead := true
          end
        done
      done;
      let dead_edges =
        List.filter (fun i -> is_empty b.(i)) (List.init n Fun.id)
      in
      let unsat = dead_edges <> [] in
      let spans = Array.init n span_of in
      let diag_dead i =
        let e = edges.(i) in
        let lbl = label_name env e.Query.lbl in
        if d > maxlen_of i && d <= env.Query_check.max_edge_len then
          Diagnostic.make ~proves_empty:true ~code:"Q013" ~severity:Warning
            ~location:(Edge i)
            "LASTING %d exceeds label %S's longest interval (%d ticks); \
             query edge %d can never hold that long"
            d lbl (maxlen_of i) i
        else
          match disjoint_witness spans i with
          | Some (j, rel) ->
              Diagnostic.make ~proves_empty:true ~code:"Q012" ~severity:Warning
                ~location:(Edge i)
                "query edge %d can never match: label %S is only alive in \
                 %s, which is %s label %S's span %s — no instant can lie \
                 in the clique lifespan"
                i lbl
                (Temporal.Interval.to_string spans.(i))
                (Temporal.Allen.to_string rel)
                (label_name env edges.(j).Query.lbl)
                (Temporal.Interval.to_string spans.(j))
          | None ->
              Diagnostic.make ~proves_empty:true ~code:"Q012" ~severity:Warning
                ~location:(Edge i)
                "query edge %d can never match: propagated bounds are empty \
                 (start in [%d, %d], end in [%d, %d], window %s, LASTING %d)"
                i b.(i).s_lo b.(i).s_hi b.(i).e_lo b.(i).e_hi
                (Temporal.Interval.to_string w)
                d
      in
      if unsat then begin
        let diagnostics =
          Diagnostic.make ~proves_empty:true ~code:"Q011" ~severity:Warning
            ~location:Queryloc
            "temporal constraint propagation proves the query empty: %d of \
             %d pattern edges cannot satisfy the joint-overlap and \
             durability constraints"
            (List.length dead_edges) n
          :: List.map diag_dead dead_edges
        in
        let diagnostics =
          List.sort
            (fun (a : Diagnostic.t) (b : Diagnostic.t) -> compare a.code b.code)
            diagnostics
        in
        { bounds = b; unsat; effective = None; dead_edges; diagnostics }
      end
      else begin
        (* at a true fixpoint, no dead edge forces max s_lo <= min e_hi;
           if the round cap fired first the bounds may cross, in which
           case fall back to the original window (sound, imprecise) *)
        let lo = Array.fold_left (fun acc bi -> max acc bi.s_lo) ws b in
        let hi = Array.fold_left (fun acc bi -> min acc bi.e_hi) we b in
        let effective =
          match Temporal.Interval.make_opt lo hi with Some i -> i | None -> w
        in
        let diagnostics =
          if not (Temporal.Interval.equal effective w) then
            [
              Diagnostic.make ~code:"Q014" ~severity:Hint ~location:Window
                "interval-bound propagation tightens the effective window \
                 from %s to %s; every match lies inside it"
                (Temporal.Interval.to_string w)
                (Temporal.Interval.to_string effective);
            ]
          else []
        in
        {
          bounds = b;
          unsat = false;
          effective = Some effective;
          dead_edges = [];
          diagnostics;
        }
      end
    end
  end

let tighten ~env q =
  match (analyze ~env q).effective with
  | Some w' when not (Temporal.Interval.equal w' (Query.window q)) ->
      Query.with_window q w'
  | Some _ | None -> q
