(** Pass 1b: temporal constraint propagation (abstract interpretation
    over interval bounds).

    Every query edge [i] must bind a graph edge whose interval
    [[s_i, e_i]] (a) overlaps the query window, (b) lies inside its
    label's observed span, (c) is no longer than its label's longest
    interval, and (d) shares — with {e every} other matched edge,
    including itself — at least [LASTING d] common ticks, because the
    match lifespan is the global intersection of all matched intervals
    ([max_j s_j + d - 1 <= min_j e_j]). This module abstracts each edge
    by integer bounds [s_lo <= s_i <= s_hi], [e_lo <= e_i <= e_hi] and
    iterates the constraints to a fixpoint: bounds only tighten within a
    finite range, so termination is immediate. The temporal constraint
    network is the {e complete} graph over query edges — constraint (d)
    links every pair regardless of shared variables — and pairwise
    infeasibility is diagnosed through {!Temporal.Allen}: two edges can
    coexist in a match iff their feasible spans satisfy an
    {!Temporal.Allen.overlaps_in_time} relation.

    Facts proved:
    - {b unsatisfiability}: some edge's bounds empty out, so the query
      has provably zero matches on this graph;
    - {b dead edges}: which edges emptied, and why;
    - {b window tightening}: every match's edges all overlap
      [W' = W ∩ [max_i s_lo_i, min_i e_hi_i]]. Proof that
      [results(W') = results(W)] {e exactly}: [W' ⊆ W] gives [⊇] (the
      naive semantics only uses the window as a per-edge overlap
      filter); conversely any match under [W] has, for every pair
      [(i, k)], [s_i <= e_k] (the global lifespan is non-empty), so
      [s_i <= min_k e_k <= min_k e_hi_k] and
      [e_i >= max_k s_k >= max_k s_lo_k] — every matched edge overlaps
      [W']. The conformance relation [window-tightening] checks this on
      every engine.

    Allen constraints between edge intervals (extended queries) fold
    into the same network: each of the thirteen relations is a
    conjunction of difference constraints [X <= Y + c] over the four
    endpoint variables of the two edges (e.g. [a BEFORE b] is
    [E_a <= S_b - 2] on closed integer intervals), propagated alongside
    the overlap and durability rules. The tightened window stays exactly
    result-preserving under the extended piece semantics: every
    retained piece contains a tick [t] inside the window with
    [t >= max_k s_k >= max_k s_lo_k] and [t <= min_k e_k <= min_k
    e_hi_k], and piece construction itself never reads the window.

    Codes:
    - [Q011] (Warning, proves empty) propagation proves the query empty
    - [Q012] (Warning, proves empty) a pattern edge can never match
      (its propagated bounds are empty)
    - [Q013] (Warning, proves empty) LASTING exceeds one label's longest
      interval (the per-label refinement of [Q010])
    - [Q014] (Hint) the effective window is strictly tighter than the
      query window
    - [Q015] (Warning, proves empty) an Allen constraint is infeasible
      already on the initial label-span boxes — a Q012-style witness
      naming the two spans *)

type edge_bound = { s_lo : int; s_hi : int; e_lo : int; e_hi : int }
(** Feasible start/end ranges for one query edge. Empty ([s_lo > s_hi]
    or [e_lo > e_hi]) means the edge is dead. *)

type result = {
  bounds : edge_bound array;  (** per query edge, at the fixpoint *)
  unsat : bool;
      (** provably zero matches (iff some edge's bounds are empty) *)
  effective : Temporal.Interval.t option;
      (** the tightened window [W']; [None] when [unsat] or the graph
          is empty. Always a sub-interval of the query window. *)
  dead_edges : int list;  (** indices of edges with empty bounds *)
  diagnostics : Diagnostic.t list;  (** [Q011]-[Q015], in code order *)
}

val analyze :
  ?allen:(int * Temporal.Allen.relation * int) list ->
  env:Query_check.env ->
  Semantics.Query.t ->
  result
(** Runs the fixpoint; [allen] adds the extended query's Allen
    constraints (by edge index) to the network.
    On an empty graph, or when an edge's label has no
    graph edges at all, the result is [unsat] with {e no} diagnostics —
    {!Query_check} already proves those cases empty ([Q003]/[Q008]/
    [Q009]) and propagation adds nothing.
    @raise Invalid_argument on an out-of-range Allen edge index. *)

val tighten :
  ?allen:(int * Temporal.Allen.relation * int) list ->
  env:Query_check.env ->
  Semantics.Query.t ->
  Semantics.Query.t
(** The query with its window replaced by the effective window — the
    identity when nothing tightens or the query is unsatisfiable (the
    caller's proves-empty path already short-circuits the latter).
    Result-set preserving on the env's graph (see above). *)
