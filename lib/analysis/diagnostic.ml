type severity = Hint | Warning | Error

type location =
  | Queryloc
  | Window
  | Edge of int
  | Var of int
  | Step of int
  | Planloc
  | Text of int

type t = {
  code : string;
  severity : severity;
  location : location;
  message : string;
  proves_empty : bool;
}

let make ?(proves_empty = false) ~code ~severity ~location fmt =
  Format.kasprintf
    (fun message -> { code; severity; location; message; proves_empty })
    fmt

let severity_rank = function Hint -> 0 | Warning -> 1 | Error -> 2
let compare_severity a b = compare (severity_rank a) (severity_rank b)

let severity_name = function
  | Hint -> "hint"
  | Warning -> "warning"
  | Error -> "error"

let location_string = function
  | Queryloc -> "query"
  | Window -> "window"
  | Edge i -> Printf.sprintf "edge %d" i
  | Var v -> Printf.sprintf "variable x%d" v
  | Step i -> Printf.sprintf "step %d" i
  | Planloc -> "plan"
  | Text off -> Printf.sprintf "offset %d" off

let max_severity = function
  | [] -> None
  | d :: ds ->
      Some
        (List.fold_left
           (fun acc d ->
             if compare_severity d.severity acc > 0 then d.severity else acc)
           d.severity ds)

let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let proves_empty ds = List.exists (fun d -> d.proves_empty) ds

let exit_code ds =
  match max_severity ds with
  | Some Error -> 2
  | Some Warning -> 1
  | Some Hint | None -> 0

let pp fmt d =
  Format.fprintf fmt "%s[%s] at %s: %s" (severity_name d.severity) d.code
    (location_string d.location)
    d.message

let pp_list fmt ds =
  Format.pp_open_vbox fmt 0;
  List.iteri
    (fun i d ->
      if i > 0 then Format.pp_print_cut fmt ();
      pp fmt d)
    ds;
  Format.pp_close_box fmt ()

let to_string d = Format.asprintf "%a" pp d

let location_json = function
  | Queryloc -> Semantics.Json_out.obj [ ("kind", "\"query\"") ]
  | Window -> Semantics.Json_out.obj [ ("kind", "\"window\"") ]
  | Edge i ->
      Semantics.Json_out.obj
        [ ("kind", "\"edge\""); ("index", string_of_int i) ]
  | Var v ->
      Semantics.Json_out.obj
        [ ("kind", "\"variable\""); ("index", string_of_int v) ]
  | Step i ->
      Semantics.Json_out.obj
        [ ("kind", "\"step\""); ("index", string_of_int i) ]
  | Planloc -> Semantics.Json_out.obj [ ("kind", "\"plan\"") ]
  | Text off ->
      Semantics.Json_out.obj
        [ ("kind", "\"text\""); ("offset", string_of_int off) ]

let to_json d =
  Semantics.Json_out.obj
    [
      ("code", Semantics.Json_out.escape_string d.code);
      ("severity", Semantics.Json_out.escape_string (severity_name d.severity));
      ("location", location_json d.location);
      ("message", Semantics.Json_out.escape_string d.message);
      ("proves_empty", string_of_bool d.proves_empty);
    ]

let list_to_json ds = Semantics.Json_out.arr (List.map to_json ds)
