(** Structured diagnostics for static query/plan analysis.

    Every finding of the analyzer is a [t]: a stable code (["Q002"],
    ["P004"], ...), a severity, a location pointing at the query edge,
    variable, window or plan step at fault, and a human-readable
    message. Some diagnostics additionally {e prove} that the query has
    zero matches (e.g. a window disjoint from the graph's time span);
    callers may short-circuit execution on those.

    Codes are namespaced: [Qxxx] for query semantic analysis
    ({!Query_check}), [Pxxx] for plan invariant analysis
    ({!Plan_check}). *)

type severity = Hint | Warning | Error
(** Ordered: [Hint < Warning < Error]. *)

type location =
  | Queryloc  (** the query as a whole *)
  | Window  (** the query time window *)
  | Edge of int  (** a query edge, by index *)
  | Var of int  (** a query variable *)
  | Step of int  (** a plan step, by position *)
  | Planloc  (** the plan as a whole *)
  | Text of int  (** a byte offset into query-language source *)

type t = {
  code : string;
  severity : severity;
  location : location;
  message : string;
  proves_empty : bool;
      (** The diagnostic proves the query has zero matches. *)
}

val make :
  ?proves_empty:bool ->
  code:string ->
  severity:severity ->
  location:location ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [make ~code ~severity ~location fmt ...] formats the message. *)

val compare_severity : severity -> severity -> int
val severity_name : severity -> string
(** ["hint"], ["warning"], ["error"]. *)

val location_string : location -> string
(** e.g. ["edge 2"], ["step 1"], ["variable x3"], ["window"]. *)

val max_severity : t list -> severity option
(** [None] on a clean (empty) list. *)

val has_errors : t list -> bool
val proves_empty : t list -> bool
(** Whether any diagnostic proves the query empty. *)

val exit_code : t list -> int
(** The [tcsq lint] contract: 0 clean (hints included), 1 warnings,
    2 errors. *)

val pp : Format.formatter -> t -> unit
(** One line: [severity[code] at location: message]. *)

val pp_list : Format.formatter -> t list -> unit

val to_string : t -> string

val to_json : t -> string
(** A JSON object:
    [{"code": "Q002", "severity": "warning",
      "location": {"kind": "window"}, "message": "...",
      "proves_empty": true}];
    indexed locations carry an ["index"] field. *)

val list_to_json : t list -> string
(** A JSON array of {!to_json} objects. *)
