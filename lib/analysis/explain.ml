open Semantics
module Plan = Tcsq_core.Plan

type candidate = {
  name : string;
  plan : Plan.t;
  est : Selectivity.t;
  chosen : bool;
  plan_diags : Diagnostic.t list;
}

type t = {
  query : Query.t;
  bound : Bound.result;
  query_diags : Diagnostic.t list;
  candidates : candidate list;
}

let dominance_factor = 4.0

let analyze ?pivot_order target q =
  let env = Lint.env target in
  let tai = Lint.tai target and cost = Lint.cost target in
  let bound = Bound.analyze ~env q in
  let query_diags = Query_check.check ~env q @ bound.Bound.diagnostics in
  let window =
    match bound.Bound.effective with
    | Some w -> w
    | None -> Query.window q
  in
  let raw =
    [
      ("cost-model", Plan.build ~cost tai q);
      ("adaptive", Plan.build_adaptive ~cost tai q);
    ]
    @
    match pivot_order with
    | None -> []
    | Some order -> [ ("pivot-order", Plan.of_pivot_order_unchecked q order) ]
  in
  let scored =
    List.map
      (fun (name, plan) ->
        (name, plan, Selectivity.estimate ~window ~cost tai plan,
         Plan_check.check plan))
      raw
  in
  (* dominance is judged among structurally valid candidates only *)
  let cost_of (_, _, est, ds) =
    if Diagnostic.has_errors ds then infinity
    else est.Selectivity.estimated_intermediate
  in
  let best =
    List.fold_left (fun acc c -> Float.min acc (cost_of c)) infinity scored
  in
  let candidates =
    List.map
      (fun ((name, plan, est, ds) as c) ->
        let my_cost = cost_of c in
        let dominated =
          if
            Float.is_finite my_cost
            && Float.is_finite best
            && my_cost > best *. dominance_factor
            && my_cost > best +. 1.0
          then
            [
              Diagnostic.make ~code:"P008" ~severity:Warning ~location:Planloc
                "plan %s is dominated: estimated %.3g intermediate tuples \
                 vs %.3g for the best candidate (x%.1f)"
                name my_cost best
                (my_cost /. Float.max best 1e-9);
            ]
          else []
        in
        { name; plan; est; chosen = name = "cost-model";
          plan_diags = ds @ dominated })
      scored
  in
  { query = q; bound; query_diags; candidates }

let diagnostics t =
  t.query_diags @ List.concat_map (fun c -> c.plan_diags) t.candidates

let label_string ~label_names lbl =
  if lbl = Query.any_label then "*"
  else if lbl >= 0 && lbl < Array.length label_names then label_names.(lbl)
  else string_of_int lbl

let best_name t =
  let valid =
    List.filter
      (fun c -> not (Diagnostic.has_errors c.plan_diags))
      t.candidates
  in
  match valid with
  | [] -> None
  | c :: rest ->
      Some
        (List.fold_left
           (fun acc c ->
             if
               c.est.Selectivity.estimated_intermediate
               < acc.est.Selectivity.estimated_intermediate
             then c
             else acc)
           c rest)
          .name

let pp ~label_names fmt t =
  let q = t.query in
  Format.fprintf fmt "@[<v>%a@," Query.pp q;
  (match t.bound.Bound.effective with
  | Some w when not (Temporal.Interval.equal w (Query.window q)) ->
      Format.fprintf fmt "effective window %s (tightened from %s)@,"
        (Temporal.Interval.to_string w)
        (Temporal.Interval.to_string (Query.window q))
  | Some _ ->
      Format.fprintf fmt "effective window %s@,"
        (Temporal.Interval.to_string (Query.window q))
  | None ->
      Format.fprintf fmt "effective window: none (provably empty)@,");
  (match t.query_diags with
  | [] -> Format.fprintf fmt "diagnostics: none@,"
  | ds ->
      Format.fprintf fmt "diagnostics:@,";
      List.iter (fun d -> Format.fprintf fmt "  %a@," Diagnostic.pp d) ds);
  Format.fprintf fmt "edges:@,";
  List.iter
    (fun (ee : Selectivity.edge_estimate) ->
      let e = ee.Selectivity.edge in
      Format.fprintf fmt
        "  e%d %s(x%d,x%d): %.0f labelled edges, %.3g alive in window \
         (fraction %.3g)@,"
        e.Query.idx
        (label_string ~label_names e.Query.lbl)
        e.Query.src_var e.Query.dst_var ee.Selectivity.count
        ee.Selectivity.expected_active ee.Selectivity.window_fraction)
    (match t.candidates with
    | c :: _ -> Array.to_list c.est.Selectivity.edges
    | [] -> []);
  List.iter
    (fun c ->
      Format.fprintf fmt "plan %s%s:@," c.name
        (if c.chosen then " (chosen)" else "");
      Array.iter
        (fun (se : Selectivity.step_estimate) ->
          let st = (Plan.steps c.plan).(se.Selectivity.step_index) in
          let edges =
            String.concat "; "
              (Array.to_list
                 (Array.map
                    (fun (e : Query.edge) ->
                      Printf.sprintf "e%d:%s(x%d,x%d)" e.Query.idx
                        (label_string ~label_names e.Query.lbl)
                        e.Query.src_var e.Query.dst_var)
                    st.Plan.edges))
          in
          match se.Selectivity.candidates with
          | Some cands ->
              Format.fprintf fmt
                "  %d: pivot x%d (leapfrog, %d candidates) matches [%s] \
                 fanout=%.3g cumulative=%.3g@,"
                se.Selectivity.step_index se.Selectivity.pivot cands edges
                se.Selectivity.fanout se.Selectivity.cumulative
          | None ->
              Format.fprintf fmt
                "  %d: pivot x%d matches [%s] fanout=%.3g cumulative=%.3g@,"
                se.Selectivity.step_index se.Selectivity.pivot edges
                se.Selectivity.fanout se.Selectivity.cumulative)
        c.est.Selectivity.steps;
      Format.fprintf fmt
        "  estimated results %.3g, intermediate tuples %.3g@,"
        c.est.Selectivity.estimated_results
        c.est.Selectivity.estimated_intermediate;
      List.iter (fun d -> Format.fprintf fmt "  %a@," Diagnostic.pp d)
        c.plan_diags)
    t.candidates;
  (match best_name t with
  | Some name ->
      Format.fprintf fmt
        "ranking: %s has the lowest estimated intermediate total%s" name
        (if name = "cost-model" then " — the planner's choice stands"
         else " — the executed cost-model plan is outranked")
  | None -> Format.fprintf fmt "ranking: no structurally valid candidate");
  Format.fprintf fmt "@]"

(* ---- EXPLAIN ANALYZE: per-level estimated vs measured ---- *)

let misestimation_threshold = 16.0

type level_row = {
  level : int;
  pivot : int;
  est_cumulative : float;
  actual : int;
  factor : float;  (* symmetric: >= 1, direction read off est vs actual *)
}

type replan = {
  pivots : int list;  (* calibrated plan's pivot order *)
  changed : bool;  (* differs from the executed plan's order *)
}

type analyzed = {
  executed : string;  (* candidate name that ran *)
  rows : level_row list;
  exec_stats : Run_stats.t;
  analyze_diags : Diagnostic.t list;  (* P009 + P010 *)
  replan : replan option;  (* calibrated re-plan, when P009 fired *)
}

let misest_factor est actual =
  let e = Float.max est 1.0 and a = Float.max (float_of_int actual) 1.0 in
  Float.max e a /. Float.min e a

(* Execute the chosen candidate's plan — the same plan the static table
   above estimated, over the same effective window — and line the
   measured per-level intermediate counters up against the estimates.
   [None] when propagation proved the window empty: there is nothing to
   execute and nothing to learn. *)
let run_analyze target t =
  match t.bound.Bound.effective with
  | None -> None
  | Some w -> (
      match List.find_opt (fun c -> c.chosen) t.candidates with
      | None -> None
      | Some chosen ->
          let q = Query.with_window t.query w in
          let stats = Run_stats.create () in
          Tcsq_core.Tsrjoin.run ~stats ~plan:chosen.plan (Lint.tai target) q
            ~emit:(fun _ -> ());
          let actuals = Run_stats.levels stats in
          let actual_at i =
            if i < Array.length actuals then actuals.(i) else 0
          in
          let rows =
            Array.to_list
              (Array.map
                 (fun (se : Selectivity.step_estimate) ->
                   let level = se.Selectivity.step_index in
                   let actual = actual_at level in
                   {
                     level;
                     pivot = se.Selectivity.pivot;
                     est_cumulative = se.Selectivity.cumulative;
                     actual;
                     factor = misest_factor se.Selectivity.cumulative actual;
                   })
                 chosen.est.Selectivity.steps)
          in
          let p009 =
            List.filter_map
              (fun r ->
                if r.factor > misestimation_threshold then
                  Some
                    (Diagnostic.make ~code:"P009" ~severity:Warning
                       ~location:(Step r.level)
                       "cost model off by x%.1f at level %d: estimated %.3g \
                        intermediate tuples, measured %d"
                       r.factor r.level r.est_cumulative r.actual)
                else None)
              rows
          in
          (* any P009 triggers a calibrated re-plan: the measured levels
             become per-edge correction factors and the planner runs
             again — exactly what the server's plan cache does after
             repeated misestimation, shown here without a server *)
          let replan =
            if p009 = [] then None
            else
              let est_levels =
                Array.map
                  (fun (se : Selectivity.step_estimate) ->
                    int_of_float (Float.round se.Selectivity.cumulative))
                  chosen.est.Selectivity.steps
              in
              let edge_scale =
                Plan.calibration chosen.plan ~est_levels ~levels:actuals
              in
              let plan' =
                Plan.build ~cost:(Lint.cost target) ~edge_scale
                  (Lint.tai target) q
              in
              let pivots p =
                Array.to_list
                  (Array.map (fun s -> s.Plan.pivot) (Plan.steps p))
              in
              let old_order = pivots chosen.plan in
              let new_order = pivots plan' in
              Some { pivots = new_order; changed = new_order <> old_order }
          in
          let p010 =
            match replan with
            | None -> []
            | Some r ->
                [
                  Diagnostic.make ~code:"P010" ~severity:Hint
                    ~location:Planloc
                    "re-planned from feedback: calibrated pivot order [%s] \
                     %s the executed order"
                    (String.concat "; "
                       (List.map (fun v -> "x" ^ string_of_int v) r.pivots))
                    (if r.changed then "replaces" else "confirms");
                ]
          in
          Some { executed = chosen.name; rows; exec_stats = stats;
                 analyze_diags = p009 @ p010; replan })

let pp_analyzed fmt a =
  Format.fprintf fmt "@[<v>analyze (%s plan executed):@," a.executed;
  Format.fprintf fmt "  level  pivot  estimated     actual  factor@,";
  List.iter
    (fun r ->
      let direction =
        if r.actual > int_of_float (Float.round r.est_cumulative) then "under"
        else if int_of_float (Float.round r.est_cumulative) > r.actual then
          "over"
        else "exact"
      in
      Format.fprintf fmt "  %-5d  x%-4d  %-12.4g  %-6d  x%.1f %s@," r.level
        r.pivot r.est_cumulative r.actual r.factor direction)
    a.rows;
  let est_total =
    List.fold_left (fun acc r -> acc +. r.est_cumulative) 0.0 a.rows
  in
  Format.fprintf fmt
    "  totals: estimated %.4g intermediate, measured %d; results %d@,"
    est_total a.exec_stats.Run_stats.intermediate
    a.exec_stats.Run_stats.results;
  (match a.analyze_diags with
  | [] -> Format.fprintf fmt "  misestimation: all levels within x%.0f"
            misestimation_threshold
  | ds ->
      Format.fprintf fmt "  misestimation:@,";
      List.iteri
        (fun i d ->
          if i > 0 then Format.fprintf fmt "@,";
          Format.fprintf fmt "    %a" Diagnostic.pp d)
        ds);
  (match a.replan with
  | None -> ()
  | Some r ->
      Format.fprintf fmt "@,  re-plan: calibrated pivot order [%s] (%s)"
        (String.concat "; "
           (List.map (fun v -> "x" ^ string_of_int v) r.pivots))
        (if r.changed then "order changed" else "order unchanged"));
  Format.fprintf fmt "@]"

let analyzed_to_json a =
  Json_out.obj
    [
      ("executed", Json_out.escape_string a.executed);
      ( "levels",
        Json_out.arr
          (List.map
             (fun r ->
               Json_out.obj
                 [
                   ("level", string_of_int r.level);
                   ("pivot", string_of_int r.pivot);
                   ("estimated", Printf.sprintf "%.6g" r.est_cumulative);
                   ("actual", string_of_int r.actual);
                   ("factor", Printf.sprintf "%.6g" r.factor);
                 ])
             a.rows) );
      ( "stats",
        Json_out.obj
          [
            ("results", string_of_int a.exec_stats.Run_stats.results);
            ( "intermediate",
              string_of_int a.exec_stats.Run_stats.intermediate );
            ("scanned", string_of_int a.exec_stats.Run_stats.scanned);
            ("bindings", string_of_int a.exec_stats.Run_stats.bindings);
            ("seeks", string_of_int a.exec_stats.Run_stats.seeks);
          ] );
      ("diagnostics", Diagnostic.list_to_json a.analyze_diags);
      ( "replan",
        match a.replan with
        | None -> "null"
        | Some r ->
            Json_out.obj
              [
                ( "pivots",
                  Json_out.arr (List.map string_of_int r.pivots) );
                ("changed", string_of_bool r.changed);
              ] );
    ]

let est_to_json (est : Selectivity.t) =
  Json_out.obj
    [
      ( "window",
        Json_out.obj
          [
            ("ws", string_of_int est.Selectivity.ws);
            ("we", string_of_int est.Selectivity.we);
          ] );
      ("estimated_results", Printf.sprintf "%.6g" est.Selectivity.estimated_results);
      ( "estimated_intermediate",
        Printf.sprintf "%.6g" est.Selectivity.estimated_intermediate );
      ( "steps",
        Json_out.arr
          (Array.to_list
             (Array.map
                (fun (se : Selectivity.step_estimate) ->
                  Json_out.obj
                    ([
                       ("index", string_of_int se.Selectivity.step_index);
                       ("pivot", string_of_int se.Selectivity.pivot);
                       ("root", string_of_bool se.Selectivity.root);
                       ("n_edges", string_of_int se.Selectivity.n_edges);
                     ]
                    @ (match se.Selectivity.candidates with
                      | Some c -> [ ("candidates", string_of_int c) ]
                      | None -> [])
                    @ [
                        ("fanout", Printf.sprintf "%.6g" se.Selectivity.fanout);
                        ( "cumulative",
                          Printf.sprintf "%.6g" se.Selectivity.cumulative );
                      ]))
                est.Selectivity.steps)) );
    ]

let to_json ?analyzed ~label_names t =
  let q = t.query in
  let interval_json w =
    Json_out.obj
      [
        ("ws", string_of_int (Temporal.Interval.ts w));
        ("we", string_of_int (Temporal.Interval.te w));
      ]
  in
  Json_out.obj
    [
      ("schema", "\"tcsq-explain/v1\"");
      ("query", Json_out.escape_string (Format.asprintf "%a" Query.pp q));
      ("window", interval_json (Query.window q));
      ( "effective_window",
        match t.bound.Bound.effective with
        | Some w -> interval_json w
        | None -> "null" );
      ("unsat", string_of_bool t.bound.Bound.unsat);
      ("diagnostics", Diagnostic.list_to_json t.query_diags);
      ( "edges",
        Json_out.arr
          (match t.candidates with
          | [] -> []
          | c :: _ ->
              Array.to_list
                (Array.map
                   (fun (ee : Selectivity.edge_estimate) ->
                     let e = ee.Selectivity.edge in
                     Json_out.obj
                       [
                         ("edge", string_of_int e.Query.idx);
                         ( "label",
                           Json_out.escape_string
                             (label_string ~label_names e.Query.lbl) );
                         ("count", Printf.sprintf "%.6g" ee.Selectivity.count);
                         ( "window_fraction",
                           Printf.sprintf "%.6g" ee.Selectivity.window_fraction );
                         ( "expected_active",
                           Printf.sprintf "%.6g" ee.Selectivity.expected_active );
                       ])
                   c.est.Selectivity.edges)) );
      ( "plans",
        Json_out.arr
          (List.map
             (fun c ->
               Json_out.obj
                 [
                   ("name", Json_out.escape_string c.name);
                   ("chosen", string_of_bool c.chosen);
                   ("estimate", est_to_json c.est);
                   ("diagnostics", Diagnostic.list_to_json c.plan_diags);
                 ])
             t.candidates) );
      ( "analyze",
        match analyzed with
        | None -> "null"
        | Some a -> analyzed_to_json a );
    ]
