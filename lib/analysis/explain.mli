(** Pass 3: the cost-annotated plan report behind [tcsq explain].

    Combines the three analysis passes into one artifact: query
    diagnostics ({!Query_check} + {!Bound}), the propagated interval
    bounds and effective window, and — per candidate plan — the
    {!Selectivity} estimate annotated onto every TSRJoin level, plus
    plan-invariant diagnostics and [P008] dominated-plan warnings.

    Candidates are the cost-model plan (the one the engine executes),
    the adaptive planner's plan, and optionally the literal plan induced
    by an explicit pivot order. A candidate is {e dominated} when its
    estimated intermediate-tuple total exceeds the best valid
    candidate's by more than {!dominance_factor}; the report states the
    ranking rationale either way.

    With {!run_analyze} ([tcsq explain --analyze]) the chosen plan is
    additionally {e executed} over the effective window and the
    measured per-level intermediate cardinalities are lined up against
    the estimates — the estimated-vs-actual feedback loop the adaptive
    re-optimizer will consume.

    Codes:
    - [P008] (Warning) dominated plan: estimated cost exceeds the best
      candidate's by more than {!dominance_factor}
    - [P009] (Warning) misestimated level: the cost model's per-level
      prediction is off by more than {!misestimation_threshold} in
      either direction
    - [P010] (Hint) re-planned from feedback: a [P009] misestimation
      triggered a {!Tcsq_core.Plan.calibration} re-plan with the
      observed cardinalities; the diagnostic reports whether the
      calibrated pivot order confirms or replaces the executed one —
      the same adaptive loop {!Workload.Plan_cache} closes server-side *)

type candidate = {
  name : string;  (** ["cost-model"], ["adaptive"] or ["pivot-order"] *)
  plan : Tcsq_core.Plan.t;
  est : Selectivity.t;  (** against the {e effective} window *)
  chosen : bool;  (** what {!Workload.Engine} would execute *)
  plan_diags : Diagnostic.t list;  (** plan invariants + [P008] *)
}

type t = {
  query : Semantics.Query.t;
  bound : Bound.result;
  query_diags : Diagnostic.t list;  (** {!Query_check} + {!Bound} *)
  candidates : candidate list;
}

val dominance_factor : float
(** 4.0: a plan estimated at over 4x the best candidate's intermediate
    tuples is flagged [P008]. *)

val analyze : ?pivot_order:int list -> Lint.target -> Semantics.Query.t -> t
(** Estimates use {!Bound}'s effective window so the report reflects
    what propagation already proved. Never raises on planner-invalid
    candidates — their diagnostics ride in [plan_diags]. *)

val diagnostics : t -> Diagnostic.t list
(** Everything, query diagnostics first, for exit-code decisions. *)

val misestimation_threshold : float
(** 16.0: a level whose estimated and measured intermediate
    cardinalities differ by more than this factor (either direction) is
    flagged [P009]. *)

type level_row = {
  level : int;
  pivot : int;
  est_cumulative : float;  (** the static {!Selectivity} prediction *)
  actual : int;  (** the measured {!Semantics.Run_stats} level counter *)
  factor : float;  (** symmetric misestimation factor, always >= 1 *)
}

type replan = {
  pivots : int list;  (** the calibrated plan's pivot order *)
  changed : bool;  (** it differs from the executed plan's order *)
}

type analyzed = {
  executed : string;  (** the candidate that ran (the chosen plan) *)
  rows : level_row list;
  exec_stats : Semantics.Run_stats.t;
  analyze_diags : Diagnostic.t list;
      (** [P009] per misestimated level, plus one [P010] when any fired *)
  replan : replan option;  (** the calibrated re-plan behind [P010] *)
}

val run_analyze : Lint.target -> t -> analyzed option
(** Execute the chosen candidate over the effective window and compare
    per level. [None] when propagation proved the window empty (nothing
    to execute) or no candidate is marked chosen. Runs without budgets:
    the caller decides whether the query is cheap enough to measure. *)

val pp : label_names:string array -> Format.formatter -> t -> unit
(** The human-readable report: effective window, per-edge expected
    cardinalities, per-step estimate table per candidate, ranking
    rationale. Deterministic (no timings). *)

val pp_analyzed : Format.formatter -> analyzed -> unit
(** The estimated-vs-actual table: one row per plan level plus totals
    and the [P009] verdicts. Deterministic (counters, no timings). *)

val to_json : ?analyzed:analyzed -> label_names:string array -> t -> string
(** Schema ["tcsq-explain/v1"]; [analyzed] rides in the (additive)
    ["analyze"] key, [null] when absent. *)
