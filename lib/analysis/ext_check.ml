open Semantics

let label_name (env : Query_check.env) lbl =
  if lbl = Query.any_label then "*"
  else if lbl >= 0 && lbl < Array.length env.Query_check.label_names then
    env.Query_check.label_names.(lbl)
  else string_of_int lbl

(* A clause label with no graph edges at all: its matched union is empty
   on every binding, independent of endpoints and window. *)
let label_absent (env : Query_check.env) lbl =
  if lbl = Query.any_label then env.Query_check.span = None
  else
    lbl < 0
    || lbl >= env.Query_check.n_labels
    || env.Query_check.label_spans.(lbl) = None

let check ~env eq =
  let semi_diags =
    List.concat
      (List.mapi
         (fun k (c : Equery.clause) ->
           if label_absent env c.Equery.lbl then
             [
               Diagnostic.make ~proves_empty:true ~code:"Q016"
                 ~severity:Warning ~location:Queryloc
                 "EXISTS clause %d can never hold: label %S has no graph \
                  edges, so the semijoin intersection empties every \
                  lifespan"
                 k
                 (label_name env c.Equery.lbl);
             ]
           else [])
         (Equery.semi eq))
  in
  let anti_diags =
    List.concat
      (List.mapi
         (fun k (c : Equery.clause) ->
           if label_absent env c.Equery.lbl then
             [
               Diagnostic.make ~code:"Q017" ~severity:Hint ~location:Queryloc
                 "NOT clause %d never matches: label %S has no graph edges, \
                  so the antijoin subtracts nothing — drop the clause"
                 k
                 (label_name env c.Equery.lbl);
             ]
           else [])
         (Equery.anti eq))
  in
  semi_diags @ anti_diags
