(** Static checks for the extended-operator decorations of a query.

    Complements {!Query_check} (which covers the core pattern) with
    clause-level facts derivable from the label statistics alone:

    - [Q016] (Warning, proves empty): an [EXISTS] clause's label has no
      graph edges — the semijoin intersects every lifespan with the
      empty set, so the query provably returns nothing;
    - [Q017] (Hint): a [NOT] clause's label has no graph edges — the
      antijoin subtracts nothing and the clause can be dropped.

    Allen-constraint infeasibility lives in {!Bound} ([Q015]), where the
    constraints join the interval-propagation network. *)

val check : env:Query_check.env -> Semantics.Equery.t -> Diagnostic.t list
(** Clause diagnostics, [Q016] before [Q017], each in clause order.
    Empty for a plain query. *)
