open Tcsq_core

type target = {
  tai : Tai.t;
  cost : Plan.cost_model;
  env : Query_check.env;
}

let target_of_tai tai =
  { tai; cost = Plan.cost_model tai; env = Query_check.env_of_graph (Tai.graph tai) }

let target_of_graph g = target_of_tai (Tai.build g)

let env t = t.env
let tai t = t.tai
let cost t = t.cost

let check_equery t eq =
  let q = Semantics.Equery.core eq in
  let ds = Query_check.check ~env:t.env q in
  if Diagnostic.has_errors ds then ds
  else
    ds
    @ Ext_check.check ~env:t.env eq
    @ (Bound.analyze ~allen:(Semantics.Equery.allen eq) ~env:t.env q)
        .Bound.diagnostics
    @ Plan_check.check (Plan.build ~cost:t.cost t.tai q)
    @ Plan_check.check (Plan.build_adaptive ~cost:t.cost t.tai q)

let check_query t q = check_equery t (Semantics.Equery.plain q)

let check_pivot_order t q order =
  let ds = Query_check.check ~env:t.env q in
  if Diagnostic.has_errors ds then ds
  else ds @ Plan_check.check (Plan.of_pivot_order_unchecked q order)

let check_text ?default_window t text =
  match Semantics.Qlang.parse text with
  | Error { position; message } ->
      ( None,
        [
          Diagnostic.make ~code:"Q000" ~severity:Error
            ~location:(Text position) "syntax error: %s" message;
        ] )
  | Ok ast -> (
      match
        Semantics.Qlang.compile_ext ?default_window (Tai.graph t.tai) ast
      with
      | Error msg ->
          ( None,
            [
              Diagnostic.make ~code:"Q000" ~severity:Error ~location:Queryloc
                "%s" msg;
            ] )
      | Ok eq -> (Some eq, check_equery t eq))
