(** The lint driver behind [tcsq lint] and the engine's admission check:
    query semantic analysis, then — when the query is error-free — plan
    invariant analysis over every planner ({!Tcsq_core.Plan.build},
    {!Tcsq_core.Plan.build_adaptive}, and, on request, an explicit pivot
    order). *)

type target
(** A graph prepared for linting: TAI, cost model and query-check env. *)

val target_of_graph : Tgraph.Graph.t -> target
val target_of_tai : Tcsq_core.Tai.t -> target
(** Reuse an existing TAI (e.g. the engine's) instead of rebuilding. *)

val env : target -> Query_check.env
val tai : target -> Tcsq_core.Tai.t
val cost : target -> Tcsq_core.Plan.cost_model

val check_query : target -> Semantics.Query.t -> Diagnostic.t list
(** {!Query_check.check} plus, when it reports no [Error],
    {!Bound.analyze}'s propagation diagnostics and plan checks on the
    cost-model plan and the adaptive plan. *)

val check_equery : target -> Semantics.Equery.t -> Diagnostic.t list
(** Like {!check_query} over the core pattern, adding {!Ext_check}'s
    clause diagnostics and feeding the Allen constraints into
    {!Bound.analyze}. [check_query q] = [check_equery (Equery.plain q)]. *)

val check_pivot_order :
  target -> Semantics.Query.t -> int list -> Diagnostic.t list
(** Lints the {e literal} plan induced by the pivot order
    ({!Tcsq_core.Plan.of_pivot_order_unchecked}): pivots are taken in
    the given order without the safe planner's bound-first repair, so a
    wrong order surfaces as [P002]/[P004] diagnostics instead of being
    silently fixed. *)

val check_text :
  ?default_window:Temporal.Interval.t ->
  target ->
  string ->
  Semantics.Equery.t option * Diagnostic.t list
(** Parse and compile a query-language string (the full extended
    surface), folding syntax and compilation failures into
    [Q000]/[Q003] diagnostics, then {!check_equery}. The query is
    [None] when it could not be built. *)
