open Semantics
open Tcsq_core

let check (p : Plan.t) =
  let q = Plan.query p in
  let n_edges = Query.n_edges q in
  let n_vars = Query.n_vars q in
  let matched = Array.make n_edges 0 in
  let bound = Array.make n_vars false in
  let out = ref [] in
  let add d = out := d :: !out in
  Array.iteri
    (fun si (step : Plan.step) ->
      if Array.length step.edges = 0 then
        add
          (Diagnostic.make ~code:"P001" ~severity:Error ~location:(Step si)
             "step %d at pivot x%d matches no query edge" si step.pivot);
      let pivot_in_range = step.pivot >= 0 && step.pivot < n_vars in
      if pivot_in_range then begin
        if step.produce_binding && bound.(step.pivot) then
          add
            (Diagnostic.make ~code:"P003" ~severity:Error ~location:(Step si)
               "step %d sets produce_binding on pivot x%d, which an earlier \
                step already bound (leapfrog roots must be fresh)"
               si step.pivot)
        else if (not step.produce_binding) && not bound.(step.pivot) then
          add
            (Diagnostic.make ~code:"P002" ~severity:Error ~location:(Step si)
               "step %d uses pivot x%d before any earlier step binds it" si
               step.pivot)
      end
      else
        add
          (Diagnostic.make ~code:"P002" ~severity:Error ~location:(Step si)
             "step %d pivot x%d is not a query variable (query has %d)" si
             step.pivot n_vars);
      Array.iter
        (fun (e : Query.edge) ->
          if e.idx < 0 || e.idx >= n_edges then
            add
              (Diagnostic.make ~code:"P007" ~severity:Error
                 ~location:(Step si)
                 "step %d matches edge index %d, outside the query's %d \
                  edges"
                 si e.idx n_edges)
          else begin
            let qe = Query.edge q e.idx in
            if
              (qe.lbl, qe.src_var, qe.dst_var) <> (e.lbl, e.src_var, e.dst_var)
            then
              add
                (Diagnostic.make ~code:"P007" ~severity:Error
                   ~location:(Step si)
                   "step %d edge %d disagrees with the query's edge table \
                    (plan has l%d(x%d,x%d), query has l%d(x%d,x%d))"
                   si e.idx e.lbl e.src_var e.dst_var qe.lbl qe.src_var
                   qe.dst_var);
            matched.(e.idx) <- matched.(e.idx) + 1;
            if e.src_var >= 0 && e.src_var < n_vars then
              bound.(e.src_var) <- true;
            if e.dst_var >= 0 && e.dst_var < n_vars then
              bound.(e.dst_var) <- true;
            if
              pivot_in_range && e.src_var <> step.pivot
              && e.dst_var <> step.pivot
            then
              add
                (Diagnostic.make ~code:"P006" ~severity:Error
                   ~location:(Step si)
                   "step %d matches edge %d (x%d->x%d), which is not \
                    incident to pivot x%d"
                   si e.idx e.src_var e.dst_var step.pivot)
          end)
        step.edges;
      if pivot_in_range then bound.(step.pivot) <- true)
    (Plan.steps p);
  Array.iteri
    (fun i c ->
      if c = 0 then
        add
          (Diagnostic.make ~code:"P004" ~severity:Error ~location:(Edge i)
             "query edge %d is never matched by the plan (deferred but never \
              picked up?)"
             i)
      else if c > 1 then
        add
          (Diagnostic.make ~code:"P005" ~severity:Error ~location:(Edge i)
             "query edge %d is matched %d times; plans must match each edge \
              exactly once"
             i c))
    matched;
  List.rev !out

let check_result p =
  match check p with [] -> Ok () | d :: _ -> Error (Diagnostic.to_string d)
