(** Pass 2: plan invariant analysis.

    Subsumes {!Tcsq_core.Plan.validate} with structured, per-step
    diagnostics. A clean plan satisfies: every query edge matched
    exactly once (so adaptive deferred edges are eventually matched),
    every step matches at least one edge, each step's edges are incident
    to its pivot and agree with the query's edge table, non-root pivots
    are bound by an earlier step, and [produce_binding] is set exactly
    on component roots (pivots unbound when their step runs).

    Codes (all [Error]):
    - [P001] step matches no query edge
    - [P002] pivot used before being bound (unbound non-root pivot)
    - [P003] [produce_binding] set on an already-bound pivot
    - [P004] query edge never matched by the plan
    - [P005] query edge matched more than once
    - [P006] step edge not incident to the step's pivot
    - [P007] step edge disagrees with the query's edge table *)

val check : Tcsq_core.Plan.t -> Diagnostic.t list
(** Diagnostics in step order, then unmatched-edge order. *)

val check_result : Tcsq_core.Plan.t -> (unit, string) result
(** [Error] carries the first diagnostic rendered — a drop-in for
    {!Tcsq_core.Plan.validate} call sites. *)
