open Semantics

type env = {
  n_labels : int;
  label_names : string array;
  label_counts : int array;
  span : Temporal.Interval.t option;
  max_edge_len : int;
  label_spans : Temporal.Interval.t option array;
  label_max_len : int array;
}

let env_of_graph g =
  let n_labels = Tgraph.Graph.n_labels g in
  let label_counts = Array.make n_labels 0 in
  let max_edge_len = ref 0 in
  let label_spans = Array.make n_labels None in
  let label_max_len = Array.make n_labels 0 in
  Tgraph.Graph.iter_edges
    (fun e ->
      let l = Tgraph.Edge.lbl e in
      let ivl = Tgraph.Edge.ivl e in
      label_counts.(l) <- label_counts.(l) + 1;
      max_edge_len := max !max_edge_len (Temporal.Interval.length ivl);
      label_max_len.(l) <- max label_max_len.(l) (Temporal.Interval.length ivl);
      label_spans.(l) <-
        (match label_spans.(l) with
        | None -> Some ivl
        | Some sp -> Some (Temporal.Interval.span sp ivl)))
    g;
  {
    n_labels;
    label_names = Tgraph.Label.names (Tgraph.Graph.labels g);
    label_counts;
    span =
      (if Tgraph.Graph.n_edges g = 0 then None
       else Some (Tgraph.Graph.time_domain g));
    max_edge_len = !max_edge_len;
    label_spans;
    label_max_len;
  }

let check_raw_window ~ws ~we =
  if we < ws then
    [
      Diagnostic.make ~code:"Q001" ~severity:Error ~location:Window
        "window [%d, %d] is inverted: end %d is before start %d" ws we we ws;
    ]
  else []

(* ---- structural checks (query only) ---- *)

let edge_signature (e : Query.edge) = (e.lbl, e.src_var, e.dst_var)

let orphan_vars q =
  let out = ref [] in
  for v = Query.n_vars q - 1 downto 0 do
    if Query.adjacent q v = [] then
      out :=
        Diagnostic.make ~code:"Q004" ~severity:Warning ~location:(Var v)
          "variable x%d is not used by any query edge and never binds" v
        :: !out
  done;
  !out

let duplicate_edges q =
  let edges = Query.edges q in
  let out = ref [] in
  Array.iteri
    (fun j e ->
      (* report each duplicate against its first occurrence *)
      let rec first i =
        if i >= j then None
        else if edge_signature edges.(i) = edge_signature e then Some i
        else first (i + 1)
      in
      match first 0 with
      | Some i ->
          out :=
            Diagnostic.make ~code:"Q005" ~severity:Warning ~location:(Edge j)
              "query edge %d duplicates edge %d (same label and endpoints \
               x%d->x%d); under homomorphism semantics both can bind the \
               same graph edge"
              j i e.src_var e.dst_var
            :: !out
      | None -> ())
    edges;
  List.rev !out

let components q =
  (* connected components over the variables that carry edges *)
  let n = Query.n_vars q in
  let comp = Array.make n (-1) in
  let n_comps = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) = -1 && Query.adjacent q v <> [] then begin
      let id = !n_comps in
      incr n_comps;
      let rec visit v =
        if comp.(v) = -1 then begin
          comp.(v) <- id;
          List.iter
            (fun e -> visit (Query.other_endpoint e v))
            (Query.adjacent q v)
        end
      in
      visit v
    end
  done;
  !n_comps

let disconnected q =
  let n = components q in
  if n > 1 then
    [
      Diagnostic.make ~code:"Q006" ~severity:Warning ~location:Queryloc
        "pattern has %d connected components; the result is their cartesian \
         product"
        n;
    ]
  else []

let self_loops q =
  Array.to_list (Query.edges q)
  |> List.filter_map (fun (e : Query.edge) ->
         if e.src_var = e.dst_var then
           Some
             (Diagnostic.make ~code:"Q007" ~severity:Hint
                ~location:(Edge e.idx)
                "query edge %d is a self loop on x%d; it matches only \
                 self-loop graph edges"
                e.idx e.src_var)
         else None)

(* ---- graph-dependent checks ---- *)

let label_checks env q =
  Array.to_list (Query.edges q)
  |> List.filter_map (fun (e : Query.edge) ->
         if e.lbl = Query.any_label then None
         else if e.lbl >= env.n_labels then
           Some
             (Diagnostic.make ~proves_empty:true ~code:"Q003" ~severity:Error
                ~location:(Edge e.idx)
                "query edge %d uses label %d, outside the graph's vocabulary \
                 of %d labels"
                e.idx e.lbl env.n_labels)
         else if env.label_counts.(e.lbl) = 0 then
           Some
             (Diagnostic.make ~proves_empty:true ~code:"Q008"
                ~severity:Warning ~location:(Edge e.idx)
                "query edge %d requires label %S, which no graph edge \
                 carries"
                e.idx env.label_names.(e.lbl))
         else None)

let window_checks env q =
  match env.span with
  | None ->
      [
        Diagnostic.make ~proves_empty:true ~code:"Q009" ~severity:Warning
          ~location:Queryloc "the graph has no edges; no query can match";
      ]
  | Some span ->
      let w = Query.window q in
      let disjoint =
        if not (Temporal.Interval.overlaps span w) then
          [
            Diagnostic.make ~proves_empty:true ~code:"Q002" ~severity:Warning
              ~location:Window
              "query window %s is disjoint from the graph's time span %s: \
               provably zero matches"
              (Temporal.Interval.to_string w)
              (Temporal.Interval.to_string span);
          ]
        else []
      in
      let durability =
        if Query.min_duration q > env.max_edge_len then
          [
            Diagnostic.make ~proves_empty:true ~code:"Q010" ~severity:Warning
              ~location:Queryloc
              "LASTING %d exceeds the longest edge interval (%d ticks); no \
               match can be that durable"
              (Query.min_duration q) env.max_edge_len;
          ]
        else []
      in
      disjoint @ durability

let check ?env q =
  let structural =
    check_raw_window ~ws:(Query.ws q) ~we:(Query.we q)
    @ orphan_vars q @ duplicate_edges q @ disconnected q @ self_loops q
  in
  let with_env =
    match env with
    | None -> []
    | Some env -> window_checks env q @ label_checks env q
  in
  List.sort
    (fun (a : Diagnostic.t) (b : Diagnostic.t) -> compare a.code b.code)
    (structural @ with_env)
