(** Pass 1: query semantic analysis.

    Structural checks need only the query; graph-dependent checks (label
    vocabulary, window vs. time span, durability vs. edge lengths) need
    an {!env} summarizing the target graph. Build the env once per graph
    and reuse it across queries — it is the only part that scans the
    edge table.

    Codes:
    - [Q000] (Error) query-language syntax or compilation failure
      (emitted by {!Lint}, not here)
    - [Q001] (Error) inverted window, end before start
    - [Q002] (Warning, proves empty) window disjoint from the graph's
      time span
    - [Q003] (Error, proves empty) label id outside the graph's
      vocabulary
    - [Q004] (Warning) orphan variable: not used by any query edge
    - [Q005] (Warning) duplicate query edge (same label, source and
      destination)
    - [Q006] (Warning) disconnected pattern: the result is the cartesian
      product of its components
    - [Q007] (Hint) self-loop query edge: matches only self-loop graph
      edges
    - [Q008] (Warning, proves empty) label interned but matching no
      graph edge
    - [Q009] (Warning, proves empty) graph has no edges
    - [Q010] (Warning, proves empty) LASTING duration exceeds every edge
      interval's length

    Codes [Q011]-[Q014] are emitted by {!Bound}, the constraint
    propagation pass layered on top of this one. The full registry lives
    in ARCHITECTURE.md. *)

type env = {
  n_labels : int;
  label_names : string array;
  label_counts : int array;  (** edges per label *)
  span : Temporal.Interval.t option;  (** [None] on an empty graph *)
  max_edge_len : int;  (** longest edge interval, 0 on an empty graph *)
  label_spans : Temporal.Interval.t option array;
      (** per label, the hull of its edge intervals ([None]: no edges) —
          the initial abstract value of {!Bound}'s propagation *)
  label_max_len : int array;
      (** per label, the longest edge interval (0: no edges) *)
}

val env_of_graph : Tgraph.Graph.t -> env
(** One O(edges) scan. *)

val check : ?env:env -> Semantics.Query.t -> Diagnostic.t list
(** Structural checks, plus the graph-dependent ones when [env] is
    given. Diagnostics come out in code order. *)

val check_raw_window : ws:int -> we:int -> Diagnostic.t list
(** [Q001] on an inverted window. Raw endpoints, because
    {!Temporal.Interval.t} cannot represent an inverted window — use
    this before constructing the interval (e.g. on CLI input). *)
