open Semantics
module Plan = Tcsq_core.Plan

type edge_estimate = {
  edge : Query.edge;
  count : float;
  window_fraction : float;
  expected_active : float;
}

type step_estimate = {
  step_index : int;
  pivot : int;
  root : bool;
  n_edges : int;
  candidates : int option;
  fanout : float;
  cumulative : float;
}

type t = {
  ws : int;
  we : int;
  edges : edge_estimate array;
  steps : step_estimate array;
  estimated_results : float;
  estimated_intermediate : float;
}

let estimate ?window ~cost tai plan =
  let q = Plan.query plan in
  let w = match window with Some w -> w | None -> Query.window q in
  let ws = Temporal.Interval.ts w and we = Temporal.Interval.te w in
  let edges =
    Array.map
      (fun (e : Query.edge) ->
        let s = Plan.label_summary cost e.Query.lbl in
        let frac = Plan.window_selectivity cost e.Query.lbl ~ws ~we in
        {
          edge = e;
          count = s.Plan.count;
          window_fraction = frac;
          expected_active = s.Plan.count *. frac;
        })
      (Query.edges q)
  in
  (* replay of the planner's binding state, so per-edge TSR sizes use
     the same boundness the planner scored with *)
  let bound = Array.make (Query.n_vars q) false in
  let cum = ref 1.0 in
  let total = ref 0.0 in
  let steps =
    Array.mapi
      (fun i (st : Plan.step) ->
        let v = st.Plan.pivot in
        let fanout, candidates =
          if st.Plan.produce_binding then begin
            let c = Plan.step_root_candidates tai st in
            let per_candidate = ref 1.0 in
            Array.iteri
              (fun k (e : Query.edge) ->
                let s = Plan.label_summary cost e.Query.lbl in
                let size =
                  if e.Query.src_var = v then s.Plan.avg_out else s.Plan.avg_in
                in
                let sel = Plan.window_selectivity cost e.Query.lbl ~ws ~we in
                (* the first edge needs no overlap partner *)
                let shrink =
                  if k = 0 then 1.0
                  else Plan.window_shrink cost e.Query.lbl ~ws ~we
                in
                per_candidate := !per_candidate *. size *. sel *. shrink)
              st.Plan.edges;
            (float_of_int c *. !per_candidate, Some c)
          end
          else begin
            let f = ref 1.0 in
            Array.iter
              (fun (e : Query.edge) ->
                let s = Plan.label_summary cost e.Query.lbl in
                let other = Query.other_endpoint e v in
                let size =
                  if other <> v && bound.(other) then
                    (* fully bound TSR: roughly avg multi-edge count *)
                    Float.max
                      (s.Plan.avg_out /. Float.max (s.Plan.count /. s.Plan.avg_in) 1.0)
                      1e-3
                  else if e.Query.src_var = v then s.Plan.avg_out
                  else s.Plan.avg_in
                in
                f :=
                  !f *. size
                  *. Plan.window_selectivity cost e.Query.lbl ~ws ~we
                  *. Plan.window_shrink cost e.Query.lbl ~ws ~we)
              st.Plan.edges;
            (!f, None)
          end
        in
        Array.iter
          (fun (e : Query.edge) ->
            bound.(e.Query.src_var) <- true;
            bound.(e.Query.dst_var) <- true)
          st.Plan.edges;
        bound.(v) <- true;
        (* a later component's root multiplies: the result is the
           cartesian product of component matches *)
        cum := !cum *. fanout;
        total := !total +. !cum;
        {
          step_index = i;
          pivot = v;
          root = st.Plan.produce_binding;
          n_edges = Array.length st.Plan.edges;
          candidates;
          fanout;
          cumulative = !cum;
        })
      (Plan.steps plan)
  in
  {
    ws;
    we;
    edges;
    steps;
    estimated_results = (if Array.length steps = 0 then 0.0 else !cum);
    estimated_intermediate = !total;
  }

let counter_of v =
  if Float.is_nan v || v <= 0.0 then 0
  else int_of_float (Float.round (Float.min v 1e15))

let intermediate_counter t = counter_of t.estimated_intermediate

let level_counters t =
  Array.map (fun (se : step_estimate) -> counter_of se.cumulative) t.steps
