(** Pass 2: static cardinality estimation for TSRJoin plans.

    Replays the planner's cost model ({!Tcsq_core.Plan.label_summary},
    {!Tcsq_core.Plan.window_selectivity},
    {!Tcsq_core.Plan.window_shrink}) in {e absolute} space instead of
    the planner's log space: per query edge, the expected number of
    label edges alive in the window; per plan step, the expected fan-out
    multiplier and the cumulative partial-match count after the step
    (the paper's per-level intermediate cardinality). Root steps use the
    exact leapfrog candidate count, so the first factor is not an
    estimate at all.

    Estimates are deterministic functions of the cost model, the plan
    and the window — [tcsq profile] records them next to the measured
    intermediate count ([est_intermediate] vs [intermediate] in
    {!Semantics.Run_stats}), making estimator error observable per
    query. *)

type edge_estimate = {
  edge : Semantics.Query.edge;
  count : float;  (** graph edges carrying the label *)
  window_fraction : float;  (** histogram share alive in the window *)
  expected_active : float;  (** [count *. window_fraction] *)
}

type step_estimate = {
  step_index : int;
  pivot : int;
  root : bool;  (** leapfrog binding-producing step *)
  n_edges : int;  (** query edges matched at this step *)
  candidates : int option;  (** exact leapfrog count (roots only) *)
  fanout : float;  (** expected multiplier per upstream partial match *)
  cumulative : float;  (** expected partial matches after this step *)
}

type t = {
  ws : int;
  we : int;  (** the window the estimate was computed against *)
  edges : edge_estimate array;  (** indexed by query edge *)
  steps : step_estimate array;  (** aligned with the plan's steps *)
  estimated_results : float;  (** the last step's cumulative *)
  estimated_intermediate : float;  (** sum of all cumulatives *)
}

val estimate :
  ?window:Temporal.Interval.t ->
  cost:Tcsq_core.Plan.cost_model ->
  Tcsq_core.Tai.t ->
  Tcsq_core.Plan.t ->
  t
(** [window] overrides the plan query's window (e.g. {!Bound}'s
    tightened effective window); default is the query's own. *)

val intermediate_counter : t -> int
(** [estimated_intermediate] rounded and clamped to a sane non-negative
    integer, the value recorded in
    {!Semantics.Run_stats.add_est_intermediate}. *)

val level_counters : t -> int array
(** Per-step [cumulative] rounded and clamped like
    {!intermediate_counter}, aligned with the plan's steps — the values
    recorded in {!Semantics.Run_stats.add_est_level_intermediate} and
    compared against the measured per-level counters by
    [tcsq explain --analyze]. *)
