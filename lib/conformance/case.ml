type t = { graph : Tgraph.Graph.t; query : Semantics.Equery.t }

let make graph query = { graph; query }
let make_plain graph q = { graph; query = Semantics.Equery.plain q }
let core t = Semantics.Equery.core t.query

let size t = (Tgraph.Graph.n_edges t.graph, Semantics.Query.n_edges (core t))

let brief t =
  let open Semantics in
  let eq = t.query in
  let ext =
    if Equery.is_plain eq then ""
    else
      let count what = function
        | [] -> []
        | l -> [ Printf.sprintf "%d %s" (List.length l) what ]
      in
      let parts =
        count "anti" (Equery.anti eq)
        @ count "semi" (Equery.semi eq)
        @ count "allen" (Equery.allen eq)
        @
        match Equery.agg eq with
        | None -> []
        | Some Equery.Count -> [ "count" ]
        | Some (Equery.Top k) -> [ Printf.sprintf "top %d" k ]
      in
      ", " ^ String.concat ", " parts
  in
  Printf.sprintf "%d graph edges, %d vertices, %d pattern edges, window %s%s"
    (Tgraph.Graph.n_edges t.graph)
    (Tgraph.Graph.n_vertices t.graph)
    (Query.n_edges (core t))
    (Temporal.Interval.to_string (Query.window (core t)))
    ext
