type t = { graph : Tgraph.Graph.t; query : Semantics.Query.t }

let make graph query = { graph; query }

let size t = (Tgraph.Graph.n_edges t.graph, Semantics.Query.n_edges t.query)

let brief t =
  Printf.sprintf "%d graph edges, %d vertices, %d pattern edges, window %s"
    (Tgraph.Graph.n_edges t.graph)
    (Tgraph.Graph.n_vertices t.graph)
    (Semantics.Query.n_edges t.query)
    (Temporal.Interval.to_string (Semantics.Query.window t.query))
