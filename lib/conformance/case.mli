(** A conformance test case: one temporal graph plus one extended query
    (whose window rides inside it). The unit that every check runs on,
    the shrinker minimizes, and reproducer files serialize. A plain
    query is carried as a decoration-free {!Semantics.Equery.t}. *)

type t = { graph : Tgraph.Graph.t; query : Semantics.Equery.t }

val make : Tgraph.Graph.t -> Semantics.Equery.t -> t
val make_plain : Tgraph.Graph.t -> Semantics.Query.t -> t

val core : t -> Semantics.Query.t
(** The query's core pattern. *)

val size : t -> int * int
(** (graph edges, query core pattern edges). *)

val brief : t -> string
(** One deterministic line: edge/vertex/pattern counts, the window, and
    — for extended queries — the decoration counts and aggregate. *)
