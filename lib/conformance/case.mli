(** A conformance test case: one temporal graph plus one query (whose
    window rides inside it). The unit that every check runs on, the
    shrinker minimizes, and reproducer files serialize. *)

type t = { graph : Tgraph.Graph.t; query : Semantics.Query.t }

val make : Tgraph.Graph.t -> Semantics.Query.t -> t

val size : t -> int * int
(** (graph edges, query pattern edges). *)

val brief : t -> string
(** One deterministic line: edge/vertex/pattern counts and the window. *)
