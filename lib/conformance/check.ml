type t =
  | Differential of { engine : string }
  | Relation of { relation : string; engine : string; relseed : int }
  | Parallel of { domains : int }
  | Analyzer

let describe = function
  | Differential { engine } -> Printf.sprintf "differential engine=%s" engine
  | Relation { relation; engine; relseed } ->
      Printf.sprintf "relation %s engine=%s relseed=%d" relation engine relseed
  | Parallel { domains } -> Printf.sprintf "parallel domains=%d" domains
  | Analyzer -> "analyzer"

let header_fields = function
  | Differential { engine } ->
      [ ("check", "differential"); ("engine", engine) ]
  | Relation { relation; engine; relseed } ->
      [
        ("check", "relation"); ("relation", relation); ("engine", engine);
        ("relseed", string_of_int relseed);
      ]
  | Parallel { domains } ->
      [ ("check", "parallel"); ("domains", string_of_int domains) ]
  | Analyzer -> [ ("check", "analyzer") ]

let of_header fields =
  let find k = List.assoc_opt k fields in
  let find_int k =
    match find k with
    | None -> None
    | Some v -> int_of_string_opt (String.trim v)
  in
  match find "check" with
  | None -> Error "reproducer is missing the check: header"
  | Some "differential" -> (
      match find "engine" with
      | Some engine -> Ok (Differential { engine })
      | None -> Error "differential check needs an engine: header")
  | Some "relation" -> (
      match (find "relation", find "engine", find_int "relseed") with
      | Some relation, Some engine, Some relseed ->
          Ok (Relation { relation; engine; relseed })
      | _ ->
          Error "relation check needs relation:, engine: and relseed: headers")
  | Some "parallel" -> (
      match find_int "domains" with
      | Some domains when domains >= 2 -> Ok (Parallel { domains })
      | _ -> Error "parallel check needs a domains: header >= 2")
  | Some "analyzer" -> Ok Analyzer
  | Some other -> Error (Printf.sprintf "unknown check kind %S" other)
