(** The identity of one conformance check: exactly what a reproducer
    file re-executes. Serialized into the [check:]/[engine:]/
    [relation:]/[relseed:]/[domains:] header lines of tcsq-repro/v1. *)

type t =
  | Differential of { engine : string }
      (** One engine variant's result set vs the naive oracle. *)
  | Relation of { relation : string; engine : string; relseed : int }
      (** One metamorphic relation checked on one engine variant;
          [relseed] makes the derived input deterministic. *)
  | Parallel of { domains : int }
      (** Multi-domain TSRJoin vs the sequential run: result sets and
          merged {!Semantics.Run_stats} counters must both agree. *)
  | Analyzer
      (** Static-analyzer cross-checks: proves-empty vs the oracle,
          plan invariants of all three planners, no errors on
          generator-produced queries. *)

val describe : t -> string
(** Deterministic one-phrase rendering, e.g.
    ["differential engine=binary"]. *)

val header_fields : t -> (string * string) list
(** The reproducer header key/value pairs, [check] first. *)

val of_header : (string * string) list -> (t, string) result
(** Inverse of {!header_fields}; ignores unknown keys. *)
