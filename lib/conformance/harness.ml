open Semantics
module RS = Match_result.Result_set

type config = {
  iterations : int;
  seed : int;
  wire : bool;
  inject_fault : bool;
  max_probes : int;
  log : string -> unit;
}

let default_config =
  {
    iterations = 200;
    seed = 20260705;
    wire = false;
    inject_fault = false;
    max_probes = 2000;
    log = ignore;
  }

type counts = {
  queries : int;
  differential : int;
  relation : int;
  parallel : int;
  analyzer : int;
}

type failure = {
  check : Check.t;
  detail : string;
  iteration : int;
  case : Case.t;
  minimized : Case.t;
  probes : int;
}

type outcome = { counts : counts; failure : failure option }

let relation_names = List.map (fun r -> r.Relation.name) Relation.all

(* ---- per-run context cache, keyed by physical graph identity ---- *)

type cache = { mutable ctxs : (Tgraph.Graph.t * Runner.ctx) list }

let cache () = { ctxs = [] }

let ctx_for cache g =
  match List.find_opt (fun (g', _) -> g' == g) cache.ctxs with
  | Some (_, c) -> c
  | None ->
      let c = Runner.ctx g in
      cache.ctxs <- (g, c) :: cache.ctxs;
      c

let release cache =
  List.iter (fun (_, c) -> Runner.release c) cache.ctxs;
  cache.ctxs <- []

let guard f =
  match f () with
  | r -> r
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception e -> Error (Printexc.to_string e)

(* ---- the four check kinds ---- *)

let eval_set cache variant (case : Case.t) =
  match variant.Runner.eval (ctx_for cache case.Case.graph) case.Case.query with
  | ms -> Ok (RS.of_list ms)
  | exception Runner.Eval_failed msg ->
      Error (Printf.sprintf "engine %s failed: %s" variant.Runner.name msg)
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception e ->
      Error
        (Printf.sprintf "engine %s raised %s" variant.Runner.name
           (Printexc.to_string e))

let differential cache ~expected variant case =
  match eval_set cache variant case with
  | Error msg -> Some msg
  | Ok actual -> RS.diff_summary ~expected ~actual

let check_relation cache d variant ~base =
  let rec eval_all acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> (
        match eval_set cache variant c with
        | Ok rs -> eval_all (rs :: acc) rest
        | Error msg -> Error msg)
  in
  match eval_all [] d.Relation.cases with
  | Error msg -> Error msg
  | Ok derived -> d.Relation.check ~base ~derived

let stats_fields (s : Run_stats.t) =
  [
    ("results", s.results); ("intermediate", s.intermediate);
    ("scanned", s.scanned); ("bindings", s.bindings);
    ("enum_steps", s.enum_steps); ("seeks", s.seeks);
    ("est_intermediate", s.est_intermediate);
  ]

let check_parallel cache (case : Case.t) ~domains =
  let c = ctx_for cache case.Case.graph in
  let seq_stats = Run_stats.create () in
  let par_stats = Run_stats.create () in
  match
    let eng = Runner.engine c in
    let seq =
      Workload.Engine.evaluate_ext ~stats:seq_stats eng Workload.Engine.Tsrjoin
        case.Case.query
    in
    let par =
      Workload.Engine.evaluate_ext ~stats:par_stats
        ~pool:(Exec.Parallel.shared_pool ~at_least:domains)
        ~domains eng Workload.Engine.Tsrjoin case.Case.query
    in
    (seq, par)
  with
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception e ->
      Some
        (Printf.sprintf "%d-domain run raised %s" domains
           (Printexc.to_string e))
  | seq, par -> (
      match
        RS.diff_summary ~expected:(RS.of_list seq) ~actual:(RS.of_list par)
      with
      | Some diff ->
          Some
            (Printf.sprintf "%d-domain result set diverged from sequential: %s"
               domains diff)
      | None ->
          let mismatches =
            List.filter_map
              (fun ((k, a), (_, b)) ->
                if a = b then None
                else Some (Printf.sprintf "%s %d vs %d" k a b))
              (List.combine (stats_fields seq_stats) (stats_fields par_stats))
          in
          if mismatches = [] then None
          else
            Some
              (Printf.sprintf
                 "%d-domain merged Run_stats diverged from sequential: %s"
                 domains
                 (String.concat ", " mismatches)))

let check_analyzer cache (case : Case.t) ~naive_count =
  let ( let* ) = Result.bind in
  let c = ctx_for cache case.Case.graph in
  let eng = Runner.engine c in
  let tai = Workload.Engine.tai eng in
  let cost = Tcsq_core.Plan.cost_model tai in
  let env = Analysis.Query_check.env_of_graph case.Case.graph in
  let eq = case.Case.query in
  let q = Equery.core eq in
  let bound = Analysis.Bound.analyze ~allen:(Equery.allen eq) ~env q in
  let diags =
    Analysis.Query_check.check ~env q
    @ Analysis.Ext_check.check ~env eq
    @ bound.Analysis.Bound.diagnostics
  in
  (* constraint-propagation soundness: a query flagged unsatisfiable
     must never match under the oracle (covers the no-diagnostic unsat
     cases — e.g. a label with no edges — that Q011 does not restate) *)
  let* () =
    if bound.Analysis.Bound.unsat && naive_count <> 0 then
      Error
        (Printf.sprintf
           "constraint propagation flagged the query unsatisfiable but \
            naive found %d matches"
           naive_count)
    else Ok ()
  in
  let* () =
    if Analysis.Diagnostic.proves_empty diags && naive_count <> 0 then
      Error
        (Printf.sprintf
           "analyzer proved the query empty but naive found %d matches (%s)"
           naive_count
           (String.concat "; "
              (List.map Analysis.Diagnostic.to_string
                 (List.filter
                    (fun d -> d.Analysis.Diagnostic.proves_empty)
                    diags))))
    else Ok ()
  in
  let* () =
    if Analysis.Diagnostic.has_errors diags then
      Error
        (Printf.sprintf
           "analyzer reported an error on a generator-produced query (%s)"
           (String.concat "; " (List.map Analysis.Diagnostic.to_string diags)))
    else Ok ()
  in
  let check_plan name plan =
    match Analysis.Plan_check.check plan with
    | [] -> Ok ()
    | ds ->
        Error
          (Printf.sprintf "%s failed plan invariant analysis: %s" name
             (String.concat "; " (List.map Analysis.Diagnostic.to_string ds)))
  in
  let* () = check_plan "Plan.build" (Tcsq_core.Plan.build ~cost tai q) in
  let* () =
    check_plan "Plan.build_adaptive"
      (Tcsq_core.Plan.build_adaptive ~cost ~defer_ratio:2.0 tai q)
  in
  check_plan "Plan.of_pivot_order"
    (Tcsq_core.Plan.of_pivot_order q
       (List.init (Query.n_vars q) (fun v -> Query.n_vars q - 1 - v)))

(* ---- variant rosters ---- *)

let base_variants config =
  Runner.standard
  @ [ Runner.adaptive; Runner.cached; Runner.parallel ~domains:2 ]
  @ (if config.inject_fault then [ Runner.broken ] else [])

let diff_variants config =
  base_variants config @ if config.wire then [ Runner.wire ] else []

let engine_names config = List.map (fun v -> v.Runner.name) (diff_variants config)

(* Graph-mutating relations on the wire each need a server for the
   derived graph, so they rotate: one per iteration, on the first
   random query only. Query-only relations ride the base-graph server
   for free on every query. *)
let relation_variants config ~iter ~qi ~n_pool rel =
  let base = base_variants config in
  if not config.wire then base
  else if not rel.Relation.mutates_graph then base @ [ Runner.wire ]
  else begin
    let muts = List.filter (fun r -> r.Relation.mutates_graph) Relation.all in
    let rank =
      let rec go i = function
        | [] -> -1
        | r :: rest -> if r.Relation.name = rel.Relation.name then i else go (i + 1) rest
      in
      go 0 muts
    in
    if qi = n_pool && iter mod List.length muts = rank then
      base @ [ Runner.wire ]
    else base
  end

(* ---- one check, standalone: the --replay / shrink-probe primitive ---- *)

let run_check ~inject_fault (case : Case.t) check =
  let cache = cache () in
  Fun.protect
    ~finally:(fun () -> release cache)
    (fun () ->
      let ( let* ) = Result.bind in
      let of_opt = function None -> Ok () | Some msg -> Error msg in
      match check with
      | Check.Differential { engine } ->
          let* variant = Runner.find ~inject_fault engine in
          guard (fun () ->
              let expected =
                RS.of_list (Naive.evaluate_ext case.Case.graph case.Case.query)
              in
              of_opt (differential cache ~expected variant case))
      | Check.Relation { relation; engine; relseed } ->
          let* rel = Relation.find relation in
          let* variant = Runner.find ~inject_fault engine in
          if Equery.agg case.Case.query <> None then
            (* the harness never issues relation checks on aggregate
               queries (TOP k re-selects under any transformed input),
               so a reproducer that asks for one is corrupt *)
            Error
              (Printf.sprintf
                 "relation %s does not apply to an aggregate query; drop the \
                  aggregate"
                 relation)
          else
            guard (fun () ->
                let* base = eval_set cache variant case in
                let d = rel.Relation.derive case ~relseed in
                check_relation cache d variant ~base)
      | Check.Parallel { domains } ->
          of_opt (check_parallel cache case ~domains)
      | Check.Analyzer ->
          guard (fun () ->
              let naive_count =
                List.length
                  (Naive.evaluate_ext case.Case.graph case.Case.query)
              in
              check_analyzer cache case ~naive_count))

(* ---- the fuzz loop ---- *)

type hit = {
  h_check : Check.t;
  h_detail : string;
  h_iter : int;
  h_case : Case.t;
}

exception Stop of hit

let relseed_of ~seed ~qi ~ri = (seed * 389) + (qi * 31) + ri

let fuzz config =
  let n_queries = ref 0
  and n_diff = ref 0
  and n_rel = ref 0
  and n_par = ref 0
  and n_ana = ref 0 in
  let hit = ref None in
  (try
     for iter = 0 to config.iterations - 1 do
       (* generation mirrors the retired bin/fuzz.exe exactly, so seed
          corpora and reproduce-by-seed instructions carry over *)
       let seed = config.seed + iter in
       let rng = Random.State.make [| seed |] in
       let n_vertices = 3 + Random.State.int rng 5 in
       let n_edges = 20 + Random.State.int rng 60 in
       let n_labels = 1 + Random.State.int rng 3 in
       let domain = 10 + Random.State.int rng 40 in
       let max_len = 1 + Random.State.int rng 12 in
       let g =
         Testkit.random_graph ~seed:((seed * 7) + 1) ~n_vertices ~n_edges
           ~n_labels ~domain ~max_len ()
       in
       (* IO round trips must be lossless *)
       let g = Tgraph.Binary_io.of_bytes (Tgraph.Binary_io.to_bytes g) in
       let ws = Random.State.int rng domain in
       let we = min (domain - 1) (ws + Random.State.int rng domain) in
       let window = Temporal.Interval.make ws (max ws we) in
       let pool = Testkit.query_pool ~n_labels ~window in
       let n_pool = List.length pool in
       let qs =
         List.map Equery.plain
           (pool
           @ List.init 3 (fun j ->
                 Testkit.random_query ~seed:((seed * 13) + j) ~n_labels
                   ~max_edges:4 ~window))
         (* extended queries by default: random NOT/EXISTS/WHERE/agg
            decorations over random cores *)
         @ List.init 3 (fun j ->
               Testkit.random_equery ~seed:((seed * 17) + j) ~n_labels
                 ~max_edges:4 ~window)
       in
       let cache = cache () in
       Fun.protect
         ~finally:(fun () -> release cache)
         (fun () ->
           List.iteri
             (fun qi q ->
               incr n_queries;
               let case = Case.make g q in
               let fail check detail =
                 raise
                   (Stop
                      {
                        h_check = check;
                        h_detail = detail;
                        h_iter = iter;
                        h_case = case;
                      })
               in
               let naive = Naive.evaluate_ext g q in
               let expected = RS.of_list naive in
               incr n_ana;
               (match
                  guard (fun () ->
                      check_analyzer cache case
                        ~naive_count:(List.length naive))
                with
               | Ok () -> ()
               | Error d -> fail Check.Analyzer d);
               List.iter
                 (fun v ->
                   incr n_diff;
                   match differential cache ~expected v case with
                   | None -> ()
                   | Some d ->
                       fail (Check.Differential { engine = v.Runner.name }) d)
                 (diff_variants config);
               let domains = 2 + (iter mod 3) in
               incr n_par;
               (match check_parallel cache case ~domains with
               | None -> ()
               | Some d -> fail (Check.Parallel { domains }) d);
               (* every variant's base result set equals [expected] at
                  this point — its differential check just passed — so
                  relations share the naive base. Aggregate queries are
                  excluded: TOP k re-selects under any transformed
                  input, so no relation's algebra applies (the
                  aggregate-topk relation derives TOP from an
                  aggregate-free base instead). *)
               if Equery.agg q <> None then ()
               else
               List.iteri
                 (fun ri rel ->
                   let relseed = relseed_of ~seed ~qi ~ri in
                   let d = rel.Relation.derive case ~relseed in
                   List.iter
                     (fun v ->
                       incr n_rel;
                       match
                         guard (fun () ->
                             check_relation cache d v ~base:expected)
                       with
                       | Ok () -> ()
                       | Error detail ->
                           fail
                             (Check.Relation
                                {
                                  relation = rel.Relation.name;
                                  engine = v.Runner.name;
                                  relseed;
                                })
                             detail)
                     (relation_variants config ~iter ~qi ~n_pool rel))
                 Relation.all)
             qs);
       if (iter + 1) mod 50 = 0 then
         config.log
           (Printf.sprintf "%d/%d iterations clean" (iter + 1)
              config.iterations)
     done
   with Stop h -> hit := Some h);
  let counts =
    {
      queries = !n_queries;
      differential = !n_diff;
      relation = !n_rel;
      parallel = !n_par;
      analyzer = !n_ana;
    }
  in
  match !hit with
  | None -> { counts; failure = None }
  | Some h ->
      config.log
        (Printf.sprintf "minimizing %s failure from iteration %d..."
           (Check.describe h.h_check) h.h_iter);
      let failing c =
        Result.is_error (run_check ~inject_fault:config.inject_fault c h.h_check)
      in
      let minimized, probes =
        (* a failure that only manifests in warm per-iteration state
           would not survive a fresh standalone probe; keep it unshrunk
           rather than minimize the wrong predicate *)
        if failing h.h_case then
          Shrink.minimize ~failing ~max_probes:config.max_probes h.h_case
        else (h.h_case, 1)
      in
      {
        counts;
        failure =
          Some
            {
              check = h.h_check;
              detail = h.h_detail;
              iteration = h.h_iter;
              case = h.h_case;
              minimized;
              probes;
            };
      }

let first_line s =
  String.trim
    (match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i
    | None -> s)

let repro_of_failure config f =
  {
    Repro.check = f.check;
    seed = Some config.seed;
    summary = first_line f.detail;
    case = f.minimized;
  }

let replay ~inject_fault (r : Repro.t) =
  run_check ~inject_fault r.Repro.case r.Repro.check
