(** The conformance fuzz harness: random temporal graphs and queries —
    plain and extended ([NOT]/[EXISTS] clauses, Allen constraints,
    aggregates) — cross-checked four ways per case:

    {ul
    {- {b differential}: every engine variant's result set against the
       naive extended oracle ({!Semantics.Naive.evaluate_ext}, a
       literal per-timestamp re-scan independent of the interval-set
       arithmetic the engines share), and against a binary-IO round
       trip of the graph;}
    {- {b analyzer}: static-analyzer verdicts against ground truth
       (proves-empty — including clause and Allen infeasibility —
       implies zero pieces, generator-produced queries draw no errors,
       all three planners pass plan invariants);}
    {- {b parallel}: one multi-domain TSRJoin run ([domains] rotating
       2..4 on the shared {!Exec.Pool}) against the sequential run,
       result sets and merged {!Semantics.Run_stats} both equal;}
    {- {b metamorphic}: the twelve oracle-free relations of
       {!Relation}, each checked per engine variant (and, with [wire],
       through the server wire path). Queries carrying an aggregate are
       exempt — [TOP k] re-selects under any transformed input — but
       still run the differential, parallel and analyzer checks.}}

    The first divergence is minimized by {!Shrink} (decoration-dropping
    passes included) and reported with a {!Repro} reproducer. *)

type config = {
  iterations : int;
  seed : int;
  wire : bool;
      (** Also run checks through an in-process query server: the wire
          variant joins every differential and every query-only
          relation; graph-mutating relations rotate through the wire
          one per iteration (each derived graph needs its own server). *)
  inject_fault : bool;  (** Register the deliberately broken engine. *)
  max_probes : int;  (** Shrinker probe budget. *)
  log : string -> unit;  (** Progress lines (not part of the summary). *)
}

val default_config : config
(** 200 iterations from seed 20260705, no wire, no fault injection,
    2000 shrink probes, silent log. *)

type counts = {
  queries : int;
  differential : int;
  relation : int;
  parallel : int;
  analyzer : int;
}

type failure = {
  check : Check.t;
  detail : string;
  iteration : int;
  case : Case.t;  (** the original failing case *)
  minimized : Case.t;
  probes : int;  (** shrink probes spent *)
}

type outcome = { counts : counts; failure : failure option }

val engine_names : config -> string list
(** The variant names participating under [config], in check order. *)

val relation_names : string list

val run_check :
  inject_fault:bool -> Case.t -> Check.t -> (unit, string) result
(** Re-execute exactly one check on one case with fresh per-graph
    contexts: the primitive behind [--replay] and every shrink probe.
    [Error] carries the divergence description. *)

val fuzz : config -> outcome

val repro_of_failure : config -> failure -> Repro.t

val replay : inject_fault:bool -> Repro.t -> (unit, string) result
(** [Ok ()] when the recorded failure no longer reproduces. *)
