open Semantics
module RS = Match_result.Result_set

type derived = {
  cases : Case.t list;
  check :
    base:RS.t -> derived:RS.t list -> (unit, string) result;
}

type t = {
  name : string;
  mutates_graph : bool;
  derive : Case.t -> relseed:int -> derived;
}

let rng_of relseed salt = Random.State.make [| relseed; salt; 0xc04f |]

let one = function [ d ] -> d | _ -> invalid_arg "relation arity"

let expect_equal ~what ~expected ~actual =
  match RS.diff_summary ~expected ~actual with
  | None -> Ok ()
  | Some diff -> Error (Printf.sprintf "%s: %s" what diff)

let map_lives f set =
  RS.of_list
    (List.map
       (fun m -> Match_result.make m.Match_result.edges (f m.Match_result.life))
       (RS.to_list set))

(* ---- window-containment monotonicity ---- *)

let window_containment =
  {
    name = "window-containment";
    mutates_graph = false;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 1 in
        let q = case.Case.query in
        let ws = Query.ws q and we = Query.we q in
        let ws' = ws + Random.State.int rng (we - ws + 1) in
        let we' = ws' + Random.State.int rng (we - ws' + 1) in
        let w' = Temporal.Interval.make ws' we' in
        {
          cases = [ { case with Case.query = Query.with_window q w' } ];
          check =
            (fun ~base ~derived ->
              let expected =
                RS.of_list
                  (List.filter
                     (fun m -> Temporal.Interval.overlaps m.Match_result.life w')
                     (RS.to_list base))
              in
              expect_equal
                ~what:
                  (Printf.sprintf
                     "sub-window [%d, %d] of [%d, %d] must keep exactly the \
                      overlapping base matches"
                     ws' we' ws we)
                ~expected ~actual:(one derived));
        });
  }

(* ---- temporal translation equivariance ---- *)

let translation =
  {
    name = "translation";
    mutates_graph = true;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 2 in
        let g = case.Case.graph and q = case.Case.query in
        (* pick Δ in [-max_back, 25] \ {0}, bounded so every timestamp
           stays non-negative after the shift *)
        let max_back =
          Tgraph.Graph.fold_edges
            (fun acc e -> min acc (Tgraph.Edge.ts e))
            (Query.ws q) g
        in
        let max_back = max 0 max_back in
        let d = Random.State.int rng (26 + max_back) - max_back in
        let delta = if d >= 0 then d + 1 else d in
        let g' = Testkit.shift_time g ~delta in
        let w' =
          Temporal.Interval.make (Query.ws q + delta) (Query.we q + delta)
        in
        {
          cases = [ Case.make g' (Query.with_window q w') ];
          check =
            (fun ~base ~derived ->
              let shift life =
                Temporal.Interval.make
                  (Temporal.Interval.ts life + delta)
                  (Temporal.Interval.te life + delta)
              in
              expect_equal
                ~what:
                  (Printf.sprintf
                     "translation by %+d must shift every lifespan and \
                      nothing else"
                     delta)
                ~expected:(map_lives shift base) ~actual:(one derived));
        });
  }

(* ---- time-reversal duality ---- *)

let time_reversal =
  {
    name = "time-reversal";
    mutates_graph = true;
    derive =
      (fun case ~relseed:_ ->
        let g = case.Case.graph and q = case.Case.query in
        let anchor =
          Tgraph.Graph.fold_edges
            (fun acc e -> max acc (Tgraph.Edge.te e))
            (Query.we q) g
        in
        let g' = Testkit.reverse_time g ~anchor in
        let w' =
          Temporal.Interval.make (anchor - Query.we q) (anchor - Query.ws q)
        in
        {
          cases = [ Case.make g' (Query.with_window q w') ];
          check =
            (fun ~base ~derived ->
              let reverse life =
                Temporal.Interval.make
                  (anchor - Temporal.Interval.te life)
                  (anchor - Temporal.Interval.ts life)
              in
              expect_equal
                ~what:
                  (Printf.sprintf
                     "time reversal about %d must reverse every lifespan and \
                      nothing else"
                     anchor)
                ~expected:(map_lives reverse base) ~actual:(one derived));
        });
  }

(* ---- graph-edge-deletion monotonicity ---- *)

let edge_deletion =
  {
    name = "edge-deletion";
    mutates_graph = true;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 4 in
        let g = case.Case.graph in
        let n = Tgraph.Graph.n_edges g in
        let kept = Array.init n (fun _ -> Random.State.int rng 4 <> 0) in
        if not (Array.exists Fun.id kept) then kept.(0) <- true;
        let g', new_to_old = Testkit.drop_edges g ~keep:(fun id -> kept.(id)) in
        let old_to_new = Array.make n (-1) in
        Array.iteri (fun ni oi -> old_to_new.(oi) <- ni) new_to_old;
        {
          cases = [ { case with Case.graph = g' } ];
          check =
            (fun ~base ~derived ->
              let expected =
                RS.of_list
                  (List.filter_map
                     (fun m ->
                       if
                         Array.for_all
                           (fun id -> old_to_new.(id) >= 0)
                           m.Match_result.edges
                       then
                         Some
                           (Match_result.make
                              (Array.map
                                 (fun id -> old_to_new.(id))
                                 m.Match_result.edges)
                              m.Match_result.life)
                       else None)
                     (RS.to_list base))
              in
              expect_equal
                ~what:
                  (Printf.sprintf
                     "deleting %d of %d edges must keep exactly the base \
                      matches whose edges all survive"
                     (n - Array.length new_to_old)
                     n)
                ~expected ~actual:(one derived));
        });
  }

(* ---- label-renaming invariance ---- *)

let label_renaming =
  {
    name = "label-renaming";
    mutates_graph = true;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 5 in
        let g = case.Case.graph and q = case.Case.query in
        let nl = Tgraph.Graph.n_labels g in
        let perm = Array.init nl Fun.id in
        for i = nl - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let t = perm.(i) in
          perm.(i) <- perm.(j);
          perm.(j) <- t
        done;
        let g' = Testkit.relabel_edges g ~perm in
        let q' = Testkit.map_query_labels q ~f:(fun l -> perm.(l)) in
        {
          cases = [ Case.make g' q' ];
          check =
            (fun ~base ~derived ->
              expect_equal
                ~what:
                  "a consistent label permutation must not change the result \
                   set"
                ~expected:base ~actual:(one derived));
        });
  }

(* ---- sub-pattern projection ---- *)

let sub_pattern =
  {
    name = "sub-pattern";
    mutates_graph = false;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 6 in
        let q = case.Case.query in
        let n = Query.n_edges q in
        let start = Random.State.int rng n in
        (* grow a random connected sub-pattern from [start]: sweep the
           component, admitting each edge adjacent to what is already
           included with probability 3/4 *)
        let component = Testkit.query_component q start in
        let included = Array.make n false in
        included.(start) <- true;
        let vars = Array.make (Query.n_vars q) false in
        let touch i =
          let e = Query.edge q i in
          vars.(e.Query.src_var) <- true;
          vars.(e.Query.dst_var) <- true
        in
        touch start;
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun i ->
              let e = Query.edge q i in
              if
                (not included.(i))
                && (vars.(e.Query.src_var) || vars.(e.Query.dst_var))
                && Random.State.int rng 4 <> 0
              then begin
                included.(i) <- true;
                touch i;
                changed := true
              end)
            component
        done;
        let keep = List.filter (fun i -> included.(i)) component in
        let q_sub, sel = Testkit.restrict_query q ~keep in
        {
          cases = [ { case with Case.query = q_sub } ];
          check =
            (fun ~base ~derived ->
              let sub = one derived in
              let members = Hashtbl.create 64 in
              List.iter
                (fun m ->
                  Hashtbl.replace members
                    (m.Match_result.edges, m.Match_result.life) ())
                (RS.to_list sub);
              let rec first_failure = function
                | [] -> Ok ()
                | m :: rest -> (
                    let proj =
                      Array.map (fun oi -> m.Match_result.edges.(oi)) sel
                    in
                    match Match_result.life_of_edges case.Case.graph proj with
                    | None ->
                        Error
                          (Format.asprintf
                             "projection of %a onto the sub-pattern has an \
                              empty lifespan"
                             Match_result.pp m)
                    | Some life ->
                        if
                          Temporal.Interval.ts life
                            > Temporal.Interval.ts m.Match_result.life
                          || Temporal.Interval.te life
                             < Temporal.Interval.te m.Match_result.life
                        then
                          Error
                            (Format.asprintf
                               "projected lifespan %s does not contain the \
                                base lifespan of %a"
                               (Temporal.Interval.to_string life)
                               Match_result.pp m)
                        else if not (Hashtbl.mem members (proj, life)) then
                          Error
                            (Format.asprintf
                               "base match %a projects to %a, which the \
                                sub-pattern run did not produce"
                               Match_result.pp m Match_result.pp
                               (Match_result.make proj life))
                        else first_failure rest)
              in
              Result.map_error
                (Printf.sprintf "sub-pattern of edges [%s]: %s"
                   (String.concat "," (List.map string_of_int keep)))
                (first_failure (RS.to_list base)));
        });
  }

(* ---- analyzer window-tightening soundness ---- *)

let window_tightening =
  {
    name = "window-tightening";
    mutates_graph = false;
    derive =
      (fun case ~relseed:_ ->
        (* deterministic: the derived query is whatever the analyzer's
           constraint propagation tightens the window to (possibly the
           identity), and Bound's theorem says the result set must not
           move at all *)
        let env = Analysis.Query_check.env_of_graph case.Case.graph in
        let q' = Analysis.Bound.tighten ~env case.Case.query in
        {
          cases = [ { case with Case.query = q' } ];
          check =
            (fun ~base ~derived ->
              expect_equal
                ~what:
                  (Printf.sprintf
                     "analyzer-tightened window %s of %s must preserve the \
                      result set exactly"
                     (Temporal.Interval.to_string (Query.window q'))
                     (Temporal.Interval.to_string
                        (Query.window case.Case.query)))
                ~expected:base ~actual:(one derived));
        });
  }

let all =
  [
    window_containment; translation; time_reversal; edge_deletion;
    label_renaming; sub_pattern; window_tightening;
  ]

let find name =
  match List.find_opt (fun r -> r.name = name) all with
  | Some r -> Ok r
  | None -> Error (Printf.sprintf "unknown relation %S" name)
