open Semantics
module RS = Match_result.Result_set

type derived = {
  cases : Case.t list;
  check :
    base:RS.t -> derived:RS.t list -> (unit, string) result;
}

type t = {
  name : string;
  mutates_graph : bool;
  derive : Case.t -> relseed:int -> derived;
}

let rng_of relseed salt = Random.State.make [| relseed; salt; 0xc04f |]

let one = function [ d ] -> d | _ -> invalid_arg "relation arity"

let expect_equal ~what ~expected ~actual =
  match RS.diff_summary ~expected ~actual with
  | None -> Ok ()
  | Some diff -> Error (Printf.sprintf "%s: %s" what diff)

let map_lives f set =
  RS.of_list
    (List.map
       (fun m -> Match_result.make m.Match_result.edges (f m.Match_result.life))
       (RS.to_list set))

(* a random decoration clause whose endpoints are core variables (or
   unconstrained) — the raw material for the partition/containment
   relations *)
let random_clause rng g q =
  let used =
    let flags = Array.make (Query.n_vars q) false in
    Array.iter
      (fun e ->
        flags.(e.Query.src_var) <- true;
        flags.(e.Query.dst_var) <- true)
      (Query.edges q);
    Array.to_list (Array.mapi (fun i u -> (i, u)) flags)
    |> List.filter_map (fun (i, u) -> if u then Some i else None)
  in
  let endpoint () =
    if Random.State.int rng 3 = 0 then Equery.Any
    else Equery.Var (List.nth used (Random.State.int rng (List.length used)))
  in
  let nl = Tgraph.Graph.n_labels g in
  let lbl =
    if nl = 0 || Random.State.int rng 6 = 0 then Query.any_label
    else Random.State.int rng nl
  in
  { Equery.lbl; src = endpoint (); dst = endpoint () }

(* ---- window-containment monotonicity ---- *)

let window_containment =
  {
    name = "window-containment";
    mutates_graph = false;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 1 in
        let q = case.Case.query in
        let core = Equery.core q in
        let ws = Query.ws core and we = Query.we core in
        let ws' = ws + Random.State.int rng (we - ws + 1) in
        let we' = ws' + Random.State.int rng (we - ws' + 1) in
        let w' = Temporal.Interval.make ws' we' in
        {
          cases = [ { case with Case.query = Equery.with_window q w' } ];
          check =
            (fun ~base ~derived ->
              (* exact because clause matching never reads the window:
                 the pieces of a match are window-independent, only the
                 keep-overlapping filter moves *)
              let expected =
                RS.of_list
                  (List.filter
                     (fun m -> Temporal.Interval.overlaps m.Match_result.life w')
                     (RS.to_list base))
              in
              expect_equal
                ~what:
                  (Printf.sprintf
                     "sub-window [%d, %d] of [%d, %d] must keep exactly the \
                      overlapping base matches"
                     ws' we' ws we)
                ~expected ~actual:(one derived));
        });
  }

(* ---- temporal translation equivariance ---- *)

let translation =
  {
    name = "translation";
    mutates_graph = true;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 2 in
        let g = case.Case.graph and q = case.Case.query in
        let core = Equery.core q in
        (* pick Δ in [-max_back, 25] \ {0}, bounded so every timestamp
           stays non-negative after the shift *)
        let max_back =
          Tgraph.Graph.fold_edges
            (fun acc e -> min acc (Tgraph.Edge.ts e))
            (Query.ws core) g
        in
        let max_back = max 0 max_back in
        let d = Random.State.int rng (26 + max_back) - max_back in
        let delta = if d >= 0 then d + 1 else d in
        let g' = Testkit.shift_time g ~delta in
        let w' =
          Temporal.Interval.make (Query.ws core + delta) (Query.we core + delta)
        in
        {
          cases = [ Case.make g' (Equery.with_window q w') ];
          check =
            (fun ~base ~derived ->
              let shift life =
                Temporal.Interval.make
                  (Temporal.Interval.ts life + delta)
                  (Temporal.Interval.te life + delta)
              in
              expect_equal
                ~what:
                  (Printf.sprintf
                     "translation by %+d must shift every lifespan and \
                      nothing else"
                     delta)
                ~expected:(map_lives shift base) ~actual:(one derived));
        });
  }

(* ---- time-reversal duality ---- *)

let time_reversal =
  {
    name = "time-reversal";
    mutates_graph = true;
    derive =
      (fun case ~relseed:_ ->
        let g = case.Case.graph and q = case.Case.query in
        let core = Equery.core q in
        let anchor =
          Tgraph.Graph.fold_edges
            (fun acc e -> max acc (Tgraph.Edge.te e))
            (Query.we core) g
        in
        let g' = Testkit.reverse_time g ~anchor in
        let w' =
          Temporal.Interval.make
            (anchor - Query.we core)
            (anchor - Query.ws core)
        in
        (* clause arithmetic is time-symmetric, but an Allen constraint
           is not: BEFORE on the reversed axis is AFTER, MEETS is
           MET-BY, STARTS is FINISHES... — the reversal dual, which is
           not the argument-swapping inverse *)
        let q' =
          Equery.with_allen
            (Equery.with_window q w')
            (List.map
               (fun (i, r, j) -> (i, Temporal.Allen.reverse r, j))
               (Equery.allen q))
        in
        {
          cases = [ Case.make g' q' ];
          check =
            (fun ~base ~derived ->
              let reverse life =
                Temporal.Interval.make
                  (anchor - Temporal.Interval.te life)
                  (anchor - Temporal.Interval.ts life)
              in
              expect_equal
                ~what:
                  (Printf.sprintf
                     "time reversal about %d must reverse every lifespan and \
                      nothing else"
                     anchor)
                ~expected:(map_lives reverse base) ~actual:(one derived));
        });
  }

(* ---- graph-edge-deletion monotonicity ---- *)

let edge_deletion =
  {
    name = "edge-deletion";
    mutates_graph = true;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 4 in
        let g = case.Case.graph in
        let q = case.Case.query in
        let n = Tgraph.Graph.n_edges g in
        let kept = Array.init n (fun _ -> Random.State.int rng 4 <> 0) in
        (* deleting an edge a NOT/EXISTS clause could match would move
           the clause unions and re-slice every surviving lifespan; keep
           those edges so decorations stay fixed and deletion stays a
           pure core-match filter (a wildcard clause protects all) *)
        let clauses = Equery.anti q @ Equery.semi q in
        if clauses <> [] then
          Tgraph.Graph.iter_edges
            (fun e ->
              if
                List.exists
                  (fun c ->
                    c.Equery.lbl = Query.any_label
                    || c.Equery.lbl = Tgraph.Edge.lbl e)
                  clauses
              then kept.(Tgraph.Edge.id e) <- true)
            g;
        if not (Array.exists Fun.id kept) then kept.(0) <- true;
        let g', new_to_old = Testkit.drop_edges g ~keep:(fun id -> kept.(id)) in
        let old_to_new = Array.make n (-1) in
        Array.iteri (fun ni oi -> old_to_new.(oi) <- ni) new_to_old;
        {
          cases = [ { case with Case.graph = g' } ];
          check =
            (fun ~base ~derived ->
              let expected =
                RS.of_list
                  (List.filter_map
                     (fun m ->
                       if
                         Array.for_all
                           (fun id -> old_to_new.(id) >= 0)
                           m.Match_result.edges
                       then
                         Some
                           (Match_result.make
                              (Array.map
                                 (fun id -> old_to_new.(id))
                                 m.Match_result.edges)
                              m.Match_result.life)
                       else None)
                     (RS.to_list base))
              in
              expect_equal
                ~what:
                  (Printf.sprintf
                     "deleting %d of %d edges must keep exactly the base \
                      matches whose edges all survive"
                     (n - Array.length new_to_old)
                     n)
                ~expected ~actual:(one derived));
        });
  }

(* ---- label-renaming invariance ---- *)

let label_renaming =
  {
    name = "label-renaming";
    mutates_graph = true;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 5 in
        let g = case.Case.graph and q = case.Case.query in
        let nl = Tgraph.Graph.n_labels g in
        let perm = Array.init nl Fun.id in
        for i = nl - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let t = perm.(i) in
          perm.(i) <- perm.(j);
          perm.(j) <- t
        done;
        let g' = Testkit.relabel_edges g ~perm in
        let q' = Equery.map_labels (fun l -> perm.(l)) q in
        {
          cases = [ Case.make g' q' ];
          check =
            (fun ~base ~derived ->
              expect_equal
                ~what:
                  "a consistent label permutation must not change the result \
                   set"
                ~expected:base ~actual:(one derived));
        });
  }

(* ---- sub-pattern projection ---- *)

let sub_pattern =
  {
    name = "sub-pattern";
    mutates_graph = false;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 6 in
        let q = Equery.core case.Case.query in
        let n = Query.n_edges q in
        let start = Random.State.int rng n in
        (* grow a random connected sub-pattern from [start]: sweep the
           component, admitting each edge adjacent to what is already
           included with probability 3/4 *)
        let component = Testkit.query_component q start in
        let included = Array.make n false in
        included.(start) <- true;
        let vars = Array.make (Query.n_vars q) false in
        let touch i =
          let e = Query.edge q i in
          vars.(e.Query.src_var) <- true;
          vars.(e.Query.dst_var) <- true
        in
        touch start;
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun i ->
              let e = Query.edge q i in
              if
                (not included.(i))
                && (vars.(e.Query.src_var) || vars.(e.Query.dst_var))
                && Random.State.int rng 4 <> 0
              then begin
                included.(i) <- true;
                touch i;
                changed := true
              end)
            component
        done;
        let keep = List.filter (fun i -> included.(i)) component in
        let q_sub, sel = Testkit.restrict_query q ~keep in
        (* decorations are dropped: each base piece is a sub-interval of
           its core lifespan, so the containment claim below still goes
           through against the plain sub-pattern *)
        {
          cases = [ { case with Case.query = Equery.plain q_sub } ];
          check =
            (fun ~base ~derived ->
              let sub = one derived in
              let members = Hashtbl.create 64 in
              List.iter
                (fun m ->
                  Hashtbl.replace members
                    (m.Match_result.edges, m.Match_result.life) ())
                (RS.to_list sub);
              let rec first_failure = function
                | [] -> Ok ()
                | m :: rest -> (
                    let proj =
                      Array.map (fun oi -> m.Match_result.edges.(oi)) sel
                    in
                    match Match_result.life_of_edges case.Case.graph proj with
                    | None ->
                        Error
                          (Format.asprintf
                             "projection of %a onto the sub-pattern has an \
                              empty lifespan"
                             Match_result.pp m)
                    | Some life ->
                        if
                          Temporal.Interval.ts life
                            > Temporal.Interval.ts m.Match_result.life
                          || Temporal.Interval.te life
                             < Temporal.Interval.te m.Match_result.life
                        then
                          Error
                            (Format.asprintf
                               "projected lifespan %s does not contain the \
                                base lifespan of %a"
                               (Temporal.Interval.to_string life)
                               Match_result.pp m)
                        else if not (Hashtbl.mem members (proj, life)) then
                          Error
                            (Format.asprintf
                               "base match %a projects to %a, which the \
                                sub-pattern run did not produce"
                               Match_result.pp m Match_result.pp
                               (Match_result.make proj life))
                        else first_failure rest)
              in
              Result.map_error
                (Printf.sprintf "sub-pattern of edges [%s]: %s"
                   (String.concat "," (List.map string_of_int keep)))
                (first_failure (RS.to_list base)));
        });
  }

(* ---- analyzer window-tightening soundness ---- *)

let window_tightening =
  {
    name = "window-tightening";
    mutates_graph = false;
    derive =
      (fun case ~relseed:_ ->
        (* deterministic: the derived query is whatever the analyzer's
           constraint propagation (Allen constraints included) tightens
           the window to (possibly the identity), and Bound's theorem
           says the result set must not move at all *)
        let env = Analysis.Query_check.env_of_graph case.Case.graph in
        let eq = case.Case.query in
        let q' =
          Analysis.Bound.tighten ~allen:(Equery.allen eq) ~env
            (Equery.core eq)
        in
        let eq' = Equery.with_window eq (Query.window q') in
        {
          cases = [ { case with Case.query = eq' } ];
          check =
            (fun ~base ~derived ->
              expect_equal
                ~what:
                  (Printf.sprintf
                     "analyzer-tightened window %s of %s must preserve the \
                      result set exactly"
                     (Temporal.Interval.to_string (Query.window q'))
                     (Temporal.Interval.to_string
                        (Query.window (Equery.core eq))))
                ~expected:base ~actual:(one derived));
        });
  }

(* ---- antijoin/semijoin partition ---- *)

(* coverage per edges-group: the union of window-clipped piece
   intervals, as a normalized interval set *)
let coverage ~window set =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun m ->
      match Temporal.Interval.intersect m.Match_result.life window with
      | None -> ()
      | Some clipped ->
          let key = Array.to_list m.Match_result.edges in
          let prev =
            Option.value
              (Hashtbl.find_opt tbl key)
              ~default:Temporal.Ivlset.empty
          in
          Hashtbl.replace tbl key
            (Temporal.Ivlset.union prev (Temporal.Ivlset.of_interval clipped)))
    (RS.to_list set);
  tbl

let anti_semi_partition =
  {
    name = "anti-semi-partition";
    mutates_graph = false;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 8 in
        let g = case.Case.graph in
        let eq = case.Case.query in
        let core = Equery.core eq in
        let c = random_clause rng g core in
        (* min_duration 1 because the duration floor breaks the algebra:
           a piece split by the clause could leave two sub-duration
           halves while the whole survived *)
        let base' =
          Equery.with_min_duration (Equery.with_agg eq None) 1
        in
        let with_not = Equery.with_anti base' (c :: Equery.anti base') in
        let with_exists = Equery.with_semi base' (c :: Equery.semi base') in
        let window = Query.window core in
        {
          cases =
            [
              { case with Case.query = with_not };
              { case with Case.query = with_exists };
              { case with Case.query = base' };
            ];
          check =
            (fun ~base:_ ~derived ->
              match derived with
              | [ rs_not; rs_exists; rs_all ] -> (
                  let cov_not = coverage ~window rs_not in
                  let cov_exists = coverage ~window rs_exists in
                  let cov_all = coverage ~window rs_all in
                  let keys = Hashtbl.create 32 in
                  List.iter
                    (fun tbl ->
                      Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) tbl)
                    [ cov_not; cov_exists; cov_all ];
                  let get tbl k =
                    Option.value (Hashtbl.find_opt tbl k)
                      ~default:Temporal.Ivlset.empty
                  in
                  let bad =
                    Hashtbl.fold
                      (fun k () acc ->
                        match acc with
                        | Some _ -> acc
                        | None ->
                            let u =
                              Temporal.Ivlset.union (get cov_not k)
                                (get cov_exists k)
                            in
                            if Temporal.Ivlset.equal u (get cov_all k) then
                              None
                            else Some (k, u, get cov_all k))
                      keys None
                  in
                  match bad with
                  | None -> Ok ()
                  | Some (k, u, all) ->
                      Error
                        (Printf.sprintf
                           "NOT/EXISTS must partition each lifespan: edges \
                            [%s] have NOT ∪ EXISTS coverage %s but the \
                            undecorated query covers %s"
                           (String.concat "," (List.map string_of_int k))
                           (Temporal.Ivlset.to_string u)
                           (Temporal.Ivlset.to_string all)))
              | _ -> invalid_arg "relation arity");
        });
  }

(* ---- Allen-inverse symmetry ---- *)

let allen_inverse =
  {
    name = "allen-inverse";
    mutates_graph = false;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 9 in
        let eq = case.Case.query in
        let core = Equery.core eq in
        let n = Query.n_edges core in
        if n < 2 then
          { cases = []; check = (fun ~base:_ ~derived:_ -> Ok ()) }
        else begin
          let i = Random.State.int rng n in
          let j = (i + 1 + Random.State.int rng (n - 1)) mod n in
          let rel =
            Temporal.Allen.all.(Random.State.int rng
                                  (Array.length Temporal.Allen.all))
          in
          let with_c c = Equery.with_allen eq (c :: Equery.allen eq) in
          {
            cases =
              [
                { case with Case.query = with_c (i, rel, j) };
                {
                  case with
                  Case.query = with_c (j, Temporal.Allen.inverse rel, i);
                };
              ];
            check =
              (fun ~base:_ ~derived ->
                match derived with
                | [ a; b ] ->
                    expect_equal
                      ~what:
                        (Printf.sprintf
                           "a%d %s a%d and its inverse a%d %s a%d must \
                            constrain identically"
                           i
                           (Temporal.Allen.to_string rel)
                           j j
                           (Temporal.Allen.to_string
                              (Temporal.Allen.inverse rel))
                           i)
                      ~expected:a ~actual:b
                | _ -> invalid_arg "relation arity");
          }
        end);
  }

(* ---- semijoin containment ---- *)

let semijoin_containment =
  {
    name = "semijoin-containment";
    mutates_graph = false;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 10 in
        let g = case.Case.graph in
        let eq = case.Case.query in
        let core = Equery.core eq in
        let c = random_clause rng g core in
        let eq' = Equery.with_semi eq (c :: Equery.semi eq) in
        {
          cases = [ { case with Case.query = eq' } ];
          check =
            (fun ~base ~derived ->
              (* EXISTS only intersects: every derived piece lives inside
                 some base piece over the same edge bindings *)
              let by_edges = Hashtbl.create 64 in
              List.iter
                (fun m ->
                  let key = Array.to_list m.Match_result.edges in
                  Hashtbl.replace by_edges key
                    (m.Match_result.life
                    :: Option.value (Hashtbl.find_opt by_edges key) ~default:[]))
                (RS.to_list base);
              let contained m =
                let key = Array.to_list m.Match_result.edges in
                List.exists
                  (fun life ->
                    Temporal.Interval.ts life
                      <= Temporal.Interval.ts m.Match_result.life
                    && Temporal.Interval.te m.Match_result.life
                       <= Temporal.Interval.te life)
                  (Option.value (Hashtbl.find_opt by_edges key) ~default:[])
              in
              match
                List.find_opt
                  (fun m -> not (contained m))
                  (RS.to_list (one derived))
              with
              | None -> Ok ()
              | Some m ->
                  Error
                    (Format.asprintf
                       "adding an EXISTS clause produced %a, which no base \
                        piece with the same edges contains"
                       Match_result.pp m));
        });
  }

(* ---- Allen constraints are pure post-filters ---- *)

let allen_filter =
  {
    name = "allen-filter";
    mutates_graph = false;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 11 in
        let g = case.Case.graph in
        let eq = case.Case.query in
        let core = Equery.core eq in
        let n = Query.n_edges core in
        if n < 2 then
          { cases = []; check = (fun ~base:_ ~derived:_ -> Ok ()) }
        else begin
          let i = Random.State.int rng n in
          let j = (i + 1 + Random.State.int rng (n - 1)) mod n in
          let rel =
            Temporal.Allen.all.(Random.State.int rng
                                  (Array.length Temporal.Allen.all))
          in
          let eq' = Equery.with_allen eq ((i, rel, j) :: Equery.allen eq) in
          {
            cases = [ { case with Case.query = eq' } ];
            check =
              (fun ~base ~derived ->
                let satisfies m =
                  Equery.allen_ok g [ (i, rel, j) ] m
                in
                let expected =
                  RS.of_list (List.filter satisfies (RS.to_list base))
                in
                expect_equal
                  ~what:
                    (Printf.sprintf
                       "a%d %s a%d must act as a pure whole-match filter on \
                        the base result set"
                       i
                       (Temporal.Allen.to_string rel)
                       j)
                  ~expected ~actual:(one derived));
          }
        end);
  }

(* ---- TOP-k aggregate determinism ---- *)

let aggregate_topk =
  {
    name = "aggregate-topk";
    mutates_graph = false;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 12 in
        let eq = case.Case.query in
        let k = 1 + Random.State.int rng 4 in
        let eq' = Equery.with_agg eq (Some (Equery.Top k)) in
        {
          cases = [ { case with Case.query = eq' } ];
          check =
            (fun ~base ~derived ->
              let expected =
                RS.of_list (Analytics.top_durable ~k (RS.to_list base))
              in
              expect_equal
                ~what:
                  (Printf.sprintf
                     "TOP %d must select the deterministic durability top-k \
                      of the base result set"
                     k)
                ~expected ~actual:(one derived));
        });
  }

(* ---- ingest commutativity: batch splits change nothing ---- *)

module MS = Set.Make (struct
  type t = Match_result.t

  let compare = Match_result.compare
end)

(* split [xs] into [k] contiguous sub-batches (sizes as even as
   possible; some may be empty when [k] exceeds the suffix length) *)
let split_into k xs =
  let m = List.length xs in
  let sizes =
    List.init k (fun i -> (m / k) + if i < m mod k then 1 else 0)
  in
  let rec take n xs =
    if n = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: rest ->
          let ys, zs = take (n - 1) rest in
          (x :: ys, zs)
  in
  let batches, _ =
    List.fold_left
      (fun (acc, rest) sz ->
        let b, rest' = take sz rest in
        (b :: acc, rest'))
      ([], xs) sizes
  in
  List.rev batches

(* Cut the graph at a random edge id, re-ingest the suffix through the
   live streaming pipeline (Incremental merge + prepare_with_tai engine
   swaps + a standing-query subscription), and demand that

     1. the subscribe snapshot on the prefix equals the variant's own
        prefix answer (cases = [prefix], evaluated per engine variant);
     2. after every batch boundary the accumulated deltas (snapshot
        + added - retracted) equal a fresh oracle re-query;
     3. the final accumulation equals the full-graph base, whether the
        suffix arrived as one batch or as k random sub-batches.

   The replays are variant-independent, so they run lazily once per
   derive and are shared across the engine-variant sweep. *)
let ingest_commutativity =
  {
    name = "ingest-commutativity";
    mutates_graph = true;
    derive =
      (fun case ~relseed ->
        let rng = rng_of relseed 13 in
        let g = case.Case.graph and eq = case.Case.query in
        let n = Tgraph.Graph.n_edges g in
        if n < 2 then
          { cases = []; check = (fun ~base:_ ~derived:_ -> Ok ()) }
        else begin
          let cut = 1 + Random.State.int rng (n - 1) in
          let k = 1 + Random.State.int rng 4 in
          let merge_threshold = 1 + Random.State.int rng 8 in
          let prefix, _ = Testkit.drop_edges g ~keep:(fun id -> id < cut) in
          (* suffix edges in id order: re-appending them in order gives
             every edge back its original id, so result sets over the
             reconstructed graph compare 1:1 against the base *)
          let suffix =
            List.init (n - cut) (fun i ->
                let e = Tgraph.Graph.edge g (cut + i) in
                ( Tgraph.Edge.src e,
                  Tgraph.Edge.dst e,
                  Tgraph.Edge.lbl e,
                  Tgraph.Edge.ts e,
                  Tgraph.Edge.te e ))
          in
          let prefix_tai = lazy (Tcsq_core.Tai.build prefix) in
          let replay batches =
            let ( let* ) = Result.bind in
            let inc =
              Tcsq_core.Incremental.of_tai ~merge_threshold prefix
                (Lazy.force prefix_tai)
            in
            let subs = Tcsq_server.Subscription.create () in
            let acc = ref MS.empty in
            let delta_err = ref None in
            let push (d : Tcsq_server.Subscription.delta) =
              if !delta_err = None then begin
                let added = MS.of_list d.Tcsq_server.Subscription.added in
                let retracted =
                  MS.of_list d.Tcsq_server.Subscription.retracted
                in
                if not (MS.is_empty (MS.inter added !acc)) then
                  delta_err := Some "a delta re-added a standing match"
                else if not (MS.subset retracted !acc) then
                  delta_err :=
                    Some "a delta retracted a match that was not standing"
                else acc := MS.diff (MS.union !acc added) retracted
              end
            in
            let engine0 =
              Workload.Engine.prepare_with_tai prefix
                (Tcsq_core.Incremental.tai inc)
            in
            let _sub, _window, initial =
              Tcsq_server.Subscription.subscribe subs ~engine:engine0 ~push
                eq
            in
            acc := MS.of_list initial;
            let* () =
              List.fold_left
                (fun res batch ->
                  let* () = res in
                  List.iter
                    (fun (src, dst, lbl, ts, te) ->
                      ignore
                        (Tcsq_core.Incremental.add_edge inc ~src ~dst ~lbl
                           ~ts ~te))
                    batch;
                  let gb = Tcsq_core.Incremental.graph inc in
                  let engine =
                    Workload.Engine.prepare_with_tai gb
                      (Tcsq_core.Incremental.tai inc)
                  in
                  Tcsq_server.Subscription.on_ingest subs ~engine
                    ~generation:0;
                  let* () =
                    match !delta_err with Some e -> Error e | None -> Ok ()
                  in
                  (* oracle-first: the standing set must equal a fresh
                     re-query at every batch boundary *)
                  expect_equal
                    ~what:
                      "accumulated subscribe deltas at a batch boundary \
                       must equal a fresh re-query"
                    ~expected:(RS.of_list (Naive.evaluate_ext gb eq))
                    ~actual:(RS.of_list (MS.elements !acc)))
                (Ok ()) batches
            in
            Ok (RS.of_list initial, RS.of_list (MS.elements !acc))
          in
          let replay_split = lazy (replay (split_into k suffix)) in
          let replay_single = lazy (replay [ suffix ]) in
          {
            cases = [ { case with Case.graph = prefix } ];
            check =
              (fun ~base ~derived ->
                let ( let* ) = Result.bind in
                let* initial, final_split = Lazy.force replay_split in
                let* _, final_single = Lazy.force replay_single in
                let* () =
                  expect_equal
                    ~what:
                      "the subscribe snapshot on the prefix graph must \
                       equal the engine's own prefix answer"
                    ~expected:initial ~actual:(one derived)
                in
                let* () =
                  expect_equal
                    ~what:
                      (Printf.sprintf
                         "deltas accumulated over %d sub-batches must \
                          equal the full-graph base"
                         k)
                    ~expected:base ~actual:final_split
                in
                expect_equal
                  ~what:
                    "a single-batch ingest must accumulate to the same \
                     standing set as the k-split ingest"
                  ~expected:final_split ~actual:final_single);
          }
        end);
  }

let all =
  [
    window_containment; translation; time_reversal; edge_deletion;
    label_renaming; sub_pattern; window_tightening;
    (* the extended-operator relations are appended so older repro
       relseeds (which index into this list) stay valid *)
    anti_semi_partition; allen_inverse; semijoin_containment; allen_filter;
    aggregate_topk; ingest_commutativity;
  ]

let find name =
  match List.find_opt (fun r -> r.name = name) all with
  | Some r -> Ok r
  | None -> Error (Printf.sprintf "unknown relation %S" name)
