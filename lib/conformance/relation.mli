(** Metamorphic relations over temporal-clique queries.

    Each relation derives follow-up inputs from a base case plus a
    deterministic [relseed], and states how an engine's result set on
    the derived inputs must relate to its result set on the base — no
    oracle involved, so a bug shared by every engine (including the
    naive evaluator) is still caught. All six relations are exact
    algebraic consequences of the match semantics: binding consistency
    and the non-empty lifespan are window-independent, and a complete
    match's lifespan overlaps a window iff every matched edge does. *)

type derived = {
  cases : Case.t list;
      (** The follow-up inputs to evaluate (usually one). Cases reuse
          the base graph value physically when the relation only
          transforms the query, so per-graph contexts are shared. *)
  check :
    base:Semantics.Match_result.Result_set.t ->
    derived:Semantics.Match_result.Result_set.t list ->
    (unit, string) result;
      (** [derived] aligns with {!cases}. The error string is a
          deterministic human-readable divergence description. *)
}

type t = {
  name : string;
  mutates_graph : bool;
      (** Whether derived cases carry a transformed graph — these cost
          an extra index build (and, on the wire path, a second
          in-process server). *)
  derive : Case.t -> relseed:int -> derived;
}

val window_containment : t
(** Shrinking the window to [W' ⊆ W] keeps exactly the base matches
    whose lifespan overlaps [W']: [results(W') = {m ∈ results(W) :
    life(m) ∩ W' ≠ ∅}]. *)

val translation : t
(** Shifting every edge interval and the window by Δ yields a bijection
    of matches: same edge bindings, lifespans shifted by Δ. *)

val time_reversal : t
(** Mapping every interval [ts, te] to [T - te, T - ts] (window
    included) yields the same edge bindings with reversed lifespans. *)

val edge_deletion : t
(** Deleting graph edges is monotone: the surviving results are exactly
    the base matches all of whose edges survived (ids remapped). *)

val label_renaming : t
(** Permuting label ids consistently across graph and query leaves the
    result set untouched. *)

val sub_pattern : t
(** Every base match restricted to a connected sub-pattern is a match
    of that sub-pattern whose lifespan contains the base lifespan. *)

val all : t list
(** The six relations above, in a fixed order. *)

val find : string -> (t, string) result
