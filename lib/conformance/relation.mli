(** Metamorphic relations over temporal-clique queries.

    Each relation derives follow-up inputs from a base case plus a
    deterministic [relseed], and states how an engine's result set on
    the derived inputs must relate to its result set on the base — no
    oracle involved, so a bug shared by every engine (including the
    naive evaluator) is still caught. Every relation is an exact
    algebraic consequence of the match semantics: binding consistency
    and the non-empty lifespan are window-independent, and a complete
    match's lifespan overlaps a window iff every matched edge does. *)

type derived = {
  cases : Case.t list;
      (** The follow-up inputs to evaluate (usually one). Cases reuse
          the base graph value physically when the relation only
          transforms the query, so per-graph contexts are shared. *)
  check :
    base:Semantics.Match_result.Result_set.t ->
    derived:Semantics.Match_result.Result_set.t list ->
    (unit, string) result;
      (** [derived] aligns with {!cases}. The error string is a
          deterministic human-readable divergence description. *)
}

type t = {
  name : string;
  mutates_graph : bool;
      (** Whether derived cases carry a transformed graph — these cost
          an extra index build (and, on the wire path, a second
          in-process server). *)
  derive : Case.t -> relseed:int -> derived;
}

val window_containment : t
(** Shrinking the window to [W' ⊆ W] keeps exactly the base matches
    whose lifespan overlaps [W']: [results(W') = {m ∈ results(W) :
    life(m) ∩ W' ≠ ∅}]. *)

val translation : t
(** Shifting every edge interval and the window by Δ yields a bijection
    of matches: same edge bindings, lifespans shifted by Δ. *)

val time_reversal : t
(** Mapping every interval [ts, te] to [T - te, T - ts] (window
    included) yields the same edge bindings with reversed lifespans. *)

val edge_deletion : t
(** Deleting graph edges is monotone: the surviving results are exactly
    the base matches all of whose edges survived (ids remapped). *)

val label_renaming : t
(** Permuting label ids consistently across graph and query leaves the
    result set untouched. *)

val sub_pattern : t
(** Every base match restricted to a connected sub-pattern is a match
    of that sub-pattern whose lifespan contains the base lifespan. *)

val window_tightening : t
(** Running the query with [Analysis.Bound]'s propagated effective
    window in place of its own must preserve the result set {e exactly}
    — the soundness statement of the analyzer's window tightening
    (every matched edge overlaps the tightened window because the
    clique lifespan is a non-empty global intersection; see
    [Bound]'s interface for the proof). Deterministic: ignores
    [relseed]. *)

val all : t list
(** The seven relations above, in a fixed order (the analyzer relation
    last, so older repro relseeds stay valid). *)

val find : string -> (t, string) result
