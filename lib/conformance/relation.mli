(** Metamorphic relations over temporal-clique queries, extended
    operators included.

    Each relation derives follow-up inputs from a base case plus a
    deterministic [relseed], and states how an engine's result set on
    the derived inputs must relate to its result set on the base — no
    oracle involved, so a bug shared by every engine (including the
    naive evaluator) is still caught. Every relation is an exact
    algebraic consequence of the match semantics: binding consistency
    and the non-empty lifespan are window-independent, a complete
    match's lifespan overlaps a window iff every matched edge does, and
    — for decorated queries — clause matching never reads the window,
    so a match's pieces are window-independent too.

    None of the relations apply to a query carrying an aggregate: [TOP
    k] is a non-local selection that the transformed input re-selects
    differently (the harness skips them, and {!aggregate_topk} states
    the aggregate's own law from an aggregate-free base). *)

type derived = {
  cases : Case.t list;
      (** The follow-up inputs to evaluate (usually one). Cases reuse
          the base graph value physically when the relation only
          transforms the query, so per-graph contexts are shared. *)
  check :
    base:Semantics.Match_result.Result_set.t ->
    derived:Semantics.Match_result.Result_set.t list ->
    (unit, string) result;
      (** [derived] aligns with {!cases}. The error string is a
          deterministic human-readable divergence description. *)
}

type t = {
  name : string;
  mutates_graph : bool;
      (** Whether derived cases carry a transformed graph — these cost
          an extra index build (and, on the wire path, a second
          in-process server). *)
  derive : Case.t -> relseed:int -> derived;
}

val window_containment : t
(** Shrinking the window to [W' ⊆ W] keeps exactly the base matches
    whose lifespan overlaps [W']: [results(W') = {m ∈ results(W) :
    life(m) ∩ W' ≠ ∅}]. *)

val translation : t
(** Shifting every edge interval and the window by Δ yields a bijection
    of matches: same edge bindings, lifespans shifted by Δ. *)

val time_reversal : t
(** Mapping every interval [ts, te] to [T - te, T - ts] (window
    included) yields the same edge bindings with reversed lifespans.
    Allen constraints are mapped to their time-reversal duals
    ({!Temporal.Allen.reverse} — not the argument-swapping inverse). *)

val edge_deletion : t
(** Deleting graph edges is monotone: the surviving results are exactly
    the base matches all of whose edges survived (ids remapped). Edges
    a [NOT]/[EXISTS] clause could match are never deleted, so the
    clause unions — and with them every piece — stay fixed. *)

val label_renaming : t
(** Permuting label ids consistently across graph and query leaves the
    result set untouched. *)

val sub_pattern : t
(** Every base match restricted to a connected sub-pattern is a match
    of that sub-pattern whose lifespan contains the base lifespan (the
    sub-pattern runs undecorated; base pieces are sub-intervals of
    their core lifespan, so containment still holds). *)

val window_tightening : t
(** Running the query with [Analysis.Bound]'s propagated effective
    window in place of its own must preserve the result set {e exactly}
    — the soundness statement of the analyzer's window tightening
    (every matched edge overlaps the tightened window because the
    clique lifespan is a non-empty global intersection; see
    [Bound]'s interface for the proof). Deterministic: ignores
    [relseed]. *)

val anti_semi_partition : t
(** For a fresh random clause [c], the window-clipped piece coverage of
    [q + NOT c] and [q + EXISTS c], unioned per edge-binding group,
    equals the coverage of [q] itself: [(X \ U) ∪ (X ∩ U) = X]. All
    three derived cases run with [min_duration 1] (a duration floor
    breaks the partition: a clause can split a durable piece into two
    sub-duration halves) and without the aggregate. *)

val allen_inverse : t
(** [q + (a_i REL a_j)] and [q + (a_j REL⁻¹ a_i)] produce identical
    result sets ({!Temporal.Allen.inverse}). Derives nothing on
    single-edge cores. *)

val semijoin_containment : t
(** Adding an [EXISTS] clause only intersects: every derived piece is
    contained in some base piece with the same edge bindings. *)

val allen_filter : t
(** Adding one Allen constraint filters the base result set exactly: a
    piece survives iff classifying its two bound graph-edge intervals
    yields the constrained relation — engine-side pushdown (TSRJoin
    prunes inside the join tree) must agree with the pure post-filter.
    Derives nothing on single-edge cores. *)

val aggregate_topk : t
(** [q TOP k] equals the deterministic durability top-k selection
    ({!Semantics.Analytics.top_durable}) applied to the base result
    set. *)

val all : t list
(** The twelve relations above, in a fixed order: the original seven
    first and the extended-operator relations appended, so older repro
    relseeds stay valid. *)

val find : string -> (t, string) result
