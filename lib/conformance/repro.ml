open Semantics

type t = {
  check : Check.t;
  seed : int option;
  summary : string;
  case : Case.t;
}

let magic = "tcsq-repro/v1"

(* the summary header must stay one line (and carry no surrounding
   whitespace, which parsing would trim anyway), or the key: value
   framing breaks the roundtrip *)
let one_line s =
  String.trim (String.map (function '\n' | '\r' -> ' ' | c -> c) s)

let to_string t =
  let g = t.case.Case.graph in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\n" k v))
    (Check.header_fields t.check);
  (match t.seed with
  | Some s -> Buffer.add_string buf (Printf.sprintf "seed: %d\n" s)
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "labels: %s\n"
       (String.concat ","
          (Array.to_list (Tgraph.Label.names (Tgraph.Graph.labels g)))));
  Buffer.add_string buf
    (Printf.sprintf "summary: %s\n" (one_line t.summary));
  Buffer.add_string buf "[query]\n";
  Buffer.add_string buf (Qlang.render_ext g t.case.Case.query);
  Buffer.add_string buf "\n[graph]\n";
  Tgraph.Graph.iter_edges
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%s,%d,%d\n" (Tgraph.Edge.src e)
           (Tgraph.Edge.dst e)
           (Tgraph.Label.name (Tgraph.Graph.labels g) (Tgraph.Edge.lbl e))
           (Tgraph.Edge.ts e) (Tgraph.Edge.te e)))
    g;
  Buffer.add_string buf "[end]\n";
  Buffer.contents buf

let of_string text =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' text in
  let lines = List.map (fun l -> String.trim l) lines in
  (* leading comments let a committed reproducer explain itself *)
  let rec skip_preamble = function
    | line :: rest when line = "" || line.[0] = '#' -> skip_preamble rest
    | lines -> lines
  in
  match skip_preamble lines with
  | first :: rest when first = magic ->
      (* headers until [query] *)
      let rec headers acc = function
        | "[query]" :: rest -> Ok (List.rev acc, rest)
        | line :: rest when line = "" || line.[0] = '#' -> headers acc rest
        | line :: rest -> (
            match String.index_opt line ':' with
            | Some i ->
                let k = String.trim (String.sub line 0 i) in
                let v =
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1))
                in
                headers ((k, v) :: acc) rest
            | None ->
                Error (Printf.sprintf "bad header line %S (want key: value)" line))
        | [] -> Error "missing [query] section"
      in
      let* fields, rest = headers [] rest in
      let* check = Check.of_header fields in
      let seed =
        Option.bind (List.assoc_opt "seed" fields) int_of_string_opt
      in
      let summary =
        Option.value (List.assoc_opt "summary" fields) ~default:""
      in
      let* label_names =
        match List.assoc_opt "labels" fields with
        | Some v ->
            Ok
              (List.filter
                 (fun s -> s <> "")
                 (List.map String.trim (String.split_on_char ',' v)))
        | None -> Error "missing labels: header"
      in
      (* query text until [graph] *)
      let rec query_text acc = function
        | "[graph]" :: rest -> Ok (String.concat " " (List.rev acc), rest)
        | line :: rest -> query_text (if line = "" then acc else line :: acc) rest
        | [] -> Error "missing [graph] section"
      in
      let* qtext, rest = query_text [] rest in
      (* graph edge lines until [end] *)
      let* labels =
        match Tgraph.Label.of_names (Array.of_list label_names) with
        | labels -> Ok labels
        | exception Invalid_argument msg -> Error msg
      in
      let b = Tgraph.Graph.Builder.create ~labels () in
      let rec edges lineno = function
        | "[end]" :: _ -> Ok ()
        | line :: rest when line = "" || line.[0] = '#' ->
            edges (lineno + 1) rest
        | line :: rest -> (
            match String.split_on_char ',' line with
            | [ src; dst; lbl; ts; te ] -> (
                match
                  ( int_of_string_opt (String.trim src),
                    int_of_string_opt (String.trim dst),
                    Tgraph.Label.find labels (String.trim lbl),
                    int_of_string_opt (String.trim ts),
                    int_of_string_opt (String.trim te) )
                with
                | Some src, Some dst, Some lbl, Some ts, Some te when ts <= te
                  ->
                    ignore
                      (Tgraph.Graph.Builder.add_edge b ~src ~dst ~lbl ~ts ~te);
                    edges (lineno + 1) rest
                | _ ->
                    Error (Printf.sprintf "graph line %d: malformed edge %S"
                             lineno line))
            | _ ->
                Error
                  (Printf.sprintf
                     "graph line %d: want src,dst,label,ts,te, got %S" lineno
                     line))
        | [] -> Error "missing [end] marker"
      in
      let* () = edges 1 rest in
      let graph = Tgraph.Graph.Builder.finish b in
      if Tgraph.Graph.n_edges graph = 0 then
        Error "reproducer graph has no edges"
      else
        let* query = Qlang.parse_and_compile_ext graph qtext in
        Ok { check; seed; summary; case = Case.make graph query }
  | first :: _ ->
      Error (Printf.sprintf "not a reproducer: expected %S, got %S" magic first)
  | [] -> Error "empty reproducer"

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> (
      match of_string text with
      | Ok _ as ok -> ok
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg
