(** Self-contained reproducer files (format [tcsq-repro/v1]).

    A reproducer carries everything needed to re-execute one failed
    conformance check deterministically: the check identity, the query
    in [.tcsq] query-language text (the full extended surface —
    [NOT]/[EXISTS] clauses, [WHERE] Allen constraints, aggregates —
    rendered by [Qlang.render_ext] and parsed back by
    [Qlang.parse_and_compile_ext]), and the graph as CSV edge lines —
    one file a human can read and [tcsq fuzz --replay] can re-run.

    {v
    tcsq-repro/v1
    check: differential
    engine: tsrjoin-opt
    seed: 20260705
    labels: l0,l1,l2
    summary: 2 missing matches
    [query]
    MATCH (x0)-[l0]->(x1) IN [0, 5]
    [graph]
    0,1,l0,0,3
    [end]
    v}

    The [labels:] header pins the full label vocabulary (ids in list
    order), so a query label stays resolvable even when shrinking
    removed its last graph edge. Graph lines use the {!Tgraph.Io} CSV
    field order [src,dst,label,ts,te]. Blank lines and [#] comment
    lines are ignored, including before the magic line, so committed
    reproducers can explain themselves. *)

type t = {
  check : Check.t;
  seed : int option;  (** the fuzz seed that found it, informational *)
  summary : string;  (** first line of the recorded divergence *)
  case : Case.t;
}

val to_string : t -> string
val of_string : string -> (t, string) result

val save : t -> string -> unit
val load : string -> (t, string) result
