open Semantics

exception Eval_failed of string

(* ---- per-graph context ---- *)

type ctx = {
  g : Tgraph.Graph.t;
  mutable engine : Workload.Engine.t option;
  mutable server : (Tcsq_server.Server.t * Tcsq_server.Client.t) option;
  mutable plan_cache : Workload.Plan_cache.t option;
}

let ctx g = { g; engine = None; server = None; plan_cache = None }
let graph c = c.g

let engine c =
  match c.engine with
  | Some e -> e
  | None ->
      let e = Workload.Engine.prepare c.g in
      c.engine <- Some e;
      e

let plan_cache c =
  match c.plan_cache with
  | Some pc -> pc
  | None ->
      let pc = Workload.Plan_cache.create () in
      c.plan_cache <- Some pc;
      pc

let socket_seq = ref 0

let fresh_socket_path () =
  incr socket_seq;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "tcsq-conf-%d-%d.sock" (Unix.getpid ()) !socket_seq)

let server c =
  match c.server with
  | Some s -> s
  | None ->
      let socket_path = fresh_socket_path () in
      let config =
        {
          (Tcsq_server.Server.default_config ~socket_path) with
          Tcsq_server.Server.workers = 2;
          queue_depth = 16;
        }
      in
      let srv = Tcsq_server.Server.start config (engine c) in
      let client =
        try Tcsq_server.Client.connect socket_path
        with e ->
          Tcsq_server.Server.stop srv;
          raise e
      in
      c.server <- Some (srv, client);
      (srv, client)

let release c =
  match c.server with
  | None -> ()
  | Some (srv, client) ->
      c.server <- None;
      Tcsq_server.Client.close client;
      Tcsq_server.Server.stop srv

(* ---- variants ---- *)

type t = { name : string; eval : ctx -> Equery.t -> Match_result.t list }

let engine_variant name ?tsrjoin_config method_ =
  {
    name;
    eval =
      (fun c eq ->
        Workload.Engine.evaluate_ext ?tsrjoin_config (engine c) method_ eq);
  }

let standard =
  [
    engine_variant "tsrjoin-basic"
      ~tsrjoin_config:Tcsq_core.Tsrjoin.basic_config Workload.Engine.Tsrjoin;
    engine_variant "tsrjoin-opt" Workload.Engine.Tsrjoin;
    engine_variant "binary" Workload.Engine.Binary;
    engine_variant "hybrid" Workload.Engine.Hybrid;
    engine_variant "time" Workload.Engine.Time;
  ]

let adaptive =
  {
    name = "tsrjoin-adaptive";
    eval =
      (fun c eq ->
        let tai = Workload.Engine.tai (engine c) in
        let cost = Tcsq_core.Plan.cost_model tai in
        let config =
          {
            Tcsq_core.Tsrjoin.default_config with
            Tcsq_core.Tsrjoin.allen = Equery.allen eq;
          }
        in
        Equery.evaluate_with
          (fun q ->
            let plan =
              Tcsq_core.Plan.build_adaptive ~cost ~defer_ratio:2.0 tai q
            in
            Tcsq_core.Tsrjoin.evaluate ~config ~plan tai q)
          c.g eq);
  }

(* cached-vs-fresh differential: every query runs twice through the
   ctx's one shared plan cache; the second pass must be served from the
   cache (at least one of the two lookups hits — a first-pass miss
   stores, so the second pass hits; with the shape already cached both
   hit) and must reproduce the first pass exactly. The returned result
   set is the cached-plan one, so the harness's cross-variant equality
   check is precisely "cached plan vs cache-free engines". *)
let cached =
  {
    name = "tsrjoin-cached";
    eval =
      (fun c eq ->
        let cache = plan_cache c in
        let e = engine c in
        let hits () = (Workload.Plan_cache.counters cache).Workload.Plan_cache.hits in
        let before = hits () in
        let r1 =
          Workload.Engine.evaluate_ext ~plan_cache:cache e
            Workload.Engine.Tsrjoin eq
        in
        let r2 =
          Workload.Engine.evaluate_ext ~plan_cache:cache e
            Workload.Engine.Tsrjoin eq
        in
        if hits () <= before then
          raise
            (Eval_failed
               "tsrjoin-cached: repeated query was never served from the \
                plan cache");
        (* a transferred plan may enumerate in a different order (the
           entry can come from an equivalence-class sibling), so the
           two passes are compared as sets *)
        let sort = List.sort Match_result.compare in
        let same =
          List.length r1 = List.length r2
          && List.for_all2 Match_result.equal (sort r1) (sort r2)
        in
        if not same then
          raise
            (Eval_failed "tsrjoin-cached: cached plan changed the result set");
        r2);
  }

let parallel ~domains =
  {
    name = Printf.sprintf "tsrjoin-par%d" domains;
    eval =
      (fun c eq ->
        Workload.Engine.evaluate_ext
          ~pool:(Exec.Parallel.shared_pool ~at_least:domains)
          ~domains (engine c) Workload.Engine.Tsrjoin eq);
  }

(* generous wire-path budgets: conformance wants complete result sets,
   not the server's interactive defaults *)
let wire_limit = 1_000_000

let wire =
  {
    name = "wire";
    eval =
      (fun c eq ->
        let _, client = server c in
        (* a COUNT query comes back count-only over the wire; strip the
           aggregate so the server echoes the pieces themselves (COUNT
           is presentation, so the result set is unchanged) *)
        let eq =
          match Equery.agg eq with
          | Some Equery.Count -> Equery.with_agg eq None
          | _ -> eq
        in
        let text = Qlang.render_ext c.g eq in
        match
          Tcsq_server.Client.query ~limit:wire_limit ~max_results:wire_limit
            ~max_intermediate:max_int client text
        with
        | Error msg -> raise (Eval_failed (Printf.sprintf "wire: %s" msg))
        | Ok r when r.Tcsq_server.Protocol.status <> "ok" ->
            raise
              (Eval_failed
                 (Printf.sprintf "wire: status %s%s"
                    r.Tcsq_server.Protocol.status
                    (match r.Tcsq_server.Protocol.message with
                    | Some m -> ": " ^ m
                    | None -> "")))
        | Ok r ->
            let matches = r.Tcsq_server.Protocol.matches in
            (match r.Tcsq_server.Protocol.count with
            | Some n when n <> List.length matches ->
                raise
                  (Eval_failed
                     (Printf.sprintf
                        "wire: count %d disagrees with %d echoed matches" n
                        (List.length matches)))
            | _ -> ());
            matches);
  }

let broken =
  {
    name = "broken";
    eval =
      (fun c eq ->
        match
          Workload.Engine.evaluate_ext (engine c) Workload.Engine.Tsrjoin eq
        with
        | [] -> []
        | _ :: rest -> rest);
  }

let find ~inject_fault name =
  let fixed = standard @ [ adaptive; cached; wire ] in
  match List.find_opt (fun v -> v.name = name) fixed with
  | Some v -> Ok v
  | None -> (
      if name = "broken" then
        if inject_fault then Ok broken
        else Error "engine 'broken' is only available under --inject-fault"
      else
        match
          if String.length name > 11 && String.sub name 0 11 = "tsrjoin-par"
          then
            int_of_string_opt
              (String.sub name 11 (String.length name - 11))
          else None
        with
        | Some domains when domains >= 2 -> Ok (parallel ~domains)
        | _ -> Error (Printf.sprintf "unknown engine variant %S" name))
