(** Engine variants under conformance test, and the per-graph execution
    context they evaluate in.

    A {!ctx} owns at most one prepared {!Workload.Engine.t} and at most
    one in-process query server (both built lazily), so every variant —
    sequential, parallel, wire — runs against identical warm state for a
    given graph. The harness caches one ctx per distinct graph and
    releases them at the end of each iteration. *)

type ctx

val ctx : Tgraph.Graph.t -> ctx
val graph : ctx -> Tgraph.Graph.t

val engine : ctx -> Workload.Engine.t
(** Lazily [Workload.Engine.prepare]d, then memoized. *)

val release : ctx -> unit
(** Stops the wire server, if one was started. Idempotent. *)

exception Eval_failed of string
(** An engine variant failed to produce a result set — an exception out
    of the engine, or a non-[ok] wire response. The harness reports it
    as a conformance failure of that variant. *)

type t = {
  name : string;
  eval : ctx -> Semantics.Equery.t -> Semantics.Match_result.t list;
}
(** Every variant evaluates the full extended surface: the core pattern
    runs through the variant's engine, decorations and aggregates apply
    through {!Semantics.Equery} (TSRJoin variants additionally push the
    Allen constraints into the join). *)

val standard : t list
(** The five engine variants of the differential fuzzer: tsrjoin-basic,
    tsrjoin-opt, binary, hybrid, time. *)

val adaptive : t
(** TSRJoin under [Plan.build_adaptive] (defer ratio 2.0), Allen
    constraints in the engine config. *)

val cached : t
(** [tsrjoin-cached]: the cached-vs-fresh differential. Each query is
    evaluated twice through the ctx's one shared
    {!Workload.Plan_cache}; the variant fails unless a pass was served
    from the cache and both passes agree, and returns the cached-plan
    result set so the harness compares it against the cache-free
    variants. *)

val parallel : domains:int -> t
(** [tsrjoin-parN]: {!Workload.Engine.evaluate_ext} with [~domains:N] on
    the shared {!Exec.Pool}. *)

val wire : t
(** The server wire path: the query is rendered to extended query-language
    text, sent over a Unix-domain socket to an in-process [tcsq serve]
    instance holding the ctx's graph, and the response matches are
    decoded back. A [COUNT] aggregate is stripped before rendering
    (count is presentation-only; the server would echo no matches). *)

val broken : t
(** Fault injection for shrinker and replay tests: tsrjoin-opt with the
    first match deliberately dropped. Only registered under
    [--inject-fault]. *)

val find :
  inject_fault:bool -> string -> (t, string) result
(** Resolves a variant name as recorded in a reproducer ([tsrjoin-parN]
    resolves for any N >= 2; [broken] only when [inject_fault]). *)
