open Semantics

let minimize ~failing ?(max_probes = 2000) case0 =
  let probes = ref 0 in
  let probe candidate =
    if !probes >= max_probes then false
    else begin
      incr probes;
      failing candidate
    end
  in
  let cur = ref case0 in
  let shrunk = ref false in
  let accept candidate =
    if probe candidate then begin
      cur := candidate;
      shrunk := true;
      true
    end
    else false
  in

  (* 1. drop contiguous graph-edge id ranges, halving the range size —
     coarse chunks first so big graphs collapse in few probes *)
  let graph_edge_pass () =
    let sz = ref (max 1 (Tgraph.Graph.n_edges (!cur).Case.graph / 2)) in
    while !sz >= 1 do
      let i = ref 0 in
      while !i < Tgraph.Graph.n_edges (!cur).Case.graph do
        let n = Tgraph.Graph.n_edges (!cur).Case.graph in
        let lo = !i and hi = min n (!i + !sz) in
        let keeps = n - (hi - lo) in
        let accepted =
          keeps >= 1
          &&
          let g', _ =
            Testkit.drop_edges (!cur).Case.graph ~keep:(fun id ->
                id < lo || id >= hi)
          in
          accept { !cur with Case.graph = g' }
        in
        (* on success the ids shifted down into [lo, ...): retry the same
           position; otherwise move past the range *)
        if not accepted then i := !i + !sz
      done;
      sz := !sz / 2
    done
  in

  (* 2. drop decorations: the aggregate, then each anti/semi clause and
     each Allen constraint one at a time — cheap reductions that often
     collapse an extended failure to a plain one *)
  let drop_nth l n = List.filteri (fun i _ -> i <> n) l in
  let decoration_pass () =
    (match Equery.agg (!cur).Case.query with
    | Some _ ->
        ignore
          (accept
             { !cur with Case.query = Equery.with_agg (!cur).Case.query None })
    | None -> ());
    let clause_pass get set =
      let i = ref (List.length (get (!cur).Case.query) - 1) in
      while !i >= 0 do
        let eq = (!cur).Case.query in
        let l = get eq in
        if !i < List.length l then
          ignore (accept { !cur with Case.query = set eq (drop_nth l !i) });
        decr i
      done
    in
    clause_pass Equery.anti Equery.with_anti;
    clause_pass Equery.semi Equery.with_semi;
    clause_pass Equery.allen Equery.with_allen
  in

  (* 3. drop query pattern edges one at a time (decorations follow:
     dangling clause endpoints weaken to Any, Allen constraints on a
     dropped edge disappear) *)
  let query_edge_pass () =
    let i = ref (Query.n_edges (Case.core !cur) - 1) in
    while !i >= 0 do
      let eq = (!cur).Case.query in
      let n = Query.n_edges (Equery.core eq) in
      if n > 1 && !i < n then begin
        let keep = List.filter (fun j -> j <> !i) (List.init n Fun.id) in
        let eq', _ = Testkit.restrict_equery eq ~keep in
        ignore (accept { !cur with Case.query = eq' })
      end;
      decr i
    done
  in

  (* 4. merge vertex pairs (drop the higher id onto the lower) *)
  let vertex_pass () =
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      let g = (!cur).Case.graph in
      let present = Array.make (Tgraph.Graph.n_vertices g) false in
      Tgraph.Graph.iter_edges
        (fun e ->
          present.(Tgraph.Edge.src e) <- true;
          present.(Tgraph.Edge.dst e) <- true)
        g;
      let verts =
        List.filter_map
          (fun v -> if present.(v) then Some v else None)
          (List.init (Array.length present) Fun.id)
      in
      let rec pairs = function
        | [] -> ()
        | keep :: rest ->
            if
              List.exists
                (fun drop ->
                  accept
                    {
                      !cur with
                      Case.graph =
                        Testkit.merge_vertices (!cur).Case.graph ~keep ~drop;
                    })
                rest
            then continue_ := true
            else pairs rest
      in
      pairs verts
    done
  in

  (* 5. shrink edge intervals toward points *)
  let interval_pass () =
    let i = ref 0 in
    while !i < Tgraph.Graph.n_edges (!cur).Case.graph do
      let e = Tgraph.Graph.edge (!cur).Case.graph !i in
      let ts = Tgraph.Edge.ts e and te = Tgraph.Edge.te e in
      let candidates =
        if te = ts then []
        else
          [
            Temporal.Interval.point ts; Temporal.Interval.point te;
            Temporal.Interval.make ts (ts + ((te - ts) / 2));
          ]
      in
      ignore
        (List.exists
           (fun ivl ->
             accept
               {
                 !cur with
                 Case.graph =
                   Testkit.clamp_edge_interval (!cur).Case.graph ~edge:!i ivl;
               })
           candidates);
      incr i
    done
  in

  (* 6. shrink the query window *)
  let window_pass () =
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      let eq = (!cur).Case.query in
      let q = Equery.core eq in
      let ws = Query.ws q and we = Query.we q in
      if we > ws then begin
        let mid = ws + ((we - ws) / 2) in
        let candidates =
          [
            Temporal.Interval.point ws; Temporal.Interval.point we;
            Temporal.Interval.make ws mid; Temporal.Interval.make mid we;
          ]
        in
        if
          List.exists
            (fun w ->
              accept { !cur with Case.query = Equery.with_window eq w })
            candidates
        then continue_ := true
      end
    done
  in

  let rounds = ref 0 in
  let again = ref true in
  while !again && !probes < max_probes && !rounds < 10 do
    incr rounds;
    shrunk := false;
    graph_edge_pass ();
    decoration_pass ();
    query_edge_pass ();
    vertex_pass ();
    interval_pass ();
    window_pass ();
    again := !shrunk
  done;
  (!cur, !probes)
