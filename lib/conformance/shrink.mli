(** Greedy delta-debugging minimizer for failing cases.

    Given a deterministic failure predicate, repeatedly applies
    reductions — dropping graph-edge ranges (coarse to fine), dropping
    query decorations (the aggregate, each [NOT]/[EXISTS] clause, each
    Allen constraint), dropping query pattern edges (surviving
    decorations are remapped), merging vertices, shrinking edge
    intervals and the query window — keeping each reduction iff the
    failure persists, until a fixpoint or the probe budget is reached.
    The graph keeps at least one edge and the query at least one
    pattern edge throughout. *)

val minimize :
  failing:(Case.t -> bool) -> ?max_probes:int -> Case.t -> Case.t * int
(** [minimize ~failing case] assumes [failing case] holds and returns
    the reduced case plus the number of probes spent. [max_probes]
    defaults to 2000; the wire path makes probes expensive, so callers
    may lower it. *)
