open Semantics

let durability m = Temporal.Interval.length m.Match_result.life

(* Min-heap order on (durability, match): the heap root is the weakest
   of the current top-k, evicted when a stronger match arrives. *)
let cmp a b =
  let c = Int.compare (durability a) (durability b) in
  if c <> 0 then c else Match_result.compare b a

let top_k ?stats ?config ?plan ?cost tai q ~k =
  if k < 0 then invalid_arg "Durable.top_k: negative k";
  if k = 0 then []
  else begin
    let heap = Temporal.Min_heap.create ~capacity:(k + 1) ~cmp () in
    Tsrjoin.run ?stats ?config ?plan ?cost tai q ~emit:(fun m ->
        if Temporal.Min_heap.length heap < k then Temporal.Min_heap.push heap m
        else begin
          match Temporal.Min_heap.peek heap with
          | Some weakest when cmp m weakest > 0 ->
              ignore (Temporal.Min_heap.pop_exn heap);
              Temporal.Min_heap.push heap m
          | Some _ | None -> ()
        end);
    let rec drain acc =
      match Temporal.Min_heap.pop heap with
      | Some m -> drain (m :: acc)
      | None -> acc
    in
    drain [] (* popped weakest-first, so the result is strongest-first *)
  end
