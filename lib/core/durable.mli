(** Top-k most durable temporal-clique matches.

    The durability of a match is the length of its lifespan (Semertzidis
    & Pitoura's "most durable patterns", recast over our labeled,
    windowed queries). Evaluation streams TSRJoin matches through a
    bounded min-heap, so memory is O(k) regardless of the result size. *)

val top_k :
  ?stats:Semantics.Run_stats.t ->
  ?config:Tsrjoin.config ->
  ?plan:Plan.t ->
  ?cost:Plan.cost_model ->
  Tai.t ->
  Semantics.Query.t ->
  k:int ->
  Semantics.Match_result.t list
(** The [k] matches with the longest lifespans, most durable first; ties
    are broken deterministically (by {!Semantics.Match_result.compare}).
    @raise Invalid_argument when [k < 0]. *)

val durability : Semantics.Match_result.t -> int
(** Lifespan length of a match. *)
