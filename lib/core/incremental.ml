type t = {
  merge_threshold : int;
  mutable tai : Tai.t; (* indexes [merged] *)
  mutable merged : Tgraph.Graph.t; (* the graph covered by [tai] *)
  mutable buffered : (int * int * int * int * int) list; (* newest first *)
  mutable n_buffered : int;
}

let create ?(merge_threshold = 1024) base =
  if merge_threshold <= 0 then
    invalid_arg "Incremental.create: merge_threshold must be positive";
  {
    merge_threshold;
    tai = Tai.build base;
    merged = base;
    buffered = [];
    n_buffered = 0;
  }

let of_tai ?(merge_threshold = 1024) base tai =
  if merge_threshold <= 0 then
    invalid_arg "Incremental.of_tai: merge_threshold must be positive";
  { merge_threshold; tai; merged = base; buffered = []; n_buffered = 0 }

let materialize t =
  if t.n_buffered > 0 then begin
    let g = Tgraph.Graph.append t.merged (List.rev t.buffered) in
    t.tai <- Tai.merge t.tai g;
    t.merged <- g;
    t.buffered <- [];
    t.n_buffered <- 0
  end

let add_edge t ~src ~dst ~lbl ~ts ~te =
  (* validate eagerly so errors surface at the append site *)
  if src < 0 || dst < 0 then invalid_arg "Incremental.add_edge: negative vertex";
  if lbl < 0 || lbl >= Tgraph.Graph.n_labels t.merged then
    invalid_arg (Printf.sprintf "Incremental.add_edge: unknown label %d" lbl);
  if te < ts then invalid_arg "Incremental.add_edge: te < ts";
  let id = Tgraph.Graph.n_edges t.merged + t.n_buffered in
  t.buffered <- (src, dst, lbl, ts, te) :: t.buffered;
  t.n_buffered <- t.n_buffered + 1;
  if t.n_buffered >= t.merge_threshold then materialize t;
  id

let graph t =
  materialize t;
  t.merged

let tai t =
  materialize t;
  t.tai

let pending t = t.n_buffered
let n_edges t = Tgraph.Graph.n_edges t.merged + t.n_buffered

let evaluate ?stats ?config t q = Tsrjoin.evaluate ?stats ?config (tai t) q
