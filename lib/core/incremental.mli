(** An append-only temporal graph with incrementally maintained TSRJoin
    indexes.

    New edges are buffered; when a query needs the index (or the buffer
    exceeds [merge_threshold]), the buffer is folded into the TAI with
    {!Tai.merge}, which re-sorts nothing and recomputes ECI coverage only
    for the touched (label, endpoint) groups. Typical ingest is
    therefore far cheaper than rebuild-per-batch (see the [dynamic]
    benchmark). *)

type t

val create : ?merge_threshold:int -> Tgraph.Graph.t -> t
(** [merge_threshold] (default 1024) bounds how many buffered edges may
    accumulate before an automatic merge. *)

val of_tai : ?merge_threshold:int -> Tgraph.Graph.t -> Tai.t -> t
(** [of_tai g tai] adopts an existing index over [g] instead of
    rebuilding one — [tai] must index exactly [g] (as from [Tai.build g]
    or a previous [Tai.merge]). This is how a long-lived server resumes
    incremental maintenance from its current engine state. *)

val add_edge : t -> src:int -> dst:int -> lbl:int -> ts:int -> te:int -> int
(** Appends an edge, returning its id. Labels must already exist in the
    base graph's table.
    @raise Invalid_argument as {!Tgraph.Graph.append}. *)

val graph : t -> Tgraph.Graph.t
(** The current graph, including all appended edges (forces a merge). *)

val tai : t -> Tai.t
(** The up-to-date TAI (forces a merge of any buffered edges). *)

val pending : t -> int
(** Buffered edges not yet merged into the TAI. *)

val n_edges : t -> int

val evaluate :
  ?stats:Semantics.Run_stats.t ->
  ?config:Tsrjoin.config ->
  t ->
  Semantics.Query.t ->
  Semantics.Match_result.t list
(** TSRJoin evaluation against the current state (merges first). *)
