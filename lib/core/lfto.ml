open Tgraph

type trace_event =
  | Scanned of int * Edge.t
  | Window_filtered of int * Edge.t
  | Expired of Edge.t list
  | Enumerated of Edge.t array * Temporal.Interval.t
  | Inserted of int * Edge.t
  | Scanner_closed of int
  | Sweep_aborted

(* One active list per relation. Elements are span items (payload = edge
   id); the edge is recovered through the TSR-independent table captured
   at insertion, so we keep a parallel id -> edge map via closure-free
   arrays: we simply store the edge in the span payload by keeping a
   side table per relation. Simpler: store edges directly in a sorted
   vector. *)
module Active = struct
  type t = Edge.t Temporal.Vec.t

  let create () : t = Temporal.Vec.create ()

  let cmp_end a b =
    let c = Int.compare (Edge.te a) (Edge.te b) in
    if c <> 0 then c else Edge.compare_by_start a b

  let insert (a : t) e = Temporal.Vec.insert_sorted ~cmp:cmp_end a e

  let expire (a : t) t ~tracing ~on_expired =
    if tracing then begin
      let removed = ref [] in
      let n =
        Temporal.Vec.remove_prefix
          (fun e ->
            if Edge.te e < t then begin
              removed := e :: !removed;
              true
            end
            else false)
          a
      in
      if n > 0 then on_expired (List.rev !removed)
    end
    else ignore (Temporal.Vec.remove_prefix (fun e -> Edge.te e < t) a)

  let iter = Temporal.Vec.iter
  let length = Temporal.Vec.length
end

let run ?stats ?(obs = Obs.Sink.null) ?trace ~tsrs ~ws ~we ~emit () =
  let tracing = Option.is_some trace in
  let trace ev = match trace with Some f -> f ev | None -> () in
  let k = Array.length tsrs in
  if k = 0 then invalid_arg "Lfto.run: no relations";
  if we < ws then invalid_arg "Lfto.run: empty valid window";
  let tick_scanned () =
    match stats with
    | Some s -> Semantics.Run_stats.tick_scanned s
    | None -> ()
  in
  let add_enum_steps n =
    match stats with
    | Some s -> Semantics.Run_stats.add_enum_steps s n
    | None -> ()
  in
  (* Scanners: Scan_cur starts at the first edge; Scan_end just after the
     last edge starting within the window. *)
  let cur = Array.make k 0 in
  let stop =
    Obs.Sink.span obs Obs.Phase.Tsr_slice (fun () ->
        Array.init k (fun i -> Tsr.upper_bound_start tsrs.(i) we))
  in
  let active = Array.init k (fun _ -> Active.create ()) in
  let members =
    Array.make k (Edge.make ~id:0 ~src:0 ~dst:0 ~lbl:0 (Temporal.Interval.point 0))
  in
  (* Enumerate every combination of [e] (in slot [arrival]) with one
     active edge per other relation, pruning by running intersection. *)
  let enumerate arrival e =
    members.(arrival) <- e;
    let rec fill rel life =
      if rel = k then begin
        if tracing then trace (Enumerated (Array.copy members, life));
        emit members life
      end
      else if rel = arrival then fill (rel + 1) life
      else
        Active.iter
          (fun m ->
            add_enum_steps 1;
            members.(rel) <- m;
            match Temporal.Interval.intersect life (Edge.ivl m) with
            | Some life' -> fill (rel + 1) life'
            | None -> ())
          active.(rel)
    in
    fill 0 (Edge.ivl e)
  in
  let any_open () =
    let rec go i = i < k && (cur.(i) < stop.(i) || go (i + 1)) in
    go 0
  in
  let next_scanner () =
    let best = ref (-1) in
    for i = 0 to k - 1 do
      if cur.(i) < stop.(i) then
        if
          !best < 0
          || Edge.compare_by_start (Tsr.get tsrs.(i) cur.(i))
               (Tsr.get tsrs.(!best) cur.(!best))
             < 0
        then best := i
    done;
    !best
  in
  Obs.Sink.span obs Obs.Phase.Interval_sweep (fun () ->
      while any_open () do
        let i = next_scanner () in
        let e = Tsr.get tsrs.(i) cur.(i) in
        tick_scanned ();
        trace (Scanned (i, e));
        if Temporal.Interval.overlaps_window (Edge.ivl e) ~ws ~we then begin
          Array.iter
            (fun a ->
              Active.expire a (Edge.ts e) ~tracing ~on_expired:(fun es ->
                  trace (Expired es)))
            active;
          enumerate i e;
          Active.insert active.(i) e;
          trace (Inserted (i, e))
        end
        else trace (Window_filtered (i, e));
        cur.(i) <- cur.(i) + 1;
        if cur.(i) >= stop.(i) then trace (Scanner_closed i)
      done);
  ignore (Active.length active.(0))
