(** Leapfrog temporal overlap (LFTO) — the paper's Algorithm 1.

    A k-way plane-sweep interval join over bound r-TSRs: scans the
    relations in merged start-time order, maintains one end-time-sorted
    active list per relation, and, on each arrival overlapping the valid
    window, enumerates every combination of the arrived edge with one
    active edge per other relation. Each combination jointly overlaps at
    the arrival time; its window overlap follows from per-edge window
    overlap.

    This literal implementation exists for ground truth, traces
    (Table I) and ablation; production code uses {!Lfto_opt}. *)

type trace_event =
  | Scanned of int * Tgraph.Edge.t  (** relation index, edge *)
  | Window_filtered of int * Tgraph.Edge.t
      (** scanned but not overlapping the valid window *)
  | Expired of Tgraph.Edge.t list  (** removed by delActive *)
  | Enumerated of Tgraph.Edge.t array * Temporal.Interval.t
  | Inserted of int * Tgraph.Edge.t
  | Scanner_closed of int
  | Sweep_aborted  (** delSkip cut the sweep short (optimized only) *)

val run :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?trace:(trace_event -> unit) ->
  tsrs:Tsr.t array ->
  ws:int ->
  we:int ->
  emit:(Tgraph.Edge.t array -> Temporal.Interval.t -> unit) ->
  unit ->
  unit
(** [emit members lifespan] is called once per combination; [members.(i)]
    comes from [tsrs.(i)], [lifespan] is the (non-empty) intersection of
    the members' intervals. The members array is reused between calls.
    [ws, we] is the valid window (the query window at the bottom
    operator, the propagated lifespan clipped to the query window
    above).
    @raise Invalid_argument when [tsrs] is empty or [we < ws]. *)
