open Tgraph

type config = { use_eci : bool; use_del_skip : bool; use_lazy : bool }

let all_on = { use_eci = true; use_del_skip = true; use_lazy = true }
let all_off = { use_eci = false; use_del_skip = false; use_lazy = false }

(* Algorithm 2. Invariant: a coverage tuple (cs, ce, ec) guarantees that
   relation R holds an interval spanning [ec, ce] (the earliest
   concurrent is constant over [cs, ce] only if the interval starting at
   ec survives through ce). Hence if the k tuples' [ec, ce] ranges share
   a point, a combination exists there, and every edge relevant to any
   combination at or after that point starts at or after its relation's
   ec (earliest concurrents are monotone in t). *)
let optimize_start_point tsrs ~ws =
  let k = Array.length tsrs in
  if k = 0 then invalid_arg "Lfto_opt.optimize_start_point: no relations";
  if Array.exists (fun tsr -> Tsr.coverage tsr = None) tsrs then
    (* No ECI on some relation: no skip possible. *)
    Some (Array.make k min_int)
  else begin
    let tuples =
      Array.make k { Temporal.Coverage.cs = 0; ce = 0; ec = 0 }
    in
    let rec loop t =
      let missing = ref false in
      Array.iteri
        (fun i tsr ->
          if not !missing then
            match Tsr.get_coverage_tuple tsr t with
            | Some tup -> tuples.(i) <- tup
            | None -> missing := true)
        tsrs;
      if !missing then None
      else begin
        let max_ec = ref min_int and min_ce = ref max_int and max_cs = ref min_int in
        Array.iter
          (fun { Temporal.Coverage.cs; ce; ec } ->
            max_ec := max !max_ec ec;
            min_ce := min !min_ce ce;
            max_cs := max !max_cs cs)
          tuples;
        if !max_ec <= !min_ce then
          Some (Array.map (fun tup -> tup.Temporal.Coverage.ec) tuples)
        else
          (* Some tuple starts after t (otherwise all ranges contain t),
             so max_cs > t and the loop makes progress. *)
          loop !max_cs
      end
    in
    loop ws
  end

exception Abort_sweep

(* Reusable per-sweep scratch space: TSRJoin invokes one LFTO per pivot
   binding, and without reuse the array/vector allocations dominate the
   per-binding constant on selective queries. Buffers grow to the widest
   k seen and are reset (not shrunk) per run. *)
type context = {
  mutable cur : int array;
  mutable stop : int array;
  mutable starts : int array;
  mutable tuples : Temporal.Coverage.tuple array;
  mutable active : Edge.t Temporal.Vec.t array;
  mutable members : Edge.t array;
  candidates : Edge.t Temporal.Vec.t;
}

let create_context () =
  {
    cur = [||];
    stop = [||];
    starts = [||];
    tuples = [||];
    active = [||];
    members = [||];
    candidates = Temporal.Vec.create ();
  }

let ensure_capacity ctx k dummy_edge =
  if Array.length ctx.cur < k then begin
    ctx.cur <- Array.make k 0;
    ctx.stop <- Array.make k 0;
    ctx.starts <- Array.make k 0;
    ctx.tuples <- Array.make k { Temporal.Coverage.cs = 0; ce = 0; ec = 0 };
    ctx.active <- Array.init k (fun _ -> Temporal.Vec.create ());
    ctx.members <- Array.make k dummy_edge
  end;
  Array.iter Temporal.Vec.clear ctx.active;
  Temporal.Vec.clear ctx.candidates

(* context-based variant of Algorithm 2: fills ctx.starts, returns
   false when provably empty *)
let optimize_start_point_into ctx tsrs ~ws =
  let k = Array.length tsrs in
  let no_coverage = ref false in
  Array.iter
    (fun tsr -> if Tsr.coverage tsr = None then no_coverage := true)
    tsrs;
  if !no_coverage then begin
    Array.fill ctx.starts 0 k min_int;
    true
  end
  else begin
    let rec loop t =
      let missing = ref false in
      Array.iteri
        (fun i tsr ->
          if not !missing then
            match Tsr.get_coverage_tuple tsr t with
            | Some tup -> ctx.tuples.(i) <- tup
            | None -> missing := true)
        tsrs;
      if !missing then false
      else begin
        let max_ec = ref min_int and min_ce = ref max_int and max_cs = ref min_int in
        for i = 0 to k - 1 do
          let { Temporal.Coverage.cs; ce; ec } = ctx.tuples.(i) in
          max_ec := max !max_ec ec;
          min_ce := min !min_ce ce;
          max_cs := max !max_cs cs
        done;
        if !max_ec <= !min_ce then begin
          for i = 0 to k - 1 do
            ctx.starts.(i) <- ctx.tuples.(i).Temporal.Coverage.ec
          done;
          true
        end
        else loop !max_cs
      end
    in
    loop ws
  end

let run ?stats ?(obs = Obs.Sink.null) ?trace ?ctx ~config ~tsrs ~ws ~we ~emit
    () =
  let tracing = Option.is_some trace in
  let trace ev = match trace with Some f -> f ev | None -> () in
  let k = Array.length tsrs in
  if k = 0 then invalid_arg "Lfto_opt.run: no relations";
  if we < ws then invalid_arg "Lfto_opt.run: empty valid window";
  let tick_scanned () =
    match stats with
    | Some s -> Semantics.Run_stats.tick_scanned s
    | None -> ()
  in
  let add_enum_steps n =
    match stats with
    | Some s -> Semantics.Run_stats.add_enum_steps s n
    | None -> ()
  in
  let ctx = match ctx with Some c -> c | None -> create_context () in
  ensure_capacity ctx k
    (Edge.make ~id:0 ~src:0 ~dst:0 ~lbl:0 (Temporal.Interval.point 0));
  let feasible =
    if config.use_eci then
      (* ECI coverage probes are index lookups, kin to the TAI descents *)
      Obs.Sink.span obs Obs.Phase.Tai_probe (fun () ->
          optimize_start_point_into ctx tsrs ~ws)
    else begin
      Array.fill ctx.starts 0 k min_int;
      true
    end
  in
  if not feasible then ()
  else begin
      let starts = ctx.starts in
      let cur = ctx.cur in
      let stop = ctx.stop in
      Obs.Sink.span obs Obs.Phase.Tsr_slice (fun () ->
          for i = 0 to k - 1 do
            cur.(i) <-
              (if starts.(i) = min_int then 0
               else Tsr.lower_bound_start tsrs.(i) starts.(i))
          done;
          for i = 0 to k - 1 do
            stop.(i) <- Tsr.upper_bound_start tsrs.(i) we
          done);
      let active = ctx.active in
      let cmp_end a b =
        let c = Int.compare (Edge.te a) (Edge.te b) in
        if c <> 0 then c else Edge.compare_by_start a b
      in
      let insert_active i e =
        Temporal.Vec.insert_sorted ~cmp:cmp_end active.(i) e;
        trace (Lfto.Inserted (i, e))
      in
      let expire_all t =
        let expire_one a =
            if tracing then begin
              let removed = ref [] in
              let n =
                Temporal.Vec.remove_prefix
                  (fun e ->
                    if Edge.te e < t then begin
                      removed := e :: !removed;
                      true
                    end
                    else false)
                  a
              in
              if n > 0 then trace (Lfto.Expired (List.rev !removed))
            end
            else ignore (Temporal.Vec.remove_prefix (fun e -> Edge.te e < t) a)
        in
        for i = 0 to k - 1 do
          expire_one active.(i)
        done
      in
      (* delSkip (Algorithm 3): expiry plus the forward-edge cut. *)
      let del_skip t =
        expire_all t;
        if not config.use_del_skip then true
        else begin
          let dead = ref false in
          for i = 0 to k - 1 do
            if Temporal.Vec.is_empty active.(i) && cur.(i) >= stop.(i) then
              dead := true
          done;
          not !dead
        end
      in
      let members = ctx.members in
      (* Enumerate combinations where slot [slot] ranges over [pick]
         (either a batch C or an active list) and every other slot over
         its active list. [slot = -1] means all slots from active
         (the inRange transition's enumLazy(Active, ∅)). *)
      let enumerate ~slot ~pick =
        let rec fill rel life =
          if rel = k then begin
            if tracing then trace (Lfto.Enumerated (Array.copy members, life));
            emit members life
          end
          else begin
            let source : Edge.t Temporal.Vec.t =
              if rel = slot then pick else active.(rel)
            in
            Temporal.Vec.iter
              (fun m ->
                add_enum_steps 1;
                members.(rel) <- m;
                match Temporal.Interval.intersect life (Edge.ivl m) with
                | Some life' -> fill (rel + 1) life'
                | None -> ())
              source
          end
        in
        fill 0 (Temporal.Interval.make min_int max_int)
      in
      let candidates = ctx.candidates in
      let in_range = ref false in
      let batch_time = ref min_int and batch_rel = ref (-1) in
      let flush_boundary () =
        (* Runs when a batch closes: either the transition into the
           window (enumerate the straddling combinations) or a normal
           lazy batch. Raises Abort_sweep when delSkip cuts the sweep. *)
        if not !in_range then begin
          expire_all ws;
          enumerate ~slot:(-1) ~pick:candidates (* candidates empty here *);
          in_range := true
        end
        else begin
          if not (del_skip !batch_time) then begin
            trace Lfto.Sweep_aborted;
            raise Abort_sweep
          end;
          if not (Temporal.Vec.is_empty candidates) then
            enumerate ~slot:!batch_rel ~pick:candidates;
          Temporal.Vec.clear candidates
        end
      in
      let any_open () =
        let rec go i = i < k && (cur.(i) < stop.(i) || go (i + 1)) in
        go 0
      in
      let next_scanner () =
        let best = ref (-1) in
        for i = 0 to k - 1 do
          if cur.(i) < stop.(i) then
            if
              !best < 0
              || Edge.compare_by_start (Tsr.get tsrs.(i) cur.(i))
                   (Tsr.get tsrs.(!best) cur.(!best))
                 < 0
            then best := i
        done;
        !best
      in
      (try
         Obs.Sink.span obs Obs.Phase.Interval_sweep @@ fun () ->
         while any_open () do
           let i = next_scanner () in
           let e = Tsr.get tsrs.(i) cur.(i) in
           tick_scanned ();
           trace (Lfto.Scanned (i, e));
           if Edge.ts e < ws then
             (* Pre-window edge: park it; the straddling combinations are
                enumerated in one pass at the window transition. *)
             insert_active i e
           else begin
             let boundary =
               (not config.use_lazy)
               || (not !in_range)
               || !batch_time <> Edge.ts e
               || !batch_rel <> i
             in
             if boundary then flush_boundary ();
             insert_active i e;
             Temporal.Vec.push candidates e;
             batch_time := Edge.ts e;
             batch_rel := i
           end;
           cur.(i) <- cur.(i) + 1;
           if cur.(i) >= stop.(i) then trace (Lfto.Scanner_closed i)
         done;
         (* Final flush: the last batch (or, if nothing started inside
            the window, the straddling combinations) is still pending. *)
         if not !in_range then begin
           expire_all ws;
           enumerate ~slot:(-1) ~pick:candidates
         end
         else begin
           expire_all !batch_time;
           if not (Temporal.Vec.is_empty candidates) then
             enumerate ~slot:!batch_rel ~pick:candidates
         end
       with Abort_sweep -> ());
      ignore members
  end
