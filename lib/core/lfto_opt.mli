(** Optimized leapfrog temporal overlap — the paper's Algorithm 4,
    assembling three independent optimizations over {!Lfto}:

    - {b ECI start-point skip} (Algorithm 2): walk the early-coverage
      tuples of the k TSRs to the first jointly-covered timestamp and
      start every scanner at its earliest concurrent, skipping
      {e backward} irrelevant edges;
    - {b delSkip} (Algorithm 3): abort the sweep once some relation is
      exhausted with an empty active list, skipping {e forward}
      irrelevant edges;
    - {b lazy enumeration}: batch the edges sharing a start time within
      one relation and traverse the active lists once per batch.

    Every flag combination computes exactly the same result set as
    {!Lfto.run}; the flags only remove work. *)

type config = { use_eci : bool; use_del_skip : bool; use_lazy : bool }

val all_on : config
val all_off : config

type context
(** Reusable sweep scratch space. TSRJoin runs one LFTO per pivot
    binding; passing one context across those calls removes the
    per-call array and vector allocations. Not thread-safe — use one
    context per domain. *)

val create_context : unit -> context

val optimize_start_point : Tsr.t array -> ws:int -> int array option
(** Algorithm 2. [Some starts] gives, per relation, the earliest start
    time a relevant edge can have; [None] proves no combination can
    overlap [[ws, ∞)] and the sweep can be skipped entirely. Relations
    without attached coverage yield start time [min_int] (no skip).
    @raise Invalid_argument on an empty array. *)

val run :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?trace:(Lfto.trace_event -> unit) ->
  ?ctx:context ->
  config:config ->
  tsrs:Tsr.t array ->
  ws:int ->
  we:int ->
  emit:(Tgraph.Edge.t array -> Temporal.Interval.t -> unit) ->
  unit ->
  unit
(** Same contract as {!Lfto.run}. *)
