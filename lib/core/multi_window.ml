open Semantics

let evaluate ?stats ?config ?cost tai q ~windows =
  if windows = [] then invalid_arg "Multi_window.evaluate: no windows";
  let hull =
    List.fold_left Temporal.Interval.span (List.hd windows) windows
  in
  let windows = Array.of_list windows in
  let out = Array.map (fun _ -> ref []) windows in
  let hull_query = Query.with_window q hull in
  Tsrjoin.run ?stats ?config ?cost tai hull_query ~emit:(fun m ->
      Array.iteri
        (fun i w ->
          if Temporal.Interval.overlaps m.Match_result.life w then
            out.(i) := m :: !(out.(i)))
        windows);
  Array.map (fun cell -> List.rev !cell) out

let sliding ?stats ?config ?cost tai q ~width ~stride ~over =
  if width <= 0 || stride <= 0 then
    invalid_arg "Multi_window.sliding: width and stride must be positive";
  let ws0 = Temporal.Interval.ts over and we0 = Temporal.Interval.te over in
  let rec mk acc ws =
    if ws > we0 then List.rev acc
    else
      mk (Temporal.Interval.make ws (min we0 (ws + width - 1)) :: acc)
        (ws + stride)
  in
  let windows = mk [] ws0 in
  match windows with
  | [] -> []
  | _ ->
      let results = evaluate ?stats ?config ?cost tai q ~windows in
      List.mapi (fun i w -> (w, results.(i))) windows
