(** Shared evaluation of one pattern over many query windows.

    The paper's introduction observes that evaluating a window query as
    independent per-timestamp (or per-window) queries redoes an enormous
    amount of shared work. This module evaluates the pattern {e once}
    over the hull of all requested windows and distributes each complete
    match to the windows its lifespan intersects — sound because a match
    belongs to window [w] iff its lifespan meets [w], and every such
    match's lifespan meets the hull.

    Sharing wins when windows overlap or sit close together (e.g. a
    sliding-window dashboard); for far-apart sparse windows the hull
    covers dead space and per-window evaluation can win — see the
    [multiwindow] benchmark. *)

val evaluate :
  ?stats:Semantics.Run_stats.t ->
  ?config:Tsrjoin.config ->
  ?cost:Plan.cost_model ->
  Tai.t ->
  Semantics.Query.t ->
  windows:Temporal.Interval.t list ->
  Semantics.Match_result.t list array
(** [evaluate tai q ~windows] ignores [q]'s own window and returns, for
    each requested window (in order), exactly the matches that
    {!Tsrjoin.run} would produce for that window. Matches spanning
    several windows are shared structurally (not copied).
    @raise Invalid_argument on an empty window list. *)

val sliding :
  ?stats:Semantics.Run_stats.t ->
  ?config:Tsrjoin.config ->
  ?cost:Plan.cost_model ->
  Tai.t ->
  Semantics.Query.t ->
  width:int ->
  stride:int ->
  over:Temporal.Interval.t ->
  (Temporal.Interval.t * Semantics.Match_result.t list) list
(** Convenience: evaluate over a sliding window of [width] advancing by
    [stride] across [over].
    @raise Invalid_argument unless [width > 0 && stride > 0]. *)
