open Semantics

type step = {
  pivot : int;
  edges : Query.edge array;
  produce_binding : bool;
}

type t = { query : Query.t; steps : step array }

let steps p = p.steps
let query p = p.query

(* ---- construction machinery shared by both planners ---- *)

type sim = {
  q : Query.t;
  matched : bool array; (* per query edge *)
  bound : bool array; (* per query variable *)
  mutable acc : step list;
}

let sim_create q =
  {
    q;
    matched = Array.make (Query.n_edges q) false;
    bound = Array.make (Query.n_vars q) false;
    acc = [];
  }

let unmatched_adjacent sim v =
  List.filter (fun e -> not sim.matched.(e.Query.idx)) (Query.adjacent sim.q v)

let apply_step sim pivot ~produce_binding =
  let edges = Array.of_list (unmatched_adjacent sim pivot) in
  assert (Array.length edges > 0);
  Array.iter
    (fun e ->
      sim.matched.(e.Query.idx) <- true;
      sim.bound.(e.Query.src_var) <- true;
      sim.bound.(e.Query.dst_var) <- true)
    edges;
  sim.bound.(pivot) <- true;
  sim.acc <- { pivot; edges; produce_binding } :: sim.acc

let all_matched sim = Array.for_all Fun.id sim.matched

let bound_pivot_candidates sim =
  let out = ref [] in
  for v = Query.n_vars sim.q - 1 downto 0 do
    if sim.bound.(v) && unmatched_adjacent sim v <> [] then out := v :: !out
  done;
  !out

let root_candidates sim =
  let out = ref [] in
  for v = Query.n_vars sim.q - 1 downto 0 do
    if (not sim.bound.(v)) && unmatched_adjacent sim v <> [] then
      out := v :: !out
  done;
  !out

let finish sim = { query = sim.q; steps = Array.of_list (List.rev sim.acc) }

(* ---- cost model ---- *)

type label_stats = {
  count : float; (* edges with this label *)
  avg_out : float; (* per distinct source *)
  avg_in : float; (* per distinct destination *)
  overlap_prob : float; (* mean interval length / time domain *)
  mean_len : float; (* mean interval length *)
}

let label_stats_of_tai tai =
  let g = Tai.graph tai in
  let n_labels = Tgraph.Graph.n_labels g in
  let counts = Array.make n_labels 0 in
  let len_sums = Array.make n_labels 0.0 in
  Tgraph.Graph.iter_edges
    (fun e ->
      let l = Tgraph.Edge.lbl e in
      counts.(l) <- counts.(l) + 1;
      len_sums.(l) <-
        len_sums.(l) +. float_of_int (Temporal.Interval.length (Tgraph.Edge.ivl e)))
    g;
  let domain =
    if Tgraph.Graph.n_edges g = 0 then 1.0
    else float_of_int (Temporal.Interval.length (Tgraph.Graph.time_domain g))
  in
  Array.init n_labels (fun l ->
      let count = float_of_int counts.(l) in
      let n_src = float_of_int (max 1 (Array.length (Tai.sources tai ~lbl:l))) in
      let n_dst =
        float_of_int (max 1 (Array.length (Tai.destinations tai ~lbl:l)))
      in
      {
        count = max count 1e-9;
        avg_out = max (count /. n_src) 1e-9;
        avg_in = max (count /. n_dst) 1e-9;
        overlap_prob =
          (if counts.(l) = 0 then 1e-9
           else min 1.0 (max 1e-9 (len_sums.(l) /. count /. domain)));
        mean_len =
          (if counts.(l) = 0 then 1.0 else max 1.0 (len_sums.(l) /. count));
      })

let aggregate_stats stats =
  (* the wildcard behaves like the sum of all labels *)
  Array.fold_left
    (fun acc s ->
      {
        count = acc.count +. s.count;
        avg_out = acc.avg_out +. s.avg_out;
        avg_in = acc.avg_in +. s.avg_in;
        overlap_prob = max acc.overlap_prob s.overlap_prob;
        mean_len = max acc.mean_len s.mean_len;
      })
    { count = 1e-9; avg_out = 1e-9; avg_in = 1e-9; overlap_prob = 1e-9;
      mean_len = 1.0 }
    stats

let stats_for stats lbl =
  if lbl >= 0 && lbl < Array.length stats then stats.(lbl)
  else if lbl = Query.any_label && Array.length stats > 0 then
    aggregate_stats stats
  else
    { count = 1e-9; avg_out = 1e-9; avg_in = 1e-9; overlap_prob = 1e-9;
      mean_len = 1.0 }

(* The full cost model: global per-label statistics plus a temporal
   histogram making the temporal factors sensitive to the query window.
   For an edge joined onto an existing partial match, the chance of
   joint overlap is approximated by mean_len relative to the window
   length (a short window forces near-certain joint overlap among
   window-alive edges; a long one makes it rare); the number of
   window-relevant edges is scaled by the histogram's selectivity. *)
type cost_model_t = {
  stats : label_stats array;
  hist : Tgraph.Time_histogram.t;
}

let window_shrink cm lbl ~ws ~we =
  let s = stats_for cm.stats lbl in
  min 1.0 (max 1e-9 (s.mean_len /. float_of_int (we - ws + 1)))

let window_selectivity cm lbl ~ws ~we =
  if lbl = Query.any_label then begin
    let best = ref 1e-9 in
    Array.iteri
      (fun l _ ->
        best := Float.max !best (Tgraph.Time_histogram.selectivity cm.hist ~lbl:l ~ws ~we))
      cm.stats;
    !best
  end
  else Tgraph.Time_histogram.selectivity cm.hist ~lbl ~ws ~we

(* Expected log-cardinality of the star produced by choosing [v] as a
   fresh (unbound) pivot. The candidate-binding count is computed exactly
   by leapfrogging the TAI key sets (independence assumptions fail badly
   on graphs with per-vertex label affinity); each candidate then fans
   out by the average TSR size per adjacent edge, shrunk by the temporal
   overlap probability of each additional edge. *)
let leapfrog_count tai v edges =
  let sources_of lbl =
    if lbl = Query.any_label then Tai.all_sources tai
    else Tai.sources tai ~lbl
  in
  let destinations_of lbl =
    if lbl = Query.any_label then Tai.all_destinations tai
    else Tai.destinations tai ~lbl
  in
  let key_sets =
    List.concat_map
      (fun (e : Query.edge) ->
        let as_src =
          if e.Query.src_var = v then [ sources_of e.Query.lbl ] else []
        in
        let as_dst =
          if e.Query.dst_var = v then [ destinations_of e.Query.lbl ] else []
        in
        as_src @ as_dst)
      edges
  in
  let iters =
    Array.of_list
      (List.map Triejoin.Key_iter.of_sorted_array_unchecked key_sets)
  in
  let count = ref 0 in
  Triejoin.Leapfrog.iter (fun _ -> incr count) (Triejoin.Leapfrog.create iters);
  !count

let root_candidate_count tai sim v =
  leapfrog_count tai v (unmatched_adjacent sim v)

let step_root_candidates tai step =
  leapfrog_count tai step.pivot (Array.to_list step.edges)

let root_score tai sim cm es v =
  let ws = Query.ws sim.q and we = Query.we sim.q in
  let edges = unmatched_adjacent sim v in
  let candidates = root_candidate_count tai sim v in
  if candidates = 0 then neg_infinity (* provably empty: best possible root *)
  else begin
    let per_candidate =
      List.fold_left
        (fun acc e ->
          let s = stats_for cm.stats e.Query.lbl in
          let size = if e.Query.src_var = v then s.avg_out else s.avg_in in
          acc
          +. log (size *. window_selectivity cm e.Query.lbl ~ws ~we)
          +. log (window_shrink cm e.Query.lbl ~ws ~we)
          +. log (es e))
        0.0 edges
    in
    (* the first edge needs no overlap partner *)
    let first_shrink =
      match edges with
      | e :: _ -> log (window_shrink cm e.Query.lbl ~ws ~we)
      | [] -> 0.0
    in
    log (float_of_int candidates) +. per_candidate -. first_shrink
  end

(* Expected extension factor of a bound pivot: product over unmatched
   adjacent edges of the expected TSR size under the current bindings,
   shrunk by temporal overlap. *)
let bound_score sim cm es v =
  let ws = Query.ws sim.q and we = Query.we sim.q in
  let edges = unmatched_adjacent sim v in
  List.fold_left
    (fun acc e ->
      let s = stats_for cm.stats e.Query.lbl in
      let other = Query.other_endpoint e v in
      let size =
        if other <> v && sim.bound.(other) then
          (* fully bound TSR: roughly avg multi-edge count *)
          max (s.avg_out /. max (s.count /. s.avg_in) 1.0) 1e-3
        else if e.Query.src_var = v then s.avg_out
        else s.avg_in
      in
      acc
      +. log (size *. window_selectivity cm e.Query.lbl ~ws ~we)
      +. log (window_shrink cm e.Query.lbl ~ws ~we)
      +. log (es e))
    0.0 edges

let pick_min score = function
  | [] -> None
  | first :: rest ->
      let best = ref first and best_score = ref (score first) in
      List.iter
        (fun v ->
          let s = score v in
          if s < !best_score then begin
            best := v;
            best_score := s
          end)
        rest;
      Some !best

type cost_model = cost_model_t

type label_summary = label_stats = {
  count : float;
  avg_out : float;
  avg_in : float;
  overlap_prob : float;
  mean_len : float;
}

let label_summary cm lbl = stats_for cm.stats lbl

let cost_model tai =
  {
    stats = label_stats_of_tai tai;
    hist = Tgraph.Time_histogram.build (Tai.graph tai);
  }

let make_cost tai = function
  | Some c -> c
  | None -> cost_model tai

(* Per-edge expected work at a bound pivot: log of expected TSR size
   times the temporal overlap probability. *)
let edge_log_size sim cm v (e : Query.edge) =
  let ws = Query.ws sim.q and we = Query.we sim.q in
  let s = stats_for cm.stats e.Query.lbl in
  let other = Query.other_endpoint e v in
  let size =
    if other <> v && sim.bound.(other) then
      max (s.avg_out /. max (s.count /. s.avg_in) 1.0) 1e-3
    else if e.Query.src_var = v then s.avg_out
    else s.avg_in
  in
  log (size *. window_selectivity cm e.Query.lbl ~ws ~we)
  +. log (window_shrink cm e.Query.lbl ~ws ~we)

let apply_partial_step sim pivot ~keep =
  assert (keep <> []);
  let edges = Array.of_list keep in
  Array.iter
    (fun (e : Query.edge) ->
      sim.matched.(e.Query.idx) <- true;
      sim.bound.(e.Query.src_var) <- true;
      sim.bound.(e.Query.dst_var) <- true)
    edges;
  sim.bound.(pivot) <- true;
  sim.acc <- { pivot; edges; produce_binding = false } :: sim.acc

let no_scale (_ : Query.edge) = 1.0

let build_loop ?select_bound ?(edge_scale = no_scale) tai cm sim =
  while not (all_matched sim) do
    match pick_min (bound_score sim cm edge_scale) (bound_pivot_candidates sim)
    with
    | Some v -> (
        match select_bound with
        | None -> apply_step sim v ~produce_binding:false
        | Some select -> apply_partial_step sim v ~keep:(select sim v))
    | None -> (
        match
          pick_min (root_score tai sim cm edge_scale) (root_candidates sim)
        with
        | Some v -> apply_step sim v ~produce_binding:true
        | None -> assert false (* unmatched edges always have candidates *))
  done;
  finish sim

let build ?cost ?edge_scale tai q =
  build_loop ?edge_scale tai (make_cost tai cost) (sim_create q)

(* Per-edge correction factors from one execution's per-level feedback:
   level [i]'s cumulative misestimation ratio r_i = actual_i / est_i is
   localized to the step that introduced it (f_i = r_i / r_{i-1}) and
   spread geometrically over the step's edges, so a calibrated re-plan
   scores each edge with [static estimate x observed correction].
   Factors are clamped to [1/1024, 1024]: feedback can reorder pivots
   but never drive a score to +-inf. *)
let calibration p ~est_levels ~levels =
  let n_edges = Query.n_edges p.query in
  let scale = Array.make (max 1 n_edges) 1.0 in
  let get a i = if i >= 0 && i < Array.length a then a.(i) else 0 in
  let prev_r = ref 1.0 in
  Array.iteri
    (fun i step ->
      let est = float_of_int (max 1 (get est_levels i)) in
      let act = float_of_int (max 1 (get levels i)) in
      let r = act /. est in
      let f = r /. !prev_r in
      prev_r := r;
      let n = max 1 (Array.length step.edges) in
      let per_edge = f ** (1.0 /. float_of_int n) in
      let per_edge = Float.max (1.0 /. 1024.0) (Float.min 1024.0 per_edge) in
      Array.iter
        (fun (e : Query.edge) -> scale.(e.Query.idx) <- per_edge)
        step.edges)
    p.steps;
  fun (e : Query.edge) ->
    if e.Query.idx >= 0 && e.Query.idx < n_edges then scale.(e.Query.idx)
    else 1.0

let build_adaptive ?cost ?(defer_ratio = 8.0) tai q =
  if defer_ratio < 1.0 then
    invalid_arg "Plan.build_adaptive: defer_ratio must be >= 1";
  let cm = make_cost tai cost in
  let threshold = log defer_ratio in
  let select sim v =
    let edges = unmatched_adjacent sim v in
    let scored = List.map (fun e -> (edge_log_size sim cm v e, e)) edges in
    let best = List.fold_left (fun acc (s, _) -> min acc s) infinity scored in
    let keep =
      List.filter_map
        (fun (s, e) -> if s <= best +. threshold then Some e else None)
        scored
    in
    (* at least the most selective edge always stays *)
    if keep = [] then [ snd (List.hd scored) ] else keep
  in
  build_loop ~select_bound:select tai cm (sim_create q)

let of_pivot_order q order =
  let sim = sim_create q in
  while not (all_matched sim) do
    let bound = bound_pivot_candidates sim in
    let roots = root_candidates sim in
    let next =
      List.find_opt (fun v -> List.mem v bound) order
      |> (function
           | Some v -> Some (v, false)
           | None -> (
               match List.find_opt (fun v -> List.mem v roots) order with
               | Some v -> Some (v, true)
               | None -> (
                   (* fall back: any usable pivot *)
                   match bound with
                   | v :: _ -> Some (v, false)
                   | [] -> ( match roots with v :: _ -> Some (v, true) | [] -> None))))
    in
    match next with
    | Some (v, is_root) -> apply_step sim v ~produce_binding:is_root
    | None ->
        invalid_arg "Plan.of_pivot_order: no usable pivot (bad order list)"
  done;
  finish sim

let of_steps_unchecked q steps = { query = q; steps }

let of_pivot_order_unchecked q order =
  let sim = sim_create q in
  let first = ref true in
  List.iter
    (fun v ->
      if v >= 0 && v < Query.n_vars q && unmatched_adjacent sim v <> [] then begin
        apply_step sim v ~produce_binding:!first;
        first := false
      end)
    order;
  finish sim

let validate p =
  let q = p.query in
  let matched = Array.make (Query.n_edges q) 0 in
  let bound = Array.make (Query.n_vars q) false in
  let problem = ref None in
  Array.iter
    (fun step ->
      if Array.length step.edges = 0 && !problem = None then
        problem := Some (Printf.sprintf "step at pivot %d matches no edge" step.pivot);
      if (not step.produce_binding) && (not bound.(step.pivot)) && !problem = None
      then
        problem :=
          Some
            (Printf.sprintf "pivot %d used before being bound" step.pivot);
      Array.iter
        (fun e ->
          matched.(e.Query.idx) <- matched.(e.Query.idx) + 1;
          bound.(e.Query.src_var) <- true;
          bound.(e.Query.dst_var) <- true)
        step.edges;
      bound.(step.pivot) <- true)
    p.steps;
  (match !problem with
  | None ->
      Array.iteri
        (fun i c ->
          if c <> 1 && !problem = None then
            problem :=
              Some (Printf.sprintf "query edge %d matched %d times" i c))
        matched
  | Some _ -> ());
  match !problem with None -> Ok () | Some msg -> Error msg

let pp fmt p =
  Format.fprintf fmt "@[<v>plan:";
  Array.iteri
    (fun i step ->
      Format.fprintf fmt "@ %d: pivot x%d%s matches [%s]" i step.pivot
        (if step.produce_binding then " (leapfrog)" else "")
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun e ->
                   Printf.sprintf "e%d:l%d(x%d,x%d)" e.Query.idx e.Query.lbl
                     e.Query.src_var e.Query.dst_var)
                 step.edges))))
    p.steps;
  Format.fprintf fmt "@]"
