(** TSRJoin physical plans.

    A plan is an ordered list of TSRJoin steps. Each step has a pivot
    query variable; the step matches {e all} of the pivot's
    still-unmatched adjacent query edges in one LFTO call. The first
    step of each connected component produces pivot bindings by leapfrog
    intersection of TAI key sets; later pivots are already bound by a
    propagated partial match.

    The default planner is the paper's cost-model sketch: the first
    pivot minimizes the expected cardinality of its adjacent-edge star
    (label frequencies, vertex count, and a per-label temporal overlap
    probability); subsequent pivots greedily minimize the expected
    extension factor. *)

type step = {
  pivot : int;
  edges : Semantics.Query.edge array;  (** matched at this step *)
  produce_binding : bool;  (** leapfrog binding production (component root) *)
}

type t

val steps : t -> step array
val query : t -> Semantics.Query.t

type cost_model
(** Per-graph statistics backing the planner (label frequencies, key-set
    cardinalities, temporal overlap probabilities). Build it once per
    TAI and reuse across queries — computing it scans the edge table. *)

val cost_model : Tai.t -> cost_model

(** {2 Cost-model primitives}

    The raw factors the planner scores with, exposed so the static
    analyzer ([Analysis.Selectivity]) can replay the same model in
    absolute-cardinality space and explain the ranking. *)

type label_summary = {
  count : float;  (** edges carrying the label *)
  avg_out : float;  (** mean out-edges per distinct source *)
  avg_in : float;  (** mean in-edges per distinct destination *)
  overlap_prob : float;  (** mean interval length / time domain *)
  mean_len : float;  (** mean interval length, at least 1 *)
}

val label_summary : cost_model -> int -> label_summary
(** Statistics for a label id; {!Semantics.Query.any_label} aggregates
    all labels, unknown ids return near-zero sentinels. *)

val window_selectivity : cost_model -> int -> ws:int -> we:int -> float
(** Histogram share of the label's edges alive in the window (wildcard:
    the max over labels). *)

val window_shrink : cost_model -> int -> ws:int -> we:int -> float
(** The joint-overlap shrink factor an extra edge of this label costs a
    partial match: mean interval length over window length, capped to
    [(0, 1]]. *)

val step_root_candidates : Tai.t -> step -> int
(** Exact candidate-binding count of a leapfrog root step: the size of
    the intersection of the pivot's TAI key sets — the same number the
    planner used when scoring the root. Meaningless for non-root
    steps. *)

val build :
  ?cost:cost_model ->
  ?edge_scale:(Semantics.Query.edge -> float) ->
  Tai.t ->
  Semantics.Query.t ->
  t
(** Cost-model planner; [cost] defaults to a freshly computed model.

    [edge_scale] (default: constantly [1.0]) multiplies each edge's
    expected cardinality before scoring — the runtime-feedback hook: the
    plan cache and [explain --analyze] pass {!calibration} factors here
    to re-plan with observed cardinalities substituted for the static
    estimates. Scores only: the produced plan is always structurally
    valid and result-identical to an uncalibrated one. *)

val calibration :
  t -> est_levels:int array -> levels:int array -> Semantics.Query.edge -> float
(** [calibration plan ~est_levels ~levels] turns one execution's
    per-level feedback (the analyzer's cumulative predictions next to
    the measured {!Semantics.Run_stats.levels}) into per-edge correction
    factors for {!build}'s [edge_scale]: level [i]'s misestimation ratio
    is localized to the step that introduced it and spread geometrically
    over that step's edges, clamped to [[1/1024, 1024]]. Missing levels
    count as matching the estimate; edges outside [plan] score [1.0]. *)

val build_adaptive :
  ?cost:cost_model -> ?defer_ratio:float -> Tai.t -> Semantics.Query.t -> t
(** The paper's §VII future-work direction: a hybrid plan that may match
    only a {e subset} of a pivot's unmatched adjacent edges per step,
    deferring edges whose expected TSR size exceeds [defer_ratio]
    (default 8.0) times the step's most selective edge. Deferred edges
    are matched by later steps, after the partial match's lifespan has
    narrowed and other predicates have pruned — the fix for the
    non-selective-chain weakness observed in Fig. 11. Falls back to
    {!build}-like steps when nothing is worth deferring. *)

val of_pivot_order : Semantics.Query.t -> int list -> t
(** Plan with an explicit pivot preference order (for tests and
    ablations). The list is consulted greedily: the next pivot is the
    first listed variable that is usable (bound, or a fresh component
    root) and has unmatched adjacent edges; remaining pivots are chosen
    as in {!build} without cost information.
    @raise Invalid_argument if the list omits needed variables. *)

val of_steps_unchecked : Semantics.Query.t -> step array -> t
(** Assembles a plan from raw steps with {e no} invariant checking — for
    the static analyzer's tests (hand-corrupted plans) only. Executing
    an invalid plan produces wrong answers; run
    [Analysis.Plan_check.check] (or {!validate}) first. *)

val of_pivot_order_unchecked : Semantics.Query.t -> int list -> t
(** The {e literal} reading of a pivot order: pivots are applied exactly
    in the given sequence (skipping variables with no unmatched adjacent
    edges), the first step is the only leapfrog root, and edges left
    unmatched when the order runs out stay unmatched. Unlike
    {!of_pivot_order} there is no bound-first repair or fallback, so a
    bad order yields an {e invalid} plan — which is the point: it is the
    CLI/test vehicle for exercising plan diagnostics ([tcsq lint
    --pivot-order]). *)

val validate : t -> (unit, string) result
(** Checks plan invariants: every query edge matched exactly once, and
    every non-root pivot bound by an earlier step. *)

val pp : Format.formatter -> t -> unit
