open Tgraph
module Grouping = Triejoin.Grouping
module Slice = Triejoin.Slice

type two_level = {
  edges : Edge.t array;
  by_label : Grouping.t;
  level2 : Grouping.t array;
  eci : Temporal.Coverage.t array array option; (* per label, per 2nd key *)
}

type three_level = {
  edges : Edge.t array;
  by_label : Grouping.t;
  level2 : Grouping.t array;
  level3 : Grouping.t array array;
  eci : Temporal.Coverage.t array array array option;
}

type structure_only = {
  s_by_label : Grouping.t;
  s_level2 : Grouping.t array;
  s_level3 : Grouping.t array array;
}

type t = {
  graph : Graph.t;
  ls : two_level;
  ld : two_level;
  lsd : three_level;
  lds : structure_only;
  all_sources : int array; (* wildcard binding-production key sets *)
  all_destinations : int array;
}

let coverage_of_run edges off len =
  let items =
    Array.init len (fun i -> Edge.to_span edges.(off + i))
  in
  Temporal.Coverage.build items

let build_two_level graph ~cmp ~key2 ~with_eci =
  let edges = Array.copy (Graph.edges graph) in
  Array.sort cmp edges;
  let by_label =
    Grouping.group edges ~off:0 ~len:(Array.length edges) ~key:Edge.lbl
  in
  let n = Grouping.n_groups by_label in
  let level2 =
    Array.init n (fun li ->
        let off, len = Grouping.range by_label li in
        Grouping.group edges ~off ~len ~key:key2)
  in
  let eci =
    if not with_eci then None
    else
      Some
        (Array.init n (fun li ->
             Array.init (Grouping.n_groups level2.(li)) (fun si ->
                 let off, len = Grouping.range level2.(li) si in
                 coverage_of_run edges off len)))
  in
  { edges; by_label; level2; eci }

let build_three_level graph ~with_eci =
  let edges = Array.copy (Graph.edges graph) in
  Array.sort Edge.compare_lsd edges;
  let by_label =
    Grouping.group edges ~off:0 ~len:(Array.length edges) ~key:Edge.lbl
  in
  let n = Grouping.n_groups by_label in
  let level2 =
    Array.init n (fun li ->
        let off, len = Grouping.range by_label li in
        Grouping.group edges ~off ~len ~key:Edge.src)
  in
  let level3 =
    Array.init n (fun li ->
        Array.init (Grouping.n_groups level2.(li)) (fun si ->
            let off, len = Grouping.range level2.(li) si in
            Grouping.group edges ~off ~len ~key:Edge.dst))
  in
  let eci =
    if not with_eci then None
    else
      Some
        (Array.init n (fun li ->
             Array.init (Grouping.n_groups level2.(li)) (fun si ->
                 let g3 = level3.(li).(si) in
                 Array.init (Grouping.n_groups g3) (fun di ->
                     let off, len = Grouping.range g3 di in
                     coverage_of_run edges off len))))
  in
  { edges; by_label; level2; level3; eci }

let build_structure_only graph =
  let edges = Array.copy (Graph.edges graph) in
  Array.sort Edge.compare_lds edges;
  let s_by_label =
    Grouping.group edges ~off:0 ~len:(Array.length edges) ~key:Edge.lbl
  in
  let n = Grouping.n_groups s_by_label in
  let s_level2 =
    Array.init n (fun li ->
        let off, len = Grouping.range s_by_label li in
        Grouping.group edges ~off ~len ~key:Edge.dst)
  in
  let s_level3 =
    Array.init n (fun li ->
        Array.init (Grouping.n_groups s_level2.(li)) (fun di ->
            let off, len = Grouping.range s_level2.(li) di in
            Grouping.group edges ~off ~len ~key:Edge.src))
  in
  (* The sorted edge copy is discarded: LDS keeps structure only. *)
  { s_by_label; s_level2; s_level3 }

let distinct_sorted of_edge graph =
  let seen = Hashtbl.create 256 in
  Graph.iter_edges (fun e -> Hashtbl.replace seen (of_edge e) ()) graph;
  let keys = Array.of_seq (Hashtbl.to_seq_keys seen) in
  Array.sort Int.compare keys;
  keys

let build ?(with_eci = true) graph =
  {
    graph;
    ls = build_two_level graph ~cmp:Edge.compare_ls ~key2:Edge.src ~with_eci;
    ld = build_two_level graph ~cmp:Edge.compare_ld ~key2:Edge.dst ~with_eci;
    lsd = build_three_level graph ~with_eci;
    lds = build_structure_only graph;
    all_sources = distinct_sorted Edge.src graph;
    all_destinations = distinct_sorted Edge.dst graph;
  }

(* ---- incremental maintenance ---- *)

(* Merge the (start-sorted within trie order) old edge array with the
   sorted delta, then regroup; coverages are recomputed only for groups
   containing a delta edge, others are looked up in the old trie. *)
let merge_sorted ~cmp old_edges delta =
  let n = Array.length old_edges and d = Array.length delta in
  let out = Array.make (n + d) (if n > 0 then old_edges.(0) else delta.(0)) in
  let i = ref 0 and j = ref 0 in
  for k = 0 to n + d - 1 do
    if !i < n && (!j >= d || cmp old_edges.(!i) delta.(!j) <= 0) then begin
      out.(k) <- old_edges.(!i);
      incr i
    end
    else begin
      out.(k) <- delta.(!j);
      incr j
    end
  done;
  out

let merge_two_level (old_trie : two_level) graph delta ~cmp ~key2 ~touched2 =
  let delta = Array.copy delta in
  Array.sort cmp delta;
  let edges =
    if Array.length old_trie.edges = 0 && Array.length delta = 0 then [||]
    else merge_sorted ~cmp old_trie.edges delta
  in
  ignore graph;
  let by_label =
    Grouping.group edges ~off:0 ~len:(Array.length edges) ~key:Edge.lbl
  in
  let n = Grouping.n_groups by_label in
  let level2 =
    Array.init n (fun li ->
        let off, len = Grouping.range by_label li in
        Grouping.group edges ~off ~len ~key:key2)
  in
  let eci =
    match old_trie.eci with
    | None -> None
    | Some old_eci ->
        Some
          (Array.init n (fun li ->
               let lbl = by_label.Grouping.keys.(li) in
               Array.init (Grouping.n_groups level2.(li)) (fun ki ->
                   let k2 = level2.(li).Grouping.keys.(ki) in
                   let off, len = Grouping.range level2.(li) ki in
                   if Hashtbl.mem touched2 (lbl, k2) then
                     coverage_of_run edges off len
                   else begin
                     (* untouched group: identical edge run, reuse *)
                     match Grouping.find old_trie.by_label lbl with
                     | None -> coverage_of_run edges off len
                     | Some old_li -> (
                         match Grouping.find old_trie.level2.(old_li) k2 with
                         | None -> coverage_of_run edges off len
                         | Some old_ki -> old_eci.(old_li).(old_ki))
                   end)))
  in
  { edges; by_label; level2; eci }

let merge_three_level (old_trie : three_level) delta ~touched3 =
  let delta = Array.copy delta in
  Array.sort Edge.compare_lsd delta;
  let edges =
    if Array.length old_trie.edges = 0 && Array.length delta = 0 then [||]
    else merge_sorted ~cmp:Edge.compare_lsd old_trie.edges delta
  in
  let by_label =
    Grouping.group edges ~off:0 ~len:(Array.length edges) ~key:Edge.lbl
  in
  let n = Grouping.n_groups by_label in
  let level2 =
    Array.init n (fun li ->
        let off, len = Grouping.range by_label li in
        Grouping.group edges ~off ~len ~key:Edge.src)
  in
  let level3 =
    Array.init n (fun li ->
        Array.init (Grouping.n_groups level2.(li)) (fun si ->
            let off, len = Grouping.range level2.(li) si in
            Grouping.group edges ~off ~len ~key:Edge.dst))
  in
  let eci =
    match old_trie.eci with
    | None -> None
    | Some old_eci ->
        Some
          (Array.init n (fun li ->
               let lbl = by_label.Grouping.keys.(li) in
               Array.init (Grouping.n_groups level2.(li)) (fun si ->
                   let src = level2.(li).Grouping.keys.(si) in
                   let g3 = level3.(li).(si) in
                   Array.init (Grouping.n_groups g3) (fun di ->
                       let dst = g3.Grouping.keys.(di) in
                       let off, len = Grouping.range g3 di in
                       if Hashtbl.mem touched3 (lbl, src, dst) then
                         coverage_of_run edges off len
                       else begin
                         match Grouping.find old_trie.by_label lbl with
                         | None -> coverage_of_run edges off len
                         | Some oli -> (
                             match Grouping.find old_trie.level2.(oli) src with
                             | None -> coverage_of_run edges off len
                             | Some osi -> (
                                 match
                                   Grouping.find old_trie.level3.(oli).(osi) dst
                                 with
                                 | None -> coverage_of_run edges off len
                                 | Some odi -> old_eci.(oli).(osi).(odi)))
                       end))))
  in
  { edges; by_label; level2; level3; eci }

let merge tai graph' =
  let old_n = Graph.n_edges tai.graph in
  let new_n = Graph.n_edges graph' in
  if new_n < old_n then
    invalid_arg "Tai.merge: the new graph has fewer edges than the indexed one";
  let same_edge a b =
    Edge.src a = Edge.src b && Edge.dst a = Edge.dst b
    && Edge.lbl a = Edge.lbl b
    && Temporal.Interval.equal (Edge.ivl a) (Edge.ivl b)
  in
  for i = 0 to old_n - 1 do
    if not (same_edge (Graph.edge graph' i) (Graph.edge tai.graph i)) then
      invalid_arg "Tai.merge: the new graph does not extend the indexed one"
  done;
  if new_n = old_n then tai
  else begin
    let delta = Array.init (new_n - old_n) (fun i -> Graph.edge graph' (old_n + i)) in
    let touched_ls = Hashtbl.create 64
    and touched_ld = Hashtbl.create 64
    and touched_lsd = Hashtbl.create 64 in
    Array.iter
      (fun e ->
        Hashtbl.replace touched_ls (Edge.lbl e, Edge.src e) ();
        Hashtbl.replace touched_ld (Edge.lbl e, Edge.dst e) ();
        Hashtbl.replace touched_lsd (Edge.lbl e, Edge.src e, Edge.dst e) ())
      delta;
    {
      graph = graph';
      ls =
        merge_two_level tai.ls graph' delta ~cmp:Edge.compare_ls ~key2:Edge.src
          ~touched2:touched_ls;
      ld =
        merge_two_level tai.ld graph' delta ~cmp:Edge.compare_ld ~key2:Edge.dst
          ~touched2:touched_ld;
      lsd = merge_three_level tai.lsd delta ~touched3:touched_lsd;
      lds = build_structure_only graph';
      all_sources = distinct_sorted Edge.src graph';
      all_destinations = distinct_sorted Edge.dst graph';
    }
  end

let build_time ?with_eci graph =
  let t0 = Unix.gettimeofday () in
  let tai = build ?with_eci graph in
  (tai, Unix.gettimeofday () -. t0)

let graph t = t.graph
let has_eci t = t.ls.eci <> None
let all_sources t = t.all_sources
let all_destinations t = t.all_destinations

let second_keys (trie : two_level) ~lbl =
  match Grouping.find trie.by_label lbl with
  | None -> [||]
  | Some li -> trie.level2.(li).Grouping.keys

let sources t ~lbl = second_keys t.ls ~lbl
let destinations t ~lbl = second_keys t.ld ~lbl

let dsts_of_src t ~lbl ~src =
  match Grouping.find t.lsd.by_label lbl with
  | None -> [||]
  | Some li -> (
      match Grouping.find t.lsd.level2.(li) src with
      | None -> [||]
      | Some si -> t.lsd.level3.(li).(si).Grouping.keys)

let srcs_of_dst t ~lbl ~dst =
  match Grouping.find t.lds.s_by_label lbl with
  | None -> [||]
  | Some li -> (
      match Grouping.find t.lds.s_level2.(li) dst with
      | None -> [||]
      | Some di -> t.lds.s_level3.(li).(di).Grouping.keys)

let two_level_tsr (trie : two_level) ~lbl ~k2 =
  match Grouping.find trie.by_label lbl with
  | None -> Tsr.empty
  | Some li -> (
      match Grouping.find trie.level2.(li) k2 with
      | None -> Tsr.empty
      | Some ki ->
          let off, len = Grouping.range trie.level2.(li) ki in
          let coverage =
            Option.map (fun eci -> eci.(li).(ki)) trie.eci
          in
          Tsr.make_unchecked ?coverage (Slice.make trie.edges ~off ~len))

(* Wildcard retrieval: collect the endpoint's run under every label and
   merge them by start time into a fresh (coverage-free) TSR. *)
let two_level_tsr_any (trie : two_level) ~k2 =
  let runs = ref [] in
  let total = ref 0 in
  Array.iteri
    (fun li g2 ->
      ignore li;
      match Grouping.find g2 k2 with
      | None -> ()
      | Some ki ->
          let off, len = Grouping.range g2 ki in
          runs := (off, len) :: !runs;
          total := !total + len)
    trie.level2;
  match !runs with
  | [] -> Tsr.empty
  | [ (off, len) ] -> Tsr.make_unchecked (Slice.make trie.edges ~off ~len)
  | runs ->
      let out = Array.make !total trie.edges.(fst (List.hd runs)) in
      let pos = ref 0 in
      List.iter
        (fun (off, len) ->
          Array.blit trie.edges off out !pos len;
          pos := !pos + len)
        runs;
      Array.sort Edge.compare_by_start out;
      Tsr.make_unchecked (Slice.full out)

let tsr_out t ~lbl ~src =
  if lbl = Semantics.Query.any_label then two_level_tsr_any t.ls ~k2:src
  else two_level_tsr t.ls ~lbl ~k2:src

let tsr_in t ~lbl ~dst =
  if lbl = Semantics.Query.any_label then two_level_tsr_any t.ld ~k2:dst
  else two_level_tsr t.ld ~lbl ~k2:dst

let tsr_between_one t ~lbl ~src ~dst =
  match Grouping.find t.lsd.by_label lbl with
  | None -> Tsr.empty
  | Some li -> (
      match Grouping.find t.lsd.level2.(li) src with
      | None -> Tsr.empty
      | Some si -> (
          let g3 = t.lsd.level3.(li).(si) in
          match Grouping.find g3 dst with
          | None -> Tsr.empty
          | Some di ->
              let off, len = Grouping.range g3 di in
              let coverage =
                Option.map (fun eci -> eci.(li).(si).(di)) t.lsd.eci
              in
              Tsr.make_unchecked ?coverage (Slice.make t.lsd.edges ~off ~len)))

let tsr_between t ~lbl ~src ~dst =
  if lbl <> Semantics.Query.any_label then tsr_between_one t ~lbl ~src ~dst
  else begin
    (* union of the (l, src, dst) runs over every label *)
    let edges = ref [] in
    Array.iter
      (fun lbl ->
        Tsr.iter (fun e -> edges := e :: !edges)
          (tsr_between_one t ~lbl ~src ~dst))
      (Array.init (Grouping.n_groups t.lsd.by_label) (fun li ->
           t.lsd.by_label.Grouping.keys.(li)));
    Tsr.of_edges (Array.of_list !edges)
  end

let eci_two_level (trie : two_level) =
  match trie.eci with
  | None -> 0
  | Some eci ->
      Array.fold_left
        (fun acc per_label ->
          Array.fold_left
            (fun acc c -> acc + Temporal.Coverage.size_words c)
            acc per_label)
        0 eci

let eci_three_level (trie : three_level) =
  match trie.eci with
  | None -> 0
  | Some eci ->
      Array.fold_left
        (fun acc per_label ->
          Array.fold_left
            (fun acc per_src ->
              Array.fold_left
                (fun acc c -> acc + Temporal.Coverage.size_words c)
                acc per_src)
            acc per_label)
        0 eci

let eci_size_words t =
  eci_two_level t.ls + eci_two_level t.ld + eci_three_level t.lsd

let groupings_two_level (trie : two_level) =
  Grouping.size_words trie.by_label
  + Array.fold_left (fun acc g -> acc + Grouping.size_words g) 0 trie.level2

let size_words t =
  let edge_words arr = 8 * Array.length arr in
  let lsd_groupings =
    Grouping.size_words t.lsd.by_label
    + Array.fold_left (fun acc g -> acc + Grouping.size_words g) 0 t.lsd.level2
    + Array.fold_left
        (fun acc gs ->
          Array.fold_left (fun acc g -> acc + Grouping.size_words g) acc gs)
        0 t.lsd.level3
  in
  let lds_groupings =
    Grouping.size_words t.lds.s_by_label
    + Array.fold_left (fun acc g -> acc + Grouping.size_words g) 0 t.lds.s_level2
    + Array.fold_left
        (fun acc gs ->
          Array.fold_left (fun acc g -> acc + Grouping.size_words g) acc gs)
        0 t.lds.s_level3
  in
  5
  + edge_words t.ls.edges + groupings_two_level t.ls
  + edge_words t.ld.edges + groupings_two_level t.ld
  + edge_words t.lsd.edges + lsd_groupings + lds_groupings + eci_size_words t

let count_tuples_2 (trie : two_level) =
  match trie.eci with
  | None -> 0
  | Some eci ->
      Array.fold_left
        (fun acc per ->
          Array.fold_left
            (fun acc c -> acc + Temporal.Coverage.n_tuples c)
            acc per)
        0 eci

let count_tuples_3 (trie : three_level) =
  match trie.eci with
  | None -> 0
  | Some eci ->
      Array.fold_left
        (fun acc per ->
          Array.fold_left
            (fun acc per2 ->
              Array.fold_left
                (fun acc c -> acc + Temporal.Coverage.n_tuples c)
                acc per2)
            acc per)
        0 eci

let eci_n_tuples t =
  count_tuples_2 t.ls + count_tuples_2 t.ld + count_tuples_3 t.lsd
