(** Temporal Adjacency Indexes (TAIs): the TSR representation of TSRJoin.

    Four tries over the edge table:
    - {b LS}: label → source → edges start-sorted — the run under
      (l, s) {e is} the TSR R(l, s, ANY);
    - {b LD}: label → destination → edges start-sorted — R(l, *, d);
    - {b LSD}: label → source → destination → edges start-sorted —
      R(l, s, d);
    - {b LDS}: trie structure only (its leaf TSRs are recovered through
      LSD, the paper's storage-saving note).

    Key levels are sorted integer arrays, so leapfrog binding production
    runs over them directly. When built [~with_eci:true], every TSR of
    LS, LD and LSD carries its early-coverage index (LS-EC, LD-EC,
    LSD-EC), enabling the backward-edge skip of Algorithm 2. *)

type t

val build : ?with_eci:bool -> Tgraph.Graph.t -> t
(** [with_eci] defaults to [true]. *)

val build_time : ?with_eci:bool -> Tgraph.Graph.t -> t * float
(** Timed {!build}, for Table V. *)

val merge : t -> Tgraph.Graph.t -> t
(** [merge tai g'] is the TAI of [g'], where [g'] extends [tai]'s graph
    by appended edges (see {!Tgraph.Graph.append}). Sorted edge arrays
    are maintained by sorted merge instead of re-sorting, and — the real
    saving — ECI coverages are rebuilt only for the (label, key) groups
    the new edges touch; untouched groups reuse their existing coverage.
    The incremental-maintenance primitive behind {!Incremental}.
    @raise Invalid_argument when [g'] does not extend the indexed
    graph. *)

val graph : t -> Tgraph.Graph.t
val has_eci : t -> bool

(** {2 Binding production support (sorted key sets)} *)

val sources : t -> lbl:int -> int array
(** Distinct sources with an out-edge of label [lbl]. Do not mutate. *)

val destinations : t -> lbl:int -> int array
val dsts_of_src : t -> lbl:int -> src:int -> int array
val srcs_of_dst : t -> lbl:int -> dst:int -> int array

val all_sources : t -> int array
(** Distinct sources over every label (the wildcard key set). Computed
    at build time. *)

val all_destinations : t -> int array

(** {2 TSR retrieval} *)

(** All retrieval functions accept {!Semantics.Query.any_label} as
    [lbl]: the result is the (freshly merged, coverage-free) union of
    that endpoint's runs across every label. *)

val tsr_out : t -> lbl:int -> src:int -> Tsr.t
(** R(l, src, ANY) with its LS-EC coverage when present. *)

val tsr_in : t -> lbl:int -> dst:int -> Tsr.t
(** R(l, *, dst). *)

val tsr_between : t -> lbl:int -> src:int -> dst:int -> Tsr.t
(** R(l, src, dst). *)

(** {2 Accounting} *)

val size_words : t -> int
val eci_size_words : t -> int
(** The ECI share of {!size_words}. *)

val eci_n_tuples : t -> int
(** Total coverage tuples across all ECIs (storage-redundancy metric). *)
