open Tgraph

type t = {
  edges : Edge.t Triejoin.Slice.t;
  coverage : Temporal.Coverage.t option;
}

let is_start_sorted slice =
  let n = Triejoin.Slice.length slice in
  let rec check i =
    i >= n
    || Edge.compare_by_start
         (Triejoin.Slice.get slice (i - 1))
         (Triejoin.Slice.get slice i)
       <= 0
       && check (i + 1)
  in
  n <= 1 || check 1

let make ?coverage edges =
  if not (is_start_sorted edges) then
    invalid_arg "Tsr.make: slice not sorted by start time";
  { edges; coverage }

let make_unchecked ?coverage edges = { edges; coverage }

let of_edges ?coverage edges =
  let edges = Array.copy edges in
  Array.sort Edge.compare_by_start edges;
  { edges = Triejoin.Slice.full edges; coverage }

let empty = { edges = Triejoin.Slice.empty; coverage = None }
let length tsr = Triejoin.Slice.length tsr.edges
let is_empty tsr = Triejoin.Slice.is_empty tsr.edges
let get tsr i = Triejoin.Slice.get tsr.edges i
let iter f tsr = Triejoin.Slice.iter f tsr.edges
let to_list tsr = Triejoin.Slice.to_list tsr.edges
let coverage tsr = tsr.coverage

let lower_bound_start tsr t =
  let lo = ref 0 and hi = ref (length tsr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Edge.ts (get tsr mid) < t then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound_start tsr t =
  let lo = ref 0 and hi = ref (length tsr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Edge.ts (get tsr mid) <= t then lo := mid + 1 else hi := mid
  done;
  !lo

let get_coverage_tuple tsr t =
  match tsr.coverage with
  | None -> None
  | Some c -> Temporal.Coverage.get_coverage_tuple c t

let to_relation tsr =
  let items = Array.init (length tsr) (fun i -> Edge.to_span (get tsr i)) in
  Temporal.Relation.of_sorted items

let pp fmt tsr =
  Format.fprintf fmt "@[<hov 1>tsr[";
  iter (fun e -> Format.fprintf fmt "%a@ " Edge.pp e) tsr;
  Format.fprintf fmt "]@]"
