(** A temporal selective relation R(l, s, d): a start-sorted run of edges
    sharing a label and zero, one or two endpoint constraints, optionally
    paired with its earliest-concurrent coverage (its ECI entry).

    TSRs are zero-copy slices into a TAI trie's edge table; they are the
    operand of LFTO. *)

type t

val make : ?coverage:Temporal.Coverage.t -> Tgraph.Edge.t Triejoin.Slice.t -> t
(** The slice must be start-sorted.
    @raise Invalid_argument otherwise. *)

val make_unchecked :
  ?coverage:Temporal.Coverage.t -> Tgraph.Edge.t Triejoin.Slice.t -> t
(** Trusted variant for slices handed out by a TAI trie (already sorted
    at build time): skips the linear sortedness check, which would
    otherwise dominate per-binding cost. *)

val of_edges : ?coverage:Temporal.Coverage.t -> Tgraph.Edge.t array -> t
(** Copies and sorts. *)

val empty : t
val length : t -> int
val is_empty : t -> bool
val get : t -> int -> Tgraph.Edge.t
val iter : (Tgraph.Edge.t -> unit) -> t -> unit
val to_list : t -> Tgraph.Edge.t list

val coverage : t -> Temporal.Coverage.t option
(** The attached ECI coverage, when the TAI was built with ECIs. *)

val lower_bound_start : t -> int -> int
(** First index whose edge starts at or after the timestamp. *)

val upper_bound_start : t -> int -> int
(** First index whose edge starts strictly after the timestamp. *)

val get_coverage_tuple : t -> int -> Temporal.Coverage.tuple option
(** The paper's [getCoverageTuple(R, t)]. [None] when no coverage is
    attached or the relation dies out before [t]. *)

val to_relation : t -> Temporal.Relation.t
(** The TSR as a payload relation (edge ids), for interoperability with
    the generic interval-join algorithms. *)

val pp : Format.formatter -> t -> unit
