open Semantics
open Tgraph

type lfto_mode = Basic | Optimized of Lfto_opt.config

type config = {
  mode : lfto_mode;
  allen : (int * Temporal.Allen.relation * int) list;
}

let default_config = { mode = Optimized Lfto_opt.all_on; allen = [] }
let basic_config = { mode = Basic; allen = [] }

type roots =
  | All_roots
  | Root_filter of (int -> bool)
  | Root_chunks of {
      candidates : int array;
      claim : unit -> (int * int) option;
    }

(* Key set per edge adjacent to the root pivot: sources of the label
   when the pivot is the edge source, destinations when it is the
   target; a self loop contributes both. Shared by the in-plan root
   leapfrog and [root_candidates]. *)
let root_key_sets tai pivot (step_edges : Query.edge array) =
  let sources_of lbl =
    if lbl = Query.any_label then Tai.all_sources tai else Tai.sources tai ~lbl
  in
  let destinations_of lbl =
    if lbl = Query.any_label then Tai.all_destinations tai
    else Tai.destinations tai ~lbl
  in
  Array.to_list step_edges
  |> List.concat_map (fun (e : Query.edge) ->
         let as_src =
           if e.Query.src_var = pivot then [ sources_of e.Query.lbl ] else []
         in
         let as_dst =
           if e.Query.dst_var = pivot then [ destinations_of e.Query.lbl ]
           else []
         in
         as_src @ as_dst)

let run ?stats ?(obs = Obs.Sink.null) ?per_step ?(roots = All_roots)
    ?(config = default_config) ?plan ?cost tai q ~emit =
  let min_duration = Query.min_duration q in
  let allen_cs = config.allen in
  List.iter
    (fun (i, _, j) ->
      if i < 0 || i >= Query.n_edges q || j < 0 || j >= Query.n_edges q then
        invalid_arg "Tsrjoin.run: Allen constraint references an edge out of range")
    allen_cs;
  (* Allen-constraint push-down: as soon as both edges of a constraint
     are assigned, a misclassified pair kills the whole subtree —
     equivalent to post-filtering complete matches, just earlier. *)
  let graph = Tai.graph tai in
  let allen_ok assignment =
    List.for_all
      (fun (i, rel, j) ->
        let ei = assignment.(i) and ej = assignment.(j) in
        ei < 0 || ej < 0
        || Temporal.Allen.classify
             (Edge.ivl (Graph.edge graph ei))
             (Edge.ivl (Graph.edge graph ej))
           = rel)
      allen_cs
  in
  let plan = match plan with Some p -> p | None -> Plan.build ?cost tai q in
  (match Plan.validate plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Tsrjoin.run: invalid plan: " ^ msg));
  let steps = Plan.steps plan in
  let n_steps = Array.length steps in
  (match per_step with
  | Some arr when Array.length arr <> n_steps ->
      invalid_arg "Tsrjoin.run: per_step array does not match the plan"
  | Some _ | None -> ());
  let step_stats i =
    match per_step with Some arr -> Some arr.(i) | None -> None
  in
  let bindings = Array.make (Query.n_vars q) (-1) in
  let assignment = Array.make (Query.n_edges q) (-1) in
  let qw = Query.window q in
  let tick tick_fn step_i =
    (match stats with Some s -> tick_fn s | None -> ());
    match step_stats step_i with Some s -> tick_fn s | None -> ()
  in
  let tick_binding step_i = tick Run_stats.tick_binding step_i in
  (* the global stats attribute the tuple to its plan level (the
     estimated-vs-actual feedback loop); step buckets keep their
     original flat counter *)
  let tick_intermediate step_i =
    (match stats with
    | Some s -> Run_stats.tick_level_intermediate s step_i
    | None -> ());
    match step_stats step_i with
    | Some s -> Run_stats.tick_intermediate s
    | None -> ()
  in
  let tick_result () =
    match stats with Some s -> Run_stats.tick_result s | None -> ()
  in
  (* seeks are global-only: step_profile keeps its original columns *)
  let tick_seek () =
    match stats with Some s -> Run_stats.tick_seek s | None -> ()
  in
  let on_seek () =
    tick_seek ();
    Obs.Sink.incr obs Obs.Phase.Leapfrog_seek
  in
  let on_next () =
    tick_seek ();
    Obs.Sink.incr obs Obs.Phase.Leapfrog_next
  in
  (* one scratch context per plan depth: an outer sweep is suspended
     (mid-emit) while inner steps run their own LFTO, so contexts must
     not be shared across depths; within a depth, calls are sequential *)
  let lfto_ctxs = Array.init n_steps (fun _ -> Lfto_opt.create_context ()) in
  let run_lfto step_i tsrs ~ws ~we ~emit_combo =
    (* when profiling, LFTO counters (scanned, enum_steps) land in the
       step's bucket and are merged into the global stats afterwards *)
    let lfto_stats =
      match step_stats step_i with Some s -> Some s | None -> stats
    in
    let before_scanned, before_enum =
      match (per_step, lfto_stats) with
      | Some _, Some s -> (s.Run_stats.scanned, s.Run_stats.enum_steps)
      | _ -> (0, 0)
    in
    (match config.mode with
    | Basic ->
        Lfto.run ?stats:lfto_stats ~obs ~tsrs ~ws ~we ~emit:emit_combo ()
    | Optimized cfg ->
        Lfto_opt.run ?stats:lfto_stats ~obs ~ctx:lfto_ctxs.(step_i)
          ~config:cfg ~tsrs ~ws ~we ~emit:emit_combo ());
    match (per_step, stats, lfto_stats) with
    | Some _, Some g, Some s ->
        g.Run_stats.scanned <-
          g.Run_stats.scanned + s.Run_stats.scanned - before_scanned;
        Run_stats.add_enum_steps g (s.Run_stats.enum_steps - before_enum)
    | _ -> ()
  in
  (* TSR of one step edge, with the pivot already bound: fully bound
     when both endpoints are (including self loops), half bound
     otherwise. *)
  let tsr_for_edge (e : Query.edge) =
    let sb = bindings.(e.Query.src_var) and db = bindings.(e.Query.dst_var) in
    if sb >= 0 && db >= 0 then
      Tai.tsr_between tai ~lbl:e.Query.lbl ~src:sb ~dst:db
    else if sb >= 0 then Tai.tsr_out tai ~lbl:e.Query.lbl ~src:sb
    else Tai.tsr_in tai ~lbl:e.Query.lbl ~dst:db
  in
  let rec exec step_i life valid =
    if step_i = n_steps then begin
      tick_result ();
      emit (Match_result.make (Array.copy assignment) life)
    end
    else begin
      let step = steps.(step_i) in
      let pivot = step.Plan.pivot in
      let step_edges = step.Plan.edges in
      let k = Array.length step_edges in
      let handle_binding vb =
        tick_binding step_i;
        (* Bind the pivot for TSR retrieval; component roots need it
           explicitly. *)
        let pivot_was = bindings.(pivot) in
        bindings.(pivot) <- vb;
        let tsrs =
          Obs.Sink.span obs Obs.Phase.Tai_probe (fun () ->
              Array.map
                (fun e ->
                  tick_seek ();
                  tsr_for_edge e)
                step_edges)
        in
        if Array.exists Tsr.is_empty tsrs then bindings.(pivot) <- pivot_was
        else begin
          let emit_combo members combo_life =
            (* Endpoint-consistency check + new-variable binding; two
               step edges may share an unbound endpoint. *)
            let newly = ref [] in
            let ok = ref true in
            for j = 0 to k - 1 do
              if !ok then begin
                let qe = step_edges.(j) in
                let ge = members.(j) in
                let check_or_bind var vertex =
                  if bindings.(var) = -1 then begin
                    bindings.(var) <- vertex;
                    newly := var :: !newly
                  end
                  else if bindings.(var) <> vertex then ok := false
                in
                check_or_bind qe.Query.src_var (Edge.src ge);
                if !ok then check_or_bind qe.Query.dst_var (Edge.dst ge)
              end
            done;
            if !ok then begin
              (* combo_life individually overlaps [valid] per member and
                 is jointly non-empty, hence both intersections below are
                 non-empty (see DESIGN.md §5). *)
              let life' = Temporal.Interval.intersect_exn life combo_life in
              (* durable-match push-down: lifespans only shrink, so a
                 partial already below the duration floor is dead *)
              if Temporal.Interval.length life' >= min_duration then begin
              let valid' = Temporal.Interval.intersect_exn valid combo_life in
              for j = 0 to k - 1 do
                assignment.(step_edges.(j).Query.idx) <- Edge.id members.(j)
              done;
              if allen_cs = [] || allen_ok assignment then begin
                tick_intermediate step_i;
                exec (step_i + 1) life' valid'
              end;
              for j = 0 to k - 1 do
                assignment.(step_edges.(j).Query.idx) <- -1
              done
              end
            end;
            List.iter (fun var -> bindings.(var) <- -1) !newly
          in
          run_lfto step_i tsrs ~ws:(Temporal.Interval.ts valid)
            ~we:(Temporal.Interval.te valid) ~emit_combo;
          bindings.(pivot) <- pivot_was
        end
      in
      if step.Plan.produce_binding then begin
        match roots with
        | Root_chunks { candidates; claim } when step_i = 0 ->
            (* parallel evaluation: the first leapfrog was materialized
               once by the coordinator ({!root_candidates}); workers pull
               disjoint index ranges until the shared cursor runs dry *)
            let rec drain () =
              match claim () with
              | None -> ()
              | Some (lo, hi) ->
                  let lo = max 0 lo and hi = min hi (Array.length candidates) in
                  for i = lo to hi - 1 do
                    handle_binding candidates.(i)
                  done;
                  drain ()
            in
            drain ()
        | All_roots | Root_filter _ | Root_chunks _ ->
            let keep =
              match roots with
              | Root_filter f when step_i = 0 -> f
              | All_roots | Root_filter _ | Root_chunks _ -> fun _ -> true
            in
            let key_sets = root_key_sets tai pivot step_edges in
            let iters =
              Array.of_list
                (List.map Triejoin.Key_iter.of_sorted_array_unchecked key_sets)
            in
            let lf =
              Obs.Sink.span obs Obs.Phase.Leapfrog_open (fun () ->
                  Triejoin.Leapfrog.create ~on_seek ~on_next iters)
            in
            Triejoin.Leapfrog.iter
              (fun vb -> if keep vb then handle_binding vb)
              lf
      end
      else begin
        let vb = bindings.(pivot) in
        assert (vb >= 0);
        handle_binding vb
      end
    end
  in
  exec 0 (Temporal.Interval.make min_int max_int) qw

let evaluate ?stats ?obs ?config ?plan ?cost tai q =
  let acc = ref [] in
  run ?stats ?obs ?config ?plan ?cost tai q ~emit:(fun m -> acc := m :: !acc);
  List.rev !acc

let count ?stats ?obs ?config ?plan ?cost tai q =
  let n = ref 0 in
  run ?stats ?obs ?config ?plan ?cost tai q ~emit:(fun _ -> incr n);
  !n

type step_profile = {
  step : Plan.step;
  bindings : int;
  partials : int;
  scanned : int;
  enum_steps : int;
}

let profile ?config ?plan ?cost tai q =
  let plan = match plan with Some p -> p | None -> Plan.build ?cost tai q in
  let n_steps = Array.length (Plan.steps plan) in
  let per_step = Array.init n_steps (fun _ -> Run_stats.create ()) in
  let results = ref 0 in
  run ?config ~plan ~per_step tai q ~emit:(fun _ -> incr results);
  let profiles =
    Array.mapi
      (fun i s ->
        {
          step = (Plan.steps plan).(i);
          bindings = s.Run_stats.bindings;
          partials = s.Run_stats.intermediate;
          scanned = s.Run_stats.scanned;
          enum_steps = s.Run_stats.enum_steps;
        })
      per_step
  in
  (profiles, !results)

let pp_profile fmt (profiles, results) =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i p ->
      Format.fprintf fmt "%s@ "
        (Printf.sprintf
           "step %d: pivot x%d%s | bindings %d | partial matches %d | scanned %d | enum steps %d"
           i p.step.Plan.pivot
           (if p.step.Plan.produce_binding then " (leapfrog)" else "")
           p.bindings p.partials p.scanned p.enum_steps))
    profiles;
  Format.fprintf fmt "complete matches: %d@]" results

let root_candidates ?stats ?(obs = Obs.Sink.null) ?plan ?cost tai q =
  let plan = match plan with Some p -> p | None -> Plan.build ?cost tai q in
  (match Plan.validate plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Tsrjoin.root_candidates: invalid plan: " ^ msg));
  let steps = Plan.steps plan in
  let step = steps.(0) in
  if not step.Plan.produce_binding then
    invalid_arg "Tsrjoin.root_candidates: first plan step is not a leapfrog";
  let tick_seek () =
    match stats with Some s -> Run_stats.tick_seek s | None -> ()
  in
  let on_seek () =
    tick_seek ();
    Obs.Sink.incr obs Obs.Phase.Leapfrog_seek
  in
  let on_next () =
    tick_seek ();
    Obs.Sink.incr obs Obs.Phase.Leapfrog_next
  in
  let key_sets = root_key_sets tai step.Plan.pivot step.Plan.edges in
  let iters =
    Array.of_list (List.map Triejoin.Key_iter.of_sorted_array_unchecked key_sets)
  in
  let lf =
    Obs.Sink.span obs Obs.Phase.Leapfrog_open (fun () ->
        Triejoin.Leapfrog.create ~on_seek ~on_next iters)
  in
  let acc = ref [] in
  Triejoin.Leapfrog.iter (fun vb -> acc := vb :: !acc) lf;
  let arr = Array.of_list !acc in
  (* leapfrog yields ascending keys; the fold above reversed them *)
  let n = Array.length arr in
  for i = 0 to (n / 2) - 1 do
    let tmp = arr.(i) in
    arr.(i) <- arr.(n - 1 - i);
    arr.(n - 1 - i) <- tmp
  done;
  arr
