(** The Leapfrog TSRJoin engine: executes a {!Plan.t} depth-first.

    Per plan step, pivot bindings come either from leapfrog intersection
    of TAI key sets (component roots) or from the propagated partial
    match; LFTO then joins the pivot's bound r-TSRs inside the current
    valid window, extending the partial match with edge bindings and a
    narrowed lifespan (partial match production + propagation).

    The valid window handed to LFTO is the propagated lifespan clipped
    to the query window — the clip guarantees every complete match's
    lifespan overlaps the query window (the paper's example windows are
    always inside the query window, where the two coincide). *)

type lfto_mode = Basic | Optimized of Lfto_opt.config

type config = { mode : lfto_mode }

val default_config : config
(** [Optimized Lfto_opt.all_on]. *)

val basic_config : config

val run :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?per_step:Semantics.Run_stats.t array ->
  ?root_slice:int * int ->
  ?config:config ->
  ?plan:Plan.t ->
  ?cost:Plan.cost_model ->
  Tai.t ->
  Semantics.Query.t ->
  emit:(Semantics.Match_result.t -> unit) ->
  unit
(** Evaluates the query, calling [emit] once per complete match. A
    supplied [plan] must be for (a query structurally equal to) the
    query. [root_slice = (i, n)] restricts the first leapfrog to its
    [i]-th round-robin share of [n] (the {!run_parallel} partitioning).
    Raises {!Semantics.Run_stats.Limit_exceeded} when the stats budget
    runs out. *)

val evaluate :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?config:config ->
  ?plan:Plan.t ->
  ?cost:Plan.cost_model ->
  Tai.t ->
  Semantics.Query.t ->
  Semantics.Match_result.t list

val count :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?config:config ->
  ?plan:Plan.t ->
  ?cost:Plan.cost_model ->
  Tai.t ->
  Semantics.Query.t ->
  int

val run_parallel :
  ?domains:int ->
  ?config:config ->
  ?plan:Plan.t ->
  ?cost:Plan.cost_model ->
  Tai.t ->
  Semantics.Query.t ->
  Semantics.Match_result.t list
(** Evaluates across OCaml 5 domains (default 4) by partitioning the
    first leapfrog's candidate bindings round-robin; sound because every
    complete match descends from exactly one root binding, and the TAI
    is immutable. Result order is deterministic given [domains] but
    differs from the sequential order; budgets/stats are not supported
    here (wrap per-domain runs manually if needed). *)

(** {2 Profiling (EXPLAIN ANALYZE)} *)

type step_profile = {
  step : Plan.step;
  bindings : int;  (** pivot bindings examined at this step *)
  partials : int;  (** partial matches this step produced *)
  scanned : int;  (** TSR edges its LFTO sweeps read *)
  enum_steps : int;  (** active-list elements visited *)
}

val profile :
  ?config:config ->
  ?plan:Plan.t ->
  ?cost:Plan.cost_model ->
  Tai.t ->
  Semantics.Query.t ->
  step_profile array * int
(** Executes the query collecting per-plan-step counters; also returns
    the complete-match count. *)

val pp_profile : Format.formatter -> step_profile array * int -> unit
