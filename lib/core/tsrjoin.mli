(** The Leapfrog TSRJoin engine: executes a {!Plan.t} depth-first.

    Per plan step, pivot bindings come either from leapfrog intersection
    of TAI key sets (component roots) or from the propagated partial
    match; LFTO then joins the pivot's bound r-TSRs inside the current
    valid window, extending the partial match with edge bindings and a
    narrowed lifespan (partial match production + propagation).

    The valid window handed to LFTO is the propagated lifespan clipped
    to the query window — the clip guarantees every complete match's
    lifespan overlaps the query window (the paper's example windows are
    always inside the query window, where the two coincide). *)

type lfto_mode = Basic | Optimized of Lfto_opt.config

type config = {
  mode : lfto_mode;
  allen : (int * Temporal.Allen.relation * int) list;
      (** Allen constraints between query edges (by edge index), pruned
          as soon as both edges of a constraint are bound — equivalent
          to post-filtering complete matches on
          [Temporal.Allen.classify], just earlier in the join tree. *)
}

val default_config : config
(** [Optimized Lfto_opt.all_on], no Allen constraints. *)

val basic_config : config

type roots =
  | All_roots  (** evaluate every first-leapfrog binding (the default) *)
  | Root_filter of (int -> bool)
      (** evaluate only root bindings the predicate accepts; the first
          leapfrog still runs in full (its seeks are charged here) *)
  | Root_chunks of {
      candidates : int array;
      claim : unit -> (int * int) option;
    }
      (** parallel evaluation: skip the first leapfrog entirely and
          instead process [candidates.(lo..hi-1)] for every [(lo, hi)]
          index range [claim] hands out, until it returns [None].
          [candidates] must come from {!root_candidates} on the same
          plan; [claim] is typically a shared atomic cursor so several
          domains running the same plan drain disjoint chunks. *)

val run :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?per_step:Semantics.Run_stats.t array ->
  ?roots:roots ->
  ?config:config ->
  ?plan:Plan.t ->
  ?cost:Plan.cost_model ->
  Tai.t ->
  Semantics.Query.t ->
  emit:(Semantics.Match_result.t -> unit) ->
  unit
(** Evaluates the query, calling [emit] once per complete match. A
    supplied [plan] must be for (a query structurally equal to) the
    query. [roots] restricts which first-leapfrog bindings are explored
    (see {!roots}); complete matches partition over root bindings, so
    any partition of the root set yields a partition of the matches.
    Raises {!Semantics.Run_stats.Limit_exceeded} when the stats budget
    runs out. *)

val evaluate :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?config:config ->
  ?plan:Plan.t ->
  ?cost:Plan.cost_model ->
  Tai.t ->
  Semantics.Query.t ->
  Semantics.Match_result.t list

val count :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?config:config ->
  ?plan:Plan.t ->
  ?cost:Plan.cost_model ->
  Tai.t ->
  Semantics.Query.t ->
  int

val root_candidates :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?plan:Plan.t ->
  ?cost:Plan.cost_model ->
  Tai.t ->
  Semantics.Query.t ->
  int array
(** Materializes the first leapfrog's candidate bindings, in ascending
    order — the input to {!roots.Root_chunks}. Seeks are ticked into
    [stats]/[obs] exactly as {!run} would, so a parallel run's merged
    counters match a sequential run's. The multicore driver lives in
    [Exec.Parallel] (lib/exec); this stays single-domain. *)

(** {2 Profiling (EXPLAIN ANALYZE)} *)

type step_profile = {
  step : Plan.step;
  bindings : int;  (** pivot bindings examined at this step *)
  partials : int;  (** partial matches this step produced *)
  scanned : int;  (** TSR edges its LFTO sweeps read *)
  enum_steps : int;  (** active-list elements visited *)
}

val profile :
  ?config:config ->
  ?plan:Plan.t ->
  ?cost:Plan.cost_model ->
  Tai.t ->
  Semantics.Query.t ->
  step_profile array * int
(** Executes the query collecting per-plan-step counters; also returns
    the complete-match count. *)

val pp_profile : Format.formatter -> step_profile array * int -> unit
