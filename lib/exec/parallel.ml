open Semantics
open Tcsq_core

(* Intra-query parallelism for TSRJoin. Soundness rests on root-binding
   independence: every complete match descends from exactly one binding
   of the first leapfrog, so any partition of the root candidates is a
   partition of the matches. The coordinator materializes the root
   candidates once (charging their seeks to the caller's stats, exactly
   as a sequential run would), then workers pull index-range chunks
   from a shared atomic cursor — dynamic work-stealing, so one heavy
   root binding no longer serializes a whole statically-dealt lane.

   Budgets and deadlines stay global: each worker's [Run_stats] carries
   the caller's deadline, result emission passes through one atomic
   gate sized by [max_results], intermediate-tuple deltas are pushed
   into a shared total on the deadline-check cadence, and the first
   failure raises a shared stop flag that every other worker observes
   within [Run_stats.deadline_check_interval] counter ticks. *)

(* raised inside a worker to unwind when another worker failed first;
   never escapes this module *)
exception Cancelled

(* ---- process-wide shared pool ------------------------------------- *)

let global_pool : Pool.t option ref = ref None
let global_mutex = Mutex.create ()

let shared_pool ~at_least =
  let at_least = max 1 at_least in
  Mutex.lock global_mutex;
  let p =
    match !global_pool with
    | Some p when Pool.workers p >= at_least -> p
    | prev ->
        (* grow by replacement: drain-and-join the old pool, then
           create a bigger one. Rare (pool sizes are sticky). *)
        (match prev with Some p -> Pool.shutdown p | None -> ());
        let p = Pool.create ~workers:at_least ~max_depth:(2 * at_least) in
        global_pool := Some p;
        p
  in
  Mutex.unlock global_mutex;
  p

(* ---- core driver --------------------------------------------------- *)

(* Per-worker callbacks let [run] (streaming, buffered emit) and
   [evaluate] (order-reconstructing collection) share the machinery:
   [worker_claim w lo] fires when worker [w] claims the chunk starting
   at candidate index [lo]; [worker_emit w m] delivers a match that
   already passed the global result gate; [worker_done w] runs exactly
   once per worker, after its run ended (normally or not). *)
let exec_core ~pool ~domains ~chunk ~stats ~obs ~config ~plan tai q
    ~worker_claim ~worker_emit ~worker_done =
  let candidates = Tsrjoin.root_candidates ?stats ~obs ~plan tai q in
  let n = Array.length candidates in
  let limits =
    match stats with Some s -> s.Run_stats.limits | None -> Run_stats.no_limits
  in
  let deadline =
    match stats with Some s -> s.Run_stats.deadline | None -> None
  in
  let dstats =
    Array.init domains (fun _ ->
        let d = Run_stats.create () in
        Run_stats.set_deadline d deadline;
        d)
  in
  let dobs = Array.init domains (fun _ -> Obs.Sink.child obs) in
  let stop = Atomic.make false in
  let first_err = ref None in
  let err_mutex = Mutex.create () in
  let record_err e =
    Atomic.set stop true;
    Mutex.lock err_mutex;
    (match !first_err with None -> first_err := Some e | Some _ -> ());
    Mutex.unlock err_mutex
  in
  (* result budget: an atomic emission gate shared by all workers, so
     exactly [max_results] matches are emitted before the raise — the
     same cut a sequential run makes *)
  let max_results = limits.Run_stats.max_results in
  let gate_result =
    if max_results = max_int then fun () -> ()
    else begin
      let emitted = Atomic.make 0 in
      fun () ->
        if Atomic.fetch_and_add emitted 1 >= max_results then
          raise (Run_stats.Limit_exceeded "result budget exhausted")
    end
  in
  (* intermediate budget: per-domain counts pushed as deltas into a
     shared total on the check cadence; overshoot is bounded by
     domains * deadline_check_interval tuples *)
  let max_intermediate = limits.Run_stats.max_intermediate in
  let g_intermediate = Atomic.make 0 in
  let make_check ds =
    let pushed = ref 0 in
    fun () ->
      if Atomic.get stop then raise Cancelled;
      if max_intermediate < max_int then begin
        let cur = ds.Run_stats.intermediate in
        let delta = cur - !pushed in
        if delta > 0 then begin
          pushed := cur;
          if Atomic.fetch_and_add g_intermediate delta + delta > max_intermediate
          then
            raise (Run_stats.Limit_exceeded "intermediate-tuple budget exhausted")
        end
      end
  in
  let cursor = Atomic.make 0 in
  let claim_chunk () =
    let rec loop () =
      let lo = Atomic.get cursor in
      if lo >= n then None
      else begin
        let size =
          match chunk with
          | Some c -> max 1 c
          | None -> max 1 ((n - lo) / (8 * domains))
        in
        let hi = min n (lo + size) in
        if Atomic.compare_and_set cursor lo hi then Some (lo, hi) else loop ()
      end
    in
    loop ()
  in
  let do_work w =
    let ds = dstats.(w) in
    Run_stats.set_on_check ds (Some (make_check ds));
    let claim () =
      if Atomic.get stop then None
      else
        match claim_chunk () with
        | Some (lo, _) as c ->
            worker_claim w lo;
            c
        | None -> None
    in
    (match
       Tsrjoin.run ~stats:ds ~obs:dobs.(w) ?config ~plan
         ~roots:(Tsrjoin.Root_chunks { candidates; claim })
         tai q
         ~emit:(fun m ->
           gate_result ();
           worker_emit w m)
     with
    | () -> ()
    | exception Cancelled -> ()
    | exception e -> record_err e);
    Run_stats.set_on_check ds None;
    match worker_done w with () -> () | exception e -> record_err e
  in
  (* latch: [pending] is set to the full helper count *before* any
     helper can finish, then lowered by whatever the pool sheds *)
  let latch_mutex = Mutex.create () in
  let latch_done = Condition.create () in
  let pending = ref 0 in
  let helper w () =
    do_work w;
    Mutex.lock latch_mutex;
    decr pending;
    if !pending = 0 then Condition.broadcast latch_done;
    Mutex.unlock latch_mutex
  in
  let helpers = List.init (domains - 1) (fun i -> helper (i + 1)) in
  Mutex.lock latch_mutex;
  pending := domains - 1;
  Mutex.unlock latch_mutex;
  let accepted = Pool.submit_if_idle pool helpers in
  Mutex.lock latch_mutex;
  pending := !pending - (domains - 1 - accepted);
  Mutex.unlock latch_mutex;
  do_work 0;
  Mutex.lock latch_mutex;
  while !pending > 0 do
    Condition.wait latch_done latch_mutex
  done;
  Mutex.unlock latch_mutex;
  (* merge before re-raising: a truncated run still reports the work it
     did, matching sequential budget semantics *)
  (match stats with
  | Some s -> Array.iter (fun d -> Run_stats.merge_into s d) dstats
  | None -> ());
  Array.iter (fun d -> Obs.Sink.merge_into obs d) dobs;
  match !first_err with Some e -> raise e | None -> ()

(* A plan whose first step is not a leapfrog (or a single-domain call)
   runs sequentially on the caller; parallel machinery engages only
   when it can actually partition roots. *)
let resolve ?pool ?domains ?plan ?cost tai q =
  let domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Parallel: need >= 1 domain";
        d
    | None -> Domain.recommended_domain_count ()
  in
  let plan = match plan with Some p -> p | None -> Plan.build ?cost tai q in
  let steps = Plan.steps plan in
  let parallelizable =
    domains > 1 && Array.length steps > 0 && steps.(0).Plan.produce_binding
  in
  let pool =
    if not parallelizable then None
    else
      Some
        (match pool with
        | Some p -> p
        | None -> shared_pool ~at_least:(domains - 1))
  in
  (domains, plan, pool)

let run ?pool ?domains ?chunk ?stats ?(obs = Obs.Sink.null) ?config ?plan ?cost
    tai q ~emit =
  let domains, plan, pool = resolve ?pool ?domains ?plan ?cost tai q in
  match pool with
  | None -> Tsrjoin.run ?stats ~obs ?config ~plan tai q ~emit
  | Some pool ->
      (* streaming: per-worker buffers flushed under one mutex, so the
         caller's [emit] is never entered concurrently *)
      let emit_mutex = Mutex.create () in
      let bufs = Array.make domains [] in
      let fill = Array.make domains 0 in
      let flush w =
        if fill.(w) > 0 then begin
          let ms = List.rev bufs.(w) in
          bufs.(w) <- [];
          fill.(w) <- 0;
          Mutex.lock emit_mutex;
          match List.iter emit ms with
          | () -> Mutex.unlock emit_mutex
          | exception e ->
              Mutex.unlock emit_mutex;
              raise e
        end
      in
      exec_core ~pool ~domains ~chunk ~stats ~obs ~config ~plan tai q
        ~worker_claim:(fun _ _ -> ())
        ~worker_emit:(fun w m ->
          bufs.(w) <- m :: bufs.(w);
          fill.(w) <- fill.(w) + 1;
          if fill.(w) >= 64 then flush w)
        ~worker_done:flush

let evaluate ?pool ?domains ?chunk ?stats ?(obs = Obs.Sink.null) ?config ?plan
    ?cost tai q =
  let domains, plan, pool = resolve ?pool ?domains ?plan ?cost tai q in
  match pool with
  | None -> Tsrjoin.evaluate ?stats ~obs ?config ~plan tai q
  | Some pool ->
      (* order reconstruction: each chunk is one worker's sequential
         sweep over an ascending candidate range, so tagging every
         chunk's matches with its start index and sorting by it
         restores the exact sequential emission order *)
      let res_mutex = Mutex.create () in
      let done_chunks = ref [] in
      let cur_lo = Array.make domains (-1) in
      let cur = Array.make domains [] in
      let close w =
        if cur_lo.(w) >= 0 then begin
          let finished = (cur_lo.(w), List.rev cur.(w)) in
          cur_lo.(w) <- -1;
          cur.(w) <- [];
          Mutex.lock res_mutex;
          done_chunks := finished :: !done_chunks;
          Mutex.unlock res_mutex
        end
      in
      exec_core ~pool ~domains ~chunk ~stats ~obs ~config ~plan tai q
        ~worker_claim:(fun w lo ->
          close w;
          cur_lo.(w) <- lo)
        ~worker_emit:(fun w m -> cur.(w) <- m :: cur.(w))
        ~worker_done:close;
      !done_chunks
      |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      |> List.concat_map snd

let count ?pool ?domains ?chunk ?stats ?obs ?config ?plan ?cost tai q =
  let n = Atomic.make 0 in
  run ?pool ?domains ?chunk ?stats ?obs ?config ?plan ?cost tai q
    ~emit:(fun _ -> Atomic.incr n);
  Atomic.get n
