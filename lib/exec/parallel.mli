(** Work-stealing multicore TSRJoin.

    Sound because complete matches partition over first-leapfrog root
    bindings (each match descends from exactly one) and the TAI is
    immutable. The coordinator materializes the root candidates once —
    charging their seeks/spans to the caller's stats and sink exactly
    as the sequential engine would — and workers then claim dynamic
    index-range chunks from an atomic cursor (adaptive size
    [max 1 (remaining / (8 * domains))]), so skewed root bindings are
    load-balanced rather than dealt round-robin.

    First-class semantics, unlike the old [Tsrjoin.run_parallel]:
    {ul
    {- [?stats] — per-domain {!Semantics.Run_stats.t} merged into the
       caller's; deterministic counters (results, intermediate,
       bindings, scanned, enum_steps, seeks) equal a sequential run's.}
    {- budgets/deadlines — [max_results] is enforced by a global
       atomic emission gate (exactly the sequential cut),
       [max_intermediate] by shared delta pushes on the
       deadline-check cadence (bounded overshoot), and the caller's
       deadline by every domain; the first failure cooperatively
       cancels all workers within one check interval.}
    {- [?obs] — per-domain child sinks merged back into the caller's
       (counts exact; event timelines translated onto one origin).}
    {- result order — {!evaluate} reconstructs the exact sequential
       order from chunk start indices.}}

    Helper domains come from a {!Pool.t} ([?pool], defaulting to the
    process-wide {!shared_pool}) via [Pool.submit_if_idle]: only idle
    workers are enlisted, so a busy server worker can fan out into its
    own pool without deadlock, and a loaded pool gracefully degrades
    toward single-domain execution (the coordinator always runs on the
    calling thread and drains whatever chunks helpers don't). *)

val run :
  ?pool:Pool.t ->
  ?domains:int ->
  ?chunk:int ->
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?config:Tcsq_core.Tsrjoin.config ->
  ?plan:Tcsq_core.Plan.t ->
  ?cost:Tcsq_core.Plan.cost_model ->
  Tcsq_core.Tai.t ->
  Semantics.Query.t ->
  emit:(Semantics.Match_result.t -> unit) ->
  unit
(** Streaming evaluation across [domains] OCaml 5 domains (default
    [Domain.recommended_domain_count ()]; raises [Invalid_argument] if
    < 1). [emit] is called from worker context but never concurrently
    (per-domain buffers are flushed under one mutex); emission order
    across domains is nondeterministic — use {!evaluate} for the
    sequential order. [chunk] pins the steal-chunk size (tests);
    default is adaptive. With [domains = 1], or when the plan's first
    step is not a leapfrog, this is exactly [Tsrjoin.run]. Raises
    [Run_stats.Limit_exceeded] / [Deadline_exceeded] like the
    sequential engine; the caller's stats then hold the merged counts
    of the work actually done. *)

val evaluate :
  ?pool:Pool.t ->
  ?domains:int ->
  ?chunk:int ->
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?config:Tcsq_core.Tsrjoin.config ->
  ?plan:Tcsq_core.Plan.t ->
  ?cost:Tcsq_core.Plan.cost_model ->
  Tcsq_core.Tai.t ->
  Semantics.Query.t ->
  Semantics.Match_result.t list
(** Like {!run} but collects the matches in the {e exact sequential
    emission order}, reconstructed by sorting per-chunk result runs by
    their chunk's start index. *)

val count :
  ?pool:Pool.t ->
  ?domains:int ->
  ?chunk:int ->
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?config:Tcsq_core.Tsrjoin.config ->
  ?plan:Tcsq_core.Plan.t ->
  ?cost:Tcsq_core.Plan.cost_model ->
  Tcsq_core.Tai.t ->
  Semantics.Query.t ->
  int

val shared_pool : at_least:int -> Pool.t
(** The process-wide helper pool, grown (by drain-and-replace) to hold
    at least [at_least] workers. Callers without their own pool get
    this one; it is never shut down implicitly. *)
