(* Bounded worker-domain pool: a fixed set of domains drains a
   mutex-protected FIFO admission queue. One pool serves both the
   server's per-request concurrency and [Parallel]'s intra-query
   helpers — domains are expensive to spawn, so they are created once
   and reused across queries.

   Liveness discipline: jobs submitted here must never block on work
   that only another pool worker can perform. [Parallel] respects this
   by keeping the coordinator out of the pool (it runs on the caller)
   and by sizing helper fan-out with [submit_if_idle], which only
   admits jobs an *idle* worker can pick up immediately — so a busy
   worker coordinating a query can fan out into the same pool without
   risk of deadlock. *)

type job = unit -> unit

type t = {
  jobs : job Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  max_depth : int;
  n_workers : int;
  mutable busy : int;  (* workers currently running a job *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  dropped : int Atomic.t;  (* jobs that died with an unhandled exception *)
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.jobs && not t.stopping do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.jobs then Mutex.unlock t.mutex (* stopping, drained *)
  else begin
    let job = Queue.pop t.jobs in
    t.busy <- t.busy + 1;
    Mutex.unlock t.mutex;
    (* jobs do their own error handling; an exception reaching here is a
       dropped failure — count it so operators can see it (exposed as
       pool_dropped_exceptions in the server metrics). Resource
       exhaustion is not survivable state: re-raise it and let the
       domain die loudly rather than limp on. *)
    let fatal =
      match job () with
      | () -> None
      | exception ((Stack_overflow | Out_of_memory) as e) -> Some e
      | exception _ ->
          Atomic.incr t.dropped;
          None
    in
    Mutex.lock t.mutex;
    t.busy <- t.busy - 1;
    Mutex.unlock t.mutex;
    match fatal with Some e -> raise e | None -> worker_loop t
  end

let create ~workers ~max_depth =
  if workers < 1 then invalid_arg "Pool.create: need >= 1 worker";
  if max_depth < 1 then invalid_arg "Pool.create: need >= 1 queue slot";
  let t =
    {
      jobs = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      max_depth;
      n_workers = workers;
      busy = 0;
      stopping = false;
      domains = [];
      dropped = Atomic.make 0;
    }
  in
  t.domains <-
    List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

(* [true] if accepted; [false] if shed (queue full or shutting down) *)
let submit t job =
  Mutex.lock t.mutex;
  let accepted = (not t.stopping) && Queue.length t.jobs < t.max_depth in
  if accepted then begin
    Queue.push job t.jobs;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.mutex;
  accepted

(* Admits a prefix of [jobs] bounded by the number of workers that are
   idle right now (neither running a job nor already spoken for by a
   queued one), so every accepted job starts without waiting on any
   running job to finish. Returns the number accepted. *)
let submit_if_idle t jobs =
  Mutex.lock t.mutex;
  let capacity =
    if t.stopping then 0
    else max 0 (t.n_workers - t.busy - Queue.length t.jobs)
  in
  let accepted = ref 0 in
  List.iteri
    (fun i job ->
      if i < capacity then begin
        Queue.push job t.jobs;
        Condition.signal t.nonempty;
        incr accepted
      end)
    jobs;
  Mutex.unlock t.mutex;
  !accepted

let depth t =
  Mutex.lock t.mutex;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  n

let workers t = t.n_workers

let idle_workers t =
  Mutex.lock t.mutex;
  let n =
    if t.stopping then 0
    else max 0 (t.n_workers - t.busy - Queue.length t.jobs)
  in
  Mutex.unlock t.mutex;
  n

let dropped_exceptions t = Atomic.get t.dropped

(* Stops admission, lets the workers drain what was already accepted,
   and joins them. Idempotent. *)
let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []
