(** A reusable pool of worker domains behind a bounded FIFO queue.

    One pool type serves two consumers: the query server's per-request
    concurrency ([submit] with load shedding) and the intra-query
    parallel driver's helper fan-out ([submit_if_idle], which never
    over-commits). Domains are created once and reused — a query pays
    no [Domain.spawn] cost.

    Jobs must not block on work only another pool worker can run;
    under that discipline [submit_if_idle]'s idle-capacity bound makes
    fan-out from within a pool worker deadlock-free. *)

type t

val create : workers:int -> max_depth:int -> t
(** [workers] domains draining a queue of at most [max_depth] pending
    jobs. Raises [Invalid_argument] unless both are >= 1. *)

val submit : t -> (unit -> unit) -> bool
(** Non-blocking admission: [false] means shed (queue full or shutting
    down) — the caller degrades (e.g. answers "overloaded") instead of
    stalling. A job's unhandled exceptions are counted in
    {!dropped_exceptions}, except [Stack_overflow]/[Out_of_memory],
    which kill the worker domain (surfaced at {!shutdown}). *)

val submit_if_idle : t -> (unit -> unit) list -> int
(** Admits the longest prefix of the jobs that currently-idle workers
    can start immediately; returns how many were accepted (possibly
    0). Used for intra-query helpers: a helper that would have to wait
    behind running jobs is worthless (the coordinator drains the work
    itself) and, submitted from a pool worker, a deadlock risk. *)

val depth : t -> int
(** Queued (not yet started) jobs. *)

val workers : t -> int
(** Pool size as given to {!create}. *)

val idle_workers : t -> int
(** Workers neither running a job nor claimed by a queued one; 0 when
    shutting down. A momentary reading — only a bound, not a promise. *)

val dropped_exceptions : t -> int
(** Jobs so far that died with an unhandled (non-fatal) exception. *)

val shutdown : t -> unit
(** Stops admission, drains accepted jobs, joins the domains.
    Idempotent. *)
