(* Fixed-size log-bucketed latency histogram. 9 decades (1e-6 s .. 1e3 s)
   at 25 sub-buckets per decade — growth factor 10^(1/25) ≈ 1.0965 — plus
   an underflow and an overflow counter: 227 ints total, O(1) record,
   O(1) memory regardless of sample count (replacing the server's
   unbounded latency list).

   Quantiles walk the cumulative counts to the target rank and report the
   geometric midpoint of the landing bucket: the reported value is within
   a factor sqrt(10^(1/25)) ≈ 1.047 of the true sample, i.e. a relative
   error below 5% (we document and test ≤ 10%) for samples inside the
   bucketed range. Count, sum and mean are exact. *)

let decades = 9
let sub = 25
let n_buckets = decades * sub (* 225 *)
let lo_exp = -6 (* smallest edge: 1e-6 s *)

(* bucket edges; bucket b covers [edges.(b), edges.(b+1)) *)
let edges =
  Array.init (n_buckets + 1) (fun i ->
      10.0 ** (float_of_int lo_exp +. (float_of_int i /. float_of_int sub)))

type t = {
  buckets : int array;  (* n_buckets + 2: [0] underflow, [last] overflow *)
  mutable count : int;
  mutable sum : float;
}

let create () = { buckets = Array.make (n_buckets + 2) 0; count = 0; sum = 0.0 }

(* slot in [buckets]: 0 = underflow, 1..n_buckets = in range, last =
   overflow. Binary search on edges (exact; no log-rounding at edges). *)
let slot_of v =
  if not (v >= edges.(0)) then 0 (* also catches NaN *)
  else if v >= edges.(n_buckets) then n_buckets + 1
  else begin
    (* largest b with edges.(b) <= v *)
    let lo = ref 0 and hi = ref n_buckets in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if edges.(mid) <= v then lo := mid else hi := mid
    done;
    !lo + 1
  end

let record t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  let s = slot_of v in
  t.buckets.(s) <- t.buckets.(s) + 1

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

(* representative value for a slot: geometric bucket midpoint *)
let representative s =
  if s = 0 then edges.(0)
  else if s = n_buckets + 1 then edges.(n_buckets)
  else sqrt (edges.(s - 1) *. edges.(s))

let quantile t q =
  if t.count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    (* same rank convention as Workload.Runner.percentile on a sorted
       array: index floor(q * (n-1)) *)
    let rank = int_of_float (float_of_int (t.count - 1) *. q) in
    let s = ref 0 and cum = ref 0 in
    (try
       for i = 0 to n_buckets + 1 do
         cum := !cum + t.buckets.(i);
         if !cum > rank then begin
           s := i;
           raise Exit
         end
       done
     with Exit -> ());
    representative !s
  end

let cumulative t ~le =
  if Float.is_nan le then 0
  else begin
    (* samples known to be <= le: every slot whose upper edge is <= le *)
    let acc = ref 0 in
    let i = ref 0 in
    while !i <= n_buckets && edges.(!i) <= le do
      acc := !acc + t.buckets.(!i);
      incr i
    done;
    if le >= infinity then acc := t.count;
    !acc
  end

(* decade edges 1e-6 .. 1e3 — the Prometheus "le" ladder (exact bucket
   edges, so [cumulative] is exact at these points) *)
let le_edges = Array.init (decades + 1) (fun d -> edges.(d * sub))

let merge_into ~into t =
  Array.iteri (fun i c -> into.buckets.(i) <- into.buckets.(i) + c) t.buckets;
  into.count <- into.count + t.count;
  into.sum <- into.sum +. t.sum
