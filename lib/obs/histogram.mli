(** Fixed-size log-bucketed latency histogram (seconds).

    227 counters: 9 decades from 1e-6 s to 1e3 s at 25 sub-buckets per
    decade (growth 10^(1/25) ≈ 1.0965) plus underflow and overflow.
    O(1) record and O(1) memory — the bounded replacement for keeping
    raw latency lists.

    {!quantile} reports the geometric midpoint of the bucket holding the
    target rank; for samples within the bucketed range the result is
    within a factor sqrt(10^(1/25)) ≈ 1.047 of an exact sample quantile
    — documented bound: relative error ≤ 10%. {!count}, {!sum} and
    {!mean} are exact. *)

type t

val create : unit -> t

val record : t -> float -> unit
(** Record one sample in seconds. Out-of-range samples land in the
    underflow/overflow counters (still exact in count/sum). *)

val count : t -> int
val sum : t -> float
val mean : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1] (clamped); 0. when empty. Uses the
    same rank convention as [Workload.Runner.percentile] (index
    [floor (q * (n-1))] of the sorted samples). *)

val cumulative : t -> le:float -> int
(** Number of samples known to be [<= le] — the Prometheus cumulative
    bucket value. Exact when [le] is a bucket edge (in particular every
    entry of {!le_edges}); [le = infinity] returns {!count}. *)

val le_edges : float array
(** The decade edges 1e-6 .. 1e3 — the "le" ladder used for Prometheus
    exposition, each an exact bucket edge. *)

val merge_into : into:t -> t -> unit
