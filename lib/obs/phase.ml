type t =
  | Run
  | Plan_select
  | Tsr_slice
  | Tai_probe
  | Leapfrog_open
  | Leapfrog_seek
  | Leapfrog_next
  | Interval_sweep
  | Request
  | Parse
  | Lint
  | Admit
  | Execute
  | Respond
  | Plan_cache

(* [index] doubles as the array slot in sinks; keep [all] in the same
   order so [of_index (index p) = p]. New phases append (Plan_cache) so
   existing trace/profile slot numbers stay stable. *)
let all =
  [|
    Run; Plan_select; Tsr_slice; Tai_probe; Leapfrog_open; Leapfrog_seek;
    Leapfrog_next; Interval_sweep; Request; Parse; Lint; Admit; Execute;
    Respond; Plan_cache;
  |]

let n = Array.length all

let index = function
  | Run -> 0
  | Plan_select -> 1
  | Tsr_slice -> 2
  | Tai_probe -> 3
  | Leapfrog_open -> 4
  | Leapfrog_seek -> 5
  | Leapfrog_next -> 6
  | Interval_sweep -> 7
  | Request -> 8
  | Parse -> 9
  | Lint -> 10
  | Admit -> 11
  | Execute -> 12
  | Respond -> 13
  | Plan_cache -> 14

let of_index i =
  if i < 0 || i >= n then invalid_arg "Phase.of_index";
  all.(i)

let name = function
  | Run -> "run"
  | Plan_select -> "plan_select"
  | Tsr_slice -> "tsr_slice"
  | Tai_probe -> "tai_probe"
  | Leapfrog_open -> "leapfrog_open"
  | Leapfrog_seek -> "leapfrog_seek"
  | Leapfrog_next -> "leapfrog_next"
  | Interval_sweep -> "interval_sweep"
  | Request -> "request"
  | Parse -> "parse"
  | Lint -> "lint"
  | Admit -> "admit"
  | Execute -> "execute"
  | Respond -> "respond"
  | Plan_cache -> "plan_cache"
