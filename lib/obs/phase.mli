(** Named execution phases, the attribution unit of every span and
    counter in this library.

    The engine phases mirror the paper's cost split: temporal selection
    ({!Tsr_slice}, {!Tai_probe}, {!Interval_sweep}) versus topological
    selection ({!Leapfrog_open}/{!Leapfrog_seek}/{!Leapfrog_next}), with
    {!Plan_select} for planning and {!Run} as the per-query root. The
    request phases ({!Parse} → {!Lint} → {!Admit} → {!Execute} →
    {!Respond}, under {!Request}) cover the server lifecycle. *)

type t =
  | Run  (** whole-query root span *)
  | Plan_select  (** TSRJoin plan construction + invariant check *)
  | Tsr_slice  (** scanner-range slicing of TSRs to the valid window *)
  | Tai_probe  (** TAI trie descents and ECI coverage probes *)
  | Leapfrog_open  (** leapfrog-init over the pivot's key sets *)
  | Leapfrog_seek  (** leapfrog-search seeks (count-only, no timing) *)
  | Leapfrog_next  (** leapfrog-next advances (count-only, no timing) *)
  | Interval_sweep  (** one LFTO / interval-join plane sweep *)
  | Request  (** whole-request root span (server) *)
  | Parse
  | Lint
  | Admit
  | Execute
  | Respond
  | Plan_cache
      (** plan-cache lookup/rebuild — split from {!Plan_select} so
          [plan_select] self-time honestly drops to ~0 on a cache hit
          instead of silently absorbing the lookup cost *)

val all : t array
(** Every phase, in [index] order. *)

val n : int

val index : t -> int
(** Dense [0 .. n-1] numbering, the sink's array slot. *)

val of_index : int -> t
(** Inverse of {!index}. @raise Invalid_argument out of range. *)

val name : t -> string
(** Stable lowercase name used by both exporters. *)
