(* Structured per-request query log: one self-describing JSON object per
   line (schema tcsq-qlog/v1), the durable record a re-optimizer or an
   operator greps after the fact. This module stays dependency-free like
   the rest of lib/obs: the clock is the caller's, execution stats
   arrive as plain (name, value) pairs, and file IO is Stdlib only.

   Writing is thread-safe (one mutex around the channel); sampling is
   deterministic (a rate accumulator, no RNG) and never drops the
   interesting lines — anything slow or with a non-completed outcome is
   always written, the sample rate only thins the fast/ordinary
   majority. *)

type outcome =
  | Completed
  | Truncated_budget
  | Truncated_deadline
  | Rejected_query
  | Rejected_lint
  | Overloaded
  | Internal_error

let outcome_name = function
  | Completed -> "completed"
  | Truncated_budget -> "truncated_budget"
  | Truncated_deadline -> "truncated_deadline"
  | Rejected_query -> "rejected_query"
  | Rejected_lint -> "rejected_lint"
  | Overloaded -> "overloaded"
  | Internal_error -> "internal_error"

type level = { level : int; est : int; actual : int }

type record = {
  ts : float;  (* unix seconds, caller-supplied *)
  id : string option;
  fingerprint : string option;
  query : string option;
  method_ : string option;
  window : (int * int) option;
  outcome : outcome;
  duration_ms : float;
  stats : (string * int) list;
  levels : level list;
  misestimation : float option;
  plan_source : string option;
}

(* ---- rendering ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let opt_string = function None -> "null" | Some s -> escape s

let to_json ~slow r =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "{\"schema\": \"tcsq-qlog/v1\"";
  Printf.bprintf buf ", \"ts\": %.6f" r.ts;
  Printf.bprintf buf ", \"id\": %s" (opt_string r.id);
  Printf.bprintf buf ", \"fingerprint\": %s" (opt_string r.fingerprint);
  Printf.bprintf buf ", \"query\": %s" (opt_string r.query);
  Printf.bprintf buf ", \"method\": %s" (opt_string r.method_);
  (match r.window with
  | None -> Printf.bprintf buf ", \"window\": null"
  | Some (ws, we) ->
      Printf.bprintf buf ", \"window\": {\"ws\": %d, \"we\": %d}" ws we);
  Printf.bprintf buf ", \"outcome\": %s" (escape (outcome_name r.outcome));
  Printf.bprintf buf ", \"duration_ms\": %.3f" r.duration_ms;
  Printf.bprintf buf ", \"slow\": %b" slow;
  Printf.bprintf buf ", \"truncated\": %b"
    (match r.outcome with
    | Truncated_budget | Truncated_deadline -> true
    | _ -> false);
  Printf.bprintf buf ", \"deadline\": %b" (r.outcome = Truncated_deadline);
  Printf.bprintf buf ", \"stats\": {";
  List.iteri
    (fun i (k, v) ->
      Printf.bprintf buf "%s%s: %d" (if i > 0 then ", " else "") (escape k) v)
    r.stats;
  Printf.bprintf buf "}";
  Printf.bprintf buf ", \"levels\": [";
  List.iteri
    (fun i l ->
      Printf.bprintf buf "%s{\"level\": %d, \"est\": %d, \"actual\": %d}"
        (if i > 0 then ", " else "")
        l.level l.est l.actual)
    r.levels;
  Printf.bprintf buf "]";
  (match r.misestimation with
  | None -> Printf.bprintf buf ", \"misestimation\": null"
  | Some f -> Printf.bprintf buf ", \"misestimation\": %.3f" f);
  Printf.bprintf buf ", \"plan_source\": %s" (opt_string r.plan_source);
  Printf.bprintf buf "}";
  Buffer.contents buf

(* ---- the writer ---- *)

type t = {
  mutex : Mutex.t;
  oc : out_channel;
  slow_ms : float;
  sample : float;
  mutable acc : float;  (* sampling accumulator *)
  mutable written : int;
  mutable closed : bool;
}

let create ?(slow_ms = infinity) ?(sample = 1.0) path =
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | oc ->
      Ok
        {
          mutex = Mutex.create ();
          oc;
          slow_ms;
          sample = Float.max 0.0 (Float.min 1.0 sample);
          acc = 0.0;
          written = 0;
          closed = false;
        }
  | exception Sys_error msg -> Error msg

let slow_threshold_ms t = t.slow_ms

let is_slow t r = r.duration_ms >= t.slow_ms

let log t r =
  let slow = is_slow t r in
  Mutex.lock t.mutex;
  let keep =
    (not t.closed)
    && (slow
       || r.outcome <> Completed
       ||
       (* deterministic thinning of the ordinary lines *)
       (t.acc <- t.acc +. t.sample;
        if t.acc >= 1.0 -. 1e-9 then begin
          t.acc <- t.acc -. 1.0;
          true
        end
        else false))
  in
  if keep then begin
    (try
       output_string t.oc (to_json ~slow r);
       output_char t.oc '\n';
       flush t.oc
     with Sys_error _ -> ());
    t.written <- t.written + 1
  end;
  Mutex.unlock t.mutex;
  keep

let written t =
  Mutex.lock t.mutex;
  let n = t.written in
  Mutex.unlock t.mutex;
  n

let close t =
  Mutex.lock t.mutex;
  if not t.closed then begin
    t.closed <- true;
    try close_out t.oc with Sys_error _ -> ()
  end;
  Mutex.unlock t.mutex
