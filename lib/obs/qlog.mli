(** Structured per-request query log: one JSON object per line, schema
    [tcsq-qlog/v1]. The server appends a record for every request it
    finishes (any outcome, including rejections), giving operators and
    the future re-optimizer a greppable trace of what ran, how long it
    took, and how far the cost model's per-level predictions were from
    the measured cardinalities.

    Dependency-free by design (Stdlib only): timestamps are supplied by
    the caller, execution counters arrive as plain [(name, value)]
    pairs, and the writer is a mutex-guarded [out_channel] safe to share
    across worker domains.

    Line schema (all keys always present; absent values are [null]):
    [schema], [ts], [id], [fingerprint], [query], [method], [window]
    ([{ws, we}]), [outcome], [duration_ms], [slow], [truncated],
    [deadline], [stats] (object of counters), [levels] (array of
    [{level, est, actual}]), [misestimation], [plan_source]. *)

type outcome =
  | Completed
  | Truncated_budget
  | Truncated_deadline
  | Rejected_query  (** parse failure or static analysis error *)
  | Rejected_lint  (** admission lint refused the query *)
  | Overloaded
  | Internal_error

val outcome_name : outcome -> string

type level = { level : int; est : int; actual : int }
(** One TSRJoin plan level: the analyzer's predicted intermediate
    cardinality next to the measured one. *)

type record = {
  ts : float;  (** unix seconds, caller-supplied (injected clock) *)
  id : string option;  (** client-supplied request id *)
  fingerprint : string option;  (** {!Semantics.Fingerprint}; [None]
                                    when the query never parsed *)
  query : string option;  (** original request text *)
  method_ : string option;
  window : (int * int) option;
  outcome : outcome;
  duration_ms : float;
  stats : (string * int) list;
  levels : level list;
  misestimation : float option;
      (** max over levels of the symmetric est-vs-actual factor;
          [None] when there is no estimate to compare against *)
  plan_source : string option;
      (** where the TSRJoin plan came from: ["cached"], ["fresh"] or
          ["replanned"] ({!Workload.Plan_cache} — named here as a plain
          string to keep lib/obs dependency-free); [None] for methods
          without a planner or requests that never executed *)
}

val to_json : slow:bool -> record -> string
(** One line of [tcsq-qlog/v1] (no trailing newline). Exposed for
    tests; {!log} renders internally. *)

type t
(** A JSONL appender. *)

val create : ?slow_ms:float -> ?sample:float -> string -> (t, string) result
(** [create ~slow_ms ~sample path] opens [path] for append.
    [slow_ms] (default [infinity]) marks records at or above the
    threshold as slow; [sample] (default [1.0], clamped to [0..1]) is
    the keep-rate for ordinary lines — slow or non-[Completed] records
    are always written regardless. *)

val slow_threshold_ms : t -> float

val log : t -> record -> bool
(** Append one record (thread-safe). Returns whether the line was
    written — [false] only when the deterministic sampler thinned an
    ordinary (fast, completed) record or the writer is closed. *)

val written : t -> int
(** Lines written so far. *)

val close : t -> unit
