(* The recorder behind every span. [Null] is a distinct constructor (not
   a disabled record) so instrumentation compiles down to one pattern
   match on the hot path — no clock read, no allocation, no write. The
   clock is injected (same pattern as Run_stats.deadline) to keep this
   library dependency-free and tests deterministic. *)

type active = {
  clock : unit -> float;
  origin : float;  (* clock at creation; event starts are relative *)
  counts : int array;  (* per phase: completed spans + count-only ticks *)
  totals : float array;  (* per phase: inclusive seconds (spans only) *)
  max_events : int;
  mutable ev_phase : int array;
  mutable ev_start : float array;  (* seconds since [origin] *)
  mutable ev_dur : float array;
  mutable n_events : int;
  mutable dropped : int;
}

type t = Null | Active of active

let null = Null

let create ?(max_events = 262_144) ~clock () =
  if max_events < 0 then invalid_arg "Sink.create: negative max_events";
  let cap = min 1024 max_events in
  Active
    {
      clock;
      origin = clock ();
      counts = Array.make Phase.n 0;
      totals = Array.make Phase.n 0.0;
      max_events;
      ev_phase = Array.make cap 0;
      ev_start = Array.make cap 0.0;
      ev_dur = Array.make cap 0.0;
      n_events = 0;
      dropped = 0;
    }

let enabled = function Null -> false | Active _ -> true

let now = function Null -> 0.0 | Active a -> a.clock ()

let grow a =
  let cap = Array.length a.ev_phase in
  let cap' = min a.max_events (max 1 (2 * cap)) in
  if cap' > cap then begin
    let extend mk arr =
      let arr' = mk cap' in
      Array.blit arr 0 arr' 0 cap;
      arr'
    in
    a.ev_phase <- extend (fun n -> Array.make n 0) a.ev_phase;
    a.ev_start <- extend (fun n -> Array.make n 0.0) a.ev_start;
    a.ev_dur <- extend (fun n -> Array.make n 0.0) a.ev_dur
  end

let record a phase start dur =
  let i = Phase.index phase in
  a.counts.(i) <- a.counts.(i) + 1;
  a.totals.(i) <- a.totals.(i) +. dur;
  if a.n_events >= Array.length a.ev_phase then grow a;
  if a.n_events < Array.length a.ev_phase then begin
    a.ev_phase.(a.n_events) <- i;
    a.ev_start.(a.n_events) <- start;
    a.ev_dur.(a.n_events) <- dur;
    a.n_events <- a.n_events + 1
  end
  else a.dropped <- a.dropped + 1

let record_span t phase ~t0 =
  match t with
  | Null -> ()
  | Active a -> record a phase (t0 -. a.origin) (a.clock () -. t0)

let span t phase f =
  match t with
  | Null -> f ()
  | Active a -> (
      let t0 = a.clock () in
      match f () with
      | v ->
          record a phase (t0 -. a.origin) (a.clock () -. t0);
          v
      | exception e ->
          (* budget/deadline aborts escape through spans; close them so
             partial runs still export a consistent trace *)
          record a phase (t0 -. a.origin) (a.clock () -. t0);
          raise e)

let incr t phase =
  match t with
  | Null -> ()
  | Active a ->
      let i = Phase.index phase in
      a.counts.(i) <- a.counts.(i) + 1

let count t phase =
  match t with Null -> 0 | Active a -> a.counts.(Phase.index phase)

let total t phase =
  match t with Null -> 0.0 | Active a -> a.totals.(Phase.index phase)

let n_events = function Null -> 0 | Active a -> a.n_events
let dropped = function Null -> 0 | Active a -> a.dropped

let iter_events t f =
  match t with
  | Null -> ()
  | Active a ->
      for i = 0 to a.n_events - 1 do
        f ~phase:(Phase.of_index a.ev_phase.(i)) ~start_s:a.ev_start.(i)
          ~dur_s:a.ev_dur.(i)
      done

let child t =
  match t with
  | Null -> Null
  | Active a -> create ~max_events:a.max_events ~clock:a.clock ()

(* event append only — aggregates are merged separately in [merge_into],
   so this must not touch counts/totals the way [record] does *)
let append_event a phase_i start dur =
  if a.n_events >= Array.length a.ev_phase then grow a;
  if a.n_events < Array.length a.ev_phase then begin
    a.ev_phase.(a.n_events) <- phase_i;
    a.ev_start.(a.n_events) <- start;
    a.ev_dur.(a.n_events) <- dur;
    a.n_events <- a.n_events + 1
  end
  else a.dropped <- a.dropped + 1

let merge_into dst src =
  match (dst, src) with
  | Null, _ | _, Null -> ()
  | Active d, Active s ->
      for i = 0 to Phase.n - 1 do
        d.counts.(i) <- d.counts.(i) + s.counts.(i);
        d.totals.(i) <- d.totals.(i) +. s.totals.(i)
      done;
      (* event starts are origin-relative: translate from the child's
         timeline to the parent's (both read the same clock) *)
      let shift = s.origin -. d.origin in
      for i = 0 to s.n_events - 1 do
        append_event d s.ev_phase.(i) (s.ev_start.(i) +. shift) s.ev_dur.(i)
      done;
      d.dropped <- d.dropped + s.dropped
