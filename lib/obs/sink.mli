(** Span sinks: per-run recorders of phase-attributed timings.

    A sink is single-owner state — one per run and per domain, never
    shared (the lock-free-per-domain discipline; parallel runs merge
    afterwards). {!null} is a separate constructor, so with tracing
    disabled every instrumentation site is a single pattern match: no
    clock read, no allocation, no buffer write. Differential tests pin
    down that traced and untraced runs produce identical results and
    counters.

    Spans record into two places: fixed per-phase aggregates (count,
    inclusive total — never dropped) and a bounded event buffer for the
    Chrome trace (capacity [max_events]; overflow increments {!dropped}
    while aggregates keep counting). *)

type t

val null : t
(** The no-op sink. *)

val create : ?max_events:int -> clock:(unit -> float) -> unit -> t
(** A live sink. [clock] is the injected monotonic time source in
    seconds (e.g. [Unix.gettimeofday]); it is read once at creation to
    anchor the trace origin. [max_events] (default 262144) bounds the
    event buffer. *)

val enabled : t -> bool

val now : t -> float
(** A clock read ([0.] on {!null}) — for callers that must open and
    close a span across scopes; pair with {!record_span}. *)

val span : t -> Phase.t -> (unit -> 'a) -> 'a
(** [span t phase f] runs [f], attributing its wall time to [phase].
    The span is recorded even when [f] raises (budget and deadline
    aborts must still export consistent traces). On {!null} this is
    exactly [f ()]. *)

val record_span : t -> Phase.t -> t0:float -> unit
(** Close a span opened at absolute clock time [t0] (from {!now}),
    ending now. For spans that cannot wrap a single closure, e.g. a
    request span crossing from a connection thread to a worker. *)

val incr : t -> Phase.t -> unit
(** Count-only tick (no clock read, no event) — for per-seek/per-next
    hot paths where even one clock read per tick would distort the
    measurement. *)

val count : t -> Phase.t -> int
(** Completed spans plus {!incr} ticks for the phase. *)

val total : t -> Phase.t -> float
(** Inclusive seconds attributed to the phase (nested child spans are
    not subtracted; {!Trace.summary} computes self time). *)

val n_events : t -> int
val dropped : t -> int

val iter_events :
  t -> (phase:Phase.t -> start_s:float -> dur_s:float -> unit) -> unit
(** Buffered events in recording (completion) order; [start_s] is
    relative to the sink's origin. *)

val child : t -> t
(** A fresh sink sharing the parent's clock and event capacity ({!null}
    begets {!null}) — one per worker domain in a parallel run, merged
    back with {!merge_into} when the run completes. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] folds [src]'s aggregates (counts, totals,
    dropped) into [dst] and appends its events, translating start times
    onto [dst]'s origin (both must share a clock, as {!child} ensures).
    No-op when either side is {!null}. [src] is unchanged. *)
