(* Exporters over a sink's recorded spans: Chrome trace-event JSON
   (schema "trace/v1") and a per-phase summary table.

   Span totals are inclusive — an LFTO sweep span contains the TAI-probe
   spans of the steps below it — so the summary additionally computes
   self time by structural nesting: events from one domain are strictly
   nested, so a start-ordered pass with a stack attributes each span's
   duration minus its direct children's to the span's own phase. *)

type row = { phase : Phase.t; count : int; total_s : float; self_s : float }

(* events sorted parent-before-child: by start ascending, then by
   duration descending (equal starts at clock resolution) *)
let sorted_events sink =
  let n = Sink.n_events sink in
  let phases = Array.make n 0 in
  let starts = Array.make n 0.0 in
  let durs = Array.make n 0.0 in
  let i = ref 0 in
  Sink.iter_events sink (fun ~phase ~start_s ~dur_s ->
      phases.(!i) <- Phase.index phase;
      starts.(!i) <- start_s;
      durs.(!i) <- dur_s;
      incr i);
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Float.compare starts.(a) starts.(b) in
      if c <> 0 then c else Float.compare durs.(b) durs.(a))
    order;
  (order, phases, starts, durs)

(* returns (per-phase self seconds, total root-span seconds) *)
let self_times sink =
  let order, phases, starts, durs = sorted_events sink in
  let self = Array.make Phase.n 0.0 in
  let root = ref 0.0 in
  (* stack of open ancestors: (end time, phase, children duration) *)
  let stack = ref [] in
  let close (_, phase, children) dur =
    self.(phase) <- self.(phase) +. Float.max 0.0 (dur -. children)
  in
  let rec pop_until start =
    match !stack with
    | ((e, _, _) as top, dur) :: rest when e <= start ->
        stack := rest;
        close top dur;
        pop_until start
    | _ -> ()
  in
  Array.iter
    (fun idx ->
      let s = starts.(idx) and d = durs.(idx) in
      pop_until s;
      (match !stack with
      | [] -> root := !root +. d
      | ((e, p, children), dur) :: rest ->
          stack := ((e, p, children +. d), dur) :: rest);
      stack := ((s +. d, phases.(idx), 0.0), d) :: !stack)
    order;
  List.iter (fun (top, dur) -> close top dur) !stack;
  (self, !root)

let root_seconds sink = snd (self_times sink)

let summary sink =
  let self, _ = self_times sink in
  let rows = ref [] in
  Array.iter
    (fun phase ->
      let count = Sink.count sink phase in
      if count > 0 then
        rows :=
          {
            phase;
            count;
            total_s = Sink.total sink phase;
            self_s = self.(Phase.index phase);
          }
          :: !rows)
    Phase.all;
  List.sort (fun a b -> Float.compare b.self_s a.self_s) !rows

let pp_summary fmt sink =
  let rows = summary sink in
  let _, root = self_times sink in
  Format.fprintf fmt "%-16s %10s %12s %12s %7s@." "phase" "count" "total-ms"
    "self-ms" "%run";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-16s %10d %12.3f %12.3f %6.1f%%@."
        (Phase.name r.phase) r.count (r.total_s *. 1000.0)
        (r.self_s *. 1000.0)
        (if root > 0.0 then 100.0 *. r.self_s /. root else 0.0))
    rows;
  if Sink.dropped sink > 0 then
    Format.fprintf fmt
      "(%d events dropped at the buffer cap; aggregates above are complete)@."
      (Sink.dropped sink)

(* minimal JSON string escaping; phase names are plain ASCII but the
   process name is caller-supplied *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json ?(process_name = "tcsq") sink =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"schema\": \"trace/v1\", \"displayTimeUnit\": \"ms\"";
  Printf.bprintf buf ", \"droppedEvents\": %d" (Sink.dropped sink);
  Buffer.add_string buf ", \"traceEvents\": [";
  Printf.bprintf buf
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1, \
     \"args\": {\"name\": \"%s\"}}"
    (escape process_name);
  (* complete events ("ph": "X"), microsecond timestamps; one pid/tid —
     a sink is single-domain by construction *)
  Sink.iter_events sink (fun ~phase ~start_s ~dur_s ->
      Printf.bprintf buf
        ", {\"name\": \"%s\", \"cat\": \"tcsq\", \"ph\": \"X\", \"ts\": %.3f, \
         \"dur\": %.3f, \"pid\": 1, \"tid\": 1}"
        (Phase.name phase) (start_s *. 1e6) (dur_s *. 1e6));
  Buffer.add_string buf "]}";
  Buffer.contents buf
