(** Exporters over a {!Sink}: Chrome trace-event JSON and a per-phase
    summary table.

    Schema [trace/v1]: a JSON object with [traceEvents] (Chrome
    trace-event "complete" events, microsecond [ts]/[dur]), loadable
    directly in [chrome://tracing] or Perfetto; extra top-level fields
    ([schema], [droppedEvents]) are ignored by both viewers. Documented
    in EXPERIMENTS.md. *)

type row = {
  phase : Phase.t;
  count : int;  (** spans plus count-only ticks *)
  total_s : float;  (** inclusive seconds (children counted in) *)
  self_s : float;  (** exclusive seconds (direct children subtracted) *)
}

val summary : Sink.t -> row list
(** One row per phase with activity, sorted by self time descending.
    Self times come from the event buffer (strictly nested, one
    domain); aggregate count/total come from the never-dropped per-phase
    aggregates. *)

val root_seconds : Sink.t -> float
(** Total duration of top-level (unnested) spans — the denominator of
    the summary's "% of run" column. *)

val pp_summary : Format.formatter -> Sink.t -> unit

val to_chrome_json : ?process_name:string -> Sink.t -> string
(** The [trace/v1] document for the sink's buffered events. *)
