open Semantics
module Adjacency = Triejoin.Adjacency
module Slice = Triejoin.Slice

let label_count adj lbl = Slice.length (Adjacency.label_edges adj ~lbl)

let join_order adj q =
  let n = Query.n_edges q in
  let chosen = Array.make n false in
  let bound = Array.make (Query.n_vars q) false in
  let connectivity (e : Query.edge) =
    (if bound.(e.Query.src_var) then 1 else 0)
    + if bound.(e.Query.dst_var) then 1 else 0
  in
  let pick () =
    let best = ref (-1) and best_key = ref (0, 0) in
    for i = 0 to n - 1 do
      if not chosen.(i) then begin
        let e = Query.edge q i in
        (* maximize connectivity, then minimize label frequency *)
        let key = (connectivity e, -label_count adj e.Query.lbl) in
        if !best < 0 || key > !best_key then begin
          best := i;
          best_key := key
        end
      end
    done;
    !best
  in
  let order = ref [] in
  for _ = 1 to n do
    let i = pick () in
    let e = Query.edge q i in
    chosen.(i) <- true;
    bound.(e.Query.src_var) <- true;
    bound.(e.Query.dst_var) <- true;
    order := i :: !order
  done;
  List.rev !order

let run ?stats adj q ~emit =
  let ws = Query.ws q and we = Query.we q in
  let min_len = Query.min_duration q in
  let tick_intermediate () =
    match stats with Some s -> Run_stats.tick_intermediate s | None -> ()
  in
  let tick_scanned () =
    match stats with Some s -> Run_stats.tick_scanned s | None -> ()
  in
  let tick_result () =
    match stats with Some s -> Run_stats.tick_result s | None -> ()
  in
  match join_order adj q with
  | [] -> ()
  | first :: rest ->
      let scan =
        let qe = Query.edge q first in
        let slice = Adjacency.label_edges adj ~lbl:qe.Query.lbl in
        let seq = Seq.init (Slice.length slice) (Slice.get slice) in
        Volcano.source
          (Seq.filter_map
             (fun e ->
               tick_scanned ();
               match Tuple.extend q (Tuple.initial q) ~edge_idx:first e with
               | None -> None
               | Some t -> (
                   tick_intermediate () (* scan output *);
                   match Tuple.select_temporal ~min_len t ~ws ~we ~edge:e with
                   | Some t ->
                       tick_intermediate () (* selection output *);
                       Some t
                   | None -> None))
             seq)
      in
      let add_join upstream (edge_idx, final) =
        let qe = Query.edge q edge_idx in
        Volcano.flat_map
          (fun tup ->
            let sb = tup.Tuple.binds.(qe.Query.src_var) in
            let db = tup.Tuple.binds.(qe.Query.dst_var) in
            let candidates =
              if sb >= 0 && db >= 0 then
                Adjacency.edges_between adj ~lbl:qe.Query.lbl ~src:sb ~dst:db
              else if sb >= 0 then Adjacency.out_edges adj ~lbl:qe.Query.lbl ~src:sb
              else if db >= 0 then Adjacency.in_edges adj ~lbl:qe.Query.lbl ~dst:db
              else Adjacency.label_edges adj ~lbl:qe.Query.lbl
            in
            Slice.fold
              (fun acc e ->
                tick_scanned ();
                match Tuple.extend q tup ~edge_idx e with
                | None -> acc
                | Some t -> (
                    tick_intermediate () (* join output *);
                    match Tuple.select_temporal ~min_len t ~ws ~we ~edge:e with
                    | None -> acc
                    | Some t ->
                        if not final then tick_intermediate ()
                        (* selection output *);
                        t :: acc))
              [] candidates
            |> List.rev)
          upstream
      in
      let rec build upstream = function
        | [] -> upstream
        | [ last ] -> add_join upstream (last, true)
        | i :: more -> build (add_join upstream (i, false)) more
      in
      let root = if rest = [] then scan else build scan rest in
      Volcano.consume root (fun tup ->
          tick_result ();
          emit (Tuple.to_match tup))

let evaluate ?stats adj q =
  let acc = ref [] in
  run ?stats adj q ~emit:(fun m -> acc := m :: !acc);
  List.rev !acc
