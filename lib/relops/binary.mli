(** The BINARY baseline (P^T, "topology then time"): an edge-at-a-time
    pipeline of index-nested-loop binary joins over the static label
    adjacency index, with a temporal selection operator after every join
    (the paper's Fig. 8 left plan). Runs on the vectorized Volcano
    framework with 1024-tuple batches.

    Intermediate accounting: every tuple emitted by a scan, join, or
    non-root selection ticks [stats.intermediate]. *)

val join_order : Triejoin.Adjacency.t -> Semantics.Query.t -> int list
(** Greedy connected order: most selective label first, then prefer
    edges touching already-bound variables (both-bound before one-bound
    before cartesian), tie-broken by label frequency. *)

val run :
  ?stats:Semantics.Run_stats.t ->
  Triejoin.Adjacency.t ->
  Semantics.Query.t ->
  emit:(Semantics.Match_result.t -> unit) ->
  unit

val evaluate :
  ?stats:Semantics.Run_stats.t ->
  Triejoin.Adjacency.t ->
  Semantics.Query.t ->
  Semantics.Match_result.t list
