open Semantics
module Adjacency = Triejoin.Adjacency
module Slice = Triejoin.Slice

let label_count adj lbl = Slice.length (Adjacency.label_edges adj ~lbl)

let var_order adj q =
  let n = Query.n_vars q in
  let bound = Array.make n false in
  let order = ref [] in
  let degree v = List.length (Query.adjacent q v) in
  let min_label v =
    List.fold_left
      (fun acc (e : Query.edge) -> min acc (label_count adj e.Query.lbl))
      max_int (Query.adjacent q v)
  in
  let connectivity v =
    List.fold_left
      (fun acc (e : Query.edge) ->
        if bound.(Query.other_endpoint e v) then acc + 1 else acc)
      0 (Query.adjacent q v)
  in
  for _ = 1 to n do
    let best = ref (-1) and best_key = ref (min_int, min_int, min_int) in
    for v = 0 to n - 1 do
      if not bound.(v) then begin
        let key = (connectivity v, degree v, -min_label v) in
        if !best < 0 || key > !best_key then begin
          best := v;
          best_key := key
        end
      end
    done;
    bound.(!best) <- true;
    order := !best :: !order
  done;
  List.rev !order

let run ?stats adj q ~emit =
  let ws = Query.ws q and we = Query.we q in
  let min_duration = Query.min_duration q in
  let tick_intermediate () =
    match stats with Some s -> Run_stats.tick_intermediate s | None -> ()
  in
  let tick_binding () =
    match stats with Some s -> Run_stats.tick_binding s | None -> ()
  in
  let tick_result () =
    match stats with Some s -> Run_stats.tick_result s | None -> ()
  in
  let order = Array.of_list (var_order adj q) in
  let n_vars = Array.length order in
  let bindings = Array.make (Query.n_vars q) (-1) in
  let expanded = Array.make (Query.n_edges q) false in
  let assignment = Array.make (Query.n_edges q) (-1) in
  (* The triejoin phase binds variables and expands multi-edges on
     topology alone — the paper's point is exactly that temporal
     predicates cannot be injected into the TrieJOIN, so the temporal
     selection runs at the top of the plan, over complete topological
     matches. [life] tracks the running intersection for that final
     selection but never prunes the search. *)
  let rec bind_var var_i life =
    if var_i = n_vars then begin
      match life with
      | Some life
        when Temporal.Interval.overlaps_window life ~ws ~we
             && Temporal.Interval.length life >= min_duration ->
          tick_result ();
          emit (Match_result.make (Array.copy assignment) life)
      | Some _ | None -> () (* dropped by the final temporal selection *)
    end
    else begin
      let v = order.(var_i) in
      let adjacent = Query.adjacent q v in
      if adjacent = [] then bind_var (var_i + 1) life
      else begin
        let key_sets =
          List.concat_map
            (fun (e : Query.edge) ->
              if e.Query.src_var = v && e.Query.dst_var = v then
                [
                  Adjacency.sources adj ~lbl:e.Query.lbl;
                  Adjacency.destinations adj ~lbl:e.Query.lbl;
                ]
              else if e.Query.src_var = v then
                if bindings.(e.Query.dst_var) >= 0 then
                  [ Adjacency.src_keys adj ~lbl:e.Query.lbl ~dst:bindings.(e.Query.dst_var) ]
                else [ Adjacency.sources adj ~lbl:e.Query.lbl ]
              else if bindings.(e.Query.src_var) >= 0 then
                [ Adjacency.dst_keys adj ~lbl:e.Query.lbl ~src:bindings.(e.Query.src_var) ]
              else [ Adjacency.destinations adj ~lbl:e.Query.lbl ])
            adjacent
        in
        let iters =
          Array.of_list
            (List.map Triejoin.Key_iter.of_sorted_array_unchecked key_sets)
        in
        let lf = Triejoin.Leapfrog.create iters in
        Triejoin.Leapfrog.iter
          (fun b ->
            tick_binding ();
            tick_intermediate () (* triejoin binding output *);
            bindings.(v) <- b;
            let newly =
              List.filter
                (fun (e : Query.edge) ->
                  (not expanded.(e.Query.idx))
                  && bindings.(e.Query.src_var) >= 0
                  && bindings.(e.Query.dst_var) >= 0)
                adjacent
            in
            List.iter (fun (e : Query.edge) -> expanded.(e.Query.idx) <- true) newly;
            let rec expand todo life =
              match todo with
              | [] -> bind_var (var_i + 1) life
              | (e : Query.edge) :: rest ->
                  let slice =
                    Adjacency.edges_between adj ~lbl:e.Query.lbl
                      ~src:bindings.(e.Query.src_var)
                      ~dst:bindings.(e.Query.dst_var)
                  in
                  Slice.iter
                    (fun ge ->
                      tick_intermediate () (* expansion (join) output *);
                      let life' =
                        match life with
                        | None -> None
                        | Some l -> Temporal.Interval.intersect l (Tgraph.Edge.ivl ge)
                      in
                      assignment.(e.Query.idx) <- Tgraph.Edge.id ge;
                      expand rest life';
                      assignment.(e.Query.idx) <- -1)
                    slice
            in
            expand newly life;
            List.iter (fun (e : Query.edge) -> expanded.(e.Query.idx) <- false) newly;
            bindings.(v) <- -1)
          lf
      end
    end
  in
  bind_var 0 (Some (Temporal.Interval.make min_int max_int))

let evaluate ?stats adj q =
  let acc = ref [] in
  run ?stats adj q ~emit:(fun m -> acc := m :: !acc);
  List.rev !acc
