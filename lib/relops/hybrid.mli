(** The HYBRID baseline (P^T with a worst-case-optimal core): a
    vertex-at-a-time leapfrog triejoin binds query variables over the
    static adjacency tries; whenever a query edge becomes fully bound its
    multi-edges are expanded and a temporal selection filters the running
    intersection (Fig. 8 middle).

    Temporal predicates play no role in binding production — the
    structural weakness the paper attributes to HYBRID. *)

val var_order : Triejoin.Adjacency.t -> Semantics.Query.t -> int list
(** Connected variable elimination order (most selective first). *)

val run :
  ?stats:Semantics.Run_stats.t ->
  Triejoin.Adjacency.t ->
  Semantics.Query.t ->
  emit:(Semantics.Match_result.t -> unit) ->
  unit

val evaluate :
  ?stats:Semantics.Run_stats.t ->
  Triejoin.Adjacency.t ->
  Semantics.Query.t ->
  Semantics.Match_result.t list
