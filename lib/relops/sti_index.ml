type t = {
  graph : Tgraph.Graph.t;
  stis : Temporal.Sti.t array;
  all : Temporal.Sti.t; (* the wildcard relation: every edge *)
}

let empty_sti = Temporal.Sti.build Temporal.Relation.empty

let build graph =
  let n_labels = Tgraph.Graph.n_labels graph in
  let buckets = Array.make (max 1 n_labels) [] in
  let everything = ref [] in
  Tgraph.Graph.iter_edges
    (fun e ->
      let l = Tgraph.Edge.lbl e in
      buckets.(l) <- Tgraph.Edge.to_span e :: buckets.(l);
      everything := Tgraph.Edge.to_span e :: !everything)
    graph;
  let stis =
    Array.map
      (fun items -> Temporal.Sti.build (Temporal.Relation.of_list items))
      buckets
  in
  { graph; stis; all = Temporal.Sti.build (Temporal.Relation.of_list !everything) }

let build_time graph =
  let t0 = Unix.gettimeofday () in
  let idx = build graph in
  (idx, Unix.gettimeofday () -. t0)

let graph t = t.graph

let sti t ~lbl =
  if lbl = Semantics.Query.any_label then t.all
  else if lbl < 0 || lbl >= Array.length t.stis then empty_sti
  else t.stis.(lbl)

let edge_of_item t item = Tgraph.Graph.edge t.graph (Temporal.Span_item.id item)

let size_words t =
  Array.fold_left (fun acc sti -> acc + Temporal.Sti.size_words sti) 2 t.stis
  + Temporal.Sti.size_words t.all
