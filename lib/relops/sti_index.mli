(** The STI-CP index of the TIME baseline: one start-time index (sorted
    edge relation + earliest-concurrent coverage) per edge label. *)

type t

val build : Tgraph.Graph.t -> t
val build_time : Tgraph.Graph.t -> t * float
val graph : t -> Tgraph.Graph.t

val sti : t -> lbl:int -> Temporal.Sti.t
(** The start-time index of one label's edge relation (empty for an
    unknown label). *)

val edge_of_item : t -> Temporal.Span_item.t -> Tgraph.Edge.t
(** Resolves a span item (payload = edge id) back to its edge. *)

val size_words : t -> int
