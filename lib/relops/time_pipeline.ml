open Semantics
open Tgraph

(* Per-slot expansion orders: starting from the arrival slot, visit the
   remaining slots preferring ones sharing a query variable with the
   already-visited part (so hash lookups stay constrained). *)
let expansion_orders q =
  let k = Query.n_edges q in
  let shares_var covered (e : Query.edge) =
    covered.(e.Query.src_var) || covered.(e.Query.dst_var)
  in
  Array.init k (fun start ->
      let covered = Array.make (Query.n_vars q) false in
      let visit e =
        covered.(e.Query.src_var) <- true;
        covered.(e.Query.dst_var) <- true
      in
      visit (Query.edge q start);
      let remaining = ref (List.filter (fun j -> j <> start) (List.init k Fun.id)) in
      let order = ref [] in
      while !remaining <> [] do
        let connected, rest =
          List.partition (fun j -> shares_var covered (Query.edge q j)) !remaining
        in
        let next = match connected with j :: _ -> j | [] -> List.hd rest in
        visit (Query.edge q next);
        order := next :: !order;
        remaining := List.filter (fun j -> j <> next) !remaining
      done;
      Array.of_list (List.rev !order))

let run ?stats idx q ~emit =
  let ws = Query.ws q and we = Query.we q in
  let min_duration = Query.min_duration q in
  let k = Query.n_edges q in
  let tick_intermediate () =
    match stats with Some s -> Run_stats.tick_intermediate s | None -> ()
  in
  let tick_scanned () =
    match stats with Some s -> Run_stats.tick_scanned s | None -> ()
  in
  let tick_result () =
    match stats with Some s -> Run_stats.tick_result s | None -> ()
  in
  let stis = Array.init k (fun i -> Sti_index.sti idx ~lbl:(Query.edge q i).Query.lbl) in
  let cur = Array.make k 0 and stop = Array.make k 0 in
  Array.iteri
    (fun i sti ->
      let s, e = Temporal.Sti.scan_range sti ~ws ~we in
      cur.(i) <- s;
      stop.(i) <- e)
    stis;
  (* Active edges per slot, plus hash indexes by endpoint. Hash entries
     are validated lazily against the sweep time (te >= t). *)
  let active : Edge.t Temporal.Vec.t array = Array.init k (fun _ -> Temporal.Vec.create ()) in
  let hash_src : (int, Edge.t list ref) Hashtbl.t array =
    Array.init k (fun _ -> Hashtbl.create 64)
  in
  let hash_dst : (int, Edge.t list ref) Hashtbl.t array =
    Array.init k (fun _ -> Hashtbl.create 64)
  in
  let hash_add tbl key e =
    match Hashtbl.find_opt tbl key with
    | Some cell -> cell := e :: !cell
    | None -> Hashtbl.add tbl key (ref [ e ])
  in
  let hash_get tbl key = match Hashtbl.find_opt tbl key with Some c -> !c | None -> [] in
  let orders = expansion_orders q in
  let bindings = Array.make (Query.n_vars q) (-1) in
  let assignment = Array.make k (-1) in
  let arrival_time = ref 0 in
  (* Topological join over the active sets: recursively extend the
     arrived edge along the expansion order, looking candidates up by
     bound endpoint. *)
  let rec extend order pos life =
    if pos = k - 1 then begin
      tick_result ();
      emit (Match_result.make (Array.copy assignment) life)
    end
    else begin
      let j = order.(pos) in
      let qe = Query.edge q j in
      let sb = bindings.(qe.Query.src_var) and db = bindings.(qe.Query.dst_var) in
      let candidates =
        if sb >= 0 then hash_get hash_src.(j) sb
        else if db >= 0 then hash_get hash_dst.(j) db
        else Temporal.Vec.to_list active.(j)
      in
      List.iter
        (fun (e : Edge.t) ->
          if Edge.te e >= !arrival_time then begin
            let src_ok = sb = -1 || sb = Edge.src e in
            let dst_ok = db = -1 || db = Edge.dst e in
            let loop_ok =
              qe.Query.src_var <> qe.Query.dst_var || Edge.src e = Edge.dst e
            in
            if src_ok && dst_ok && loop_ok then
              match Temporal.Interval.intersect life (Edge.ivl e) with
              | None -> ()
              | Some life'
                when Temporal.Interval.length life' < min_duration ->
                  ()
              | Some life' ->
                  tick_intermediate ();
                  let saved_s = bindings.(qe.Query.src_var) in
                  let saved_d = bindings.(qe.Query.dst_var) in
                  bindings.(qe.Query.src_var) <- Edge.src e;
                  bindings.(qe.Query.dst_var) <- Edge.dst e;
                  assignment.(j) <- Edge.id e;
                  extend order (pos + 1) life';
                  assignment.(j) <- -1;
                  bindings.(qe.Query.src_var) <- saved_s;
                  bindings.(qe.Query.dst_var) <- saved_d
          end)
        candidates
    end
  in
  let any_open () =
    let rec go i = i < k && (cur.(i) < stop.(i) || go (i + 1)) in
    go 0
  in
  let item_at i = Temporal.Relation.get (Temporal.Sti.relation stis.(i)) cur.(i) in
  let next_scanner () =
    let best = ref (-1) in
    for i = 0 to k - 1 do
      if cur.(i) < stop.(i) then
        if
          !best < 0
          || Temporal.Span_item.compare_by_start (item_at i) (item_at !best) < 0
        then best := i
    done;
    !best
  in
  while any_open () do
    let i = next_scanner () in
    let e = Sti_index.edge_of_item idx (item_at i) in
    tick_scanned ();
    if Temporal.Interval.overlaps_window (Edge.ivl e) ~ws ~we then begin
      let t = Edge.ts e in
      arrival_time := t;
      Array.iter
        (fun a -> ignore (Temporal.Vec.remove_prefix (fun e -> Edge.te e < t) a))
        active;
      (* seed the join with the arrived edge in slot i *)
      let qe = Query.edge q i in
      if
        (qe.Query.src_var <> qe.Query.dst_var || Edge.src e = Edge.dst e)
        && Temporal.Interval.length (Edge.ivl e) >= min_duration
      then begin
        bindings.(qe.Query.src_var) <- Edge.src e;
        bindings.(qe.Query.dst_var) <- Edge.dst e;
        assignment.(i) <- Edge.id e;
        extend orders.(i) 0 (Edge.ivl e);
        assignment.(i) <- -1;
        bindings.(qe.Query.src_var) <- -1;
        bindings.(qe.Query.dst_var) <- -1
      end;
      (* insert into the active structures, keeping end-time order for
         prefix expiry *)
      let cmp_end a b =
        let c = Int.compare (Edge.te a) (Edge.te b) in
        if c <> 0 then c else Edge.compare_by_start a b
      in
      Temporal.Vec.insert_sorted ~cmp:cmp_end active.(i) e;
      hash_add hash_src.(i) (Edge.src e) e;
      hash_add hash_dst.(i) (Edge.dst e) e
    end;
    cur.(i) <- cur.(i) + 1
  done

let evaluate ?stats idx q =
  let acc = ref [] in
  run ?stats idx q ~emit:(fun m -> acc := m :: !acc);
  List.rev !acc
