(** The TIME baseline (T^P, "time then topology"): the temporal
    predicates are solved first by an STI-CP plane sweep over the
    label-filtered edge relations (start-time indexes let the sweep skip
    to the earliest concurrent of the window start); the topological
    predicates are solved by hash-assisted binary joins over the
    temporally-active edge sets as each clique member arrives
    (Fig. 8 right).

    Because the sweep is global — never narrowed by vertex bindings —
    TIME scans every window-overlapping edge of every query label and
    pays hash-table maintenance on all of them: the costs the paper
    attributes to this pipeline. *)

val run :
  ?stats:Semantics.Run_stats.t ->
  Sti_index.t ->
  Semantics.Query.t ->
  emit:(Semantics.Match_result.t -> unit) ->
  unit

val evaluate :
  ?stats:Semantics.Run_stats.t ->
  Sti_index.t ->
  Semantics.Query.t ->
  Semantics.Match_result.t list
