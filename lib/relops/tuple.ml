open Semantics

type t = {
  edges : int array;
  binds : int array;
  life : Temporal.Interval.t;
}

let initial q =
  {
    edges = Array.make (Query.n_edges q) (-1);
    binds = Array.make (Query.n_vars q) (-1);
    life = Temporal.Interval.make min_int max_int;
  }

let extend q tup ~edge_idx e =
  let qe = Query.edge q edge_idx in
  let src = Tgraph.Edge.src e and dst = Tgraph.Edge.dst e in
  let sb = tup.binds.(qe.Query.src_var) and db = tup.binds.(qe.Query.dst_var) in
  let src_ok = sb = -1 || sb = src in
  let dst_ok = db = -1 || db = dst in
  let loop_ok = qe.Query.src_var <> qe.Query.dst_var || src = dst in
  if src_ok && dst_ok && loop_ok then begin
    let edges = Array.copy tup.edges in
    let binds = Array.copy tup.binds in
    edges.(edge_idx) <- Tgraph.Edge.id e;
    binds.(qe.Query.src_var) <- src;
    binds.(qe.Query.dst_var) <- dst;
    Some { edges; binds; life = tup.life }
  end
  else None

let select_temporal ?(min_len = 1) tup ~ws ~we ~edge =
  match Temporal.Interval.intersect tup.life (Tgraph.Edge.ivl edge) with
  | None -> None
  | Some life ->
      if
        Temporal.Interval.overlaps_window life ~ws ~we
        && Temporal.Interval.length life >= min_len
      then Some { tup with life }
      else None

let is_complete tup = Array.for_all (fun id -> id >= 0) tup.edges

let to_match tup =
  if not (is_complete tup) then invalid_arg "Tuple.to_match: incomplete tuple";
  Match_result.make (Array.copy tup.edges) tup.life

let pp fmt tup =
  Format.fprintf fmt "(%s | %s | %a)"
    (String.concat ","
       (Array.to_list (Array.map string_of_int tup.edges)))
    (String.concat ","
       (Array.to_list (Array.map string_of_int tup.binds)))
    Temporal.Interval.pp tup.life
