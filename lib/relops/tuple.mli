(** Partial-match tuples flowing through the baseline pipelines.

    A tuple binds a subset of query edges (by graph edge id, [-1] for
    unmatched) and the query variables they determine, and carries the
    running interval intersection of its bound edges. *)

type t = {
  edges : int array;  (** per query edge: graph edge id or -1 *)
  binds : int array;  (** per query variable: vertex or -1 *)
  life : Temporal.Interval.t;
}

val initial : Semantics.Query.t -> t
(** No edges bound; life is the universal interval. *)

val extend :
  Semantics.Query.t -> t -> edge_idx:int -> Tgraph.Edge.t -> t option
(** [extend q tup ~edge_idx e] binds query edge [edge_idx] to [e] if the
    endpoint bindings are consistent, without temporal checks (the
    topological join). Returns a fresh tuple. *)

val select_temporal :
  ?min_len:int -> t -> ws:int -> we:int -> edge:Tgraph.Edge.t -> t option
(** The temporal selection operator: intersect [life] with the newly
    bound edge's interval; keep the tuple when the intersection is at
    least [min_len] long (default 1) and overlaps the window. *)

val is_complete : t -> bool

val to_match : t -> Semantics.Match_result.t
(** @raise Invalid_argument when the tuple is incomplete. *)

val pp : Format.formatter -> t -> unit
