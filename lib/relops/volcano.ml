let batch_size = 1024

type t = { pull : unit -> Tuple.t array option }

let of_producer pull = { pull }

let next op =
  let rec go () =
    match op.pull () with
    | Some [||] -> go ()
    | (Some _ | None) as r -> r
  in
  go ()

let source seq =
  let cursor = ref seq in
  let pull () =
    match !cursor () with
    | Seq.Nil -> None
    | Seq.Cons (first, rest) ->
        let acc = Temporal.Vec.create ~capacity:batch_size () in
        Temporal.Vec.push acc first;
        let rec fill s =
          if Temporal.Vec.length acc >= batch_size then s
          else
            match s () with
            | Seq.Nil -> Seq.empty
            | Seq.Cons (x, rest) ->
                Temporal.Vec.push acc x;
                fill rest
        in
        cursor := fill rest;
        Some (Temporal.Vec.to_array acc)
  in
  of_producer pull

let flat_map f upstream =
  (* Buffers overflow tuples beyond the batch boundary so every output
     batch respects [batch_size]. *)
  let pending : Tuple.t Queue.t = Queue.create () in
  let upstream_done = ref false in
  let pull () =
    let rec refill () =
      if Queue.length pending >= batch_size || !upstream_done then ()
      else
        match next upstream with
        | None -> upstream_done := true
        | Some batch ->
            Array.iter (fun tup -> List.iter (fun o -> Queue.add o pending) (f tup)) batch;
            refill ()
    in
    refill ();
    if Queue.is_empty pending then None
    else begin
      let n = min batch_size (Queue.length pending) in
      Some (Array.init n (fun _ -> Queue.pop pending))
    end
  in
  of_producer pull

let filter_map f upstream =
  flat_map (fun tup -> match f tup with Some o -> [ o ] | None -> []) upstream

let consume op f =
  let rec go () =
    match next op with
    | None -> ()
    | Some batch ->
        Array.iter f batch;
        go ()
  in
  go ()

let count op =
  let n = ref 0 in
  consume op (fun _ -> incr n);
  !n
