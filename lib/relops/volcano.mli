(** A minimal vectorized pull-based (Volcano-style) operator framework.

    Operators produce batches of at most {!batch_size} tuples per pull,
    mirroring the paper's experimental setup ("vectorized execution,
    tuple output of each operator set to 1024"). *)

val batch_size : int
(** 1024. *)

type t
(** A pull operator over {!Tuple.t} batches. *)

val next : t -> Tuple.t array option
(** The next batch ([Some [||]] never escapes: empty pulls are retried
    internally); [None] at end of stream. *)

val of_producer : (unit -> Tuple.t array option) -> t
(** Wraps a raw batch producer (already batch-bounded). *)

val source : Tuple.t Seq.t -> t
(** Batches an arbitrary tuple sequence. *)

val flat_map : (Tuple.t -> Tuple.t list) -> t -> t
(** The generic unary operator: per input tuple emit any number of
    output tuples, re-batched to {!batch_size}. Joins and selections are
    both instances. *)

val filter_map : (Tuple.t -> Tuple.t option) -> t -> t

val consume : t -> (Tuple.t -> unit) -> unit
(** Drains the operator. *)

val count : t -> int
