let buckets_of ?(n_buckets = 24) ~over () =
  if n_buckets <= 0 then invalid_arg "Analytics: need at least one bucket";
  let ws = Temporal.Interval.ts over in
  let total = Temporal.Interval.length over in
  let width = max 1 ((total + n_buckets - 1) / n_buckets) in
  Array.init n_buckets (fun i ->
      let lo = ws + (i * width) in
      Temporal.Interval.make lo (lo + width - 1))

let lifespan_histogram ?n_buckets ~over ms =
  let buckets = buckets_of ?n_buckets ~over () in
  Array.map
    (fun bucket ->
      let count =
        List.fold_left
          (fun acc m ->
            if Temporal.Interval.overlaps m.Match_result.life bucket then
              acc + 1
            else acc)
          0 ms
      in
      (bucket, count))
    buckets

let active_at ms ~t =
  List.fold_left
    (fun acc m ->
      if Temporal.Interval.contains m.Match_result.life t then acc + 1 else acc)
    0 ms

let peak ?n_buckets ~over ms =
  let hist = lifespan_histogram ?n_buckets ~over ms in
  Array.fold_left
    (fun best (bucket, count) ->
      match best with
      | Some (_, best_count) when best_count >= count -> best
      | _ -> if count > 0 then Some (bucket, count) else best)
    None hist

let top_durable ~k ms =
  if k < 1 then invalid_arg "Analytics.top_durable: need k >= 1";
  let longer a b =
    let la = Temporal.Interval.length a.Match_result.life in
    let lb = Temporal.Interval.length b.Match_result.life in
    if la <> lb then Int.compare lb la else Match_result.compare a b
  in
  let sorted = List.sort longer ms in
  List.filteri (fun i _ -> i < k) sorted

type durability_summary = {
  count : int;
  min_len : int;
  max_len : int;
  mean_len : float;
  median_len : int;
}

let durability_summary = function
  | [] -> None
  | ms ->
      let lens =
        Array.of_list
          (List.map (fun m -> Temporal.Interval.length m.Match_result.life) ms)
      in
      Array.sort Int.compare lens;
      let n = Array.length lens in
      let sum = Array.fold_left ( + ) 0 lens in
      Some
        {
          count = n;
          min_len = lens.(0);
          max_len = lens.(n - 1);
          mean_len = float_of_int sum /. float_of_int n;
          median_len = lens.(n / 2);
        }
