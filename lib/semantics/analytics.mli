(** Descriptive analytics over match sets.

    Temporal-clique queries return matches with lifespans; applications
    usually want them summarized over time (jams per hour, co-follow
    bursts per day). These helpers aggregate lifespans without touching
    the graph. *)

val lifespan_histogram :
  ?n_buckets:int ->
  over:Temporal.Interval.t ->
  Match_result.t list ->
  (Temporal.Interval.t * int) array
(** [lifespan_histogram ~over ms] splits [over] into [n_buckets]
    (default 24) equal buckets and counts, per bucket, the matches whose
    lifespan intersects it. A match spanning several buckets counts in
    each. *)

val active_at : Match_result.t list -> t:int -> int
(** Matches whose lifespan contains the timestamp. *)

val peak :
  ?n_buckets:int ->
  over:Temporal.Interval.t ->
  Match_result.t list ->
  (Temporal.Interval.t * int) option
(** The histogram bucket with the most active matches ([None] for an
    empty match list or a histogram of zeros). *)

val top_durable : k:int -> Match_result.t list -> Match_result.t list
(** The [k] most durable matches, deterministically: longest lifespan
    first, ties broken by {!Match_result.compare}. Deterministic
    selection keeps the durability top-k aggregate comparable across
    engines.
    @raise Invalid_argument when [k < 1]. *)

type durability_summary = {
  count : int;
  min_len : int;
  max_len : int;
  mean_len : float;
  median_len : int;
}

val durability_summary : Match_result.t list -> durability_summary option
(** Lifespan-length statistics; [None] on an empty list. *)
