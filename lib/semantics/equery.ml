(* Extended queries: a core conjunctive pattern decorated with temporal
   antijoin / semijoin clauses, Allen-relation constraints between core
   edges, and an optional aggregate. The decorations are evaluated as a
   layer over any core engine: run the core, then slice each match's
   lifespan with interval arithmetic (Temporal.Ivlset). *)

type endpoint = Var of int | Any

type clause = { lbl : int; src : endpoint; dst : endpoint }

type agg = Count | Top of int

type t = {
  core : Query.t;
  anti : clause list;
  semi : clause list;
  allen : (int * Temporal.Allen.relation * int) list;
  agg : agg option;
}

let core t = t.core
let anti t = t.anti
let semi t = t.semi
let allen t = t.allen
let agg t = t.agg

let used_vars q =
  let used = Array.make (Query.n_vars q) false in
  Array.iter
    (fun e ->
      used.(e.Query.src_var) <- true;
      used.(e.Query.dst_var) <- true)
    (Query.edges q);
  used

let validate t =
  let used = used_vars t.core in
  let check_endpoint = function
    | Any -> ()
    | Var v ->
        if v < 0 || v >= Array.length used || not used.(v) then
          invalid_arg
            (Printf.sprintf
               "Equery: clause variable %d is not used by the core pattern" v)
  in
  let check_clause c =
    if c.lbl < Query.any_label then invalid_arg "Equery: clause label < -1";
    check_endpoint c.src;
    check_endpoint c.dst
  in
  List.iter check_clause t.anti;
  List.iter check_clause t.semi;
  let n = Query.n_edges t.core in
  List.iter
    (fun (i, _, j) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Equery: Allen constraint references an edge out of range";
      if i = j then
        invalid_arg "Equery: Allen constraint relates an edge to itself")
    t.allen;
  (match t.agg with
  | Some (Top k) when k < 1 -> invalid_arg "Equery: TOP needs k >= 1"
  | _ -> ());
  t

let make ?(anti = []) ?(semi = []) ?(allen = []) ?agg core =
  validate { core; anti; semi; allen; agg }

let plain core = { core; anti = []; semi = []; allen = []; agg = None }

let is_plain t = t.anti = [] && t.semi = [] && t.allen = [] && t.agg = None

let has_decorations t = t.anti <> [] || t.semi <> [] || t.allen <> []

let with_window t w = { t with core = Query.with_window t.core w }
let with_min_duration t d = { t with core = Query.with_min_duration t.core d }
let with_agg t agg = { t with agg }
let with_anti t anti = validate { t with anti }
let with_semi t semi = validate { t with semi }
let with_allen t allen = validate { t with allen }

let map_labels f t =
  let map_lbl l = if l = Query.any_label then l else f l in
  let edges =
    Array.to_list (Query.edges t.core)
    |> List.map (fun e -> (map_lbl e.Query.lbl, e.Query.src_var, e.Query.dst_var))
  in
  let core =
    Query.make ~n_vars:(Query.n_vars t.core) ~edges
      ~window:(Query.window t.core)
  in
  let core = Query.with_min_duration core (Query.min_duration t.core) in
  let map_clause c = { c with lbl = map_lbl c.lbl } in
  {
    t with
    core;
    anti = List.map map_clause t.anti;
    semi = List.map map_clause t.semi;
  }

(* ---- decoration semantics ---- *)

(* Reconstruct the vertex bound to each core variable from a complete
   match. Variables unused by the core stay -1 (such variables are
   rejected as clause endpoints by [validate]). *)
let bindings_of g q (m : Match_result.t) =
  let b = Array.make (Query.n_vars q) (-1) in
  Array.iteri
    (fun i eid ->
      let qe = Query.edge q i in
      let e = Tgraph.Graph.edge g eid in
      b.(qe.Query.src_var) <- Tgraph.Edge.src e;
      b.(qe.Query.dst_var) <- Tgraph.Edge.dst e)
    m.Match_result.edges;
  b

let allen_ok g constraints (m : Match_result.t) =
  List.for_all
    (fun (i, rel, j) ->
      let ivl k = Tgraph.Edge.ivl (Tgraph.Graph.edge g m.Match_result.edges.(k)) in
      Temporal.Allen.classify (ivl i) (ivl j) = rel)
    constraints

(* Per-clause index: graph edges with a matching label, bucketed by the
   constrained endpoints (-1 on an [Any] side), each bucket's intervals
   pre-normalized to the union set. Clause matching deliberately ignores
   the query window — the clause union is then independent of the window,
   which keeps window-shifting metamorphic relations exact. *)
type clause_index = {
  clause : clause;
  buckets : (int * int, Temporal.Ivlset.t) Hashtbl.t;
}

type prepared = {
  eq : t;
  g : Tgraph.Graph.t;
  anti_idx : clause_index list;
  semi_idx : clause_index list;
}

let index_clause g c =
  let raw = Hashtbl.create 16 in
  Tgraph.Graph.iter_edges
    (fun e ->
      if c.lbl = Query.any_label || Tgraph.Edge.lbl e = c.lbl then begin
        let key =
          ( (match c.src with Var _ -> Tgraph.Edge.src e | Any -> -1),
            match c.dst with Var _ -> Tgraph.Edge.dst e | Any -> -1 )
        in
        let cur = try Hashtbl.find raw key with Not_found -> [] in
        Hashtbl.replace raw key (Tgraph.Edge.ivl e :: cur)
      end)
    g;
  let buckets = Hashtbl.create (Hashtbl.length raw) in
  Hashtbl.iter
    (fun key ivls -> Hashtbl.add buckets key (Temporal.Ivlset.of_list ivls))
    raw;
  { clause = c; buckets }

let prepare g eq =
  {
    eq;
    g;
    anti_idx = List.map (index_clause g) eq.anti;
    semi_idx = List.map (index_clause g) eq.semi;
  }

let clause_union ci b =
  let key =
    ( (match ci.clause.src with Var v -> b.(v) | Any -> -1),
      match ci.clause.dst with Var v -> b.(v) | Any -> -1 )
  in
  try Hashtbl.find ci.buckets key with Not_found -> Temporal.Ivlset.empty

(* The pieces of a core match: maximal intervals of
   (life ∩ ⋂ semi unions) \ (⋃ anti unions), each kept only if it is
   durable and overlaps the window. Always a refinement of the core
   lifespan. *)
let decorate p (m : Match_result.t) =
  if not (allen_ok p.g p.eq.allen m) then []
  else begin
    let pieces =
      if p.anti_idx = [] && p.semi_idx = [] then [ m.Match_result.life ]
      else begin
        let b = bindings_of p.g p.eq.core m in
        let base = Temporal.Ivlset.of_interval m.Match_result.life in
        let base =
          List.fold_left
            (fun acc ci -> Temporal.Ivlset.inter acc (clause_union ci b))
            base p.semi_idx
        in
        let cut =
          List.fold_left
            (fun acc ci -> Temporal.Ivlset.union acc (clause_union ci b))
            Temporal.Ivlset.empty p.anti_idx
        in
        Temporal.Ivlset.to_list (Temporal.Ivlset.diff base cut)
      end
    in
    let d = Query.min_duration p.eq.core in
    let ws = Query.ws p.eq.core and we = Query.we p.eq.core in
    List.filter_map
      (fun ivl ->
        if
          Temporal.Interval.length ivl >= d
          && Temporal.Interval.overlaps_window ivl ~ws ~we
        then Some (Match_result.make m.Match_result.edges ivl)
        else None)
      pieces
  end

(* Aggregate application. [Top k] is a deterministic selection so every
   engine agrees exactly; [Count] leaves the pieces untouched — it only
   changes presentation at the CLI/server boundary. *)
let select eq ms =
  match eq.agg with
  | Some (Top k) -> Analytics.top_durable ~k ms
  | Some Count | None -> ms

let evaluate_with eval g eq =
  let core_results = eval eq.core in
  let results =
    if has_decorations eq then
      let p = prepare g eq in
      List.concat_map (decorate p) core_results
    else core_results
  in
  select eq results
