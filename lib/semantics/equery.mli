(** Extended temporal-relational queries.

    An extended query is a core temporal-clique pattern ({!Query.t})
    decorated with:

    - {b antijoin} clauses ([NOT]): for each core match, the union of
      intervals of graph edges matching the clause is {e subtracted}
      from the match lifespan — matched intervals are removed, whole
      matches are only dropped when nothing survives;
    - {b semijoin} clauses ([EXISTS]): the lifespan is {e intersected}
      with the clause's matched union;
    - {b Allen constraints} between core edges ([a BEFORE b], ...):
      whole-match post-filters on the classified relation of the two
      bound graph-edge intervals;
    - an optional {b aggregate}: [COUNT] (presentation only) or [TOP k]
      (deterministic durability top-k selection).

    A clause is a single labeled step whose endpoints are either core
    variables or unconstrained ([Any]); clause matching ignores the
    query window, so the decoration of a match does not depend on the
    window — the property that keeps window-shifting metamorphic
    relations exact.

    The decorated result of a match is its list of {e pieces}: the
    maximal intervals of [(life ∩ ⋂ semi) \ (⋃ anti)], each kept only
    when it lasts [min_duration] and overlaps the window. Pieces are
    always sub-intervals of the core lifespan. *)

type endpoint = Var of int | Any

type clause = { lbl : int; src : endpoint; dst : endpoint }
(** [lbl] is a label id or {!Query.any_label}. *)

type agg = Count | Top of int

type t

val make :
  ?anti:clause list ->
  ?semi:clause list ->
  ?allen:(int * Temporal.Allen.relation * int) list ->
  ?agg:agg ->
  Query.t ->
  t
(** @raise Invalid_argument when a clause endpoint names a variable not
    used by a core edge, a clause label is below {!Query.any_label}, an
    Allen constraint is out of range or relates an edge to itself, or
    [TOP k] has [k < 1]. *)

val plain : Query.t -> t
(** No decorations, no aggregate: exactly the core semantics. *)

val is_plain : t -> bool

val has_decorations : t -> bool
(** Whether any anti/semi clause or Allen constraint is present
    (the aggregate does not count: it is a selection, not a
    per-match decoration). *)

val core : t -> Query.t
val anti : t -> clause list
val semi : t -> clause list
val allen : t -> (int * Temporal.Allen.relation * int) list
val agg : t -> agg option

val with_window : t -> Temporal.Interval.t -> t
val with_min_duration : t -> int -> t
val with_agg : t -> agg option -> t

val with_anti : t -> clause list -> t
val with_semi : t -> clause list -> t
val with_allen : t -> (int * Temporal.Allen.relation * int) list -> t
(** Replace one decoration family, revalidating against the core
    (@raise Invalid_argument as {!make}). Used by the metamorphic
    relations and the shrinker to splice decorations in and out. *)

val map_labels : (int -> int) -> t -> t
(** Applies the map to every core-edge and clause label; the wildcard is
    preserved. *)

val bindings_of : Tgraph.Graph.t -> Query.t -> Match_result.t -> int array
(** The vertex bound to each core variable ([-1] for variables no core
    edge uses). *)

val allen_ok :
  Tgraph.Graph.t ->
  (int * Temporal.Allen.relation * int) list ->
  Match_result.t ->
  bool
(** Whether the match satisfies every constraint, by classifying the
    bound graph-edge intervals. *)

type prepared
(** Per-graph clause indexes, built once and reused across matches. *)

val prepare : Tgraph.Graph.t -> t -> prepared

val decorate : prepared -> Match_result.t -> Match_result.t list
(** The pieces of one core match (empty when an Allen constraint fails
    or nothing durable survives the clause arithmetic). For a query
    without decorations this is the identity (a singleton). *)

val select : t -> Match_result.t list -> Match_result.t list
(** Applies the aggregate selection: [TOP k] keeps the deterministic
    durability top-k ({!Analytics.top_durable}); [COUNT] and no
    aggregate pass through. *)

val evaluate_with :
  (Query.t -> Match_result.t list) -> Tgraph.Graph.t -> t -> Match_result.t list
(** [evaluate_with eval g eq]: runs the core through [eval], decorates
    every match, applies {!select}. The universal extended evaluator —
    pass any engine's core evaluation as [eval]. *)
