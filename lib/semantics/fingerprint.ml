(* Query-shape fingerprints: a stable 64-bit hash of the label / arity /
   constraint shape of an extended query — the future plan-cache key and
   the grouping key of the server's query log.

   Two queries fingerprint identically iff their canonical forms agree:
   variables are renumbered by first appearance in edge order (so any
   alias or variable renaming that preserves the edge list is
   invisible), the window contributes only its length (so translating
   the window in time is invisible), and clause lists are sorted (so
   clause order is invisible). Everything that changes what the planner
   or executor would do — a label, an edge, a constraint, the duration
   floor, the aggregate, the window length — changes the fingerprint. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

(* canonical variable ids: order of first appearance over the edge list
   (src before dst), the same order [Qlang.render_ext] names variables
   in — so a render/parse roundtrip maps onto the identical canon *)
let canon_vars q =
  let canon = Array.make (Query.n_vars q) (-1) in
  let next = ref 0 in
  let visit v =
    if canon.(v) < 0 then begin
      canon.(v) <- !next;
      incr next
    end
  in
  Array.iter
    (fun (e : Query.edge) ->
      visit e.Query.src_var;
      visit e.Query.dst_var)
    (Query.edges q);
  canon

let canonical eq =
  let q = Equery.core eq in
  let canon = canon_vars q in
  let buf = Buffer.create 128 in
  Printf.bprintf buf "tcsq-fp/v1";
  Array.iter
    (fun (e : Query.edge) ->
      Printf.bprintf buf "|e%d:%d>%d" e.Query.lbl canon.(e.Query.src_var)
        canon.(e.Query.dst_var))
    (Query.edges q);
  Printf.bprintf buf "|w%d" (Temporal.Interval.length (Query.window q));
  Printf.bprintf buf "|d%d" (Query.min_duration q);
  let endpoint = function
    | Equery.Any -> "*"
    | Equery.Var v -> string_of_int canon.(v)
  in
  let clause_strings kind cs =
    List.map
      (fun (c : Equery.clause) ->
        Printf.sprintf "%s%d:%s>%s" kind c.Equery.lbl (endpoint c.Equery.src)
          (endpoint c.Equery.dst))
      cs
    |> List.sort String.compare
  in
  List.iter (Printf.bprintf buf "|%s")
    (clause_strings "n" (Equery.anti eq));
  List.iter (Printf.bprintf buf "|%s")
    (clause_strings "x" (Equery.semi eq));
  List.iter (Printf.bprintf buf "|%s")
    (List.sort String.compare
       (List.map
          (fun (i, rel, j) ->
            Printf.sprintf "a%d %s %d" i (Temporal.Allen.to_string rel) j)
          (Equery.allen eq)));
  (match Equery.agg eq with
  | None -> ()
  | Some Equery.Count -> Printf.bprintf buf "|count"
  | Some (Equery.Top k) -> Printf.bprintf buf "|top%d" k);
  Buffer.contents buf

let of_equery eq = Printf.sprintf "%016Lx" (fnv1a64 (canonical eq))

let of_query q = of_equery (Equery.plain q)

(* ---- plan-cache keys ---- *)

let canonical_vars = canon_vars

(* ceil-log2 buckets over the window length: lengths 1 | 2 | 3-4 | 5-8 |
   9-16 | ... share a bucket, so 2^k and 2^k + 1 always key apart — the
   planner's temporal factors move smoothly within a bucket but change
   regime across the doubling boundary. *)
let window_bucket len =
  if len <= 1 then 0
  else begin
    (* bits of (len - 1) = ceil (log2 len) for len >= 2 *)
    let n = ref (len - 1) and b = ref 0 in
    while !n > 0 do
      incr b;
      n := !n lsr 1
    done;
    !b
  end

let canonical_plan q =
  let canon = canon_vars q in
  let buf = Buffer.create 96 in
  Printf.bprintf buf "tcsq-fp-plan/v1";
  Array.iter
    (fun (e : Query.edge) ->
      Printf.bprintf buf "|e%d:%d>%d" e.Query.lbl canon.(e.Query.src_var)
        canon.(e.Query.dst_var))
    (Query.edges q);
  Printf.bprintf buf "|wb%d"
    (window_bucket (Temporal.Interval.length (Query.window q)));
  Printf.bprintf buf "|d%d" (Query.min_duration q);
  Buffer.contents buf

let plan_key q = Printf.sprintf "%016Lx" (fnv1a64 (canonical_plan q))
