(** Canonical query-shape fingerprints.

    A fingerprint is a 16-hex-digit FNV-1a hash of a query's canonical
    shape: its edge list over first-appearance-renumbered variables,
    each edge's label id, the window {e length} (not its position), the
    duration floor, the sorted NOT/EXISTS clause shapes, the sorted
    Allen constraints, and the aggregate. It is the grouping key of the
    server's query log and metrics ("which query shapes are hot?") and
    the designated plan-cache key for adaptive re-optimization.

    Invariances (pinned by QCheck properties in [test_fingerprint]):
    - variable and alias renaming that preserves the edge list;
    - [Qlang.render_ext] / [Qlang.parse_and_compile_ext] roundtrips;
    - translating the window (and the graph) in time;
    - reordering NOT/EXISTS clauses or Allen constraints.

    Sensitivity: changing a label, adding/removing an edge or clause or
    constraint, the duration floor, the aggregate, or the window length
    all change the canonical form (and, modulo 64-bit hash collisions,
    the fingerprint). *)

val canonical : Equery.t -> string
(** The readable canonical form ([tcsq-fp/v1|...]) the hash is computed
    over — for debugging and collision triage, not for the wire. *)

val of_equery : Equery.t -> string
(** 16 lowercase hex digits. *)

val of_query : Query.t -> string
(** [of_equery (Equery.plain q)]. *)

(** {2 Plan-cache keys}

    The plan cache keys on a {e coarser} canonical form than the
    fingerprint: only what the TSRJoin planner actually reads — the
    canonical edge list, the duration floor, and the window length
    {e bucketed} into ceil-log2 classes (plan choice is stable within a
    doubling of the window but can flip across one; exact lengths would
    make every zoom level a cold miss). NOT/EXISTS clauses, Allen
    constraints and aggregates decorate results after the core join and
    never influence the plan, so they are deliberately absent. *)

val window_bucket : int -> int
(** Ceil-log2 bucket of a window length: lengths [1], [2], [3..4],
    [5..8], [9..16], ... map to buckets [0, 1, 2, 3, 4, ...] — so
    [2^k] and [2^k + 1] always key apart. Negative or zero lengths
    share bucket [0]. *)

val canonical_plan : Query.t -> string
(** The readable plan-key form ([tcsq-fp-plan/v1|...]): canonical edges,
    bucketed window length, duration floor. *)

val plan_key : Query.t -> string
(** 16 lowercase hex digits over {!canonical_plan} — the plan-cache
    lookup key. Two queries with equal keys have edge lists of the same
    length whose i-th edges agree on label and canonical endpoints
    (modulo hash collision), which is exactly the property that makes a
    cached pivot order transferable between them. *)

val canonical_vars : Query.t -> int array
(** The canonicalization behind both forms: actual variable id →
    canonical id by first appearance over the edge list (src before
    dst); [-1] for variables appearing in no edge. The plan cache uses
    it (and its inverse) to store pivots in canonical space and rebuild
    them against a fingerprint-equal query. *)
