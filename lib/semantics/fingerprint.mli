(** Canonical query-shape fingerprints.

    A fingerprint is a 16-hex-digit FNV-1a hash of a query's canonical
    shape: its edge list over first-appearance-renumbered variables,
    each edge's label id, the window {e length} (not its position), the
    duration floor, the sorted NOT/EXISTS clause shapes, the sorted
    Allen constraints, and the aggregate. It is the grouping key of the
    server's query log and metrics ("which query shapes are hot?") and
    the designated plan-cache key for adaptive re-optimization.

    Invariances (pinned by QCheck properties in [test_fingerprint]):
    - variable and alias renaming that preserves the edge list;
    - [Qlang.render_ext] / [Qlang.parse_and_compile_ext] roundtrips;
    - translating the window (and the graph) in time;
    - reordering NOT/EXISTS clauses or Allen constraints.

    Sensitivity: changing a label, adding/removing an edge or clause or
    constraint, the duration floor, the aggregate, or the window length
    all change the canonical form (and, modulo 64-bit hash collisions,
    the fingerprint). *)

val canonical : Equery.t -> string
(** The readable canonical form ([tcsq-fp/v1|...]) the hash is computed
    over — for debugging and collision triage, not for the wire. *)

val of_equery : Equery.t -> string
(** 16 lowercase hex digits. *)

val of_query : Query.t -> string
(** [of_equery (Equery.plain q)]. *)
