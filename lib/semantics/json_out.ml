let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let obj fields =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> escape_string k ^ ": " ^ v) fields)
  ^ "}"

let arr items = "[" ^ String.concat ", " items ^ "]"

let edge_to_json g id =
  let e = Tgraph.Graph.edge g id in
  Printf.sprintf "{\"id\": %d, \"src\": %d, \"dst\": %d, \"label\": %s, \"ts\": %d, \"te\": %d}"
    id (Tgraph.Edge.src e) (Tgraph.Edge.dst e)
    (escape_string (Tgraph.Label.name (Tgraph.Graph.labels g) (Tgraph.Edge.lbl e)))
    (Tgraph.Edge.ts e) (Tgraph.Edge.te e)

let match_to_json g m =
  Printf.sprintf "{\"edges\": [%s], \"lifespan\": {\"ts\": %d, \"te\": %d}}"
    (String.concat ", "
       (Array.to_list (Array.map (edge_to_json g) m.Match_result.edges)))
    (Temporal.Interval.ts m.Match_result.life)
    (Temporal.Interval.te m.Match_result.life)

let matches_to_json g ms =
  "[" ^ String.concat ",\n " (List.map (match_to_json g) ms) ^ "]"

let csv_header = "edges,lifespan_ts,lifespan_te"

let match_to_csv m =
  Printf.sprintf "%s,%d,%d"
    (String.concat ";"
       (Array.to_list (Array.map string_of_int m.Match_result.edges)))
    (Temporal.Interval.ts m.Match_result.life)
    (Temporal.Interval.te m.Match_result.life)
