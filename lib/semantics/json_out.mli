(** Minimal JSON serialization of query results (writer only — the
    system never parses JSON, so no parser is vendored).

    Matches serialize with their edge bindings resolved against the
    graph, e.g.:

    {v
    {"edges": [{"id": 3, "src": 0, "dst": 4, "label": "a",
                "ts": 13, "te": 15}, ...],
     "lifespan": {"ts": 15, "te": 15}}
    v} *)

val escape_string : string -> string
(** JSON string escaping (quotes included). *)

val obj : (string * string) list -> string
(** [obj [(key, rendered_value); ...]] is a JSON object; keys are
    escaped, values are emitted verbatim (callers render them). *)

val arr : string list -> string
(** A JSON array of already-rendered values. *)

val match_to_json : Tgraph.Graph.t -> Match_result.t -> string

val matches_to_json : Tgraph.Graph.t -> Match_result.t list -> string
(** A JSON array of matches. *)

val match_to_csv : Match_result.t -> string
(** Terse CSV: edge ids separated by [;], then lifespan start/end. *)

val csv_header : string
