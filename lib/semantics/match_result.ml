type t = { edges : int array; life : Temporal.Interval.t }

let make edges life = { edges; life }

let compare a b =
  let la = Array.length a.edges and lb = Array.length b.edges in
  let c = Int.compare la lb in
  if c <> 0 then c
  else begin
    let rec go i =
      if i = la then Temporal.Interval.compare a.life b.life
      else
        let c = Int.compare a.edges.(i) b.edges.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

let equal a b = compare a b = 0

let pp fmt m =
  Format.fprintf fmt "(%s, %a)"
    (String.concat ", "
       (Array.to_list (Array.map (Printf.sprintf "e%d") m.edges)))
    Temporal.Interval.pp m.life

let life_of_edges g edges =
  let open Temporal in
  Array.fold_left
    (fun acc id ->
      match acc with
      | None -> None
      | Some life -> Interval.intersect life (Tgraph.Edge.ivl (Tgraph.Graph.edge g id)))
    (Some (Interval.make min_int max_int))
    edges

let verify g q m =
  let open Tgraph in
  let n = Query.n_edges q in
  if Array.length m.edges <> n then
    Error
      (Printf.sprintf "match has %d edge bindings, query has %d edges"
         (Array.length m.edges) n)
  else begin
    let bindings = Array.make (Query.n_vars q) (-1) in
    let problem = ref None in
    let bind v vertex =
      if bindings.(v) = -1 then bindings.(v) <- vertex
      else if bindings.(v) <> vertex && !problem = None then
        problem :=
          Some
            (Printf.sprintf "variable x%d bound to both %d and %d" v
               bindings.(v) vertex)
    in
    Array.iteri
      (fun i id ->
        let qe = Query.edge q i in
        let e = Graph.edge g id in
        if qe.Query.lbl <> Query.any_label && Edge.lbl e <> qe.Query.lbl
           && !problem = None then
          problem :=
            Some
              (Printf.sprintf "edge %d: label %d does not match query label %d"
                 id (Edge.lbl e) qe.Query.lbl);
        bind qe.Query.src_var (Edge.src e);
        bind qe.Query.dst_var (Edge.dst e))
      m.edges;
    match !problem with
    | Some msg -> Error msg
    | None -> (
        match life_of_edges g m.edges with
        | None -> Error "matched intervals have empty intersection"
        | Some life ->
            if not (Temporal.Interval.equal life m.life) then
              Error
                (Printf.sprintf "claimed lifespan %s but intervals meet at %s"
                   (Temporal.Interval.to_string m.life)
                   (Temporal.Interval.to_string life))
            else if not (Temporal.Interval.overlaps life (Query.window q)) then
              Error "lifespan does not overlap the query window"
            else if Temporal.Interval.length life < Query.min_duration q then
              Error "lifespan shorter than the query's duration floor"
            else Ok ())
  end

module Result_set = struct
  type match_t = t
  type nonrec t = match_t array

  let of_list l =
    let arr = Array.of_list l in
    Array.sort compare arr;
    let out = ref [] and count = ref 0 in
    Array.iter
      (fun m ->
        match !out with
        | prev :: _ when equal prev m -> ()
        | _ ->
            out := m :: !out;
            incr count)
      arr;
    let res = Array.of_list (List.rev !out) in
    res

  let cardinality = Array.length
  let to_list = Array.to_list

  let equal a b =
    Array.length a = Array.length b
    && begin
         let rec go i =
           i = Array.length a || (compare a.(i) b.(i) = 0 && go (i + 1))
         in
         go 0
       end

  let diff_summary ~expected ~actual =
    if equal expected actual then None
    else begin
      let to_set arr =
        List.fold_left
          (fun acc m -> m :: acc)
          [] (Array.to_list arr)
      in
      let mem arr m = Array.exists (fun m' -> compare m m' = 0) arr in
      let missing =
        List.filter (fun m -> not (mem actual m)) (to_set expected)
      in
      let extra = List.filter (fun m -> not (mem expected m)) (to_set actual) in
      let show l =
        String.concat "; "
          (List.map (Format.asprintf "%a" pp) (List.filteri (fun i _ -> i < 5) l))
      in
      Some
        (Printf.sprintf
           "expected %d matches, got %d. missing (%d): %s | extra (%d): %s"
           (Array.length expected) (Array.length actual) (List.length missing)
           (show missing) (List.length extra) (show extra))
    end
end
