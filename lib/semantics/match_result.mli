(** Complete matches and normalized result sets.

    A match binds query edge [i] to graph edge [edges.(i)]; [life] is the
    non-empty intersection of the matched intervals. Result sets are
    order-insensitive: use {!Result_set} to compare engine outputs. *)

type t = { edges : int array; life : Temporal.Interval.t }

val make : int array -> Temporal.Interval.t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val life_of_edges : Tgraph.Graph.t -> int array -> Temporal.Interval.t option
(** Intersection of the intervals of the given graph edges. *)

val verify : Tgraph.Graph.t -> Query.t -> t -> (unit, string) result
(** Checks a claimed match against the full query semantics: labels,
    endpoint consistency, non-empty lifespan equal to the claimed one,
    window overlap. The backbone of cross-engine testing. *)

module Result_set : sig
  type match_t := t
  type t

  val of_list : match_t list -> t
  (** Sorts and de-duplicates. *)

  val cardinality : t -> int
  val to_list : t -> match_t list
  val equal : t -> t -> bool

  val diff_summary : expected:t -> actual:t -> string option
  (** [None] when equal; otherwise a human-readable digest of the first
      few missing/extra matches. *)
end
