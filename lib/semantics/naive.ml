exception Done

let evaluate ?(limit = max_int) g q =
  let open Tgraph in
  let n = Query.n_edges q in
  let ws = Query.ws q and we = Query.we q in
  let min_duration = Query.min_duration q in
  (* Candidates per label (and under the wildcard key): edges
     overlapping the query window. *)
  let candidates = Hashtbl.create 8 in
  Graph.iter_edges
    (fun e ->
      if Temporal.Interval.overlaps_window (Edge.ivl e) ~ws ~we then begin
        let add key =
          let cur = try Hashtbl.find candidates key with Not_found -> [] in
          Hashtbl.replace candidates key (e :: cur)
        in
        add (Edge.lbl e);
        add Query.any_label
      end)
    g;
  let bindings = Array.make (Query.n_vars q) (-1) in
  let chosen = Array.make n (-1) in
  let results = ref [] in
  let count = ref 0 in
  let rec step i life =
    if i = n then begin
      results := Match_result.make (Array.copy chosen) life :: !results;
      incr count;
      if !count >= limit then raise Done
    end
    else begin
      let qe = Query.edge q i in
      let cands =
        try Hashtbl.find candidates qe.Query.lbl with Not_found -> []
      in
      List.iter
        (fun e ->
          let src_ok =
            bindings.(qe.Query.src_var) = -1
            || bindings.(qe.Query.src_var) = Edge.src e
          in
          let dst_ok =
            bindings.(qe.Query.dst_var) = -1
            || bindings.(qe.Query.dst_var) = Edge.dst e
          in
          let loop_ok =
            qe.Query.src_var <> qe.Query.dst_var || Edge.src e = Edge.dst e
          in
          if src_ok && dst_ok && loop_ok then
            match Temporal.Interval.intersect life (Edge.ivl e) with
            | None -> ()
            | Some life' when Temporal.Interval.length life' < min_duration ->
                (* lifespans only shrink: no durable completion exists *)
                ()
            | Some life' ->
                let saved_src = bindings.(qe.Query.src_var) in
                let saved_dst = bindings.(qe.Query.dst_var) in
                bindings.(qe.Query.src_var) <- Edge.src e;
                bindings.(qe.Query.dst_var) <- Edge.dst e;
                chosen.(i) <- Edge.id e;
                step (i + 1) life';
                bindings.(qe.Query.src_var) <- saved_src;
                bindings.(qe.Query.dst_var) <- saved_dst;
                chosen.(i) <- -1)
        cands
    end
  in
  (try step 0 (Temporal.Interval.make min_int max_int) with Done -> ());
  !results

let count ?limit g q = List.length (evaluate ?limit g q)

(* ---- extended reference semantics ---- *)

(* The extended oracle enumerates timestamps literally: for every tick of
   a core match's lifespan it rescans the whole edge table per clause and
   asks "is some matching edge alive right now?". Deliberately written
   without Temporal.Ivlset so the interval arithmetic of the optimized
   path is tested against an independent formulation. *)

let clause_alive_at g b (c : Equery.clause) t =
  let open Tgraph in
  let alive = ref false in
  Graph.iter_edges
    (fun e ->
      if
        (not !alive)
        && (c.Equery.lbl = Query.any_label || Edge.lbl e = c.Equery.lbl)
        && (match c.Equery.src with
           | Equery.Any -> true
           | Equery.Var v -> b.(v) = Edge.src e)
        && (match c.Equery.dst with
           | Equery.Any -> true
           | Equery.Var v -> b.(v) = Edge.dst e)
        && Temporal.Interval.contains (Edge.ivl e) t
      then alive := true)
    g;
  !alive

let pieces_of g eq m =
  let q = Equery.core eq in
  if not (Equery.allen_ok g (Equery.allen eq) m) then []
  else begin
    let b = Equery.bindings_of g q m in
    let keep t =
      List.for_all (fun c -> clause_alive_at g b c t) (Equery.semi eq)
      && not (List.exists (fun c -> clause_alive_at g b c t) (Equery.anti eq))
    in
    let life = m.Match_result.life in
    let lo = Temporal.Interval.ts life and hi = Temporal.Interval.te life in
    let d = Query.min_duration q in
    let ws = Query.ws q and we = Query.we q in
    let out = ref [] in
    let run_start = ref None in
    let flush last =
      match !run_start with
      | None -> ()
      | Some s ->
          run_start := None;
          let ivl = Temporal.Interval.make s last in
          if
            Temporal.Interval.length ivl >= d
            && Temporal.Interval.overlaps_window ivl ~ws ~we
          then out := Match_result.make m.Match_result.edges ivl :: !out
    in
    for t = lo to hi do
      if keep t then begin
        if !run_start = None then run_start := Some t
      end
      else flush (t - 1)
    done;
    flush hi;
    List.rev !out
  end

let evaluate_ext g eq =
  let core_results = evaluate g (Equery.core eq) in
  let results =
    if Equery.has_decorations eq then
      List.concat_map (pieces_of g eq) core_results
    else core_results
  in
  Equery.select eq results

let count_ext g eq = List.length (evaluate_ext g eq)
