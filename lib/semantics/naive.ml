exception Done

let evaluate ?(limit = max_int) g q =
  let open Tgraph in
  let n = Query.n_edges q in
  let ws = Query.ws q and we = Query.we q in
  let min_duration = Query.min_duration q in
  (* Candidates per label (and under the wildcard key): edges
     overlapping the query window. *)
  let candidates = Hashtbl.create 8 in
  Graph.iter_edges
    (fun e ->
      if Temporal.Interval.overlaps_window (Edge.ivl e) ~ws ~we then begin
        let add key =
          let cur = try Hashtbl.find candidates key with Not_found -> [] in
          Hashtbl.replace candidates key (e :: cur)
        in
        add (Edge.lbl e);
        add Query.any_label
      end)
    g;
  let bindings = Array.make (Query.n_vars q) (-1) in
  let chosen = Array.make n (-1) in
  let results = ref [] in
  let count = ref 0 in
  let rec step i life =
    if i = n then begin
      results := Match_result.make (Array.copy chosen) life :: !results;
      incr count;
      if !count >= limit then raise Done
    end
    else begin
      let qe = Query.edge q i in
      let cands =
        try Hashtbl.find candidates qe.Query.lbl with Not_found -> []
      in
      List.iter
        (fun e ->
          let src_ok =
            bindings.(qe.Query.src_var) = -1
            || bindings.(qe.Query.src_var) = Edge.src e
          in
          let dst_ok =
            bindings.(qe.Query.dst_var) = -1
            || bindings.(qe.Query.dst_var) = Edge.dst e
          in
          let loop_ok =
            qe.Query.src_var <> qe.Query.dst_var || Edge.src e = Edge.dst e
          in
          if src_ok && dst_ok && loop_ok then
            match Temporal.Interval.intersect life (Edge.ivl e) with
            | None -> ()
            | Some life' when Temporal.Interval.length life' < min_duration ->
                (* lifespans only shrink: no durable completion exists *)
                ()
            | Some life' ->
                let saved_src = bindings.(qe.Query.src_var) in
                let saved_dst = bindings.(qe.Query.dst_var) in
                bindings.(qe.Query.src_var) <- Edge.src e;
                bindings.(qe.Query.dst_var) <- Edge.dst e;
                chosen.(i) <- Edge.id e;
                step (i + 1) life';
                bindings.(qe.Query.src_var) <- saved_src;
                bindings.(qe.Query.dst_var) <- saved_dst;
                chosen.(i) <- -1)
        cands
    end
  in
  (try step 0 (Temporal.Interval.make min_int max_int) with Done -> ());
  !results

let count ?limit g q = List.length (evaluate ?limit g q)
