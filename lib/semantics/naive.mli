(** Brute-force oracle evaluator.

    Backtracks over query edges in order, scanning the whole edge table
    per step. Exponentially slower than any engine in this repository but
    obviously correct — it is the ground truth for every cross-engine
    test. *)

val evaluate : ?limit:int -> Tgraph.Graph.t -> Query.t -> Match_result.t list
(** All complete matches, in unspecified order. Stops after [limit]
    matches when given. *)

val count : ?limit:int -> Tgraph.Graph.t -> Query.t -> int
