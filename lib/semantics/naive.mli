(** Brute-force oracle evaluator.

    Backtracks over query edges in order, scanning the whole edge table
    per step. Exponentially slower than any engine in this repository but
    obviously correct — it is the ground truth for every cross-engine
    test. *)

val evaluate : ?limit:int -> Tgraph.Graph.t -> Query.t -> Match_result.t list
(** All complete matches, in unspecified order. Stops after [limit]
    matches when given. *)

val count : ?limit:int -> Tgraph.Graph.t -> Query.t -> int

val evaluate_ext : Tgraph.Graph.t -> Equery.t -> Match_result.t list
(** Extended-operator reference semantics by literal timestamp
    enumeration: every tick of a core match's lifespan is classified by
    rescanning the edge table per NOT/EXISTS clause, and consecutive
    kept ticks are grouped into maximal pieces. Independent of the
    interval-set arithmetic used by the optimized decoration path —
    that independence is the point. *)

val count_ext : Tgraph.Graph.t -> Equery.t -> int
