type shape =
  | Star of int
  | Chain of int
  | Cycle of int
  | T_shape of int
  | Double_star of int

let validate = function
  | Star k when k >= 1 -> ()
  | Chain k when k >= 1 -> ()
  | Cycle k when k >= 3 -> ()
  | T_shape k when k >= 3 -> ()
  | Double_star k when k >= 1 -> ()
  | Star k -> invalid_arg (Printf.sprintf "Pattern: %d-star needs k >= 1" k)
  | Chain k -> invalid_arg (Printf.sprintf "Pattern: %d-chain needs k >= 1" k)
  | Cycle k -> invalid_arg (Printf.sprintf "Pattern: %d-circle needs k >= 3" k)
  | T_shape k ->
      invalid_arg (Printf.sprintf "Pattern: %d-tshape needs k >= 3" k)
  | Double_star k ->
      invalid_arg (Printf.sprintf "Pattern: %d-dstar needs k >= 1" k)

let n_edges = function
  | Star k | Chain k | Cycle k | T_shape k -> k
  | Double_star k -> 2 * k

let n_vars = function
  | Star k -> k + 1
  | Chain k -> k + 1
  | Cycle k -> k
  | T_shape k -> k + 1
  | Double_star k -> k + 2

let instantiate shape ~labels ~window =
  validate shape;
  let k = n_edges shape in
  if Array.length labels <> k then
    invalid_arg
      (Printf.sprintf "Pattern.instantiate: expected %d labels, got %d" k
         (Array.length labels));
  let edge i (s, d) = (labels.(i), s, d) in
  let edges =
    match shape with
    | Star k ->
        (* center is variable 0; spokes are 1..k *)
        List.init k (fun i -> edge i (0, i + 1))
    | Chain k -> List.init k (fun i -> edge i (i, i + 1))
    | Cycle k -> List.init k (fun i -> edge i (i, (i + 1) mod k))
    | T_shape k ->
        (* two spokes out of variable 0 (to 1 and 2), then a chain
           2 -> 3 -> ... *)
        edge 0 (0, 1) :: edge 1 (0, 2)
        :: List.init (k - 2) (fun i -> edge (i + 2) (i + 2, i + 3))
    | Double_star k ->
        (* centers are variables 0 and 1; shared targets are 2..k+1 *)
        List.init k (fun i -> edge i (0, i + 2))
        @ List.init k (fun i -> edge (k + i) (1, i + 2))
  in
  Query.make ~n_vars:(n_vars shape) ~edges ~window

let to_string = function
  | Cycle 3 -> "triangle"
  | Star k -> Printf.sprintf "%d-star" k
  | Chain k -> Printf.sprintf "%d-chain" k
  | Cycle k -> Printf.sprintf "%d-circle" k
  | T_shape k -> Printf.sprintf "%d-tshape" k
  | Double_star k -> Printf.sprintf "%d-dstar" k

let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  if s = "triangle" then Some (Cycle 3)
  else
    let try_formats kind mk =
      let prefixed = Printf.sprintf "%s" kind in
      let parse_int t = int_of_string_opt t in
      (* "4-star" *)
      match String.index_opt s '-' with
      | Some i
        when String.sub s (i + 1) (String.length s - i - 1) = prefixed ->
          Option.bind (parse_int (String.sub s 0 i)) (fun k -> Some (mk k))
      | _ ->
          (* "star4" *)
          let n = String.length prefixed in
          if String.length s > n && String.sub s 0 n = prefixed then
            Option.bind
              (parse_int (String.sub s n (String.length s - n)))
              (fun k -> Some (mk k))
          else None
    in
    let candidates =
      [
        try_formats "star" (fun k -> Star k);
        try_formats "chain" (fun k -> Chain k);
        try_formats "circle" (fun k -> Cycle k);
        try_formats "cycle" (fun k -> Cycle k);
        try_formats "tshape" (fun k -> T_shape k);
        try_formats "dstar" (fun k -> Double_star k);
      ]
    in
    let shape = List.find_opt Option.is_some candidates in
    match shape with
    | Some (Some sh) -> ( try validate sh; Some sh with Invalid_argument _ -> None)
    | Some None | None -> None

let paper_set = [ Star 3; Star 4; Chain 3; Chain 4; Cycle 3; Cycle 4 ]
let selectivity_set = [ Star 4; Chain 4; Cycle 4 ]
