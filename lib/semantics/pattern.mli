(** The query-pattern catalog (the paper's Fig. 7).

    A shape fixes the topology; {!instantiate} attaches labels and a
    window to produce a {!Query.t}. *)

type shape =
  | Star of int  (** [Star k]: k edges out of a shared center *)
  | Chain of int  (** [Chain k]: k edges in a directed path *)
  | Cycle of int  (** [Cycle k]: k edges in a directed cycle, k >= 3;
                      [Cycle 3] is the triangle *)
  | T_shape of int
      (** [T_shape k]: a 2-star whose center continues into a chain of
          [k - 2] further edges (k >= 3) *)
  | Double_star of int
      (** [Double_star k]: two centers each pointing at the same [k]
          targets (2k edges, k + 2 variables) — the intro's "pairs of
          users following k accounts in common" *)

val n_edges : shape -> int
val n_vars : shape -> int

val validate : shape -> unit
(** @raise Invalid_argument on a degenerate size (e.g. [Cycle 2]). *)

val instantiate :
  shape -> labels:int array -> window:Temporal.Interval.t -> Query.t
(** [labels] must have length [n_edges shape].
    @raise Invalid_argument otherwise. *)

val to_string : shape -> string
(** e.g. ["3-star"], ["4-chain"], ["triangle"], ["4-circle"]. *)

val of_string : string -> shape option
(** Accepts ["3-star"], ["star3"], ["triangle"], ["4-circle"],
    ["circle4"], ["4-cycle"], ["tshape4"], ["3-dstar"], ... *)

val paper_set : shape list
(** The shapes evaluated in the paper's experiments: 3-star, 4-star,
    3-chain, 4-chain, triangle, 4-circle. *)

val selectivity_set : shape list
(** The Fig. 11 subset: 4-star, 4-chain, 4-circle. *)
