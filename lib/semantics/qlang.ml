(* Hand-written lexer + recursive-descent parser: the grammar is LL(1)
   and tiny, so no parser generator is warranted. *)

type token =
  | Tmatch
  | Tin
  | Tlasting
  | Tlparen
  | Trparen
  | Tlbracket
  | Trbracket
  | Tcomma
  | Tcolon
  | Tarrow_out_head (* -[ *)
  | Tarrow_out_tail (* ]-> *)
  | Tarrow_in_head (* <-[ *)
  | Tarrow_in_tail (* ]- *)
  | Tident of string
  | Tint of int
  | Tstar
  | Teof

type lexed = { token : token; position : int }

type error = { position : int; message : string }

exception Parse_error of error

let fail position fmt =
  Format.kasprintf (fun message -> raise (Parse_error { position; message })) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let lex input =
  let n = String.length input in
  let out = ref [] in
  let i = ref 0 in
  let push token position = out := { token; position } :: !out in
  while !i < n do
    let c = input.[!i] in
    let at = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && input.[!i] <> '\n' do incr i done
    end
    else if c = '*' then (push Tstar at; incr i)
    else if c = '(' then (push Tlparen at; incr i)
    else if c = ')' then (push Trparen at; incr i)
    else if c = '[' then (push Tlbracket at; incr i)
    else if c = ',' then (push Tcomma at; incr i)
    else if c = ':' then (push Tcolon at; incr i)
    else if c = '-' then begin
      (* -[  (edge head) *)
      if !i + 1 < n && input.[!i + 1] = '[' then begin
        push Tarrow_out_head at;
        i := !i + 2
      end
      else fail at "expected '[' after '-'"
    end
    else if c = ']' then begin
      (* ]->, ]-, or a plain ] closing a window *)
      if !i + 2 < n && input.[!i + 1] = '-' && input.[!i + 2] = '>' then begin
        push Tarrow_out_tail at;
        i := !i + 3
      end
      else if !i + 1 < n && input.[!i + 1] = '-' then begin
        push Tarrow_in_tail at;
        i := !i + 2
      end
      else (push Trbracket at; incr i)
    end
    else if c = '<' then begin
      if !i + 2 < n && input.[!i + 1] = '-' && input.[!i + 2] = '[' then begin
        push Tarrow_in_head at;
        i := !i + 3
      end
      else fail at "expected '-[' after '<'"
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && input.[!j] >= '0' && input.[!j] <= '9' do incr j done;
      push (Tint (int_of_string (String.sub input !i (!j - !i)))) at;
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char input.[!j] do incr j done;
      let word = String.sub input !i (!j - !i) in
      (match String.lowercase_ascii word with
      | "match" -> push Tmatch at
      | "in" -> push Tin at
      | "lasting" -> push Tlasting at
      | _ -> push (Tident word) at);
      i := !j
    end
    else fail at "unexpected character %C" c
  done;
  push Teof n;
  Array.of_list (List.rev !out)

(* ---- AST ---- *)

type ast_edge = { lbl_name : string; src : int; dst : int }

(* A NOT/EXISTS clause: one labeled step whose endpoints are either core
   variables (resolved at parse time) or unconstrained (None). *)
type ast_clause = {
  neg : bool;
  clbl_name : string;
  csrc : int option;
  cdst : int option;
}

type ast = {
  vars : string array;
  edges : ast_edge list; (* in source order *)
  clauses : ast_clause list; (* in source order *)
  wheres : (int * Temporal.Allen.relation * int) list; (* edge indices *)
  agg : Equery.agg option;
  win : (int * int) option;
  lasting : int option;
}

let n_edges ast = List.length ast.edges
let n_vars ast = Array.length ast.vars
let var_names ast = Array.copy ast.vars
let window ast = ast.win
let lasting ast = ast.lasting

let is_extended ast =
  ast.clauses <> [] || ast.wheres <> [] || ast.agg <> None

(* ---- parser ---- *)

type state = {
  tokens : lexed array;
  mutable pos : int;
  var_ids : (string, int) Hashtbl.t;
  mutable var_order : string list;
  mutable fresh : int;
  mutable acc_edges : ast_edge list;
  aliases : (string, int) Hashtbl.t; (* edge alias -> edge index *)
  mutable acc_clauses : ast_clause list;
  mutable acc_wheres : (int * Temporal.Allen.relation * int) list;
}

let peek st = st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let expect st token message =
  let l = peek st in
  if l.token = token then advance st else fail l.position "%s" message

let var_id st name =
  match Hashtbl.find_opt st.var_ids name with
  | Some id -> id
  | None ->
      let id = Hashtbl.length st.var_ids in
      Hashtbl.add st.var_ids name id;
      st.var_order <- name :: st.var_order;
      id

let parse_node st =
  expect st Tlparen "expected '(' starting a node";
  match (peek st).token with
  | Trparen ->
      advance st;
      let name = Printf.sprintf "$%d" st.fresh in
      st.fresh <- st.fresh + 1;
      var_id st name
  | Tident name ->
      advance st;
      expect st Trparen "expected ')' closing the node";
      var_id st name
  | _ -> fail (peek st).position "expected a variable name or ')'"

let parse_label st =
  match (peek st).token with
  | Tident name ->
      advance st;
      name
  | Tstar ->
      advance st;
      "*"
  | _ -> fail (peek st).position "expected an edge label or '*'"

(* label position of a core edge, with an optional "alias:" prefix
   registering the edge index for WHERE constraints *)
let parse_aliased_label st =
  let edge_idx = List.length st.acc_edges in
  (match (peek st).token with
  | Tident alias when st.tokens.(st.pos + 1).token = Tcolon ->
      let at = (peek st).position in
      if Hashtbl.mem st.aliases alias then
        fail at "duplicate edge alias %S" alias;
      Hashtbl.add st.aliases alias edge_idx;
      advance st;
      advance st
  | _ -> ());
  parse_label st

(* one edge step: either -[l]-> node  or  <-[l]- node; returns the next
   chain anchor *)
let parse_step st anchor =
  match (peek st).token with
  | Tarrow_out_head ->
      advance st;
      let lbl_name = parse_aliased_label st in
      expect st Tarrow_out_tail "expected ']->' after the label";
      let target = parse_node st in
      st.acc_edges <- { lbl_name; src = anchor; dst = target } :: st.acc_edges;
      target
  | Tarrow_in_head ->
      advance st;
      let lbl_name = parse_aliased_label st in
      expect st Tarrow_in_tail "expected ']-' after the label";
      let source = parse_node st in
      st.acc_edges <- { lbl_name; src = source; dst = anchor } :: st.acc_edges;
      source
  | _ -> fail (peek st).position "expected '-[' or '<-[' continuing the chain"

let parse_chain st =
  let anchor = ref (parse_node st) in
  (* at least one edge *)
  anchor := parse_step st !anchor;
  let rec more () =
    match (peek st).token with
    | Tarrow_out_head | Tarrow_in_head ->
        anchor := parse_step st !anchor;
        more ()
    | _ -> ()
  in
  more ()

let parse_window st =
  expect st Tlbracket "expected '[' starting the window";
  let ws =
    match (peek st).token with
    | Tint v ->
        advance st;
        v
    | _ -> fail (peek st).position "expected the window start timestamp"
  in
  expect st Tcomma "expected ',' inside the window";
  let we =
    match (peek st).token with
    | Tint v ->
        advance st;
        v
    | _ -> fail (peek st).position "expected the window end timestamp"
  in
  let close = peek st in
  (match close.token with
  | Tarrow_in_tail | Tarrow_out_tail ->
      (* the lexer greedily reads "]-" / "]->"; a window is closed by a
         plain ']' only, so reaching here is a syntax error *)
      fail close.position "expected ']' closing the window"
  | Trbracket -> advance st
  | _ -> fail close.position "expected ']' closing the window");
  if we < ws then fail close.position "window end %d before start %d" we ws;
  (ws, we)

(* NOT / EXISTS / WHERE / AND / COUNT / TOP and the Allen relation names
   are contextual keywords: they lex as plain identifiers and are only
   recognized at the clause positions, so they stay available as
   variable and label names. *)
let lower_of st =
  match (peek st).token with
  | Tident w -> Some (String.lowercase_ascii w)
  | _ -> None

(* clause node: "()" is unconstrained; a name must be a pattern variable *)
let parse_clause_node st =
  expect st Tlparen "expected '(' starting a clause node";
  match (peek st).token with
  | Trparen ->
      advance st;
      None
  | Tident name -> (
      let at = (peek st).position in
      advance st;
      expect st Trparen "expected ')' closing the node";
      match Hashtbl.find_opt st.var_ids name with
      | Some id -> Some id
      | None ->
          fail at "clause variable %S does not appear in the MATCH pattern"
            name)
  | _ -> fail (peek st).position "expected a variable name or ')'"

let parse_clause st ~neg =
  let first = parse_clause_node st in
  match (peek st).token with
  | Tarrow_out_head ->
      advance st;
      let clbl_name = parse_label st in
      expect st Tarrow_out_tail "expected ']->' after the label";
      let second = parse_clause_node st in
      st.acc_clauses <-
        { neg; clbl_name; csrc = first; cdst = second } :: st.acc_clauses
  | Tarrow_in_head ->
      advance st;
      let clbl_name = parse_label st in
      expect st Tarrow_in_tail "expected ']-' after the label";
      let second = parse_clause_node st in
      st.acc_clauses <-
        { neg; clbl_name; csrc = second; cdst = first } :: st.acc_clauses
  | _ -> fail (peek st).position "expected '-[' or '<-[' in the clause"

let parse_alias_ref st =
  match (peek st).token with
  | Tident w -> (
      let at = (peek st).position in
      advance st;
      match Hashtbl.find_opt st.aliases w with
      | Some idx -> idx
      | None -> fail at "unknown edge alias %S (declare it as -[%s: label]->)" w w)
  | _ -> fail (peek st).position "expected an edge alias"

let parse_where_term st =
  let a = parse_alias_ref st in
  let rel =
    match (peek st).token with
    | Tident w -> (
        let at = (peek st).position in
        advance st;
        match Temporal.Allen.of_string w with
        | Some r -> r
        | None -> fail at "unknown Allen relation %S" w)
    | _ -> fail (peek st).position "expected an Allen relation"
  in
  let bat = (peek st).position in
  let b = parse_alias_ref st in
  if a = b then fail bat "an Allen constraint must relate two distinct edges";
  st.acc_wheres <- (a, rel, b) :: st.acc_wheres

let parse input =
  match
    let tokens = lex input in
    let st =
      {
        tokens;
        pos = 0;
        var_ids = Hashtbl.create 8;
        var_order = [];
        fresh = 0;
        acc_edges = [];
        aliases = Hashtbl.create 8;
        acc_clauses = [];
        acc_wheres = [];
      }
    in
    expect st Tmatch "expected MATCH";
    parse_chain st;
    let rec more_chains () =
      if (peek st).token = Tcomma then begin
        advance st;
        parse_chain st;
        more_chains ()
      end
    in
    more_chains ();
    let rec more_clauses () =
      match lower_of st with
      | Some "not" ->
          advance st;
          parse_clause st ~neg:true;
          more_clauses ()
      | Some "exists" ->
          advance st;
          parse_clause st ~neg:false;
          more_clauses ()
      | _ -> ()
    in
    more_clauses ();
    if lower_of st = Some "where" then begin
      advance st;
      parse_where_term st;
      let rec more_terms () =
        if lower_of st = Some "and" then begin
          advance st;
          parse_where_term st;
          more_terms ()
        end
      in
      more_terms ()
    end;
    let win =
      if (peek st).token = Tin then begin
        advance st;
        Some (parse_window st)
      end
      else None
    in
    let lasting =
      if (peek st).token = Tlasting then begin
        advance st;
        match (peek st).token with
        | Tint v when v >= 1 ->
            advance st;
            Some v
        | Tint _ -> fail (peek st).position "LASTING needs a duration >= 1"
        | _ -> fail (peek st).position "expected a duration after LASTING"
      end
      else None
    in
    let agg =
      match lower_of st with
      | Some "count" ->
          advance st;
          Some Equery.Count
      | Some "top" -> (
          advance st;
          match (peek st).token with
          | Tint k when k >= 1 ->
              advance st;
              Some (Equery.Top k)
          | Tint _ -> fail (peek st).position "TOP needs a count >= 1"
          | _ -> fail (peek st).position "expected a count after TOP")
      | _ -> None
    in
    (match (peek st).token with
    | Teof -> ()
    | _ -> fail (peek st).position "trailing input after the query");
    {
      vars = Array.of_list (List.rev st.var_order);
      edges = List.rev st.acc_edges;
      clauses = List.rev st.acc_clauses;
      wheres = List.rev st.acc_wheres;
      agg;
      win;
      lasting;
    }
  with
  | ast -> Ok ast
  | exception Parse_error e -> Error e

(* ---- compilation ---- *)

let compile_core ?default_window g ast =
  let table = Tgraph.Graph.labels g in
  let ( let* ) = Result.bind in
  let* window =
    match (ast.win, default_window) with
    | Some (ws, we), _ -> Ok (Temporal.Interval.make ws we)
    | None, Some w -> Ok w
    | None, None -> Error "query has no IN window and no default was given"
  in
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest when e.lbl_name = "*" ->
        resolve ((Query.any_label, e.src, e.dst) :: acc) rest
    | e :: rest -> (
        match Tgraph.Label.find table e.lbl_name with
        | Some lbl -> resolve ((lbl, e.src, e.dst) :: acc) rest
        | None -> Error (Printf.sprintf "unknown edge label %S" e.lbl_name))
  in
  let* edges = resolve [] ast.edges in
  let q = Query.make ~n_vars:(Array.length ast.vars) ~edges ~window in
  Ok
    (match ast.lasting with
    | Some d -> Query.with_min_duration q d
    | None -> q)

let compile ?default_window g ast =
  if is_extended ast then
    Error
      "query uses extended operators (NOT/EXISTS/WHERE/COUNT/TOP); it only \
       compiles through the extended pipeline"
  else compile_core ?default_window g ast

let compile_ext ?default_window g ast =
  let table = Tgraph.Graph.labels g in
  let ( let* ) = Result.bind in
  let* q = compile_core ?default_window g ast in
  let resolve_lbl name =
    if name = "*" then Ok Query.any_label
    else
      match Tgraph.Label.find table name with
      | Some lbl -> Ok lbl
      | None -> Error (Printf.sprintf "unknown edge label %S" name)
  in
  let endpoint = function Some v -> Equery.Var v | None -> Equery.Any in
  let rec clauses acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest ->
        let* lbl = resolve_lbl c.clbl_name in
        clauses
          (( c.neg,
             { Equery.lbl; src = endpoint c.csrc; dst = endpoint c.cdst } )
          :: acc)
          rest
  in
  let* resolved = clauses [] ast.clauses in
  let anti = List.filter_map (fun (n, c) -> if n then Some c else None) resolved in
  let semi = List.filter_map (fun (n, c) -> if n then None else Some c) resolved in
  match Equery.make ~anti ~semi ~allen:ast.wheres ?agg:ast.agg q with
  | eq -> Ok eq
  | exception Invalid_argument msg -> Error msg

let parse_and_compile ?default_window g input =
  match parse input with
  | Error { position; message } ->
      Error (Printf.sprintf "at offset %d: %s" position message)
  | Ok ast -> compile ?default_window g ast

let parse_and_compile_ext ?default_window g input =
  match parse input with
  | Error { position; message } ->
      Error (Printf.sprintf "at offset %d: %s" position message)
  | Ok ast -> compile_ext ?default_window g ast

(* ---- rendering (unparse) ---- *)

(* MATCH chains; [alias idx] supplies an optional "alias: " prefix inside
   edge brackets (used by render_ext for WHERE-referenced edges). Edges
   render in index order — greedy chaining only merges consecutive
   indices — so "a<i>" aliases reparse to the same edge index. *)
let render_chains buf g q ~alias =
  let label l =
    if l = Query.any_label then "*"
    else Tgraph.Label.name (Tgraph.Graph.labels g) l
  in
  let bracket idx l =
    match alias idx with
    | Some a -> Printf.sprintf "%s: %s" a (label l)
    | None -> label l
  in
  Buffer.add_string buf "MATCH ";
  let edges = Query.edges q in
  (* greedy chaining: extend the current chain while the next edge starts
     where the previous one ended *)
  let n = Array.length edges in
  let i = ref 0 in
  while !i < n do
    if !i > 0 then Buffer.add_string buf ", ";
    let e = edges.(!i) in
    Buffer.add_string buf (Printf.sprintf "(x%d)" e.Query.src_var);
    Buffer.add_string buf
      (Printf.sprintf "-[%s]->(x%d)" (bracket !i e.Query.lbl) e.Query.dst_var);
    let anchor = ref e.Query.dst_var in
    incr i;
    let continue = ref true in
    while !continue && !i < n do
      let e = edges.(!i) in
      if e.Query.src_var = !anchor then begin
        Buffer.add_string buf
          (Printf.sprintf "-[%s]->(x%d)" (bracket !i e.Query.lbl)
             e.Query.dst_var);
        anchor := e.Query.dst_var;
        incr i
      end
      else if e.Query.dst_var = !anchor && e.Query.src_var <> e.Query.dst_var
      then begin
        Buffer.add_string buf
          (Printf.sprintf "<-[%s]-(x%d)" (bracket !i e.Query.lbl)
             e.Query.src_var);
        anchor := e.Query.src_var;
        incr i
      end
      else continue := false
    done
  done

let render_suffix buf q =
  Buffer.add_string buf
    (Printf.sprintf " IN [%d, %d]" (Query.ws q) (Query.we q));
  if Query.min_duration q > 1 then
    Buffer.add_string buf (Printf.sprintf " LASTING %d" (Query.min_duration q))

let render g q =
  let buf = Buffer.create 128 in
  render_chains buf g q ~alias:(fun _ -> None);
  render_suffix buf q;
  Buffer.contents buf

let render_ext g eq =
  let q = Equery.core eq in
  let label l =
    if l = Query.any_label then "*"
    else Tgraph.Label.name (Tgraph.Graph.labels g) l
  in
  let referenced = Hashtbl.create 8 in
  List.iter
    (fun (i, _, j) ->
      Hashtbl.replace referenced i ();
      Hashtbl.replace referenced j ())
    (Equery.allen eq);
  let alias idx =
    if Hashtbl.mem referenced idx then Some (Printf.sprintf "a%d" idx)
    else None
  in
  let buf = Buffer.create 128 in
  render_chains buf g q ~alias;
  let node = function
    | Equery.Var v -> Printf.sprintf "(x%d)" v
    | Equery.Any -> "()"
  in
  let emit_clause kw (c : Equery.clause) =
    Buffer.add_string buf
      (Printf.sprintf " %s %s-[%s]->%s" kw (node c.Equery.src)
         (label c.Equery.lbl) (node c.Equery.dst))
  in
  List.iter (emit_clause "NOT") (Equery.anti eq);
  List.iter (emit_clause "EXISTS") (Equery.semi eq);
  (match Equery.allen eq with
  | [] -> ()
  | terms ->
      let term (i, rel, j) =
        let rel_kw =
          String.uppercase_ascii
            (String.map
               (fun c -> if c = '-' then '_' else c)
               (Temporal.Allen.to_string rel))
        in
        Printf.sprintf "a%d %s a%d" i rel_kw j
      in
      Buffer.add_string buf
        (" WHERE " ^ String.concat " AND " (List.map term terms)));
  render_suffix buf q;
  (match Equery.agg eq with
  | None -> ()
  | Some Equery.Count -> Buffer.add_string buf " COUNT"
  | Some (Equery.Top k) -> Buffer.add_string buf (Printf.sprintf " TOP %d" k));
  Buffer.contents buf
