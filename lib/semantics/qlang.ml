(* Hand-written lexer + recursive-descent parser: the grammar is LL(1)
   and tiny, so no parser generator is warranted. *)

type token =
  | Tmatch
  | Tin
  | Tlasting
  | Tlparen
  | Trparen
  | Tlbracket
  | Trbracket
  | Tcomma
  | Tarrow_out_head (* -[ *)
  | Tarrow_out_tail (* ]-> *)
  | Tarrow_in_head (* <-[ *)
  | Tarrow_in_tail (* ]- *)
  | Tident of string
  | Tint of int
  | Tstar
  | Teof

type lexed = { token : token; position : int }

type error = { position : int; message : string }

exception Parse_error of error

let fail position fmt =
  Format.kasprintf (fun message -> raise (Parse_error { position; message })) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let lex input =
  let n = String.length input in
  let out = ref [] in
  let i = ref 0 in
  let push token position = out := { token; position } :: !out in
  while !i < n do
    let c = input.[!i] in
    let at = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && input.[!i] <> '\n' do incr i done
    end
    else if c = '*' then (push Tstar at; incr i)
    else if c = '(' then (push Tlparen at; incr i)
    else if c = ')' then (push Trparen at; incr i)
    else if c = '[' then (push Tlbracket at; incr i)
    else if c = ',' then (push Tcomma at; incr i)
    else if c = '-' then begin
      (* -[  (edge head) *)
      if !i + 1 < n && input.[!i + 1] = '[' then begin
        push Tarrow_out_head at;
        i := !i + 2
      end
      else fail at "expected '[' after '-'"
    end
    else if c = ']' then begin
      (* ]->, ]-, or a plain ] closing a window *)
      if !i + 2 < n && input.[!i + 1] = '-' && input.[!i + 2] = '>' then begin
        push Tarrow_out_tail at;
        i := !i + 3
      end
      else if !i + 1 < n && input.[!i + 1] = '-' then begin
        push Tarrow_in_tail at;
        i := !i + 2
      end
      else (push Trbracket at; incr i)
    end
    else if c = '<' then begin
      if !i + 2 < n && input.[!i + 1] = '-' && input.[!i + 2] = '[' then begin
        push Tarrow_in_head at;
        i := !i + 3
      end
      else fail at "expected '-[' after '<'"
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && input.[!j] >= '0' && input.[!j] <= '9' do incr j done;
      push (Tint (int_of_string (String.sub input !i (!j - !i)))) at;
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char input.[!j] do incr j done;
      let word = String.sub input !i (!j - !i) in
      (match String.lowercase_ascii word with
      | "match" -> push Tmatch at
      | "in" -> push Tin at
      | "lasting" -> push Tlasting at
      | _ -> push (Tident word) at);
      i := !j
    end
    else fail at "unexpected character %C" c
  done;
  push Teof n;
  Array.of_list (List.rev !out)

(* ---- AST ---- *)

type ast_edge = { lbl_name : string; src : int; dst : int }

type ast = {
  vars : string array;
  edges : ast_edge list; (* in source order *)
  win : (int * int) option;
  lasting : int option;
}

let n_edges ast = List.length ast.edges
let n_vars ast = Array.length ast.vars
let var_names ast = Array.copy ast.vars
let window ast = ast.win
let lasting ast = ast.lasting

(* ---- parser ---- *)

type state = {
  tokens : lexed array;
  mutable pos : int;
  var_ids : (string, int) Hashtbl.t;
  mutable var_order : string list;
  mutable fresh : int;
  mutable acc_edges : ast_edge list;
}

let peek st = st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let expect st token message =
  let l = peek st in
  if l.token = token then advance st else fail l.position "%s" message

let var_id st name =
  match Hashtbl.find_opt st.var_ids name with
  | Some id -> id
  | None ->
      let id = Hashtbl.length st.var_ids in
      Hashtbl.add st.var_ids name id;
      st.var_order <- name :: st.var_order;
      id

let parse_node st =
  expect st Tlparen "expected '(' starting a node";
  match (peek st).token with
  | Trparen ->
      advance st;
      let name = Printf.sprintf "$%d" st.fresh in
      st.fresh <- st.fresh + 1;
      var_id st name
  | Tident name ->
      advance st;
      expect st Trparen "expected ')' closing the node";
      var_id st name
  | _ -> fail (peek st).position "expected a variable name or ')'"

let parse_label st =
  match (peek st).token with
  | Tident name ->
      advance st;
      name
  | Tstar ->
      advance st;
      "*"
  | _ -> fail (peek st).position "expected an edge label or '*'"

(* one edge step: either -[l]-> node  or  <-[l]- node; returns the next
   chain anchor *)
let parse_step st anchor =
  match (peek st).token with
  | Tarrow_out_head ->
      advance st;
      let lbl_name = parse_label st in
      expect st Tarrow_out_tail "expected ']->' after the label";
      let target = parse_node st in
      st.acc_edges <- { lbl_name; src = anchor; dst = target } :: st.acc_edges;
      target
  | Tarrow_in_head ->
      advance st;
      let lbl_name = parse_label st in
      expect st Tarrow_in_tail "expected ']-' after the label";
      let source = parse_node st in
      st.acc_edges <- { lbl_name; src = source; dst = anchor } :: st.acc_edges;
      source
  | _ -> fail (peek st).position "expected '-[' or '<-[' continuing the chain"

let parse_chain st =
  let anchor = ref (parse_node st) in
  (* at least one edge *)
  anchor := parse_step st !anchor;
  let rec more () =
    match (peek st).token with
    | Tarrow_out_head | Tarrow_in_head ->
        anchor := parse_step st !anchor;
        more ()
    | _ -> ()
  in
  more ()

let parse_window st =
  expect st Tlbracket "expected '[' starting the window";
  let ws =
    match (peek st).token with
    | Tint v ->
        advance st;
        v
    | _ -> fail (peek st).position "expected the window start timestamp"
  in
  expect st Tcomma "expected ',' inside the window";
  let we =
    match (peek st).token with
    | Tint v ->
        advance st;
        v
    | _ -> fail (peek st).position "expected the window end timestamp"
  in
  let close = peek st in
  (match close.token with
  | Tarrow_in_tail | Tarrow_out_tail ->
      (* the lexer greedily reads "]-" / "]->"; a window is closed by a
         plain ']' only, so reaching here is a syntax error *)
      fail close.position "expected ']' closing the window"
  | Trbracket -> advance st
  | _ -> fail close.position "expected ']' closing the window");
  if we < ws then fail close.position "window end %d before start %d" we ws;
  (ws, we)

let parse input =
  match
    let tokens = lex input in
    let st =
      {
        tokens;
        pos = 0;
        var_ids = Hashtbl.create 8;
        var_order = [];
        fresh = 0;
        acc_edges = [];
      }
    in
    expect st Tmatch "expected MATCH";
    parse_chain st;
    let rec more_chains () =
      if (peek st).token = Tcomma then begin
        advance st;
        parse_chain st;
        more_chains ()
      end
    in
    more_chains ();
    let win =
      if (peek st).token = Tin then begin
        advance st;
        Some (parse_window st)
      end
      else None
    in
    let lasting =
      if (peek st).token = Tlasting then begin
        advance st;
        match (peek st).token with
        | Tint v when v >= 1 ->
            advance st;
            Some v
        | Tint _ -> fail (peek st).position "LASTING needs a duration >= 1"
        | _ -> fail (peek st).position "expected a duration after LASTING"
      end
      else None
    in
    (match (peek st).token with
    | Teof -> ()
    | _ -> fail (peek st).position "trailing input after the query");
    {
      vars = Array.of_list (List.rev st.var_order);
      edges = List.rev st.acc_edges;
      win;
      lasting;
    }
  with
  | ast -> Ok ast
  | exception Parse_error e -> Error e

(* ---- compilation ---- *)

let compile ?default_window g ast =
  let table = Tgraph.Graph.labels g in
  let ( let* ) = Result.bind in
  let* window =
    match (ast.win, default_window) with
    | Some (ws, we), _ -> Ok (Temporal.Interval.make ws we)
    | None, Some w -> Ok w
    | None, None -> Error "query has no IN window and no default was given"
  in
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest when e.lbl_name = "*" ->
        resolve ((Query.any_label, e.src, e.dst) :: acc) rest
    | e :: rest -> (
        match Tgraph.Label.find table e.lbl_name with
        | Some lbl -> resolve ((lbl, e.src, e.dst) :: acc) rest
        | None -> Error (Printf.sprintf "unknown edge label %S" e.lbl_name))
  in
  let* edges = resolve [] ast.edges in
  let q = Query.make ~n_vars:(Array.length ast.vars) ~edges ~window in
  Ok
    (match ast.lasting with
    | Some d -> Query.with_min_duration q d
    | None -> q)

let parse_and_compile ?default_window g input =
  match parse input with
  | Error { position; message } ->
      Error (Printf.sprintf "at offset %d: %s" position message)
  | Ok ast -> compile ?default_window g ast

(* ---- rendering (unparse) ---- *)

let render g q =
  let label l =
    if l = Query.any_label then "*"
    else Tgraph.Label.name (Tgraph.Graph.labels g) l
  in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "MATCH ";
  let edges = Query.edges q in
  (* greedy chaining: extend the current chain while the next edge starts
     where the previous one ended *)
  let n = Array.length edges in
  let i = ref 0 in
  while !i < n do
    if !i > 0 then Buffer.add_string buf ", ";
    let e = edges.(!i) in
    Buffer.add_string buf (Printf.sprintf "(x%d)" e.Query.src_var);
    Buffer.add_string buf
      (Printf.sprintf "-[%s]->(x%d)" (label e.Query.lbl) e.Query.dst_var);
    let anchor = ref e.Query.dst_var in
    incr i;
    let continue = ref true in
    while !continue && !i < n do
      let e = edges.(!i) in
      if e.Query.src_var = !anchor then begin
        Buffer.add_string buf
          (Printf.sprintf "-[%s]->(x%d)" (label e.Query.lbl) e.Query.dst_var);
        anchor := e.Query.dst_var;
        incr i
      end
      else if e.Query.dst_var = !anchor && e.Query.src_var <> e.Query.dst_var
      then begin
        Buffer.add_string buf
          (Printf.sprintf "<-[%s]-(x%d)" (label e.Query.lbl) e.Query.src_var);
        anchor := e.Query.src_var;
        incr i
      end
      else continue := false
    done
  done;
  Buffer.add_string buf
    (Printf.sprintf " IN [%d, %d]" (Query.ws q) (Query.we q));
  if Query.min_duration q > 1 then
    Buffer.add_string buf (Printf.sprintf " LASTING %d" (Query.min_duration q));
  Buffer.contents buf
