(** A small textual query language for temporal-clique subgraph queries.

    Grammar (case-insensitive keywords, [#] comments to end of line):

    {v
    query    ::= MATCH chain ("," chain)* (IN window)? (LASTING INT)?
    chain    ::= node (edge node)+
    node     ::= "(" IDENT? ")"                  anonymous = fresh variable
    edge     ::= "-[" label "]->" | "<-[" label "]-"
    label    ::= LABEL | "*"                     "*" = any label
    window   ::= "[" INT "," INT "]"
    v}

    Examples:

    {v
    MATCH (x)-[congested]->(y)-[congested]->(z) IN [1020, 1140]
    MATCH (a)-[follows]->(c), (b)-[follows]->(c) IN [213, 219]
    MATCH (x)-[a]->(y)<-[b]-(z)
    v}

    Without an [IN] clause the query window must be supplied at
    {!compile} time (e.g. the graph's whole time domain).

    Parsing is independent of any graph; {!compile} resolves label names
    against a graph's label table. *)

type ast
(** A parsed query: variables, labeled directed edges, optional window. *)

type error = { position : int; message : string }
(** [position] is a 0-based character offset into the input. *)

val parse : string -> (ast, error) result

val n_edges : ast -> int
val n_vars : ast -> int
val var_names : ast -> string array
(** Variable names in binding order (anonymous nodes are ["$0"], ["$1"],
    ...). *)

val window : ast -> (int * int) option

val lasting : ast -> int option
(** The LASTING duration floor, when given. *)

val compile :
  ?default_window:Temporal.Interval.t ->
  Tgraph.Graph.t ->
  ast ->
  (Query.t, string) result
(** Resolves labels and materializes the {!Query.t}. Fails on unknown
    labels or when no window is available from either the [IN] clause or
    [default_window]. *)

val parse_and_compile :
  ?default_window:Temporal.Interval.t ->
  Tgraph.Graph.t ->
  string ->
  (Query.t, string) result
(** Convenience composition with positions rendered into the message. *)

val render : Tgraph.Graph.t -> Query.t -> string
(** A textual form of the query (variables named [x0], [x1], ...;
    consecutive edges that chain naturally are rendered as one chain).
    [parse_and_compile g (render g q)] reproduces [q] up to variable
    renumbering — same edge list modulo variable names, hence exactly
    the same matches. *)
