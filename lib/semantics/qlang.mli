(** A small textual query language for temporal-clique subgraph queries.

    Grammar (case-insensitive keywords, [#] comments to end of line):

    {v
    query    ::= MATCH chain ("," chain)* clause*
                 (WHERE allen (AND allen)* )?
                 (IN window)? (LASTING INT)? (COUNT | TOP INT)?
    chain    ::= node (edge node)+
    node     ::= "(" IDENT? ")"                  anonymous = fresh variable
    edge     ::= "-[" (ALIAS ":")? label "]->" | "<-[" (ALIAS ":")? label "]-"
    clause   ::= (NOT | EXISTS) cnode cedge cnode
    cnode    ::= "(" IDENT? ")"                  anonymous = unconstrained;
                                                 named = a MATCH variable
    cedge    ::= "-[" label "]->" | "<-[" label "]-"
    allen    ::= ALIAS REL ALIAS                 REL = BEFORE | MEETS | ... |
                                                 FINISHED_BY | AFTER
    label    ::= LABEL | "*"                     "*" = any label
    window   ::= "[" INT "," INT "]"
    v}

    [NOT], [EXISTS], [WHERE], [AND], [COUNT], [TOP] and the Allen
    relation names are contextual keywords: they only matter at the
    positions above and stay usable as variable or label names.

    Examples:

    {v
    MATCH (x)-[congested]->(y)-[congested]->(z) IN [1020, 1140]
    MATCH (a)-[follows]->(c), (b)-[follows]->(c) IN [213, 219]
    MATCH (x)-[a]->(y)<-[b]-(z)
    MATCH (x)-[call]->(y) NOT (y)-[reply]->(x) IN [0, 99]
    MATCH (x)-[call]->(y) EXISTS (y)-[*]->() IN [0, 99] LASTING 3
    MATCH (x)-[a: call]->(y)-[b: reply]->(x) WHERE a BEFORE b IN [0, 99]
    MATCH (x)-[call]->(y) IN [0, 99] TOP 5
    v}

    Without an [IN] clause the query window must be supplied at
    {!compile} time (e.g. the graph's whole time domain).

    Parsing is independent of any graph; {!compile} resolves label names
    against a graph's label table. *)

type ast
(** A parsed query: variables, labeled directed edges, optional window. *)

type error = { position : int; message : string }
(** [position] is a 0-based character offset into the input. *)

val parse : string -> (ast, error) result

val n_edges : ast -> int
val n_vars : ast -> int
val var_names : ast -> string array
(** Variable names in binding order (anonymous nodes are ["$0"], ["$1"],
    ...). *)

val window : ast -> (int * int) option

val lasting : ast -> int option
(** The LASTING duration floor, when given. *)

val is_extended : ast -> bool
(** Whether the query uses any extended operator (NOT/EXISTS clauses,
    WHERE constraints, or an aggregate). *)

val compile :
  ?default_window:Temporal.Interval.t ->
  Tgraph.Graph.t ->
  ast ->
  (Query.t, string) result
(** Resolves labels and materializes the {!Query.t}. Fails on unknown
    labels, when no window is available from either the [IN] clause or
    [default_window], or when the query {!is_extended} (use
    {!compile_ext}). *)

val compile_ext :
  ?default_window:Temporal.Interval.t ->
  Tgraph.Graph.t ->
  ast ->
  (Equery.t, string) result
(** Like {!compile} but accepting the full extended surface; a query
    without extended operators compiles to a {!Equery.plain} value. *)

val parse_and_compile :
  ?default_window:Temporal.Interval.t ->
  Tgraph.Graph.t ->
  string ->
  (Query.t, string) result
(** Convenience composition with positions rendered into the message. *)

val parse_and_compile_ext :
  ?default_window:Temporal.Interval.t ->
  Tgraph.Graph.t ->
  string ->
  (Equery.t, string) result

val render : Tgraph.Graph.t -> Query.t -> string
(** A textual form of the query (variables named [x0], [x1], ...;
    consecutive edges that chain naturally are rendered as one chain).
    [parse_and_compile g (render g q)] reproduces [q] up to variable
    renumbering — same edge list modulo variable names, hence exactly
    the same matches. *)

val render_ext : Tgraph.Graph.t -> Equery.t -> string
(** Extended rendering: WHERE-referenced edges get aliases [a0], [a1],
    ... (by edge index), clauses and the aggregate are appended.
    [parse_and_compile_ext g (render_ext g eq)] reproduces [eq] up to
    variable renumbering, like {!render}. For a {!Equery.plain} query
    this is byte-identical to {!render} of its core. *)
