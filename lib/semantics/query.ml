let any_label = -1

type edge = { idx : int; lbl : int; src_var : int; dst_var : int }

type t = {
  n_vars : int;
  edges : edge array;
  window : Temporal.Interval.t;
  min_duration : int;
  adjacency : edge list array;
}

let build_adjacency n_vars edges =
  let adjacency = Array.make n_vars [] in
  Array.iter
    (fun e ->
      adjacency.(e.src_var) <- e :: adjacency.(e.src_var);
      if e.dst_var <> e.src_var then
        adjacency.(e.dst_var) <- e :: adjacency.(e.dst_var))
    edges;
  Array.map List.rev adjacency

let make ~n_vars ~edges ~window =
  let min_duration = 1 in
  if edges = [] then invalid_arg "Query.make: empty edge list";
  if n_vars <= 0 then invalid_arg "Query.make: need at least one variable";
  let edges =
    Array.of_list
      (List.mapi
         (fun idx (lbl, src_var, dst_var) ->
           if lbl < any_label then
             invalid_arg (Printf.sprintf "Query.make: bad label %d" lbl);
           if src_var < 0 || src_var >= n_vars || dst_var < 0
              || dst_var >= n_vars
           then
             invalid_arg
               (Printf.sprintf "Query.make: variable out of range in edge %d"
                  idx);
           { idx; lbl; src_var; dst_var })
         edges)
  in
  { n_vars; edges; window; min_duration; adjacency = build_adjacency n_vars edges }

let n_vars q = q.n_vars
let n_edges q = Array.length q.edges
let edges q = q.edges

let edge q i =
  if i < 0 || i >= Array.length q.edges then
    invalid_arg (Printf.sprintf "Query.edge: bad index %d" i);
  q.edges.(i)

let window q = q.window
let ws q = Temporal.Interval.ts q.window
let we q = Temporal.Interval.te q.window
let min_duration q = q.min_duration
let with_window q window = { q with window }
let with_min_duration q min_duration =
  if min_duration < 1 then
    invalid_arg "Query.with_min_duration: must be >= 1";
  { q with min_duration }

let adjacent q v =
  if v < 0 || v >= q.n_vars then
    invalid_arg (Printf.sprintf "Query.adjacent: bad variable %d" v);
  q.adjacency.(v)

let other_endpoint e v =
  if e.src_var = v then e.dst_var
  else if e.dst_var = v then e.src_var
  else
    invalid_arg
      (Printf.sprintf "Query.other_endpoint: variable %d not on edge %d" v
         e.idx)

let is_connected q =
  let seen = Array.make q.n_vars false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter (fun e -> visit (other_endpoint e v)) q.adjacency.(v)
    end
  in
  visit 0;
  Array.for_all Fun.id seen

let vars_of_edges q idxs =
  let module S = Set.Make (Int) in
  let set =
    List.fold_left
      (fun s i ->
        let e = edge q i in
        S.add e.src_var (S.add e.dst_var s))
      S.empty idxs
  in
  S.elements set

let pp fmt q =
  Format.fprintf fmt "@[<hov 2>query(%d vars; window %a;%s" q.n_vars
    Temporal.Interval.pp q.window
    (if q.min_duration > 1 then
       Printf.sprintf " min duration %d;" q.min_duration
     else "");
  Array.iter
    (fun e ->
      Format.fprintf fmt "@ %d:%s(x%d,x%d)" e.idx
        (if e.lbl = any_label then "*" else Printf.sprintf "l%d" e.lbl)
        e.src_var e.dst_var)
    q.edges;
  Format.fprintf fmt ")@]"
