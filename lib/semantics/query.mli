(** Temporal-clique subgraph queries.

    A query is a multigraph pattern over query variables — each query
    edge carries a label constraint and a direction — plus a query time
    window. A {e complete match} binds every query edge to a graph edge
    with the same label, endpoint-consistently (homomorphism semantics:
    distinct variables may bind the same vertex; two matches are distinct
    iff they differ on at least one edge binding), such that the
    intersection of the matched intervals is non-empty — it then
    necessarily overlaps the window because each edge must. *)

val any_label : int
(** The wildcard label constraint ([-1]): matches edges of every label.
    Subsumes the unlabeled-pattern setting of the related durable-graph-
    pattern work. *)

type edge = { idx : int; lbl : int; src_var : int; dst_var : int }
(** [idx] is the position in {!edges}; [src_var]/[dst_var] index the
    query variables; [lbl] is a label id or {!any_label}. *)

type t

val make :
  n_vars:int -> edges:(int * int * int) list -> window:Temporal.Interval.t -> t
(** [make ~n_vars ~edges:[(lbl, src_var, dst_var); ...] ~window] with
    [min_duration = 1]; use {!with_min_duration} for durable-match
    queries.
    @raise Invalid_argument on an empty edge list, a variable out of
    range, or a label below {!any_label}. *)

val n_vars : t -> int
val n_edges : t -> int
val edges : t -> edge array
val edge : t -> int -> edge
val window : t -> Temporal.Interval.t
val ws : t -> int
val we : t -> int

val min_duration : t -> int
(** The durability threshold (1 = unconstrained). *)

val with_window : t -> Temporal.Interval.t -> t

val with_min_duration : t -> int -> t
(** Restrict results to {e durable} matches whose lifespan spans at
    least this many timestamps (the duration-constrained variant, cf.
    Semertzidis & Pitoura's durable patterns).
    @raise Invalid_argument when < 1. *)

val adjacent : t -> int -> edge list
(** [adjacent q v] are the query edges incident to variable [v] (a self
    loop appears once). *)

val other_endpoint : edge -> int -> int
(** [other_endpoint e v] is the endpoint of [e] that is not [v]; for a
    self loop it is [v] itself.
    @raise Invalid_argument if [v] is not an endpoint of [e]. *)

val is_connected : t -> bool
(** Whether the pattern (ignoring direction) is connected. *)

val vars_of_edges : t -> int list -> int list
(** The sorted set of variables touched by the given edge indices. *)

val pp : Format.formatter -> t -> unit
