type limits = { max_results : int; max_intermediate : int }

let no_limits = { max_results = max_int; max_intermediate = max_int }
let with_max_results n = { no_limits with max_results = n }

exception Limit_exceeded of string
exception Deadline_exceeded

(* A wall-clock budget. The clock is injected rather than read from
   Unix so this library keeps its dependency-free core and so tests can
   drive time deterministically. *)
type deadline = { expires_at : float; now : unit -> float }

type t = {
  mutable results : int;
  mutable intermediate : int;
  mutable scanned : int;
  mutable bindings : int;
  mutable enum_steps : int;
  mutable seeks : int;
  mutable est_intermediate : int;
  (* per-TSRJoin-level actual intermediate cardinalities; [||] until the
     first levelled tick, then grown to the plan depth *)
  mutable level_intermediate : int array;
  (* per-level static estimates, recorded once per query next to
     [est_intermediate] *)
  mutable est_level_intermediate : int array;
  limits : limits;
  mutable deadline : deadline option;
  (* ticks remaining until the next clock read; reading the clock on
     every tick would dominate tight sweep loops *)
  mutable until_check : int;
  mutable on_check : (unit -> unit) option;
}

let deadline_check_interval = 256

let until_check_of s =
  match (s.deadline, s.on_check) with None, None -> max_int | _ -> 1

let create ?(limits = no_limits) ?deadline () =
  let s =
    { results = 0; intermediate = 0; scanned = 0; bindings = 0; enum_steps = 0;
      seeks = 0; est_intermediate = 0; level_intermediate = [||];
      est_level_intermediate = [||]; limits; deadline; until_check = max_int;
      on_check = None }
  in
  s.until_check <- until_check_of s;
  s

let set_deadline s deadline =
  s.deadline <- deadline;
  s.until_check <- until_check_of s

let set_on_check s hook =
  s.on_check <- hook;
  s.until_check <- until_check_of s

let check_deadline s =
  match (s.deadline, s.on_check) with
  | None, None -> s.until_check <- max_int
  | deadline, hook ->
      s.until_check <- deadline_check_interval;
      (match hook with Some f -> f () | None -> ());
      (match deadline with
      | Some d when d.now () >= d.expires_at -> raise Deadline_exceeded
      | Some _ | None -> ())

(* every counter update passes through here, so a sweep that produces no
   results still notices an expired deadline within [deadline_check_interval]
   scanned edges *)
let touch s =
  s.until_check <- s.until_check - 1;
  if s.until_check <= 0 then check_deadline s

let tick_result s =
  touch s;
  s.results <- s.results + 1;
  if s.results > s.limits.max_results then
    raise (Limit_exceeded "result budget exhausted")

let add_intermediate s n =
  touch s;
  s.intermediate <- s.intermediate + n;
  if s.intermediate > s.limits.max_intermediate then
    raise (Limit_exceeded "intermediate-tuple budget exhausted")

let tick_intermediate s = add_intermediate s 1

(* grow-to-fit shared by the actual and estimate level arrays *)
let grown arr i =
  let n = Array.make (i + 1) 0 in
  Array.blit arr 0 n 0 (Array.length arr);
  n

let tick_level_intermediate s level =
  add_intermediate s 1;
  if level >= Array.length s.level_intermediate then
    s.level_intermediate <- grown s.level_intermediate level;
  s.level_intermediate.(level) <- s.level_intermediate.(level) + 1

let tick_scanned s =
  touch s;
  s.scanned <- s.scanned + 1

let tick_binding s =
  touch s;
  s.bindings <- s.bindings + 1

let add_enum_steps s n =
  touch s;
  s.enum_steps <- s.enum_steps + n

(* seeks are the leapfrog/TAI-probe hot path: no [touch] — the
   surrounding binding/scanned ticks already drive deadline checks, and
   a second decrement per seek would double the bookkeeping cost of the
   innermost loop *)
let tick_seek s = s.seeks <- s.seeks + 1

(* a static prediction, not execution work: recorded once per query by
   the engine before running the plan, so no [touch] and no budget *)
let add_est_intermediate s n = s.est_intermediate <- s.est_intermediate + n

let add_est_level_intermediate s level n =
  if level >= Array.length s.est_level_intermediate then
    s.est_level_intermediate <- grown s.est_level_intermediate level;
  s.est_level_intermediate.(level) <- s.est_level_intermediate.(level) + n

let levels s = Array.copy s.level_intermediate
let est_levels s = Array.copy s.est_level_intermediate

let merge_levels dst src =
  if Array.length src > 0 then begin
    let dst = if Array.length dst < Array.length src then grown dst (Array.length src - 1) else dst in
    Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src;
    dst
  end
  else dst

let merge_into dst src =
  dst.results <- dst.results + src.results;
  dst.intermediate <- dst.intermediate + src.intermediate;
  dst.scanned <- dst.scanned + src.scanned;
  dst.bindings <- dst.bindings + src.bindings;
  dst.enum_steps <- dst.enum_steps + src.enum_steps;
  dst.seeks <- dst.seeks + src.seeks;
  dst.est_intermediate <- dst.est_intermediate + src.est_intermediate;
  dst.level_intermediate <-
    merge_levels dst.level_intermediate src.level_intermediate;
  dst.est_level_intermediate <-
    merge_levels dst.est_level_intermediate src.est_level_intermediate

let pp fmt s =
  Format.fprintf fmt
    "results=%d intermediate=%d scanned=%d bindings=%d enum_steps=%d seeks=%d \
     est_intermediate=%d"
    s.results s.intermediate s.scanned s.bindings s.enum_steps s.seeks
    s.est_intermediate;
  if Array.length s.level_intermediate > 0 then begin
    Format.fprintf fmt " levels=[";
    Array.iteri
      (fun i v -> Format.fprintf fmt "%s%d" (if i > 0 then ";" else "") v)
      s.level_intermediate;
    Format.fprintf fmt "]"
  end
