type limits = { max_results : int; max_intermediate : int }

let no_limits = { max_results = max_int; max_intermediate = max_int }
let with_max_results n = { no_limits with max_results = n }

exception Limit_exceeded of string
exception Deadline_exceeded

(* A wall-clock budget. The clock is injected rather than read from
   Unix so this library keeps its dependency-free core and so tests can
   drive time deterministically. *)
type deadline = { expires_at : float; now : unit -> float }

type t = {
  mutable results : int;
  mutable intermediate : int;
  mutable scanned : int;
  mutable bindings : int;
  mutable enum_steps : int;
  mutable seeks : int;
  mutable est_intermediate : int;
  limits : limits;
  mutable deadline : deadline option;
  (* ticks remaining until the next clock read; reading the clock on
     every tick would dominate tight sweep loops *)
  mutable until_check : int;
  mutable on_check : (unit -> unit) option;
}

let deadline_check_interval = 256

let until_check_of s =
  match (s.deadline, s.on_check) with None, None -> max_int | _ -> 1

let create ?(limits = no_limits) ?deadline () =
  let s =
    { results = 0; intermediate = 0; scanned = 0; bindings = 0; enum_steps = 0;
      seeks = 0; est_intermediate = 0; limits; deadline; until_check = max_int;
      on_check = None }
  in
  s.until_check <- until_check_of s;
  s

let set_deadline s deadline =
  s.deadline <- deadline;
  s.until_check <- until_check_of s

let set_on_check s hook =
  s.on_check <- hook;
  s.until_check <- until_check_of s

let check_deadline s =
  match (s.deadline, s.on_check) with
  | None, None -> s.until_check <- max_int
  | deadline, hook ->
      s.until_check <- deadline_check_interval;
      (match hook with Some f -> f () | None -> ());
      (match deadline with
      | Some d when d.now () >= d.expires_at -> raise Deadline_exceeded
      | Some _ | None -> ())

(* every counter update passes through here, so a sweep that produces no
   results still notices an expired deadline within [deadline_check_interval]
   scanned edges *)
let touch s =
  s.until_check <- s.until_check - 1;
  if s.until_check <= 0 then check_deadline s

let tick_result s =
  touch s;
  s.results <- s.results + 1;
  if s.results > s.limits.max_results then
    raise (Limit_exceeded "result budget exhausted")

let add_intermediate s n =
  touch s;
  s.intermediate <- s.intermediate + n;
  if s.intermediate > s.limits.max_intermediate then
    raise (Limit_exceeded "intermediate-tuple budget exhausted")

let tick_intermediate s = add_intermediate s 1

let tick_scanned s =
  touch s;
  s.scanned <- s.scanned + 1

let tick_binding s =
  touch s;
  s.bindings <- s.bindings + 1

let add_enum_steps s n =
  touch s;
  s.enum_steps <- s.enum_steps + n

(* seeks are the leapfrog/TAI-probe hot path: no [touch] — the
   surrounding binding/scanned ticks already drive deadline checks, and
   a second decrement per seek would double the bookkeeping cost of the
   innermost loop *)
let tick_seek s = s.seeks <- s.seeks + 1

(* a static prediction, not execution work: recorded once per query by
   the engine before running the plan, so no [touch] and no budget *)
let add_est_intermediate s n = s.est_intermediate <- s.est_intermediate + n

let merge_into dst src =
  dst.results <- dst.results + src.results;
  dst.intermediate <- dst.intermediate + src.intermediate;
  dst.scanned <- dst.scanned + src.scanned;
  dst.bindings <- dst.bindings + src.bindings;
  dst.enum_steps <- dst.enum_steps + src.enum_steps;
  dst.seeks <- dst.seeks + src.seeks;
  dst.est_intermediate <- dst.est_intermediate + src.est_intermediate

let pp fmt s =
  Format.fprintf fmt
    "results=%d intermediate=%d scanned=%d bindings=%d enum_steps=%d seeks=%d \
     est_intermediate=%d"
    s.results s.intermediate s.scanned s.bindings s.enum_steps s.seeks
    s.est_intermediate
