type limits = { max_results : int; max_intermediate : int }

let no_limits = { max_results = max_int; max_intermediate = max_int }
let with_max_results n = { no_limits with max_results = n }

exception Limit_exceeded of string

type t = {
  mutable results : int;
  mutable intermediate : int;
  mutable scanned : int;
  mutable bindings : int;
  mutable enum_steps : int;
  limits : limits;
}

let create ?(limits = no_limits) () =
  { results = 0; intermediate = 0; scanned = 0; bindings = 0; enum_steps = 0;
    limits }

let tick_result s =
  s.results <- s.results + 1;
  if s.results > s.limits.max_results then
    raise (Limit_exceeded "result budget exhausted")

let add_intermediate s n =
  s.intermediate <- s.intermediate + n;
  if s.intermediate > s.limits.max_intermediate then
    raise (Limit_exceeded "intermediate-tuple budget exhausted")

let tick_intermediate s = add_intermediate s 1
let tick_scanned s = s.scanned <- s.scanned + 1
let tick_binding s = s.bindings <- s.bindings + 1
let add_enum_steps s n = s.enum_steps <- s.enum_steps + n

let merge_into dst src =
  dst.results <- dst.results + src.results;
  dst.intermediate <- dst.intermediate + src.intermediate;
  dst.scanned <- dst.scanned + src.scanned;
  dst.bindings <- dst.bindings + src.bindings;
  dst.enum_steps <- dst.enum_steps + src.enum_steps

let pp fmt s =
  Format.fprintf fmt
    "results=%d intermediate=%d scanned=%d bindings=%d enum_steps=%d" s.results
    s.intermediate s.scanned s.bindings s.enum_steps
