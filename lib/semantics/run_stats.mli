(** Execution counters and budgets shared by every query-processing
    pipeline.

    [intermediate] counts every tuple produced by any operator below the
    root (partial matches, join outputs, temporal cliques): the metric of
    the paper's Fig. 10. [scanned] counts edge reads during sweeps — the
    cost that the ECI/delSkip optimizations remove. Budgets make
    non-selective baselines stoppable, mirroring the paper's caps
    (10^9-tuple intermediate threshold, bounded output). *)

type limits = { max_results : int; max_intermediate : int }

val no_limits : limits
val with_max_results : int -> limits

exception Limit_exceeded of string
(** Raised by the tick functions when a budget is exhausted. Pipelines
    let it escape; runners catch it and record a truncated outcome. *)

exception Deadline_exceeded
(** Raised by the tick functions when a wall-clock deadline has passed.
    Like {!Limit_exceeded}, pipelines let it escape; the server catches
    it and answers with a typed truncation. *)

type deadline = { expires_at : float; now : unit -> float }
(** A wall-clock budget: [now () >= expires_at] aborts execution. The
    clock is injected (e.g. [Unix.gettimeofday]) so this library stays
    dependency-free and tests can drive time deterministically. *)

type t = {
  mutable results : int;
  mutable intermediate : int;
  mutable scanned : int;  (** edges read by sweep scanners *)
  mutable bindings : int;  (** vertex bindings produced by leapfrog *)
  mutable enum_steps : int;  (** active-list elements visited during
                                 enumeration *)
  mutable seeks : int;  (** leapfrog seeks/advances and TAI/ECI index
                            probes — the topological-selectivity work *)
  mutable est_intermediate : int;
      (** the static analyzer's predicted intermediate-tuple count
          ([Analysis.Selectivity]), recorded once per TSRJoin query so
          estimator error ([est_intermediate] vs [intermediate]) is
          observable per query; 0 for methods without an estimator *)
  mutable level_intermediate : int array;
      (** measured intermediate tuples per TSRJoin plan level — the
          runtime-feedback counterpart of [est_level_intermediate]:
          index [i] counts partial matches produced at plan step [i].
          Empty for methods without levelled execution. Prefer
          {!levels} (a defensive copy) over reading this directly. *)
  mutable est_level_intermediate : int array;
      (** the static analyzer's per-level predictions
          ([Analysis.Selectivity] cumulatives), recorded once per
          TSRJoin query next to [est_intermediate]. *)
  limits : limits;
  mutable deadline : deadline option;
  mutable until_check : int;
      (** ticks until the next deadline clock read; managed internally *)
  mutable on_check : (unit -> unit) option;
      (** periodic hook, see {!set_on_check}; managed internally *)
}

val deadline_check_interval : int
(** The clock is read at most once per this many counter ticks, so a
    sweep overshoots an expired deadline by a bounded (and tiny) amount
    of work. *)

val create : ?limits:limits -> ?deadline:deadline -> unit -> t

val set_deadline : t -> deadline option -> unit
(** Replace (or clear) the deadline on live stats. *)

val set_on_check : t -> (unit -> unit) option -> unit
(** Install (or clear) a hook run on the same cadence as the deadline
    clock read — at most once per {!deadline_check_interval} counter
    ticks. The hook may raise to abort execution; the parallel driver
    uses this for cooperative cancellation (a shared stop flag) and for
    pushing per-domain counter deltas into global budgets. It runs
    before the deadline comparison. *)

val tick_result : t -> unit
val tick_intermediate : t -> unit
val add_intermediate : t -> int -> unit
val tick_scanned : t -> unit
val tick_binding : t -> unit
val add_enum_steps : t -> int -> unit

val tick_seek : t -> unit
(** Count one index seek/probe. Unlike the other ticks this does not
    drive the deadline check — seeks always ride alongside binding or
    scanned ticks that do. *)

val tick_level_intermediate : t -> int -> unit
(** [tick_level_intermediate s level] counts one intermediate tuple
    {e and} attributes it to TSRJoin plan level [level] (growing the
    level array on first touch). Drives the same budget and deadline
    machinery as {!tick_intermediate} — exactly once, so
    [intermediate = sum of level_intermediate] whenever every
    intermediate tick is levelled. *)

val add_est_intermediate : t -> int -> unit
(** Record a static intermediate-cardinality estimate. A prediction, not
    work: never drives the deadline check or any budget. *)

val add_est_level_intermediate : t -> int -> int -> unit
(** [add_est_level_intermediate s level n] records a static per-level
    estimate; like {!add_est_intermediate}, never a budget tick. *)

val levels : t -> int array
(** Defensive copy of the per-level actual intermediate counters. *)

val est_levels : t -> int array
(** Defensive copy of the per-level estimates. *)

(** [merge_into dst src] adds counter-wise; the level arrays merge
    element-wise (the destination grows to the longer of the two), so
    per-domain partial counts from a parallel run sum to exactly the
    sequential counters. *)
val merge_into : t -> t -> unit
val pp : Format.formatter -> t -> unit
