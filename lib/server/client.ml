(* Client side of the wire protocol: connect, send one JSON line per
   request, read one JSON line per response. [send]/[recv] are exposed
   separately so callers (and tests) can pipeline requests. *)

type t = { fd : Unix.file_descr; reader : Wire.reader }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; reader = Wire.reader fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_raw t line = Wire.write_line t.fd line

let recv_raw t =
  match Wire.read_line t.reader with
  | Some line -> Ok line
  | None -> Error "connection closed by server"

let recv t = Result.bind (recv_raw t) Protocol.parse_response

let request_raw t line =
  match send_raw t line with
  | () -> recv t
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "send failed: %s" (Unix.error_message e))

let query_json ?id ?(method_ = Workload.Engine.Tsrjoin) ?deadline_ms ?limit
    ?(count_only = false) ?max_results ?max_intermediate text =
  let opt name f v = match v with None -> [] | Some v -> [ (name, f v) ] in
  Json.Obj
    (opt "id" (fun s -> Json.String s) id
    @ [
        ("op", Json.String "query");
        ("query", Json.String text);
        ("method", Json.String (Workload.Engine.method_name method_));
      ]
    @ opt "deadline_ms" (fun f -> Json.Float f) deadline_ms
    @ opt "limit" (fun i -> Json.Int i) limit
    @ (if count_only then [ ("count_only", Json.Bool true) ] else [])
    @ opt "max_results" (fun i -> Json.Int i) max_results
    @ opt "max_intermediate" (fun i -> Json.Int i) max_intermediate)

let query ?id ?method_ ?deadline_ms ?limit ?count_only ?max_results
    ?max_intermediate t text =
  request_raw t
    (Json.to_string
       (query_json ?id ?method_ ?deadline_ms ?limit ?count_only ?max_results
          ?max_intermediate text))

(* ---- standing queries ---- *)

let subscribe_json ?id ?window_width text =
  Json.Obj
    ((match id with None -> [] | Some s -> [ ("id", Json.String s) ])
    @ [ ("op", Json.String "subscribe"); ("query", Json.String text) ]
    @
    match window_width with
    | None -> []
    | Some w -> [ ("window_width", Json.Int w) ])

let subscribe ?id ?window_width t text =
  match request_raw t (Json.to_string (subscribe_json ?id ?window_width text)) with
  | Error _ as e -> e
  | Ok r when r.Protocol.status <> "ok" ->
      Error
        (Printf.sprintf "subscribe failed: %s"
           (Option.value r.Protocol.message ~default:r.Protocol.status))
  | Ok r -> (
      match Json.mem_int "sub" r.Protocol.json with
      | Some sub -> Ok (sub, r)
      | None -> Error "subscribe response carried no sub id")

let unsubscribe_json ?id sub =
  Json.Obj
    ((match id with None -> [] | Some s -> [ ("id", Json.String s) ])
    @ [ ("op", Json.String "unsubscribe"); ("sub", Json.Int sub) ])

let unsubscribe ?id t sub =
  match request_raw t (Json.to_string (unsubscribe_json ?id sub)) with
  | Error _ as e -> e
  | Ok r -> Ok (Json.mem_bool "removed" r.Protocol.json = Some true)

(* Blocks until the next pushed notification frame, buffering nothing
   else: plain responses arriving in between are returned to the caller
   via [`Response] so pipelined users can demux. *)
let next_frame t =
  match recv t with
  | Error _ as e -> e
  | Ok r -> (
      match Protocol.delta_of_response r with
      | Some d -> Ok (`Delta (d, r))
      | None -> Ok (`Response r))

let op_json ?id op =
  Json.Obj
    ((match id with None -> [] | Some s -> [ ("id", Json.String s) ])
    @ [ ("op", Json.String op) ])

let metrics t =
  match request_raw t (Json.to_string (op_json "metrics")) with
  | Error _ as e -> e
  | Ok r -> (
      match Json.member "metrics" r.Protocol.json with
      | Some m -> Ok m
      | None -> Error "response carried no metrics")

let metrics_prom t =
  match request_raw t (Json.to_string (op_json "metrics_prom")) with
  | Error _ as e -> e
  | Ok r -> (
      match Json.mem_string "prometheus" r.Protocol.json with
      | Some text -> Ok text
      | None -> Error "response carried no prometheus text")

let ping t =
  match request_raw t (Json.to_string (op_json "ping")) with
  | Ok r -> r.Protocol.status = "ok"
  | Error _ -> false

let shutdown t = request_raw t (Json.to_string (op_json "shutdown"))
