(* Minimal JSON: enough for the newline-delimited wire protocol. Values
   round-trip through [to_string]/[parse]; serialization never emits a
   newline, which is what makes one-JSON-per-line framing safe. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> Buffer.add_string buf (Semantics.Json_out.escape_string s)
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Semantics.Json_out.escape_string k);
          Buffer.add_string buf ": ";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Bad of string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "at %d: expected %c, found %c" !pos c c'
    | None -> fail "at %d: expected %c, found end of input" !pos c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "at %d: bad literal" !pos
  in
  let hex4 () =
    if !pos + 4 > n then fail "at %d: truncated \\u escape" !pos;
    let v = ref 0 in
    for _ = 1 to 4 do
      let c = input.[!pos] in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail "at %d: bad hex digit %c" !pos c
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "at %d: unterminated string" !pos;
      let c = input.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "at %d: truncated escape" !pos;
         let e = input.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
             let cp = hex4 () in
             let cp =
               (* high surrogate followed by \uDC00-\uDFFF pairs up *)
               if cp >= 0xD800 && cp <= 0xDBFF
                  && !pos + 1 < n && input.[!pos] = '\\'
                  && input.[!pos + 1] = 'u'
               then begin
                 pos := !pos + 2;
                 let lo = hex4 () in
                 if lo >= 0xDC00 && lo <= 0xDFFF then
                   0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                 else fail "at %d: bad low surrogate" !pos
               end
               else cp
             in
             add_utf8 buf cp
         | c -> fail "at %d: bad escape \\%c" !pos c);
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && (match input.[!pos] with
         | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
         | _ -> false)
    do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "at %d: bad number %S" start text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "at %d: unexpected end of input" !pos
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c -> fail "at %d: unexpected character %C" !pos c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "at %d: trailing input" !pos;
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let string_opt = function String s -> Some s | _ -> None
let bool_opt = function Bool b -> Some b | _ -> None

let int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let list_opt = function List l -> Some l | _ -> None

let mem_string key j = Option.bind (member key j) string_opt
let mem_int key j = Option.bind (member key j) int_opt
let mem_float key j = Option.bind (member key j) float_opt
let mem_bool key j = Option.bind (member key j) bool_opt
let mem_list key j = Option.bind (member key j) list_opt
