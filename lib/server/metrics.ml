(* Thread-safe metrics registry for a running server. Workers record
   per-request outcomes; any connection can ask for a JSON snapshot or a
   Prometheus text exposition. Counter totals are the merge of every
   request's [Run_stats], so the observability layer reports exactly
   what execution counted.

   Latencies live in fixed-size log-bucketed histograms
   ([Obs.Histogram]): O(1) memory however many requests arrive, exact
   count/sum/mean, and p50/p95 within the histogram's documented <= 10%
   relative error (the snapshot keeps the mean_ms/p50_ms/p95_ms fields
   of the old unbounded-list implementation). *)

open Semantics

type outcome = Completed | Truncated_budget | Truncated_deadline

type method_metrics = { mutable count : int; latency : Obs.Histogram.t }

type t = {
  mutex : Mutex.t;
  started_at : float;
  totals : Run_stats.t;
  mutable completed : int;
  mutable truncated_budget : int;
  mutable truncated_deadline : int;
  mutable rejected : int;
  mutable parse_errors : int;
  mutable overloaded : int;
  mutable internal_errors : int;
  per_method : (string, method_metrics) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    started_at = Unix.gettimeofday ();
    totals = Run_stats.create ();
    completed = 0;
    truncated_budget = 0;
    truncated_deadline = 0;
    rejected = 0;
    parse_errors = 0;
    overloaded = 0;
    internal_errors = 0;
    per_method = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let method_slot t name =
  match Hashtbl.find_opt t.per_method name with
  | Some mm -> mm
  | None ->
      let mm = { count = 0; latency = Obs.Histogram.create () } in
      Hashtbl.add t.per_method name mm;
      mm

let record_query t ~method_ ~outcome ~stats ~seconds =
  locked t (fun () ->
      (match outcome with
      | Completed -> t.completed <- t.completed + 1
      | Truncated_budget -> t.truncated_budget <- t.truncated_budget + 1
      | Truncated_deadline -> t.truncated_deadline <- t.truncated_deadline + 1);
      Run_stats.merge_into t.totals stats;
      let mm = method_slot t (Workload.Engine.method_name method_) in
      mm.count <- mm.count + 1;
      Obs.Histogram.record mm.latency seconds)

let record_rejected t = locked t (fun () -> t.rejected <- t.rejected + 1)

let record_parse_error t =
  locked t (fun () -> t.parse_errors <- t.parse_errors + 1)

let record_overloaded t =
  locked t (fun () -> t.overloaded <- t.overloaded + 1)

let record_internal_error t =
  locked t (fun () -> t.internal_errors <- t.internal_errors + 1)

let method_json mm =
  let ms s = s *. 1000.0 in
  Json.Obj
    [
      ("count", Json.Int mm.count);
      ("mean_ms", Json.Float (ms (Obs.Histogram.mean mm.latency)));
      ("p50_ms", Json.Float (ms (Obs.Histogram.quantile mm.latency 0.5)));
      ("p95_ms", Json.Float (ms (Obs.Histogram.quantile mm.latency 0.95)));
    ]

let outcome_counts t =
  [
    ("completed", t.completed);
    ("truncated_budget", t.truncated_budget);
    ("truncated_deadline", t.truncated_deadline);
    ("rejected", t.rejected);
    ("parse_errors", t.parse_errors);
    ("overloaded", t.overloaded);
    ("internal_errors", t.internal_errors);
  ]

let run_stat_counts t =
  [
    ("results", t.totals.Run_stats.results);
    ("intermediate", t.totals.Run_stats.intermediate);
    ("scanned", t.totals.Run_stats.scanned);
    ("bindings", t.totals.Run_stats.bindings);
    ("enum_steps", t.totals.Run_stats.enum_steps);
    ("seeks", t.totals.Run_stats.seeks);
    ("est_intermediate", t.totals.Run_stats.est_intermediate);
  ]

let sorted_methods t =
  Hashtbl.fold (fun name mm acc -> (name, mm) :: acc) t.per_method []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot_json t ~queue_depth ~pool_dropped =
  locked t (fun () ->
      let methods =
        List.map (fun (name, mm) -> (name, method_json mm)) (sorted_methods t)
      in
      Json.Obj
        [
          ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
          ("queue_depth", Json.Int queue_depth);
          ("pool_dropped_exceptions", Json.Int pool_dropped);
          ( "requests",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.Int v)) (outcome_counts t)) );
          ("totals", Protocol.stats_json t.totals);
          ("methods", Json.Obj methods);
        ])

(* Prometheus text exposition (version 0.0.4). Families:
   tcsq_uptime_seconds, tcsq_queue_depth (gauges);
   tcsq_requests_total{outcome}, tcsq_run_stats_total{counter} (counters);
   tcsq_request_duration_seconds{method} (histogram whose "le" ladder is
   the decade edges of [Obs.Histogram] — exact cumulative counts). *)
let prometheus t ~queue_depth ~pool_dropped =
  locked t (fun () ->
      let buf = Buffer.create 2048 in
      Printf.bprintf buf
        "# HELP tcsq_uptime_seconds Seconds since server start.\n\
         # TYPE tcsq_uptime_seconds gauge\n\
         tcsq_uptime_seconds %.3f\n"
        (Unix.gettimeofday () -. t.started_at);
      Printf.bprintf buf
        "# HELP tcsq_queue_depth Admission queue depth.\n\
         # TYPE tcsq_queue_depth gauge\n\
         tcsq_queue_depth %d\n"
        queue_depth;
      Printf.bprintf buf
        "# HELP tcsq_pool_dropped_exceptions_total Worker-pool jobs that \
         died with an unhandled exception.\n\
         # TYPE tcsq_pool_dropped_exceptions_total counter\n\
         tcsq_pool_dropped_exceptions_total %d\n"
        pool_dropped;
      Buffer.add_string buf
        "# HELP tcsq_requests_total Requests by outcome.\n\
         # TYPE tcsq_requests_total counter\n";
      List.iter
        (fun (o, v) ->
          Printf.bprintf buf "tcsq_requests_total{outcome=\"%s\"} %d\n" o v)
        (outcome_counts t);
      Buffer.add_string buf
        "# HELP tcsq_run_stats_total Execution counters merged over all \
         queries.\n\
         # TYPE tcsq_run_stats_total counter\n";
      List.iter
        (fun (c, v) ->
          Printf.bprintf buf "tcsq_run_stats_total{counter=\"%s\"} %d\n" c v)
        (run_stat_counts t);
      Buffer.add_string buf
        "# HELP tcsq_request_duration_seconds Query wall time by method.\n\
         # TYPE tcsq_request_duration_seconds histogram\n";
      List.iter
        (fun (name, mm) ->
          Array.iter
            (fun le ->
              Printf.bprintf buf
                "tcsq_request_duration_seconds_bucket{method=\"%s\",le=\"%g\"} \
                 %d\n"
                name le
                (Obs.Histogram.cumulative mm.latency ~le))
            Obs.Histogram.le_edges;
          Printf.bprintf buf
            "tcsq_request_duration_seconds_bucket{method=\"%s\",le=\"+Inf\"} \
             %d\n"
            name
            (Obs.Histogram.count mm.latency);
          Printf.bprintf buf
            "tcsq_request_duration_seconds_sum{method=\"%s\"} %.6f\n" name
            (Obs.Histogram.sum mm.latency);
          Printf.bprintf buf
            "tcsq_request_duration_seconds_count{method=\"%s\"} %d\n" name
            (Obs.Histogram.count mm.latency))
        (sorted_methods t);
      Buffer.contents buf)
