(* Thread-safe metrics registry for a running server. Workers record
   per-request outcomes; any connection can ask for a JSON snapshot or a
   Prometheus text exposition. Counter totals are the merge of every
   request's [Run_stats], so the observability layer reports exactly
   what execution counted.

   Latencies live in fixed-size log-bucketed histograms
   ([Obs.Histogram]): O(1) memory however many requests arrive, exact
   count/sum/mean, and p50/p95 within the histogram's documented <= 10%
   relative error (the snapshot keeps the mean_ms/p50_ms/p95_ms fields
   of the old unbounded-list implementation). *)

open Semantics

type outcome = Completed | Truncated_budget | Truncated_deadline

type method_metrics = { mutable count : int; latency : Obs.Histogram.t }

type fp_metrics = {
  mutable fp_count : int;
  mutable fp_slow : int;
  mutable fp_seconds : float;
  mutable fp_cached : int;
  mutable fp_replanned : int;
}
(* per-query-shape hot list, keyed by Semantics.Fingerprint;
   fp_cached/fp_replanned count requests whose plan came from the plan
   cache / from a feedback-triggered re-plan *)

type t = {
  mutex : Mutex.t;
  started_at : float;
  totals : Run_stats.t;
  mutable completed : int;
  mutable truncated_budget : int;
  mutable truncated_deadline : int;
  mutable rejected : int;
  mutable parse_errors : int;
  mutable overloaded : int;
  mutable internal_errors : int;
  mutable slow_completed : int;
  mutable slow_truncated_budget : int;
  mutable slow_truncated_deadline : int;
  misestimation : Obs.Histogram.t;
      (* per-query max over plan levels of the symmetric est-vs-actual
         factor; only queries that carry an estimate are recorded *)
  per_method : (string, method_metrics) Hashtbl.t;
  per_fingerprint : (string, fp_metrics) Hashtbl.t;
  (* standing queries: live registrations, pushed delta frames, and the
     wall time of each per-subscription delta computation *)
  mutable subscriptions_active : int;
  mutable deltas_pushed : int;
  delta_latency : Obs.Histogram.t;
}

let create () =
  {
    mutex = Mutex.create ();
    started_at = Unix.gettimeofday ();
    totals = Run_stats.create ();
    completed = 0;
    truncated_budget = 0;
    truncated_deadline = 0;
    rejected = 0;
    parse_errors = 0;
    overloaded = 0;
    internal_errors = 0;
    slow_completed = 0;
    slow_truncated_budget = 0;
    slow_truncated_deadline = 0;
    misestimation = Obs.Histogram.create ();
    per_method = Hashtbl.create 8;
    per_fingerprint = Hashtbl.create 32;
    subscriptions_active = 0;
    deltas_pushed = 0;
    delta_latency = Obs.Histogram.create ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let method_slot t name =
  match Hashtbl.find_opt t.per_method name with
  | Some mm -> mm
  | None ->
      let mm = { count = 0; latency = Obs.Histogram.create () } in
      Hashtbl.add t.per_method name mm;
      mm

let fp_slot t fingerprint =
  match Hashtbl.find_opt t.per_fingerprint fingerprint with
  | Some fm -> fm
  | None ->
      let fm =
        {
          fp_count = 0;
          fp_slow = 0;
          fp_seconds = 0.0;
          fp_cached = 0;
          fp_replanned = 0;
        }
      in
      Hashtbl.add t.per_fingerprint fingerprint fm;
      fm

let record_query ?(slow = false) ?fingerprint ?misestimation ?plan_source t
    ~method_ ~outcome ~stats ~seconds =
  locked t (fun () ->
      (match outcome with
      | Completed ->
          t.completed <- t.completed + 1;
          if slow then t.slow_completed <- t.slow_completed + 1
      | Truncated_budget ->
          t.truncated_budget <- t.truncated_budget + 1;
          if slow then t.slow_truncated_budget <- t.slow_truncated_budget + 1
      | Truncated_deadline ->
          t.truncated_deadline <- t.truncated_deadline + 1;
          if slow then
            t.slow_truncated_deadline <- t.slow_truncated_deadline + 1);
      Run_stats.merge_into t.totals stats;
      (match misestimation with
      | Some f -> Obs.Histogram.record t.misestimation f
      | None -> ());
      (match fingerprint with
      | Some fp ->
          let fm = fp_slot t fp in
          fm.fp_count <- fm.fp_count + 1;
          if slow then fm.fp_slow <- fm.fp_slow + 1;
          fm.fp_seconds <- fm.fp_seconds +. seconds;
          (match plan_source with
          | Some Workload.Plan_cache.Cached -> fm.fp_cached <- fm.fp_cached + 1
          | Some Workload.Plan_cache.Replanned ->
              fm.fp_replanned <- fm.fp_replanned + 1
          | Some Workload.Plan_cache.Fresh | None -> ())
      | None -> ());
      let mm = method_slot t (Workload.Engine.method_name method_) in
      mm.count <- mm.count + 1;
      Obs.Histogram.record mm.latency seconds)

let record_rejected t = locked t (fun () -> t.rejected <- t.rejected + 1)

let record_parse_error t =
  locked t (fun () -> t.parse_errors <- t.parse_errors + 1)

let record_overloaded t =
  locked t (fun () -> t.overloaded <- t.overloaded + 1)

let record_internal_error t =
  locked t (fun () -> t.internal_errors <- t.internal_errors + 1)

let set_subscriptions t n =
  locked t (fun () -> t.subscriptions_active <- n)

let record_delta t ~seconds =
  locked t (fun () ->
      t.deltas_pushed <- t.deltas_pushed + 1;
      Obs.Histogram.record t.delta_latency seconds)

let method_json mm =
  let ms s = s *. 1000.0 in
  Json.Obj
    [
      ("count", Json.Int mm.count);
      ("mean_ms", Json.Float (ms (Obs.Histogram.mean mm.latency)));
      ("p50_ms", Json.Float (ms (Obs.Histogram.quantile mm.latency 0.5)));
      ("p95_ms", Json.Float (ms (Obs.Histogram.quantile mm.latency 0.95)));
    ]

let outcome_counts t =
  [
    ("completed", t.completed);
    ("truncated_budget", t.truncated_budget);
    ("truncated_deadline", t.truncated_deadline);
    ("rejected", t.rejected);
    ("parse_errors", t.parse_errors);
    ("overloaded", t.overloaded);
    ("internal_errors", t.internal_errors);
  ]

let slow_counts t =
  [
    ("completed", t.slow_completed);
    ("truncated_budget", t.slow_truncated_budget);
    ("truncated_deadline", t.slow_truncated_deadline);
  ]

let run_stat_counts t =
  [
    ("results", t.totals.Run_stats.results);
    ("intermediate", t.totals.Run_stats.intermediate);
    ("scanned", t.totals.Run_stats.scanned);
    ("bindings", t.totals.Run_stats.bindings);
    ("enum_steps", t.totals.Run_stats.enum_steps);
    ("seeks", t.totals.Run_stats.seeks);
    ("est_intermediate", t.totals.Run_stats.est_intermediate);
  ]

let sorted_methods t =
  Hashtbl.fold (fun name mm acc -> (name, mm) :: acc) t.per_method []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* hottest query shapes: by request count, ties broken by total time,
   then lexicographically so the snapshot is deterministic *)
let hot_fingerprints t =
  Hashtbl.fold (fun fp fm acc -> (fp, fm) :: acc) t.per_fingerprint []
  |> List.sort (fun (fa, a) (fb, b) ->
         match compare b.fp_count a.fp_count with
         | 0 -> (
             match compare b.fp_seconds a.fp_seconds with
             | 0 -> String.compare fa fb
             | c -> c)
         | c -> c)

let fingerprint_json (fp, fm) =
  Json.Obj
    [
      ("fingerprint", Json.String fp);
      ("count", Json.Int fm.fp_count);
      ("slow", Json.Int fm.fp_slow);
      ( "mean_ms",
        Json.Float
          (if fm.fp_count = 0 then 0.0
           else fm.fp_seconds *. 1000.0 /. float_of_int fm.fp_count) );
      ("cached", Json.Int fm.fp_cached);
      ("replanned", Json.Int fm.fp_replanned);
    ]

(* plan-cache counter pairs shared by the JSON snapshot and the
   Prometheus exposition; read fresh from the cache at snapshot time so
   the registry holds no second copy that could drift *)
let plan_cache_counts cache =
  let c = Workload.Plan_cache.counters cache in
  [
    ("hits", c.Workload.Plan_cache.hits);
    ("misses", c.Workload.Plan_cache.misses);
    ("evictions", c.Workload.Plan_cache.evictions);
    ("invalidations", c.Workload.Plan_cache.invalidations);
    ("replans", c.Workload.Plan_cache.replans);
  ]

let snapshot_json ?plan_cache t ~queue_depth ~pool_dropped =
  locked t (fun () ->
      let methods =
        List.map (fun (name, mm) -> (name, method_json mm)) (sorted_methods t)
      in
      Json.Obj
        ([
          ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
          ("queue_depth", Json.Int queue_depth);
          ("pool_dropped_exceptions", Json.Int pool_dropped);
          ( "requests",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.Int v)) (outcome_counts t)) );
          ( "slow_requests",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (slow_counts t))
          );
          ("totals", Protocol.stats_json t.totals);
          ("methods", Json.Obj methods);
          ( "misestimation",
            Json.Obj
              [
                ("count", Json.Int (Obs.Histogram.count t.misestimation));
                ("mean", Json.Float (Obs.Histogram.mean t.misestimation));
                ( "p95",
                  Json.Float (Obs.Histogram.quantile t.misestimation 0.95) );
              ] );
          ( "fingerprints",
            Json.List (List.map fingerprint_json (hot_fingerprints t)) );
          ( "subscriptions",
            Json.Obj
              [
                ("active", Json.Int t.subscriptions_active);
                ("deltas_pushed", Json.Int t.deltas_pushed);
                ( "delta_mean_ms",
                  Json.Float (Obs.Histogram.mean t.delta_latency *. 1000.0) );
                ( "delta_p95_ms",
                  Json.Float
                    (Obs.Histogram.quantile t.delta_latency 0.95 *. 1000.0) );
              ] );
        ]
        @
        match plan_cache with
      | None -> []
      | Some cache ->
          [
            ( "plan_cache",
              Json.Obj
                (List.map
                   (fun (k, v) -> (k, Json.Int v))
                   (plan_cache_counts cache)
                @ [
                    ("size", Json.Int (Workload.Plan_cache.length cache));
                    ( "capacity",
                      Json.Int (Workload.Plan_cache.capacity cache) );
                    ( "generation",
                      Json.Int (Workload.Plan_cache.generation cache) );
                  ]) );
          ]))

(* Prometheus label-value escaping (exposition format 0.0.4): inside a
   quoted label value, backslash, double-quote and newline must be
   escaped. Every label value below goes through this, so a hostile
   method/outcome name can never corrupt the exposition. *)
let plabel v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* One full histogram family block: every bucket of the [Obs.Histogram]
   decade ladder, the mandatory +Inf bucket, and _sum/_count. *)
let prom_histogram buf ~family ~label h =
  let bucket le_str n =
    match label with
    | None ->
        Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" family le_str n
    | Some (k, v) ->
        Printf.bprintf buf "%s_bucket{%s=\"%s\",le=\"%s\"} %d\n" family k
          (plabel v) le_str n
  in
  Array.iter
    (fun le ->
      bucket (Printf.sprintf "%g" le) (Obs.Histogram.cumulative h ~le))
    Obs.Histogram.le_edges;
  bucket "+Inf" (Obs.Histogram.count h);
  (match label with
  | None ->
      Printf.bprintf buf "%s_sum %.6f\n" family (Obs.Histogram.sum h);
      Printf.bprintf buf "%s_count %d\n" family (Obs.Histogram.count h)
  | Some (k, v) ->
      Printf.bprintf buf "%s_sum{%s=\"%s\"} %.6f\n" family k (plabel v)
        (Obs.Histogram.sum h);
      Printf.bprintf buf "%s_count{%s=\"%s\"} %d\n" family k (plabel v)
        (Obs.Histogram.count h))

(* Prometheus text exposition (version 0.0.4). Families:
   tcsq_uptime_seconds, tcsq_queue_depth (gauges);
   tcsq_requests_total{outcome}, tcsq_slow_requests_total{outcome},
   tcsq_run_stats_total{counter} (counters);
   tcsq_request_duration_seconds{method}, tcsq_misestimation_ratio
   (histograms whose "le" ladder is the decade edges of [Obs.Histogram]
   — exact cumulative counts, always closed with +Inf/_sum/_count). *)
let prometheus ?plan_cache t ~queue_depth ~pool_dropped =
  locked t (fun () ->
      let buf = Buffer.create 2048 in
      Printf.bprintf buf
        "# HELP tcsq_uptime_seconds Seconds since server start.\n\
         # TYPE tcsq_uptime_seconds gauge\n\
         tcsq_uptime_seconds %.3f\n"
        (Unix.gettimeofday () -. t.started_at);
      Printf.bprintf buf
        "# HELP tcsq_queue_depth Admission queue depth.\n\
         # TYPE tcsq_queue_depth gauge\n\
         tcsq_queue_depth %d\n"
        queue_depth;
      Printf.bprintf buf
        "# HELP tcsq_pool_dropped_exceptions_total Worker-pool jobs that \
         died with an unhandled exception.\n\
         # TYPE tcsq_pool_dropped_exceptions_total counter\n\
         tcsq_pool_dropped_exceptions_total %d\n"
        pool_dropped;
      Buffer.add_string buf
        "# HELP tcsq_requests_total Requests by outcome.\n\
         # TYPE tcsq_requests_total counter\n";
      List.iter
        (fun (o, v) ->
          Printf.bprintf buf "tcsq_requests_total{outcome=\"%s\"} %d\n"
            (plabel o) v)
        (outcome_counts t);
      Buffer.add_string buf
        "# HELP tcsq_slow_requests_total Requests at or over the slow-query \
         threshold, by outcome.\n\
         # TYPE tcsq_slow_requests_total counter\n";
      List.iter
        (fun (o, v) ->
          Printf.bprintf buf "tcsq_slow_requests_total{outcome=\"%s\"} %d\n"
            (plabel o) v)
        (slow_counts t);
      Buffer.add_string buf
        "# HELP tcsq_run_stats_total Execution counters merged over all \
         queries.\n\
         # TYPE tcsq_run_stats_total counter\n";
      List.iter
        (fun (c, v) ->
          Printf.bprintf buf "tcsq_run_stats_total{counter=\"%s\"} %d\n"
            (plabel c) v)
        (run_stat_counts t);
      Buffer.add_string buf
        "# HELP tcsq_request_duration_seconds Query wall time by method.\n\
         # TYPE tcsq_request_duration_seconds histogram\n";
      List.iter
        (fun (name, mm) ->
          prom_histogram buf ~family:"tcsq_request_duration_seconds"
            ~label:(Some ("method", name))
            mm.latency)
        (sorted_methods t);
      Buffer.add_string buf
        "# HELP tcsq_misestimation_ratio Per-query max over plan levels of \
         the symmetric estimated-vs-actual cardinality factor.\n\
         # TYPE tcsq_misestimation_ratio histogram\n";
      prom_histogram buf ~family:"tcsq_misestimation_ratio" ~label:None
        t.misestimation;
      Printf.bprintf buf
        "# HELP tcsq_subscriptions_active Registered standing queries.\n\
         # TYPE tcsq_subscriptions_active gauge\n\
         tcsq_subscriptions_active %d\n"
        t.subscriptions_active;
      Printf.bprintf buf
        "# HELP tcsq_deltas_pushed_total Standing-query delta notifications \
         pushed to subscribers.\n\
         # TYPE tcsq_deltas_pushed_total counter\n\
         tcsq_deltas_pushed_total %d\n"
        t.deltas_pushed;
      Buffer.add_string buf
        "# HELP tcsq_delta_duration_seconds Per-subscription delta \
         computation wall time.\n\
         # TYPE tcsq_delta_duration_seconds histogram\n";
      prom_histogram buf ~family:"tcsq_delta_duration_seconds" ~label:None
        t.delta_latency;
      (match plan_cache with
      | None -> ()
      | Some cache ->
          List.iter
            (fun (name, help, v) ->
              Printf.bprintf buf
                "# HELP tcsq_plan_cache_%s_total %s\n\
                 # TYPE tcsq_plan_cache_%s_total counter\n\
                 tcsq_plan_cache_%s_total %d\n"
                name help name name v)
            (let c = plan_cache_counts cache in
             let get k = List.assoc k c in
             [
               ("hits", "Plan-cache lookups served from the cache.", get "hits");
               ("misses", "Plan-cache lookups that planned fresh.", get "misses");
               ( "evictions",
                 "Plan-cache entries dropped by the LRU bound.",
                 get "evictions" );
               ( "invalidations",
                 "Plan-cache entries dropped by ingest invalidation.",
                 get "invalidations" );
               ( "replans",
                 "Poisoned plan-cache entries re-planned from feedback.",
                 get "replans" );
             ]);
          Printf.bprintf buf
            "# HELP tcsq_plan_cache_entries Live plan-cache entries.\n\
             # TYPE tcsq_plan_cache_entries gauge\n\
             tcsq_plan_cache_entries %d\n"
            (Workload.Plan_cache.length cache));
      Buffer.contents buf)
