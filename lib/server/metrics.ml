(* Thread-safe metrics registry for a running server. Workers record
   per-request outcomes; any connection can ask for a JSON snapshot.
   Counter totals are the merge of every request's [Run_stats], so the
   observability layer reports exactly what execution counted. *)

open Semantics

type outcome = Completed | Truncated_budget | Truncated_deadline

(* per-method latency reservoir; recording stops at [max_latencies] but
   the count keeps going *)
type method_metrics = {
  mutable count : int;
  mutable latencies : float list;
  mutable n_latencies : int;
}

let max_latencies = 100_000

type t = {
  mutex : Mutex.t;
  started_at : float;
  totals : Run_stats.t;
  mutable completed : int;
  mutable truncated_budget : int;
  mutable truncated_deadline : int;
  mutable rejected : int;
  mutable parse_errors : int;
  mutable overloaded : int;
  mutable internal_errors : int;
  per_method : (string, method_metrics) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    started_at = Unix.gettimeofday ();
    totals = Run_stats.create ();
    completed = 0;
    truncated_budget = 0;
    truncated_deadline = 0;
    rejected = 0;
    parse_errors = 0;
    overloaded = 0;
    internal_errors = 0;
    per_method = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let method_slot t name =
  match Hashtbl.find_opt t.per_method name with
  | Some mm -> mm
  | None ->
      let mm = { count = 0; latencies = []; n_latencies = 0 } in
      Hashtbl.add t.per_method name mm;
      mm

let record_query t ~method_ ~outcome ~stats ~seconds =
  locked t (fun () ->
      (match outcome with
      | Completed -> t.completed <- t.completed + 1
      | Truncated_budget -> t.truncated_budget <- t.truncated_budget + 1
      | Truncated_deadline -> t.truncated_deadline <- t.truncated_deadline + 1);
      Run_stats.merge_into t.totals stats;
      let mm = method_slot t (Workload.Engine.method_name method_) in
      mm.count <- mm.count + 1;
      if mm.n_latencies < max_latencies then begin
        mm.latencies <- seconds :: mm.latencies;
        mm.n_latencies <- mm.n_latencies + 1
      end)

let record_rejected t = locked t (fun () -> t.rejected <- t.rejected + 1)

let record_parse_error t =
  locked t (fun () -> t.parse_errors <- t.parse_errors + 1)

let record_overloaded t =
  locked t (fun () -> t.overloaded <- t.overloaded + 1)

let record_internal_error t =
  locked t (fun () -> t.internal_errors <- t.internal_errors + 1)

let method_json mm =
  let sorted = Array.of_list mm.latencies in
  Array.sort Float.compare sorted;
  let total = Array.fold_left ( +. ) 0.0 sorted in
  let mean =
    if Array.length sorted = 0 then 0.0
    else total /. float_of_int (Array.length sorted)
  in
  let ms s = s *. 1000.0 in
  Json.Obj
    [
      ("count", Json.Int mm.count);
      ("mean_ms", Json.Float (ms mean));
      ("p50_ms", Json.Float (ms (Workload.Runner.percentile sorted 0.5)));
      ("p95_ms", Json.Float (ms (Workload.Runner.percentile sorted 0.95)));
    ]

let snapshot_json t ~queue_depth =
  locked t (fun () ->
      let methods =
        Hashtbl.fold (fun name mm acc -> (name, method_json mm) :: acc)
          t.per_method []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      Json.Obj
        [
          ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
          ("queue_depth", Json.Int queue_depth);
          ( "requests",
            Json.Obj
              [
                ("completed", Json.Int t.completed);
                ("truncated_budget", Json.Int t.truncated_budget);
                ("truncated_deadline", Json.Int t.truncated_deadline);
                ("rejected", Json.Int t.rejected);
                ("parse_errors", Json.Int t.parse_errors);
                ("overloaded", Json.Int t.overloaded);
                ("internal_errors", Json.Int t.internal_errors);
              ] );
          ("totals", Protocol.stats_json t.totals);
          ("methods", Json.Obj methods);
        ])
