(* Bounded worker pool on the same domain machinery as
   [Tsrjoin.run_parallel]: a fixed set of worker domains drains a
   mutex-protected admission queue. [submit] never blocks — when the
   queue is at capacity the job is shed and the caller answers
   "overloaded" instead of stalling the connection. *)

type job = unit -> unit

type t = {
  jobs : job Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  max_depth : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.jobs && not t.stopping do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.jobs then Mutex.unlock t.mutex (* stopping, drained *)
  else begin
    let job = Queue.pop t.jobs in
    Mutex.unlock t.mutex;
    (* jobs do their own error handling; this is the backstop that keeps
       a worker alive no matter what a job raises *)
    (try job () with _ -> ());
    worker_loop t
  end

let create ~workers ~max_depth =
  if workers < 1 then invalid_arg "Pool.create: need >= 1 worker";
  if max_depth < 1 then invalid_arg "Pool.create: need >= 1 queue slot";
  let t =
    {
      jobs = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      max_depth;
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

(* [true] if accepted; [false] if shed (queue full or shutting down) *)
let submit t job =
  Mutex.lock t.mutex;
  let accepted = (not t.stopping) && Queue.length t.jobs < t.max_depth in
  if accepted then begin
    Queue.push job t.jobs;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.mutex;
  accepted

let depth t =
  Mutex.lock t.mutex;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  n

(* Stops admission, lets the workers drain what was already accepted,
   and joins them. Idempotent. *)
let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []
