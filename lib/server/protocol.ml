(* The wire protocol: one JSON object per line in each direction.

   Requests:
     {"op": "query", "query": "MATCH ... IN [a, b]", "method": "tsrjoin",
      "deadline_ms": 500, "limit": 100, "count_only": false,
      "max_results": N, "max_intermediate": N, "id": "optional tag"}
     {"op": "ingest",
      "edges": [{"src": 0, "dst": 1, "label": "a", "ts": 3, "te": 9}, ...],
      "id": "optional tag"}
     {"op": "subscribe", "query": "MATCH ...", "window_width": 500,
      "id": "optional tag"}
     {"op": "unsubscribe", "sub": 3, "id": "optional tag"}
     {"op": "metrics"}   {"op": "metrics_prom"}
     {"op": "ping"}      {"op": "shutdown"}

   Responses always carry a "status":
     ok         completed (query / metrics / ping / shutdown ack)
     truncated  partial answer; "reason" is "deadline" or "budget"
     error      request never executed; "kind" is "parse" (bad JSON),
                "query" (query-language rejection), "lint" (analyzer
                error, with "diagnostics"), or "internal"
     overloaded admission queue full; retry later

   Standing-query notifications are the one server->client frame that is
   NOT a response: after a subscribe, each ingest batch may push
     {"notification": "delta", "sub": 3, "window": {...},
      "added": [...], "retracted": [...], ...}
   lines onto subscribed connections. They carry no "status" field, so
   pipelined clients can demux by presence of "notification". *)

open Semantics

type query_request = {
  id : string option;
  text : string;
  method_ : Workload.Engine.method_;
  deadline_ms : float option;
  limit : int option;
  count_only : bool;
  max_results : int option;
  max_intermediate : int option;
}

type ingest_edge = {
  src : int;
  dst : int;
  label : string;
  ts : int;
  te : int;
}

type ingest_request = { ingest_id : string option; edges : ingest_edge list }

type subscribe_request = {
  subscribe_id : string option;
  subscribe_text : string;
  window_width : int option; (* None: the query's own window, fixed *)
}

type unsubscribe_request = { unsubscribe_id : string option; sub : int }

type request =
  | Query of query_request
  | Ingest of ingest_request
  | Subscribe of subscribe_request
  | Unsubscribe of unsubscribe_request
  | Metrics of string option
  | Metrics_prom of string option
  | Ping of string option
  | Shutdown of string option

let parse_ingest_edge j =
  match
    ( Json.mem_int "src" j,
      Json.mem_int "dst" j,
      Json.mem_string "label" j,
      Json.mem_int "ts" j,
      Json.mem_int "te" j )
  with
  | Some src, Some dst, Some label, Some ts, Some te ->
      Ok { src; dst; label; ts; te }
  | _ -> Error "ingest edge needs src, dst, label, ts, te"

let parse_request line =
  match Json.parse line with
  | Error msg -> Error (Printf.sprintf "bad JSON: %s" msg)
  | Ok j -> (
      let id = Json.mem_string "id" j in
      match Json.mem_string "op" j with
      | None -> Error "missing \"op\" field"
      | Some "ingest" -> (
          match Json.mem_list "edges" j with
          | None -> Error "missing \"edges\" field"
          | Some items -> (
              let rec collect acc = function
                | [] -> Ok (List.rev acc)
                | item :: rest -> (
                    match parse_ingest_edge item with
                    | Ok e -> collect (e :: acc) rest
                    | Error _ as e -> e)
              in
              match collect [] items with
              | Ok edges -> Ok (Ingest { ingest_id = id; edges })
              | Error msg -> Error msg))
      | Some "subscribe" -> (
          match Json.mem_string "query" j with
          | None -> Error "missing \"query\" field"
          | Some text -> (
              match Json.mem_int "window_width" j with
              | Some w when w <= 0 -> Error "window_width must be positive"
              | window_width ->
                  Ok
                    (Subscribe
                       { subscribe_id = id; subscribe_text = text; window_width })
              ))
      | Some "unsubscribe" -> (
          match Json.mem_int "sub" j with
          | None -> Error "missing \"sub\" field"
          | Some sub -> Ok (Unsubscribe { unsubscribe_id = id; sub }))
      | Some "metrics" -> Ok (Metrics id)
      | Some "metrics_prom" -> Ok (Metrics_prom id)
      | Some "ping" -> Ok (Ping id)
      | Some "shutdown" -> Ok (Shutdown id)
      | Some "query" -> (
          match Json.mem_string "query" j with
          | None -> Error "missing \"query\" field"
          | Some text -> (
              let method_name =
                Option.value (Json.mem_string "method" j) ~default:"tsrjoin"
              in
              match Workload.Engine.method_of_string method_name with
              | None -> Error (Printf.sprintf "unknown method %S" method_name)
              | Some method_ ->
                  Ok
                    (Query
                       {
                         id;
                         text;
                         method_;
                         deadline_ms = Json.mem_float "deadline_ms" j;
                         limit = Json.mem_int "limit" j;
                         count_only =
                           Option.value
                             (Json.mem_bool "count_only" j)
                             ~default:false;
                         max_results = Json.mem_int "max_results" j;
                         max_intermediate = Json.mem_int "max_intermediate" j;
                       })))
      | Some op -> Error (Printf.sprintf "unknown op %S" op))

(* ---- server-side response rendering ---- *)

let id_field = function None -> [] | Some id -> [ ("id", Json.String id) ]

let stats_json (s : Run_stats.t) =
  let int_array a =
    Json.List (Array.to_list (Array.map (fun v -> Json.Int v) a))
  in
  Json.Obj
    [
      ("results", Json.Int s.Run_stats.results);
      ("intermediate", Json.Int s.Run_stats.intermediate);
      ("scanned", Json.Int s.Run_stats.scanned);
      ("bindings", Json.Int s.Run_stats.bindings);
      ("enum_steps", Json.Int s.Run_stats.enum_steps);
      ("seeks", Json.Int s.Run_stats.seeks);
      ("est_intermediate", Json.Int s.Run_stats.est_intermediate);
      ("levels", int_array (Run_stats.levels s));
      ("est_levels", int_array (Run_stats.est_levels s));
    ]

let match_json g (m : Match_result.t) =
  let edge id =
    let e = Tgraph.Graph.edge g id in
    Json.Obj
      [
        ("id", Json.Int id);
        ("src", Json.Int (Tgraph.Edge.src e));
        ("dst", Json.Int (Tgraph.Edge.dst e));
        ( "label",
          Json.String
            (Tgraph.Label.name (Tgraph.Graph.labels g) (Tgraph.Edge.lbl e)) );
        ("ts", Json.Int (Tgraph.Edge.ts e));
        ("te", Json.Int (Tgraph.Edge.te e));
      ]
  in
  Json.Obj
    [
      ( "edges",
        Json.List (Array.to_list (Array.map edge m.Match_result.edges)) );
      ( "lifespan",
        Json.Obj
          [
            ("ts", Json.Int (Temporal.Interval.ts m.Match_result.life));
            ("te", Json.Int (Temporal.Interval.te m.Match_result.life));
          ] );
    ]

type truncation = Budget | Deadline

let truncation_name = function Budget -> "budget" | Deadline -> "deadline"

let result_response ?id ~graph ~truncated ~count ~matches ~stats ~elapsed_ms ()
    =
  let status, reason =
    match truncated with
    | None -> ("ok", [])
    | Some tr -> ("truncated", [ ("reason", Json.String (truncation_name tr)) ])
  in
  Json.to_string
    (Json.Obj
       (id_field id
       @ [ ("status", Json.String status) ]
       @ reason
       @ [
           ("count", Json.Int count);
           ("matches", Json.List (List.map (match_json graph) matches));
           ("stats", stats_json stats);
           ("elapsed_ms", Json.Float elapsed_ms);
         ]))

let error_response ?id ~kind ?(diagnostics = []) message =
  let diag_fields =
    if diagnostics = [] then []
    else
      match Json.parse (Analysis.Diagnostic.list_to_json diagnostics) with
      | Ok j -> [ ("diagnostics", j) ]
      | Error _ -> []
  in
  Json.to_string
    (Json.Obj
       (id_field id
       @ [
           ("status", Json.String "error");
           ("kind", Json.String kind);
           ("message", Json.String message);
         ]
       @ diag_fields))

let overloaded_response ?id ~queue_depth () =
  Json.to_string
    (Json.Obj
       (id_field id
       @ [
           ("status", Json.String "overloaded");
           ("queue_depth", Json.Int queue_depth);
         ]))

let ingest_response ?id ~appended ~n_edges ~generation ~invalidated () =
  Json.to_string
    (Json.Obj
       (id_field id
       @ [
           ("status", Json.String "ok");
           ("appended", Json.Int appended);
           ("n_edges", Json.Int n_edges);
           ("generation", Json.Int generation);
           ("plans_invalidated", Json.Int invalidated);
         ]))

let interval_json iv =
  Json.Obj
    [
      ("ts", Json.Int (Temporal.Interval.ts iv));
      ("te", Json.Int (Temporal.Interval.te iv));
    ]

let subscribe_response ?id ~sub ~graph ~window ~matches () =
  Json.to_string
    (Json.Obj
       (id_field id
       @ [
           ("status", Json.String "ok");
           ("sub", Json.Int sub);
           ("window", interval_json window);
           ("count", Json.Int (List.length matches));
           ("matches", Json.List (List.map (match_json graph) matches));
         ]))

let unsubscribe_response ?id ~sub ~removed () =
  Json.to_string
    (Json.Obj
       (id_field id
       @ [
           ("status", Json.String "ok");
           ("sub", Json.Int sub);
           ("removed", Json.Bool removed);
         ]))

(* Pushed frame, not a response: no "status", demuxed by "notification".
   [tag] echoes the id the client sent with the subscribe, so a
   pipelined client can route deltas without tracking sub numbers. *)
let delta_notification ?tag ~sub ~generation ~graph ~window ~added ~retracted
    ~total ~elapsed_ms () =
  Json.to_string
    (Json.Obj
       ([ ("notification", Json.String "delta"); ("sub", Json.Int sub) ]
       @ (match tag with None -> [] | Some t -> [ ("tag", Json.String t) ])
       @ [
           ("generation", Json.Int generation);
           ("window", interval_json window);
           ("added", Json.List (List.map (match_json graph) added));
           ("retracted", Json.List (List.map (match_json graph) retracted));
           ("total", Json.Int total);
           ("elapsed_ms", Json.Float elapsed_ms);
         ]))

let pong_response ?id () =
  Json.to_string
    (Json.Obj
       (id_field id @ [ ("status", Json.String "ok"); ("pong", Json.Bool true) ]))

let metrics_response ?id snapshot =
  Json.to_string
    (Json.Obj
       (id_field id
       @ [ ("status", Json.String "ok"); ("metrics", snapshot) ]))

(* the Prometheus text exposition rides the one-line JSON framing as an
   escaped string; clients unescape and serve/print it verbatim *)
let metrics_prom_response ?id text =
  Json.to_string
    (Json.Obj
       (id_field id
       @ [ ("status", Json.String "ok"); ("prometheus", Json.String text) ]))

let shutdown_response ?id () =
  Json.to_string
    (Json.Obj
       (id_field id
       @ [ ("status", Json.String "ok"); ("stopping", Json.Bool true) ]))

(* ---- client-side response view ---- *)

type response = {
  id : string option;
  status : string;
  reason : string option;
  kind : string option;
  message : string option;
  count : int option;
  matches : Match_result.t list;
  elapsed_ms : float option;
  notification : string option; (* Some "delta" on pushed frames *)
  json : Json.t;
}

let match_of_json j =
  let edges =
    match Json.mem_list "edges" j with
    | None -> None
    | Some es ->
        let ids = List.filter_map (Json.mem_int "id") es in
        if List.length ids = List.length es then Some (Array.of_list ids)
        else None
  in
  let life =
    match Json.member "lifespan" j with
    | None -> None
    | Some l -> (
        match (Json.mem_int "ts" l, Json.mem_int "te" l) with
        | Some ts, Some te when ts <= te -> Some (Temporal.Interval.make ts te)
        | _ -> None)
  in
  match (edges, life) with
  | Some edges, Some life -> Some (Match_result.make edges life)
  | _ -> None

let response_of_json j =
  {
    id = Json.mem_string "id" j;
    status = Option.value (Json.mem_string "status" j) ~default:"invalid";
    reason = Json.mem_string "reason" j;
    kind = Json.mem_string "kind" j;
    message = Json.mem_string "message" j;
    count = Json.mem_int "count" j;
    matches =
      (match Json.mem_list "matches" j with
      | None -> []
      | Some ms -> List.filter_map match_of_json ms);
    elapsed_ms = Json.mem_float "elapsed_ms" j;
    notification = Json.mem_string "notification" j;
    json = j;
  }

let parse_response line =
  match Json.parse line with
  | Error msg -> Error (Printf.sprintf "bad response JSON: %s" msg)
  | Ok j -> Ok (response_of_json j)

let is_notification r = r.notification <> None

(* typed view of a pushed delta frame, for watch loops and tests *)
type delta_view = {
  delta_sub : int;
  delta_tag : string option;
  delta_generation : int option;
  delta_window : Temporal.Interval.t option;
  delta_added : Match_result.t list;
  delta_retracted : Match_result.t list;
  delta_total : int option;
}

let delta_of_response r =
  if r.notification <> Some "delta" then None
  else
    match Json.mem_int "sub" r.json with
    | None -> None
    | Some delta_sub ->
        let matches field =
          match Json.mem_list field r.json with
          | None -> []
          | Some ms -> List.filter_map match_of_json ms
        in
        Some
          {
            delta_sub;
            delta_tag = Json.mem_string "tag" r.json;
            delta_generation = Json.mem_int "generation" r.json;
            delta_window =
              (match Json.member "window" r.json with
              | None -> None
              | Some w -> (
                  match (Json.mem_int "ts" w, Json.mem_int "te" w) with
                  | Some ts, Some te when ts <= te ->
                      Some (Temporal.Interval.make ts te)
                  | _ -> None));
            delta_added = matches "added";
            delta_retracted = matches "retracted";
            delta_total = Json.mem_int "total" r.json;
          }
