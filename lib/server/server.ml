(* A resident query service over a Unix-domain socket.

   The graph is loaded and indexed once ([Workload.Engine.prepare]), then
   every request rides the warm TAI/planner state. Request lifecycle:

     lint -> admit -> execute-with-deadline -> respond

   - lint: the query text is compiled and run through the static
     analyzer on the connection thread; error-level queries are rejected
     before they cost anything, provably-empty ones skip execution.
   - admit: accepted queries enter a bounded queue drained by a fixed
     pool of worker domains; a full queue answers "overloaded" instead
     of stalling the connection.
   - execute: workers run the engine under the request's Run_stats
     budgets plus a wall-clock deadline checked on the counter tick
     path, so even result-free sweeps abort promptly.
   - respond: one JSON line per request, written under a per-connection
     lock (workers finish out of submission order). *)

open Semantics

type config = {
  socket_path : string;
  workers : int;
  queue_depth : int;
  default_deadline_ms : float option;
  default_limit : int;
  default_max_results : int;
  default_max_intermediate : int;
  (* when set, every [trace_sample]-th query request is traced through a
     per-request sink and written as [trace_dir]/req-<seq>.json (Chrome
     trace-event JSON, schema trace/v1) *)
  trace_dir : string option;
  trace_sample : int;
  (* intra-query fan-out ceiling: a request may additionally enlist up
     to [domains - 1] *idle* pool workers as TSRJoin helpers; 1 keeps
     every query single-domain *)
  domains : int;
  (* when set, append one tcsq-qlog/v1 JSON line per finished request
     (any outcome) to this file *)
  query_log : string option;
  (* requests at or over this wall time are flagged slow: always logged
     regardless of sampling, and counted in tcsq_slow_requests_total *)
  slow_ms : float option;
  (* keep-rate for ordinary (fast, completed) query-log lines *)
  qlog_sample : float;
  (* bound on the shared plan cache (entries); 0 disables caching —
     every request plans from scratch, exactly the pre-cache behavior *)
  plan_cache_size : int;
  (* worst-level symmetric est-vs-actual factor that counts an execution
     as misestimated for the cache's adaptive re-planning; the default
     is the P009 threshold (16x) *)
  plan_cache_replan_threshold : float;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 4;
    queue_depth = 64;
    default_deadline_ms = None;
    default_limit = 100;
    default_max_results =
      Workload.Runner.default_budget.Workload.Runner.max_results_per_query;
    default_max_intermediate =
      Workload.Runner.default_budget.Workload.Runner.max_intermediate_per_query;
    trace_dir = None;
    trace_sample = 1;
    domains = 1;
    query_log = None;
    slow_ms = None;
    qlog_sample = 1.0;
    plan_cache_size = 256;
    plan_cache_replan_threshold = 16.0;
  }

type t = {
  config : config;
  (* swapped atomically by ingest; a request captures one engine at
     admission and uses it throughout, so in-flight queries keep a
     consistent graph while new requests see the appended edges *)
  engine : Workload.Engine.t Atomic.t;
  plan_cache : Workload.Plan_cache.t option;
  (* incremental index maintenance state: owns the merged graph + TAI
     the engine serves from; mutated only under [ingest_mutex] *)
  inc : Tcsq_core.Incremental.t;
  (* standing queries; refreshed under [ingest_mutex] on every batch *)
  subs : Subscription.t;
  (* serializes ingest batches (index merge + engine swap + cache
     invalidation + standing-query deltas) and subscription
     registration; queries never take it *)
  ingest_mutex : Mutex.t;
  pool : Exec.Pool.t;
  metrics : Metrics.t;
  qlog : Obs.Qlog.t option;
  listener : Unix.file_descr;
  state_mutex : Mutex.t;
  stop_requested : Condition.t;
  mutable stopping : bool;
  mutable finished : bool;
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
  mutable accept_domain : unit Domain.t option;
  req_seq : int Atomic.t;  (* query-request counter, drives trace sampling *)
}

let is_stopping t =
  Mutex.lock t.state_mutex;
  let s = t.stopping in
  Mutex.unlock t.state_mutex;
  s

(* Idempotent. [shutdown] (not [close]) on the listener: on Linux,
   closing a socket another thread is blocked in [accept] on leaves
   that thread blocked forever, while shutting it down wakes the accept
   with an error. The fd itself is closed in [finish], after the accept
   domain has been joined. Actual teardown happens in [finish] (from
   [wait]/[stop]), never on a connection thread. *)
let request_stop t =
  Mutex.lock t.state_mutex;
  if not t.stopping then begin
    t.stopping <- true;
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ())
  end;
  Condition.broadcast t.stop_requested;
  Mutex.unlock t.state_mutex

let metrics t = t.metrics
let engine t = Atomic.get t.engine
let plan_cache t = t.plan_cache
let queue_depth t = Exec.Pool.depth t.pool
let subscriptions t = Subscription.active t.subs

(* ---- request tracing ---- *)

(* A fresh sink per sampled query request; the connection thread records
   parse/lint/admit, the worker domain records execute/respond — a
   sequential handoff (the conn thread never touches the sink after
   submission), so single-owner use holds. *)
let request_sink t =
  match t.config.trace_dir with
  | None -> (Obs.Sink.null, 0)
  | Some _ ->
      let seq = Atomic.fetch_and_add t.req_seq 1 in
      if seq mod max 1 t.config.trace_sample = 0 then
        (Obs.Sink.create ~clock:Unix.gettimeofday (), seq)
      else (Obs.Sink.null, seq)

(* close the request span and flush the trace file; called exactly once
   per sampled request, on whichever thread sent the response *)
let finish_request t obs ~req_t0 ~seq =
  if Obs.Sink.enabled obs then begin
    Obs.Sink.record_span obs Obs.Phase.Request ~t0:req_t0;
    match t.config.trace_dir with
    | None -> ()
    | Some dir ->
        let path = Filename.concat dir (Printf.sprintf "req-%06d.json" seq) in
        (try
           let oc = open_out path in
           output_string oc
             (Obs.Trace.to_chrome_json ~process_name:"tcsq-serve" obs);
           close_out oc
         with Sys_error _ -> ())
  end

(* ---- structured query log ---- *)

(* symmetric misestimation factor: >= 1, direction-agnostic; both sides
   floored at 1 so a true-zero level does not divide by zero *)
let misest_factor est actual =
  let e = float_of_int (max est 1) and a = float_of_int (max actual 1) in
  Float.max e a /. Float.min e a

(* per-level est-vs-actual pairs and the per-query max factor; no
   factor when the query carried no estimate (non-TSRJoin methods) *)
let levels_of_stats stats =
  let est = Run_stats.est_levels stats in
  let act = Run_stats.levels stats in
  let n = max (Array.length est) (Array.length act) in
  let get a i = if i < Array.length a then a.(i) else 0 in
  let levels =
    List.init n (fun i ->
        { Obs.Qlog.level = i; est = get est i; actual = get act i })
  in
  let misest =
    if Array.length est = 0 then None
    else
      Some
        (List.fold_left
           (fun m (l : Obs.Qlog.level) ->
             Float.max m (misest_factor l.Obs.Qlog.est l.Obs.Qlog.actual))
           1.0 levels)
  in
  (levels, misest)

let qlog_stat_pairs stats =
  [
    ("results", stats.Run_stats.results);
    ("intermediate", stats.Run_stats.intermediate);
    ("scanned", stats.Run_stats.scanned);
    ("bindings", stats.Run_stats.bindings);
    ("enum_steps", stats.Run_stats.enum_steps);
    ("seeks", stats.Run_stats.seeks);
    ("est_intermediate", stats.Run_stats.est_intermediate);
  ]

let log_query t ~outcome ~duration_ms ?id ?fingerprint ?query ?method_ ?window
    ?stats ?plan_source () =
  match t.qlog with
  | None -> ()
  | Some q ->
      let stat_pairs, levels, misestimation =
        match stats with
        | None -> ([], [], None)
        | Some s ->
            let levels, misest = levels_of_stats s in
            (qlog_stat_pairs s, levels, misest)
      in
      ignore
        (Obs.Qlog.log q
           {
             Obs.Qlog.ts = Unix.gettimeofday ();
             id;
             fingerprint;
             query;
             method_ = Option.map Workload.Engine.method_name method_;
             window;
             outcome;
             duration_ms;
             stats = stat_pairs;
             levels;
             misestimation;
             plan_source =
               Option.map Workload.Plan_cache.source_name plan_source;
           })

let is_slow t seconds =
  match t.config.slow_ms with
  | Some ms -> seconds *. 1000.0 >= ms
  | None -> false

(* one qlog line per pushed delta: method "delta", the subscriber's tag
   as the id, and the add/retract/total counts as stats *)
let log_delta t ~fingerprint (d : Subscription.delta) =
  match t.qlog with
  | None -> ()
  | Some q ->
      ignore
        (Obs.Qlog.log q
           {
             Obs.Qlog.ts = Unix.gettimeofday ();
             id = d.Subscription.tag;
             fingerprint = Some fingerprint;
             query = None;
             method_ = Some "delta";
             window =
               Some
                 ( Temporal.Interval.ts d.Subscription.window,
                   Temporal.Interval.te d.Subscription.window );
             outcome = Obs.Qlog.Completed;
             duration_ms = d.Subscription.elapsed_ms;
             stats =
               [
                 ("added", List.length d.Subscription.added);
                 ("retracted", List.length d.Subscription.retracted);
                 ("total", d.Subscription.total);
               ];
             levels = [];
             misestimation = None;
             plan_source = None;
           })

(* ---- request execution (worker domain) ---- *)

let execute t engine send ~obs ~fingerprint (qr : Protocol.query_request) eq
    ds =
  let cfg = t.config in
  (* a COUNT aggregate is exactly the wire protocol's count_only mode:
     report the piece count, ship no matches *)
  let count_only =
    qr.Protocol.count_only || Equery.agg eq = Some Equery.Count
  in
  let limits =
    {
      Run_stats.max_results =
        Option.value qr.Protocol.max_results ~default:cfg.default_max_results;
      max_intermediate =
        Option.value qr.Protocol.max_intermediate
          ~default:cfg.default_max_intermediate;
    }
  in
  let deadline_ms =
    match qr.Protocol.deadline_ms with
    | Some ms -> Some ms
    | None -> cfg.default_deadline_ms
  in
  let deadline =
    Option.map
      (fun ms ->
        {
          Run_stats.expires_at = Unix.gettimeofday () +. (ms /. 1000.0);
          now = Unix.gettimeofday;
        })
      deadline_ms
  in
  let stats = Run_stats.create ~limits ?deadline () in
  let limit = Option.value qr.Protocol.limit ~default:cfg.default_limit in
  let kept = ref [] in
  let n_kept = ref 0 in
  let total = ref 0 in
  let emit m =
    incr total;
    if (not count_only) && !n_kept < limit then begin
      incr n_kept;
      kept := m :: !kept
    end
  in
  let t0 = Unix.gettimeofday () in
  (* fan out only onto workers idle right now (plus this one): small
     queries and loaded pools keep single-domain latency, and helpers
     admitted by [submit_if_idle] never wait behind queued requests *)
  let fanout =
    if cfg.domains <= 1 then 1
    else min cfg.domains (1 + Exec.Pool.idle_workers t.pool)
  in
  let plan_source = ref None in
  let outcome =
    if Analysis.Diagnostic.proves_empty ds then Ok None
    else
      match
        Obs.Sink.span obs Obs.Phase.Execute (fun () ->
            Workload.Engine.run_ext ~stats ~obs ~pool:t.pool ~domains:fanout
              ?plan_cache:t.plan_cache ~plan_source engine
              qr.Protocol.method_ eq ~emit)
      with
      | () -> Ok None
      | exception Run_stats.Limit_exceeded _ -> Ok (Some Protocol.Budget)
      | exception Run_stats.Deadline_exceeded -> Ok (Some Protocol.Deadline)
      | exception e -> Error (Printexc.to_string e)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let w = Query.window (Equery.core eq) in
  let window = (Temporal.Interval.ts w, Temporal.Interval.te w) in
  let qlog_common outcome =
    log_query t ~outcome
      ~duration_ms:(elapsed *. 1000.0)
      ?id:qr.Protocol.id ~fingerprint ~query:qr.Protocol.text
      ~method_:qr.Protocol.method_ ~window ~stats ?plan_source:!plan_source ()
  in
  match outcome with
  | Ok truncated ->
      let metric_outcome, qlog_outcome =
        match truncated with
        | None -> (Metrics.Completed, Obs.Qlog.Completed)
        | Some Protocol.Budget ->
            (Metrics.Truncated_budget, Obs.Qlog.Truncated_budget)
        | Some Protocol.Deadline ->
            (Metrics.Truncated_deadline, Obs.Qlog.Truncated_deadline)
      in
      let _, misestimation = levels_of_stats stats in
      Metrics.record_query t.metrics ~slow:(is_slow t elapsed) ~fingerprint
        ?misestimation ?plan_source:!plan_source ~method_:qr.Protocol.method_
        ~outcome:metric_outcome ~stats ~seconds:elapsed;
      qlog_common qlog_outcome;
      Obs.Sink.span obs Obs.Phase.Respond (fun () ->
          send
            (Protocol.result_response ?id:qr.Protocol.id
               ~graph:(Workload.Engine.graph engine)
               ~truncated ~count:!total ~matches:(List.rev !kept) ~stats
               ~elapsed_ms:(elapsed *. 1000.0) ()))
  | Error msg ->
      Metrics.record_internal_error t.metrics;
      qlog_common Obs.Qlog.Internal_error;
      Obs.Sink.span obs Obs.Phase.Respond (fun () ->
          send (Protocol.error_response ?id:qr.Protocol.id ~kind:"internal" msg))

(* ---- request dispatch (connection thread) ---- *)

let handle_query t send (qr : Protocol.query_request) =
  let obs, seq = request_sink t in
  let req_t0 = Obs.Sink.now obs in
  let wall_t0 = Unix.gettimeofday () in
  let finish () = finish_request t obs ~req_t0 ~seq in
  let reject_ms () = (Unix.gettimeofday () -. wall_t0) *. 1000.0 in
  let engine = Atomic.get t.engine in
  let g = Workload.Engine.graph engine in
  match
    Obs.Sink.span obs Obs.Phase.Parse (fun () ->
        Qlang.parse_and_compile_ext g qr.Protocol.text)
  with
  | Error msg ->
      Metrics.record_rejected t.metrics;
      log_query t ~outcome:Obs.Qlog.Rejected_query
        ~duration_ms:(reject_ms ()) ?id:qr.Protocol.id ~query:qr.Protocol.text
        ~method_:qr.Protocol.method_ ();
      send (Protocol.error_response ?id:qr.Protocol.id ~kind:"query" msg);
      finish ()
  | Ok eq ->
      (* the query-shape grouping key of the log and the hot list; the
         raw (pre-tightening) shape so equal requests group together *)
      let fingerprint = Fingerprint.of_equery eq in
      let ds =
        Obs.Sink.span obs Obs.Phase.Lint (fun () ->
            Workload.Engine.analyze_ext engine qr.Protocol.method_ eq)
      in
      if Analysis.Diagnostic.has_errors ds then begin
        Metrics.record_rejected t.metrics;
        log_query t ~outcome:Obs.Qlog.Rejected_lint ~duration_ms:(reject_ms ())
          ?id:qr.Protocol.id ~fingerprint ~query:qr.Protocol.text
          ~method_:qr.Protocol.method_ ();
        send
          (Protocol.error_response ?id:qr.Protocol.id ~kind:"lint"
             ~diagnostics:ds "query rejected by static analysis");
        finish ()
      end
      else begin
        (* the analyzer's tightened window is result-preserving, so the
           admitted job executes it in place of the raw query *)
        let eq = Workload.Engine.tighten_ext engine eq in
        (* the admit span measures queue wait: opened at submission,
           closed when a worker picks the request up *)
        let admit_t0 = Obs.Sink.now obs in
        let job () =
          Obs.Sink.record_span obs Obs.Phase.Admit ~t0:admit_t0;
          execute t engine send ~obs ~fingerprint qr eq ds;
          finish ()
        in
        if not (Exec.Pool.submit t.pool job) then begin
          Metrics.record_overloaded t.metrics;
          Obs.Sink.record_span obs Obs.Phase.Admit ~t0:admit_t0;
          log_query t ~outcome:Obs.Qlog.Overloaded ~duration_ms:(reject_ms ())
            ?id:qr.Protocol.id ~fingerprint ~query:qr.Protocol.text
            ~method_:qr.Protocol.method_ ();
          send
            (Protocol.overloaded_response ?id:qr.Protocol.id
               ~queue_depth:(Exec.Pool.depth t.pool) ());
          finish ()
        end
      end

(* ---- streaming ingest (connection thread) ----

   Appends a batch of edges through [Tcsq_core.Incremental] — one
   buffered [Tai.merge] per batch, which re-sorts nothing and recomputes
   ECI coverage only for the touched (label, endpoint) groups — then
   swaps in a fresh engine around the maintained TAI
   ([Engine.prepare_with_tai]: no index rebuilds; adjacency and STI-CP
   are rebuilt lazily iff a later request uses those methods) and
   invalidates the plan cache (plans and estimates are functions of
   graph statistics that just changed). Labels not yet interned are
   interned here: the label table is shared and append-only, so queries
   compiled against the old graph stay valid. In-flight queries finish
   on the engine they captured at admission.

   Standing-query deltas are pushed *before* the ingest response is
   written, so a client that subscribes and ingests on one connection
   has every delta of a batch on the wire once it reads the batch's
   ingest ack. *)
let handle_ingest t send (ir : Protocol.ingest_request) =
  Mutex.lock t.ingest_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.ingest_mutex) @@ fun () ->
  (* validate the whole batch before touching any state so a bad edge
     rejects the batch atomically, never half-applied *)
  let invalid =
    List.find_map
      (fun (e : Protocol.ingest_edge) ->
        if e.Protocol.src < 0 || e.Protocol.dst < 0 then
          Some
            (Printf.sprintf "negative vertex id on edge %d->%d" e.Protocol.src
               e.Protocol.dst)
        else if e.Protocol.te < e.Protocol.ts then
          Some
            (Printf.sprintf "te < ts on edge %d->%d" e.Protocol.src
               e.Protocol.dst)
        else None)
      ir.Protocol.edges
  in
  match invalid with
  | Some msg ->
      send
        (Protocol.error_response ?id:ir.Protocol.ingest_id ~kind:"ingest" msg)
  | None ->
      let labels =
        Tgraph.Graph.labels (Tcsq_core.Incremental.graph t.inc)
      in
      List.iter
        (fun (e : Protocol.ingest_edge) ->
          let lbl = Tgraph.Label.intern labels e.Protocol.label in
          ignore
            (Tcsq_core.Incremental.add_edge t.inc ~src:e.Protocol.src
               ~dst:e.Protocol.dst ~lbl ~ts:e.Protocol.ts ~te:e.Protocol.te))
        ir.Protocol.edges;
      let g' = Tcsq_core.Incremental.graph t.inc in
      let engine' =
        Workload.Engine.prepare_with_tai g' (Tcsq_core.Incremental.tai t.inc)
      in
      Atomic.set t.engine engine';
      let invalidated =
        match t.plan_cache with
        | None -> 0
        | Some cache ->
            let before =
              (Workload.Plan_cache.counters cache)
                .Workload.Plan_cache.invalidations
            in
            Workload.Plan_cache.bump_generation cache;
            (Workload.Plan_cache.counters cache)
              .Workload.Plan_cache.invalidations - before
      in
      let generation =
        match t.plan_cache with
        | Some cache -> Workload.Plan_cache.generation cache
        | None -> 0
      in
      Subscription.on_ingest t.subs ~engine:engine' ~generation;
      send
        (Protocol.ingest_response ?id:ir.Protocol.ingest_id
           ~appended:(List.length ir.Protocol.edges)
           ~n_edges:(Tgraph.Graph.n_edges g')
           ~generation ~invalidated ())

(* ---- standing queries (connection thread) ---- *)

let handle_subscribe t send conn (sr : Protocol.subscribe_request) =
  let engine0 = Atomic.get t.engine in
  let g0 = Workload.Engine.graph engine0 in
  match Qlang.parse_and_compile_ext g0 sr.Protocol.subscribe_text with
  | Error msg ->
      Metrics.record_rejected t.metrics;
      send
        (Protocol.error_response ?id:sr.Protocol.subscribe_id ~kind:"query"
           msg)
  | Ok eq ->
      let ds = Workload.Engine.analyze_ext engine0 Workload.Engine.Tsrjoin eq in
      if Analysis.Diagnostic.has_errors ds then begin
        Metrics.record_rejected t.metrics;
        send
          (Protocol.error_response ?id:sr.Protocol.subscribe_id ~kind:"lint"
             ~diagnostics:ds "query rejected by static analysis")
      end
      else begin
        let fingerprint = Fingerprint.of_equery eq in
        (* runs inside [Subscription.on_ingest], i.e. under the ingest
           mutex with the freshly swapped engine installed — so the
           graph read here is the one the delta's edge ids refer to *)
        let push (d : Subscription.delta) =
          let g = Workload.Engine.graph (Atomic.get t.engine) in
          send
            (Protocol.delta_notification ?tag:d.Subscription.tag
               ~sub:d.Subscription.sub ~generation:d.Subscription.generation
               ~graph:g ~window:d.Subscription.window
               ~added:d.Subscription.added
               ~retracted:d.Subscription.retracted ~total:d.Subscription.total
               ~elapsed_ms:d.Subscription.elapsed_ms ());
          Metrics.record_delta t.metrics
            ~seconds:(d.Subscription.elapsed_ms /. 1000.0);
          log_delta t ~fingerprint d
        in
        (* under the ingest mutex: the initial evaluation and the
           registration are atomic w.r.t. concurrent batches, so the
           snapshot + accumulated deltas always equal a fresh re-query *)
        Mutex.lock t.ingest_mutex;
        Fun.protect ~finally:(fun () -> Mutex.unlock t.ingest_mutex)
        @@ fun () ->
        let engine = Atomic.get t.engine in
        let sub, window, initial =
          Subscription.subscribe t.subs ~engine ~conn
            ?tag:sr.Protocol.subscribe_id ?window_width:sr.Protocol.window_width
            ~push eq
        in
        Metrics.set_subscriptions t.metrics (Subscription.active t.subs);
        send
          (Protocol.subscribe_response ?id:sr.Protocol.subscribe_id ~sub
             ~graph:(Workload.Engine.graph engine)
             ~window ~matches:initial ())
      end

let handle_unsubscribe t send (ur : Protocol.unsubscribe_request) =
  Mutex.lock t.ingest_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.ingest_mutex) @@ fun () ->
  let removed = Subscription.unsubscribe t.subs ur.Protocol.sub in
  Metrics.set_subscriptions t.metrics (Subscription.active t.subs);
  send
    (Protocol.unsubscribe_response ?id:ur.Protocol.unsubscribe_id
       ~sub:ur.Protocol.sub ~removed ())

let handle_request t ~conn send line =
  match Protocol.parse_request line with
  | Error msg ->
      Metrics.record_parse_error t.metrics;
      log_query t ~outcome:Obs.Qlog.Rejected_query ~duration_ms:0.0
        ~query:line ();
      send (Protocol.error_response ~kind:"parse" msg)
  | Ok (Protocol.Ping id) -> send (Protocol.pong_response ?id ())
  | Ok (Protocol.Ingest ir) -> handle_ingest t send ir
  | Ok (Protocol.Subscribe sr) -> handle_subscribe t send conn sr
  | Ok (Protocol.Unsubscribe ur) -> handle_unsubscribe t send ur
  | Ok (Protocol.Metrics id) ->
      send
        (Protocol.metrics_response ?id
           (Metrics.snapshot_json ?plan_cache:t.plan_cache t.metrics
              ~queue_depth:(Exec.Pool.depth t.pool)
              ~pool_dropped:(Exec.Pool.dropped_exceptions t.pool)))
  | Ok (Protocol.Metrics_prom id) ->
      send
        (Protocol.metrics_prom_response ?id
           (Metrics.prometheus ?plan_cache:t.plan_cache t.metrics
              ~queue_depth:(Exec.Pool.depth t.pool)
              ~pool_dropped:(Exec.Pool.dropped_exceptions t.pool)))
  | Ok (Protocol.Shutdown id) ->
      send (Protocol.shutdown_response ?id ());
      request_stop t
  | Ok (Protocol.Query qr) -> handle_query t send qr

let unregister t fd =
  Mutex.lock t.state_mutex;
  t.conns <- List.filter (fun fd' -> fd' <> fd) t.conns;
  Mutex.unlock t.state_mutex

let handle_conn t fd =
  (* workers answer out of order, so every response line is written
     under this lock; a vanished client just drops the write *)
  let wlock = Mutex.create () in
  let send line =
    Mutex.lock wlock;
    (try Wire.write_line fd line
     with Unix.Unix_error _ | Sys_error _ -> ());
    Mutex.unlock wlock
  in
  let reader = Wire.reader fd in
  let rec loop () =
    match Wire.read_line reader with
    | None -> ()
    | Some line ->
        let line = String.trim line in
        if line <> "" then handle_request t ~conn:fd send line;
        loop ()
  in
  (try loop () with _ -> ());
  unregister t fd;
  (* a vanished subscriber takes its standing queries with it *)
  if Subscription.drop_conn t.subs fd > 0 then
    Metrics.set_subscriptions t.metrics (Subscription.active t.subs);
  (try Unix.close fd with Unix.Unix_error _ -> ())

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listener with
    | fd, _ ->
        Mutex.lock t.state_mutex;
        if t.stopping then begin
          Mutex.unlock t.state_mutex;
          (try Unix.close fd with Unix.Unix_error _ -> ())
        end
        else begin
          t.conns <- fd :: t.conns;
          let thread = Thread.create (fun () -> handle_conn t fd) () in
          t.threads <- thread :: t.threads;
          Mutex.unlock t.state_mutex;
          loop ()
        end
    | exception Unix.Unix_error _ -> if not (is_stopping t) then loop ()
  in
  loop ()

(* ---- lifecycle ---- *)

let start config engine =
  if config.workers < 1 then invalid_arg "Server.start: need >= 1 worker";
  (* a worker writing to a client that already hung up must not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists config.socket_path then
    (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  (match config.trace_dir with
  | Some dir -> (
      try Unix.mkdir dir 0o755
      with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      | Unix.Unix_error _ -> ())
  | None -> ());
  let qlog =
    match config.query_log with
    | None -> None
    | Some path -> (
        let slow_ms = Option.value config.slow_ms ~default:infinity in
        match Obs.Qlog.create ~slow_ms ~sample:config.qlog_sample path with
        | Ok q -> Some q
        | Error msg ->
            invalid_arg
              (Printf.sprintf "Server.start: cannot open query log %s: %s"
                 path msg))
  in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listener (Unix.ADDR_UNIX config.socket_path);
     Unix.listen listener 64
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     (match qlog with Some q -> Obs.Qlog.close q | None -> ());
     raise e);
  if config.plan_cache_size < 0 then
    invalid_arg "Server.start: negative plan_cache_size";
  let t =
    {
      config;
      engine = Atomic.make engine;
      plan_cache =
        (if config.plan_cache_size = 0 then None
         else
           Some
             (Workload.Plan_cache.create ~capacity:config.plan_cache_size
                ~replan_threshold:config.plan_cache_replan_threshold ()));
      inc =
        Tcsq_core.Incremental.of_tai
          (Workload.Engine.graph engine)
          (Workload.Engine.tai engine);
      subs = Subscription.create ();
      ingest_mutex = Mutex.create ();
      qlog;
      pool =
        Exec.Pool.create ~workers:config.workers
          ~max_depth:config.queue_depth;
      metrics = Metrics.create ();
      listener;
      state_mutex = Mutex.create ();
      stop_requested = Condition.create ();
      stopping = false;
      finished = false;
      conns = [];
      threads = [];
      accept_domain = None;
      req_seq = Atomic.make 0;
    }
  in
  t.accept_domain <- Some (Domain.spawn (accept_loop t));
  t

let finish t =
  Mutex.lock t.state_mutex;
  let already = t.finished in
  t.finished <- true;
  Mutex.unlock t.state_mutex;
  if not already then begin
    (match t.accept_domain with
    | Some d ->
        Domain.join d;
        t.accept_domain <- None
    | None -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (* drain accepted work so every admitted request gets its response *)
    Exec.Pool.shutdown t.pool;
    (* then wake connection readers still blocked on open sockets *)
    Mutex.lock t.state_mutex;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.conns;
    let threads = t.threads in
    Mutex.unlock t.state_mutex;
    List.iter Thread.join threads;
    (match t.qlog with Some q -> Obs.Qlog.close q | None -> ());
    (try Unix.unlink t.config.socket_path with Unix.Unix_error _ -> ())
  end

(* Blocks until a shutdown request arrives (protocol or [request_stop]),
   then tears everything down. *)
let wait t =
  Mutex.lock t.state_mutex;
  while not t.stopping do
    Condition.wait t.stop_requested t.state_mutex
  done;
  Mutex.unlock t.state_mutex;
  finish t

(* Immediate shutdown from the owning thread. *)
let stop t =
  request_stop t;
  finish t
