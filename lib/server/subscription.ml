(* Standing-query registry: the server-side half of subscribe/watch.

   Each subscription holds an extended query, a window mode, and the
   current result set. After every ingest batch [on_ingest] re-derives
   each subscription's window (sliding windows track the stream head),
   re-evaluates against the freshly swapped engine, and pushes the
   *delta* — new matches plus retractions — through the subscription's
   [push] callback. The invariant tests and the ingest-commutativity
   relation lean on is:

     initial \/ (all added) \ (all retracted) = fresh re-query

   at every batch boundary, which holds by construction because each
   step replaces the current set with the fresh evaluation and reports
   the symmetric difference.

   Plain subscriptions (no anti/semi/Allen/agg) that share a core
   pattern are grouped and evaluated through [Multi_window] — one hull
   pass over the TAI serves every window in the group, so N subscribers
   on the same shape cost ~1 evaluation per batch (the fan-out shape of
   ROADMAP item 1). Decorated queries fall back to [Engine.evaluate_ext]
   per subscription.

   Thread-safety: the subs list is guarded by [reg_mutex] so subscribe/
   unsubscribe/drop_conn may run from any connection thread. Per-sub
   mutable state ([window], [current]) is only touched by [subscribe]
   (before the sub is published) and [on_ingest]; the server serializes
   all three entry points under its ingest mutex, which is also what
   makes the delta-vs-fresh-re-query oracle exact. *)

open Semantics

module MSet = Set.Make (struct
  type t = Match_result.t

  let compare = Match_result.compare
end)

type mode = Fixed | Sliding of int

type delta = {
  sub : int;
  tag : string option;
  window : Temporal.Interval.t;
  added : Match_result.t list;
  retracted : Match_result.t list;
  total : int; (* standing-set size after this delta *)
  generation : int;
  elapsed_ms : float;
}

type sub = {
  id : int;
  tag : string option;
  eq : Equery.t;
  mode : mode;
  conn : Unix.file_descr option;
  push : delta -> unit;
  mutable window : Temporal.Interval.t;
  mutable current : MSet.t;
}

type t = {
  reg_mutex : Mutex.t;
  mutable subs : sub list; (* newest first *)
  mutable next_id : int;
}

let create () = { reg_mutex = Mutex.create (); subs = []; next_id = 0 }

let active t =
  Mutex.lock t.reg_mutex;
  let n = List.length t.subs in
  Mutex.unlock t.reg_mutex;
  n

(* the stream head: sliding windows end at the newest edge end seen *)
let stream_head g =
  if Tgraph.Graph.n_edges g = 0 then 0
  else Temporal.Interval.te (Tgraph.Graph.time_domain g)

let window_for mode ~fallback g =
  match mode with
  | Fixed -> fallback
  | Sliding width ->
      let hi = stream_head g in
      Temporal.Interval.make (hi - width + 1) hi

let evaluate_at engine eq w =
  Workload.Engine.evaluate_ext engine Workload.Engine.Tsrjoin
    (Equery.with_window eq w)

let subscribe t ~engine ?conn ?tag ?window_width ~push eq =
  let mode =
    match window_width with None -> Fixed | Some w -> Sliding w
  in
  let g = Workload.Engine.graph engine in
  let window =
    window_for mode ~fallback:(Query.window (Equery.core eq)) g
  in
  let initial = evaluate_at engine eq window in
  Mutex.lock t.reg_mutex;
  let id = t.next_id in
  t.next_id <- id + 1;
  t.subs <-
    { id; tag; eq; mode; conn; push; window; current = MSet.of_list initial }
    :: t.subs;
  Mutex.unlock t.reg_mutex;
  (id, window, initial)

let unsubscribe t id =
  Mutex.lock t.reg_mutex;
  let before = List.length t.subs in
  t.subs <- List.filter (fun s -> s.id <> id) t.subs;
  let removed = List.length t.subs < before in
  Mutex.unlock t.reg_mutex;
  removed

let drop_conn t fd =
  Mutex.lock t.reg_mutex;
  let before = List.length t.subs in
  t.subs <- List.filter (fun s -> s.conn <> Some fd) t.subs;
  let dropped = before - List.length t.subs in
  Mutex.unlock t.reg_mutex;
  dropped

(* one refreshed sub: diff the fresh set against the standing one *)
let refresh ~generation ~t0 s window fresh =
  let next = MSet.of_list fresh in
  let added = MSet.elements (MSet.diff next s.current) in
  let retracted = MSet.elements (MSet.diff s.current next) in
  s.window <- window;
  s.current <- next;
  s.push
    {
      sub = s.id;
      tag = s.tag;
      window;
      added;
      retracted;
      total = MSet.cardinal next;
      generation;
      elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
    }

let on_ingest t ~engine ~generation =
  Mutex.lock t.reg_mutex;
  (* oldest first, so notification order follows subscription order *)
  let subs = List.rev t.subs in
  Mutex.unlock t.reg_mutex;
  if subs <> [] then begin
    let g = Workload.Engine.graph engine in
    let plain, decorated =
      List.partition (fun s -> Equery.is_plain s.eq) subs
    in
    (* group plain subs by core pattern modulo window: one Multi_window
       hull pass per group answers every subscriber's window at once *)
    let groups : (string, sub list) Hashtbl.t = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun s ->
        let probe = Temporal.Interval.make 0 0 in
        let key =
          Qlang.render g (Query.with_window (Equery.core s.eq) probe)
        in
        (match Hashtbl.find_opt groups key with
        | None ->
            order := key :: !order;
            Hashtbl.add groups key [ s ]
        | Some ss -> Hashtbl.replace groups key (s :: ss)))
      plain;
    List.iter
      (fun key ->
        let members = List.rev (Hashtbl.find groups key) in
        let t0 = Unix.gettimeofday () in
        let windows =
          List.map (fun s -> window_for s.mode ~fallback:s.window g) members
        in
        let core = Equery.core (List.hd members).eq in
        let per_window =
          Tcsq_core.Multi_window.evaluate
            (Workload.Engine.tai engine)
            core ~windows
        in
        List.iteri
          (fun i s ->
            refresh ~generation ~t0 s (List.nth windows i) per_window.(i))
          members)
      (List.rev !order);
    List.iter
      (fun s ->
        let t0 = Unix.gettimeofday () in
        let window = window_for s.mode ~fallback:s.window g in
        refresh ~generation ~t0 s window (evaluate_at engine s.eq window))
      decorated
  end
