(* Newline-delimited framing over a file descriptor, shared by the
   server's connection handlers and the client. *)

type reader = {
  fd : Unix.file_descr;
  chunk : bytes;
  lines : string Queue.t;
  partial : Buffer.t;
  mutable eof : bool;
}

let reader fd =
  { fd; chunk = Bytes.create 8192; lines = Queue.create ();
    partial = Buffer.create 256; eof = false }

(* Blocking read of the next line (newline stripped). [None] on EOF; a
   final unterminated line is returned before EOF is reported. A reset
   peer counts as EOF rather than an error. *)
let rec read_line r =
  if not (Queue.is_empty r.lines) then Some (Queue.pop r.lines)
  else if r.eof then
    if Buffer.length r.partial > 0 then begin
      let s = Buffer.contents r.partial in
      Buffer.clear r.partial;
      Some s
    end
    else None
  else begin
    let n =
      try Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
          0
    in
    if n = 0 then r.eof <- true
    else
      for i = 0 to n - 1 do
        let c = Bytes.get r.chunk i in
        if c = '\n' then begin
          Queue.push (Buffer.contents r.partial) r.lines;
          Buffer.clear r.partial
        end
        else Buffer.add_char r.partial c
      done;
    read_line r
  end

let write_line fd line =
  let data = line ^ "\n" in
  let len = String.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd data !off (len - !off)
  done
