type t = Span_item.t Vec.t

let create () = Vec.create ()
let length = Vec.length
let is_empty = Vec.is_empty
let insert a item = Vec.insert_sorted ~cmp:Span_item.compare_by_end a item
let expire a t = Vec.remove_prefix (fun it -> Span_item.te it < t) a
let iter = Vec.iter
let get = Vec.get
let to_list = Vec.to_list
let clear = Vec.clear
let min_end a = if Vec.is_empty a then None else Some (Span_item.te (Vec.get a 0))
