(** An active list for plane-sweep algorithms: the set of intervals alive
    at the sweep position, kept sorted by end time so that expiration is
    a prefix removal.

    This is the [Active[i]] structure of LFTO (Algorithm 1) and of the
    STI-CP clique production. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val insert : t -> Span_item.t -> unit
(** The paper's [insActive]: insert keeping end-time order. *)

val expire : t -> int -> int
(** [expire a t] is the paper's [delActive]: removes every item with
    end time strictly before [t]; returns how many were removed. *)

val iter : (Span_item.t -> unit) -> t -> unit
(** Iterates in end-time ascending order. *)

val get : t -> int -> Span_item.t
val to_list : t -> Span_item.t list
val clear : t -> unit

val min_end : t -> int option
(** End time of the earliest-expiring item. *)
