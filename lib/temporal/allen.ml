type relation =
  | Before
  | Meets
  | Overlaps
  | Starts
  | During
  | Finishes
  | Equal
  | Finished_by
  | Contains
  | Started_by
  | Overlapped_by
  | Met_by
  | After

let all =
  [|
    Before; Meets; Overlaps; Starts; During; Finishes; Equal; Finished_by;
    Contains; Started_by; Overlapped_by; Met_by; After;
  |]

let classify a b =
  let sa = Interval.ts a and ea = Interval.te a in
  let sb = Interval.ts b and eb = Interval.te b in
  if ea + 1 < sb then Before
  else if ea + 1 = sb then Meets
  else if eb + 1 < sa then After
  else if eb + 1 = sa then Met_by
  else if sa = sb && ea = eb then Equal
  else if sa = sb then if ea < eb then Starts else Started_by
  else if ea = eb then if sa > sb then Finishes else Finished_by
  else if sa > sb && ea < eb then During
  else if sa < sb && ea > eb then Contains
  else if sa < sb then Overlaps
  else Overlapped_by

let inverse = function
  | Before -> After
  | Meets -> Met_by
  | Overlaps -> Overlapped_by
  | Starts -> Started_by
  | During -> Contains
  | Finishes -> Finished_by
  | Equal -> Equal
  | Finished_by -> Finishes
  | Contains -> During
  | Started_by -> Starts
  | Overlapped_by -> Overlaps
  | Met_by -> Meets
  | After -> Before

let overlaps_in_time = function
  | Before | Meets | Met_by | After -> false
  | Overlaps | Starts | During | Finishes | Equal | Finished_by | Contains
  | Started_by | Overlapped_by ->
      true

let to_string = function
  | Before -> "before"
  | Meets -> "meets"
  | Overlaps -> "overlaps"
  | Starts -> "starts"
  | During -> "during"
  | Finishes -> "finishes"
  | Equal -> "equal"
  | Finished_by -> "finished-by"
  | Contains -> "contains"
  | Started_by -> "started-by"
  | Overlapped_by -> "overlapped-by"
  | Met_by -> "met-by"
  | After -> "after"
