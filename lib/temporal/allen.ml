type relation =
  | Before
  | Meets
  | Overlaps
  | Starts
  | During
  | Finishes
  | Equal
  | Finished_by
  | Contains
  | Started_by
  | Overlapped_by
  | Met_by
  | After

let all =
  [|
    Before; Meets; Overlaps; Starts; During; Finishes; Equal; Finished_by;
    Contains; Started_by; Overlapped_by; Met_by; After;
  |]

let classify a b =
  let sa = Interval.ts a and ea = Interval.te a in
  let sb = Interval.ts b and eb = Interval.te b in
  if ea + 1 < sb then Before
  else if ea + 1 = sb then Meets
  else if eb + 1 < sa then After
  else if eb + 1 = sa then Met_by
  else if sa = sb && ea = eb then Equal
  else if sa = sb then if ea < eb then Starts else Started_by
  else if ea = eb then if sa > sb then Finishes else Finished_by
  else if sa > sb && ea < eb then During
  else if sa < sb && ea > eb then Contains
  else if sa < sb then Overlaps
  else Overlapped_by

let inverse = function
  | Before -> After
  | Meets -> Met_by
  | Overlaps -> Overlapped_by
  | Starts -> Started_by
  | During -> Contains
  | Finishes -> Finished_by
  | Equal -> Equal
  | Finished_by -> Finishes
  | Contains -> During
  | Started_by -> Starts
  | Overlapped_by -> Overlaps
  | Met_by -> Meets
  | After -> Before

(* Dual under time reversal t -> -t: reversal swaps start/end roles, so
   ordering relations flip while symmetric-shape ones stay put. Unlike
   [inverse], Starts pairs with Finishes and During stays fixed:
   classify (rev a) (rev b) = reverse (classify a b). *)
let reverse = function
  | Before -> After
  | Meets -> Met_by
  | Overlaps -> Overlapped_by
  | Starts -> Finishes
  | During -> During
  | Finishes -> Starts
  | Equal -> Equal
  | Finished_by -> Started_by
  | Contains -> Contains
  | Started_by -> Finished_by
  | Overlapped_by -> Overlaps
  | Met_by -> Meets
  | After -> Before

let overlaps_in_time = function
  | Before | Meets | Met_by | After -> false
  | Overlaps | Starts | During | Finishes | Equal | Finished_by | Contains
  | Started_by | Overlapped_by ->
      true

let to_string = function
  | Before -> "before"
  | Meets -> "meets"
  | Overlaps -> "overlaps"
  | Starts -> "starts"
  | During -> "during"
  | Finishes -> "finishes"
  | Equal -> "equal"
  | Finished_by -> "finished-by"
  | Contains -> "contains"
  | Started_by -> "started-by"
  | Overlapped_by -> "overlapped-by"
  | Met_by -> "met-by"
  | After -> "after"

let of_string s =
  let s = String.lowercase_ascii s in
  let s = String.map (fun c -> if c = '_' then '-' else c) s in
  let rec find i =
    if i >= Array.length all then None
    else if to_string all.(i) = s then Some all.(i)
    else find (i + 1)
  in
  find 0
