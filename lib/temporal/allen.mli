(** Allen's interval algebra over closed integer intervals.

    For any two intervals exactly one of the thirteen basic relations
    holds; {!classify} computes it. Useful for reasoning about and
    testing temporal predicates: joint overlap — the predicate of
    temporal-clique queries — is exactly "not (before / after / meets /
    met-by)" for integer intervals, see {!overlaps_in_time}. *)

type relation =
  | Before  (** a ends strictly before b starts, with a gap *)
  | Meets  (** a ends exactly one tick before b starts *)
  | Overlaps  (** proper overlap: a starts first, ends inside b *)
  | Starts  (** same start, a ends first *)
  | During  (** a strictly inside b *)
  | Finishes  (** same end, a starts later *)
  | Equal
  | Finished_by  (** inverse of [Finishes] *)
  | Contains  (** inverse of [During] *)
  | Started_by  (** inverse of [Starts] *)
  | Overlapped_by  (** inverse of [Overlaps] *)
  | Met_by  (** inverse of [Meets] *)
  | After  (** inverse of [Before] *)

val classify : Interval.t -> Interval.t -> relation
(** [classify a b] is the unique basic relation with [a relation b]. *)

val inverse : relation -> relation
(** [classify b a = inverse (classify a b)]. *)

val reverse : relation -> relation
(** Dual under time reversal [t -> -t]: if [rev] maps an interval
    [[s, e]] to [[-e, -s]] then
    [classify (rev a) (rev b) = reverse (classify a b)].
    Not the same map as {!inverse}: [Starts] pairs with [Finishes] and
    [During] / [Contains] / [Equal] are fixed points. *)

val overlaps_in_time : relation -> bool
(** Whether the relation implies a shared timestamp (everything except
    [Before], [Meets], [Met_by], [After]). Agrees with
    {!Interval.overlaps}. *)

val to_string : relation -> string

val of_string : string -> relation option
(** Case-insensitive; accepts both dash and underscore spellings
    ("finished-by", "FINISHED_BY"). *)

val all : relation array
