(* Group boundaries: [group_end rel i] is the first index past the run of
   items sharing start time with item [i]. *)
let group_end rel i =
  let n = Relation.length rel in
  let t = Span_item.ts (Relation.get rel i) in
  let j = ref (i + 1) in
  while !j < n && Span_item.ts (Relation.get rel !j) = t do incr j done;
  !j

let join left right ~f =
  let count = ref 0 in
  let nl = Relation.length left and nr = Relation.length right in
  let il = ref 0 and ir = ref 0 in
  let scan_group ~group_rel ~group_from ~group_to ~other_rel ~other_from ~n_other
      ~emit =
    (* the farthest-reaching member bounds the shared forward scan *)
    let max_end = ref min_int in
    for g = group_from to group_to - 1 do
      max_end := max !max_end (Span_item.te (Relation.get group_rel g))
    done;
    let k = ref other_from in
    while
      !k < n_other && Span_item.ts (Relation.get other_rel !k) <= !max_end
    do
      let partner = Relation.get other_rel !k in
      for g = group_from to group_to - 1 do
        let member = Relation.get group_rel g in
        if Interval.overlaps (Span_item.ivl member) (Span_item.ivl partner)
        then begin
          incr count;
          emit member partner
        end
      done;
      incr k
    done
  in
  while !il < nl && !ir < nr do
    let a = Relation.get left !il and b = Relation.get right !ir in
    if Span_item.ts a <= Span_item.ts b then begin
      (* left group first on ties: its shared scan starts at the right
         cursor, which still points at the tied right group, so tie
         pairs are emitted exactly once (the right group then scans left
         from beyond this group) *)
      let stop = group_end left !il in
      scan_group ~group_rel:left ~group_from:!il ~group_to:stop
        ~other_rel:right ~other_from:!ir ~n_other:nr ~emit:f;
      il := stop
    end
    else begin
      let stop = group_end right !ir in
      scan_group ~group_rel:right ~group_from:!ir ~group_to:stop
        ~other_rel:left ~other_from:!il ~n_other:nl
        ~emit:(fun b a -> f a b);
      ir := stop
    end
  done;
  !count

let count left right = join left right ~f:(fun _ _ -> ())
