(** Grouped forward-scan interval join (the bgFS variant of Bouros &
    Mamoulis).

    Like {!Forward_scan}, but consecutive tuples sharing a start time
    are processed as one group: the forward scan over the other relation
    runs once per group up to the group's maximal end, and each scanned
    partner is paired with every group member it overlaps. Cuts repeated
    scanning on relations with many simultaneous starts.

    Enumerates exactly the pairs of {!Sweep_join.join}. *)

val join :
  Relation.t -> Relation.t -> f:(Span_item.t -> Span_item.t -> unit) -> int

val count : Relation.t -> Relation.t -> int
