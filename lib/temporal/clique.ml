type outcome = Complete of int | Truncated of int

exception Limit_reached

(* Plane sweep in merged start-time order, exactly as LFTO (Algorithm 1 of
   the paper) but over globally label-filtered relations instead of
   vertex-bound TSRs. When item [e] of relation [i] arrives at time
   t = ts(e), every surviving active member contains t, so any combination
   of one member per relation jointly overlaps at t. *)
let enumerate stis ~ws ~we ?(limit = max_int) ~f () =
  let k = Array.length stis in
  if k = 0 then Complete 0
  else begin
    let cur = Array.make k 0 and stop = Array.make k 0 in
    Array.iteri
      (fun i sti ->
        let s, e = Sti.scan_range sti ~ws ~we in
        cur.(i) <- s;
        stop.(i) <- e)
      stis;
    let active = Array.init k (fun _ -> Active_list.create ()) in
    let members = Array.make k (Span_item.make 0 (Interval.point 0)) in
    let produced = ref 0 in
    let emit_combinations arrival_rel e =
      members.(arrival_rel) <- e;
      let rec fill rel life =
        if rel = k then begin
          if !produced >= limit then raise Limit_reached;
          incr produced;
          f members life
        end
        else if rel = arrival_rel then fill (rel + 1) life
        else
          Active_list.iter
            (fun m ->
              members.(rel) <- m;
              match Interval.intersect life (Span_item.ivl m) with
              | Some life' -> fill (rel + 1) life'
              | None -> ())
            active.(rel)
      in
      fill 0 (Span_item.ivl e)
    in
    let open_scanners () =
      let any = ref false in
      for i = 0 to k - 1 do
        if cur.(i) < stop.(i) then any := true
      done;
      !any
    in
    let next_scanner () =
      let best = ref (-1) in
      for i = 0 to k - 1 do
        if cur.(i) < stop.(i) then begin
          let it = Relation.get (Sti.relation stis.(i)) cur.(i) in
          if
            !best < 0
            || Span_item.compare_by_start it
                 (Relation.get (Sti.relation stis.(!best)) cur.(!best))
               < 0
          then best := i
        end
      done;
      !best
    in
    match
      while open_scanners () do
        let i = next_scanner () in
        let e = Relation.get (Sti.relation stis.(i)) cur.(i) in
        if Interval.overlaps_window (Span_item.ivl e) ~ws ~we then begin
          let t = Span_item.ts e in
          Array.iter (fun a -> ignore (Active_list.expire a t)) active;
          emit_combinations i e;
          Active_list.insert active.(i) e
        end;
        cur.(i) <- cur.(i) + 1
      done
    with
    | () -> Complete !produced
    | exception Limit_reached -> Truncated !produced
  end

let count stis ~ws ~we ?limit () =
  enumerate stis ~ws ~we ?limit ~f:(fun _ _ -> ()) ()
