(** STI-CP: k-way temporal-overlap clique production.

    Given [k] start-time-indexed relations and a query window, enumerate
    every [k]-tuple of items — one from each relation — whose intervals
    jointly overlap (the clique lifespan is non-empty; joint window
    overlap then follows from per-item window overlap). This is the
    temporal-predicate solver of the TIME (T^P) pipeline: the produced
    cliques are handed to a topological join afterwards.

    Enumeration is a plane sweep over the merged start order with one
    active list per relation; a clique is emitted when its latest-starting
    member arrives, so each clique is produced exactly once. *)

type outcome =
  | Complete of int  (** all cliques produced; the count *)
  | Truncated of int  (** the [limit] was hit after producing this many *)

val enumerate :
  Sti.t array ->
  ws:int ->
  we:int ->
  ?limit:int ->
  f:(Span_item.t array -> Interval.t -> unit) ->
  unit ->
  outcome
(** [enumerate stis ~ws ~we ~f ()] calls [f members lifespan] per clique;
    [members.(i)] belongs to relation [i]. [members] is reused across
    calls: copy it if retained. [limit] defaults to [max_int]. *)

val count : Sti.t array -> ws:int -> we:int -> ?limit:int -> unit -> outcome
