type tuple = { cs : int; ce : int; ec : int }
type t = { tuples : tuple array }

let empty = { tuples = [||] }
let tuples c = c.tuples
let n_tuples c = Array.length c.tuples

(* The step function t -> eC(t) can only change value at an interval start
   or just after an interval end. We sweep those critical times in
   ascending order, maintaining the active intervals in a min-heap keyed
   by start time. Expired intervals are removed lazily: an expired
   non-minimum element never affects eC, and expired minimums are popped
   before reading. *)
let build items =
  if not (Span_item.is_sorted_by_start items) then
    invalid_arg "Coverage.build: items not sorted by start time";
  let n = Array.length items in
  if n = 0 then empty
  else begin
    let critical = Array.make (2 * n) 0 in
    Array.iteri
      (fun i it ->
        critical.(2 * i) <- Span_item.ts it;
        critical.((2 * i) + 1) <- Span_item.te it + 1)
      items;
    Array.sort Int.compare critical;
    let heap =
      Min_heap.create ~capacity:n
        ~cmp:(fun a b -> Interval.compare (Span_item.ivl a) (Span_item.ivl b))
        ()
    in
    let out = ref [] in
    let next_item = ref 0 in
    let n_critical = Array.length critical in
    let i = ref 0 in
    while !i < n_critical do
      let time = critical.(!i) in
      (* Skip duplicate critical times. *)
      while !i < n_critical && critical.(!i) = time do incr i done;
      while !next_item < n && Span_item.ts items.(!next_item) <= time do
        Min_heap.push heap items.(!next_item);
        incr next_item
      done;
      Min_heap.drain_while heap (fun it -> Span_item.te it < time);
      let segment_end =
        if !i < n_critical then critical.(!i) - 1 else time
        (* the last critical time is max(te)+1, where the heap is empty *)
      in
      match Min_heap.peek heap with
      | None -> ()
      | Some earliest ->
          let ec = Span_item.ts earliest in
          out := { cs = time; ce = segment_end; ec } :: !out
    done;
    (* Merge adjacent segments sharing the same earliest concurrent. *)
    let merged =
      List.fold_left
        (fun acc seg ->
          match acc with
          | prev :: rest
            when prev.ec = seg.ec && prev.ce + 1 = seg.cs ->
              { prev with ce = seg.ce } :: rest
          | _ -> seg :: acc)
        []
        (List.rev !out)
    in
    { tuples = Array.of_list (List.rev merged) }
  end

(* Binary search: first tuple with ce >= t (tuples are disjoint and sorted
   by cs, hence also by ce). That tuple either contains t or starts after
   t, matching the paper's getCoverageTuple contract. *)
let get_coverage_tuple c t =
  let tuples = c.tuples in
  let n = Array.length tuples in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if tuples.(mid).ce < t then lo := mid + 1 else hi := mid
  done;
  if !lo >= n then None else Some tuples.(!lo)

let earliest_concurrent c t =
  match get_coverage_tuple c t with
  | Some tup when tup.cs <= t && t <= tup.ce -> Some tup.ec
  | Some _ | None -> None

let size_words c = 3 + (4 * Array.length c.tuples)

let pp fmt c =
  Format.fprintf fmt "@[<hov 1>{";
  Array.iter
    (fun { cs; ce; ec } -> Format.fprintf fmt "(%d,%d,%d)@ " cs ce ec)
    c.tuples;
  Format.fprintf fmt "}@]"
