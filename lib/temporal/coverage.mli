(** Earliest-concurrent coverage of a temporal relation (ECI substrate).

    For a relation [R] of intervals and a timestamp [t], the
    {e earliest concurrent} [eC(t)] is the start time of the earliest
    (smallest-start) interval of [R] that overlaps [t] (Zhu et al. [28]).
    This module represents the step function [t -> eC(t)] compactly as a
    sorted array of {e early coverage tuples} [(cs, ce, ec)]: for every
    [t] in [[cs, ce]], [eC(t) = ec]. Timestamps covered by no interval
    fall in gaps between tuples.

    The paper's ECIs (LS-EC, LD-EC, LSD-EC) attach one such coverage to
    each TSR; this module is the per-relation building block. *)

type tuple = { cs : int; ce : int; ec : int }
(** One early coverage tuple: every [t] in [[cs, ce]] has earliest
    concurrent [ec]. Invariants: [cs <= ce] and [ec <= cs]. *)

type t
(** The coverage of one relation: tuples sorted by [cs], disjoint, with
    maximal runs of equal [ec] merged. *)

val build : Span_item.t array -> t
(** [build items] computes the coverage of [items]. The array must be
    sorted by start time ({!Span_item.sort_by_start} order).
    @raise Invalid_argument if the array is not sorted. *)

val empty : t
(** Coverage of the empty relation. *)

val tuples : t -> tuple array
(** The underlying tuples, sorted by [cs]. *)

val n_tuples : t -> int

val get_coverage_tuple : t -> int -> tuple option
(** [get_coverage_tuple c t] implements the paper's
    [getCoverageTuple(R, t)]: the tuple whose range contains [t] if one
    exists, otherwise the first tuple with [cs > t], otherwise [None]. *)

val earliest_concurrent : t -> int -> int option
(** [earliest_concurrent c t] is [eC(t)] when [t] is covered by some
    interval of the relation. *)

val size_words : t -> int
(** Approximate heap footprint in machine words, for the storage-cost
    accounting of Table IV. *)

val pp : Format.formatter -> t -> unit
