(* gFS: repeatedly pick the relation whose cursor holds the earlier start;
   scan the other relation forward from its cursor while partners start at
   or before the picked interval's end. Every overlapping pair (a, b) is
   found when the earlier-starting member is picked (the later-starting
   member then lies in the scanned range), and only then, so each pair is
   emitted once. *)

let join left right ~f =
  let count = ref 0 in
  let nl = Relation.length left and nr = Relation.length right in
  let il = ref 0 and ir = ref 0 in
  while !il < nl && !ir < nr do
    let a = Relation.get left !il and b = Relation.get right !ir in
    if Span_item.compare_by_start a b <= 0 then begin
      let stop = Span_item.te a in
      let k = ref !ir in
      while !k < nr && Span_item.ts (Relation.get right !k) <= stop do
        incr count;
        f a (Relation.get right !k);
        incr k
      done;
      incr il
    end
    else begin
      let stop = Span_item.te b in
      let k = ref !il in
      while !k < nl && Span_item.ts (Relation.get left !k) <= stop do
        incr count;
        f (Relation.get left !k) b;
        incr k
      done;
      incr ir
    end
  done;
  !count

let count left right = join left right ~f:(fun _ _ -> ())
