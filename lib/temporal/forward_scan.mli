(** Forward-scan binary interval join (FS / gFS, Bouros & Mamoulis).

    Alternative sweep that, for the relation holding the current
    earliest-starting interval, scans the other relation forward emitting
    every partner starting before that interval ends. Enumerates exactly
    the same pairs as {!Sweep_join}; kept as an independently-implemented
    competitor and cross-check. *)

val join :
  Relation.t -> Relation.t -> f:(Span_item.t -> Span_item.t -> unit) -> int

val count : Relation.t -> Relation.t -> int
