type t = { ts : int; te : int }

let make ts te =
  if te < ts then
    invalid_arg (Printf.sprintf "Interval.make: te (%d) < ts (%d)" te ts);
  { ts; te }

let make_opt ts te = if te < ts then None else Some { ts; te }
let point t = { ts = t; te = t }
let ts i = i.ts
let te i = i.te
let length i = i.te - i.ts + 1
let contains i t = i.ts <= t && t <= i.te
let overlaps a b = a.ts <= b.te && b.ts <= a.te
let overlaps_window i ~ws ~we = i.ts <= we && ws <= i.te

let intersect a b =
  let ts = max a.ts b.ts and te = min a.te b.te in
  if ts <= te then Some { ts; te } else None

let intersect_exn a b =
  let ts = max a.ts b.ts and te = min a.te b.te in
  if ts <= te then { ts; te }
  else
    invalid_arg
      (Printf.sprintf "Interval.intersect_exn: [%d,%d] and [%d,%d] disjoint"
         a.ts a.te b.ts b.te)

let span a b = { ts = min a.ts b.ts; te = max a.te b.te }
let before a b = a.te < b.ts
let equal a b = a.ts = b.ts && a.te = b.te

let compare a b =
  let c = Int.compare a.ts b.ts in
  if c <> 0 then c else Int.compare a.te b.te

let compare_by_end a b =
  let c = Int.compare a.te b.te in
  if c <> 0 then c else Int.compare a.ts b.ts

let pp fmt i = Format.fprintf fmt "[%d, %d]" i.ts i.te
let to_string i = Printf.sprintf "[%d, %d]" i.ts i.te
