(** Closed integer time intervals [ts, te] with ts <= te.

    All temporal structures in this repository are built on this module.
    Timestamps are plain [int]s; the unit (seconds, minutes, ticks) is
    chosen by the dataset. *)

type t = private { ts : int; te : int }
(** An interval. The [private] row keeps the [ts <= te] invariant:
    construct values with {!make} or {!point}. *)

val make : int -> int -> t
(** [make ts te] is the interval [ts, te].
    @raise Invalid_argument if [te < ts]. *)

val make_opt : int -> int -> t option
(** [make_opt ts te] is [Some (make ts te)] when [ts <= te], else [None]. *)

val point : int -> t
(** [point t] is the degenerate interval [t, t]. *)

val ts : t -> int
(** Start timestamp. *)

val te : t -> int
(** End timestamp (inclusive). *)

val length : t -> int
(** [length i] is the number of integer timestamps covered, [te - ts + 1]. *)

val contains : t -> int -> bool
(** [contains i t] is [true] iff [ts i <= t <= te i]. *)

val overlaps : t -> t -> bool
(** [overlaps a b] is [true] iff the intervals share at least one
    timestamp. *)

val overlaps_window : t -> ws:int -> we:int -> bool
(** [overlaps_window i ~ws ~we] avoids allocating a window interval. *)

val intersect : t -> t -> t option
(** [intersect a b] is the common sub-interval when it is non-empty. *)

val intersect_exn : t -> t -> t
(** Like {!intersect}.
    @raise Invalid_argument when the intervals are disjoint. *)

val span : t -> t -> t
(** [span a b] is the smallest interval covering both [a] and [b]. *)

val before : t -> t -> bool
(** [before a b] is [true] iff [a] ends strictly before [b] starts. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic order on (start, end); the order used by every
    start-sorted temporal relation in the system. *)

val compare_by_end : t -> t -> int
(** Lexicographic order on (end, start); the order of active lists. *)

val pp : Format.formatter -> t -> unit
(** Prints as ["[ts, te]"]. *)

val to_string : t -> string
