(* Normalized sets of integer timestamps, represented as sorted lists of
   disjoint, non-adjacent closed intervals. Lists are tiny in practice
   (clause unions per match, lifespan pieces), so linear merges beat any
   tree structure. *)

type t = Interval.t list

let empty = []
let is_empty s = s = []
let of_interval i = [ i ]
let to_list s = s

(* guard against te = max_int: naive lifespans start unbounded *)
let succ_te i =
  let te = Interval.te i in
  if te = max_int then max_int else te + 1

let normalize l =
  let sorted = List.sort Interval.compare l in
  let rec merge acc = function
    | [] -> List.rev acc
    | i :: rest -> (
        match acc with
        | j :: acc' when Interval.ts i <= succ_te j ->
            (* overlapping or adjacent: fuse into one maximal interval *)
            merge
              (Interval.make (Interval.ts j)
                 (max (Interval.te j) (Interval.te i))
              :: acc')
              rest
        | _ -> merge (i :: acc) rest)
  in
  merge [] sorted

let of_list l = normalize l

let union a b = normalize (List.rev_append a b)

let inter a b =
  let rec go acc a b =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | x :: a', y :: b' ->
        let acc =
          match Interval.intersect x y with Some i -> i :: acc | None -> acc
        in
        if Interval.te x <= Interval.te y then go acc a' b else go acc a b'
  in
  go [] a b

let diff a b =
  let rec go acc a b =
    match (a, b) with
    | [], _ -> List.rev acc
    | a, [] -> List.rev_append acc a
    | x :: a', y :: b' ->
        if Interval.te y < Interval.ts x then go acc a b'
        else if Interval.te x < Interval.ts y then go (x :: acc) a' b
        else begin
          (* x and y share at least one tick *)
          let acc =
            if Interval.ts x < Interval.ts y then
              Interval.make (Interval.ts x) (Interval.ts y - 1) :: acc
            else acc
          in
          if Interval.te x > Interval.te y then
            go acc (Interval.make (Interval.te y + 1) (Interval.te x) :: a') b'
          else go acc a' b
        end
  in
  go [] a b

let mem s t = List.exists (fun i -> Interval.contains i t) s

let length s = List.fold_left (fun acc i -> acc + Interval.length i) 0 s

let equal a b = List.length a = List.length b && List.for_all2 Interval.equal a b

let to_string s =
  "{" ^ String.concat ", " (List.map Interval.to_string s) ^ "}"
