(** Sets of integer timestamps as normalized closed-interval lists.

    A value is a sorted list of disjoint, {e non-adjacent} intervals —
    the unique maximal-interval decomposition of a timestamp set, so two
    sets are equal iff their lists are. Adjacency matters on integer
    time: [[0, 2]] and [[3, 5]] fuse into [[0, 5]].

    This is the interval arithmetic behind the extended relational
    operators: the antijoin subtracts a clause's matched union from a
    lifespan, the semijoin intersects with it, and the surviving maximal
    intervals are the result {e pieces}. *)

type t = Interval.t list
(** Exposed as a list for pattern matching, but only {!normalize}d
    values uphold the invariants; build with the constructors below. *)

val empty : t
val is_empty : t -> bool
val of_interval : Interval.t -> t

val of_list : Interval.t list -> t
(** Sorts, merges overlapping and adjacent intervals. *)

val normalize : Interval.t list -> t
(** Alias of {!of_list}. *)

val union : t -> t -> t
val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is the set of timestamps in [a] but not [b], as maximal
    intervals. *)

val mem : t -> int -> bool
val length : t -> int
(** Total number of timestamps covered. *)

val equal : t -> t -> bool
val to_list : t -> Interval.t list
val to_string : t -> string
