(* Gapless active set: O(1) insert and O(1) swap-remove by slot. Each
   item remembers its slot through a side table indexed by a dense
   per-relation sequence number. *)
module Active_set = struct
  type t = {
    items : Span_item.t Vec.t;
    slots : int array; (* seq -> position in items, or -1 *)
    seqs : int Vec.t; (* position -> seq *)
  }

  let create capacity =
    { items = Vec.create (); slots = Array.make (max 1 capacity) (-1);
      seqs = Vec.create () }

  let insert t seq item =
    t.slots.(seq) <- Vec.length t.items;
    Vec.push t.items item;
    Vec.push t.seqs seq

  let remove t seq =
    let pos = t.slots.(seq) in
    if pos >= 0 then begin
      let last = Vec.length t.items - 1 in
      let moved_seq = Vec.get t.seqs last in
      Vec.set t.items pos (Vec.get t.items last);
      Vec.set t.seqs pos moved_seq;
      t.slots.(moved_seq) <- pos;
      ignore (Vec.pop_exn t.items);
      ignore (Vec.pop_exn t.seqs);
      t.slots.(seq) <- -1
    end

  let iter f t = Vec.iter f t.items
end

type event = { time : int; kind : int; (* 0 = end, 1 = start *) side : int; seq : int }

let join left right ~f =
  let nl = Relation.length left and nr = Relation.length right in
  let events = Array.make (2 * (nl + nr)) { time = 0; kind = 0; side = 0; seq = 0 } in
  let pos = ref 0 in
  let add_relation side rel =
    for i = 0 to Relation.length rel - 1 do
      let it = Relation.get rel i in
      events.(!pos) <- { time = Span_item.ts it; kind = 1; side; seq = i };
      incr pos;
      events.(!pos) <- { time = Span_item.te it + 1; kind = 0; side; seq = i };
      incr pos
    done
  in
  add_relation 0 left;
  add_relation 1 right;
  (* ends before starts at equal times: an interval ending at t-1 must
     leave before arrivals at t pair with it *)
  Array.sort
    (fun a b ->
      let c = Int.compare a.time b.time in
      if c <> 0 then c else Int.compare a.kind b.kind)
    events;
  let active = [| Active_set.create nl; Active_set.create nr |] in
  let item side seq =
    if side = 0 then Relation.get left seq else Relation.get right seq
  in
  let count = ref 0 in
  let emit side a b =
    incr count;
    if side = 0 then f a b else f b a
  in
  let batch : event Vec.t = Vec.create () in
  let flush () =
    (* pairs between batch starts and the opposite active sets, then
       within-batch cross-side pairs, then insert the batch *)
    Vec.iter
      (fun ev ->
        let it = item ev.side ev.seq in
        Active_set.iter
          (fun other -> emit ev.side it other)
          active.(1 - ev.side))
      batch;
    let n = Vec.length batch in
    for i = 0 to n - 1 do
      let a = Vec.get batch i in
      for j = i + 1 to n - 1 do
        let b = Vec.get batch j in
        if a.side <> b.side then
          emit a.side (item a.side a.seq) (item b.side b.seq)
      done
    done;
    Vec.iter (fun ev -> Active_set.insert active.(ev.side) ev.seq (item ev.side ev.seq)) batch;
    Vec.clear batch
  in
  let n_events = !pos in
  let i = ref 0 in
  while !i < n_events do
    let ev = events.(!i) in
    if ev.kind = 0 then begin
      flush ();
      Active_set.remove active.(ev.side) ev.seq
    end
    else begin
      (* batch only starts sharing this timestamp *)
      if not (Vec.is_empty batch) && (Vec.get batch 0).time <> ev.time then
        flush ();
      Vec.push batch ev
    end;
    incr i
  done;
  flush ();
  !count

let count left right = join left right ~f:(fun _ _ -> ())
