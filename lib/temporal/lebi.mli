(** Lazy endpoint-based interval join (the LEBI variant of Piatov et
    al.).

    Event-list mechanics, unlike {!Sweep_join}'s active-list sweep: both
    relations are turned into merged (timestamp, kind) endpoint events;
    active sets are gapless arrays with O(1) swap-removal at end events;
    start events are batched per timestamp and emitted lazily in one
    traversal of the opposite active set.

    Enumerates exactly the pairs of {!Sweep_join.join}; kept as an
    independently-implemented competitor and cross-check. *)

val join :
  Relation.t -> Relation.t -> f:(Span_item.t -> Span_item.t -> unit) -> int

val count : Relation.t -> Relation.t -> int
