(* The backing array is allocated lazily at the first push, so no dummy
   element is ever needed. *)
type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
  hint : int;
}

let create ?(capacity = 16) ~cmp () =
  { cmp; data = [||]; size = 0; hint = max capacity 1 }

let length h = h.size
let is_empty h = h.size = 0



let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  if h.size = Array.length h.data then begin
    let capacity = max h.hint (2 * Array.length h.data) in
    let data = Array.make capacity x in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let peek_exn h =
  if h.size = 0 then invalid_arg "Min_heap.peek_exn: empty heap"
  else h.data.(0)

let pop_exn h =
  if h.size = 0 then invalid_arg "Min_heap.pop_exn: empty heap"
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    top
  end

let pop h = if h.size = 0 then None else Some (pop_exn h)
let clear h = h.size <- 0

let rec drain_while h p =
  match peek h with
  | Some x when p x ->
      ignore (pop_exn h);
      drain_while h p
  | Some _ | None -> ()
