(** A mutable binary min-heap, parameterized by a comparison at creation.

    Used by the coverage sweep (earliest-concurrent computation) and the
    plane-sweep interval joins. Not thread-safe. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** The minimum element, if any, without removing it. *)

val peek_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val drain_while : 'a t -> ('a -> bool) -> unit
(** [drain_while h p] pops elements while the minimum satisfies [p]. *)
