module Make (T : sig
  type t
end) =
struct
  open Effect
  open Effect.Deep

  type _ Effect.t += Yield : T.t -> unit Effect.t

  type state =
    | Not_started
    | Suspended of (unit, unit) continuation
    | Finished

  let to_pull produce =
    let state = ref Not_started in
    let yielded : T.t option ref = ref None in
    let handler () =
      match_with
        (fun () -> produce (fun x -> perform (Yield x)))
        ()
        {
          retc = (fun () -> state := Finished);
          exnc =
            (fun e ->
              state := Finished;
              raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield x ->
                  Some
                    (fun (k : (a, unit) continuation) ->
                      yielded := Some x;
                      state := Suspended k)
              | _ -> None);
        }
    in
    fun () ->
      yielded := None;
      (match !state with
      | Not_started -> handler ()
      | Suspended k ->
          state := Finished (* replaced on the next suspension *);
          continue k ()
      | Finished -> ());
      !yielded
end
