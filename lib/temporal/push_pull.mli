(** Push-to-pull inversion via OCaml 5 effect handlers.

    Every engine in this repository produces results in push style
    ([~emit:(fun x -> ...)]); the vectorized operator framework consumes
    in pull style. [Make(T).to_pull producer] suspends the producer at
    each emission with a one-shot continuation, turning it into an
    iterator — no threads, no queues, O(1) memory between pulls. *)

module Make (T : sig
  type t
end) : sig
  val to_pull : ((T.t -> unit) -> unit) -> unit -> T.t option
  (** [to_pull produce] is a stateful [next] function: the first call
      starts [produce], each emission is handed back as [Some x], and
      [None] is returned once [produce] finishes. The producer runs
      exactly once; exceptions it raises escape from [next].

      The returned function is single-consumer and must not be called
      re-entrantly from inside the producer. Calls after [None] keep
      returning [None]. *)
end
