type t = { items : Span_item.t array }

let of_items a =
  let items = Array.copy a in
  Span_item.sort_by_start items;
  { items }

let of_sorted a =
  if not (Span_item.is_sorted_by_start a) then
    invalid_arg "Relation.of_sorted: array not sorted by start";
  { items = a }

let of_list l = of_items (Array.of_list l)
let empty = { items = [||] }
let length r = Array.length r.items
let is_empty r = Array.length r.items = 0
let get r i = r.items.(i)
let items r = r.items
let iter f r = Array.iter f r.items

let lower_bound_start r t =
  let items = r.items in
  let lo = ref 0 and hi = ref (Array.length items) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Span_item.ts items.(mid) < t then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound_start r t =
  let items = r.items in
  let lo = ref 0 and hi = ref (Array.length items) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Span_item.ts items.(mid) <= t then lo := mid + 1 else hi := mid
  done;
  !lo

let count_window r ~ws ~we =
  let stop = upper_bound_start r we in
  let count = ref 0 in
  for i = 0 to stop - 1 do
    if Span_item.te r.items.(i) >= ws then incr count
  done;
  !count

let time_span r =
  if is_empty r then None
  else begin
    let ts = Span_item.ts r.items.(0) in
    let te = ref min_int in
    Array.iter (fun it -> te := max !te (Span_item.te it)) r.items;
    Some (Interval.make ts !te)
  end

(* A span item is a 2-word record header-included approximation plus an
   interval record: ~6 words per item, 1 word per array slot. *)
let size_words r = 1 + (7 * Array.length r.items)

let pp fmt r =
  Format.fprintf fmt "@[<hov 1>[";
  Array.iter (fun it -> Format.fprintf fmt "%a@ " Span_item.pp it) r.items;
  Format.fprintf fmt "]@]"
