(** A temporal relation: span items sorted by start time.

    This is the common input format of every interval join algorithm in
    this library and the storage format of the TSRs attached to the TAI
    tries. *)

type t

val of_items : Span_item.t array -> t
(** [of_items a] copies and sorts [a] by (start, end, id). *)

val of_sorted : Span_item.t array -> t
(** [of_sorted a] adopts [a] without copying.
    @raise Invalid_argument if [a] is not sorted by start. *)

val of_list : Span_item.t list -> t
val empty : t
val length : t -> int
val is_empty : t -> bool
val get : t -> int -> Span_item.t
val items : t -> Span_item.t array
val iter : (Span_item.t -> unit) -> t -> unit

val lower_bound_start : t -> int -> int
(** [lower_bound_start r t] is the first index whose item starts at or
    after [t] (= [length r] when none does). *)

val upper_bound_start : t -> int -> int
(** [upper_bound_start r t] is the first index whose item starts strictly
    after [t]. *)

val count_window : t -> ws:int -> we:int -> int
(** Number of items overlapping the window (linear in candidates). *)

val time_span : t -> Interval.t option
(** The smallest interval covering every item, if the relation is
    non-empty. *)

val size_words : t -> int
(** Approximate heap words, counting items as boxed records. *)

val pp : Format.formatter -> t -> unit
