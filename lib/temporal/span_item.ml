type t = { id : int; ivl : Interval.t }

let make id ivl = { id; ivl }
let id x = x.id
let ivl x = x.ivl
let ts x = Interval.ts x.ivl
let te x = Interval.te x.ivl

let compare_by_start a b =
  let c = Interval.compare a.ivl b.ivl in
  if c <> 0 then c else Int.compare a.id b.id

let compare_by_end a b =
  let c = Interval.compare_by_end a.ivl b.ivl in
  if c <> 0 then c else Int.compare a.id b.id

let sort_by_start items = Array.sort compare_by_start items

let is_sorted_by_start items =
  let n = Array.length items in
  let rec check i =
    if i >= n then true
    else if compare_by_start items.(i - 1) items.(i) > 0 then false
    else check (i + 1)
  in
  n <= 1 || check 1

let pp fmt x = Format.fprintf fmt "#%d%a" x.id Interval.pp x.ivl
