(** A payload-carrying interval: the unit of every temporal relation.

    Interval join algorithms in this library operate on arrays of
    [Span_item.t] — an integer payload (an edge id, a tuple id, ...)
    together with its validity interval. *)

type t = { id : int; ivl : Interval.t }

val make : int -> Interval.t -> t
val id : t -> int
val ivl : t -> Interval.t
val ts : t -> int
val te : t -> int

val compare_by_start : t -> t -> int
(** (start, end, id) lexicographic: the canonical relation order. *)

val compare_by_end : t -> t -> int
(** (end, start, id) lexicographic: the active-list order. *)

val sort_by_start : t array -> unit
(** In-place sort in {!compare_by_start} order. *)

val is_sorted_by_start : t array -> bool

val pp : Format.formatter -> t -> unit
