type t = { relation : Relation.t; coverage : Coverage.t }

let build relation =
  { relation; coverage = Coverage.build (Relation.items relation) }

let relation sti = sti.relation
let coverage sti = sti.coverage
let length sti = Relation.length sti.relation

let scan_range sti ~ws ~we =
  let stop = Relation.upper_bound_start sti.relation we in
  let start_time =
    match Coverage.get_coverage_tuple sti.coverage ws with
    | None -> max_int (* the relation dies out before ws: nothing to scan *)
    | Some tup ->
        if tup.Coverage.cs <= ws && ws <= tup.Coverage.ce then tup.Coverage.ec
        else
          (* Nothing alive at ws; the first candidates start in
             (ws, we], all at or after the next covered segment. *)
          tup.Coverage.cs
  in
  let start =
    if start_time = max_int then stop
    else Relation.lower_bound_start sti.relation start_time
  in
  (min start stop, stop)

let enum_window sti ~ws ~we ~f =
  let start, stop = scan_range sti ~ws ~we in
  let count = ref 0 in
  for i = start to stop - 1 do
    let it = Relation.get sti.relation i in
    if Interval.overlaps_window (Span_item.ivl it) ~ws ~we then begin
      incr count;
      f it
    end
  done;
  !count

let size_words sti =
  2 + Relation.size_words sti.relation + Coverage.size_words sti.coverage

let build_time relation =
  let t0 = Unix.gettimeofday () in
  let sti = build relation in
  (sti, Unix.gettimeofday () -. t0)
