(** Start Time Index (STI, Zhu et al. [28]).

    A temporal relation sorted by start time together with its
    earliest-concurrent coverage. The coverage lets a window scan begin
    at the earliest interval that can still overlap the window start
    (skipping every interval that expired before [ws]) instead of at the
    beginning of the relation. This is the index behind the TIME
    baseline. *)

type t

val build : Relation.t -> t
val relation : t -> Relation.t
val coverage : t -> Coverage.t
val length : t -> int

val scan_range : t -> ws:int -> we:int -> int * int
(** [scan_range sti ~ws ~we] is the index range [(start, stop)] (half
    open) containing every item that overlaps the window: the scan starts
    at the earliest concurrent of [ws] (or at the first start after [ws]
    when nothing is alive at [ws]) and stops after the last item starting
    at or before [we]. Items inside the range may still end before [ws]
    and must be filtered by the consumer. *)

val enum_window : t -> ws:int -> we:int -> f:(Span_item.t -> unit) -> int
(** Enumerates (filtered) items overlapping the window; returns the
    count. *)

val size_words : t -> int

val build_time : Relation.t -> t * float
(** [build_time r] also reports the wall-clock build seconds, for the
    pre-processing cost accounting of Table V. *)
