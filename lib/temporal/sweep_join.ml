(* Classic endpoint-based sweep: advance over the union of both relations
   in start-time order; on arrival of an item, expire the other side's
   active list and pair the item with everything still active there. Each
   overlapping pair (a, b) is emitted exactly once, at the arrival of the
   later-starting member, which is a witness time of their overlap. *)

let join_impl ?(obs = Obs.Sink.null) left right ~ws ~we ~f =
  Obs.Sink.span obs Obs.Phase.Interval_sweep @@ fun () ->
  let count = ref 0 in
  let active_l = Active_list.create () and active_r = Active_list.create () in
  let nl = Relation.length left and nr = Relation.length right in
  let il = ref 0 and ir = ref 0 in
  let emit a b =
    if
      Interval.overlaps (Span_item.ivl a) (Span_item.ivl b)
      && Interval.ts (Span_item.ivl a) <= we
      && Interval.ts (Span_item.ivl b) <= we
      && Interval.te (Span_item.ivl a) >= ws
      && Interval.te (Span_item.ivl b) >= ws
    then begin
      incr count;
      f a b
    end
  in
  while !il < nl || !ir < nr do
    let take_left =
      !ir >= nr
      || (!il < nl
          && Span_item.compare_by_start (Relation.get left !il)
               (Relation.get right !ir)
             <= 0)
    in
    if take_left then begin
      let a = Relation.get left !il in
      incr il;
      ignore (Active_list.expire active_r (Span_item.ts a));
      Active_list.iter (fun b -> emit a b) active_r;
      Active_list.insert active_l a
    end
    else begin
      let b = Relation.get right !ir in
      incr ir;
      ignore (Active_list.expire active_l (Span_item.ts b));
      Active_list.iter (fun a -> emit a b) active_l;
      Active_list.insert active_r b
    end
  done;
  !count

let join ?obs left right ~f =
  join_impl ?obs left right ~ws:min_int ~we:max_int ~f

let join_window ?obs left right ~ws ~we ~f =
  (* As in LFTO: an overlapping pair in which both members individually
     overlap the window has max-start <= we and min-end >= ws, hence its
     joint overlap intersects the window. Restricting the scan to items
     starting at or before [we] and filtering per-item suffices. *)
  join_impl ?obs left right ~ws ~we ~f

let count left right = join left right ~f:(fun _ _ -> ())
