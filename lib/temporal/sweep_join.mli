(** Endpoint-based plane-sweep binary interval join (EBI family,
    Piatov et al.).

    Enumerates every pair [(a, b)] with [a] from the left relation and
    [b] from the right relation whose intervals overlap. Both relations
    must be in {!Relation.t} (start-sorted) form. *)

val join :
  ?obs:Obs.Sink.t ->
  Relation.t ->
  Relation.t ->
  f:(Span_item.t -> Span_item.t -> unit) ->
  int
(** [join left right ~f] calls [f a b] for every overlapping pair and
    returns the number of pairs. The whole sweep is attributed to the
    [interval_sweep] phase of [obs] when given. *)

val join_window :
  ?obs:Obs.Sink.t ->
  Relation.t ->
  Relation.t ->
  ws:int ->
  we:int ->
  f:(Span_item.t -> Span_item.t -> unit) ->
  int
(** Like {!join}, restricted to pairs whose joint overlap intersects the
    window [ws, we]. *)

val count : Relation.t -> Relation.t -> int
(** [count l r] is [join l r ~f:(fun _ _ -> ())]. *)
