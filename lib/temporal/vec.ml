(* The backing array is allocated lazily at the first push, so no dummy
   element is ever needed; [data] is [[||]] iff nothing was ever
   pushed. [hint] remembers the requested capacity. *)
type 'a t = { mutable data : 'a array; mutable size : int; hint : int }

let create ?(capacity = 8) () = { data = [||]; size = 0; hint = max capacity 1 }

let length v = v.size
let is_empty v = v.size = 0

let check v i =
  if i < 0 || i >= v.size then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0, %d)" i v.size)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let push v x =
  if v.size = Array.length v.data then begin
    let capacity = max v.hint (2 * Array.length v.data) in
    let data = Array.make capacity x in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let pop_exn v =
  if v.size = 0 then invalid_arg "Vec.pop_exn: empty vector";
  v.size <- v.size - 1;
  v.data.(v.size)

let last_exn v =
  if v.size = 0 then invalid_arg "Vec.last_exn: empty vector";
  v.data.(v.size - 1)

let clear v = v.size <- 0

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.size - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec go i = i < v.size && (p v.data.(i) || go (i + 1)) in
  go 0

let to_array v = Array.sub v.data 0 v.size
let to_list v = Array.to_list (to_array v)

let of_array a =
  let v = create ~capacity:(max 1 (Array.length a)) () in
  Array.iter (push v) a;
  v

let of_list l = of_array (Array.of_list l)

let insert_sorted ~cmp v x =
  (* Find the first position whose element is greater than x, then shift
     the suffix right by one. *)
  let lo = ref 0 and hi = ref v.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp v.data.(mid) x <= 0 then lo := mid + 1 else hi := mid
  done;
  push v x;
  let pos = !lo in
  if pos < v.size - 1 then begin
    Array.blit v.data pos v.data (pos + 1) (v.size - 1 - pos);
    v.data.(pos) <- x
  end

let remove_prefix p v =
  let k = ref 0 in
  while !k < v.size && p v.data.(!k) do incr k done;
  let removed = !k in
  if removed > 0 then begin
    Array.blit v.data removed v.data 0 (v.size - removed);
    v.size <- v.size - removed
  end;
  removed

let filter_in_place p v =
  let kept = ref 0 in
  for i = 0 to v.size - 1 do
    if p v.data.(i) then begin
      v.data.(!kept) <- v.data.(i);
      incr kept
    end
  done;
  let removed = v.size - !kept in
  v.size <- !kept;
  removed
