(** A growable array (vector). The workhorse container of the sweep
    algorithms and the vectorized operators. Not thread-safe. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val pop_exn : 'a t -> 'a
(** Removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)

val last_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty vector. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_array : 'a array -> 'a t
val of_list : 'a list -> 'a t

val insert_sorted : cmp:('a -> 'a -> int) -> 'a t -> 'a -> unit
(** [insert_sorted ~cmp v x] inserts [x] keeping [v] sorted by [cmp]
    (binary search for the position, then shift). *)

val remove_prefix : ('a -> bool) -> 'a t -> int
(** [remove_prefix p v] removes the longest prefix whose elements all
    satisfy [p]; returns how many were removed. *)

val filter_in_place : ('a -> bool) -> 'a t -> int
(** Keeps only elements satisfying the predicate, preserving order;
    returns how many were removed. *)
