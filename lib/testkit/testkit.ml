open Semantics

let random_graph ~seed ~n_vertices ~n_edges ~n_labels ~domain ~max_len () =
  let rng = Random.State.make [| seed; 0xbeef |] in
  let labels =
    Tgraph.Label.of_names (Array.init n_labels (Printf.sprintf "l%d"))
  in
  let b = Tgraph.Graph.Builder.create ~labels () in
  for _ = 1 to n_edges do
    let src = Random.State.int rng n_vertices in
    let dst = Random.State.int rng n_vertices in
    let lbl = Random.State.int rng n_labels in
    let ts = Random.State.int rng domain in
    let te = min (domain - 1) (ts + Random.State.int rng (max 1 max_len)) in
    ignore (Tgraph.Graph.Builder.add_edge b ~src ~dst ~lbl ~ts ~te)
  done;
  Tgraph.Graph.Builder.finish b

(* A pool of query patterns over [n_labels] labels; windows are chosen by
   the caller. Includes shapes with shared unbound endpoints and repeated
   labels to stress consistency checking. *)
let query_pool ~n_labels ~window =
  let l i = i mod n_labels in
  [
    (* 2-star *)
    Query.make ~n_vars:3 ~edges:[ (l 0, 0, 1); (l 1, 0, 2) ] ~window;
    (* 3-star *)
    Query.make ~n_vars:4 ~edges:[ (l 0, 0, 1); (l 1, 0, 2); (l 2, 0, 3) ] ~window;
    (* 3-chain *)
    Query.make ~n_vars:4 ~edges:[ (l 0, 0, 1); (l 1, 1, 2); (l 2, 2, 3) ] ~window;
    (* 4-chain *)
    Query.make ~n_vars:5
      ~edges:[ (l 0, 0, 1); (l 1, 1, 2); (l 2, 2, 3); (l 3, 3, 4) ]
      ~window;
    (* triangle *)
    Query.make ~n_vars:3 ~edges:[ (l 0, 0, 1); (l 1, 1, 2); (l 2, 2, 0) ] ~window;
    (* 4-circle *)
    Query.make ~n_vars:4
      ~edges:[ (l 0, 0, 1); (l 1, 1, 2); (l 2, 2, 3); (l 3, 3, 0) ]
      ~window;
    (* parallel query edges (shared endpoints) *)
    Query.make ~n_vars:2 ~edges:[ (l 0, 0, 1); (l 1, 0, 1) ] ~window;
    (* repeated label on a star *)
    Query.make ~n_vars:3 ~edges:[ (l 0, 0, 1); (l 0, 0, 2) ] ~window;
    (* self loop plus spoke *)
    Query.make ~n_vars:2 ~edges:[ (l 0, 0, 0); (l 1, 0, 1) ] ~window;
    (* in-star (edges pointing at the center) *)
    Query.make ~n_vars:3 ~edges:[ (l 0, 1, 0); (l 1, 2, 0) ] ~window;
    (* mixed directions through a middle vertex *)
    Query.make ~n_vars:3 ~edges:[ (l 0, 1, 0); (l 1, 1, 2) ] ~window;
    (* single edge *)
    Query.make ~n_vars:2 ~edges:[ (l 0, 0, 1) ] ~window;
    (* disconnected: two independent edges *)
    Query.make ~n_vars:4 ~edges:[ (l 0, 0, 1); (l 1, 2, 3) ] ~window;
    (* wildcard edge (any label) in a 2-star *)
    Query.make ~n_vars:3
      ~edges:[ (l 0, 0, 1); (Query.any_label, 0, 2) ]
      ~window;
    (* fully unlabeled triangle (the durable-pattern setting) *)
    Query.make ~n_vars:3
      ~edges:
        [
          (Query.any_label, 0, 1); (Query.any_label, 1, 2);
          (Query.any_label, 2, 0);
        ]
      ~window;
  ]

(* ---- graph mutators ---- *)

let filter_map_edges g ~f =
  let b = Tgraph.Graph.Builder.create ~labels:(Tgraph.Graph.labels g) () in
  let kept = ref [] in
  Tgraph.Graph.iter_edges
    (fun e ->
      match f e with
      | None -> ()
      | Some (src, dst, lbl, ts, te) ->
          ignore (Tgraph.Graph.Builder.add_edge b ~src ~dst ~lbl ~ts ~te);
          kept := Tgraph.Edge.id e :: !kept)
    g;
  (Tgraph.Graph.Builder.finish b, Array.of_list (List.rev !kept))

let unchanged e =
  Some
    ( Tgraph.Edge.src e,
      Tgraph.Edge.dst e,
      Tgraph.Edge.lbl e,
      Tgraph.Edge.ts e,
      Tgraph.Edge.te e )

let drop_edges g ~keep =
  filter_map_edges g ~f:(fun e ->
      if keep (Tgraph.Edge.id e) then unchanged e else None)

let shift_time g ~delta =
  fst
    (filter_map_edges g ~f:(fun e ->
         Some
           ( Tgraph.Edge.src e,
             Tgraph.Edge.dst e,
             Tgraph.Edge.lbl e,
             Tgraph.Edge.ts e + delta,
             Tgraph.Edge.te e + delta )))

let reverse_time g ~anchor =
  fst
    (filter_map_edges g ~f:(fun e ->
         Some
           ( Tgraph.Edge.src e,
             Tgraph.Edge.dst e,
             Tgraph.Edge.lbl e,
             anchor - Tgraph.Edge.te e,
             anchor - Tgraph.Edge.ts e )))

let relabel_edges g ~perm =
  fst
    (filter_map_edges g ~f:(fun e ->
         Some
           ( Tgraph.Edge.src e,
             Tgraph.Edge.dst e,
             perm.(Tgraph.Edge.lbl e),
             Tgraph.Edge.ts e,
             Tgraph.Edge.te e )))

let merge_vertices g ~keep ~drop =
  let map v = if v = drop then keep else v in
  fst
    (filter_map_edges g ~f:(fun e ->
         Some
           ( map (Tgraph.Edge.src e),
             map (Tgraph.Edge.dst e),
             Tgraph.Edge.lbl e,
             Tgraph.Edge.ts e,
             Tgraph.Edge.te e )))

let clamp_edge_interval g ~edge ivl =
  fst
    (filter_map_edges g ~f:(fun e ->
         if Tgraph.Edge.id e = edge then
           Some
             ( Tgraph.Edge.src e,
               Tgraph.Edge.dst e,
               Tgraph.Edge.lbl e,
               Temporal.Interval.ts ivl,
               Temporal.Interval.te ivl )
         else unchanged e))

(* ---- query mutators ---- *)

let rebuild_query q edges =
  let q' = Query.make ~n_vars:(Query.n_vars q) ~edges ~window:(Query.window q) in
  if Query.min_duration q > 1 then
    Query.with_min_duration q' (Query.min_duration q)
  else q'

let map_query_labels q ~f =
  rebuild_query q
    (Array.to_list
       (Array.map
          (fun e ->
            let lbl =
              if e.Query.lbl = Query.any_label then Query.any_label
              else f e.Query.lbl
            in
            (lbl, e.Query.src_var, e.Query.dst_var))
          (Query.edges q)))

let restrict_query q ~keep =
  let keep = List.sort_uniq compare keep in
  if keep = [] then invalid_arg "Testkit.restrict_query: empty edge set";
  List.iter
    (fun i ->
      if i < 0 || i >= Query.n_edges q then
        invalid_arg "Testkit.restrict_query: edge index out of range")
    keep;
  (* renumber the surviving variables compactly, in order of appearance *)
  let var_map = Array.make (Query.n_vars q) (-1) in
  let next = ref 0 in
  let renumber v =
    if var_map.(v) = -1 then begin
      var_map.(v) <- !next;
      incr next
    end;
    var_map.(v)
  in
  let edges =
    List.map
      (fun i ->
        let e = Query.edge q i in
        let src = renumber e.Query.src_var in
        let dst = renumber e.Query.dst_var in
        (e.Query.lbl, src, dst))
      keep
  in
  let q' =
    Query.make ~n_vars:!next ~edges ~window:(Query.window q)
  in
  let q' =
    if Query.min_duration q > 1 then
      Query.with_min_duration q' (Query.min_duration q)
    else q'
  in
  (q', Array.of_list keep)

let query_component q i =
  if i < 0 || i >= Query.n_edges q then
    invalid_arg "Testkit.query_component: edge index out of range";
  let n = Query.n_edges q in
  let in_comp = Array.make n false in
  let vars = Array.make (Query.n_vars q) false in
  let touch e =
    vars.(e.Query.src_var) <- true;
    vars.(e.Query.dst_var) <- true
  in
  in_comp.(i) <- true;
  touch (Query.edge q i);
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun j e ->
        if
          (not in_comp.(j))
          && (vars.(e.Query.src_var) || vars.(e.Query.dst_var))
        then begin
          in_comp.(j) <- true;
          touch e;
          changed := true
        end)
      (Query.edges q)
  done;
  List.filter (fun j -> in_comp.(j)) (List.init n Fun.id)

(* ---- extended-query generators ---- *)

let decorate_query ~seed ~n_labels q =
  let rng = Random.State.make [| seed; 0xdec0 |] in
  let used =
    let flags = Array.make (Query.n_vars q) false in
    Array.iter
      (fun e ->
        flags.(e.Query.src_var) <- true;
        flags.(e.Query.dst_var) <- true)
      (Query.edges q);
    Array.to_list (Array.mapi (fun i u -> (i, u)) flags)
    |> List.filter_map (fun (i, u) -> if u then Some i else None)
  in
  let rand_endpoint () =
    (* unconstrained endpoints are common: they make clause unions big
       enough to actually slice lifespans *)
    if Random.State.int rng 3 = 0 then Equery.Any
    else Equery.Var (List.nth used (Random.State.int rng (List.length used)))
  in
  let rand_clause () =
    let lbl =
      if Random.State.int rng 8 = 0 then Query.any_label
      else Random.State.int rng n_labels
    in
    { Equery.lbl; src = rand_endpoint (); dst = rand_endpoint () }
  in
  let clause_count die = match Random.State.int rng die with 0 -> 1 | 1 -> 2 | _ -> 0 in
  let anti = List.init (clause_count 4) (fun _ -> rand_clause ()) in
  let semi = List.init (clause_count 6) (fun _ -> rand_clause ()) in
  let allen =
    let n = Query.n_edges q in
    if n >= 2 && Random.State.int rng 10 < 3 then begin
      let i = Random.State.int rng n in
      let j = (i + 1 + Random.State.int rng (n - 1)) mod n in
      let rel =
        Temporal.Allen.all.(Random.State.int rng
                              (Array.length Temporal.Allen.all))
      in
      [ (i, rel, j) ]
    end
    else []
  in
  let agg =
    match Random.State.int rng 20 with
    | 0 | 1 -> Some Equery.Count
    | 2 | 3 | 4 -> Some (Equery.Top (1 + Random.State.int rng 5))
    | _ -> None
  in
  Equery.make ~anti ~semi ~allen ?agg q

let restrict_equery eq ~keep =
  let q = Equery.core eq in
  let q', sel = restrict_query q ~keep in
  (* recompute restrict_query's variable renumbering (appearance order
     over the kept edges) to translate clause endpoints *)
  let var_map = Array.make (Query.n_vars q) (-1) in
  let next = ref 0 in
  Array.iter
    (fun i ->
      let e = Query.edge q i in
      List.iter
        (fun v ->
          if var_map.(v) = -1 then begin
            var_map.(v) <- !next;
            incr next
          end)
        [ e.Query.src_var; e.Query.dst_var ])
    sel;
  let map_endpoint = function
    | Equery.Var v when var_map.(v) >= 0 -> Equery.Var var_map.(v)
    | Equery.Var _ | Equery.Any ->
        (* the endpoint's variable no longer exists: weaken to Any so
           the clause stays well-formed on the sub-pattern *)
        Equery.Any
  in
  let map_clause (c : Equery.clause) =
    {
      c with
      Equery.src = map_endpoint c.Equery.src;
      dst = map_endpoint c.Equery.dst;
    }
  in
  let edge_map = Hashtbl.create 8 in
  Array.iteri (fun new_i old_i -> Hashtbl.replace edge_map old_i new_i) sel;
  let allen =
    List.filter_map
      (fun (i, r, j) ->
        match (Hashtbl.find_opt edge_map i, Hashtbl.find_opt edge_map j) with
        | Some i', Some j' -> Some ((i', r, j'))
        | _ -> None)
      (Equery.allen eq)
  in
  let eq' =
    Equery.make
      ~anti:(List.map map_clause (Equery.anti eq))
      ~semi:(List.map map_clause (Equery.semi eq))
      ~allen
      ?agg:(Equery.agg eq) q'
  in
  (eq', sel)

let random_query ~seed ~n_labels ~max_edges ~window =
  let rng = Random.State.make [| seed; 0x51ab |] in
  let n_edges = 1 + Random.State.int rng (max max_edges 1) in
  let n_vars = 1 + Random.State.int rng (n_edges + 2) in
  let used = Array.make n_vars false in
  let pick_used_or_any () =
    let used_vars =
      Array.to_list (Array.mapi (fun i u -> (i, u)) used)
      |> List.filter_map (fun (i, u) -> if u then Some i else None)
    in
    if used_vars = [] || Random.State.int rng 5 = 0 then
      Random.State.int rng n_vars
    else List.nth used_vars (Random.State.int rng (List.length used_vars))
  in
  let edges =
    List.init n_edges (fun _ ->
        let a = pick_used_or_any () in
        let b =
          if Random.State.int rng 12 = 0 then a (* occasional self loop *)
          else Random.State.int rng n_vars
        in
        used.(a) <- true;
        used.(b) <- true;
        let lbl =
          if Random.State.int rng 8 = 0 then Query.any_label
          else Random.State.int rng n_labels
        in
        if Random.State.bool rng then (lbl, a, b) else (lbl, b, a))
  in
  Query.make ~n_vars ~edges ~window

let random_equery ~seed ~n_labels ~max_edges ~window =
  decorate_query ~seed:((seed * 7) + 1) ~n_labels
    (random_query ~seed ~n_labels ~max_edges ~window)

let equery_gen ~n_labels ~max_edges ~window st =
  random_equery ~seed:(Random.State.bits st) ~n_labels ~max_edges ~window
