open Semantics

let random_graph ~seed ~n_vertices ~n_edges ~n_labels ~domain ~max_len () =
  let rng = Random.State.make [| seed; 0xbeef |] in
  let labels =
    Tgraph.Label.of_names (Array.init n_labels (Printf.sprintf "l%d"))
  in
  let b = Tgraph.Graph.Builder.create ~labels () in
  for _ = 1 to n_edges do
    let src = Random.State.int rng n_vertices in
    let dst = Random.State.int rng n_vertices in
    let lbl = Random.State.int rng n_labels in
    let ts = Random.State.int rng domain in
    let te = min (domain - 1) (ts + Random.State.int rng (max 1 max_len)) in
    ignore (Tgraph.Graph.Builder.add_edge b ~src ~dst ~lbl ~ts ~te)
  done;
  Tgraph.Graph.Builder.finish b

(* A pool of query patterns over [n_labels] labels; windows are chosen by
   the caller. Includes shapes with shared unbound endpoints and repeated
   labels to stress consistency checking. *)
let query_pool ~n_labels ~window =
  let l i = i mod n_labels in
  [
    (* 2-star *)
    Query.make ~n_vars:3 ~edges:[ (l 0, 0, 1); (l 1, 0, 2) ] ~window;
    (* 3-star *)
    Query.make ~n_vars:4 ~edges:[ (l 0, 0, 1); (l 1, 0, 2); (l 2, 0, 3) ] ~window;
    (* 3-chain *)
    Query.make ~n_vars:4 ~edges:[ (l 0, 0, 1); (l 1, 1, 2); (l 2, 2, 3) ] ~window;
    (* 4-chain *)
    Query.make ~n_vars:5
      ~edges:[ (l 0, 0, 1); (l 1, 1, 2); (l 2, 2, 3); (l 3, 3, 4) ]
      ~window;
    (* triangle *)
    Query.make ~n_vars:3 ~edges:[ (l 0, 0, 1); (l 1, 1, 2); (l 2, 2, 0) ] ~window;
    (* 4-circle *)
    Query.make ~n_vars:4
      ~edges:[ (l 0, 0, 1); (l 1, 1, 2); (l 2, 2, 3); (l 3, 3, 0) ]
      ~window;
    (* parallel query edges (shared endpoints) *)
    Query.make ~n_vars:2 ~edges:[ (l 0, 0, 1); (l 1, 0, 1) ] ~window;
    (* repeated label on a star *)
    Query.make ~n_vars:3 ~edges:[ (l 0, 0, 1); (l 0, 0, 2) ] ~window;
    (* self loop plus spoke *)
    Query.make ~n_vars:2 ~edges:[ (l 0, 0, 0); (l 1, 0, 1) ] ~window;
    (* in-star (edges pointing at the center) *)
    Query.make ~n_vars:3 ~edges:[ (l 0, 1, 0); (l 1, 2, 0) ] ~window;
    (* mixed directions through a middle vertex *)
    Query.make ~n_vars:3 ~edges:[ (l 0, 1, 0); (l 1, 1, 2) ] ~window;
    (* single edge *)
    Query.make ~n_vars:2 ~edges:[ (l 0, 0, 1) ] ~window;
    (* disconnected: two independent edges *)
    Query.make ~n_vars:4 ~edges:[ (l 0, 0, 1); (l 1, 2, 3) ] ~window;
    (* wildcard edge (any label) in a 2-star *)
    Query.make ~n_vars:3
      ~edges:[ (l 0, 0, 1); (Query.any_label, 0, 2) ]
      ~window;
    (* fully unlabeled triangle (the durable-pattern setting) *)
    Query.make ~n_vars:3
      ~edges:
        [
          (Query.any_label, 0, 1); (Query.any_label, 1, 2);
          (Query.any_label, 2, 0);
        ]
      ~window;
  ]

let random_query ~seed ~n_labels ~max_edges ~window =
  let rng = Random.State.make [| seed; 0x51ab |] in
  let n_edges = 1 + Random.State.int rng (max max_edges 1) in
  let n_vars = 1 + Random.State.int rng (n_edges + 2) in
  let used = Array.make n_vars false in
  let pick_used_or_any () =
    let used_vars =
      Array.to_list (Array.mapi (fun i u -> (i, u)) used)
      |> List.filter_map (fun (i, u) -> if u then Some i else None)
    in
    if used_vars = [] || Random.State.int rng 5 = 0 then
      Random.State.int rng n_vars
    else List.nth used_vars (Random.State.int rng (List.length used_vars))
  in
  let edges =
    List.init n_edges (fun _ ->
        let a = pick_used_or_any () in
        let b =
          if Random.State.int rng 12 = 0 then a (* occasional self loop *)
          else Random.State.int rng n_vars
        in
        used.(a) <- true;
        used.(b) <- true;
        let lbl =
          if Random.State.int rng 8 = 0 then Query.any_label
          else Random.State.int rng n_labels
        in
        if Random.State.bool rng then (lbl, a, b) else (lbl, b, a))
  in
  Query.make ~n_vars ~edges ~window
