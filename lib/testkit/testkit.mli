(** Deterministic random inputs for tests, fuzzing and examples:
    uniform random temporal graphs and a pool of query shapes that
    exercises every structural corner of the matcher (shared unbound
    endpoints, repeated labels, self loops, mixed directions,
    disconnected patterns). *)

val random_graph :
  seed:int ->
  n_vertices:int ->
  n_edges:int ->
  n_labels:int ->
  domain:int ->
  max_len:int ->
  unit ->
  Tgraph.Graph.t

val query_pool :
  n_labels:int -> window:Temporal.Interval.t -> Semantics.Query.t list
(** Fifteen query shapes over the first [n_labels] labels, including
    wildcard-labeled patterns. *)

val random_query :
  seed:int ->
  n_labels:int ->
  max_edges:int ->
  window:Temporal.Interval.t ->
  Semantics.Query.t
(** A random pattern: 1..max_edges edges over a random variable set with
    random labels (occasionally the wildcard) and directions; mostly
    connected (each edge prefers an already-used variable), with
    occasional self loops, parallel edges and disconnected components.
    Deterministic in [seed]. *)
