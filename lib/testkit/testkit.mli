(** Deterministic random inputs for tests, fuzzing and examples:
    uniform random temporal graphs and a pool of query shapes that
    exercises every structural corner of the matcher (shared unbound
    endpoints, repeated labels, self loops, mixed directions,
    disconnected patterns). *)

val random_graph :
  seed:int ->
  n_vertices:int ->
  n_edges:int ->
  n_labels:int ->
  domain:int ->
  max_len:int ->
  unit ->
  Tgraph.Graph.t

val query_pool :
  n_labels:int -> window:Temporal.Interval.t -> Semantics.Query.t list
(** Fifteen query shapes over the first [n_labels] labels, including
    wildcard-labeled patterns. *)

val random_query :
  seed:int ->
  n_labels:int ->
  max_edges:int ->
  window:Temporal.Interval.t ->
  Semantics.Query.t
(** A random pattern: 1..max_edges edges over a random variable set with
    random labels (occasionally the wildcard) and directions; mostly
    connected (each edge prefers an already-used variable), with
    occasional self loops, parallel edges and disconnected components.
    Deterministic in [seed]. *)

(** {2 Graph mutators}

    Deterministic surgery on temporal graphs, used by the conformance
    layer to derive metamorphic follow-up inputs and to shrink failing
    reproducers. Every mutator preserves the label table (label ids keep
    their meaning) and the insertion order of surviving edges, so edge
    ids in the result are dense and order-compatible with the input. *)

val filter_map_edges :
  Tgraph.Graph.t ->
  f:(Tgraph.Edge.t -> (int * int * int * int * int) option) ->
  Tgraph.Graph.t * int array
(** [filter_map_edges g ~f] rebuilds [g] in edge-id order: [f e] returns
    [None] to drop edge [e], or [Some (src, dst, lbl, ts, te)] to keep a
    (possibly rewritten) copy. The second component maps each new edge
    id to the old id it came from. The label table is shared with [g]. *)

val drop_edges :
  Tgraph.Graph.t -> keep:(int -> bool) -> Tgraph.Graph.t * int array
(** Keeps exactly the edges whose old id satisfies [keep]; returns the
    new graph and the new-id-to-old-id map. *)

val shift_time : Tgraph.Graph.t -> delta:int -> Tgraph.Graph.t
(** Translates every edge interval by [delta] timestamps. *)

val reverse_time : Tgraph.Graph.t -> anchor:int -> Tgraph.Graph.t
(** Maps every edge interval [ts, te] to [anchor - te, anchor - ts].
    Callers pick [anchor >= max te] to keep timestamps non-negative. *)

val relabel_edges : Tgraph.Graph.t -> perm:int array -> Tgraph.Graph.t
(** Rewrites every edge label [l] to [perm.(l)]; [perm] must be a
    permutation of the label-id range, so the shared table stays valid. *)

val merge_vertices : Tgraph.Graph.t -> keep:int -> drop:int -> Tgraph.Graph.t
(** Redirects every endpoint equal to [drop] onto [keep]. *)

val clamp_edge_interval :
  Tgraph.Graph.t -> edge:int -> Temporal.Interval.t -> Tgraph.Graph.t
(** Replaces the interval of the one edge id [edge]. *)

(** {2 Query mutators} *)

val map_query_labels :
  Semantics.Query.t -> f:(int -> int) -> Semantics.Query.t
(** Rewrites every real label constraint through [f]; wildcard edges are
    preserved untouched. *)

val restrict_query :
  Semantics.Query.t -> keep:int list -> Semantics.Query.t * int array
(** The sub-pattern made of the given edge indices (deduped, evaluated
    in ascending order), with variables renumbered compactly in order of
    appearance; window and duration floor preserved. The second
    component maps each new edge index to the old one.
    @raise Invalid_argument on an empty or out-of-range [keep]. *)

val query_component : Semantics.Query.t -> int -> int list
(** The edge indices of the connected component (edges sharing an
    endpoint variable, ignoring direction) containing edge [i], sorted
    ascending. *)

(** {2 Extended-query generators}

    Random {!Semantics.Equery.t} values for the differential fuzzer and
    property tests: a random core pattern decorated with antijoin and
    semijoin clauses (endpoints drawn from the core's used variables or
    left unconstrained), an occasional Allen constraint between two core
    edges, and an occasional aggregate. *)

val decorate_query :
  seed:int -> n_labels:int -> Semantics.Query.t -> Semantics.Equery.t
(** Random decorations over an existing core pattern: ~40% of queries
    get at least one [NOT]/[EXISTS] clause, ~30% of multi-edge cores get
    an Allen constraint, ~25% get an aggregate ([TOP k] twice as often
    as [COUNT]). Deterministic in [seed]. *)

val random_equery :
  seed:int ->
  n_labels:int ->
  max_edges:int ->
  window:Temporal.Interval.t ->
  Semantics.Equery.t
(** [decorate_query] over [random_query] (both seeded from [seed]). *)

val equery_gen :
  n_labels:int ->
  max_edges:int ->
  window:Temporal.Interval.t ->
  Random.State.t ->
  Semantics.Equery.t
(** {!random_equery} reading its seed from a [Random.State.t] — the
    shape of a [QCheck.Gen.t], so it plugs directly into QCheck
    properties without this library depending on QCheck. *)

val restrict_equery :
  Semantics.Equery.t -> keep:int list -> Semantics.Equery.t * int array
(** {!restrict_query} lifted to extended queries: the core is
    restricted, clause endpoints whose variable was dropped weaken to
    unconstrained, Allen constraints touching a dropped edge are
    removed, and surviving edge indices are remapped. Used by the
    shrinker so decorations stay meaningful on sub-patterns. *)
