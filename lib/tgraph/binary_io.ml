let magic = "TCSQGR\x01\n"

(* all decode-time corruption reports go through the shared typed
   load error of the codecs *)
let malformed fmt = Printf.ksprintf (fun msg -> raise (Io.Malformed msg)) fmt

(* ---- varint (LEB128, zig-zag for signed deltas) ---- *)

let write_uvarint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag v = (v lsr 1) lxor (-(v land 1))
let write_svarint buf v = write_uvarint buf (zigzag v)

type reader = { data : bytes; mutable pos : int }

let read_byte r =
  if r.pos >= Bytes.length r.data then
    malformed "Binary_io: truncated input at byte %d" r.pos;
  let b = Char.code (Bytes.get r.data r.pos) in
  r.pos <- r.pos + 1;
  b

let read_uvarint r =
  let rec go shift acc =
    if shift > 62 then malformed "Binary_io: varint too long";
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_svarint r = unzigzag (read_uvarint r)

(* ---- encode ---- *)

let to_bytes g =
  let buf = Buffer.create (64 + (Graph.n_edges g * 6)) in
  Buffer.add_string buf magic;
  let names = Label.names (Graph.labels g) in
  write_uvarint buf (Array.length names);
  Array.iter
    (fun n ->
      write_uvarint buf (String.length n);
      Buffer.add_string buf n)
    names;
  write_uvarint buf (Graph.n_vertices g);
  write_uvarint buf (Graph.n_edges g);
  (* edges in id order; delta-encode ts against the previous edge's ts
     (insertion order is usually roughly chronological) *)
  let prev_ts = ref 0 in
  Graph.iter_edges
    (fun e ->
      write_uvarint buf (Edge.src e);
      write_uvarint buf (Edge.dst e);
      write_uvarint buf (Edge.lbl e);
      write_svarint buf (Edge.ts e - !prev_ts);
      write_uvarint buf (Edge.te e - Edge.ts e);
      prev_ts := Edge.ts e)
    g;
  Buffer.to_bytes buf

(* ---- decode ---- *)

let of_bytes data =
  let r = { data; pos = 0 } in
  let m = Bytes.create (String.length magic) in
  String.iteri (fun i _ -> Bytes.set m i (Char.chr (read_byte r))) magic;
  if Bytes.to_string m <> magic then
    malformed "Binary_io: bad magic (not a tcsq graph file, or wrong version)";
  let n_labels = read_uvarint r in
  if n_labels > 1_000_000 then malformed "Binary_io: implausible label count";
  let names =
    Array.init n_labels (fun _ ->
        let len = read_uvarint r in
        if len > 4096 then malformed "Binary_io: implausible label length";
        String.init len (fun _ -> Char.chr (read_byte r)))
  in
  let labels = Label.of_names names in
  let n_vertices = read_uvarint r in
  let n_edges = read_uvarint r in
  let b = Graph.Builder.create ~labels () in
  let prev_ts = ref 0 in
  for i = 0 to n_edges - 1 do
    let src = read_uvarint r in
    let dst = read_uvarint r in
    let lbl = read_uvarint r in
    let ts = !prev_ts + read_svarint r in
    let len = read_uvarint r in
    if src >= n_vertices || dst >= n_vertices then
      malformed "Binary_io: edge %d endpoint out of range" i;
    if lbl >= n_labels then
      malformed "Binary_io: edge %d label out of range" i;
    prev_ts := ts;
    ignore (Graph.Builder.add_edge b ~src ~dst ~lbl ~ts ~te:(ts + len))
  done;
  if r.pos <> Bytes.length data then
    malformed "Binary_io: trailing bytes after the edge table";
  Graph.Builder.finish b

let save g path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes g))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let data = Bytes.create len in
      really_input ic data 0 len;
      of_bytes data)
