(** A compact binary container for temporal graphs.

    Layout: an 8-byte magic ["TCSQGR\x01\n"], the label table
    (length-prefixed UTF-8 strings), then the edge table as
    variable-length integers (LEB128-style), with sources and timestamps
    delta-encoded against the previous edge for density. Loads 5-10x
    faster than CSV and is typically several times smaller.

    The format is self-describing and versioned; {!load} validates the
    magic, version and every bound, raising {!Io.Malformed} with a
    located message on corruption. *)

val save : Graph.t -> string -> unit

val load : string -> Graph.t
(** @raise Io.Malformed on corrupt input. *)

val to_bytes : Graph.t -> bytes

val of_bytes : bytes -> Graph.t
(** @raise Io.Malformed on corrupt input. *)
