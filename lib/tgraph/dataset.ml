type name = Yellow | Green | Bike | Divvy | Stack | Caida

let all = [| Yellow; Green; Bike; Divvy; Stack; Caida |]

let to_string = function
  | Yellow -> "yellow"
  | Green -> "green"
  | Bike -> "bike"
  | Divvy -> "divvy"
  | Stack -> "stack"
  | Caida -> "caida"

let of_string s =
  match String.lowercase_ascii s with
  | "yellow" -> Some Yellow
  | "green" -> Some Green
  | "bike" -> Some Bike
  | "divvy" -> Some Divvy
  | "stack" -> Some Stack
  | "caida" -> Some Caida
  | _ -> None

let describe = function
  | Yellow -> "NYC yellow taxi analogue: grid roads, long intervals"
  | Green -> "NYC green taxi analogue: grid roads, long intervals"
  | Bike -> "NYC bike-trip analogue: grid roads, short intervals"
  | Divvy -> "Chicago bike-trip analogue: grid roads, short intervals"
  | Stack -> "StackOverflow analogue: steep power-law, long-lived threads"
  | Caida -> "CAIDA AS-relationship analogue: power-law, long-lived edges"

(* Vertex counts are kept small relative to edge counts to preserve the
   paper's edges-per-vertex density (e.g. NYC taxi: 265 zones, millions
   of trips); interval lengths relative to the domain preserve each
   network's temporal-selectivity profile. *)
let base_config name : Generator.config =
  match name with
  | Yellow ->
      {
        topology = Grid { rows = 16; cols = 16 };
        n_edges = 60_000;
        n_labels = 8;
        domain = 100_000;
        mean_duration = 2_000.0;
        label_affinity = None;
        seed = 11;
      }
  | Green ->
      {
        topology = Grid { rows = 14; cols = 14 };
        n_edges = 45_000;
        n_labels = 8;
        domain = 100_000;
        mean_duration = 1_500.0;
        label_affinity = None;
        seed = 12;
      }
  | Bike ->
      {
        topology = Grid { rows = 15; cols = 15 };
        n_edges = 55_000;
        n_labels = 8;
        domain = 10_000;
        mean_duration = 80.0;
        label_affinity = None;
        seed = 13;
      }
  | Divvy ->
      {
        topology = Grid { rows = 13; cols = 13 };
        n_edges = 40_000;
        n_labels = 8;
        domain = 10_000;
        mean_duration = 60.0;
        label_affinity = None;
        seed = 14;
      }
  | Stack ->
      (* steep power law (selective topology) with long-lived threads
         (unselective time): the regime where the paper's T^P method
         loses its advantage *)
      {
        topology = Power_law { n_vertices = 1_500; exponent = 1.3 };
        n_edges = 50_000;
        n_labels = 12;
        domain = 100_000;
        mean_duration = 8_000.0;
        label_affinity = Some 5;
        seed = 15;
      }
  | Caida ->
      {
        topology = Power_law { n_vertices = 800; exponent = 1.1 };
        n_edges = 45_000;
        n_labels = 10;
        domain = 100_000;
        mean_duration = 25_000.0;
        label_affinity = Some 4;
        seed = 16;
      }

let config ?(scale = 1.0) name =
  let cfg = base_config name in
  if scale <= 0.0 then invalid_arg "Dataset.config: scale must be positive";
  if scale = 1.0 then cfg
  else
    Generator.with_edges cfg
      (max 1 (int_of_float (float_of_int cfg.Generator.n_edges *. scale)))

let cache : (string * float, Graph.t) Hashtbl.t = Hashtbl.create 8

let graph ?(scale = 1.0) name =
  let key = (to_string name, scale) in
  match Hashtbl.find_opt cache key with
  | Some g -> g
  | None ->
      let g = Generator.generate (config ~scale name) in
      Hashtbl.add cache key g;
      g

let is_transportation = function
  | Yellow | Green | Bike | Divvy -> true
  | Stack | Caida -> false
