(** The six experiment datasets.

    Synthetic stand-ins for the paper's Table III networks, shaped to
    match each network's published profile (see DESIGN.md §3):

    - [Yellow], [Green]: NYC taxi trips — grid road topology, heavy
      multi-edges, {e long} intervals relative to the domain;
    - [Bike], [Divvy]: bike trips — grid topology, {e short} intervals;
    - [Stack]: StackOverflow interactions — power-law topology, many
      vertices, medium intervals;
    - [Caida]: autonomous-system relationships — power-law topology,
      very long-lived edges. *)

type name = Yellow | Green | Bike | Divvy | Stack | Caida

val all : name array
val to_string : name -> string

val of_string : string -> name option
(** Case-insensitive. *)

val config : ?scale:float -> name -> Generator.config
(** The generator configuration; [scale] multiplies the edge count
    (default [1.0], ~40-60K edges per dataset). *)

val graph : ?scale:float -> name -> Graph.t
(** [graph name] generates the dataset (deterministic; results are
    memoized per [(name, scale)] within a process). *)

val is_transportation : name -> bool
(** Yellow, Green, Bike, Divvy: the subset used by Fig. 11. *)

val describe : name -> string
