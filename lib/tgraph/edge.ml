type t = {
  id : int;
  src : int;
  dst : int;
  lbl : int;
  ivl : Temporal.Interval.t;
}

let make ~id ~src ~dst ~lbl ivl = { id; src; dst; lbl; ivl }
let id e = e.id
let src e = e.src
let dst e = e.dst
let lbl e = e.lbl
let ivl e = e.ivl
let ts e = Temporal.Interval.ts e.ivl
let te e = Temporal.Interval.te e.ivl
let to_span e = Temporal.Span_item.make e.id e.ivl

let compare_by_start a b =
  let c = Temporal.Interval.compare a.ivl b.ivl in
  if c <> 0 then c else Int.compare a.id b.id

let compare_chain cs = List.fold_left (fun acc c -> if acc <> 0 then acc else c) 0 cs

let compare_lsd a b =
  compare_chain
    [
      Int.compare a.lbl b.lbl;
      Int.compare a.src b.src;
      Int.compare a.dst b.dst;
      compare_by_start a b;
    ]

let compare_lds a b =
  compare_chain
    [
      Int.compare a.lbl b.lbl;
      Int.compare a.dst b.dst;
      Int.compare a.src b.src;
      compare_by_start a b;
    ]

let compare_ls a b =
  compare_chain
    [ Int.compare a.lbl b.lbl; Int.compare a.src b.src; compare_by_start a b ]

let compare_ld a b =
  compare_chain
    [ Int.compare a.lbl b.lbl; Int.compare a.dst b.dst; compare_by_start a b ]

let equal a b = a.id = b.id

let pp fmt e =
  Format.fprintf fmt "e%d:%d-[%d]->%d@%a" e.id e.src e.lbl e.dst
    Temporal.Interval.pp e.ivl
