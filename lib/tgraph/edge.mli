(** A temporal edge: directed, labeled, valid on a closed time interval.

    Edge ids are dense (the position in the graph's edge table) and are
    the payloads carried through every temporal relation. *)

type t = {
  id : int;
  src : int;
  dst : int;
  lbl : int;
  ivl : Temporal.Interval.t;
}

val make :
  id:int -> src:int -> dst:int -> lbl:int -> Temporal.Interval.t -> t

val id : t -> int
val src : t -> int
val dst : t -> int
val lbl : t -> int
val ivl : t -> Temporal.Interval.t
val ts : t -> int
val te : t -> int

val to_span : t -> Temporal.Span_item.t
(** The edge as a span item (payload = edge id). *)

val compare_by_start : t -> t -> int
(** (start, end, id): the TSR storage order. *)

val compare_lsd : t -> t -> int
(** (label, source, destination, start, id): the LSD trie order. *)

val compare_lds : t -> t -> int
(** (label, destination, source, start, id): the LDS trie order. *)

val compare_ls : t -> t -> int
(** (label, source, start, id): the temporal LS index order — within one
    (label, source) group edges are start-sorted, i.e. each group is the
    TSR R(l, s, ANY). *)

val compare_ld : t -> t -> int
(** (label, destination, start, id): the temporal LD index order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
