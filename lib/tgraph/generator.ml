type topology =
  | Grid of { rows : int; cols : int }
  | Power_law of { n_vertices : int; exponent : float }
  | Uniform_random of { n_vertices : int }

type config = {
  topology : topology;
  n_edges : int;
  n_labels : int;
  domain : int;
  mean_duration : float;
  label_affinity : int option;
  seed : int;
}

let label_name i =
  (* a, b, ..., z, aa, ab, ... *)
  let rec go i acc =
    let acc = String.make 1 (Char.chr (Char.code 'a' + (i mod 26))) :: acc in
    if i < 26 then String.concat "" acc else go ((i / 26) - 1) acc
  in
  go i []

(* Zipf-like sampler: cumulative weights 1/(i+1)^exponent, inverted by
   binary search. *)
let make_zipf rng n exponent =
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) exponent);
    cum.(i) <- !total
  done;
  fun () ->
    let u = Random.State.float rng !total in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo

let sample_duration rng mean =
  (* Geometric-like: exponential sample rounded up, so the mean parameter
     controls the long-vs-short interval profile. *)
  let u = Random.State.float rng 1.0 in
  let d = -.mean *. log (1.0 -. u) in
  max 1 (int_of_float (Float.round d))

let generate cfg =
  if cfg.n_edges < 0 then invalid_arg "Generator.generate: negative n_edges";
  if cfg.n_labels <= 0 then invalid_arg "Generator.generate: need labels";
  if cfg.domain <= 0 then invalid_arg "Generator.generate: need a domain";
  let rng = Random.State.make [| cfg.seed; 0x7c5; cfg.n_edges |] in
  let labels =
    Label.of_names (Array.init cfg.n_labels label_name)
  in
  let b = Graph.Builder.create ~labels () in
  let sample_endpoints =
    match cfg.topology with
    | Grid { rows; cols } ->
        if rows < 2 || cols < 2 then
          invalid_arg "Generator.generate: grid needs at least 2x2";
        (* Mostly 4-neighbour street segments, with occasional diagonal
           shortcuts (real road networks are not bipartite; without the
           diagonals no triangle pattern could ever match). *)
        let cardinal = [ (0, 1); (0, -1); (1, 0); (-1, 0) ] in
        let diagonal = [ (1, 1); (1, -1); (-1, 1); (-1, -1) ] in
        fun () ->
          let r = Random.State.int rng rows
          and c = Random.State.int rng cols in
          let pool =
            if Random.State.int rng 5 = 0 then diagonal else cardinal
          in
          let dirs =
            List.filter
              (fun (dr, dc) ->
                let r' = r + dr and c' = c + dc in
                r' >= 0 && r' < rows && c' >= 0 && c' < cols)
              pool
          in
          let dr, dc = List.nth dirs (Random.State.int rng (List.length dirs)) in
          ((r * cols) + c, ((r + dr) * cols) + (c + dc))
    | Power_law { n_vertices; exponent } ->
        if n_vertices < 2 then
          invalid_arg "Generator.generate: need at least 2 vertices";
        let zipf = make_zipf rng n_vertices exponent in
        (* Random vertex relabeling so hub ids are scattered. *)
        let perm = Array.init n_vertices (fun i -> i) in
        for i = n_vertices - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let tmp = perm.(i) in
          perm.(i) <- perm.(j);
          perm.(j) <- tmp
        done;
        fun () ->
          let src = perm.(zipf ()) in
          let rec pick_dst () =
            let dst = perm.(zipf ()) in
            if dst = src then pick_dst () else dst
          in
          (src, pick_dst ())
    | Uniform_random { n_vertices } ->
        if n_vertices < 2 then
          invalid_arg "Generator.generate: need at least 2 vertices";
        fun () ->
          let src = Random.State.int rng n_vertices in
          let rec pick_dst () =
            let dst = Random.State.int rng n_vertices in
            if dst = src then pick_dst () else dst
          in
          (src, pick_dst ())
  in
  (* Label frequencies are Zipf-skewed, as in real edge-labeled graphs;
     the skew is what gives label combinations diverse selectivities. *)
  let global_label = make_zipf rng cfg.n_labels 1.0 in
  let sample_label =
    match cfg.label_affinity with
    | None -> fun _src -> global_label ()
    | Some k ->
        if k <= 0 || k > cfg.n_labels then
          invalid_arg "Generator.generate: label_affinity out of range";
        (* Per-vertex allowed label sets, drawn lazily but deterministically
           in first-visit order from the same stream. *)
        let affinity : (int, int array) Hashtbl.t = Hashtbl.create 1024 in
        fun src ->
          let allowed =
            match Hashtbl.find_opt affinity src with
            | Some a -> a
            | None ->
                let seen = Hashtbl.create k in
                let a = Array.make k 0 in
                let n = ref 0 in
                while !n < k do
                  let l = global_label () in
                  if not (Hashtbl.mem seen l) then begin
                    Hashtbl.add seen l ();
                    a.(!n) <- l;
                    incr n
                  end
                done;
                Hashtbl.add affinity src a;
                a
          in
          allowed.(Random.State.int rng k)
  in
  for _ = 1 to cfg.n_edges do
    let src, dst = sample_endpoints () in
    let lbl = sample_label src in
    let ts = Random.State.int rng cfg.domain in
    let te = min (cfg.domain - 1) (ts + sample_duration rng cfg.mean_duration - 1) in
    ignore (Graph.Builder.add_edge b ~src ~dst ~lbl ~ts ~te)
  done;
  Graph.Builder.finish b

let with_edges cfg n = { cfg with n_edges = n }
