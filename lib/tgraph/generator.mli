(** Deterministic synthetic temporal-graph generators.

    These stand in for the paper's real datasets (see DESIGN.md §3): each
    generator reproduces a topology family (grid road network, power-law
    social/AS network, uniform random) and an interval-length profile
    (long vs short relative to the time domain), which are the properties
    the paper's selectivity arguments depend on. *)

type topology =
  | Grid of { rows : int; cols : int }
      (** road network: vertices are intersections, edges connect
          4-neighbours; heavy multi-edges over time *)
  | Power_law of { n_vertices : int; exponent : float }
      (** social / AS topology: endpoints drawn from a Zipf-like
          distribution with the given exponent *)
  | Uniform_random of { n_vertices : int }

type config = {
  topology : topology;
  n_edges : int;
  n_labels : int;
  domain : int;  (** timestamps range over [0, domain - 1] *)
  mean_duration : float;
      (** mean edge-interval length; durations are geometric-like with
          this mean, truncated to the domain *)
  label_affinity : int option;
      (** when [Some k], every vertex supports only [k] of the labels and
          its out-edges draw from that subset. This decouples label
          frequency from combination selectivity: each label stays
          frequent while specific label combinations at one vertex stay
          rare — the "topologically selective" regime of the paper's
          Stack/CAIDA networks. [None]: labels are Zipf-drawn globally. *)
  seed : int;
}

val generate : config -> Graph.t
(** Deterministic in [config] (including [seed]). Labels are named
    ["a"], ["b"], ... in id order. *)

val with_edges : config -> int -> config
(** [with_edges c n] is [c] resized to [n] edges (size sweeps). *)
