type t = {
  labels : Label.t;
  edges : Edge.t array;
  n_vertices : int;
}

module Builder = struct
  type t = {
    labels : Label.t;
    acc : Edge.t Temporal.Vec.t;
    mutable max_vertex : int;
  }

  let create ?labels () =
    let labels = match labels with Some l -> l | None -> Label.create () in
    { labels; acc = Temporal.Vec.create (); max_vertex = -1 }

  let add_edge b ~src ~dst ~lbl ~ts ~te =
    if src < 0 || dst < 0 then
      invalid_arg
        (Printf.sprintf "Graph.Builder.add_edge: negative vertex (%d, %d)" src
           dst);
    if lbl < 0 || lbl >= Label.count b.labels then
      invalid_arg (Printf.sprintf "Graph.Builder.add_edge: unknown label %d" lbl);
    let ivl = Temporal.Interval.make ts te in
    let id = Temporal.Vec.length b.acc in
    Temporal.Vec.push b.acc (Edge.make ~id ~src ~dst ~lbl ivl);
    b.max_vertex <- max b.max_vertex (max src dst);
    id

  let add_edge_named b ~src ~dst ~lbl ~ts ~te =
    let lbl = Label.intern b.labels lbl in
    add_edge b ~src ~dst ~lbl ~ts ~te

  let n_edges b = Temporal.Vec.length b.acc

  let finish b =
    {
      labels = b.labels;
      edges = Temporal.Vec.to_array b.acc;
      n_vertices = b.max_vertex + 1;
    }
end

let labels g = g.labels
let n_vertices g = g.n_vertices
let n_edges g = Array.length g.edges
let n_labels g = Label.count g.labels

let edge g i =
  if i < 0 || i >= Array.length g.edges then
    invalid_arg (Printf.sprintf "Graph.edge: unknown edge id %d" i);
  g.edges.(i)

let edges g = g.edges
let iter_edges f g = Array.iter f g.edges
let fold_edges f init g = Array.fold_left f init g.edges

let time_domain g =
  if Array.length g.edges = 0 then invalid_arg "Graph.time_domain: empty graph";
  let ts = ref max_int and te = ref min_int in
  Array.iter
    (fun e ->
      ts := min !ts (Edge.ts e);
      te := max !te (Edge.te e))
    g.edges;
  Temporal.Interval.make !ts !te

let window_of_fraction g ~frac ~at =
  if frac <= 0.0 || frac > 1.0 then
    invalid_arg "Graph.window_of_fraction: frac must be in (0, 1]";
  if at < 0.0 || at > 1.0 then
    invalid_arg "Graph.window_of_fraction: at must be in [0, 1]";
  let domain = time_domain g in
  let total = Temporal.Interval.length domain in
  let width = max 1 (int_of_float (Float.round (float_of_int total *. frac))) in
  let slack = total - width in
  let offset = int_of_float (Float.round (float_of_int slack *. at)) in
  let ws = Temporal.Interval.ts domain + offset in
  Temporal.Interval.make ws (ws + width - 1)

let prefix g k =
  if k < 0 || k > Array.length g.edges then
    invalid_arg (Printf.sprintf "Graph.prefix: bad edge count %d" k);
  let edges = Array.sub g.edges 0 k in
  let max_vertex = ref (-1) in
  Array.iter
    (fun e -> max_vertex := max !max_vertex (max (Edge.src e) (Edge.dst e)))
    edges;
  { labels = g.labels; edges; n_vertices = !max_vertex + 1 }

let of_edge_list ?labels l =
  let b = Builder.create ?labels () in
  List.iter
    (fun (src, dst, lbl, ts, te) ->
      (* Materialize label ids 0..lbl on demand so numeric test inputs
         stay terse. *)
      while Label.count (b.Builder.labels) <= lbl do
        ignore (Label.intern b.Builder.labels
                  (Printf.sprintf "l%d" (Label.count b.Builder.labels)))
      done;
      ignore (Builder.add_edge b ~src ~dst ~lbl ~ts ~te))
    l;
  Builder.finish b

let append g l =
  let n = Array.length g.edges in
  let extra =
    List.mapi
      (fun i (src, dst, lbl, ts, te) ->
        if src < 0 || dst < 0 then
          invalid_arg "Graph.append: negative vertex";
        if lbl < 0 || lbl >= Label.count g.labels then
          invalid_arg (Printf.sprintf "Graph.append: unknown label %d" lbl);
        Edge.make ~id:(n + i) ~src ~dst ~lbl (Temporal.Interval.make ts te))
      l
  in
  let edges = Array.append g.edges (Array.of_list extra) in
  let max_vertex = ref (g.n_vertices - 1) in
  List.iter
    (fun e -> max_vertex := max !max_vertex (max (Edge.src e) (Edge.dst e)))
    extra;
  { g with edges; n_vertices = !max_vertex + 1 }

let size_words g = 3 + (8 * Array.length g.edges)

let pp_summary fmt g =
  Format.fprintf fmt "graph{|V|=%d |E|=%d |L|=%d%t}" (n_vertices g) (n_edges g)
    (n_labels g) (fun fmt ->
      if n_edges g > 0 then
        Format.fprintf fmt " domain=%a" Temporal.Interval.pp (time_domain g))
