(** An immutable temporal graph: a dense table of temporal edges plus the
    label table. Vertices are the integers [0 .. n_vertices - 1]; any
    vertex id used by an edge materializes the range up to it.

    Build one with {!Builder}, a generator ({!Generator}), or the CSV
    loader ({!Io}). *)

type t

module Builder : sig
  type graph := t
  type t

  val create : ?labels:Label.t -> unit -> t

  val add_edge : t -> src:int -> dst:int -> lbl:int -> ts:int -> te:int -> int
  (** Adds an edge and returns its id (dense, insertion-ordered).
      @raise Invalid_argument on negative vertices, an unknown label id,
      or [te < ts]. *)

  val add_edge_named :
    t -> src:int -> dst:int -> lbl:string -> ts:int -> te:int -> int
  (** Like {!add_edge}, interning the label string. *)

  val n_edges : t -> int
  val finish : t -> graph
end

val labels : t -> Label.t
val n_vertices : t -> int
val n_edges : t -> int
val n_labels : t -> int

val edge : t -> int -> Edge.t
(** @raise Invalid_argument on an out-of-range edge id. *)

val edges : t -> Edge.t array
(** The edge table, indexed by edge id. Do not mutate. *)

val iter_edges : (Edge.t -> unit) -> t -> unit
val fold_edges : ('a -> Edge.t -> 'a) -> 'a -> t -> 'a

val time_domain : t -> Temporal.Interval.t
(** The smallest interval covering every edge.
    @raise Invalid_argument on an empty graph. *)

val window_of_fraction : t -> frac:float -> at:float -> Temporal.Interval.t
(** [window_of_fraction g ~frac ~at] is a query window spanning [frac]
    (in (0, 1]) of the time domain, positioned so that its start sits at
    relative offset [at] (in [0, 1]) of the available slack. Used by the
    workload generator's window-fraction parameter. *)

val prefix : t -> int -> t
(** [prefix g k] is the subgraph of the first [k] edges (by id), with the
    same label table: the paper's network-size subsets (Fig. 12d-e). *)

val of_edge_list : ?labels:Label.t -> (int * int * int * int * int) list -> t
(** [of_edge_list [(src, dst, lbl, ts, te); ...]] is a convenience
    constructor for tests and examples. *)

val append : t -> (int * int * int * int * int) list -> t
(** [append g [(src, dst, lbl, ts, te); ...]] is [g] plus the given
    edges, whose ids continue [g]'s; the label table is shared (labels
    must already be interned).
    @raise Invalid_argument on invalid vertices, labels or intervals. *)

val size_words : t -> int
val pp_summary : Format.formatter -> t -> unit
