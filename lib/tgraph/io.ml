exception Malformed of string

let malformed fmt = Printf.ksprintf (fun msg -> raise (Malformed msg)) fmt

let to_channel g oc =
  let labels = Graph.labels g in
  output_string oc "# src,dst,label,ts,te\n";
  Graph.iter_edges
    (fun e ->
      Printf.fprintf oc "%d,%d,%s,%d,%d\n" (Edge.src e) (Edge.dst e)
        (Label.name labels (Edge.lbl e))
        (Edge.ts e) (Edge.te e))
    g

let save g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel g oc)

let parse_line ~source ~line_no b line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then ()
  else
    match String.split_on_char ',' line with
    | [ src; dst; lbl; ts; te ] -> (
        match
          ( int_of_string_opt (String.trim src),
            int_of_string_opt (String.trim dst),
            int_of_string_opt (String.trim ts),
            int_of_string_opt (String.trim te) )
        with
        | Some src, Some dst, Some ts, Some te -> (
            try
              ignore
                (Graph.Builder.add_edge_named b ~src ~dst
                   ~lbl:(String.trim lbl) ~ts ~te)
            with Invalid_argument msg ->
              malformed "%s:%d: invalid edge in %S (%s)" source line_no line
                msg)
        | None, _, _, _ | _, None, _, _ | _, _, None, _ | _, _, _, None ->
            malformed "%s:%d: malformed integer field in %S" source line_no
              line)
    | _ ->
        malformed "%s:%d: expected 5 comma-separated fields in %S" source
          line_no line

let of_channel ?(source = "<channel>") ic =
  let b = Graph.Builder.create () in
  let line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       parse_line ~source ~line_no:!line_no b line
     done
   with End_of_file -> ());
  Graph.Builder.finish b

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_channel ~source:path ic)

let load_contacts ?(label = "contact") ~duration path =
  if duration < 1 then invalid_arg "Io.load_contacts: duration must be >= 1";
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let b = Graph.Builder.create () in
      let line_no = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           incr line_no;
           if line <> "" && line.[0] <> '#' then begin
             let fields =
               String.split_on_char ' ' line
               |> List.concat_map (String.split_on_char '\t')
               |> List.filter (fun f -> f <> "")
             in
             match fields with
             | [ src; dst; ts ] -> (
                 match
                   ( int_of_string_opt src,
                     int_of_string_opt dst,
                     int_of_string_opt ts )
                 with
                 | Some src, Some dst, Some ts -> (
                     try
                       ignore
                         (Graph.Builder.add_edge_named b ~src ~dst ~lbl:label
                            ~ts
                            ~te:(ts + duration - 1))
                     with Invalid_argument msg ->
                       malformed "%s:%d: invalid contact in %S (%s)" path
                         !line_no line msg)
                 | _ ->
                     malformed "%s:%d: malformed contact line %S" path
                       !line_no line)
             | _ ->
                 malformed "%s:%d: expected 'src dst timestamp', got %S" path
                   !line_no line
           end
         done
       with End_of_file -> ());
      Graph.Builder.finish b)
