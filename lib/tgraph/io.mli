(** CSV-ish persistence for temporal graphs.

    Line format (one edge per line, '#' comments and blank lines
    ignored):

    {v src,dst,label,ts,te v}

    where [label] is the label string (interned on load). *)

exception Malformed of string
(** The single load-time error of both graph codecs ({!Io} and
    {!Binary_io}): malformed user input — bad field counts, unparsable
    integers, inverted intervals, corrupt binary framing — raises
    [Malformed] with a located, human-readable message. I/O-level
    failures (missing file, permissions) keep raising [Sys_error].
    Programming errors (bad arguments to the API itself) keep raising
    [Invalid_argument]. *)

val save : Graph.t -> string -> unit
(** [save g path] writes [g] to [path]. *)

val load : string -> Graph.t
(** [load path] reads a graph.
    @raise Malformed with a line-numbered message on malformed input. *)

val to_channel : Graph.t -> out_channel -> unit
val of_channel : ?source:string -> in_channel -> Graph.t

val load_contacts : ?label:string -> duration:int -> string -> Graph.t
(** Imports a SNAP-style contact sequence: whitespace-separated
    [src dst timestamp] lines ('#' comments ignored), turning each
    contact into an edge valid for [duration] timestamps from its
    contact time, labeled [label] (default ["contact"]). This is how
    public temporal datasets (e.g. SNAP's email/CollegeMsg networks)
    map onto the interval model.
    @raise Malformed with a line-numbered message on malformed input.
    @raise Invalid_argument when [duration < 1]. *)
