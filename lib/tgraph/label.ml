type t = {
  by_name : (string, int) Hashtbl.t;
  mutable by_id : string array;
  mutable count : int;
}

let create () = { by_name = Hashtbl.create 16; by_id = [||]; count = 0 }

let grow t =
  let capacity = max 4 (2 * Array.length t.by_id) in
  let by_id = Array.make capacity "" in
  Array.blit t.by_id 0 by_id 0 t.count;
  t.by_id <- by_id

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
      let id = t.count in
      if id = Array.length t.by_id then grow t;
      t.by_id.(id) <- name;
      t.count <- id + 1;
      Hashtbl.add t.by_name name id;
      id

let find t name = Hashtbl.find_opt t.by_name name

let name t id =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Label.name: unknown label id %d" id);
  t.by_id.(id)

let count t = t.count
let names t = Array.sub t.by_id 0 t.count

let of_names arr =
  let t = create () in
  Array.iter
    (fun n ->
      if Hashtbl.mem t.by_name n then
        invalid_arg (Printf.sprintf "Label.of_names: duplicate label %S" n);
      ignore (intern t n))
    arr;
  t
