(** Edge label interning: a bidirectional map between label strings and
    dense integer ids.

    Every index in the system keys labels by their dense id; the table is
    only consulted at the input/output boundary. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** [intern t name] is the id of [name], allocating the next dense id on
    first sight. *)

val find : t -> string -> int option
(** The id of [name] if it was interned. *)

val name : t -> int -> string
(** [name t id] is the string of [id].
    @raise Invalid_argument on an unknown id. *)

val count : t -> int
(** Number of distinct labels interned so far. *)

val names : t -> string array
(** All label names, indexed by id. *)

val of_names : string array -> t
(** Pre-populated table; ids follow array order.
    @raise Invalid_argument on duplicate names. *)
