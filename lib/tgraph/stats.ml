type t = {
  n_vertices : int;
  n_edges : int;
  n_labels : int;
  domain : Temporal.Interval.t option;
  mean_interval_length : float;
  median_interval_length : int;
  max_interval_length : int;
  mean_out_degree : float;
  max_out_degree : int;
  max_in_degree : int;
  mean_parallelism : float;
}

let compute g =
  let n_edges = Graph.n_edges g in
  let n_vertices = Graph.n_vertices g in
  if n_edges = 0 then
    {
      n_vertices;
      n_edges;
      n_labels = Graph.n_labels g;
      domain = None;
      mean_interval_length = 0.0;
      median_interval_length = 0;
      max_interval_length = 0;
      mean_out_degree = 0.0;
      max_out_degree = 0;
      max_in_degree = 0;
      mean_parallelism = 0.0;
    }
  else begin
    let lengths = Array.make n_edges 0 in
    let out_deg = Array.make (max 1 n_vertices) 0 in
    let in_deg = Array.make (max 1 n_vertices) 0 in
    let sum_len = ref 0 in
    Graph.iter_edges
      (fun e ->
        let len = Temporal.Interval.length (Edge.ivl e) in
        lengths.(Edge.id e) <- len;
        sum_len := !sum_len + len;
        out_deg.(Edge.src e) <- out_deg.(Edge.src e) + 1;
        in_deg.(Edge.dst e) <- in_deg.(Edge.dst e) + 1)
      g;
    Array.sort Int.compare lengths;
    let max_out = Array.fold_left max 0 out_deg in
    let max_in = Array.fold_left max 0 in_deg in
    (* Parallelism: group edges by (label, source); within each group,
       for each edge count the group edges alive at its start time. *)
    let groups = Hashtbl.create 64 in
    Graph.iter_edges
      (fun e ->
        let key = (Edge.lbl e, Edge.src e) in
        let cur = try Hashtbl.find groups key with Not_found -> [] in
        Hashtbl.replace groups key (e :: cur))
      g;
    (* Alive-at-start counts per group via two sorted endpoint arrays:
       alive(t) = #(starts <= t) - #(ends < t). Exact in O(n log n). *)
    let upper_bound a t =
      let lo = ref 0 and hi = ref (Array.length a) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if a.(mid) <= t then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let lower_bound a t =
      let lo = ref 0 and hi = ref (Array.length a) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if a.(mid) < t then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let parallel_sum = ref 0 in
    Hashtbl.iter
      (fun _ es ->
        let starts = Array.of_list (List.map Edge.ts es) in
        let ends = Array.of_list (List.map Edge.te es) in
        Array.sort Int.compare starts;
        Array.sort Int.compare ends;
        List.iter
          (fun e ->
            let t = Edge.ts e in
            parallel_sum :=
              !parallel_sum + upper_bound starts t - lower_bound ends t)
          es)
      groups;
    {
      n_vertices;
      n_edges;
      n_labels = Graph.n_labels g;
      domain = Some (Graph.time_domain g);
      mean_interval_length = float_of_int !sum_len /. float_of_int n_edges;
      median_interval_length = lengths.(n_edges / 2);
      max_interval_length = lengths.(n_edges - 1);
      mean_out_degree = float_of_int n_edges /. float_of_int (max 1 n_vertices);
      max_out_degree = max_out;
      max_in_degree = max_in;
      mean_parallelism = float_of_int !parallel_sum /. float_of_int n_edges;
    }
  end

let pp fmt s =
  Format.fprintf fmt
    "@[<v>|V| = %d@ |E| = %d@ |L| = %d@ domain = %s@ interval length: mean \
     %.2f, median %d, max %d@ out-degree: mean %.2f, max %d@ in-degree max = \
     %d@ parallelism = %.2f@]"
    s.n_vertices s.n_edges s.n_labels
    (match s.domain with
    | None -> "-"
    | Some d -> Temporal.Interval.to_string d)
    s.mean_interval_length s.median_interval_length s.max_interval_length
    s.mean_out_degree s.max_out_degree s.max_in_degree s.mean_parallelism

let pp_table_header fmt () =
  Format.fprintf fmt "%-10s %10s %10s %6s %12s %12s %10s" "network" "|V|" "|E|"
    "|L|" "domain" "mean-ivl" "median-ivl"

let pp_table_row ~name fmt s =
  Format.fprintf fmt "%-10s %10d %10d %6d %12d %12.1f %10d" name s.n_vertices
    s.n_edges s.n_labels
    (match s.domain with None -> 0 | Some d -> Temporal.Interval.length d)
    s.mean_interval_length s.median_interval_length
