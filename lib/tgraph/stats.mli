(** Descriptive statistics of a temporal graph: the columns of the
    paper's Table III plus interval-shape measures used to characterize
    the synthetic datasets. *)

type t = {
  n_vertices : int;
  n_edges : int;
  n_labels : int;
  domain : Temporal.Interval.t option;
  mean_interval_length : float;
  median_interval_length : int;
  max_interval_length : int;
  mean_out_degree : float;
  max_out_degree : int;
  max_in_degree : int;
  mean_parallelism : float;
      (** average number of edges alive at an edge's start time that share
          its (label, source): a proxy for temporal density *)
}

val compute : Graph.t -> t
val pp : Format.formatter -> t -> unit

val pp_table_row : name:string -> Format.formatter -> t -> unit
(** One Table III row: name, |V|, |E|, |L|, domain length, mean/median
    interval length. *)

val pp_table_header : Format.formatter -> unit -> unit
