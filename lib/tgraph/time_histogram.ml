type t = {
  domain_start : int;
  bucket_width : int;
  counts : float array array; (* per label, per bucket *)
  totals : int array; (* per label *)
}

let build ?(n_buckets = 64) g =
  if n_buckets <= 0 then invalid_arg "Time_histogram.build: need buckets";
  let n_labels = Graph.n_labels g in
  if Graph.n_edges g = 0 then
    {
      domain_start = 0;
      bucket_width = 1;
      counts = Array.make (max 1 n_labels) [||];
      totals = Array.make (max 1 n_labels) 0;
    }
  else begin
    let domain = Graph.time_domain g in
    let domain_start = Temporal.Interval.ts domain in
    let total = Temporal.Interval.length domain in
    let bucket_width = max 1 ((total + n_buckets - 1) / n_buckets) in
    let counts = Array.init (max 1 n_labels) (fun _ -> Array.make n_buckets 0.0) in
    let totals = Array.make (max 1 n_labels) 0 in
    let bucket_of t =
      min (n_buckets - 1) (max 0 ((t - domain_start) / bucket_width))
    in
    Graph.iter_edges
      (fun e ->
        let l = Edge.lbl e in
        totals.(l) <- totals.(l) + 1;
        let b0 = bucket_of (Edge.ts e) and b1 = bucket_of (Edge.te e) in
        for b = b0 to b1 do
          counts.(l).(b) <- counts.(l).(b) +. 1.0
        done)
      g;
    { domain_start; bucket_width; counts; totals }
  end

let n_buckets t =
  if Array.length t.counts = 0 then 0 else Array.length t.counts.(0)

let active_in_window t ~lbl ~ws ~we =
  if lbl < 0 || lbl >= Array.length t.counts || we < ws then 0.0
  else begin
    let buckets = t.counts.(lbl) in
    let nb = Array.length buckets in
    if nb = 0 then 0.0
    else begin
      let clamp b = min (nb - 1) (max 0 b) in
      let b0 = clamp ((ws - t.domain_start) / t.bucket_width) in
      let b1 = clamp ((we - t.domain_start) / t.bucket_width) in
      let acc = ref 0.0 in
      for b = b0 to b1 do
        (* scale partial buckets by the window's coverage of them *)
        let bucket_lo = t.domain_start + (b * t.bucket_width) in
        let bucket_hi = bucket_lo + t.bucket_width - 1 in
        let covered =
          float_of_int (min we bucket_hi - max ws bucket_lo + 1)
          /. float_of_int t.bucket_width
        in
        if covered > 0.0 then acc := !acc +. (buckets.(b) *. min 1.0 covered)
      done;
      !acc
    end
  end

let selectivity t ~lbl ~ws ~we =
  if lbl < 0 || lbl >= Array.length t.totals || t.totals.(lbl) = 0 then 1e-9
  else
    min 1.0
      (max 1e-9 (active_in_window t ~lbl ~ws ~we /. float_of_int t.totals.(lbl)))

let size_words t =
  4
  + Array.fold_left (fun acc b -> acc + Array.length b + 1) 0 t.counts
  + Array.length t.totals
