(** Equi-width temporal histograms of edge activity, per label.

    For each label, the time domain is split into a fixed number of
    buckets and each bucket counts the edges alive in it (an edge spans
    every bucket its interval intersects). Query planners use this to
    estimate, for a specific query window, how many edges of a label are
    temporally relevant — much sharper than a global mean interval
    length when activity is bursty. *)

type t

val build : ?n_buckets:int -> Graph.t -> t
(** Default 64 buckets. An empty graph yields a histogram whose
    estimates are all zero. *)

val n_buckets : t -> int

val active_in_window : t -> lbl:int -> ws:int -> we:int -> float
(** Estimated number of label-[lbl] edges alive somewhere in the window
    (sum of intersected buckets, each scaled by the window's coverage of
    the bucket; an upper-bound-flavoured estimate since an edge spanning
    several intersected buckets is counted per bucket). Unknown labels
    estimate 0. *)

val selectivity : t -> lbl:int -> ws:int -> we:int -> float
(** [active_in_window / label count], clamped to [1e-9, 1]: the
    fraction of the label's edges that are temporally relevant to the
    window. *)

val size_words : t -> int
