open Tgraph

type t = { edges : int list; departure : int; arrival : int }

let length j = List.length j.edges

let verify g ~src j =
  match j.edges with
  | [] -> Error "empty journey"
  | first :: _ ->
      let rec walk at time = function
        | [] -> Ok time
        | id :: rest ->
            let e = Graph.edge g id in
            if Edge.src e <> at then
              Error
                (Printf.sprintf "edge %d departs from %d, journey is at %d" id
                   (Edge.src e) at)
            else begin
              (* earliest feasible traversal instant >= current time *)
              let instant = max time (Edge.ts e) in
              if instant > Edge.te e then
                Error
                  (Printf.sprintf
                     "edge %d (valid %s) cannot be traversed at or after %d" id
                     (Temporal.Interval.to_string (Edge.ivl e))
                     time)
              else walk (Edge.dst e) instant rest
            end
      in
      let e0 = Graph.edge g first in
      if Edge.src e0 <> src then Error "journey does not start at the source"
      else if
        j.departure < Edge.ts e0 || j.departure > Edge.te e0
      then Error "departure instant outside the first edge's interval"
      else begin
        match walk src j.departure j.edges with
        | Error _ as e -> e
        | Ok earliest_arrival ->
            (* the claimed arrival must be feasible: it can be any instant
               >= the earliest schedule's arrival that still fits the last
               edge *)
            let last = Graph.edge g (List.nth j.edges (length j - 1)) in
            if j.arrival < earliest_arrival || j.arrival > Edge.te last then
              Error
                (Printf.sprintf
                   "claimed arrival %d infeasible (earliest %d, last edge ends %d)"
                   j.arrival earliest_arrival (Edge.te last))
            else Ok ()
      end

let pp fmt j =
  Format.fprintf fmt "journey(%s; depart %d, arrive %d)"
    (String.concat " -> " (List.map (Printf.sprintf "e%d") j.edges))
    j.departure j.arrival
