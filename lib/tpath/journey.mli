(** Time-respecting journeys over interval temporal graphs.

    The contrast class to temporal-clique matching (the paper's related
    work: TopChain, ChronoGraph, temporal path queries): instead of all
    edges overlapping jointly, a journey traverses edges in sequence at
    non-decreasing times, each traversal instant lying inside its edge's
    validity interval.

    Formally, a journey from [v0] is a sequence of edges [e1; ...; ek]
    with [src e1 = v0], [src e(i+1) = dst e(i)], and traversal instants
    [t1 <= t2 <= ... <= tk] with [ti] inside [ivl ei]. Traversal is
    instantaneous (the interval-contact model). *)

type t = { edges : int list; departure : int; arrival : int }
(** Edge ids in traversal order with the chosen departure instant (the
    traversal time of the first edge) and arrival instant (of the
    last). *)

val length : t -> int

val verify : Tgraph.Graph.t -> src:int -> t -> (unit, string) result
(** Checks connectivity and the existence of a non-decreasing traversal
    schedule starting at [departure] and ending at [arrival]. *)

val pp : Format.formatter -> t -> unit
