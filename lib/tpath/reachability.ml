open Tgraph

type result = {
  graph : Graph.t;
  src : int;
  window_start : int;
  arrivals : int array; (* max_int = unreachable *)
  via : int array; (* arriving edge id, -1 for src/unreachable *)
}

let earliest_arrival ?window g ~src =
  if src < 0 || src >= Graph.n_vertices g then
    invalid_arg (Printf.sprintf "Reachability.earliest_arrival: vertex %d" src);
  let window =
    match window with
    | Some w -> w
    | None ->
        if Graph.n_edges g = 0 then Temporal.Interval.point 0
        else Graph.time_domain g
  in
  let ws = Temporal.Interval.ts window and we = Temporal.Interval.te window in
  let n = Graph.n_vertices g in
  (* out-adjacency: vertex -> edges, start-sorted is not needed; build
     once per call *)
  let out = Array.make n [] in
  Graph.iter_edges
    (fun e ->
      if Edge.te e >= ws && Edge.ts e <= we then
        out.(Edge.src e) <- e :: out.(Edge.src e))
    g;
  let arrivals = Array.make n max_int in
  let via = Array.make n (-1) in
  let heap =
    Temporal.Min_heap.create
      ~cmp:(fun (a, _) (b, _) -> Int.compare a b)
      ()
  in
  arrivals.(src) <- ws;
  Temporal.Min_heap.push heap (ws, src);
  let rec loop () =
    match Temporal.Min_heap.pop heap with
    | None -> ()
    | Some (at, u) ->
        if at = arrivals.(u) then
          (* settled now: relax out-edges *)
          List.iter
            (fun e ->
              let depart = max at (Edge.ts e) in
              if depart <= Edge.te e && depart <= we then begin
                let v = Edge.dst e in
                if depart < arrivals.(v) then begin
                  arrivals.(v) <- depart;
                  via.(v) <- Edge.id e;
                  Temporal.Min_heap.push heap (depart, v)
                end
              end)
            out.(u);
        loop ()
  in
  loop ();
  { graph = g; src; window_start = ws; arrivals; via }

let arrival r v =
  if v < 0 || v >= Array.length r.arrivals then None
  else if r.arrivals.(v) = max_int then None
  else Some r.arrivals.(v)

let reachable r v = arrival r v <> None

let reachable_count r =
  Array.fold_left (fun acc a -> if a < max_int then acc + 1 else acc) 0 r.arrivals

let journey_to r v =
  if v = r.src || not (reachable r v) then None
  else begin
    let rec backtrack v acc =
      if v = r.src then acc
      else begin
        let id = r.via.(v) in
        assert (id >= 0);
        backtrack (Edge.src (Graph.edge r.graph id)) (id :: acc)
      end
    in
    let edges = backtrack v [] in
    let first = Graph.edge r.graph (List.hd edges) in
    Some
      {
        Journey.edges;
        departure = max r.window_start (Edge.ts first);
        arrival = r.arrivals.(v);
      }
  end

let source r = r.src

let default_window g window =
  match window with
  | Some w -> w
  | None ->
      if Tgraph.Graph.n_edges g = 0 then Temporal.Interval.point 0
      else Graph.time_domain g

let latest_departure ?window g ~dst =
  if dst < 0 || dst >= Graph.n_vertices g then
    invalid_arg (Printf.sprintf "Reachability.latest_departure: vertex %d" dst);
  let window = default_window g window in
  let ws = Temporal.Interval.ts window and we = Temporal.Interval.te window in
  let n = Graph.n_vertices g in
  let inc = Array.make n [] in
  Graph.iter_edges
    (fun e ->
      if Edge.te e >= ws && Edge.ts e <= we then
        inc.(Edge.dst e) <- e :: inc.(Edge.dst e))
    g;
  let departs = Array.make n min_int in
  (* max-heap via negated keys *)
  let heap =
    Temporal.Min_heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) ()
  in
  departs.(dst) <- we;
  Temporal.Min_heap.push heap (-we, dst);
  let rec loop () =
    match Temporal.Min_heap.pop heap with
    | None -> ()
    | Some (neg_at, v) ->
        let at = -neg_at in
        if at = departs.(v) then
          (* traversing (u, v) at instant t requires t <= departs(v) and
             t inside the edge interval and the window; the latest such
             t is min of the three upper bounds *)
          List.iter
            (fun e ->
              let t = min at (min (Edge.te e) we) in
              if t >= Edge.ts e && t >= ws then begin
                let u = Edge.src e in
                if t > departs.(u) then begin
                  departs.(u) <- t;
                  Temporal.Min_heap.push heap (-t, u)
                end
              end)
            inc.(v);
        loop ()
  in
  loop ();
  departs

let fastest_duration ?window g ~src ~dst =
  if src < 0 || src >= Graph.n_vertices g then
    invalid_arg (Printf.sprintf "Reachability.fastest_duration: vertex %d" src);
  let window = default_window g window in
  let ws = Temporal.Interval.ts window and we = Temporal.Interval.te window in
  if we < ws then None
  else if src = dst then Some 1
  else begin
    (* Candidate departures: pushing any journey to its latest feasible
       schedule, the departure instant equals min over its edges of
       min(te, we) — so trying every window-clipped edge end as a
       departure is exhaustive. Each candidate costs one
       earliest-arrival pass; computed durations never undershoot the
       optimum and meet it at the optimal journey's latest departure. *)
    let departures = Hashtbl.create 16 in
    Graph.iter_edges
      (fun e ->
        if Edge.te e >= ws && Edge.ts e <= we then begin
          let d = min (Edge.te e) we in
          if d >= ws then Hashtbl.replace departures d ()
        end)
      g;
    let best = ref None in
    Hashtbl.iter
      (fun depart () ->
        let r = earliest_arrival ~window:(Temporal.Interval.make depart we) g ~src in
        match arrival r dst with
        | Some arrive ->
            let d = arrive - depart + 1 in
            (match !best with
            | Some b when b <= d -> ()
            | Some _ | None -> best := Some d)
        | None -> ())
      departures;
    !best
  end
