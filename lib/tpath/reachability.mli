(** Single-source time-respecting reachability (earliest arrival).

    Dijkstra-style label setting over arrival instants: traversing edge
    [(u, v)] valid on [[ts, te]] from an arrival instant [a] at [u] is
    possible at instant [max a ts] provided that is at most [te].
    Instantaneous traversal; complexity O(|E| log |V|) per source. *)

type result

val earliest_arrival :
  ?window:Temporal.Interval.t -> Tgraph.Graph.t -> src:int -> result
(** Earliest arrival instants from [src], departing at or after the
    window start (default: the graph's whole time domain) and arriving
    at or before the window end. [src] itself has arrival = window
    start.
    @raise Invalid_argument on an out-of-range source. *)

val arrival : result -> int -> int option
(** The earliest arrival instant at a vertex, when reachable. *)

val reachable : result -> int -> bool
val reachable_count : result -> int

val journey_to : result -> int -> Journey.t option
(** An earliest-arrival journey witnessing reachability (path
    reconstruction); [None] for the source itself or unreachable
    vertices. *)

val source : result -> int

(** {2 The companion queries of the temporal-path literature} *)

val latest_departure :
  ?window:Temporal.Interval.t -> Tgraph.Graph.t -> dst:int -> int array
(** Per vertex, the latest instant one can leave it and still reach
    [dst] by the window end (time-respecting); [min_int] when [dst] is
    unreachable from it. [dst] itself gets the window end. Computed by
    a backward label-setting sweep, the mirror of
    {!earliest_arrival}. *)

val fastest_duration :
  ?window:Temporal.Interval.t -> Tgraph.Graph.t -> src:int -> dst:int -> int option
(** The minimum elapsed time (arrival - departure + 1) of any
    time-respecting journey from [src] to [dst] inside the window,
    where the departure is the traversal instant of the first edge.
    Computed as a profile: one earliest-arrival pass per candidate
    departure (the window-clipped edge end times — a journey's latest
    feasible schedule departs at one of those), so O(T · E log V) with
    [T] distinct candidates. [Some 1] means an instantaneous journey;
    [None] unreachable; [src = dst] gives [Some 1] (the empty journey)
    whenever the window is non-empty. *)
