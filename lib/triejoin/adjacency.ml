open Tgraph

type trie = {
  edges : Edge.t array; (* sorted in (label, k2, k3, start) order *)
  by_label : Grouping.t;
  level2 : Grouping.t array; (* per label group: grouped by second key *)
  level3 : Grouping.t array array; (* per label, per second-key group *)
}

type t = {
  graph : Graph.t;
  lsd : trie; (* second key = source, third = destination *)
  lds : trie; (* second key = destination, third = source *)
}

let build_trie graph ~cmp ~key2 ~key3 =
  let edges = Array.copy (Graph.edges graph) in
  Array.sort cmp edges;
  let by_label =
    Grouping.group edges ~off:0 ~len:(Array.length edges) ~key:Edge.lbl
  in
  let n_labels = Grouping.n_groups by_label in
  let level2 = Array.make n_labels (Grouping.group [||] ~off:0 ~len:0 ~key:Edge.lbl) in
  let level3 = Array.make n_labels [||] in
  for li = 0 to n_labels - 1 do
    let off, len = Grouping.range by_label li in
    let g2 = Grouping.group edges ~off ~len ~key:key2 in
    level2.(li) <- g2;
    level3.(li) <-
      Array.init (Grouping.n_groups g2) (fun si ->
          let off, len = Grouping.range g2 si in
          Grouping.group edges ~off ~len ~key:key3)
  done;
  { edges; by_label; level2; level3 }

let build graph =
  {
    graph;
    lsd = build_trie graph ~cmp:Edge.compare_lsd ~key2:Edge.src ~key3:Edge.dst;
    lds = build_trie graph ~cmp:Edge.compare_lds ~key2:Edge.dst ~key3:Edge.src;
  }

let build_time graph =
  let t0 = Unix.gettimeofday () in
  let idx = build graph in
  (idx, Unix.gettimeofday () -. t0)

let graph t = t.graph
let any_label = -1

let merge_key_arrays arrays =
  let seen = Hashtbl.create 64 in
  List.iter (fun a -> Array.iter (fun k -> Hashtbl.replace seen k ()) a) arrays;
  let out = Array.of_seq (Hashtbl.to_seq_keys seen) in
  Array.sort Int.compare out;
  out

let labels_of trie = trie.by_label.Grouping.keys

let merge_edge_slices slices =
  let total = List.fold_left (fun acc s -> acc + Slice.length s) 0 slices in
  if total = 0 then Slice.empty
  else begin
    let first = List.find (fun s -> not (Slice.is_empty s)) slices in
    let out = Array.make total (Slice.get first 0) in
    let pos = ref 0 in
    List.iter
      (fun s ->
        Slice.iter
          (fun e ->
            out.(!pos) <- e;
            incr pos)
          s)
      slices;
    Array.sort Tgraph.Edge.compare_by_start out;
    Slice.full out
  end

let second_keys trie ~lbl =
  match Grouping.find trie.by_label lbl with
  | None -> [||]
  | Some li -> trie.level2.(li).Grouping.keys

let sources t ~lbl =
  if lbl = any_label then
    merge_key_arrays
      (Array.to_list (Array.map (fun l -> second_keys t.lsd ~lbl:l) (labels_of t.lsd)))
  else second_keys t.lsd ~lbl

let destinations t ~lbl =
  if lbl = any_label then
    merge_key_arrays
      (Array.to_list (Array.map (fun l -> second_keys t.lds ~lbl:l) (labels_of t.lds)))
  else second_keys t.lds ~lbl

let third_keys trie ~lbl ~k2 =
  match Grouping.find trie.by_label lbl with
  | None -> [||]
  | Some li -> (
      match Grouping.find trie.level2.(li) k2 with
      | None -> [||]
      | Some si -> trie.level3.(li).(si).Grouping.keys)

let dst_keys t ~lbl ~src =
  if lbl = any_label then
    merge_key_arrays
      (Array.to_list
         (Array.map (fun l -> third_keys t.lsd ~lbl:l ~k2:src) (labels_of t.lsd)))
  else third_keys t.lsd ~lbl ~k2:src

let src_keys t ~lbl ~dst =
  if lbl = any_label then
    merge_key_arrays
      (Array.to_list
         (Array.map (fun l -> third_keys t.lds ~lbl:l ~k2:dst) (labels_of t.lds)))
  else third_keys t.lds ~lbl ~k2:dst

let level2_slice trie ~lbl ~k2 =
  match Grouping.find trie.by_label lbl with
  | None -> Slice.empty
  | Some li -> (
      match Grouping.find trie.level2.(li) k2 with
      | None -> Slice.empty
      | Some si ->
          let off, len = Grouping.range trie.level2.(li) si in
          Slice.make trie.edges ~off ~len)

let out_edges t ~lbl ~src =
  if lbl = any_label then
    merge_edge_slices
      (Array.to_list
         (Array.map (fun l -> level2_slice t.lsd ~lbl:l ~k2:src) (labels_of t.lsd)))
  else level2_slice t.lsd ~lbl ~k2:src

let in_edges t ~lbl ~dst =
  if lbl = any_label then
    merge_edge_slices
      (Array.to_list
         (Array.map (fun l -> level2_slice t.lds ~lbl:l ~k2:dst) (labels_of t.lds)))
  else level2_slice t.lds ~lbl ~k2:dst

let edges_between_one t ~lbl ~src ~dst =
  let trie = t.lsd in
  match Grouping.find trie.by_label lbl with
  | None -> Slice.empty
  | Some li -> (
      match Grouping.find trie.level2.(li) src with
      | None -> Slice.empty
      | Some si -> (
          let g3 = trie.level3.(li).(si) in
          match Grouping.find g3 dst with
          | None -> Slice.empty
          | Some di ->
              let off, len = Grouping.range g3 di in
              Slice.make trie.edges ~off ~len))

let edges_between t ~lbl ~src ~dst =
  if lbl = any_label then
    merge_edge_slices
      (Array.to_list
         (Array.map
            (fun l -> edges_between_one t ~lbl:l ~src ~dst)
            (labels_of t.lsd)))
  else edges_between_one t ~lbl ~src ~dst

let label_edges t ~lbl =
  let trie = t.lsd in
  if lbl = any_label then Slice.full trie.edges
  else
    match Grouping.find trie.by_label lbl with
    | None -> Slice.empty
    | Some li ->
        let off, len = Grouping.range trie.by_label li in
        Slice.make trie.edges ~off ~len

let trie_size trie =
  (* edges are counted at full record width (8 words), matching the
     paper's accounting where each index stores its own edge copy *)
  let base = 1 + (8 * Array.length trie.edges) + Grouping.size_words trie.by_label in
  let l2 = Array.fold_left (fun acc g -> acc + Grouping.size_words g) 0 trie.level2 in
  let l3 =
    Array.fold_left
      (fun acc gs ->
        Array.fold_left (fun acc g -> acc + Grouping.size_words g) acc gs)
      0 trie.level3
  in
  base + l2 + l3

let size_words t = 3 + trie_size t.lsd + trie_size t.lds
