(** Static label-adjacency index: the B-tree analogue used by the BINARY
    and HYBRID baselines (and by triejoin binding production).

    Two tries over the edge table: LSD (label → source → destination →
    edges) and LDS (label → destination → source → edges). Leaf edge
    groups are sorted by start time so temporal selections can stop
    early, but no temporal structure beyond that is maintained — that is
    the TAI's job (lib/core). *)

type t

val build : Tgraph.Graph.t -> t
val build_time : Tgraph.Graph.t -> t * float

val graph : t -> Tgraph.Graph.t

val any_label : int
(** [-1]: every lookup below accepts it and unions across labels
    (freshly allocated results). Matches
    {!Semantics.Query.any_label}. *)

val sources : t -> lbl:int -> int array
(** Distinct sources of label [lbl], ascending ([||] for an absent
    label). Do not mutate (except wildcard results, which are fresh). *)

val destinations : t -> lbl:int -> int array

val dst_keys : t -> lbl:int -> src:int -> int array
(** Distinct destinations reachable from [src] by label [lbl]. *)

val src_keys : t -> lbl:int -> dst:int -> int array

val out_edges : t -> lbl:int -> src:int -> Tgraph.Edge.t Slice.t
(** All [lbl]-labeled edges out of [src] (LSD leaf run, grouped by
    destination, start-sorted within each destination group). *)

val in_edges : t -> lbl:int -> dst:int -> Tgraph.Edge.t Slice.t

val edges_between : t -> lbl:int -> src:int -> dst:int -> Tgraph.Edge.t Slice.t
(** The multi-edges from [src] to [dst] with label [lbl], start-sorted. *)

val label_edges : t -> lbl:int -> Tgraph.Edge.t Slice.t
(** Every edge with label [lbl] (LSD order). *)

val size_words : t -> int
