type t = { keys : int array; offsets : int array }

let group arr ~off ~len ~key =
  if off < 0 || len < 0 || off + len > Array.length arr then
    invalid_arg "Grouping.group: window out of bounds";
  let keys = ref [] and offsets = ref [] and n = ref 0 in
  let i = ref off in
  let stop = off + len in
  while !i < stop do
    let k = key arr.(!i) in
    (match !keys with
    | prev :: _ when prev >= k ->
        invalid_arg "Grouping.group: array not sorted by key within window"
    | _ -> ());
    keys := k :: !keys;
    offsets := !i :: !offsets;
    incr n;
    while !i < stop && key arr.(!i) = k do incr i done
  done;
  {
    keys = Array.of_list (List.rev !keys);
    offsets = Array.of_list (List.rev (stop :: !offsets));
  }

let n_groups g = Array.length g.keys

let find g k =
  let keys = g.keys in
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < k then lo := mid + 1 else hi := mid
  done;
  if !lo < Array.length keys && keys.(!lo) = k then Some !lo else None

let range g i = (g.offsets.(i), g.offsets.(i + 1) - g.offsets.(i))
let size_words g = 2 + Array.length g.keys + Array.length g.offsets
