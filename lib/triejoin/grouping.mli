(** Run-length grouping of a sorted array by an integer key: the
    construction primitive behind every trie level (adjacency indexes and
    TAIs alike). *)

type t = { keys : int array; offsets : int array }
(** [keys] are the distinct key values in ascending order; group [i]
    occupies absolute index range [offsets.(i) .. offsets.(i+1) - 1] of
    the grouped array ([offsets] has [length keys + 1] entries). *)

val group : 'a array -> off:int -> len:int -> key:('a -> int) -> t
(** Groups the window [off, off+len) of an array already sorted (within
    the window) by [key].
    @raise Invalid_argument if keys are found out of order. *)

val find : t -> int -> int option
(** [find g k] is the group index of key [k], by binary search. *)

val range : t -> int -> int * int
(** [range g i] is group [i]'s absolute [(offset, length)]. *)

val n_groups : t -> int
val size_words : t -> int
