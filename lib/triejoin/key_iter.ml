type t = { keys : int array; mutable pos : int }

let of_sorted_array_unchecked keys = { keys; pos = 0 }

let of_sorted_array keys =
  for i = 1 to Array.length keys - 1 do
    if keys.(i - 1) >= keys.(i) then
      invalid_arg "Key_iter.of_sorted_array: keys not strictly ascending"
  done;
  of_sorted_array_unchecked keys

let reset it = it.pos <- 0
let at_end it = it.pos >= Array.length it.keys

let key it =
  if at_end it then invalid_arg "Key_iter.key: iterator at end";
  it.keys.(it.pos)

let next it = if not (at_end it) then it.pos <- it.pos + 1

let seek it target =
  let lo = ref it.pos and hi = ref (Array.length it.keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if it.keys.(mid) < target then lo := mid + 1 else hi := mid
  done;
  it.pos <- !lo

let length it = Array.length it.keys
