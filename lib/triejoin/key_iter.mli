(** A positional iterator over a sorted set of integer keys, with the
    [seek] operation leapfrogging requires. *)

type t

val of_sorted_array : int array -> t
(** The array must be strictly ascending (a key {e set}).
    @raise Invalid_argument otherwise. *)

val of_sorted_array_unchecked : int array -> t
(** Trusted variant for keys produced by {!Grouping} (already distinct
    and sorted). *)

val reset : t -> unit
val at_end : t -> bool

val key : t -> int
(** @raise Invalid_argument when {!at_end}. *)

val next : t -> unit
val seek : t -> int -> unit
(** [seek it target] positions at the first key [>= target] (possibly
    the current one), by binary search over the remaining suffix. *)

val length : t -> int
