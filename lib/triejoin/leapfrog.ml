type t = {
  iters : Key_iter.t array;  (* ordered by current key, rotating index p *)
  mutable p : int;
  mutable binding : int option;
  (* observation hooks (callbacks, not a stats type, so this library
     stays free of semantics/obs dependencies) *)
  on_seek : unit -> unit;
  on_next : unit -> unit;
}

let nop () = ()

(* leapfrog-search: let max be the key of the iterator just before p in
   rotation order; repeatedly seek iterator p to max. Terminates with all
   iterators on the same key (a binding) or with some iterator at end. *)
let search lf =
  let k = Array.length lf.iters in
  if Array.exists Key_iter.at_end lf.iters then lf.binding <- None
  else begin
    let max_key = ref (Key_iter.key lf.iters.((lf.p + k - 1) mod k)) in
    let rec loop () =
      let it = lf.iters.(lf.p) in
      let least = Key_iter.key it in
      if least = !max_key then lf.binding <- Some !max_key
      else begin
        lf.on_seek ();
        Key_iter.seek it !max_key;
        if Key_iter.at_end it then lf.binding <- None
        else begin
          max_key := Key_iter.key it;
          lf.p <- (lf.p + 1) mod k;
          loop ()
        end
      end
    in
    loop ()
  end

let create ?(on_seek = nop) ?(on_next = nop) iters =
  if Array.length iters = 0 then invalid_arg "Leapfrog.create: no iterators";
  Array.iter Key_iter.reset iters;
  let lf = { iters; p = 0; binding = None; on_seek; on_next } in
  if Array.exists Key_iter.at_end iters then lf
  else begin
    (* leapfrog-init: order iterators by their first key. *)
    Array.sort (fun a b -> Int.compare (Key_iter.key a) (Key_iter.key b)) lf.iters;
    lf.p <- 0;
    search lf;
    lf
  end

let current lf = lf.binding

let next lf =
  match lf.binding with
  | None -> ()
  | Some _ ->
      lf.on_next ();
      let it = lf.iters.(lf.p) in
      Key_iter.next it;
      if Key_iter.at_end it then lf.binding <- None else search lf

let iter f lf =
  let rec go () =
    match lf.binding with
    | None -> ()
    | Some v ->
        f v;
        next lf;
        go ()
  in
  go ()

let to_list lf =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) lf;
  List.rev !acc

let intersect_arrays arrays =
  match arrays with
  | [] -> [||]
  | _ ->
      let lf =
        create (Array.of_list (List.map Key_iter.of_sorted_array arrays))
      in
      Array.of_list (to_list lf)
