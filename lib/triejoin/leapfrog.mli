(** Leapfrog multiway intersection of sorted key sets (the binding
    production of a leapfrog triejoin, Veldhuizen).

    [leapfrog-init] sorts the iterators by their current key;
    [leapfrog-search] repeatedly seeks the smallest iterator to the
    current maximum until all agree; [leapfrog-next] advances past the
    last binding. *)

type t

val create :
  ?on_seek:(unit -> unit) -> ?on_next:(unit -> unit) -> Key_iter.t array -> t
(** Takes ownership of the iterators (they are reset). [on_seek] fires
    before every leapfrog-search seek, [on_next] before every
    leapfrog-next advance — callback hooks so callers can count seeks
    without this library depending on their stats types.
    @raise Invalid_argument on an empty array. *)

val current : t -> int option
(** The binding at the current position, if the intersection is not yet
    exhausted. *)

val next : t -> unit
(** Advance past the current binding. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over all remaining bindings. *)

val to_list : t -> int list

val intersect_arrays : int array list -> int array
(** Convenience: the intersection of strictly-ascending arrays. *)
