type 'a t = { data : 'a array; off : int; len : int }

let make data ~off ~len =
  if off < 0 || len < 0 || off + len > Array.length data then
    invalid_arg
      (Printf.sprintf "Slice.make: window (%d, %d) out of bounds for %d" off
         len (Array.length data));
  { data; off; len }

let full data = { data; off = 0; len = Array.length data }
let empty = { data = [||]; off = 0; len = 0 }
let length s = s.len
let is_empty s = s.len = 0

let get s i =
  if i < 0 || i >= s.len then
    invalid_arg (Printf.sprintf "Slice.get: index %d out of bounds [0, %d)" i s.len);
  s.data.(s.off + i)

let sub s ~off ~len =
  if off < 0 || len < 0 || off + len > s.len then
    invalid_arg "Slice.sub: window out of bounds";
  { data = s.data; off = s.off + off; len }

let iter f s =
  for i = 0 to s.len - 1 do
    f s.data.(s.off + i)
  done

let fold f init s =
  let acc = ref init in
  for i = 0 to s.len - 1 do
    acc := f !acc s.data.(s.off + i)
  done;
  !acc

let exists p s =
  let rec go i = i < s.len && (p s.data.(s.off + i) || go (i + 1)) in
  go 0

let to_list s = List.init s.len (get s)
let to_array s = Array.sub s.data s.off s.len
