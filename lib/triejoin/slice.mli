(** A read-only window into an array: the zero-copy unit handed out by
    every trie level (edge groups, TSRs, key runs). *)

type 'a t = private { data : 'a array; off : int; len : int }

val make : 'a array -> off:int -> len:int -> 'a t
(** @raise Invalid_argument on an out-of-bounds window. *)

val full : 'a array -> 'a t
val empty : 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument out of bounds. *)

val sub : 'a t -> off:int -> len:int -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
