type method_ = Tsrjoin | Binary | Hybrid | Time

let all_methods = [| Tsrjoin; Binary; Hybrid; Time |]

let method_name = function
  | Tsrjoin -> "tsrjoin"
  | Binary -> "binary"
  | Hybrid -> "hybrid"
  | Time -> "time"

let method_of_string s =
  match String.lowercase_ascii s with
  | "tsrjoin" | "tsrj" -> Some Tsrjoin
  | "binary" -> Some Binary
  | "hybrid" -> Some Hybrid
  | "time" -> Some Time
  | _ -> None

(* Domain-safe lazy cell. [Lazy.t] is not safe to force concurrently
   under OCaml 5 (a racing force raises [Lazy.Undefined]), and engine
   values are shared across the server's worker domains, so the
   on-demand indexes live behind a mutex + atomic slot: the fast path
   is a single [Atomic.get]; builders run at most once. *)
type 'a slot = {
  sm : Mutex.t;
  cell : 'a option Atomic.t;
  build : unit -> 'a;
}

let slot_ready v =
  { sm = Mutex.create (); cell = Atomic.make (Some v); build = (fun () -> v) }

let slot_deferred build = { sm = Mutex.create (); cell = Atomic.make None; build }

let slot_force s =
  match Atomic.get s.cell with
  | Some v -> v
  | None ->
      Mutex.lock s.sm;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.sm)
        (fun () ->
          match Atomic.get s.cell with
          | Some v -> v
          | None ->
              let v = s.build () in
              Atomic.set s.cell (Some v);
              v)

type t = {
  graph : Tgraph.Graph.t;
  tai : Tcsq_core.Tai.t;
  cost : Tcsq_core.Plan.cost_model;
  adjacency : Triejoin.Adjacency.t slot;
  sti_index : Relops.Sti_index.t slot;
  qenv : Analysis.Query_check.env;
}

let prepare graph =
  let tai = Tcsq_core.Tai.build ~with_eci:true graph in
  {
    graph;
    tai;
    cost = Tcsq_core.Plan.cost_model tai;
    adjacency = slot_ready (Triejoin.Adjacency.build graph);
    sti_index = slot_ready (Relops.Sti_index.build graph);
    qenv = Analysis.Query_check.env_of_graph graph;
  }

(* The streaming-ingest constructor: adopts a TAI maintained by
   [Tcsq_core.Incremental] (one buffered [Tai.merge] per batch) instead
   of rebuilding it, and defers the Binary/Hybrid adjacency and the
   STI-CP index until a request actually needs them — the default
   TSRJoin serve path never does, so per-batch engine refresh is a cost
   model + analyzer env, not three index builds. *)
let prepare_with_tai graph tai =
  {
    graph;
    tai;
    cost = Tcsq_core.Plan.cost_model tai;
    adjacency = slot_deferred (fun () -> Triejoin.Adjacency.build graph);
    sti_index = slot_deferred (fun () -> Relops.Sti_index.build graph);
    qenv = Analysis.Query_check.env_of_graph graph;
  }

let graph t = t.graph
let tai t = t.tai
let adjacency t = slot_force t.adjacency
let sti_index t = slot_force t.sti_index

(* plan invariant analysis guards the hot path: a planner bug surfaces
   as a diagnostic here instead of as wrong answers *)
let fresh_plan ?edge_scale t q =
  let plan = Tcsq_core.Plan.build ~cost:t.cost ?edge_scale t.tai q in
  (match Analysis.Plan_check.check_result plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.run: invalid plan: " ^ msg));
  plan

let selectivity_counters t plan =
  let est = Analysis.Selectivity.estimate ~cost:t.cost t.tai plan in
  ( Analysis.Selectivity.intermediate_counter est,
    Analysis.Selectivity.level_counters est )

(* records the static analyzer's intermediate-cardinality prediction on
   the caller's stats (satellite of `tcsq explain`): deterministic in
   (plan, window), so sequential and parallel runs agree and merged
   per-domain stats (which contribute 0) stay additive *)
let record_est_counters ?stats (est_intermediate, est_levels) =
  match stats with
  | None -> ()
  | Some s ->
      Semantics.Run_stats.add_est_intermediate s est_intermediate;
      Array.iteri
        (fun level n ->
          Semantics.Run_stats.add_est_level_intermediate s level n)
        est_levels

let record_estimate ?stats t plan =
  match stats with
  | None -> ()
  | Some _ -> record_est_counters ?stats (selectivity_counters t plan)

let set_source plan_source src =
  match plan_source with None -> () | Some r -> r := Some src

(* Plan acquisition. Without a cache this is the original path: build +
   invariant-check under [plan_select], estimates only when the caller
   wants stats. With a cache, the lookup/store/feedback bookkeeping runs
   under [plan_cache] and only actual planning work (miss or replan)
   under [plan_select] — so a hit's plan_select self-time is honestly
   ~0. Cached estimates are recorded from the entry without replaying
   the analyzer. *)
let tsrjoin_plan ?plan_cache ?plan_source ?stats ~obs t q =
  match plan_cache with
  | None ->
      set_source plan_source Plan_cache.Fresh;
      let plan =
        Obs.Sink.span obs Obs.Phase.Plan_select (fun () -> fresh_plan t q)
      in
      record_estimate ?stats t plan;
      plan
  | Some cache -> (
      let build ?edge_scale src =
        let plan, est =
          Obs.Sink.span obs Obs.Phase.Plan_select (fun () ->
              let plan = fresh_plan ?edge_scale t q in
              (plan, selectivity_counters t plan))
        in
        Obs.Sink.span obs Obs.Phase.Plan_cache (fun () ->
            Plan_cache.store cache q ~plan ~est_intermediate:(fst est)
              ~est_levels:(snd est));
        set_source plan_source src;
        record_est_counters ?stats est;
        plan
      in
      match
        Obs.Sink.span obs Obs.Phase.Plan_cache (fun () ->
            Plan_cache.lookup cache q)
      with
      | Plan_cache.Hit { plan; est_intermediate; est_levels } ->
          set_source plan_source Plan_cache.Cached;
          record_est_counters ?stats (est_intermediate, est_levels);
          plan
      | Plan_cache.Miss -> build Plan_cache.Fresh
      | Plan_cache.Replan { edge_scale } ->
          build ~edge_scale Plan_cache.Replanned)

(* Wraps a TSRJoin execution with plan acquisition and — when a cache is
   in play — post-run feedback of this execution's per-level actuals
   (the delta against the caller's possibly-shared stats). Feedback is
   skipped when execution raises (budget/deadline truncation leaves the
   level counters partial, which would poison entries spuriously). *)
let with_tsrjoin_plan ?plan_cache ?plan_source ?stats ~obs t q exec =
  let stats =
    (* feedback needs measured levels even if the caller asked for none *)
    match (stats, plan_cache) with
    | None, Some _ -> Some (Semantics.Run_stats.create ())
    | s, _ -> s
  in
  let plan = tsrjoin_plan ?plan_cache ?plan_source ?stats ~obs t q in
  let pre_levels =
    match (plan_cache, stats) with
    | Some _, Some s -> Semantics.Run_stats.levels s
    | _ -> [||]
  in
  let result = exec ~plan ~stats in
  (match (plan_cache, stats) with
  | Some cache, Some s ->
      let post = Semantics.Run_stats.levels s in
      let delta =
        Array.init (Array.length post) (fun i ->
            post.(i)
            - (if i < Array.length pre_levels then pre_levels.(i) else 0))
      in
      Obs.Sink.span obs Obs.Phase.Plan_cache (fun () ->
          Plan_cache.feedback cache q ~levels:delta)
  | _ -> ());
  result

let run ?stats ?(obs = Obs.Sink.null) ?tsrjoin_config ?pool ?(domains = 1)
    ?plan_cache ?plan_source t method_ q ~emit =
  Obs.Sink.span obs Obs.Phase.Run @@ fun () ->
  match method_ with
  | Tsrjoin ->
      with_tsrjoin_plan ?plan_cache ?plan_source ?stats ~obs t q
        (fun ~plan ~stats ->
          if domains <= 1 then
            Tcsq_core.Tsrjoin.run ?stats ~obs ?config:tsrjoin_config ~plan
              t.tai q ~emit
          else
            (* multicore is TSRJoin-only: root-binding independence is what
               makes the fan-out sound; the baselines stay single-domain *)
            Exec.Parallel.run ?pool ~domains ?stats ~obs ?config:tsrjoin_config
              ~plan t.tai q ~emit)
  | Binary -> Relops.Binary.run ?stats (slot_force t.adjacency) q ~emit
  | Hybrid -> Relops.Hybrid.run ?stats (slot_force t.adjacency) q ~emit
  | Time -> Relops.Time_pipeline.run ?stats (slot_force t.sti_index) q ~emit

let evaluate ?stats ?(obs = Obs.Sink.null) ?tsrjoin_config ?pool ?(domains = 1)
    ?plan_cache ?plan_source t method_ q =
  match method_ with
  | Tsrjoin when domains > 1 ->
      (* the parallel driver reconstructs the sequential order itself *)
      Obs.Sink.span obs Obs.Phase.Run @@ fun () ->
      with_tsrjoin_plan ?plan_cache ?plan_source ?stats ~obs t q
        (fun ~plan ~stats ->
          Exec.Parallel.evaluate ?pool ~domains ?stats ~obs
            ?config:tsrjoin_config ~plan t.tai q)
  | _ ->
      let acc = ref [] in
      run ?stats ~obs ?tsrjoin_config ?pool ~domains ?plan_cache ?plan_source
        t method_ q ~emit:(fun m -> acc := m :: !acc);
      List.rev !acc

let count ?stats ?obs ?tsrjoin_config ?pool ?domains ?plan_cache ?plan_source
    t method_ q =
  let n = ref 0 in
  (* parallel [run] serializes [emit] under a mutex, so a ref suffices *)
  run ?stats ?obs ?tsrjoin_config ?pool ?domains ?plan_cache ?plan_source t
    method_ q
    ~emit:(fun _ -> incr n);
  !n

(* ---- statically checked execution ---- *)

let analyze t method_ q =
  let ds = Analysis.Query_check.check ~env:t.qenv q in
  if Analysis.Diagnostic.has_errors ds then ds
  else
    let ds = ds @ (Analysis.Bound.analyze ~env:t.qenv q).Analysis.Bound.diagnostics in
    match method_ with
    | Tsrjoin ->
        ds
        @ Analysis.Plan_check.check (Tcsq_core.Plan.build ~cost:t.cost t.tai q)
    | Binary | Hybrid | Time -> ds

let tighten t q = Analysis.Bound.tighten ~env:t.qenv q

let run_checked ?stats ?obs ?tsrjoin_config ?pool ?domains ?plan_cache
    ?plan_source t method_ q ~emit =
  let ds = analyze t method_ q in
  if Analysis.Diagnostic.has_errors ds then Error ds
  else if Analysis.Diagnostic.proves_empty ds then Ok ds
  else begin
    (* result-preserving by Bound's window-tightening theorem — the
       conformance window-tightening relation holds every engine to it *)
    run ?stats ?obs ?tsrjoin_config ?pool ?domains ?plan_cache ?plan_source t
      method_ (tighten t q) ~emit;
    Ok ds
  end

let evaluate_checked ?stats ?tsrjoin_config ?pool ?domains ?plan_cache
    ?plan_source t method_ q =
  let ds = analyze t method_ q in
  if Analysis.Diagnostic.has_errors ds then Error ds
  else if Analysis.Diagnostic.proves_empty ds then Ok ([], ds)
  else
    Ok
      ( evaluate ?stats ?tsrjoin_config ?pool ?domains ?plan_cache
          ?plan_source t method_ (tighten t q),
        ds )

let count_checked ?stats ?tsrjoin_config ?pool ?domains ?plan_cache
    ?plan_source t method_ q =
  let n = ref 0 in
  match
    run_checked ?stats ?tsrjoin_config ?pool ?domains ?plan_cache ?plan_source
      t method_ q
      ~emit:(fun _ -> incr n)
  with
  | Ok ds -> Ok (!n, ds)
  | Error ds -> Error ds

(* ---- extended queries ---- *)

(* Allen constraints ride into TSRJoin's config so the engine prunes
   them inside the join tree; other methods post-filter via decorate. *)
let ext_config tsrjoin_config eq =
  match Semantics.Equery.allen eq with
  | [] -> tsrjoin_config
  | allen ->
      let base =
        match tsrjoin_config with
        | Some c -> c
        | None -> Tcsq_core.Tsrjoin.default_config
      in
      Some { base with Tcsq_core.Tsrjoin.allen }

let analyze_ext t method_ eq =
  let q = Semantics.Equery.core eq in
  let ds = Analysis.Query_check.check ~env:t.qenv q in
  if Analysis.Diagnostic.has_errors ds then ds
  else
    let ds = ds @ Analysis.Ext_check.check ~env:t.qenv eq in
    let ds =
      ds
      @ (Analysis.Bound.analyze ~allen:(Semantics.Equery.allen eq) ~env:t.qenv
           q)
          .Analysis.Bound.diagnostics
    in
    match method_ with
    | Tsrjoin ->
        ds
        @ Analysis.Plan_check.check (Tcsq_core.Plan.build ~cost:t.cost t.tai q)
    | Binary | Hybrid | Time -> ds

let tighten_ext t eq =
  let q =
    Analysis.Bound.tighten ~allen:(Semantics.Equery.allen eq) ~env:t.qenv
      (Semantics.Equery.core eq)
  in
  Semantics.Equery.with_window eq (Semantics.Query.window q)

let evaluate_ext ?stats ?obs ?tsrjoin_config ?pool ?domains ?plan_cache
    ?plan_source t method_ eq =
  let tsrjoin_config = ext_config tsrjoin_config eq in
  Semantics.Equery.evaluate_with
    (fun q ->
      evaluate ?stats ?obs ?tsrjoin_config ?pool ?domains ?plan_cache
        ?plan_source t method_ q)
    t.graph eq

let run_ext ?stats ?obs ?tsrjoin_config ?pool ?domains ?plan_cache
    ?plan_source t method_ eq ~emit =
  match Semantics.Equery.agg eq with
  | Some (Semantics.Equery.Top _) ->
      (* top-k is a selection over the full result set: collect first *)
      List.iter emit
        (evaluate_ext ?stats ?obs ?tsrjoin_config ?pool ?domains ?plan_cache
           ?plan_source t method_ eq)
  | Some Semantics.Equery.Count | None ->
      if not (Semantics.Equery.has_decorations eq) then
        run ?stats ?obs ?tsrjoin_config ?pool ?domains ?plan_cache
          ?plan_source t method_ (Semantics.Equery.core eq) ~emit
      else begin
        let p = Semantics.Equery.prepare t.graph eq in
        let tsrjoin_config = ext_config tsrjoin_config eq in
        run ?stats ?obs ?tsrjoin_config ?pool ?domains ?plan_cache
          ?plan_source t method_ (Semantics.Equery.core eq) ~emit:(fun m ->
            List.iter emit (Semantics.Equery.decorate p m))
      end

let count_ext ?stats ?obs ?tsrjoin_config ?pool ?domains ?plan_cache
    ?plan_source t method_ eq =
  List.length
    (evaluate_ext ?stats ?obs ?tsrjoin_config ?pool ?domains ?plan_cache
       ?plan_source t method_ eq)

module Match_gen = Temporal.Push_pull.Make (struct
  type t = Semantics.Match_result.t
end)

let volcano ?tsrjoin_config t method_ q =
  let next_match =
    Match_gen.to_pull (fun emit -> run ?tsrjoin_config t method_ q ~emit)
  in
  let tuple_of_match (m : Semantics.Match_result.t) =
    let tup = Relops.Tuple.initial q in
    let open Semantics in
    Array.iteri
      (fun i id ->
        let qe = Query.edge q i in
        let e = Tgraph.Graph.edge t.graph id in
        tup.Relops.Tuple.edges.(i) <- id;
        tup.Relops.Tuple.binds.(qe.Query.src_var) <- Tgraph.Edge.src e;
        tup.Relops.Tuple.binds.(qe.Query.dst_var) <- Tgraph.Edge.dst e)
      m.Match_result.edges;
    { tup with Relops.Tuple.life = m.Match_result.life }
  in
  Relops.Volcano.of_producer (fun () ->
      let acc = Temporal.Vec.create ~capacity:Relops.Volcano.batch_size () in
      let rec fill () =
        if Temporal.Vec.length acc >= Relops.Volcano.batch_size then ()
        else
          match next_match () with
          | Some m ->
              Temporal.Vec.push acc (tuple_of_match m);
              fill ()
          | None -> ()
      in
      fill ();
      if Temporal.Vec.is_empty acc then None else Some (Temporal.Vec.to_array acc))

let index_size_words t = function
  | Tsrjoin -> Tcsq_core.Tai.size_words t.tai
  | Binary | Hybrid -> Triejoin.Adjacency.size_words (slot_force t.adjacency)
  | Time -> Relops.Sti_index.size_words (slot_force t.sti_index)

let index_build_seconds graph = function
  | Tsrjoin -> snd (Tcsq_core.Tai.build_time ~with_eci:true graph)
  | Binary | Hybrid -> snd (Triejoin.Adjacency.build_time graph)
  | Time -> snd (Relops.Sti_index.build_time graph)
