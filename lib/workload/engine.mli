(** Unified entry point over the four query-processing methods.

    Builds and owns all indexes so that the methods run against the same
    graph, and exposes the per-method storage/build-cost accounting of
    Tables IV and V. *)

type method_ = Tsrjoin | Binary | Hybrid | Time

val all_methods : method_ array
val method_name : method_ -> string
val method_of_string : string -> method_ option

type t

val prepare : Tgraph.Graph.t -> t
(** Builds the TAI (+ECIs), the label adjacency index, and the STI-CP
    index. *)

val prepare_with_tai : Tgraph.Graph.t -> Tcsq_core.Tai.t -> t
(** Adopts an already-maintained TAI over [graph] (as produced by
    {!Tcsq_core.Incremental} / [Tai.merge]) instead of rebuilding it.
    The adjacency and STI-CP indexes are built lazily on first use
    (domain-safe), so refreshing an engine after an ingest batch costs
    a cost model and an analyzer env, not three index builds. *)

val graph : t -> Tgraph.Graph.t
val tai : t -> Tcsq_core.Tai.t
val adjacency : t -> Triejoin.Adjacency.t
val sti_index : t -> Relops.Sti_index.t

val run :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?tsrjoin_config:Tcsq_core.Tsrjoin.config ->
  ?pool:Exec.Pool.t ->
  ?domains:int ->
  ?plan_cache:Plan_cache.t ->
  ?plan_source:Plan_cache.source option ref ->
  t ->
  method_ ->
  Semantics.Query.t ->
  emit:(Semantics.Match_result.t -> unit) ->
  unit
(** May raise {!Semantics.Run_stats.Limit_exceeded} under budgets. For
    {!Tsrjoin} the freshly built plan is passed through
    [Analysis.Plan_check] first; a planner bug raises
    [Invalid_argument] instead of executing an invalid plan.

    [domains > 1] (default 1) runs {!Tsrjoin} on [Exec.Parallel] —
    work-stealing over root bindings with merged stats/obs and global
    budgets; [emit] is then called from worker context (serialized,
    order nondeterministic — {!evaluate} restores the sequential
    order). Helper domains come from [pool] (default:
    [Exec.Parallel.shared_pool]). The other methods ignore [domains]
    and stay single-domain.

    [obs] receives phase-attributed spans: the whole call under [run],
    plan construction under [plan_select], and — for {!Tsrjoin} — the
    engine phases (TAI probes, TSR slicing, leapfrog, sweeps) below it.
    Instrumentation never changes results: with [Obs.Sink.null] (the
    default) every site is a no-op.

    [plan_cache] (TSRJoin only; the other methods have no planner)
    consults a shared {!Plan_cache} before planning: a hit skips plan
    construction and the selectivity estimate entirely (cache
    bookkeeping is attributed to the [plan_cache] phase, so
    [plan_select] self-time drops to ~0), a miss or feedback-triggered
    re-plan builds and stores. After a successful execution the
    observed per-level cardinalities are fed back to the cache entry.
    Cached plans are validated against the incoming query, so results
    are identical with and without a cache — only speed changes.
    [plan_source] (when given) is set to where this query's plan came
    from. *)

(** {2 Statically checked execution}

    The [_checked] variants run the static analyzer before executing:
    [Error]-level diagnostics reject the query without executing it
    (the typed result carries them), and queries the analyzer proves
    empty (e.g. a window disjoint from the graph's time span) return
    their trivial result without touching the indexes. The [Ok]
    diagnostics list carries any surviving warnings/hints. *)

val analyze :
  t -> method_ -> Semantics.Query.t -> Analysis.Diagnostic.t list
(** Query semantic analysis against this engine's graph
    ({!Analysis.Query_check} plus {!Analysis.Bound}'s constraint
    propagation); for {!Tsrjoin} also plan invariant analysis of the
    cost-model plan (skipped when the query itself has errors). *)

val tighten : t -> Semantics.Query.t -> Semantics.Query.t
(** {!Analysis.Bound.tighten} against this engine's graph: the query
    with its window shrunk to the propagated effective window, the
    identity when nothing tightens. Result-preserving, so the [_checked]
    runners and the server execute the tightened query. *)

val run_checked :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?tsrjoin_config:Tcsq_core.Tsrjoin.config ->
  ?pool:Exec.Pool.t ->
  ?domains:int ->
  ?plan_cache:Plan_cache.t ->
  ?plan_source:Plan_cache.source option ref ->
  t ->
  method_ ->
  Semantics.Query.t ->
  emit:(Semantics.Match_result.t -> unit) ->
  (Analysis.Diagnostic.t list, Analysis.Diagnostic.t list) result

val evaluate_checked :
  ?stats:Semantics.Run_stats.t ->
  ?tsrjoin_config:Tcsq_core.Tsrjoin.config ->
  ?pool:Exec.Pool.t ->
  ?domains:int ->
  ?plan_cache:Plan_cache.t ->
  ?plan_source:Plan_cache.source option ref ->
  t ->
  method_ ->
  Semantics.Query.t ->
  ( Semantics.Match_result.t list * Analysis.Diagnostic.t list,
    Analysis.Diagnostic.t list )
  result

val count_checked :
  ?stats:Semantics.Run_stats.t ->
  ?tsrjoin_config:Tcsq_core.Tsrjoin.config ->
  ?pool:Exec.Pool.t ->
  ?domains:int ->
  ?plan_cache:Plan_cache.t ->
  ?plan_source:Plan_cache.source option ref ->
  t ->
  method_ ->
  Semantics.Query.t ->
  (int * Analysis.Diagnostic.t list, Analysis.Diagnostic.t list) result

val evaluate :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?tsrjoin_config:Tcsq_core.Tsrjoin.config ->
  ?pool:Exec.Pool.t ->
  ?domains:int ->
  ?plan_cache:Plan_cache.t ->
  ?plan_source:Plan_cache.source option ref ->
  t ->
  method_ ->
  Semantics.Query.t ->
  Semantics.Match_result.t list
(** Matches in the engine's sequential emission order, for every
    [domains] value ([Exec.Parallel.evaluate] reconstructs it). *)

val count :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?tsrjoin_config:Tcsq_core.Tsrjoin.config ->
  ?pool:Exec.Pool.t ->
  ?domains:int ->
  ?plan_cache:Plan_cache.t ->
  ?plan_source:Plan_cache.source option ref ->
  t ->
  method_ ->
  Semantics.Query.t ->
  int

(** {2 Extended queries}

    The [_ext] variants evaluate a {!Semantics.Equery.t}: the core
    pattern runs through the chosen method unchanged, each match is then
    decorated (antijoin/semijoin lifespan slicing, Allen post-filters)
    and the aggregate selection applied. For {!Tsrjoin} the Allen
    constraints are additionally pushed into the engine's config, so
    misclassified pairs are pruned inside the join tree; the
    post-filter re-check is idempotent. A plain query takes exactly the
    non-ext path. *)

val analyze_ext :
  t -> method_ -> Semantics.Equery.t -> Analysis.Diagnostic.t list
(** {!analyze} over the core, plus {!Analysis.Ext_check} clause
    diagnostics, with the Allen constraints fed into
    {!Analysis.Bound}'s propagation network. *)

val tighten_ext : t -> Semantics.Equery.t -> Semantics.Equery.t
(** Allen-aware window tightening; result-preserving under the piece
    semantics (clause matching never reads the window). *)

val run_ext :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?tsrjoin_config:Tcsq_core.Tsrjoin.config ->
  ?pool:Exec.Pool.t ->
  ?domains:int ->
  ?plan_cache:Plan_cache.t ->
  ?plan_source:Plan_cache.source option ref ->
  t ->
  method_ ->
  Semantics.Equery.t ->
  emit:(Semantics.Match_result.t -> unit) ->
  unit
(** Streams pieces. A [TOP k] aggregate needs the full result set, so
    that case collects internally and emits the selection. *)

val evaluate_ext :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?tsrjoin_config:Tcsq_core.Tsrjoin.config ->
  ?pool:Exec.Pool.t ->
  ?domains:int ->
  ?plan_cache:Plan_cache.t ->
  ?plan_source:Plan_cache.source option ref ->
  t ->
  method_ ->
  Semantics.Equery.t ->
  Semantics.Match_result.t list

val count_ext :
  ?stats:Semantics.Run_stats.t ->
  ?obs:Obs.Sink.t ->
  ?tsrjoin_config:Tcsq_core.Tsrjoin.config ->
  ?pool:Exec.Pool.t ->
  ?domains:int ->
  ?plan_cache:Plan_cache.t ->
  ?plan_source:Plan_cache.source option ref ->
  t ->
  method_ ->
  Semantics.Equery.t ->
  int
(** Number of result pieces (what a [COUNT] query reports). *)

val volcano :
  ?tsrjoin_config:Tcsq_core.Tsrjoin.config ->
  t ->
  method_ ->
  Semantics.Query.t ->
  Relops.Volcano.t
(** The query as a pull operator over 1024-tuple batches (the paper's
    vectorized execution model), built on an effect-handler inversion of
    the engine's push interface. Complete matches arrive as complete
    tuples (all edges and variables bound). Single-consumer. *)

val index_size_words : t -> method_ -> int
(** Table IV: TSRJOIN = TAI (three sorted edge copies, tries, ECIs);
    BINARY and HYBRID = label adjacency index (LSD + LDS); TIME = STI-CP
    index. *)

val index_build_seconds : Tgraph.Graph.t -> method_ -> float
(** Table V: builds the method's index from scratch and reports wall
    seconds. *)
