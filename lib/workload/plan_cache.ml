(* Bounded, mutex-guarded LRU plan cache keyed by the canonical plan
   form (Fingerprint.canonical_plan: canonical edges x ceil-log2
   window-length bucket x duration floor).

   Entries store the chosen plan in canonical-variable space — (canonical
   pivot id, matched query-edge indexes, produce_binding) per step — so
   one entry serves every query in its key's equivalence class: equal
   canonical forms mean edge i carries the same label between the same
   canonical endpoints, which is exactly what makes the pivot order
   transferable. Rebuilding against the incoming query is an O(steps)
   array map plus a Plan.validate; planning from scratch leapfrogs TAI
   key sets per root candidate, which is the cost a hit skips.

   The table is keyed by the full canonical string, not its 64-bit hash:
   a hash collision therefore cannot alias two different shapes (the
   Hashtbl compares keys), and a corrupt entry is caught by validation
   and degrades to a miss. *)

open Semantics

type source = Fresh | Cached | Replanned

let source_name = function
  | Fresh -> "fresh"
  | Cached -> "cached"
  | Replanned -> "replanned"

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  replans : int;
}

type entry = {
  mutable steps : (int * int array * bool) array;
      (* per plan step: canonical pivot, query-edge indexes, produce_binding *)
  mutable est_intermediate : int;
  mutable est_levels : int array;
  mutable last_levels : int array;  (* most recent observed actuals *)
  mutable consecutive_misest : int;
  mutable poisoned : bool;
  mutable last_used : int;  (* LRU clock value of the last touch *)
}

type t = {
  mutex : Mutex.t;
  cap : int;
  replan_threshold : float;
  replan_after : int;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable generation : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable replans : int;
}

let create ?(capacity = 256) ?(replan_threshold = 16.0) ?(replan_after = 2) ()
    =
  if capacity < 0 then invalid_arg "Plan_cache.create: negative capacity";
  if replan_threshold < 1.0 then
    invalid_arg "Plan_cache.create: replan_threshold must be >= 1";
  if replan_after < 1 then
    invalid_arg "Plan_cache.create: replan_after must be >= 1";
  {
    mutex = Mutex.create ();
    cap = capacity;
    replan_threshold;
    replan_after;
    table = Hashtbl.create (max 16 (min capacity 1024));
    clock = 0;
    generation = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    replans = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let capacity t = t.cap
let length t = locked t (fun () -> Hashtbl.length t.table)
let generation t = locked t (fun () -> t.generation)

let counters t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        invalidations = t.invalidations;
        replans = t.replans;
      })

let bump_generation t =
  locked t (fun () ->
      t.invalidations <- t.invalidations + Hashtbl.length t.table;
      Hashtbl.reset t.table;
      t.generation <- t.generation + 1)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* ---- canonical-space plan transfer ---- *)

let encode_steps q plan =
  let canon = Fingerprint.canonical_vars q in
  Array.map
    (fun (s : Tcsq_core.Plan.step) ->
      ( canon.(s.Tcsq_core.Plan.pivot),
        Array.map (fun (e : Query.edge) -> e.Query.idx) s.Tcsq_core.Plan.edges,
        s.Tcsq_core.Plan.produce_binding ))
    (Tcsq_core.Plan.steps plan)

(* Rebuild a canonical-space entry against [q]. Every index is
   range-checked and the result re-validated: any mismatch (impossible
   under key equality, but this is the safety boundary) yields [None]
   and the caller treats the entry as a miss. *)
let rebuild q entry =
  let canon = Fingerprint.canonical_vars q in
  let n_vars = Query.n_vars q and n_edges = Query.n_edges q in
  let inv = Array.make (max 1 n_vars) (-1) in
  Array.iteri (fun v c -> if c >= 0 && c < n_vars then inv.(c) <- v) canon;
  match
    Array.map
      (fun (cp, idxs, pb) ->
        if cp < 0 || cp >= n_vars || inv.(cp) < 0 then raise Exit;
        {
          Tcsq_core.Plan.pivot = inv.(cp);
          edges =
            Array.map
              (fun i ->
                if i < 0 || i >= n_edges then raise Exit;
                Query.edge q i)
              idxs;
          produce_binding = pb;
        })
      entry.steps
  with
  | steps -> (
      let plan = Tcsq_core.Plan.of_steps_unchecked q steps in
      match Tcsq_core.Plan.validate plan with
      | Ok () -> Some plan
      | Error _ -> None)
  | exception Exit -> None

(* ---- lookup / store / feedback ---- *)

type verdict =
  | Miss
  | Hit of {
      plan : Tcsq_core.Plan.t;
      est_intermediate : int;
      est_levels : int array;
    }
  | Replan of { edge_scale : Query.edge -> float }

let lookup t q =
  if t.cap = 0 then begin
    locked t (fun () -> t.misses <- t.misses + 1);
    Miss
  end
  else
    let key = Fingerprint.canonical_plan q in
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | None ->
            t.misses <- t.misses + 1;
            Miss
        | Some entry -> (
            entry.last_used <- tick t;
            match rebuild q entry with
            | None ->
                (* corrupt entry: drop it, degrade to a miss *)
                Hashtbl.remove t.table key;
                t.misses <- t.misses + 1;
                Miss
            | Some plan ->
                if entry.poisoned then begin
                  t.replans <- t.replans + 1;
                  Replan
                    {
                      edge_scale =
                        Tcsq_core.Plan.calibration plan
                          ~est_levels:entry.est_levels
                          ~levels:entry.last_levels;
                    }
                end
                else begin
                  t.hits <- t.hits + 1;
                  Hit
                    {
                      plan;
                      est_intermediate = entry.est_intermediate;
                      est_levels = Array.copy entry.est_levels;
                    }
                end))

let evict_lru t =
  (* exact LRU by scan: capacities are small (hundreds), lookups touch
     only one entry, and the scan runs only when the cache is full *)
  let victim = ref None in
  Hashtbl.iter
    (fun key entry ->
      match !victim with
      | Some (_, best) when best <= entry.last_used -> ()
      | _ -> victim := Some (key, entry.last_used))
    t.table;
  match !victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1
  | None -> ()

let store t q ~plan ~est_intermediate ~est_levels =
  if t.cap > 0 then begin
    let key = Fingerprint.canonical_plan q in
    let steps = encode_steps q plan in
    locked t (fun () ->
        (match Hashtbl.find_opt t.table key with
        | Some entry ->
            entry.steps <- steps;
            entry.est_intermediate <- est_intermediate;
            entry.est_levels <- Array.copy est_levels;
            entry.last_levels <- [||];
            entry.consecutive_misest <- 0;
            entry.poisoned <- false;
            entry.last_used <- tick t
        | None ->
            if Hashtbl.length t.table >= t.cap then evict_lru t;
            Hashtbl.add t.table key
              {
                steps;
                est_intermediate;
                est_levels = Array.copy est_levels;
                last_levels = [||];
                consecutive_misest = 0;
                poisoned = false;
                last_used = tick t;
              }))
  end

(* symmetric misestimation factor, both sides floored at 1 — the same
   definition as the server's qlog/P009 reporting *)
let misest_factor est actual =
  let e = float_of_int (max est 1) and a = float_of_int (max actual 1) in
  Float.max e a /. Float.min e a

let worst_factor est_levels levels =
  let n = max (Array.length est_levels) (Array.length levels) in
  let get a i = if i < Array.length a then a.(i) else 0 in
  let worst = ref 1.0 in
  for i = 0 to n - 1 do
    worst := Float.max !worst (misest_factor (get est_levels i) (get levels i))
  done;
  !worst

let feedback t q ~levels =
  if t.cap > 0 then
    let key = Fingerprint.canonical_plan q in
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | None -> ()
        | Some entry ->
            if worst_factor entry.est_levels levels > t.replan_threshold then begin
              entry.consecutive_misest <- entry.consecutive_misest + 1;
              entry.last_levels <- Array.copy levels;
              if entry.consecutive_misest >= t.replan_after then
                entry.poisoned <- true
            end
            else begin
              entry.consecutive_misest <- 0;
              entry.poisoned <- false
            end)

let window_bucket = Fingerprint.window_bucket
