(** Server-side TSRJoin plan cache with misestimation-driven adaptive
    re-optimization.

    Planning is the expensive, high-leverage decision of the whole
    pipeline (the paper's pivot ordering by temporal x topological
    selectivity), yet its outcome depends only on the query's
    {e shape}: the canonical edge list, the duration floor, and —
    coarsely — the window length. This cache memoizes the chosen plan
    per {!Semantics.Fingerprint.plan_key} equivalence class (canonical
    shape x ceil-log2 window-length bucket), together with the
    cost-model estimates that justified it.

    {b Safety.} A cached plan can change {e speed} but never
    {e results}: any structurally valid TSRJoin plan enumerates the
    same matches (plan choice only reorders the join tree), entries are
    matched by the {e full} canonical plan form (string equality, so a
    64-bit key collision cannot smuggle in a foreign plan shape), and
    every rebuilt plan is re-validated against the incoming query
    before use — a corrupt entry degrades to a miss, never to a wrong
    answer.

    {b Adaptivity.} After each execution the caller feeds the observed
    per-level cardinalities back ({!feedback}). When the worst-level
    symmetric est-vs-actual factor exceeds the replan threshold (the
    P009 value, 16x) on enough consecutive executions (default 2), the
    entry is poisoned: the next {!lookup} returns {!Replan} carrying
    {!Tcsq_core.Plan.calibration} factors, and the caller re-plans with
    observed cardinalities substituted for the static estimates.

    {b Invalidation.} The cache carries a graph-generation counter;
    {!bump_generation} (called on ingest) drops every entry — plans and
    estimates are functions of the graph's statistics, which just
    changed.

    All operations are guarded by one mutex and safe to share across
    worker domains. *)

type t

type source = Fresh | Cached | Replanned
(** Where a request's plan came from; rendered into qlog records as
    [plan_source: "fresh" | "cached" | "replanned"]. *)

val source_name : source -> string

type counters = {
  hits : int;  (** lookups served from the cache *)
  misses : int;  (** lookups that found no usable entry *)
  evictions : int;  (** entries dropped by the LRU bound *)
  invalidations : int;  (** entries dropped by {!bump_generation} *)
  replans : int;  (** poisoned entries re-planned from feedback *)
}

val create :
  ?capacity:int -> ?replan_threshold:float -> ?replan_after:int -> unit -> t
(** [capacity] (default 256) bounds the entry count; [0] degenerates to
    a passthrough (every lookup misses, nothing is stored).
    [replan_threshold] (default 16.0, the P009 threshold) is the
    worst-level symmetric est-vs-actual factor that counts an execution
    as misestimated; [replan_after] (default 2) is how many
    {e consecutive} misestimated executions poison an entry.
    @raise Invalid_argument on negative capacity, a threshold < 1, or
    [replan_after] < 1. *)

val capacity : t -> int

val length : t -> int
(** Live entries. *)

val counters : t -> counters
(** Snapshot of the lifetime counters (consistent: taken under the
    cache mutex). *)

val generation : t -> int

val bump_generation : t -> unit
(** Invalidate everything: drops all entries (counted in
    [invalidations]) and increments {!generation}. Called once per
    ingest batch. *)

(** The three lookup outcomes. [Hit] carries a plan already rebuilt
    against (and validated for) the {e incoming} query, plus the cached
    estimates so the caller can record them without replaying the
    analyzer. [Replan] means the entry was found but is poisoned: the
    caller must build a fresh plan — passing [edge_scale] to
    {!Tcsq_core.Plan.build} substitutes the observed cardinalities —
    and {!store} it. *)
type verdict =
  | Miss
  | Hit of { plan : Tcsq_core.Plan.t; est_intermediate : int; est_levels : int array }
  | Replan of { edge_scale : Semantics.Query.edge -> float }

val lookup : t -> Semantics.Query.t -> verdict
(** Counter effects: [Hit] counts a hit, [Miss] a miss, [Replan] a
    replan (the caller's subsequent {!store} does not double-count). *)

val store :
  t ->
  Semantics.Query.t ->
  plan:Tcsq_core.Plan.t ->
  est_intermediate:int ->
  est_levels:int array ->
  unit
(** Insert (or replace, clearing any poison) the plan for [q]'s key.
    The plan is stored in canonical-variable space, so it serves every
    query in the key's equivalence class. Evicts the least-recently
    used entry when full; no-op at capacity 0. *)

val feedback : t -> Semantics.Query.t -> levels:int array -> unit
(** Report one execution's observed per-level intermediate
    cardinalities (the {e delta} for this run, not a shared cumulative
    counter). No-op when the key has no entry. *)

val window_bucket : int -> int
(** Re-export of {!Semantics.Fingerprint.window_bucket}, the key's
    window-length bucketing. *)
