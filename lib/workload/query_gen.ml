open Semantics

type config = {
  n_queries : int;
  window_frac : float;
  shape : Pattern.shape;
  max_results : int;
  seed : int;
  max_attempts : int;
}

let default ~shape =
  {
    n_queries = 100;
    window_frac = 0.1;
    shape;
    max_results = 100_000;
    seed = 97;
    max_attempts = 5_000;
  }

type query_info = { query : Query.t; result_size : int }

(* Draw k distinct labels uniformly (partial Fisher-Yates). *)
let draw_labels rng ~n_labels ~k =
  if k > n_labels then None
  else begin
    let pool = Array.init n_labels Fun.id in
    for i = 0 to k - 1 do
      let j = i + Random.State.int rng (n_labels - i) in
      let tmp = pool.(i) in
      pool.(i) <- pool.(j);
      pool.(j) <- tmp
    done;
    Some (Array.sub pool 0 k)
  end

let generate engine cfg =
  if cfg.window_frac <= 0.0 || cfg.window_frac > 1.0 then
    invalid_arg "Query_gen.generate: window_frac must be in (0, 1]";
  Pattern.validate cfg.shape;
  let g = Engine.graph engine in
  if Tgraph.Graph.n_edges g = 0 then []
  else begin
    let rng = Random.State.make [| cfg.seed; 0x9e3 |] in
    let k = Pattern.n_edges cfg.shape in
    let n_labels = Tgraph.Graph.n_labels g in
    let accepted = ref [] and n_accepted = ref 0 and attempts = ref 0 in
    while !n_accepted < cfg.n_queries && !attempts < cfg.max_attempts do
      incr attempts;
      match draw_labels rng ~n_labels ~k with
      | None -> attempts := cfg.max_attempts
      | Some labels ->
          let window =
            Tgraph.Graph.window_of_fraction g ~frac:cfg.window_frac
              ~at:(Random.State.float rng 1.0)
          in
          let query = Pattern.instantiate cfg.shape ~labels ~window in
          (* The intermediate cap bounds the cost of probing wildly
             unselective candidates (which would be rejected anyway). *)
          let stats =
            Run_stats.create
              ~limits:
                {
                  Run_stats.max_results = cfg.max_results;
                  max_intermediate = (50 * cfg.max_results) + 100_000;
                }
              ()
          in
          let size =
            try Some (Engine.count ~stats engine Engine.Tsrjoin query)
            with Run_stats.Limit_exceeded _ -> None (* > M: too unselective *)
          in
          (match size with
          | Some size when size >= 1 ->
              accepted := { query; result_size = size } :: !accepted;
              incr n_accepted
          | Some _ | None -> ())
    done;
    List.rev !accepted
  end
