(** The paper's workload generation model (Section VI).

    Parameters: number of queries [n], window fraction [l] of the time
    domain, pattern shape, the label set (the graph's), and a maximal
    result size [M]. For each candidate, [k] distinct labels are drawn
    uniformly, the window is placed uniformly in the domain, and the
    query joins the workload iff its (TSRJoin-computed) result size lies
    in [[1, M]]. *)

type config = {
  n_queries : int;
  window_frac : float;  (** e.g. 0.1 for the default 10% windows *)
  shape : Semantics.Pattern.shape;
  max_results : int;  (** the selectivity knob M *)
  seed : int;
  max_attempts : int;  (** candidate draws before giving up *)
}

val default : shape:Semantics.Pattern.shape -> config
(** 100-query workload at 10% windows with M = 100K, as in the paper's
    pattern experiment (attempts capped at [50 * n_queries]). *)

type query_info = {
  query : Semantics.Query.t;
  result_size : int;  (** exact complete-result cardinality *)
}

val generate : Engine.t -> config -> query_info list
(** Deterministic in [config]. May return fewer than [n_queries] when
    the attempt budget runs out (e.g. patterns with no matches at this
    selectivity). *)
