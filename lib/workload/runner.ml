open Semantics

type budget = {
  max_results_per_query : int;
  max_intermediate_per_query : int;
}

let default_budget =
  { max_results_per_query = 100_000; max_intermediate_per_query = 5_000_000 }

type measurement = {
  method_ : Engine.method_;
  n_queries : int;
  n_truncated : int;
  total_seconds : float;
  mean_seconds : float;
  p50_seconds : float;
  p95_seconds : float;
  total_results : int;
  total_intermediate : int;
  total_scanned : int;
  total_seeks : int;
  total_est_intermediate : int;
  total_levels : int array;
  total_est_levels : int array;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (float_of_int (n - 1) *. p)))

let run_method ?(budget = default_budget) ?obs ?tsrjoin_config ?pool ?domains
    ?plan_cache engine method_ queries =
  let totals = Run_stats.create () in
  let n_truncated = ref 0 in
  let per_query = ref [] in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun q ->
      let stats =
        Run_stats.create
          ~limits:
            {
              Run_stats.max_results = budget.max_results_per_query;
              max_intermediate = budget.max_intermediate_per_query;
            }
          ()
      in
      let q0 = Unix.gettimeofday () in
      (try
         Engine.run ~stats ?obs ?tsrjoin_config ?pool ?domains ?plan_cache
           engine method_ q
           ~emit:(fun _ -> ())
       with Run_stats.Limit_exceeded _ -> incr n_truncated);
      per_query := (Unix.gettimeofday () -. q0) :: !per_query;
      Run_stats.merge_into totals stats)
    queries;
  let total_seconds = Unix.gettimeofday () -. t0 in
  let n = List.length queries in
  let sorted = Array.of_list !per_query in
  Array.sort Float.compare sorted;
  {
    method_;
    n_queries = n;
    n_truncated = !n_truncated;
    total_seconds;
    mean_seconds = (if n = 0 then 0.0 else total_seconds /. float_of_int n);
    p50_seconds = percentile sorted 0.5;
    p95_seconds = percentile sorted 0.95;
    total_results = totals.Run_stats.results;
    total_intermediate = totals.Run_stats.intermediate;
    total_scanned = totals.Run_stats.scanned;
    total_seeks = totals.Run_stats.seeks;
    total_est_intermediate = totals.Run_stats.est_intermediate;
    total_levels = Run_stats.levels totals;
    total_est_levels = Run_stats.est_levels totals;
  }

let run_all ?budget ?(methods = Engine.all_methods) engine queries =
  Array.to_list
    (Array.map (fun m -> run_method ?budget engine m queries) methods)

let pp_header fmt () =
  Format.fprintf fmt "%-8s %8s %6s %12s %12s %14s %14s" "method" "queries"
    "trunc" "mean-ms" "total-s" "intermediate" "scanned"

let csv_header =
  "method,queries,truncated,mean_ms,p50_ms,p95_ms,total_s,results,intermediate,scanned,seeks,est_intermediate"

let to_csv_row ?tag m =
  let prefix = match tag with Some t -> t ^ "," | None -> "" in
  Printf.sprintf "%s%s,%d,%d,%.4f,%.4f,%.4f,%.4f,%d,%d,%d,%d,%d" prefix
    (Engine.method_name m.method_)
    m.n_queries m.n_truncated
    (m.mean_seconds *. 1000.0)
    (m.p50_seconds *. 1000.0)
    (m.p95_seconds *. 1000.0)
    m.total_seconds m.total_results m.total_intermediate m.total_scanned
    m.total_seeks m.total_est_intermediate

let int_array_json a =
  Json_out.arr (Array.to_list (Array.map string_of_int a))

let measurement_to_json ?(extra = []) ?(raw = []) ?(obs = Obs.Sink.null) m =
  let phases =
    if not (Obs.Sink.enabled obs) then []
    else
      [
        ( "phases",
          Json_out.obj
            (List.map
               (fun (r : Obs.Trace.row) ->
                 ( Obs.Phase.name r.Obs.Trace.phase,
                   Json_out.obj
                     [
                       ("count", string_of_int r.Obs.Trace.count);
                       ("total_s", Printf.sprintf "%.6f" r.Obs.Trace.total_s);
                       ("self_s", Printf.sprintf "%.6f" r.Obs.Trace.self_s);
                     ] ))
               (Obs.Trace.summary obs)) );
      ]
  in
  Json_out.obj
    (List.map (fun (k, v) -> (k, Json_out.escape_string v)) extra
    @ raw
    @ [
        ("method", Json_out.escape_string (Engine.method_name m.method_));
        ("n_queries", string_of_int m.n_queries);
        ("n_truncated", string_of_int m.n_truncated);
        ("total_s", Printf.sprintf "%.6f" m.total_seconds);
        ("mean_s", Printf.sprintf "%.6f" m.mean_seconds);
        ("p50_s", Printf.sprintf "%.6f" m.p50_seconds);
        ("p95_s", Printf.sprintf "%.6f" m.p95_seconds);
        ("results", string_of_int m.total_results);
        ("intermediate", string_of_int m.total_intermediate);
        ("scanned", string_of_int m.total_scanned);
        ("seeks", string_of_int m.total_seeks);
        ("est_intermediate", string_of_int m.total_est_intermediate);
        ("levels", int_array_json m.total_levels);
        ("est_levels", int_array_json m.total_est_levels);
      ]
    @ phases)

let pp_measurement fmt m =
  Format.fprintf fmt "%-8s %8d %6d %12.3f %12.3f %14d %14d"
    (Engine.method_name m.method_)
    m.n_queries m.n_truncated
    (m.mean_seconds *. 1000.0)
    m.total_seconds m.total_intermediate m.total_scanned
