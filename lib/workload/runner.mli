(** Workload execution and measurement: times each method over a query
    workload under result/intermediate budgets (the laptop-scale
    analogue of the paper's timeouts), accumulating the counters behind
    Figs. 9-12. *)

type budget = {
  max_results_per_query : int;
  max_intermediate_per_query : int;
}

val default_budget : budget
(** 100K results, 5M intermediate tuples per query. *)

type measurement = {
  method_ : Engine.method_;
  n_queries : int;
  n_truncated : int;  (** queries stopped by a budget (paper: timeouts) *)
  total_seconds : float;
  mean_seconds : float;  (** over all queries, truncated ones included *)
  p50_seconds : float;  (** median per-query wall time *)
  p95_seconds : float;
  total_results : int;
  total_intermediate : int;
  total_scanned : int;
  total_seeks : int;  (** leapfrog seeks/advances + TAI probes *)
  total_est_intermediate : int;
      (** the static analyzer's summed intermediate-cardinality
          prediction (TSRJoin only) — compare with [total_intermediate]
          for estimator error *)
  total_levels : int array;
      (** measured intermediate tuples per TSRJoin plan level, summed
          over the workload; empty for methods without levelled
          execution *)
  total_est_levels : int array;
      (** the analyzer's per-level predictions, summed likewise *)
}

val run_method :
  ?budget:budget ->
  ?obs:Obs.Sink.t ->
  ?tsrjoin_config:Tcsq_core.Tsrjoin.config ->
  ?pool:Exec.Pool.t ->
  ?domains:int ->
  ?plan_cache:Plan_cache.t ->
  Engine.t ->
  Engine.method_ ->
  Semantics.Query.t list ->
  measurement
(** [domains]/[pool]/[plan_cache] are forwarded to {!Engine.run} — the
    domain-scaling and plan-cache benchmarks' levers. Merged parallel
    stats keep the deterministic counters identical to a 1-domain run,
    so only the timing columns
    move. *)

val run_all :
  ?budget:budget ->
  ?methods:Engine.method_ array ->
  Engine.t ->
  Semantics.Query.t list ->
  measurement list

val percentile : float array -> float -> float
(** [percentile sorted p] over an ascending array ([0.] when empty);
    the p50/p95 estimator shared by measurements and the server's
    latency snapshots. *)

val pp_measurement : Format.formatter -> measurement -> unit
val pp_header : Format.formatter -> unit -> unit

val csv_header : string
(** Column names for {!to_csv_row}. *)

val to_csv_row : ?tag:string -> measurement -> string
(** One comma-separated row (prefixed by [tag] when given), for external
    plotting. *)

val measurement_to_json :
  ?extra:(string * string) list ->
  ?raw:(string * string) list ->
  ?obs:Obs.Sink.t ->
  measurement ->
  string
(** One JSON object per measurement ([extra] string fields first, e.g.
    experiment/dataset/pattern tags; [raw] fields follow verbatim —
    already-valid JSON values such as numbers, e.g. the scaling
    benchmark's [domains]/[speedup_vs_1]); the record format behind
    [bench --json]. When [obs] is an enabled sink (typically the one
    passed to {!run_method}), a trailing ["phases"] object carries its
    per-phase count/total/self times. Schema documented in
    EXPERIMENTS.md. *)
