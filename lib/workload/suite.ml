let to_lines g queries = List.map (Semantics.Qlang.render g) queries

let of_lines g lines =
  let rec go acc line_no = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc (line_no + 1) rest
        else begin
          match Semantics.Qlang.parse_and_compile g line with
          | Ok q -> go (q :: acc) (line_no + 1) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" line_no e)
        end
  in
  go [] 1 lines

let save g queries path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# tcsq workload: one query per line\n";
      List.iter (fun l -> output_string oc (l ^ "\n")) (to_lines g queries))

let load g path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      of_lines g (List.rev !lines))
