(** Workload persistence: query sets as text files, one query-language
    statement per line ('#' comments allowed), so generated workloads
    can be shipped, diffed and replayed exactly.

    Queries are rendered with {!Semantics.Qlang.render} and reloaded
    with the parser, preserving edges, windows and duration floors (up
    to variable renumbering, which cannot affect results). *)

val save : Tgraph.Graph.t -> Semantics.Query.t list -> string -> unit

val load : Tgraph.Graph.t -> string -> (Semantics.Query.t list, string) result
(** Fails with a line-numbered message on the first malformed query or
    unknown label. *)

val to_lines : Tgraph.Graph.t -> Semantics.Query.t list -> string list
val of_lines : Tgraph.Graph.t -> string list -> (Semantics.Query.t list, string) result
