open Semantics
let () =
  let g =
    Testkit.random_graph ~seed:1 ~n_vertices:4 ~n_edges:5 ~n_labels:2
      ~domain:20 ~max_len:5 ()
  in
  let q = Testkit.random_query ~seed:2 ~n_labels:2 ~max_edges:2
      ~window:(Temporal.Interval.make 0 19) in
  let case = Conformance.Case.make_plain g q in
  (* fails iff the window is wider than a point: minimal failing window
     has we = ws + 1, and neither point-window candidate fails *)
  let failing c =
    let q = Conformance.Case.core c in
    Query.we q > Query.ws q
  in
  let m, probes = Conformance.Shrink.minimize ~failing ~max_probes:2000 case in
  let q = Conformance.Case.core m in
  Printf.printf "window [%d,%d] probes=%d\n" (Query.ws q) (Query.we q) probes
