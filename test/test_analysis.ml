(* The static analyzer: table-driven diagnostics cases per code,
   hand-corrupted plans per plan code, planner conformance, the engine's
   checked execution path, and property tests tying analyzer verdicts to
   ground truth (clean queries run, provably-empty queries have zero
   naive matches). *)

open Semantics
open Analysis

let window a b = Temporal.Interval.make a b

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* labels l0, l1 with edges; span [0, 20] *)
let small_graph () =
  Tgraph.Graph.of_edge_list
    [ (0, 1, 0, 0, 10); (1, 2, 1, 5, 15); (2, 0, 0, 10, 20) ]

let q ?(n_vars = 3) ?(w = window 0 20) edges = Query.make ~n_vars ~edges ~window:w

let codes ds = List.map (fun d -> d.Diagnostic.code) ds

let find code ds =
  match List.find_opt (fun d -> d.Diagnostic.code = code) ds with
  | Some d -> d
  | None ->
      Alcotest.failf "expected diagnostic %s, got [%s]" code
        (String.concat "; " (codes ds))

let check_with g query = Query_check.check ~env:(Query_check.env_of_graph g) query

(* ---------- query diagnostics, one case per code ---------- *)

let test_q001_inverted_window () =
  let ds = Query_check.check_raw_window ~ws:10 ~we:5 in
  let d = find "Q001" ds in
  Alcotest.check Alcotest.bool "error" true (d.Diagnostic.severity = Error);
  Alcotest.check Alcotest.bool "at window" true (d.Diagnostic.location = Window);
  Alcotest.(check (list string))
    "clean when ordered" []
    (codes (Query_check.check_raw_window ~ws:5 ~we:10))

let test_q002_disjoint_window () =
  let g = small_graph () in
  let query = q ~w:(window 100 200) [ (0, 0, 1); (1, 1, 2) ] in
  let d = find "Q002" (check_with g query) in
  Alcotest.check Alcotest.bool "warning" true (d.Diagnostic.severity = Warning);
  Alcotest.check Alcotest.bool "proves empty" true d.Diagnostic.proves_empty;
  Alcotest.(check int) "naive agrees" 0 (Naive.count g query)

let test_q003_unknown_label () =
  let g = small_graph () in
  let query = q [ (5, 0, 1) ] in
  let d = find "Q003" (check_with g query) in
  Alcotest.check Alcotest.bool "error" true (d.Diagnostic.severity = Error);
  Alcotest.check Alcotest.bool "proves empty" true d.Diagnostic.proves_empty;
  Alcotest.check Alcotest.bool "names the edge" true
    (d.Diagnostic.location = Edge 0);
  Alcotest.(check int) "naive agrees" 0 (Naive.count g query)

let test_q004_orphan_variable () =
  let g = small_graph () in
  let query = q ~n_vars:4 [ (0, 0, 1); (1, 1, 2) ] in
  let d = find "Q004" (check_with g query) in
  Alcotest.check Alcotest.bool "names x3" true (d.Diagnostic.location = Var 3)

let test_q005_duplicate_edge () =
  let g = small_graph () in
  let query = q [ (0, 0, 1); (0, 0, 1) ] in
  let d = find "Q005" (check_with g query) in
  Alcotest.check Alcotest.bool "second edge blamed" true
    (d.Diagnostic.location = Edge 1)

let test_q006_disconnected () =
  let g = small_graph () in
  let query = q ~n_vars:4 [ (0, 0, 1); (1, 2, 3) ] in
  ignore (find "Q006" (check_with g query));
  (* connected pattern: no Q006 *)
  let connected = q [ (0, 0, 1); (1, 1, 2) ] in
  Alcotest.check Alcotest.bool "connected is clean" false
    (List.mem "Q006" (codes (check_with g connected)))

let test_q007_self_loop () =
  let g = small_graph () in
  let query = q [ (0, 0, 0) ] in
  let d = find "Q007" (check_with g query) in
  Alcotest.check Alcotest.bool "hint" true (d.Diagnostic.severity = Hint)

let test_q008_label_without_edges () =
  let labels = Tgraph.Label.of_names [| "a"; "b" |] in
  let g =
    Tgraph.Graph.of_edge_list ~labels [ (0, 1, 0, 0, 10); (1, 2, 0, 5, 15) ]
  in
  let query = q [ (1, 0, 1) ] in
  let d = find "Q008" (check_with g query) in
  Alcotest.check Alcotest.bool "proves empty" true d.Diagnostic.proves_empty;
  Alcotest.(check int) "naive agrees" 0 (Naive.count g query)

let test_q009_empty_graph () =
  let labels = Tgraph.Label.of_names [| "a" |] in
  let g = Tgraph.Graph.of_edge_list ~labels [] in
  let query = q [ (0, 0, 1) ] in
  let d = find "Q009" (check_with g query) in
  Alcotest.check Alcotest.bool "proves empty" true d.Diagnostic.proves_empty;
  Alcotest.(check int) "naive agrees" 0 (Naive.count g query)

let test_q010_undurable () =
  let g = small_graph () in
  (* longest edge interval is 11 ticks *)
  let query = Query.with_min_duration (q [ (0, 0, 1) ]) 50 in
  let d = find "Q010" (check_with g query) in
  Alcotest.check Alcotest.bool "proves empty" true d.Diagnostic.proves_empty;
  Alcotest.(check int) "naive agrees" 0 (Naive.count g query);
  let fine = Query.with_min_duration (q [ (0, 0, 1) ]) 3 in
  Alcotest.check Alcotest.bool "modest LASTING is clean" false
    (List.mem "Q010" (codes (check_with g fine)))

(* ---------- plan diagnostics, hand-corrupted plans ---------- *)

let chain_query () = q [ (0, 0, 1); (1, 1, 2) ]

let step pivot edges produce_binding =
  { Tcsq_core.Plan.pivot; edges = Array.of_list edges; produce_binding }

let plan_codes query steps =
  codes (Plan_check.check (Tcsq_core.Plan.of_steps_unchecked query (Array.of_list steps)))

let test_p001_empty_step () =
  let query = chain_query () in
  let cs =
    plan_codes query
      [ step 1 [ Query.edge query 0; Query.edge query 1 ] true; step 2 [] false ]
  in
  Alcotest.check Alcotest.bool "P001" true (List.mem "P001" cs)

let test_p002_unbound_pivot () =
  let query = chain_query () in
  let cs =
    plan_codes query
      [ step 0 [ Query.edge query 0 ] true; step 2 [ Query.edge query 1 ] false ]
  in
  Alcotest.check Alcotest.bool "P002" true (List.mem "P002" cs)

let test_p003_rebound_root () =
  let query = chain_query () in
  let cs =
    plan_codes query
      [ step 0 [ Query.edge query 0 ] true; step 1 [ Query.edge query 1 ] true ]
  in
  Alcotest.check Alcotest.bool "P003" true (List.mem "P003" cs)

let test_p004_unmatched_edge () =
  let query = chain_query () in
  let cs = plan_codes query [ step 0 [ Query.edge query 0 ] true ] in
  Alcotest.check Alcotest.bool "P004" true (List.mem "P004" cs)

let test_p005_rematched_edge () =
  let query = chain_query () in
  let cs =
    plan_codes query
      [
        step 1 [ Query.edge query 0; Query.edge query 1 ] true;
        step 1 [ Query.edge query 0 ] false;
      ]
  in
  Alcotest.check Alcotest.bool "P005" true (List.mem "P005" cs)

let test_p006_nonincident_edge () =
  let query = chain_query () in
  let cs =
    plan_codes query
      [ step 0 [ Query.edge query 0; Query.edge query 1 ] true ]
  in
  Alcotest.check Alcotest.bool "P006" true (List.mem "P006" cs)

let test_p007_edge_table_mismatch () =
  let query = chain_query () in
  let forged = { (Query.edge query 0) with Query.lbl = 9 } in
  let cs =
    plan_codes query
      [ step 0 [ forged ] true; step 1 [ Query.edge query 1 ] false ]
  in
  Alcotest.check Alcotest.bool "P007" true (List.mem "P007" cs)

(* ---------- bound propagation (Q011-Q014) ---------- *)

let bound_with g query = Bound.analyze ~env:(Query_check.env_of_graph g) query

let test_q011_q012_disjoint_labels () =
  (* label l0 only alive in [0, 5], label l1 only in [50, 60]: no
     instant can lie in a joint clique lifespan, so propagation empties
     both pattern edges even though each overlaps the window *)
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5); (1, 2, 1, 50, 60) ] in
  let query = q ~w:(window 0 100) [ (0, 0, 1); (1, 1, 2) ] in
  let r = bound_with g query in
  Alcotest.check Alcotest.bool "unsat" true r.Bound.unsat;
  Alcotest.check Alcotest.bool "no effective window" true
    (r.Bound.effective = None);
  let d11 = find "Q011" r.Bound.diagnostics in
  Alcotest.check Alcotest.bool "Q011 warning" true
    (d11.Diagnostic.severity = Warning);
  Alcotest.check Alcotest.bool "Q011 proves empty" true
    d11.Diagnostic.proves_empty;
  let d12 = find "Q012" r.Bound.diagnostics in
  Alcotest.check Alcotest.bool "Allen witness names the other span" true
    (contains ~sub:"span" d12.Diagnostic.message);
  Alcotest.check Alcotest.bool "never error severity" false
    (Diagnostic.has_errors r.Bound.diagnostics);
  Alcotest.(check int) "naive agrees" 0 (Naive.count g query)

let test_q013_lasting_vs_label () =
  (* label l0 sustains 11 ticks, label l1 at most 3: LASTING 5 passes
     the graph-wide Q010 check but provably kills l1's edge *)
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 10); (1, 2, 1, 4, 6) ] in
  let query =
    Query.with_min_duration (q ~w:(window 0 20) [ (0, 0, 1); (1, 1, 2) ]) 5
  in
  Alcotest.check Alcotest.bool "no Q010" false
    (List.mem "Q010" (codes (check_with g query)));
  let r = bound_with g query in
  Alcotest.check Alcotest.bool "unsat" true r.Bound.unsat;
  let d = find "Q013" r.Bound.diagnostics in
  Alcotest.check Alcotest.bool "blames the short label's edge" true
    (d.Diagnostic.location = Edge 1);
  Alcotest.(check int) "naive agrees" 0 (Naive.count g query)

let test_q014_window_tightening () =
  (* label l0 is only alive in [40, 60]; the query window [0, 100] must
     tighten to exactly that span without changing the result set *)
  let g =
    Tgraph.Graph.of_edge_list
      [ (0, 1, 0, 40, 45); (1, 2, 0, 50, 60); (0, 1, 1, 0, 100) ]
  in
  let query = q ~w:(window 0 100) [ (0, 0, 1) ] in
  let r = bound_with g query in
  Alcotest.check Alcotest.bool "satisfiable" false r.Bound.unsat;
  (match r.Bound.effective with
  | Some w' ->
      Alcotest.check Alcotest.bool "effective [40, 60]" true
        (Temporal.Interval.equal w' (window 40 60))
  | None -> Alcotest.fail "no effective window");
  ignore (find "Q014" r.Bound.diagnostics);
  let env = Query_check.env_of_graph g in
  let q' = Bound.tighten ~env query in
  Alcotest.check Alcotest.bool "window replaced" true
    (Temporal.Interval.equal (Query.window q') (window 40 60));
  Alcotest.(check int) "tighten preserves results" (Naive.count g query)
    (Naive.count g q');
  (* already-tight windows are left alone, with no Q014 *)
  let tight = q ~w:(window 40 60) [ (0, 0, 1) ] in
  Alcotest.check Alcotest.bool "identity on a tight window" true
    (Temporal.Interval.equal
       (Query.window (Bound.tighten ~env tight))
       (window 40 60));
  Alcotest.check Alcotest.bool "no Q014 on a tight window" false
    (List.mem "Q014" (codes (bound_with g tight).Bound.diagnostics))

(* ---------- extended-operator diagnostics (Q015-Q017) ---------- *)

let test_q015_infeasible_allen () =
  (* label l0 only alive in [50, 60], label l1 only in [0, 5]: a0
     BEFORE a1 is already ruled out on the initial label-span boxes *)
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 50, 60); (1, 2, 1, 0, 5) ] in
  let query = q ~w:(window 0 100) [ (0, 0, 1); (1, 1, 2) ] in
  let env = Query_check.env_of_graph g in
  let allen = [ (0, Temporal.Allen.Before, 1) ] in
  let r = Bound.analyze ~allen ~env query in
  let d = find "Q015" r.Bound.diagnostics in
  Alcotest.check Alcotest.bool "warning" true (d.Diagnostic.severity = Warning);
  Alcotest.check Alcotest.bool "proves empty" true d.Diagnostic.proves_empty;
  Alcotest.check Alcotest.bool "names both labels" true
    (contains ~sub:"l0" d.Diagnostic.message
    && contains ~sub:"l1" d.Diagnostic.message);
  Alcotest.(check int) "naive agrees" 0
    (List.length (Naive.evaluate_ext g (Equery.make ~allen query)));
  (* the other direction is box-feasible and draws no Q015 *)
  let r' = Bound.analyze ~allen:[ (1, Temporal.Allen.Before, 0) ] ~env query in
  Alcotest.check Alcotest.bool "feasible direction clean" false
    (List.mem "Q015" (codes r'.Bound.diagnostics))

let test_q016_q017_clause_labels () =
  (* label b is in the vocabulary but has zero edges: an EXISTS witness
     on it proves the query empty, a NOT clause on it is a no-op *)
  let g =
    Tgraph.Graph.of_edge_list
      ~labels:(Tgraph.Label.of_names [| "a"; "b" |])
      [ (0, 1, 0, 0, 10); (1, 2, 0, 5, 15) ]
  in
  let env = Query_check.env_of_graph g in
  let query = q ~n_vars:2 ~w:(window 0 20) [ (0, 0, 1) ] in
  let ghost = { Equery.lbl = 1; src = Equery.Var 0; dst = Equery.Any } in
  let semi_q = Equery.make ~semi:[ ghost ] query in
  let d = find "Q016" (Ext_check.check ~env semi_q) in
  Alcotest.check Alcotest.bool "warning" true (d.Diagnostic.severity = Warning);
  Alcotest.check Alcotest.bool "proves empty" true d.Diagnostic.proves_empty;
  Alcotest.(check int) "naive agrees: no witness, no match" 0
    (List.length (Naive.evaluate_ext g semi_q));
  let anti_q = Equery.make ~anti:[ ghost ] query in
  let d = find "Q017" (Ext_check.check ~env anti_q) in
  Alcotest.check Alcotest.bool "hint" true (d.Diagnostic.severity = Hint);
  Alcotest.check Alcotest.bool "does not prove empty" false
    d.Diagnostic.proves_empty;
  Alcotest.(check int) "naive agrees: the antijoin is a no-op"
    (List.length (Naive.evaluate_ext g (Equery.plain query)))
    (List.length (Naive.evaluate_ext g anti_q));
  Alcotest.(check (list string))
    "clauses on a live label draw nothing" []
    (codes
       (Ext_check.check ~env
          (Equery.make ~anti:[ { ghost with Equery.lbl = 0 } ] query)))

(* ---------- selectivity estimates + est_intermediate counter ---------- *)

let test_selectivity_estimate_shape () =
  let g =
    Testkit.random_graph ~seed:7 ~n_vertices:6 ~n_edges:60 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  let tai = Tcsq_core.Tai.build g in
  let cost = Tcsq_core.Plan.cost_model tai in
  let query = q ~w:(window 0 39) [ (0, 0, 1); (1, 1, 2) ] in
  let plan = Tcsq_core.Plan.build ~cost tai query in
  let est = Selectivity.estimate ~cost tai plan in
  Alcotest.(check int) "one estimate per pattern edge" 2
    (Array.length est.Selectivity.edges);
  Alcotest.check Alcotest.bool "has step estimates" true
    (Array.length est.Selectivity.steps > 0);
  let first = est.Selectivity.steps.(0) in
  Alcotest.check Alcotest.bool "root step counts leapfrog candidates" true
    (first.Selectivity.root && first.Selectivity.candidates <> None);
  Alcotest.check Alcotest.bool "results within intermediate total" true
    (est.Selectivity.estimated_results
    <= est.Selectivity.estimated_intermediate +. 1e-9);
  Alcotest.check Alcotest.bool "counter is a non-negative int" true
    (Selectivity.intermediate_counter est >= 0)

let test_engine_records_estimate () =
  let g = small_graph () in
  let engine = Workload.Engine.prepare g in
  let query = q [ (0, 0, 1); (1, 1, 2) ] in
  let run () =
    let stats = Run_stats.create () in
    ignore (Workload.Engine.count ~stats engine Workload.Engine.Tsrjoin query);
    stats
  in
  let s1 = run () and s2 = run () in
  Alcotest.check Alcotest.bool "estimate recorded" true
    (s1.Run_stats.est_intermediate > 0);
  Alcotest.(check int) "deterministic across runs"
    s1.Run_stats.est_intermediate s2.Run_stats.est_intermediate;
  (* merge sums the counter like every other one *)
  let merged = Run_stats.create () in
  Run_stats.merge_into merged s1;
  Run_stats.merge_into merged s2;
  Alcotest.(check int) "merge sums"
    (2 * s1.Run_stats.est_intermediate)
    merged.Run_stats.est_intermediate

(* ---------- explain reports ---------- *)

let test_explain_candidates_and_json () =
  let g = small_graph () in
  let target = Lint.target_of_graph g in
  let query = q [ (0, 0, 1); (1, 1, 2) ] in
  let t = Explain.analyze ~pivot_order:[ 0; 1; 2 ] target query in
  Alcotest.(check (list string))
    "candidates in order"
    [ "cost-model"; "adaptive"; "pivot-order" ]
    (List.map (fun c -> c.Explain.name) t.Explain.candidates);
  Alcotest.(check int) "exactly one chosen" 1
    (List.length
       (List.filter (fun c -> c.Explain.chosen) t.Explain.candidates));
  let label_names = Tgraph.Label.names (Tgraph.Graph.labels g) in
  let txt = Format.asprintf "%a" (Explain.pp ~label_names) t in
  List.iter
    (fun sub -> Alcotest.check Alcotest.bool sub true (contains ~sub txt))
    [ "plan cost-model (chosen)"; "ranking:"; "effective window" ];
  let js = Explain.to_json ~label_names t in
  List.iter
    (fun sub -> Alcotest.check Alcotest.bool sub true (contains ~sub js))
    [
      "\"schema\": \"tcsq-explain/v1\""; "\"plans\"";
      "\"estimated_intermediate\"";
    ]

let test_explain_p008_dominated_plan () =
  (* pivoting the leaf of a star first explodes the first TSRJoin level;
     the report must flag the literal plan as dominated *)
  let g =
    Testkit.random_graph ~seed:11 ~n_vertices:60 ~n_edges:400 ~n_labels:2
      ~domain:40 ~max_len:5 ()
  in
  let target = Lint.target_of_graph g in
  let query = q ~w:(window 0 39) [ (0, 0, 1); (1, 0, 2) ] in
  let t = Explain.analyze ~pivot_order:[ 1; 0; 2 ] target query in
  let po =
    List.find (fun c -> c.Explain.name = "pivot-order") t.Explain.candidates
  in
  (if not (List.mem "P008" (codes po.Explain.plan_diags)) then
     let show c =
       Printf.sprintf "%s=%g" c.Explain.name
         c.Explain.est.Selectivity.estimated_intermediate
     in
     Alcotest.failf "no P008: %s"
       (String.concat " " (List.map show t.Explain.candidates)));
  Alcotest.check Alcotest.bool "dominated plan is not chosen" false
    po.Explain.chosen

(* ---------- planner conformance + pivot-order regression ---------- *)

let test_planners_produce_clean_plans () =
  let g =
    Testkit.random_graph ~seed:7 ~n_vertices:6 ~n_edges:60 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  let tai = Tcsq_core.Tai.build g in
  let cost = Tcsq_core.Plan.cost_model tai in
  List.iter
    (fun query ->
      let plans =
        [
          ("build", Tcsq_core.Plan.build ~cost tai query);
          ("adaptive", Tcsq_core.Plan.build_adaptive ~cost tai query);
          ( "pivot order",
            Tcsq_core.Plan.of_pivot_order query
              (List.init (Query.n_vars query) Fun.id) );
        ]
      in
      List.iter
        (fun (name, plan) ->
          (match Plan_check.check plan with
          | [] -> ()
          | ds ->
              Alcotest.failf "%s: unexpected diagnostics [%s]" name
                (String.concat "; " (codes ds)));
          match Tcsq_core.Plan.validate plan with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: validate rejected: %s" name msg)
        plans)
    (Testkit.query_pool ~n_labels:3 ~window:(window 0 39))

let test_corrupted_pivot_order_rejected () =
  let query = chain_query () in
  (* order [0] leaves e1 unmatched; order [0; 2] uses x2 unbound *)
  let p1 = Tcsq_core.Plan.of_pivot_order_unchecked query [ 0 ] in
  let d = find "P004" (Plan_check.check p1) in
  Alcotest.check Alcotest.bool "names the edge" true
    (d.Diagnostic.location = Edge 1);
  (match Tcsq_core.Plan.validate p1 with
  | Ok () -> Alcotest.fail "validate accepted an incomplete plan"
  | Error msg ->
      Alcotest.check Alcotest.bool "useful message" true
        (String.length msg > 0));
  let p2 = Tcsq_core.Plan.of_pivot_order_unchecked query [ 0; 2 ] in
  let d = find "P002" (Plan_check.check p2) in
  Alcotest.check Alcotest.bool "names pivot x2" true
    (d.Diagnostic.location = Step 1
    && contains ~sub:"pivot x2" d.Diagnostic.message)

(* ---------- engine checked execution ---------- *)

let test_engine_rejects_errors () =
  let engine = Workload.Engine.prepare (small_graph ()) in
  let bad = q [ (7, 0, 1) ] in
  Array.iter
    (fun m ->
      match Workload.Engine.count_checked engine m bad with
      | Ok _ ->
          Alcotest.failf "%s executed an error-level query"
            (Workload.Engine.method_name m)
      | Error ds ->
          Alcotest.check Alcotest.bool "has errors" true
            (Diagnostic.has_errors ds))
    Workload.Engine.all_methods

let test_engine_short_circuits_empty () =
  let g = small_graph () in
  let engine = Workload.Engine.prepare g in
  let futile = q ~w:(window 500 600) [ (0, 0, 1) ] in
  match Workload.Engine.count_checked engine Workload.Engine.Tsrjoin futile with
  | Error ds ->
      Alcotest.failf "rejected a warning-level query: %s"
        (String.concat "; " (codes ds))
  | Ok (n, ds) ->
      Alcotest.(check int) "zero matches" 0 n;
      Alcotest.check Alcotest.bool "flagged provably empty" true
        (Diagnostic.proves_empty ds)

let test_engine_runs_clean_queries () =
  let g = small_graph () in
  let engine = Workload.Engine.prepare g in
  let query = q [ (0, 0, 1); (1, 1, 2) ] in
  match
    Workload.Engine.evaluate_checked engine Workload.Engine.Tsrjoin query
  with
  | Error ds -> Alcotest.failf "rejected: %s" (String.concat "; " (codes ds))
  | Ok (ms, _) ->
      Test_util.check_same_results ~msg:"checked = naive"
        (Naive.evaluate g query) ms

(* ---------- rendering ---------- *)

let test_exit_codes_and_json () =
  let e = Diagnostic.make ~code:"Q003" ~severity:Error ~location:(Edge 2) "boom" in
  let w = Diagnostic.make ~code:"Q006" ~severity:Warning ~location:Queryloc "meh" in
  let h = Diagnostic.make ~code:"Q007" ~severity:Hint ~location:(Edge 0) "fyi" in
  Alcotest.(check int) "clean" 0 (Diagnostic.exit_code []);
  Alcotest.(check int) "hints" 0 (Diagnostic.exit_code [ h ]);
  Alcotest.(check int) "warnings" 1 (Diagnostic.exit_code [ h; w ]);
  Alcotest.(check int) "errors" 2 (Diagnostic.exit_code [ w; e ]);
  let js = Diagnostic.to_json e in
  List.iter
    (fun sub ->
      Alcotest.check Alcotest.bool sub true (contains ~sub js))
    [ "\"code\": \"Q003\""; "\"severity\": \"error\""; "\"kind\": \"edge\"";
      "\"index\": 2" ];
  Alcotest.(check string) "pp" "error[Q003] at edge 2: boom"
    (Diagnostic.to_string e)

(* ---------- properties ---------- *)

let prop_clean_queries_run_and_empty_verdicts_hold =
  QCheck.Test.make ~name:"analyzer verdicts agree with execution" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 0 30))
    (fun (seed, ws) ->
      let g =
        Testkit.random_graph ~seed ~n_vertices:5 ~n_edges:40 ~n_labels:3
          ~domain:40 ~max_len:8 ()
      in
      let engine = Workload.Engine.prepare g in
      let env = Query_check.env_of_graph g in
      let w = window ws (ws + 6) in
      let queries =
        Testkit.query_pool ~n_labels:3 ~window:w
        @ List.init 3 (fun j ->
              Testkit.random_query ~seed:(seed * 31 + j) ~n_labels:3
                ~max_edges:4 ~window:w)
      in
      List.for_all
        (fun query ->
          let ds = Query_check.check ~env query in
          if Diagnostic.has_errors ds then
            QCheck.Test.fail_reportf
              "analyzer errored on a generated query: %s"
              (String.concat "; " (codes ds));
          let naive = Naive.count g query in
          if Diagnostic.proves_empty ds && naive <> 0 then
            QCheck.Test.fail_reportf
              "proves-empty verdict vs %d naive matches" naive;
          (* clean or warning-level queries must execute, and agree *)
          match
            Workload.Engine.count_checked engine Workload.Engine.Tsrjoin query
          with
          | Ok (n, _) -> n = naive
          | Error ds ->
              QCheck.Test.fail_reportf "rejected: %s"
                (String.concat "; " (codes ds)))
        queries)

let prop_query_gen_output_is_analyzer_clean =
  QCheck.Test.make ~name:"Query_gen output is analyzer-clean and runs"
    ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g =
        Testkit.random_graph ~seed ~n_vertices:8 ~n_edges:120 ~n_labels:4
          ~domain:60 ~max_len:12 ()
      in
      let engine = Workload.Engine.prepare g in
      let cfg =
        {
          (Workload.Query_gen.default ~shape:(Pattern.Star 2)) with
          Workload.Query_gen.n_queries = 5;
          seed;
          max_attempts = 200;
        }
      in
      List.for_all
        (fun info ->
          let query = info.Workload.Query_gen.query in
          let ds = Workload.Engine.analyze engine Workload.Engine.Tsrjoin query in
          (not (Diagnostic.has_errors ds))
          && (not (Diagnostic.proves_empty ds))
          &&
          match
            Workload.Engine.count_checked engine Workload.Engine.Tsrjoin query
          with
          | Ok (n, _) -> n = info.Workload.Query_gen.result_size
          | Error _ -> false)
        (Workload.Query_gen.generate engine cfg))

let () =
  Alcotest.run "analysis"
    [
      ( "query diagnostics",
        [
          Alcotest.test_case "Q001 inverted window" `Quick test_q001_inverted_window;
          Alcotest.test_case "Q002 disjoint window" `Quick test_q002_disjoint_window;
          Alcotest.test_case "Q003 unknown label" `Quick test_q003_unknown_label;
          Alcotest.test_case "Q004 orphan variable" `Quick test_q004_orphan_variable;
          Alcotest.test_case "Q005 duplicate edge" `Quick test_q005_duplicate_edge;
          Alcotest.test_case "Q006 disconnected" `Quick test_q006_disconnected;
          Alcotest.test_case "Q007 self loop" `Quick test_q007_self_loop;
          Alcotest.test_case "Q008 label without edges" `Quick test_q008_label_without_edges;
          Alcotest.test_case "Q009 empty graph" `Quick test_q009_empty_graph;
          Alcotest.test_case "Q010 undurable LASTING" `Quick test_q010_undurable;
        ] );
      ( "bound propagation",
        [
          Alcotest.test_case "Q011/Q012 disjoint labels" `Quick
            test_q011_q012_disjoint_labels;
          Alcotest.test_case "Q013 LASTING vs label span" `Quick
            test_q013_lasting_vs_label;
          Alcotest.test_case "Q014 window tightening" `Quick
            test_q014_window_tightening;
        ] );
      ( "extended diagnostics",
        [
          Alcotest.test_case "Q015 infeasible Allen constraint" `Quick
            test_q015_infeasible_allen;
          Alcotest.test_case "Q016/Q017 clause labels without edges" `Quick
            test_q016_q017_clause_labels;
        ] );
      ( "selectivity",
        [
          Alcotest.test_case "estimate shape" `Quick
            test_selectivity_estimate_shape;
          Alcotest.test_case "engine records est_intermediate" `Quick
            test_engine_records_estimate;
        ] );
      ( "explain",
        [
          Alcotest.test_case "candidates, report, JSON" `Quick
            test_explain_candidates_and_json;
          Alcotest.test_case "P008 dominated plan" `Quick
            test_explain_p008_dominated_plan;
        ] );
      ( "plan diagnostics",
        [
          Alcotest.test_case "P001 empty step" `Quick test_p001_empty_step;
          Alcotest.test_case "P002 unbound pivot" `Quick test_p002_unbound_pivot;
          Alcotest.test_case "P003 rebound root" `Quick test_p003_rebound_root;
          Alcotest.test_case "P004 unmatched edge" `Quick test_p004_unmatched_edge;
          Alcotest.test_case "P005 rematched edge" `Quick test_p005_rematched_edge;
          Alcotest.test_case "P006 non-incident edge" `Quick test_p006_nonincident_edge;
          Alcotest.test_case "P007 edge table mismatch" `Quick test_p007_edge_table_mismatch;
        ] );
      ( "planners",
        [
          Alcotest.test_case "all planners produce clean plans" `Quick
            test_planners_produce_clean_plans;
          Alcotest.test_case "corrupted pivot order rejected" `Quick
            test_corrupted_pivot_order_rejected;
        ] );
      ( "engine",
        [
          Alcotest.test_case "rejects error-level queries" `Quick
            test_engine_rejects_errors;
          Alcotest.test_case "short-circuits provably-empty" `Quick
            test_engine_short_circuits_empty;
          Alcotest.test_case "runs clean queries" `Quick
            test_engine_runs_clean_queries;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "exit codes and JSON" `Quick
            test_exit_codes_and_json;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_clean_queries_run_and_empty_verdicts_hold;
          QCheck_alcotest.to_alcotest prop_query_gen_output_is_analyzer_clean;
        ] );
    ]
