(* Tests for Multi_window shared evaluation, Tsrjoin profiling, and the
   Analytics aggregations. *)

open Semantics
open Tcsq_core

let window a b = Temporal.Interval.make a b
let mk edges a b = Match_result.make edges (window a b)

(* ---------- Analytics ---------- *)

let matches () =
  [ mk [| 0 |] 0 9; mk [| 1 |] 5 14; mk [| 2 |] 20 20 ]

let test_histogram () =
  let hist =
    Analytics.lifespan_histogram ~n_buckets:3 ~over:(window 0 29) (matches ())
  in
  Alcotest.(check int) "buckets" 3 (Array.length hist);
  let counts = Array.map snd hist in
  (* buckets [0,9] [10,19] [20,29]: first has m0+m1, second m1, third m2 *)
  Alcotest.(check (array int)) "counts" [| 2; 1; 1 |] counts;
  let bucket0, _ = hist.(0) in
  Alcotest.(check int) "bucket bounds" 9 (Temporal.Interval.te bucket0)

let test_active_at () =
  let ms = matches () in
  Alcotest.(check int) "at 7" 2 (Analytics.active_at ms ~t:7);
  Alcotest.(check int) "at 12" 1 (Analytics.active_at ms ~t:12);
  Alcotest.(check int) "at 15" 0 (Analytics.active_at ms ~t:15)

let test_peak () =
  (match Analytics.peak ~n_buckets:3 ~over:(window 0 29) (matches ()) with
  | Some (bucket, count) ->
      Alcotest.(check int) "peak count" 2 count;
      Alcotest.(check int) "peak bucket start" 0 (Temporal.Interval.ts bucket)
  | None -> Alcotest.fail "expected a peak");
  Alcotest.(check bool) "no peak on empty" true
    (Analytics.peak ~over:(window 0 9) [] = None)

let test_durability_summary () =
  match Analytics.durability_summary (matches ()) with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
      Alcotest.(check int) "count" 3 s.Analytics.count;
      Alcotest.(check int) "min" 1 s.Analytics.min_len;
      Alcotest.(check int) "max" 10 s.Analytics.max_len;
      Alcotest.(check int) "median" 10 s.Analytics.median_len;
      Alcotest.(check bool) "mean" true (abs_float (s.Analytics.mean_len -. 7.0) < 1e-9)

(* ---------- Multi_window ---------- *)

let test_multi_window_equals_independent () =
  let g =
    Test_util.random_graph ~seed:61 ~n_vertices:6 ~n_edges:80 ~n_labels:3
      ~domain:50 ~max_len:12 ()
  in
  let tai = Tai.build g in
  let q =
    Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 0, 2) ] ~window:(window 0 0)
  in
  let windows = [ window 0 9; window 5 14; window 30 49; window 0 49 ] in
  let shared = Multi_window.evaluate tai q ~windows in
  List.iteri
    (fun i w ->
      let independent =
        Match_result.Result_set.of_list
          (Tsrjoin.evaluate tai (Query.with_window q w))
      in
      let from_shared = Match_result.Result_set.of_list shared.(i) in
      match
        Match_result.Result_set.diff_summary ~expected:independent
          ~actual:from_shared
      with
      | None -> ()
      | Some diff ->
          Alcotest.failf "window %d (%s): %s" i (Temporal.Interval.to_string w)
            diff)
    windows

let test_multi_window_validation () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5) ] in
  let tai = Tai.build g in
  let q = Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 0 5) in
  Alcotest.check_raises "no windows" (Invalid_argument "") (fun () ->
      try ignore (Multi_window.evaluate tai q ~windows:[])
      with Invalid_argument _ -> raise (Invalid_argument ""))

let test_sliding () =
  let g = Tgraph.Graph.of_edge_list [ (0, 1, 0, 0, 5); (0, 1, 0, 12, 18) ] in
  let tai = Tai.build g in
  let q = Query.make ~n_vars:2 ~edges:[ (0, 0, 1) ] ~window:(window 0 0) in
  let slices =
    Multi_window.sliding tai q ~width:10 ~stride:10 ~over:(window 0 19)
  in
  Alcotest.(check int) "two slices" 2 (List.length slices);
  let counts = List.map (fun (_, ms) -> List.length ms) slices in
  Alcotest.(check (list int)) "per-slice matches" [ 1; 1 ] counts;
  Alcotest.check_raises "bad stride" (Invalid_argument "") (fun () ->
      try ignore (Multi_window.sliding tai q ~width:5 ~stride:0 ~over:(window 0 9))
      with Invalid_argument _ -> raise (Invalid_argument ""))

let prop_multi_window_equals_independent =
  QCheck.Test.make ~name:"multi-window = independent evaluation" ~count:40
    QCheck.(pair (int_range 0 10_000) (list_of_size (QCheck.Gen.int_range 1 5) (int_range 0 40)))
    (fun (seed, starts) ->
      let g =
        Test_util.random_graph ~seed ~n_vertices:5 ~n_edges:40 ~n_labels:2
          ~domain:50 ~max_len:10 ()
      in
      let tai = Tai.build g in
      let q =
        Query.make ~n_vars:3 ~edges:[ (0, 0, 1); (1, 1, 2) ] ~window:(window 0 0)
      in
      let windows = List.map (fun s -> window s (s + 8)) starts in
      let shared = Multi_window.evaluate tai q ~windows in
      List.for_all2
        (fun w shared_ms ->
          Match_result.Result_set.equal
            (Match_result.Result_set.of_list
               (Tsrjoin.evaluate tai (Query.with_window q w)))
            (Match_result.Result_set.of_list shared_ms))
        windows (Array.to_list shared))

(* ---------- profiling ---------- *)

let test_profile_counts () =
  let g =
    Test_util.random_graph ~seed:62 ~n_vertices:6 ~n_edges:80 ~n_labels:3
      ~domain:40 ~max_len:10 ()
  in
  let tai = Tai.build g in
  let q =
    Pattern.instantiate (Pattern.Chain 3) ~labels:[| 0; 1; 2 |]
      ~window:(window 0 39)
  in
  let profiles, results = Tsrjoin.profile tai q in
  Alcotest.(check int) "matches the plain count" (Tsrjoin.count tai q) results;
  Alcotest.(check bool) "at least one step" true (Array.length profiles > 0);
  (* per-step counters sum to the global ones *)
  let stats = Run_stats.create () in
  ignore (Tsrjoin.count ~stats tai q);
  let sum f = Array.fold_left (fun acc p -> acc + f p) 0 profiles in
  Alcotest.(check int) "bindings add up" stats.Run_stats.bindings
    (sum (fun p -> p.Tsrjoin.bindings));
  Alcotest.(check int) "partials add up" stats.Run_stats.intermediate
    (sum (fun p -> p.Tsrjoin.partials));
  Alcotest.(check int) "scanned adds up" stats.Run_stats.scanned
    (sum (fun p -> p.Tsrjoin.scanned))

let () =
  Alcotest.run "analytics"
    [
      ( "analytics",
        [
          Alcotest.test_case "lifespan histogram" `Quick test_histogram;
          Alcotest.test_case "active_at" `Quick test_active_at;
          Alcotest.test_case "peak" `Quick test_peak;
          Alcotest.test_case "durability summary" `Quick test_durability_summary;
        ] );
      ( "multi_window",
        [
          Alcotest.test_case "equals independent" `Quick
            test_multi_window_equals_independent;
          Alcotest.test_case "validation" `Quick test_multi_window_validation;
          Alcotest.test_case "sliding" `Quick test_sliding;
        ] );
      ("profile", [ Alcotest.test_case "per-step counters" `Quick test_profile_counts ]);
      ( "properties",
        [ QCheck_alcotest.to_alcotest ~long:false prop_multi_window_equals_independent ] );
    ]
